//===- bench_paper_tables.cpp - Table 1/2 replication timings -------------===//
//
// Times the paper-fidelity evaluation harness (src/eval) end to end:
//
//   * each §6 corpus program (grep-dfa, bftpd, mingetty, identd) checked
//     through the multi-file front end, with its table columns re-derived
//     and hard-gated against the known Table 1/Table 2 values — the same
//     numbers tests/corpus/c/TABLES.expected pins;
//   * corpus rows at --jobs 1 and --jobs 4 must agree exactly, including
//     every rendered diagnostic (hard-gated, any host);
//   * a ~1M-line synthetic farm, generated one translation unit at a time
//     (never materialized as a whole MultiTuProgram, so the run fits CI
//     RAM), checked at --jobs 1 and --jobs 4 with a hardware-aware
//     scaling gate mirroring bench_frontend: above 1 hardware thread
//     jobs-4 must beat jobs-1; at 1 it must stay within 1.5x.
//
// Gates exit non-zero when STQ_ENFORCE_TIMING_BOUNDS=1 (the CI eval-smoke
// job sets it); otherwise they are informational. Results go to
// BENCH_paper_tables.json (schema stq-bench-tables-v1);
// STQ_PAPER_TABLES_BENCH_OUT overrides the path and STQ_PAPER_FARM_LINES
// scales the farm (default 1000000).
//
//===----------------------------------------------------------------------===//

#include "eval/PaperEval.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace stq;

namespace {

struct ResultEntry {
  std::string Name;
  std::string Detail;
  double Value = 0;
  const char *Unit = "seconds";
};

/// The published columns each corpus row must reproduce. Drift in the
/// generators, the front end, or the checker shows up here (and in the
/// TABLES.expected golden) before it can silently skew the tables.
struct ExpectedRow {
  const char *Name;
  unsigned Annotations, Casts, Sites, Errors;
};
constexpr ExpectedRow Expected[] = {
    {"grep-dfa", 110, 62, 884, 0}, // sites = dereference sites
    {"bftpd", 2, 0, 134, 1},       // sites = printf-family calls
    {"mingetty", 1, 0, 23, 0},
    {"identd", 0, 0, 21, 0},
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string flat(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

bool sameRow(const eval::EvalRow &A, const eval::EvalRow &B) {
  return eval::renderRow(A) == eval::renderRow(B);
}

bool measureCorpora(std::vector<ResultEntry> &Entries) {
  bool Ok = true;
  std::vector<workloads::CorpusProgram> Corpora = workloads::makeAllCorpora();
  for (size_t I = 0; I < Corpora.size(); ++I) {
    eval::ProgramSpec Spec = eval::specFromCorpus(Corpora[I]);
    SessionOptions J1, J4;
    J1.Jobs = 1;
    J4.Jobs = 4;
    eval::EvalRow R1 = eval::evalProgram(Spec, J1);
    eval::EvalRow R4 = eval::evalProgram(Spec, J4);
    if (!R1.CheckOk || !R4.CheckOk) {
      std::fprintf(stderr, "bench_paper_tables: front end failed on '%s'\n",
                   Spec.Name.c_str());
      return false;
    }
    const ExpectedRow &E = Expected[I];
    unsigned Sites = Spec.Kind == "table1" ? R1.Derefs : R1.PrintfCalls;
    bool RowOk = Spec.Name == E.Name && R1.Annotations == E.Annotations &&
                 R1.Casts == E.Casts && Sites == E.Sites &&
                 R1.Errors == E.Errors;
    bool JobsOk = sameRow(R1, R4);
    if (!RowOk)
      std::fprintf(stderr,
                   "bench_paper_tables: '%s' columns drifted from the "
                   "published row (annots %u casts %u sites %u errors %u)\n",
                   Spec.Name.c_str(), R1.Annotations, R1.Casts, Sites,
                   R1.Errors);
    if (!JobsOk)
      std::fprintf(stderr,
                   "bench_paper_tables: '%s' rows differ between --jobs 1 "
                   "and --jobs 4\n",
                   Spec.Name.c_str());
    Ok = Ok && RowOk && JobsOk;

    std::string Tag = Spec.Name;
    for (char &C : Tag)
      if (C == '-')
        C = '_';
    Entries.push_back({Tag + "_lines", "non-blank corpus lines (lib/ excluded)",
                       static_cast<double>(R1.Lines), "count"});
    Entries.push_back({Tag + "_annotations",
                       "distinct as-written qualifier annotations",
                       static_cast<double>(R1.Annotations), "count"});
    Entries.push_back({Tag + "_casts", "qualifier casts in function bodies",
                       static_cast<double>(R1.Casts), "count"});
    Entries.push_back({Tag + "_sites",
                       Spec.Kind == "table1" ? "dereference sites"
                                             : "printf-family call sites",
                       static_cast<double>(Sites), "count"});
    Entries.push_back({Tag + "_errors", "qualifier errors reported",
                       static_cast<double>(R1.Errors), "count"});
    Entries.push_back({Tag + "_check_jobs1_seconds",
                       "evalProgram wall time at --jobs 1", R1.Seconds});
    Entries.push_back({Tag + "_check_jobs4_seconds",
                       "evalProgram wall time at --jobs 4", R4.Seconds});
    Entries.push_back({Tag + "_rows_jobs_identical",
                       "jobs-4 row (counts + diagnostics) equals jobs-1",
                       JobsOk ? 1.0 : 0.0, "bool"});
  }
  return Ok;
}

struct FarmRun {
  double Seconds = 0;
  unsigned QualErrors = 0;
  std::string Diags;
  bool Ok = false;
};

/// One checkFiles pass over the streamed farm. The unit texts are owned
/// by \p Inputs (generated once by the caller); only the shared header
/// lives in the shipped map.
FarmRun runFarm(const std::vector<frontend::InputFile> &Inputs,
                const pp::FileMap &Files, unsigned Jobs) {
  SessionOptions Opts;
  Opts.Builtins = {"pos", "neg"};
  Opts.Jobs = Jobs;
  Opts.ShippedFiles = &Files;
  Session S(Opts);
  FarmRun R;
  auto Start = std::chrono::steady_clock::now();
  Session::CheckFilesOutcome Out = S.checkFiles(Inputs);
  R.Seconds = secondsSince(Start);
  R.Ok = Out.Load.ok();
  R.QualErrors = Out.Result.QualErrors;
  for (const Diagnostic &D : S.diags().diagnostics())
    R.Diags += D.str() + "\n";
  return R;
}

bool measureFarm(std::vector<ResultEntry> &Entries) {
  unsigned long TargetLines = 1000000;
  if (const char *Env = std::getenv("STQ_PAPER_FARM_LINES"))
    if (unsigned long V = std::strtoul(Env, nullptr, 10))
      TargetLines = V;

  // Unit count stays fixed: the shared header lists one prototype per
  // unit and is re-expanded into every TU, so growing the farm by unit
  // count is quadratic in preprocessed lines. Growing functions-per-unit
  // is linear (~6 lines per generated function).
  workloads::FarmSpec Spec;
  Spec.Units = 256;
  Spec.FnsPerUnit = static_cast<unsigned>(
      std::max(1ul, TargetLines / (Spec.Units * 6ul)));
  Spec.Seed = 3;
  Spec.CallFanOut = 4;

  pp::FileMap Files;
  Files["farm.h"] = workloads::makeFarmHeader(Spec);
  unsigned long Lines = workloads::countLines(Files["farm.h"]);
  std::vector<frontend::InputFile> Inputs;
  Inputs.reserve(Spec.Units + 1);
  for (unsigned U = 0; U < Spec.Units; ++U) {
    workloads::MultiTuProgram::File F = workloads::makeFarmUnit(Spec, U);
    Lines += workloads::countLines(F.Text);
    Inputs.push_back({std::move(F.Name), std::move(F.Text)});
  }
  {
    workloads::MultiTuProgram::File M = workloads::makeFarmMain(Spec);
    Lines += workloads::countLines(M.Text);
    Inputs.push_back({std::move(M.Name), std::move(M.Text)});
  }

  FarmRun J1 = runFarm(Inputs, Files, 1);
  FarmRun J4 = runFarm(Inputs, Files, 4);
  if (!J1.Ok || !J4.Ok) {
    std::fprintf(stderr, "bench_paper_tables: front end rejected the farm\n");
    return false;
  }
  bool ByteIdentical =
      J1.Diags == J4.Diags && J1.QualErrors == J4.QualErrors;
  unsigned HW = std::thread::hardware_concurrency();
  bool ScalingOk = HW > 1 ? J4.Seconds > 0 && J4.Seconds < J1.Seconds
                          : J4.Seconds > 0 && J4.Seconds < J1.Seconds * 1.5;
  if (!ByteIdentical)
    std::fprintf(stderr,
                 "bench_paper_tables: farm diagnostics differ between "
                 "--jobs 1 and --jobs 4\n");
  if (!ScalingOk)
    std::fprintf(stderr,
                 "bench_paper_tables: farm scaling gate failed "
                 "(jobs1 %.3fs, jobs4 %.3fs, %u hardware threads)\n",
                 J1.Seconds, J4.Seconds, HW);

  Entries.push_back({"farm_translation_units", "generated .c files checked",
                     static_cast<double>(Inputs.size()), "count"});
  Entries.push_back({"farm_lines", "non-blank lines across header and units",
                     static_cast<double>(Lines), "count"});
  Entries.push_back({"farm_check_jobs1_seconds",
                     "end-to-end checkFiles at --jobs 1", J1.Seconds});
  Entries.push_back({"farm_check_jobs4_seconds",
                     "end-to-end checkFiles at --jobs 4", J4.Seconds});
  Entries.push_back({"farm_speedup_4x", "jobs-1 time over jobs-4 time",
                     J4.Seconds > 0 ? J1.Seconds / J4.Seconds : 0, "ratio"});
  Entries.push_back(
      {"farm_lines_per_second_jobs4", "per-TU pipeline throughput at jobs 4",
       J4.Seconds > 0 ? Lines / J4.Seconds : 0, "lines/second"});
  Entries.push_back({"farm_qual_errors",
                     "qualifier errors the checker reported",
                     static_cast<double>(J1.QualErrors), "count"});
  Entries.push_back({"farm_diagnostics_byte_identical",
                     "jobs-4 diagnostics and verdict equal jobs-1 exactly",
                     ByteIdentical ? 1.0 : 0.0, "bool"});
  Entries.push_back({"hardware_threads",
                     "std::thread::hardware_concurrency() on this host "
                     "(speedup is hard-gated only above 1)",
                     static_cast<double>(HW), "count"});
  return ByteIdentical && ScalingOk;
}

bool writeReport(const std::vector<ResultEntry> &Entries,
                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << "{\n  \"schema\": \"stq-bench-tables-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const ResultEntry &E = Entries[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Value);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"detail\": \"" << E.Detail << "\",\n"
       << "      \"value\": " << Buf << ",\n"
       << "      \"unit\": \"" << E.Unit << "\"\n"
       << "    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return true;
}

} // namespace

// The grep-dfa corpus evaluation on its own, for --benchmark_filter runs.
static void BM_EvalGrepDfa(benchmark::State &State) {
  eval::ProgramSpec Spec =
      eval::specFromCorpus(workloads::makeGrepDfaCorpus());
  SessionOptions Base;
  Base.Jobs = 2;
  for (auto _ : State) {
    eval::EvalRow Row = eval::evalProgram(Spec, Base);
    benchmark::DoNotOptimize(Row.Annotations);
  }
}
BENCHMARK(BM_EvalGrepDfa)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  std::vector<ResultEntry> Entries;
  bool CorporaOk = measureCorpora(Entries);
  bool FarmOk = measureFarm(Entries);
  std::printf("=== paper tables: §6 corpus replication and farm scale ===\n");
  for (const ResultEntry &E : Entries)
    std::printf("%-36s %14.6f %s\n", E.Name.c_str(), E.Value, E.Unit);
  const char *Out = std::getenv("STQ_PAPER_TABLES_BENCH_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_paper_tables.json";
  if (writeReport(Entries, Path))
    std::printf("report written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());
  const char *Enforce = std::getenv("STQ_ENFORCE_TIMING_BOUNDS");
  if (!CorporaOk || !FarmOk) {
    std::fprintf(stderr,
                 "bench_paper_tables: replication or scaling gate failed%s\n",
                 Enforce && *Enforce && *Enforce != '0'
                     ? " (STQ_ENFORCE_TIMING_BOUNDS set: failing)"
                     : " (informational; set STQ_ENFORCE_TIMING_BOUNDS=1 "
                       "to enforce)");
    if (Enforce && *Enforce && *Enforce != '0')
      return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
