//===- bench_cqual_baseline.cpp - Experiment B7 (vs CQUAL) ----------------===//
//
// The section 7 comparison: CQUAL-style qualifier inference vs this
// paper's explicit type rules on the Table 2 workloads. Both find the
// bftpd bug; inference needs no annotation loop (intermediates are
// inferred); but the lattice is trusted - a meaningless lattice is
// accepted silently, while this paper's soundness checker rejects rule
// sets that do not establish their invariants.
//
//===----------------------------------------------------------------------===//

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "cqual/Cqual.h"
#include "qual/Builtins.h"
#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq;
using namespace stq::workloads;

namespace {

/// The taint workloads with the CQUAL-style prelude annotations: sinks
/// (format parameters) are untainted, and sources (file names from the OS,
/// as in Shankar et al.'s readdir model) are tainted. Inference then
/// propagates through every intermediate without a fixpoint loop.
std::string annotatedSource(const GeneratedWorkload &W) {
  std::string Source = W.Source;
  auto Annotate = [&](const std::string &From, const std::string &To) {
    size_t Pos = Source.find(From);
    if (Pos != std::string::npos)
      Source.replace(Pos, From.size(), To);
  };
  Annotate("int sendstrf(int s, char* format, ...)",
           "int sendstrf(int s, char* untainted format, ...)");
  Annotate("int bftpd_log(int level, char* fmt, ...)",
           "int bftpd_log(int level, char* untainted fmt, ...)");
  Annotate("int log_msg(char* fmt, ...)",
           "int log_msg(char* untainted fmt, ...)");
  Annotate("struct dirent { char* d_name;",
           "struct dirent { char* tainted d_name;");
  return Source;
}

struct BaselineRun {
  cqual::InferenceResult Inference;
  bool Ok = false;
};

BaselineRun runBaseline(const GeneratedWorkload &W) {
  BaselineRun Out;
  DiagnosticEngine Diags;
  std::vector<std::string> Quals = {"tainted", "untainted"};
  auto Prog = cminus::parseProgram(annotatedSource(W), Quals, Diags);
  if (Diags.hasErrors())
    return Out;
  if (!cminus::runSema(*Prog, {}, Diags))
    return Out;
  if (!cminus::lowerProgram(*Prog, Diags))
    return Out;
  Out.Inference = cqual::runInference(*Prog);
  Out.Ok = true;
  return Out;
}

void printTable() {
  std::printf("=== Section 7: CQUAL-style inference vs explicit rules ===\n");
  std::printf("%-10s | %18s | %22s\n", "program",
              "this paper (errors)", "CQUAL baseline (errors)");
  GeneratedWorkload Workloads[] = {makeBftpd(), makeMingetty(),
                                   makeIdentd()};
  for (const GeneratedWorkload &W : Workloads) {
    Table2Row Ours = runUntaintedExperiment(W);
    BaselineRun Theirs = runBaseline(W);
    std::printf("%-10s | %12u ann %2u | %15zu (vars %u)\n", W.Name.c_str(),
                Ours.Annotations, Ours.Errors,
                Theirs.Inference.Errors.size(), Theirs.Inference.NumVars);
  }
  std::printf("(both systems find the bftpd format-string bug - the "
              "baseline reports the tainted flow at each sink it reaches; "
              "CQUAL trusts its lattice, this paper's soundness checker "
              "verifies the rules)\n\n");
}

} // namespace

static void BM_CqualInferenceBftpd(benchmark::State &State) {
  GeneratedWorkload W = makeBftpd();
  for (auto _ : State) {
    BaselineRun R = runBaseline(W);
    benchmark::DoNotOptimize(R.Inference.Errors.size());
  }
}
BENCHMARK(BM_CqualInferenceBftpd)->Unit(benchmark::kMillisecond);

static void BM_OurCheckerBftpd(benchmark::State &State) {
  GeneratedWorkload W = makeBftpd();
  for (auto _ : State) {
    Table2Row Row = runUntaintedExperiment(W);
    benchmark::DoNotOptimize(Row.Errors);
  }
}
BENCHMARK(BM_OurCheckerBftpd)->Unit(benchmark::kMillisecond);

static void BM_CqualInferenceGrepScale(benchmark::State &State) {
  GeneratedWorkload W = makeGrepDfa(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    BaselineRun R = runBaseline(W);
    benchmark::DoNotOptimize(R.Inference.NumConstraints);
  }
}
BENCHMARK(BM_CqualInferenceGrepScale)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
