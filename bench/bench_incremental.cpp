//===- bench_incremental.cpp - Edit-to-verdict latency, cold vs warm ------===//
//
// Measures the incremental layer against its reason to exist: after a
// small edit, a warm `recheck` should answer in time proportional to the
// edit, not the unit. A synthetic unit of N functions in a call chain is
// checked cold, then re-checked warm after
//
//   * no edit at all (every work item replays from the verdict store),
//   * a one-function body edit (exactly one item re-checks),
//   * a signature edit at the chain's root (every transitive caller
//     re-checks — the worst warm case).
//
// Alongside the latencies the report records the work-item counters, and
// the process exits non-zero unless a warm single-function edit re-checked
// strictly fewer functions than the cold run — the acceptance criterion CI
// pins.
//
// Results go to BENCH_incremental.json (schema stq-bench-incremental-v1);
// STQ_INCREMENTAL_BENCH_OUT overrides the path.
//
//===----------------------------------------------------------------------===//

#include "checker/Incremental.h"
#include "driver/Session.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace stq;
using checker::incremental::Engine;

namespace {

constexpr int NumFns = 60;

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Renders the synthetic unit: f0 <- f1 <- ... <- f59 <- main. \p Variant
/// switches one constant inside \p EditedFn between two same-width values
/// (a pure body edit: no other function's source positions move).
/// \p RootSig widens f0's parameter type (a signature edit dirtying the
/// whole chain).
std::string program(int EditedFn, int Variant, bool RootSig = false) {
  std::ostringstream OS;
  OS << "int f0(int " << (RootSig ? "pos " : "") << "a) { int pos p = "
     << (EditedFn == 0 ? 11 + Variant : 11) << "; return a + p; }\n";
  for (int I = 1; I < NumFns; ++I) {
    // Enough qualifier work per body (derived pos locals, an assignment
    // chain) that checking a function costs clearly more than hashing it.
    // Each function gets a distinct literal so a cold Session's prover
    // cache cannot collapse the whole unit into one proof per shape.
    OS << "int f" << I << "(int a) { int pos p = "
       << (EditedFn == I ? 2100 + Variant : 21 + I)
       << "; int pos q = p * p; int pos r = q * p + 1;"
          " int pos s = r + q; int pos t = s * s + p;"
          " int x = t + a; return f"
       << (I - 1) << "(x) + " << I % 7 << "; }\n";
  }
  OS << "int main() { return f" << (NumFns - 1) << "(1); }\n";
  return OS.str();
}

/// The session's mean qualcheck-phase duration (front end excluded) — the
/// part of the latency the incremental layer can actually shrink.
double qualcheckSeconds(Session &S) {
  stats::Registry::Snapshot Snap = S.metrics().snapshot();
  auto It = Snap.Histograms.find("phase.qualcheck_seconds");
  return It == Snap.Histograms.end() ? 0.0 : It->second.mean();
}

/// One warm recheck through a fresh Session sharing \p E (the server's
/// per-request shape). Returns elapsed seconds; stats land in \p Stats and
/// the checking-phase time in \p Phase when non-null.
double recheckOnce(Engine &E, const std::string &Source,
                   checker::incremental::RecheckStats &Stats,
                   double *Phase = nullptr) {
  SessionOptions Opts;
  Opts.Builtins = {"pos", "neg"};
  Opts.SharedIncremental = &E;
  Opts.IncrementalUnit = "bench";
  Session S(Opts);
  auto Start = std::chrono::steady_clock::now();
  Session::RecheckOutcome Out = S.recheck(Source);
  double Elapsed = secondsSince(Start);
  if (!Out.FrontEndOk) {
    std::fprintf(stderr, "bench_incremental: front end rejected the unit\n");
    std::exit(1);
  }
  Stats = Out.Stats;
  if (Phase)
    *Phase = qualcheckSeconds(S);
  return Elapsed;
}

double checkOnce(const std::string &Source, double *Phase = nullptr) {
  SessionOptions Opts;
  Opts.Builtins = {"pos", "neg"};
  Session S(Opts);
  auto Start = std::chrono::steady_clock::now();
  Session::CheckOutcome Out = S.check(Source);
  double Elapsed = secondsSince(Start);
  if (!Out.FrontEndOk)
    std::exit(1);
  if (Phase)
    *Phase = qualcheckSeconds(S);
  return Elapsed;
}

struct ResultEntry {
  std::string Name;
  std::string Detail;
  double Value = 0;
  const char *Unit = "seconds";
};

std::vector<ResultEntry> measure(bool &AcceptanceOk) {
  std::vector<ResultEntry> Entries;
  constexpr int Reps = 10;
  checker::incremental::RecheckStats Stats;

  // Cold baseline: a full check in a fresh Session, as the CLI pays it.
  double ColdPhase = 0;
  {
    double Total = 0, PhaseTotal = 0, Phase = 0;
    for (int I = 0; I < Reps; ++I) {
      Total += checkOnce(program(7, I % 2), &Phase);
      PhaseTotal += Phase;
    }
    ColdPhase = PhaseTotal / Reps;
    Entries.push_back({"check_cold_seconds",
                       "mean full `check` of the " + std::to_string(NumFns) +
                           "-function unit in a fresh Session",
                       Total / Reps});
  }

  Engine E;
  recheckOnce(E, program(7, 0), Stats); // populate the store
  const unsigned UnitsTotal = Stats.Units;

  // No-op recheck: the whole unit replays from the verdict store.
  {
    double Total = 0;
    for (int I = 0; I < Reps; ++I)
      Total += recheckOnce(E, program(7, 0), Stats);
    Entries.push_back({"recheck_noop_warm_seconds",
                       "mean warm recheck of the unchanged unit (every work "
                       "item served from the store)",
                       Total / Reps});
  }

  // Body edit: a fresh constant each rep, so every rep is a genuine
  // single-function edit against a warm store (never a replayed variant).
  unsigned BodyEditRechecked = 0;
  double BodyEditPhase = 0;
  {
    double Total = 0, PhaseTotal = 0, Phase = 0;
    for (int I = 0; I < Reps; ++I) {
      Total += recheckOnce(E, program(7, I + 1), Stats, &Phase);
      PhaseTotal += Phase;
      BodyEditRechecked = Stats.Rechecked;
    }
    BodyEditPhase = PhaseTotal / Reps;
    Entries.push_back({"recheck_body_edit_warm_seconds",
                       "mean warm recheck after a one-function body edit",
                       Total / Reps});
  }

  // Signature edit at the chain root: the invalidation closure re-checks
  // every transitive caller — warm recheck's worst case.
  unsigned SigEditRechecked = 0;
  {
    double Total = 0;
    for (int I = 0; I < Reps; ++I) {
      Total += recheckOnce(E, program(7, 0, I % 2 == 0), Stats);
      SigEditRechecked = Stats.Rechecked;
    }
    Entries.push_back({"recheck_sig_edit_warm_seconds",
                       "mean warm recheck after a signature edit at the "
                       "call chain's root (transitive callers re-check)",
                       Total / Reps});
  }

  Entries.push_back({"work_items_total",
                     "work items in the unit (functions + globals)",
                     static_cast<double>(UnitsTotal), "count"});
  Entries.push_back({"work_items_rechecked_body_edit",
                     "items re-checked by a warm single-function body edit",
                     static_cast<double>(BodyEditRechecked), "count"});
  Entries.push_back({"work_items_rechecked_sig_edit",
                     "items re-checked by a warm root signature edit",
                     static_cast<double>(SigEditRechecked), "count"});

  const double Cold = Entries[0].Value;
  const double BodyEdit = Entries[2].Value;
  Entries.push_back({"body_edit_speedup",
                     "cold full check latency / warm body-edit latency "
                     "(front end included, so unit-size bound)",
                     BodyEdit > 0 ? Cold / BodyEdit : 0, "ratio"});
  Entries.push_back({"qualcheck_cold_seconds",
                     "mean checking-phase time of the cold full check "
                     "(front end excluded)",
                     ColdPhase});
  Entries.push_back({"qualcheck_body_edit_warm_seconds",
                     "mean checking-phase time of the warm body-edit "
                     "recheck (front end excluded)",
                     BodyEditPhase});
  Entries.push_back({"qualcheck_body_edit_speedup",
                     "cold checking-phase time / warm body-edit "
                     "checking-phase time",
                     BodyEditPhase > 0 ? ColdPhase / BodyEditPhase : 0,
                     "ratio"});

  // The acceptance criterion: a warm single-function edit re-checks
  // strictly fewer work items than a cold run checks.
  AcceptanceOk = BodyEditRechecked > 0 && BodyEditRechecked < UnitsTotal;
  return Entries;
}

bool writeReport(const std::vector<ResultEntry> &Entries,
                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << "{\n  \"schema\": \"stq-bench-incremental-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const ResultEntry &E = Entries[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Value);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"detail\": \"" << E.Detail << "\",\n"
       << "      \"value\": " << Buf << ",\n"
       << "      \"unit\": \"" << E.Unit << "\"\n"
       << "    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return true;
}

} // namespace

// The steady-state warm paths on their own, for --benchmark_filter runs.
static void BM_WarmNoopRecheck(benchmark::State &State) {
  Engine E;
  checker::incremental::RecheckStats Stats;
  const std::string Source = program(7, 0);
  recheckOnce(E, Source, Stats);
  for (auto _ : State) {
    recheckOnce(E, Source, Stats);
    benchmark::DoNotOptimize(Stats.Hits);
  }
}
BENCHMARK(BM_WarmNoopRecheck)->Unit(benchmark::kMillisecond);

static void BM_WarmBodyEditRecheck(benchmark::State &State) {
  Engine E;
  checker::incremental::RecheckStats Stats;
  recheckOnce(E, program(7, 0), Stats);
  int Variant = 1;
  for (auto _ : State) {
    recheckOnce(E, program(7, Variant++), Stats);
    benchmark::DoNotOptimize(Stats.Rechecked);
  }
}
BENCHMARK(BM_WarmBodyEditRecheck)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  bool AcceptanceOk = false;
  std::vector<ResultEntry> Entries = measure(AcceptanceOk);
  std::printf("=== incremental edit-to-verdict latency ===\n");
  for (const ResultEntry &E : Entries)
    std::printf("%-36s %12.6f %s\n", E.Name.c_str(), E.Value, E.Unit);
  const char *Out = std::getenv("STQ_INCREMENTAL_BENCH_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_incremental.json";
  if (writeReport(Entries, Path))
    std::printf("report written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());
  if (!AcceptanceOk) {
    std::fprintf(stderr,
                 "bench_incremental: FAIL: a warm body edit did not re-check "
                 "strictly fewer work items than a cold run\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
