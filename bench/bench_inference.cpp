//===- bench_inference.cpp - Whole-program inference solve scaling --------===//
//
// Measures the constraint-based inference engine against its reasons to
// exist: the sharded solve should scale with workers, and the suggestions
// it emits must be worth emitting. A synthetic unannotated farm of N
// functions (src/workloads makeInferenceFarm) is inferred
//
//   * cold at --jobs 1 and --jobs 4 (constraint generation + graph solve
//     fan out; the per-phase `phase.infer_seconds` timer isolates the part
//     the sharding can shrink),
//   * warm against a shared prover cache (suggestion-minimization
//     implication queries replay),
//   * and through the fixpoint reference engine for comparison.
//
// Alongside the latencies the report records solver statistics, and the
// process exits non-zero unless (a) the jobs-4 solve phase beats jobs-1
// (enforced only when the host has more than one hardware thread — on a
// single-CPU machine parallel wall-clock speedup is physically
// impossible, so there the solve must merely stay within noise of
// jobs-1, matching bench_parallel_scaling's hardware-aware handling),
// (b) the suggestion report is byte-identical across job counts, and
// (c) applying the suggestions re-checks completely clean — the
// acceptance criteria the CI inference-smoke job pins.
//
// Results go to BENCH_inference.json (schema stq-bench-inference-v1);
// STQ_INFERENCE_BENCH_OUT overrides the path.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "server/Exec.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace stq;

namespace {

constexpr unsigned FarmFunctions = 700;

const std::vector<std::string> &inferBuiltins() {
  static const std::vector<std::string> B = {"pos", "neg", "nonneg",
                                             "nonzero"};
  return B;
}

/// The session's total time inside the inference phase (front end
/// excluded) — the part the sharded solve can actually shrink.
double inferPhaseSeconds(Session &S) {
  stats::Registry::Snapshot Snap = S.metrics().snapshot();
  auto It = Snap.Histograms.find("phase.infer_seconds");
  return It == Snap.Histograms.end() ? 0.0 : It->second.mean();
}

/// One inference run in a fresh Session. Returns the infer-phase seconds;
/// the full report lands in \p Report when non-null.
double inferOnce(const std::string &Source, unsigned Jobs,
                 checker::InferenceEngine Engine,
                 prover::ProverCache *SharedCache = nullptr,
                 checker::InferenceReport *Report = nullptr) {
  SessionOptions Opts;
  Opts.Builtins = inferBuiltins();
  Opts.Jobs = Jobs;
  Opts.Infer.Engine = Engine;
  Opts.SharedCache = SharedCache;
  Session S(Opts);
  Session::InferenceReport Out = S.infer(Source);
  if (!Out.FrontEndOk) {
    std::fprintf(stderr, "bench_inference: front end rejected the farm\n");
    std::exit(1);
  }
  if (Report)
    *Report = Out.Report;
  return inferPhaseSeconds(S);
}

/// The one-shot executor's `infer` rendering at \p Jobs — the byte-stable
/// surface the server also serves.
server::ExecResult inferInvocation(const std::string &Source, unsigned Jobs,
                                   bool Apply) {
  server::Invocation Inv;
  Inv.Command = "infer";
  Inv.Source = Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = inferBuiltins();
  Inv.Session.Jobs = Jobs;
  Inv.Session.Infer.Apply = Apply;
  return server::executeInvocation(Inv);
}

struct ResultEntry {
  std::string Name;
  std::string Detail;
  double Value = 0;
  const char *Unit = "seconds";
};

std::vector<ResultEntry> measure(bool &AcceptanceOk) {
  std::vector<ResultEntry> Entries;
  constexpr int Reps = 5;
  const workloads::GeneratedWorkload Farm =
      workloads::makeInferenceFarm(FarmFunctions);

  checker::InferenceReport Report, Report4;
  double Jobs1 = 0, Jobs4 = 0, Solve1 = 0, Solve4 = 0;
  for (int I = 0; I < Reps; ++I) {
    Jobs1 += inferOnce(Farm.Source, 1, checker::InferenceEngine::Constraints,
                       nullptr, &Report);
    Solve1 += Report.Stats.SolveSeconds;
  }
  Jobs1 /= Reps;
  Solve1 /= Reps;
  Entries.push_back({"infer_cold_jobs1_seconds",
                     "mean constraint-engine inference phase over the " +
                         std::to_string(FarmFunctions) +
                         "-function farm, --jobs 1, cold prover cache",
                     Jobs1});
  for (int I = 0; I < Reps; ++I) {
    Jobs4 += inferOnce(Farm.Source, 4, checker::InferenceEngine::Constraints,
                       nullptr, &Report4);
    Solve4 += Report4.Stats.SolveSeconds;
  }
  Jobs4 /= Reps;
  Solve4 /= Reps;
  Entries.push_back({"infer_cold_jobs4_seconds",
                     "same inference phase at --jobs 4 (sharded generation "
                     "and solve)",
                     Jobs4});
  Entries.push_back({"solve_jobs1_seconds",
                     "mean graph-solve time alone at --jobs 1 (generation "
                     "and minimization excluded)",
                     Solve1});
  Entries.push_back({"solve_jobs4_seconds",
                     "mean graph-solve time alone at --jobs 4", Solve4});
  Entries.push_back({"solve_speedup_jobs4",
                     "jobs-1 graph solve / jobs-4 graph solve",
                     Solve4 > 0 ? Solve1 / Solve4 : 0, "ratio"});

  // Warm shared prover cache: minimization implication queries replay.
  {
    prover::ProverCache Shared;
    inferOnce(Farm.Source, 1, checker::InferenceEngine::Constraints, &Shared);
    double Warm = 0;
    for (int I = 0; I < Reps; ++I)
      Warm += inferOnce(Farm.Source, 1,
                        checker::InferenceEngine::Constraints, &Shared);
    Warm /= Reps;
    Entries.push_back({"infer_warm_cache_seconds",
                       "mean jobs-1 inference phase against a warm shared "
                       "prover cache (implication queries replay)",
                       Warm});
  }

  // The sequential fixpoint reference, for the differential's cost.
  {
    double Fix = 0;
    for (int I = 0; I < Reps; ++I)
      Fix += inferOnce(Farm.Source, 1, checker::InferenceEngine::Fixpoint);
    Fix /= Reps;
    Entries.push_back({"infer_fixpoint_seconds",
                       "mean sequential fixpoint reference engine phase",
                       Fix});
  }

  Entries.push_back({"farm_lines", "non-blank lines in the farm",
                     static_cast<double>(Farm.Lines), "count"});
  Entries.push_back({"constraints", "flow constraints in the graph",
                     static_cast<double>(Report.Stats.Constraints), "count"});
  Entries.push_back({"solve_rounds", "worklist rounds to the fixpoint",
                     static_cast<double>(Report.Stats.SolveRounds), "count"});
  Entries.push_back({"evaluations",
                     "(constraint, qualifier) evaluations performed",
                     static_cast<double>(Report.Stats.Evaluations), "count"});
  Entries.push_back({"suggestions", "minimal-set (variable, qualifier) pairs",
                     static_cast<double>(Report.Stats.Suggested), "count"});
  Entries.push_back({"implied_pairs",
                     "pairs demoted by prover-discharged implication",
                     static_cast<double>(Report.Stats.Implied), "count"});

  // Acceptance: byte-identical reports across job counts, and applying
  // the suggestions re-checks completely clean.
  server::ExecResult R1 = inferInvocation(Farm.Source, 1, /*Apply=*/false);
  server::ExecResult R4 = inferInvocation(Farm.Source, 4, /*Apply=*/false);
  bool ByteIdentical = R1.Out == R4.Out && R1.Err == R4.Err &&
                       R1.ExitCode == R4.ExitCode;
  Entries.push_back({"jobs_byte_identical",
                     "suggestion report identical at --jobs 1 and 4",
                     ByteIdentical ? 1.0 : 0.0, "bool"});

  server::ExecResult Applied = inferInvocation(Farm.Source, 1, /*Apply=*/true);
  server::Invocation Check;
  Check.Command = "check";
  Check.Source = Applied.Out;
  Check.HasSource = true;
  Check.Session.Builtins = inferBuiltins();
  bool RecheckClean = Applied.ExitCode == 0 &&
                      server::executeInvocation(Check).ExitCode == 0;
  Entries.push_back({"apply_recheck_clean",
                     "annotated farm re-checks with zero qualifier errors",
                     RecheckClean ? 1.0 : 0.0, "bool"});

  // On a single-CPU host a genuine parallel speedup is impossible; require
  // only that the sharded solve stays within scheduling noise of jobs-1.
  unsigned HW = std::thread::hardware_concurrency();
  bool ScalingOk = HW > 1 ? Solve4 > 0 && Solve4 < Solve1
                          : Solve4 > 0 && Solve4 < Solve1 * 1.25;
  Entries.push_back({"hardware_threads",
                     "std::thread::hardware_concurrency() on this host "
                     "(speedup is hard-gated only above 1)",
                     static_cast<double>(HW), "count"});
  AcceptanceOk = ScalingOk && ByteIdentical && RecheckClean;
  return Entries;
}

bool writeReport(const std::vector<ResultEntry> &Entries,
                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << "{\n  \"schema\": \"stq-bench-inference-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const ResultEntry &E = Entries[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Value);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"detail\": \"" << E.Detail << "\",\n"
       << "      \"value\": " << Buf << ",\n"
       << "      \"unit\": \"" << E.Unit << "\"\n"
       << "    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return true;
}

} // namespace

// The steady-state engine runs on their own, for --benchmark_filter runs.
static void BM_InferConstraintsJobs4(benchmark::State &State) {
  const std::string Source = workloads::makeInferenceFarm(FarmFunctions).Source;
  for (auto _ : State) {
    double Phase =
        inferOnce(Source, 4, checker::InferenceEngine::Constraints);
    benchmark::DoNotOptimize(Phase);
  }
}
BENCHMARK(BM_InferConstraintsJobs4)->Unit(benchmark::kMillisecond);

static void BM_InferFixpoint(benchmark::State &State) {
  const std::string Source = workloads::makeInferenceFarm(FarmFunctions).Source;
  for (auto _ : State) {
    double Phase = inferOnce(Source, 1, checker::InferenceEngine::Fixpoint);
    benchmark::DoNotOptimize(Phase);
  }
}
BENCHMARK(BM_InferFixpoint)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  bool AcceptanceOk = false;
  std::vector<ResultEntry> Entries = measure(AcceptanceOk);
  std::printf("=== whole-program inference solve scaling ===\n");
  for (const ResultEntry &E : Entries)
    std::printf("%-32s %12.6f %s\n", E.Name.c_str(), E.Value, E.Unit);
  const char *Out = std::getenv("STQ_INFERENCE_BENCH_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_inference.json";
  if (writeReport(Entries, Path))
    std::printf("report written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());
  if (!AcceptanceOk) {
    std::fprintf(stderr,
                 "bench_inference: FAIL: expected a jobs-4 solve-phase "
                 "speedup over jobs-1 (parity within noise on single-CPU "
                 "hosts), byte-identical reports across job counts, and a "
                 "clean re-check of the applied suggestions\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
