//===- bench_lambda_preservation.cpp - Experiment L5 (Theorem 5.1) --------===//
//
// Regenerates the section 5 result as a statistical experiment: random
// well-typed programs in the formal calculus preserve semantic
// conformance under the locally sound rule system; the locally unsound
// variant is refuted by concrete counterexamples.
//
//===----------------------------------------------------------------------===//

#include "lambda/Lambda.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq::lambda;

namespace {

struct SweepStats {
  unsigned WellTyped = 0;
  unsigned Violations = 0;
};

SweepStats sweep(const QualSystem &Sys, unsigned N, uint64_t SeedBase) {
  SweepStats Out;
  for (unsigned I = 0; I < N; ++I) {
    GenOptions Options;
    Options.Seed = SeedBase + I;
    Options.MaxDepth = 4;
    TermPtr T = generateTerm(Options);
    LTypePtr Ty = typecheck(T, Sys);
    if (!Ty)
      continue;
    Store S;
    EvalResult E = evaluate(T, S);
    if (!E.Ok)
      continue;
    ++Out.WellTyped;
    if (!preservationHolds(E.Value, Ty, S, Sys))
      ++Out.Violations;
  }
  return Out;
}

void printTable() {
  SweepStats Sound = sweep(QualSystem::posNegNonzero(), 5000, 1);
  SweepStats Bogus = sweep(QualSystem::withBogusSubtractionRule(), 5000, 1);
  std::printf("=== Theorem 5.1 (type preservation) ===\n");
  std::printf("%-34s %12s %12s\n", "rule system", "well-typed",
              "violations");
  std::printf("%-34s %12u %12u   (theorem: must be 0)\n",
              "pos/neg/nonzero (locally sound)", Sound.WellTyped,
              Sound.Violations);
  std::printf("%-34s %12u %12u   (locally unsound: must be >0)\n",
              "with bogus pos(e1-e2) rule", Bogus.WellTyped,
              Bogus.Violations);
  std::printf("\n");
}

} // namespace

static void BM_PreservationSweep(benchmark::State &State) {
  QualSystem Sys = QualSystem::posNegNonzero();
  uint64_t Seed = 0;
  for (auto _ : State) {
    SweepStats S = sweep(Sys, 200, Seed += 200);
    if (S.Violations != 0)
      State.SkipWithError("preservation violated under sound rules");
    benchmark::DoNotOptimize(S.WellTyped);
  }
}
BENCHMARK(BM_PreservationSweep)->Unit(benchmark::kMillisecond);

static void BM_TypecheckDeepTerm(benchmark::State &State) {
  QualSystem Sys = QualSystem::posNegNonzero();
  // A deep product tree: 2^10 leaves.
  TermPtr T = tConst(3);
  for (unsigned I = 0; I < 10; ++I)
    T = tBin(LBinOp::Mul, T, T);
  for (auto _ : State) {
    LTypePtr Ty = typecheck(T, Sys);
    benchmark::DoNotOptimize(Ty->Quals.size());
  }
}
BENCHMARK(BM_TypecheckDeepTerm)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
