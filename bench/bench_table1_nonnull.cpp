//===- bench_table1_nonnull.cpp - Experiment T1 (Table 1) -----------------===//
//
// Regenerates Table 1: the nonnull experiment on the grep-dfa analogue.
// Prints paper-vs-measured rows, then benchmarks the full iterative
// annotation pipeline and the final checking pass.
//
//===----------------------------------------------------------------------===//

#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq::workloads;

static void printTable() {
  GeneratedWorkload W = makeGrepDfa();
  Table1Row Row = runNonnullExperiment(W);
  std::printf("=== Table 1: nonnull on grep (dfa.c, dfa.h) ===\n");
  std::printf("%-16s %10s %12s\n", "", "paper", "this repo");
  std::printf("%-16s %10s %12s\n", "program:", "grep", W.Name.c_str());
  std::printf("%-16s %10u %12u\n", "lines:", 2287u, Row.Lines);
  std::printf("%-16s %10u %12u\n", "dereferences:", 1072u, Row.Dereferences);
  std::printf("%-16s %10u %12u\n", "annotations:", 114u, Row.Annotations);
  std::printf("%-16s %10u %12u\n", "casts:", 59u, Row.Casts);
  std::printf("%-16s %10u %12u\n", "errors:", 0u, Row.Errors);
  std::printf("(initial errors %u, %u iterations, %.3fs; shape: every "
              "dereference checked, annotations ~10%% of dereferences, "
              "casts < annotations, zero residual errors)\n\n",
              Row.InitialErrors, Row.Iterations, Row.Seconds);
}

static void printFlowSensitivityAblation() {
  GeneratedWorkload W = makeGrepDfa();
  Table1Row Insensitive = runNonnullExperiment(W, /*FlowSensitive=*/false);
  Table1Row Sensitive = runNonnullExperiment(W, /*FlowSensitive=*/true);
  std::printf("=== Ablation: section 8 flow-sensitive narrowing ===\n");
  std::printf("%-16s %16s %16s\n", "", "flow-insensitive",
              "flow-sensitive");
  std::printf("%-16s %16u %16u\n", "annotations:", Insensitive.Annotations,
              Sensitive.Annotations);
  std::printf("%-16s %16u %16u\n", "casts:", Insensitive.Casts,
              Sensitive.Casts);
  std::printf("%-16s %16u %16u\n", "errors:", Insensitive.Errors,
              Sensitive.Errors);
  std::printf("(the paper attributes its 59 casts to flow-insensitivity; "
              "honoring NULL-check guards removes the guarded-table casts "
              "and their local annotations)\n\n");
}

static void BM_NonnullAnnotationPipeline(benchmark::State &State) {
  GeneratedWorkload W = makeGrepDfa();
  for (auto _ : State) {
    Table1Row Row = runNonnullExperiment(W);
    benchmark::DoNotOptimize(Row.Dereferences);
  }
  Table1Row Row = runNonnullExperiment(W);
  State.counters["derefs"] = Row.Dereferences;
  State.counters["annotations"] = Row.Annotations;
  State.counters["casts"] = Row.Casts;
  State.counters["errors"] = Row.Errors;
}
BENCHMARK(BM_NonnullAnnotationPipeline)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

int main(int argc, char **argv) {
  printTable();
  printFlowSensitivityAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
