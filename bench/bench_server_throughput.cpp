//===- bench_server_throughput.cpp - stqd request latency and scaling -----===//
//
// Measures the daemon against its reason to exist: amortizing startup and
// proving cost across requests. An in-process Server on a real Unix-domain
// socket is driven by real client connections speaking stq-rpc-v1:
//
//   * cold vs warm `prove` latency (the warm request replays every proof
//     obligation from the shared cache);
//   * one-shot `check` (fresh Session, as the CLI would) vs a server
//     round-trip including all socket and JSON overhead;
//   * sustained throughput as 1..8 concurrent clients issue requests.
//
// Results go to BENCH_server.json (schema stq-bench-server-v1) so CI can
// track them; STQ_SERVER_BENCH_OUT overrides the path.
//
//===----------------------------------------------------------------------===//

#include "server/Exec.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "support/Socket.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace stq;

namespace {

const char *CheckSource =
    "int f(int pos a) { int pos b = a * a; return b; }\n"
    "int g(int pos n) { int pos m = n + 1; return f(m); }\n";

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// An in-process daemon on a throwaway socket, serving on its own thread.
class BenchServer {
public:
  BenchServer() {
    std::string Template = "/tmp/stq-bench-XXXXXX";
    if (char *P = ::mkdtemp(Template.data()))
      Dir = P;
    SocketPath = Dir + "/stqd.sock";
    server::ServerOptions Opts;
    Opts.SocketPath = SocketPath;
    Opts.Workers = 4;
    Opts.PoolThreads = 2;
    Opts.QueueCapacity = 64;
    Srv = std::make_unique<server::Server>(std::move(Opts));
    std::string Error;
    if (!Srv->start(Error)) {
      std::fprintf(stderr, "bench_server: start: %s\n", Error.c_str());
      std::exit(1);
    }
    Loop = std::thread([this] { Srv->serve(); });
  }

  ~BenchServer() {
    Srv->requestShutdown();
    Loop.join();
    Srv.reset();
    if (!Dir.empty()) {
      std::error_code EC;
      std::filesystem::remove_all(Dir, EC);
    }
  }

  /// One full client round-trip. Exits the benchmark on any failure: a
  /// broken server would otherwise publish nonsense numbers.
  server::rpc::Response roundTrip(const server::rpc::Request &Req) {
    UnixStream Conn;
    std::string Error, Line;
    server::rpc::Response Resp;
    if (!Conn.connect(SocketPath, Error) ||
        !Conn.writeAll(server::rpc::encodeRequest(Req) + "\n", Error) ||
        !Conn.readLine(Line, 64u << 20, 120000, Error) ||
        !server::rpc::parseResponse(Line, Resp, Error)) {
      std::fprintf(stderr, "bench_server: round trip: %s\n", Error.c_str());
      std::exit(1);
    }
    if (Resp.Status != "ok") {
      std::fprintf(stderr, "bench_server: status %s: %s\n",
                   Resp.Status.c_str(), Resp.Error.c_str());
      std::exit(1);
    }
    return Resp;
  }

private:
  std::string SocketPath;
  std::string Dir;
  std::unique_ptr<server::Server> Srv;
  std::thread Loop;
};

server::rpc::Request proveRequest() {
  server::rpc::Request Req;
  Req.Inv.Command = "prove";
  return Req;
}

server::rpc::Request checkRequest() {
  server::rpc::Request Req;
  Req.Inv.Command = "check";
  Req.Inv.Source = CheckSource;
  Req.Inv.HasSource = true;
  Req.Inv.Session.Builtins = {"pos", "neg"};
  return Req;
}

struct ResultEntry {
  std::string Name;
  std::string Detail;
  double Value = 0;
  const char *Unit = "seconds";
};

std::vector<ResultEntry> measure(BenchServer &Server) {
  std::vector<ResultEntry> Entries;

  // Cold vs warm prove: request one is the only one that pays the prover.
  {
    auto Start = std::chrono::steady_clock::now();
    Server.roundTrip(proveRequest());
    double Cold = secondsSince(Start);
    Start = std::chrono::steady_clock::now();
    Server.roundTrip(proveRequest());
    double Warm = secondsSince(Start);
    Entries.push_back({"prove_cold_seconds",
                       "first prove request: every obligation hits the "
                       "prover, results enter the shared cache",
                       Cold});
    Entries.push_back({"prove_warm_seconds",
                       "second prove request: replayed entirely from the "
                       "warm shared cache",
                       Warm});
    Entries.push_back({"prove_warm_speedup",
                       "cold latency / warm latency",
                       Warm > 0 ? Cold / Warm : 0, "ratio"});
  }

  // One-shot vs server check: what a client saves (or pays) per request.
  {
    server::rpc::Request Check = checkRequest();
    constexpr int Reps = 20;
    auto Start = std::chrono::steady_clock::now();
    for (int I = 0; I < Reps; ++I) {
      server::ExecResult R = server::executeInvocation(Check.Inv);
      benchmark::DoNotOptimize(R.ExitCode);
    }
    Entries.push_back({"check_one_shot_seconds",
                       "mean `stqc check` executed locally in a fresh "
                       "Session (no server)",
                       secondsSince(Start) / Reps});
    Start = std::chrono::steady_clock::now();
    for (int I = 0; I < Reps; ++I)
      Server.roundTrip(Check);
    Entries.push_back({"check_server_seconds",
                       "mean `stqc check --server` round trip: socket, "
                       "JSON framing, fresh Session on warm shared state",
                       secondsSince(Start) / Reps});
  }

  // Concurrent-client scaling: aggregate requests per second as clients
  // pile on. Requests alternate check and (cache-warm) prove.
  for (int Clients : {1, 2, 4, 8}) {
    constexpr int PerClient = 10;
    auto Start = std::chrono::steady_clock::now();
    std::vector<std::thread> Threads;
    for (int C = 0; C < Clients; ++C)
      Threads.emplace_back([&Server, C] {
        for (int I = 0; I < PerClient; ++I)
          Server.roundTrip(I % 2 == C % 2 ? checkRequest() : proveRequest());
      });
    for (std::thread &T : Threads)
      T.join();
    double Elapsed = secondsSince(Start);
    Entries.push_back(
        {"throughput_" + std::to_string(Clients) + "_clients",
         std::to_string(Clients) + " concurrent clients, " +
             std::to_string(PerClient) + " requests each",
         Elapsed > 0 ? Clients * PerClient / Elapsed : 0,
         "requests_per_second"});
  }

  return Entries;
}

bool writeReport(const std::vector<ResultEntry> &Entries,
                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << "{\n  \"schema\": \"stq-bench-server-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const ResultEntry &E = Entries[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Value);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"detail\": \"" << E.Detail << "\",\n"
       << "      \"value\": " << Buf << ",\n"
       << "      \"unit\": \"" << E.Unit << "\"\n"
       << "    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return true;
}

} // namespace

// The warm-path request on its own, for --benchmark_filter runs.
static void BM_WarmProveRoundTrip(benchmark::State &State) {
  BenchServer Server;
  Server.roundTrip(proveRequest()); // warm the cache once
  for (auto _ : State) {
    server::rpc::Response R = Server.roundTrip(proveRequest());
    benchmark::DoNotOptimize(R.ExitCode);
  }
}
BENCHMARK(BM_WarmProveRoundTrip)->Unit(benchmark::kMillisecond);

static void BM_CheckRoundTrip(benchmark::State &State) {
  BenchServer Server;
  for (auto _ : State) {
    server::rpc::Response R = Server.roundTrip(checkRequest());
    benchmark::DoNotOptimize(R.ExitCode);
  }
}
BENCHMARK(BM_CheckRoundTrip)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  {
    BenchServer Server;
    std::vector<ResultEntry> Entries = measure(Server);
    std::printf("=== stqd server throughput ===\n");
    for (const ResultEntry &E : Entries)
      std::printf("%-28s %12.6f %s\n", E.Name.c_str(), E.Value, E.Unit);
    const char *Out = std::getenv("STQ_SERVER_BENCH_OUT");
    std::string Path = Out && *Out ? Out : "BENCH_server.json";
    if (writeReport(Entries, Path))
      std::printf("report written to %s\n\n", Path.c_str());
    else
      std::printf("could not write %s\n\n", Path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
