//===- bench_unique_grep.cpp - Experiment U6 (section 6.2) ----------------===//
//
// Regenerates the unique experiment: the grep dfa global's 49 references
// validate; initialization requires one unchecked cast; a global passed as
// a procedure argument is a true violation of uniqueness.
//
//===----------------------------------------------------------------------===//

#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq::workloads;

static void printTable() {
  UniqueRow Ok = runUniqueExperiment(makeGrepDfaUnique());
  UniqueRow Bad = runUniqueExperiment(makeGrepDfaUniqueViolating());
  std::printf("=== Section 6.2: unique on grep's dfa global ===\n");
  std::printf("%-34s %8s %12s\n", "", "paper", "this repo");
  std::printf("%-34s %8u %12u\n", "references to dfa validated:", 49u,
              Ok.RefSites);
  std::printf("%-34s %8u %12u\n", "violations (well-behaved module):", 0u,
              Ok.Violations);
  std::printf("%-34s %8s %12u\n", "initialization casts:", "1*", Ok.Casts);
  std::printf("%-34s %8s %12u\n", "violations when global passed:", ">0",
              Bad.Violations);
  std::printf("(* the paper reports the assign rules were insufficient to "
              "validate dfa's initialization from the parser module)\n\n");
}

static void BM_UniqueExperiment(benchmark::State &State) {
  GeneratedWorkload W = makeGrepDfaUnique();
  for (auto _ : State) {
    UniqueRow Row = runUniqueExperiment(W);
    benchmark::DoNotOptimize(Row.Violations);
  }
}
BENCHMARK(BM_UniqueExperiment)->Unit(benchmark::kMillisecond);

static void BM_UniqueViolationDetection(benchmark::State &State) {
  GeneratedWorkload W = makeGrepDfaUniqueViolating();
  for (auto _ : State) {
    UniqueRow Row = runUniqueExperiment(W);
    benchmark::DoNotOptimize(Row.Violations);
  }
}
BENCHMARK(BM_UniqueViolationDetection)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
