//===- bench_soundness_times.cpp - Experiment S4 (section 4 timings) ------===//
//
// Regenerates the paper's soundness-checking timing claims: "The value
// qualifiers nonnull, nonzero, pos, and neg are each proven sound by our
// checker in under one second. The reference qualifiers unique and
// unaliased are each proven sound in under 30 seconds." The shape to
// reproduce: every qualifier verifies, and reference qualifiers cost more
// than value qualifiers (more obligations, quantified invariants, case
// splits).
//
//===----------------------------------------------------------------------===//

#include "ProverBenchReport.h"
#include "qual/Builtins.h"
#include "qual/QualParser.h"
#include "soundness/Soundness.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq;
using namespace stq::soundness;

namespace {

qual::QualifierSet loadAll() {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  qual::loadAllBuiltinQualifiers(Set, Diags);
  return Set;
}

void printTable() {
  qual::QualifierSet Set = loadAll();
  SoundnessChecker SC(Set);
  std::printf("=== Section 4: automated soundness checking ===\n");
  std::printf("%-11s %-8s %12s %12s %10s %8s\n", "qualifier", "kind",
              "obligations", "failed", "seconds", "bound");
  double ValueTotal = 0, RefTotal = 0;
  for (const char *Name : {"pos", "neg", "nonzero", "nonnull", "tainted",
                           "untainted", "unique", "unaliased"}) {
    SoundnessReport R = SC.checkQualifier(Name);
    const qual::QualifierDef *Q = Set.find(Name);
    bool IsRef = Q && Q->IsRef;
    (IsRef ? RefTotal : ValueTotal) += R.TotalSeconds;
    std::printf("%-11s %-8s %12zu %12u %10.4f %8s\n", Name,
                R.IsFlowQualifier ? "flow" : (IsRef ? "ref" : "value"),
                R.Obligations.size(), R.failedCount(), R.TotalSeconds,
                IsRef ? "<30s" : "<1s");
  }
  std::printf("value qualifiers total: %.4fs (paper bound: <1s each)\n",
              ValueTotal);
  std::printf("reference qualifiers total: %.4fs (paper bound: <30s "
              "each)\n\n",
              RefTotal);
}

void benchQualifier(benchmark::State &State, const char *Name) {
  qual::QualifierSet Set = loadAll();
  for (auto _ : State) {
    SoundnessChecker SC(Set);
    SoundnessReport R = SC.checkQualifier(Name);
    benchmark::DoNotOptimize(R.sound());
  }
}

} // namespace

static void BM_SoundnessPos(benchmark::State &S) { benchQualifier(S, "pos"); }
static void BM_SoundnessNeg(benchmark::State &S) { benchQualifier(S, "neg"); }
static void BM_SoundnessNonzero(benchmark::State &S) {
  benchQualifier(S, "nonzero");
}
static void BM_SoundnessNonnull(benchmark::State &S) {
  benchQualifier(S, "nonnull");
}
static void BM_SoundnessUnique(benchmark::State &S) {
  benchQualifier(S, "unique");
}
static void BM_SoundnessUnaliased(benchmark::State &S) {
  benchQualifier(S, "unaliased");
}
BENCHMARK(BM_SoundnessPos)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SoundnessNeg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SoundnessNonzero)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SoundnessNonnull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SoundnessUnique)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SoundnessUnaliased)->Unit(benchmark::kMillisecond);

// The negative path: the paper's bogus subtraction rule must be rejected,
// and rejection should not be meaningfully slower than acceptance.
static void BM_SoundnessRejectsBogusRule(benchmark::State &State) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  qual::parseQualifiers(R"(
value qualifier neg(int Expr E)
  case E of
    decl int Const C:
      C, where C < 0
  invariant value(E) < 0
value qualifier pos(int Expr E)
  case E of
    decl int Expr E1, E2:
      E1 - E2, where pos(E1) && pos(E2)
  invariant value(E) > 0
)",
                        Set, Diags);
  qual::checkWellFormed(Set, Diags);
  for (auto _ : State) {
    SoundnessChecker SC(Set);
    SoundnessReport R = SC.checkQualifier("pos");
    if (R.sound())
      State.SkipWithError("bogus rule was accepted");
    benchmark::DoNotOptimize(R.failedCount());
  }
}
BENCHMARK(BM_SoundnessRejectsBogusRule)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  bool BoundsOk = stq::benchutil::reportProverBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return BoundsOk ? 0 : 1;
}
