//===- bench_prover.cpp - Prover microbenchmarks and ablations ------------===//
//
// Ablation 3 from DESIGN.md: obligations discharge at small instantiation
// depth. Sweeps the round bound to find the depth each obligation family
// needs, and benchmarks the prover's core operations.
//
//===----------------------------------------------------------------------===//

#include "ProverBenchReport.h"
#include "prover/Theory.h"
#include "qual/Builtins.h"
#include "soundness/Soundness.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq;
using namespace stq::prover;
using namespace stq::soundness;

namespace {

void printTable() {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  qual::loadAllBuiltinQualifiers(Set, Diags);
  std::printf("=== Prover ablation: instantiation-round bound ===\n");
  std::printf("%-11s", "qualifier");
  for (unsigned Rounds : {0u, 1u, 2u, 3u, 4u, 8u})
    std::printf(" %8s%u", "rounds<=", Rounds);
  std::printf("\n");
  for (const char *Name : {"pos", "nonzero", "nonnull", "unique",
                           "unaliased"}) {
    std::printf("%-11s", Name);
    for (unsigned Rounds : {0u, 1u, 2u, 3u, 4u, 8u}) {
      ProverOptions Options;
      Options.MaxRounds = Rounds;
      SoundnessChecker SC(Set, Options);
      SoundnessReport R = SC.checkQualifier(Name);
      std::printf(" %9s", R.sound() ? "proved" : "-");
    }
    std::printf("\n");
  }
  std::printf("(every obligation discharges within a handful of "
              "instantiation rounds, as with Simplify's matching depth)\n\n");
}

} // namespace

static void BM_CongruenceClosureChain(benchmark::State &State) {
  for (auto _ : State) {
    TermArena A;
    // A chain x0=x1=...=xN with f-applications; congruence must join all
    // f(x_i).
    unsigned N = static_cast<unsigned>(State.range(0));
    std::vector<TermId> Xs, Fs;
    for (unsigned I = 0; I < N; ++I) {
      Xs.push_back(A.app("x" + std::to_string(I)));
      Fs.push_back(A.app("f", {Xs.back()}));
    }
    CongruenceClosure CC(A);
    for (unsigned I = 0; I + 1 < N; ++I)
      CC.assertEq(Xs[I], Xs[I + 1]);
    benchmark::DoNotOptimize(CC.isEqual(Fs.front(), Fs.back()));
  }
}
BENCHMARK(BM_CongruenceClosureChain)->Arg(64)->Arg(256)->Arg(1024);

static void BM_ProveProductSign(benchmark::State &State) {
  for (auto _ : State) {
    Prover P;
    P.addArithmeticSignAxioms();
    TermArena &A = P.arena();
    TermId X = A.app("x"), Y = A.app("y");
    P.addHypothesis(fGt(X, A.intConst(0)));
    P.addHypothesis(fGt(Y, A.intConst(0)));
    auto R = P.prove(fGt(A.app("times", {X, Y}), A.intConst(0)));
    if (R != ProofResult::Proved)
      State.SkipWithError("obligation failed");
  }
}
BENCHMARK(BM_ProveProductSign)->Unit(benchmark::kMicrosecond);

static void BM_ProveSelectUpdateSplit(benchmark::State &State) {
  for (auto _ : State) {
    Prover P;
    TermArena &A = P.arena();
    TermId Vm = A.var("m"), Vk = A.var("k"), Vv = A.var("v"),
           Vj = A.var("j");
    TermId Upd = A.app("update", {Vm, Vk, Vv});
    P.addAxiom("sel-eq",
               fForall({"m", "k", "v"},
                       fEq(A.app("select", {Upd, Vk}), Vv),
                       {MultiPattern{Upd}}));
    P.addAxiom("sel-other",
               fForall({"m", "k", "v", "j"},
                       fOr({fEq(Vj, Vk),
                            fEq(A.app("select", {Upd, Vj}),
                                A.app("select", {Vm, Vj}))}),
                       {MultiPattern{A.app("select", {Upd, Vj})}}));
    TermId M = A.app("m0"), K = A.app("k0"), V = A.app("v0"),
           J = A.app("j0");
    P.addHypothesis(fNe(J, K));
    TermId Sel = A.app("select", {A.app("update", {M, K, V}), J});
    auto R = P.prove(fEq(Sel, A.app("select", {M, J})));
    if (R != ProofResult::Proved)
      State.SkipWithError("obligation failed");
  }
}
BENCHMARK(BM_ProveSelectUpdateSplit)->Unit(benchmark::kMicrosecond);

static void BM_UniquePreservationObligation(benchmark::State &State) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  qual::loadBuiltinQualifiers({"unique"}, Set, Diags);
  for (auto _ : State) {
    SoundnessChecker SC(Set);
    SoundnessReport R = SC.checkQualifier("unique");
    if (!R.sound())
      State.SkipWithError("unique did not verify");
    benchmark::DoNotOptimize(R.TotalSeconds);
  }
}
BENCHMARK(BM_UniquePreservationObligation)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  bool BoundsOk = stq::benchutil::reportProverBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return BoundsOk ? 0 : 1;
}
