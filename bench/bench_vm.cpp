//===- bench_vm.cpp - VM vs interpreter run-phase speedup -----------------===//
//
// Measures the register-bytecode VM against its reason to exist: executing
// an instrumented program should be several times faster than tree-walking
// it, with byte-identical observable behavior. Each workload-farm program
// is front-ended and checked once, compiled once (with and without the
// prover-driven guard-elision pass), and then the run phase alone is timed
// for all three engines (interpreter, VM with elision, VM without) as the
// best of several trials of many repetitions.
//
// Before timing, the three engines' results are compared field by field —
// status, exit value, output, trap message, step count, and (between the
// two non-eliding engines) executed-check counts. A mismatch is a
// correctness bug and fails the bench immediately, regardless of timing.
//
// The headline statistic is the farm run-phase speedup: total interpreter
// time over total VM time across the whole farm, weighting each program by
// how long it actually runs. The acceptance bound CI pins is speedup >= 3x
// (enforced when STQ_ENFORCE_TIMING_BOUNDS=1, mirroring bench_prover); the
// report also records per-workload speedups, compile+elide cost, elided
// vs residual guard counts, and the residual-check overhead the elision
// pass removes (VM-without-elision time over VM-with-elision time).
//
// Results go to BENCH_vm.json (schema stq-bench-vm-v1); STQ_VM_BENCH_OUT
// overrides the path.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "interp/Interp.h"
#include "qual/Builtins.h"
#include "vm/VM.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace stq;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ResultEntry {
  std::string Name;
  std::string Detail;
  double Value = 0;
  const char *Unit = "seconds";
};

/// One farm member: the generated program, the qualifiers it exercises,
/// and how many repetitions one timing trial runs (sized so every
/// workload contributes comparable wall-clock per trial).
struct FarmMember {
  workloads::GeneratedWorkload W;
  std::vector<std::string> Builtins;
  int Reps;
};

std::vector<FarmMember> farm() {
  using namespace stq::workloads;
  return {
      {makeGrepDfa(), {"nonnull"}, 30},
      {makeGrepDfa(4), {"nonnull"}, 12},
      {makeBftpd(), {"untainted"}, 120},
      {makeMingetty(), {"untainted"}, 60},
      {makeIdentd(), {"untainted"}, 120},
      {makeChecksumKernel(), {"pos", "neg", "nonzero"}, 8},
  };
}

/// Field-by-field result comparison. Elision legitimately skips executed
/// checks, so ChecksExecuted is only compared when \p CompareChecks.
bool sameResult(const interp::RunResult &A, const interp::RunResult &B,
                bool CompareChecks, std::string &Why) {
  if (A.Status != B.Status) {
    Why = "status";
    return false;
  }
  if (A.ExitValue != B.ExitValue) {
    Why = "exit value";
    return false;
  }
  if (A.Output != B.Output) {
    Why = "output";
    return false;
  }
  if (A.TrapMessage != B.TrapMessage) {
    Why = "trap message";
    return false;
  }
  if (A.Steps != B.Steps) {
    Why = "step count";
    return false;
  }
  if (A.CheckFailures.size() != B.CheckFailures.size()) {
    Why = "check failures";
    return false;
  }
  if (CompareChecks && A.ChecksExecuted != B.ChecksExecuted) {
    Why = "executed-check count";
    return false;
  }
  return true;
}

/// Best-of-trials per-run times for the three engines, measured
/// interleaved (every trial times all three back to back) so CPU
/// frequency drift across the bench run cannot bias the ratios.
struct EngineTimes {
  double Interp = 1e18;
  double Vm = 1e18;
  double VmNoElide = 1e18;
};

template <typename InterpFn, typename VmFn, typename VmPlainFn>
EngineTimes bestPerRun(int Reps, InterpFn &&RunInterp, VmFn &&RunVm,
                       VmPlainFn &&RunVmPlain) {
  constexpr int Trials = 5;
  EngineTimes Best;
  for (int T = 0; T < Trials; ++T) {
    double T0 = now();
    for (int I = 0; I < Reps; ++I)
      RunInterp();
    double T1 = now();
    for (int I = 0; I < Reps; ++I)
      RunVm();
    double T2 = now();
    for (int I = 0; I < Reps; ++I)
      RunVmPlain();
    double T3 = now();
    Best.Interp = std::min(Best.Interp, T1 - T0);
    Best.Vm = std::min(Best.Vm, T2 - T1);
    Best.VmNoElide = std::min(Best.VmNoElide, T3 - T2);
  }
  Best.Interp /= Reps;
  Best.Vm /= Reps;
  Best.VmNoElide /= Reps;
  return Best;
}

std::vector<ResultEntry> measure(bool &AcceptanceOk, bool &ResultsMatch) {
  std::vector<ResultEntry> Entries;
  double TotInterp = 0, TotVm = 0, TotVmNoElide = 0;
  double TotCompile = 0;
  uint64_t TotQuals = 0, TotElided = 0;
  ResultsMatch = true;

  for (const FarmMember &F : farm()) {
    qual::QualifierSet Quals;
    DiagnosticEngine Diags;
    qual::loadBuiltinQualifiers(F.Builtins, Quals, Diags);
    std::unique_ptr<cminus::Program> Prog;
    // Keep every cast's run-time check in RuntimeChecks (the checker
    // normally strips statically derivable ones itself): the VM's
    // prover-driven elision pass is the subject under measurement, so
    // the full residual-check load must reach all three engines and
    // only that pass may remove any of it.
    checker::CheckerOptions CO;
    CO.ElideProvableCastChecks = false;
    checker::CheckResult CR =
        checker::checkSource(F.W.Source, Quals, Diags, Prog, CO);
    if (!Prog || Diags.hasErrors()) {
      std::fprintf(stderr, "bench_vm: front end rejected %s\n",
                   F.W.Name.c_str());
      std::exit(1);
    }

    vm::VmOptions VO;
    VO.ProgramCheckedClean = CR.ok();
    double C0 = now();
    auto CP = vm::compileProgram(*Prog, Quals, CR.RuntimeChecks, VO);
    double CompileSecs = now() - C0;
    TotCompile += CompileSecs;

    vm::VmOptions VOPlain = VO;
    VOPlain.ElideChecks = false;
    auto CPPlain = vm::compileProgram(*Prog, Quals, CR.RuntimeChecks, VOPlain);

    // Correctness before timing: the interpreter is the oracle.
    interp::RunResult RI =
        interp::runProgram(*Prog, Quals, CR.RuntimeChecks, VO.Interp);
    interp::RunResult RV = vm::execute(*CP, VO.Interp);
    interp::RunResult RVPlain = vm::execute(*CPPlain, VO.Interp);
    std::string Why;
    if (!sameResult(RI, RVPlain, /*CompareChecks=*/true, Why) ||
        !sameResult(RI, RV, /*CompareChecks=*/false, Why)) {
      std::fprintf(stderr, "bench_vm: %s: VM diverges from interpreter (%s)\n",
                   F.W.Name.c_str(), Why.c_str());
      ResultsMatch = false;
      continue;
    }

    EngineTimes Times = bestPerRun(
        F.Reps,
        [&] {
          benchmark::DoNotOptimize(
              interp::runProgram(*Prog, Quals, CR.RuntimeChecks, VO.Interp));
        },
        [&] { benchmark::DoNotOptimize(vm::execute(*CP, VO.Interp)); },
        [&] { benchmark::DoNotOptimize(vm::execute(*CPPlain, VO.Interp)); });
    double InterpSecs = Times.Interp;
    double VmSecs = Times.Vm;
    double VmPlainSecs = Times.VmNoElide;

    TotInterp += InterpSecs;
    TotVm += VmSecs;
    TotVmNoElide += VmPlainSecs;
    TotQuals += CP->Elision.GuardQuals;
    TotElided += CP->Elision.Elided;

    Entries.push_back({F.W.Name + "_interp_run_seconds",
                       "interpreter run phase, best of 5 trials x " +
                           std::to_string(F.Reps) + " reps",
                       InterpSecs});
    Entries.push_back({F.W.Name + "_vm_run_seconds",
                       "VM run phase with guard elision, same trials",
                       VmSecs});
    Entries.push_back({F.W.Name + "_vm_noelide_run_seconds",
                       "VM run phase with every compiled guard residual",
                       VmPlainSecs});
    Entries.push_back({F.W.Name + "_speedup",
                       "interpreter time / VM time for this workload",
                       VmSecs > 0 ? InterpSecs / VmSecs : 0, "ratio"});
  }

  double Speedup = TotVm > 0 ? TotInterp / TotVm : 0;
  double SpeedupNoElide = TotVmNoElide > 0 ? TotInterp / TotVmNoElide : 0;
  Entries.push_back({"farm_interp_run_seconds",
                     "summed per-run interpreter time across the farm",
                     TotInterp});
  Entries.push_back({"farm_vm_run_seconds",
                     "summed per-run VM time across the farm", TotVm});
  Entries.push_back({"farm_speedup",
                     "farm run-phase speedup (total interpreter time / "
                     "total VM time) — the >=3x acceptance bound",
                     Speedup, "ratio"});
  Entries.push_back({"farm_speedup_noelide",
                     "farm speedup with the elision pass disabled (every "
                     "compiled guard executes)",
                     SpeedupNoElide, "ratio"});
  Entries.push_back({"residual_check_overhead",
                     "VM-without-elision time / VM-with-elision time — the "
                     "run-phase cost the elision pass removes",
                     TotVm > 0 ? TotVmNoElide / TotVm : 0, "ratio"});
  Entries.push_back({"compile_elide_seconds",
                     "one-time compile + elide cost across the farm",
                     TotCompile});
  Entries.push_back({"guard_quals_total",
                     "individual qualifier checks compiled across the farm",
                     static_cast<double>(TotQuals), "count"});
  Entries.push_back({"guard_quals_elided",
                     "qualifier checks discharged by the prover-driven "
                     "elision pass",
                     static_cast<double>(TotElided), "count"});
  Entries.push_back({"guard_quals_residual",
                     "qualifier checks still evaluated at run time",
                     static_cast<double>(TotQuals - TotElided), "count"});

  AcceptanceOk = ResultsMatch && Speedup >= 3.0;
  return Entries;
}

bool writeReport(const std::vector<ResultEntry> &Entries,
                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << "{\n  \"schema\": \"stq-bench-vm-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const ResultEntry &E = Entries[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Value);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"detail\": \"" << E.Detail << "\",\n"
       << "      \"value\": " << Buf << ",\n"
       << "      \"unit\": \"" << E.Unit << "\"\n"
       << "    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return true;
}

/// Shared setup for the steady-state BENCHMARK wrappers below.
struct KernelFixture {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult CR;
  std::unique_ptr<vm::CompiledProgram> CP;
  vm::VmOptions VO;

  KernelFixture() {
    workloads::GeneratedWorkload W = workloads::makeChecksumKernel();
    qual::loadBuiltinQualifiers({"pos", "neg", "nonzero"}, Quals, Diags);
    CR = checker::checkSource(W.Source, Quals, Diags, Prog, {});
    VO.ProgramCheckedClean = CR.ok();
    if (Prog)
      CP = vm::compileProgram(*Prog, Quals, CR.RuntimeChecks, VO);
  }
};

KernelFixture &kernel() {
  static KernelFixture F;
  return F;
}

} // namespace

static void BM_InterpChecksumKernel(benchmark::State &State) {
  KernelFixture &F = kernel();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        interp::runProgram(*F.Prog, F.Quals, F.CR.RuntimeChecks, F.VO.Interp));
}
BENCHMARK(BM_InterpChecksumKernel)->Unit(benchmark::kMillisecond);

static void BM_VmChecksumKernel(benchmark::State &State) {
  KernelFixture &F = kernel();
  for (auto _ : State)
    benchmark::DoNotOptimize(vm::execute(*F.CP, F.VO.Interp));
}
BENCHMARK(BM_VmChecksumKernel)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  bool AcceptanceOk = false, ResultsMatch = true;
  std::vector<ResultEntry> Entries = measure(AcceptanceOk, ResultsMatch);
  std::printf("=== VM vs interpreter run phase ===\n");
  for (const ResultEntry &E : Entries)
    std::printf("%-40s %12.6f %s\n", E.Name.c_str(), E.Value, E.Unit);
  const char *Out = std::getenv("STQ_VM_BENCH_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_vm.json";
  if (writeReport(Entries, Path))
    std::printf("report written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());
  if (!ResultsMatch) {
    std::fprintf(stderr,
                 "bench_vm: FAIL: VM results diverge from the interpreter\n");
    return 1;
  }
  const char *Enforce = std::getenv("STQ_ENFORCE_TIMING_BOUNDS");
  if (!AcceptanceOk) {
    std::fprintf(stderr,
                 "bench_vm: farm run-phase speedup below the 3x bound%s\n",
                 Enforce && *Enforce && *Enforce != '0'
                     ? " (STQ_ENFORCE_TIMING_BOUNDS set: failing)"
                     : " (informational; set STQ_ENFORCE_TIMING_BOUNDS=1 "
                       "to enforce)");
    if (Enforce && *Enforce && *Enforce != '0')
      return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
