//===- bench_frontend.cpp - Multi-TU ingestion throughput and scaling -----===//
//
// Measures the real-C front end (src/pp + src/frontend) on a generated
// multi-translation-unit farm: a shared header plus 120 qualifier-heavy
// units fed through Session::checkFiles. Reports
//
//   * front-end phase time (preprocess + parse + sema + lower across all
//     TUs) and end-to-end check time at --jobs 1 and --jobs 4, with the
//     jobs-4-over-1 speedups — the per-TU fan-out is the point of the
//     subsystem, so the speedup is the headline number;
//   * preprocessor volume (input lines consumed, expanded lines
//     produced, includes honored) for throughput tracking;
//   * a byte-identity bit: diagnostics and verdict counters at jobs 4
//     must equal jobs 1 exactly (hard-gated, any host).
//
// On a single-CPU host a genuine parallel speedup is impossible, so the
// scaling gate mirrors bench_inference: above 1 hardware thread jobs-4
// must beat jobs-1; at 1 it must merely stay within scheduling noise.
// The gate exits non-zero when STQ_ENFORCE_TIMING_BOUNDS=1 (the CI
// frontend-smoke job sets it); otherwise it is informational.
//
// Results go to BENCH_frontend.json (schema stq-bench-frontend-v1);
// STQ_FRONTEND_BENCH_OUT overrides the path.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace stq;

namespace {

constexpr unsigned NumUnits = 120;
constexpr unsigned FnsPerUnit = 6;
constexpr int Reps = 3;

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

double histogramMean(Session &S, const char *Name) {
  stats::Registry::Snapshot Snap = S.metrics().snapshot();
  auto It = Snap.Histograms.find(Name);
  return It == Snap.Histograms.end() ? 0.0 : It->second.mean();
}

struct RunResult {
  double Total = 0;    ///< checkFiles wall seconds.
  double Frontend = 0; ///< phase.frontend_seconds.
  unsigned QualErrors = 0;
  std::string Diags; ///< Every diagnostic rendered, for byte-comparison.
  pp::PpStats Pp;
};

/// One checkFiles run in a fresh Session; headers resolve from a shipped
/// in-memory map, so the benchmark never touches the filesystem.
RunResult runOnce(const workloads::MultiTuProgram &P, const pp::FileMap &Files,
                  unsigned Jobs) {
  SessionOptions Opts;
  Opts.Builtins = {"pos", "neg"};
  Opts.Jobs = Jobs;
  Opts.ShippedFiles = &Files;
  Session S(Opts);
  std::vector<frontend::InputFile> Inputs;
  for (const workloads::MultiTuProgram::File &U : P.Units)
    Inputs.push_back({U.Name, U.Text});

  RunResult R;
  auto Start = std::chrono::steady_clock::now();
  Session::CheckFilesOutcome Out = S.checkFiles(Inputs);
  R.Total = secondsSince(Start);
  if (!Out.Load.ok()) {
    std::fprintf(stderr, "bench_frontend: front end rejected the farm\n");
    S.diags().print(std::cerr);
    std::exit(1);
  }
  R.Frontend = histogramMean(S, "phase.frontend_seconds");
  R.QualErrors = Out.Result.QualErrors;
  for (const Diagnostic &D : S.diags().diagnostics())
    R.Diags += D.str() + "\n";
  for (const frontend::TUnit &U : Out.Load.Units) {
    R.Pp.LinesIn += U.Pp.Stats.LinesIn;
    R.Pp.LinesOut += U.Pp.Stats.LinesOut;
    R.Pp.Includes += U.Pp.Stats.Includes;
    R.Pp.Expansions += U.Pp.Stats.Expansions;
  }
  return R;
}

struct ResultEntry {
  std::string Name;
  std::string Detail;
  double Value = 0;
  const char *Unit = "seconds";
};

std::vector<ResultEntry> measure(bool &AcceptanceOk) {
  std::vector<ResultEntry> Entries;
  // Seed 3 plants one qualifier warning, so the byte-identity comparison
  // covers remapped diagnostics and not just the verdict line.
  workloads::MultiTuProgram P =
      workloads::makeMultiTuFarm(NumUnits, FnsPerUnit, /*Seed=*/3);
  pp::FileMap Files;
  for (const workloads::MultiTuProgram::File &H : P.Headers)
    Files[H.Name] = H.Text;

  RunResult J1, J4;
  double Best1 = 0, Best4 = 0, Front1 = 0, Front4 = 0;
  for (int I = 0; I < Reps; ++I) {
    RunResult R = runOnce(P, Files, 1);
    if (I == 0 || R.Total < Best1) {
      Best1 = R.Total;
      Front1 = R.Frontend;
      J1 = R;
    }
  }
  for (int I = 0; I < Reps; ++I) {
    RunResult R = runOnce(P, Files, 4);
    if (I == 0 || R.Total < Best4) {
      Best4 = R.Total;
      Front4 = R.Frontend;
      J4 = R;
    }
  }

  bool ByteIdentical = J1.Diags == J4.Diags && J1.QualErrors == J4.QualErrors;

  Entries.push_back({"translation_units",
                     "generated .c files checked (plus one shared header)",
                     static_cast<double>(P.Units.size()), "count"});
  Entries.push_back({"source_lines",
                     "non-blank lines across headers and units",
                     static_cast<double>(P.Lines), "count"});
  Entries.push_back({"pp_lines_in",
                     "physical input lines the preprocessor consumed",
                     static_cast<double>(J1.Pp.LinesIn), "count"});
  Entries.push_back({"pp_lines_out",
                     "expanded output lines the parser consumed",
                     static_cast<double>(J1.Pp.LinesOut), "count"});
  Entries.push_back({"pp_includes",
                     "#include directives honored across all TUs",
                     static_cast<double>(J1.Pp.Includes), "count"});
  Entries.push_back({"pp_expansions",
                     "macro invocations expanded across all TUs",
                     static_cast<double>(J1.Pp.Expansions), "count"});
  Entries.push_back({"frontend_jobs1_seconds",
                     "front-end phase (preprocess+parse+sema+lower, all "
                     "TUs) at --jobs 1, best of " +
                         std::to_string(Reps),
                     Front1});
  Entries.push_back({"frontend_jobs4_seconds",
                     "front-end phase at --jobs 4, best of " +
                         std::to_string(Reps),
                     Front4});
  Entries.push_back({"frontend_speedup_4x",
                     "front-end phase: jobs-1 time over jobs-4 time",
                     Front4 > 0 ? Front1 / Front4 : 0, "ratio"});
  Entries.push_back({"check_jobs1_seconds",
                     "end-to-end checkFiles at --jobs 1, best of " +
                         std::to_string(Reps),
                     Best1});
  Entries.push_back({"check_jobs4_seconds",
                     "end-to-end checkFiles at --jobs 4, best of " +
                         std::to_string(Reps),
                     Best4});
  Entries.push_back({"check_speedup_4x",
                     "end-to-end: jobs-1 time over jobs-4 time",
                     Best4 > 0 ? Best1 / Best4 : 0, "ratio"});
  Entries.push_back({"diagnostics_byte_identical",
                     "jobs-4 diagnostics and verdict equal jobs-1 exactly",
                     ByteIdentical ? 1.0 : 0.0, "bool"});
  Entries.push_back({"planted_warnings",
                     "qualifier warnings the generator planted",
                     static_cast<double>(P.PlantedWarnings), "count"});

  // On a single-CPU host a genuine parallel speedup is impossible, and the
  // per-TU fan-out pays real oversubscription cost (one task per TU, all
  // context-switching on one core); require only that jobs-4 stays within
  // 1.5x of jobs-1 there.
  unsigned HW = std::thread::hardware_concurrency();
  bool ScalingOk = HW > 1 ? Front4 > 0 && Front4 < Front1
                          : Front4 > 0 && Front4 < Front1 * 1.5;
  Entries.push_back({"hardware_threads",
                     "std::thread::hardware_concurrency() on this host "
                     "(speedup is hard-gated only above 1)",
                     static_cast<double>(HW), "count"});
  AcceptanceOk = ScalingOk && ByteIdentical;
  return Entries;
}

bool writeReport(const std::vector<ResultEntry> &Entries,
                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << "{\n  \"schema\": \"stq-bench-frontend-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const ResultEntry &E = Entries[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Value);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"detail\": \"" << E.Detail << "\",\n"
       << "      \"value\": " << Buf << ",\n"
       << "      \"unit\": \"" << E.Unit << "\"\n"
       << "    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return true;
}

} // namespace

// The steady-state front end on its own, for --benchmark_filter runs.
static void BM_MultiTuLoad(benchmark::State &State) {
  workloads::MultiTuProgram P = workloads::makeMultiTuFarm(24, FnsPerUnit, 1);
  pp::FileMap Files;
  for (const workloads::MultiTuProgram::File &H : P.Headers)
    Files[H.Name] = H.Text;
  std::vector<frontend::InputFile> Inputs;
  for (const workloads::MultiTuProgram::File &U : P.Units)
    Inputs.push_back({U.Name, U.Text});
  for (auto _ : State) {
    SessionOptions Opts;
    Opts.Builtins = {"pos", "neg"};
    Opts.ShippedFiles = &Files;
    Session S(Opts);
    Session::LoadOutcome Out = S.load(Inputs);
    benchmark::DoNotOptimize(Out.Units.size());
  }
}
BENCHMARK(BM_MultiTuLoad)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  bool AcceptanceOk = false;
  std::vector<ResultEntry> Entries = measure(AcceptanceOk);
  std::printf("=== multi-TU front end: ingestion throughput and scaling ===\n");
  for (const ResultEntry &E : Entries)
    std::printf("%-32s %12.6f %s\n", E.Name.c_str(), E.Value, E.Unit);
  const char *Out = std::getenv("STQ_FRONTEND_BENCH_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_frontend.json";
  if (writeReport(Entries, Path))
    std::printf("report written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());
  const char *Enforce = std::getenv("STQ_ENFORCE_TIMING_BOUNDS");
  if (!AcceptanceOk) {
    std::fprintf(stderr,
                 "bench_frontend: scaling or byte-identity gate failed%s\n",
                 Enforce && *Enforce && *Enforce != '0'
                     ? " (STQ_ENFORCE_TIMING_BOUNDS set: failing)"
                     : " (informational; set STQ_ENFORCE_TIMING_BOUNDS=1 "
                       "to enforce)");
    if (Enforce && *Enforce && *Enforce != '0')
      return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
