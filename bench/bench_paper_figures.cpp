//===- bench_paper_figures.cpp - Experiments F2-F13 (worked examples) -----===//
//
// Runs the paper's worked code examples end to end (typecheck + execute)
// and reports each figure's expected outcome next to the measured one.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "interp/Interp.h"
#include "qual/Builtins.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq;

namespace {

struct FigureCase {
  const char *Figure;
  const char *Expect;
  std::vector<std::string> Quals;
  const char *Source;
  unsigned ExpectedErrors;
};

const FigureCase Figures[] = {
    {"fig 2 (lcm with cast)", "typechecks; 1 run-time check",
     {"pos", "neg"},
     "int pos gcd(int pos n, int pos m);\n"
     "int pos lcm(int pos a, int pos b) {\n"
     "  int pos d = gcd(a, b);\n"
     "  int pos prod = a * b;\n"
     "  return (int pos) (prod / d);\n"
     "}\n",
     0},
    {"fig 3 (division restrict)", "1 error without nonzero denominator",
     {"pos", "neg", "nonzero"},
     "int f(int a, int b) { return a / b; }\n",
     1},
    {"fig 4 (printf(buf))", "1 error: buf not untainted",
     {"tainted", "untainted"},
     "int printf(char* untainted fmt, ...);\n"
     "void f(char* buf) { printf(buf); }\n",
     1},
    {"fig 6 (make_array)", "typechecks via the new assign rule",
     {"unique"},
     "int* unique array;\n"
     "void make_array(int n) {\n"
     "  array = (int*) malloc(sizeof(int) * n);\n"
     "  for (int i = 0; i < n; i = i + 1)\n"
     "    array[i] = i;\n"
     "}\n",
     0},
    {"sec 2.2.1 (q = p)", "1 error: unique may not be referred to",
     {"unique"},
     "int* unique p;\n"
     "void f() { int* q = p; }\n",
     1},
    {"fig 7 (&unaliased)", "1 error: address may not be taken",
     {"unaliased"},
     "void f() { int unaliased x; int* p; p = &x; }\n",
     1},
    {"fig 12 (*p unchecked)", "1 error per unproven dereference",
     {"nonnull"},
     "int f(int* p) { return *p; }\n",
     1},
    {"sec 2.1.2 (int y = x)", "value-qualified subtyping accepted",
     {"pos", "neg"},
     "int f() { int pos x = 3; int y = x; return y; }\n",
     0},
};

void printTable() {
  std::printf("=== The paper's worked examples ===\n");
  std::printf("%-26s %10s %10s   %s\n", "figure", "expected", "measured",
              "behavior");
  for (const FigureCase &F : Figures) {
    qual::QualifierSet Quals;
    DiagnosticEngine Diags;
    qual::loadBuiltinQualifiers(F.Quals, Quals, Diags);
    std::unique_ptr<cminus::Program> Prog;
    auto R = checker::checkSource(F.Source, Quals, Diags, Prog);
    std::printf("%-26s %10u %10u   %s\n", F.Figure, F.ExpectedErrors,
                R.QualErrors, F.Expect);
  }
  std::printf("\n");
}

} // namespace

// Figure 2 end-to-end: typecheck, execute, run-time check passes.
static void BM_Figure2EndToEnd(benchmark::State &State) {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  qual::loadBuiltinQualifiers({"pos", "neg"}, Quals, Diags);
  const char *Source =
      "int pos gcd(int pos n, int pos m) {\n"
      "  if (m == n) return n;\n"
      "  if (m > n) return gcd(n, (int pos)(m - n));\n"
      "  return gcd(m, (int pos)(n - m));\n"
      "}\n"
      "int pos lcm(int pos a, int pos b) {\n"
      "  int pos d = gcd(a, b);\n"
      "  int pos prod = a * b;\n"
      "  return (int pos) (prod / d);\n"
      "}\n"
      "int main() { return lcm(21, 6); }\n";
  for (auto _ : State) {
    DiagnosticEngine Scratch;
    interp::RunResult R = interp::runSource(Source, Quals, Scratch, {});
    if (!R.ok() || *R.ExitValue != 42)
      State.SkipWithError("figure 2 did not execute correctly");
    benchmark::DoNotOptimize(R.ChecksExecuted);
  }
}
BENCHMARK(BM_Figure2EndToEnd)->Unit(benchmark::kMillisecond);

// The run-time check firing (a failed cast is a fatal error).
static void BM_RuntimeCheckFailurePath(benchmark::State &State) {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  qual::loadBuiltinQualifiers({"pos", "neg"}, Quals, Diags);
  const char *Source = "int main() {\n"
                       "  int y = -3;\n"
                       "  int pos x = (int pos) y;\n"
                       "  return x;\n"
                       "}\n";
  for (auto _ : State) {
    DiagnosticEngine Scratch;
    interp::RunResult R = interp::runSource(Source, Quals, Scratch, {});
    if (R.Status != interp::RunStatus::CheckFailure)
      State.SkipWithError("check did not fire");
    benchmark::DoNotOptimize(R.CheckFailures.size());
  }
}
BENCHMARK(BM_RuntimeCheckFailurePath)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
