//===- bench_paper_figures.cpp - Experiments F2-F13 (worked examples) -----===//
//
// Runs the paper's worked code examples end to end (typecheck + execute)
// and reports each figure's expected outcome next to the measured one.
//
// Also measures the paper's headline timing claims (value-qualifier
// soundness under a second, reference-qualifier soundness under thirty,
// checking overhead under a second) and writes them to BENCH_timings.json
// so CI can track them. Set STQ_ENFORCE_TIMING_BOUNDS=1 to make a blown
// bound a hard failure; STQ_TIMINGS_OUT overrides the output path.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "interp/Interp.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace stq;
using namespace stq::workloads;

namespace {

struct FigureCase {
  const char *Figure;
  const char *Expect;
  std::vector<std::string> Quals;
  const char *Source;
  unsigned ExpectedErrors;
};

const FigureCase Figures[] = {
    {"fig 2 (lcm with cast)", "typechecks; 1 run-time check",
     {"pos", "neg"},
     "int pos gcd(int pos n, int pos m);\n"
     "int pos lcm(int pos a, int pos b) {\n"
     "  int pos d = gcd(a, b);\n"
     "  int pos prod = a * b;\n"
     "  return (int pos) (prod / d);\n"
     "}\n",
     0},
    {"fig 3 (division restrict)", "1 error without nonzero denominator",
     {"pos", "neg", "nonzero"},
     "int f(int a, int b) { return a / b; }\n",
     1},
    {"fig 4 (printf(buf))", "1 error: buf not untainted",
     {"tainted", "untainted"},
     "int printf(char* untainted fmt, ...);\n"
     "void f(char* buf) { printf(buf); }\n",
     1},
    {"fig 6 (make_array)", "typechecks via the new assign rule",
     {"unique"},
     "int* unique array;\n"
     "void make_array(int n) {\n"
     "  array = (int*) malloc(sizeof(int) * n);\n"
     "  for (int i = 0; i < n; i = i + 1)\n"
     "    array[i] = i;\n"
     "}\n",
     0},
    {"sec 2.2.1 (q = p)", "1 error: unique may not be referred to",
     {"unique"},
     "int* unique p;\n"
     "void f() { int* q = p; }\n",
     1},
    {"fig 7 (&unaliased)", "1 error: address may not be taken",
     {"unaliased"},
     "void f() { int unaliased x; int* p; p = &x; }\n",
     1},
    {"fig 12 (*p unchecked)", "1 error per unproven dereference",
     {"nonnull"},
     "int f(int* p) { return *p; }\n",
     1},
    {"sec 2.1.2 (int y = x)", "value-qualified subtyping accepted",
     {"pos", "neg"},
     "int f() { int pos x = 3; int y = x; return y; }\n",
     0},
};

void printTable() {
  std::printf("=== The paper's worked examples ===\n");
  std::printf("%-26s %10s %10s   %s\n", "figure", "expected", "measured",
              "behavior");
  for (const FigureCase &F : Figures) {
    SessionOptions Options;
    Options.Builtins = F.Quals;
    Session S(Options);
    auto R = S.check(F.Source).Result;
    std::printf("%-26s %10u %10u   %s\n", F.Figure, F.ExpectedErrors,
                R.QualErrors, F.Expect);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// BENCH_timings.json: the paper's wall-clock claims, measured.
// ---------------------------------------------------------------------------

struct TimingEntry {
  const char *Name;
  const char *Claim;
  double Seconds = 0;
  double BoundSeconds = 0;
  bool withinBound() const { return Seconds <= BoundSeconds; }
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::vector<TimingEntry> measureTimings() {
  std::vector<TimingEntry> Entries;

  // Section 4: discharging a value qualifier's proof obligations takes
  // under a second.
  {
    SessionOptions Options;
    Options.Builtins = {"pos", "neg", "nonneg", "nonzero"};
    Session S(Options);
    S.loadQualifiers();
    auto Start = std::chrono::steady_clock::now();
    S.prove();
    Entries.push_back({"value_qualifier_soundness",
                       "section 4: value-qualifier soundness proofs finish "
                       "in under a second",
                       secondsSince(Start), 1.0});
  }

  // Section 5: reference-qualifier obligations quantify over the heap and
  // are allowed up to thirty seconds.
  {
    SessionOptions Options;
    Options.Builtins = {"nonnull", "unique", "unaliased"};
    Session S(Options);
    S.loadQualifiers();
    auto Start = std::chrono::steady_clock::now();
    S.prove();
    Entries.push_back({"ref_qualifier_soundness",
                       "section 5: reference-qualifier soundness proofs "
                       "finish in under thirty seconds",
                       secondsSince(Start), 30.0});
  }

  // Section 6: qualifier checking adds under one second of compile time on
  // every experiment (measured on the grep-dfa workload).
  {
    GeneratedWorkload W = makeGrepDfa();
    SessionOptions Options;
    Options.Builtins = {"nonnull"};
    Session S(Options);
    auto FE = S.frontEnd(W.Source);
    auto Start = std::chrono::steady_clock::now();
    if (FE.Ok) {
      DiagnosticEngine Scratch;
      checker::QualChecker Checker(*FE.Program, S.qualifiers(), Scratch, {});
      auto Result = Checker.run();
      benchmark::DoNotOptimize(Result.QualErrors);
    }
    Entries.push_back({"check_overhead_grep_dfa",
                       "section 6: qualifier checking adds under one second "
                       "of compile time",
                       secondsSince(Start), 1.0});
  }

  return Entries;
}

bool writeTimings(const std::vector<TimingEntry> &Entries,
                  const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  bool All = true;
  OS << "{\n  \"schema\": \"stq-bench-timings-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const TimingEntry &E = Entries[I];
    All = All && E.withinBound();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Seconds);
    OS << "    {\n"
       << "      \"name\": \"" << E.Name << "\",\n"
       << "      \"claim\": \"" << E.Claim << "\",\n"
       << "      \"seconds\": " << Buf << ",\n";
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.BoundSeconds);
    OS << "      \"bound_seconds\": " << Buf << ",\n"
       << "      \"within_bound\": " << (E.withinBound() ? "true" : "false")
       << "\n    }" << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ],\n  \"all_within_bounds\": " << (All ? "true" : "false")
     << "\n}\n";
  return true;
}

// Returns false when a bound was blown and STQ_ENFORCE_TIMING_BOUNDS asks
// us to treat that as a failure.
bool reportTimings() {
  std::vector<TimingEntry> Entries = measureTimings();
  std::printf("=== Paper timing claims ===\n");
  bool All = true;
  for (const TimingEntry &E : Entries) {
    All = All && E.withinBound();
    std::printf("%-28s %9.4fs (bound %5.1fs) %s\n", E.Name, E.Seconds,
                E.BoundSeconds, E.withinBound() ? "ok" : "EXCEEDED");
  }
  const char *Out = std::getenv("STQ_TIMINGS_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_timings.json";
  if (writeTimings(Entries, Path))
    std::printf("timings written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());
  const char *Enforce = std::getenv("STQ_ENFORCE_TIMING_BOUNDS");
  if (Enforce && *Enforce && std::string(Enforce) != "0" && !All)
    return false;
  return true;
}

} // namespace

// Figure 2 end-to-end: typecheck, execute, run-time check passes.
static void BM_Figure2EndToEnd(benchmark::State &State) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  S.loadQualifiers();
  const char *Source =
      "int pos gcd(int pos n, int pos m) {\n"
      "  if (m == n) return n;\n"
      "  if (m > n) return gcd(n, (int pos)(m - n));\n"
      "  return gcd(m, (int pos)(n - m));\n"
      "}\n"
      "int pos lcm(int pos a, int pos b) {\n"
      "  int pos d = gcd(a, b);\n"
      "  int pos prod = a * b;\n"
      "  return (int pos) (prod / d);\n"
      "}\n"
      "int main() { return lcm(21, 6); }\n";
  for (auto _ : State) {
    DiagnosticEngine Scratch;
    interp::RunResult R =
        interp::runSource(Source, S.qualifiers(), Scratch, {});
    if (!R.ok() || *R.ExitValue != 42)
      State.SkipWithError("figure 2 did not execute correctly");
    benchmark::DoNotOptimize(R.ChecksExecuted);
  }
}
BENCHMARK(BM_Figure2EndToEnd)->Unit(benchmark::kMillisecond);

// The run-time check firing (a failed cast is a fatal error).
static void BM_RuntimeCheckFailurePath(benchmark::State &State) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  S.loadQualifiers();
  const char *Source = "int main() {\n"
                       "  int y = -3;\n"
                       "  int pos x = (int pos) y;\n"
                       "  return x;\n"
                       "}\n";
  for (auto _ : State) {
    DiagnosticEngine Scratch;
    interp::RunResult R =
        interp::runSource(Source, S.qualifiers(), Scratch, {});
    if (R.Status != interp::RunStatus::CheckFailure)
      State.SkipWithError("check did not fire");
    benchmark::DoNotOptimize(R.CheckFailures.size());
  }
}
BENCHMARK(BM_RuntimeCheckFailurePath)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  bool BoundsOk = reportTimings();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return BoundsOk ? 0 : 1;
}
