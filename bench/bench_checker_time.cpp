//===- bench_checker_time.cpp - Experiment C6 (checking overhead) ---------===//
//
// Regenerates the section 6 claim that "the extra compile time for
// performing qualifier checking in CIL is under one second" on every
// experiment, and sweeps program scale to show near-linear behavior. Also
// runs the DESIGN.md ablation: hasQualifier memoization on vs off.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Inference.h"
#include "driver/Session.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace stq;
using namespace stq::workloads;

namespace {

struct Prepared {
  std::unique_ptr<Session> S;
  std::unique_ptr<cminus::Program> Prog;
  const qual::QualifierSet &quals() const { return S->qualifiers(); }
};

std::unique_ptr<Prepared> prepare(const GeneratedWorkload &W,
                                  const std::vector<std::string> &Names) {
  auto P = std::make_unique<Prepared>();
  SessionOptions Opts;
  Opts.Builtins = Names;
  P->S = std::make_unique<Session>(Opts);
  P->Prog = P->S->frontEnd(W.Source).Program;
  return P;
}

void printTable() {
  std::printf("=== Section 6: qualifier-checking time ===\n");
  std::printf("%-12s %8s %10s %12s %10s\n", "workload", "lines", "derefs",
              "check time", "bound");
  for (unsigned Scale : {1u, 2u, 4u, 8u}) {
    GeneratedWorkload W = makeGrepDfa(Scale);
    auto P = prepare(W, {"nonnull"});
    auto Start = std::chrono::steady_clock::now();
    checker::QualChecker Checker(*P->Prog, P->quals(), P->S->diags(), {});
    auto Result = Checker.run();
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    std::printf("%-12s %8u %10u %11.4fs %10s\n",
                ("dfa x" + std::to_string(Scale)).c_str(), W.Lines,
                Result.Stats.DerefSites, Secs, Scale == 1 ? "<1s" : "");
  }
  std::printf("(paper: checking adds under one second on every "
              "experiment)\n\n");

  // The inference extension (section 8 future work): how many of the
  // manual annotations can be discovered automatically?
  GeneratedWorkload W = makeGrepDfa();
  auto P = prepare(W, {"nonnull"});
  auto Start = std::chrono::steady_clock::now();
  checker::InferenceOutcome Outcome =
      checker::inferQualifiers(*P->Prog, P->quals());
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  std::printf("=== Extension: qualifier inference ===\n");
  std::printf("grep-dfa (nonnull): inferred %u annotation(s) in %u "
              "iteration(s), %.3fs\n",
              Outcome.totalInferred(), Outcome.Iterations, Secs);
  std::printf("(correctly zero: every grep pointer originates at malloc, "
              "which may be NULL - Table 1's annotations are assumptions "
              "discharged by casts, not derivable facts)\n");

  // Where flows are derivable, inference eliminates the annotation
  // burden entirely.
  const char *Derivable =
      "int scale(int pos factor);\n"
      "int run(int reps) {\n"
      "  int step = 3;\n"
      "  int stride = step * 2;\n"
      "  int total = step + stride;\n"
      "  int window = 8;\n"
      "  for (int i = 0; i < reps; i = i + 1) total = total + stride;\n"
      "  return scale(stride) + total / window;\n"
      "}\n";
  SessionOptions IntOpts;
  IntOpts.Builtins = {"pos", "neg", "nonneg", "nonzero"};
  Session S2(IntOpts);
  auto Prog2 = S2.frontEnd(Derivable).Program;
  auto Out2 = checker::inferQualifiers(*Prog2, S2.qualifiers());
  std::printf("constants-rooted module (pos/nonneg/nonzero): inferred %u "
              "annotation(s) on %zu variable(s) - including the int pos "
              "argument of scale() - with zero manual annotations\n\n",
              Out2.totalInferred(), Out2.Inferred.size());
}

void benchChecker(benchmark::State &State, unsigned Scale, bool Memoize) {
  GeneratedWorkload W = makeGrepDfa(Scale);
  auto P = prepare(W, {"nonnull"});
  for (auto _ : State) {
    checker::CheckerOptions Options;
    Options.Memoize = Memoize;
    DiagnosticEngine Scratch;
    checker::QualChecker Checker(*P->Prog, P->quals(), Scratch, Options);
    auto Result = Checker.run();
    benchmark::DoNotOptimize(Result.QualErrors);
  }
  State.counters["lines"] = W.Lines;
}

} // namespace

static void BM_InferenceGrep(benchmark::State &State) {
  GeneratedWorkload W = makeGrepDfa();
  auto P = prepare(W, {"nonnull"});
  for (auto _ : State) {
    auto Outcome = checker::inferQualifiers(*P->Prog, P->quals());
    benchmark::DoNotOptimize(Outcome.totalInferred());
  }
}
BENCHMARK(BM_InferenceGrep)->Unit(benchmark::kMillisecond);

static void BM_CheckScale(benchmark::State &State) {
  benchChecker(State, static_cast<unsigned>(State.range(0)), true);
}
BENCHMARK(BM_CheckScale)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Ablation 1 from DESIGN.md: memoized qualifier derivation vs naive
// re-derivation.
static void BM_CheckMemoized(benchmark::State &State) {
  benchChecker(State, 2, true);
}
static void BM_CheckUnmemoized(benchmark::State &State) {
  benchChecker(State, 2, false);
}
BENCHMARK(BM_CheckMemoized)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckUnmemoized)->Unit(benchmark::kMillisecond);

// Full qualifier load on the taint workload (multiple qualifiers active).
static void BM_CheckAllQualifiersOnBftpd(benchmark::State &State) {
  GeneratedWorkload W = makeBftpd();
  auto P = prepare(W, {"pos", "neg", "nonzero", "nonnull", "tainted",
                       "untainted", "unique", "unaliased"});
  for (auto _ : State) {
    DiagnosticEngine Scratch;
    checker::QualChecker Checker(*P->Prog, P->quals(), Scratch, {});
    auto Result = Checker.run();
    benchmark::DoNotOptimize(Result.QualErrors);
  }
}
BENCHMARK(BM_CheckAllQualifiersOnBftpd)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
