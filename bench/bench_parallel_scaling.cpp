//===- bench_parallel_scaling.cpp - Parallel pipeline scaling -------------===//
//
// Measures the work-stealing checking pipeline and the memoized prover
// cache on the paper's two headline workloads: Table 1 (nonnull on the
// grep-dfa analogue) and Table 2 (untainted on the daemon analogues).
// For each, sweeps --jobs over 1/2/4/8 and reports wall-clock speedup
// against the sequential baseline, then primes the prover cache and
// reports the warm hit rate for the soundness obligations.
//
// Speedup is hardware-bound: on an N-core host the pipeline cannot beat
// min(jobs, N)x, so the table prints the detected concurrency alongside
// the measurements.
//
//===----------------------------------------------------------------------===//

#include "checker/Parallel.h"
#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "prover/ProverCache.h"
#include "qual/Builtins.h"
#include "soundness/Soundness.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace stq;
using namespace stq::workloads;

namespace {

constexpr unsigned JobSweep[] = {1, 2, 4, 8};

struct Prepared {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  std::unique_ptr<cminus::Program> Prog;
};

std::unique_ptr<Prepared> prepare(const std::string &Source,
                                  const std::vector<std::string> &Names) {
  auto P = std::make_unique<Prepared>();
  qual::loadBuiltinQualifiers(Names, P->Quals, P->Diags);
  P->Prog = cminus::parseProgram(Source, P->Quals.names(), P->Diags);
  cminus::runSema(*P->Prog, P->Quals.refNames(), P->Diags);
  cminus::lowerProgram(*P->Prog, P->Diags);
  if (P->Diags.hasErrors()) {
    std::fprintf(stderr, "workload failed the front end\n");
    std::exit(1);
  }
  return P;
}

double timeCheck(Prepared &P, unsigned Jobs, unsigned Reps,
                 checker::ParallelStats *Stats, unsigned *Errors) {
  double Best = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    DiagnosticEngine Diags;
    auto Start = std::chrono::steady_clock::now();
    checker::CheckResult Result =
        checker::checkProgramParallel(*P.Prog, P.Quals, Diags, {}, Jobs,
                                      Stats);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    if (R == 0 || Secs < Best)
      Best = Secs;
    if (Errors)
      *Errors = Result.QualErrors;
  }
  return Best;
}

void printScalingTable(const char *Label, const std::string &Source,
                       const std::vector<std::string> &Names) {
  auto P = prepare(Source, Names);
  std::printf("=== %s: checking speedup vs --jobs ===\n", Label);
  std::printf("%6s %12s %9s %9s %8s %8s\n", "jobs", "check time", "speedup",
              "units", "executed", "stolen");
  double Baseline = 0;
  for (unsigned Jobs : JobSweep) {
    checker::ParallelStats Stats;
    unsigned Errors = 0;
    double Secs = timeCheck(*P, Jobs, /*Reps=*/3, &Stats, &Errors);
    if (Jobs == 1)
      Baseline = Secs;
    std::printf("%6u %11.4fs %8.2fx %9u %8llu %8llu\n", Jobs, Secs,
                Secs > 0 ? Baseline / Secs : 0.0, Stats.Units,
                static_cast<unsigned long long>(Stats.Executed),
                static_cast<unsigned long long>(Stats.Steals));
  }
  std::printf("\n");
}

void printCacheTable(const char *Label,
                     const std::vector<std::string> &Names) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  qual::loadBuiltinQualifiers(Names, Quals, Diags);

  prover::ProverCache Cache;
  // Cold pass: every obligation misses and is inserted.
  soundness::SoundnessChecker Cold(Quals, {}, nullptr, &Cache);
  auto Start = std::chrono::steady_clock::now();
  Cold.checkAll(/*Jobs=*/4);
  double ColdSecs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  // Warm pass: identical obligations replay from the cache.
  soundness::SoundnessChecker Warm(Quals, {}, nullptr, &Cache);
  Start = std::chrono::steady_clock::now();
  Warm.checkAll(/*Jobs=*/4);
  double WarmSecs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();

  prover::CacheStats CS = Cache.stats();
  std::printf("=== %s: prover cache (soundness obligations) ===\n", Label);
  std::printf("cold pass %.4fs, warm pass %.4fs\n", ColdSecs, WarmSecs);
  std::printf("%llu lookups, %llu hits, %llu misses (hit rate %.1f%%), "
              "%llu entries, %.4fs prover time saved\n\n",
              static_cast<unsigned long long>(CS.Lookups),
              static_cast<unsigned long long>(CS.Hits),
              static_cast<unsigned long long>(CS.Misses),
              100.0 * CS.hitRate(),
              static_cast<unsigned long long>(CS.Entries), CS.SecondsSaved);
}

void BM_CheckParallel(benchmark::State &State, const std::string &Source,
                      const std::vector<std::string> &Names) {
  auto P = prepare(Source, Names);
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    checker::CheckResult Result =
        checker::checkProgramParallel(*P->Prog, P->Quals, Diags, {}, Jobs);
    benchmark::DoNotOptimize(Result.QualErrors);
  }
  State.counters["jobs"] = Jobs;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("hardware concurrency: %u thread(s)\n\n",
              std::thread::hardware_concurrency());

  // Table 1 workload: nonnull on grep-dfa, scaled up so the per-function
  // shards dominate the fork/join overhead.
  GeneratedWorkload T1 = makeGrepDfa(/*Scale=*/8);
  printScalingTable("Table 1 (nonnull, grep-dfa x8)", T1.Source, {"nonnull"});

  // Table 2 workload: tainted/untainted on the bftpd daemon analogue.
  GeneratedWorkload T2 = makeBftpd();
  printScalingTable("Table 2 (untainted, bftpd)", T2.Source,
                    {"tainted", "untainted"});

  printCacheTable("Table 1 + Table 2 qualifiers",
                  {"pos", "neg", "nonnull", "tainted", "untainted"});

  GeneratedWorkload T1Bench = makeGrepDfa(/*Scale=*/8);
  for (unsigned Jobs : JobSweep)
    benchmark::RegisterBenchmark(
        ("BM_CheckParallel/nonnull/jobs:" + std::to_string(Jobs)).c_str(),
        [T1Bench, Jobs](benchmark::State &State) {
          BM_CheckParallel(State, T1Bench.Source, {"nonnull"});
        })
        ->Unit(benchmark::kMillisecond)->Iterations(3)->Arg(Jobs);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
