//===- ProverBenchReport.h - BENCH_prover.json writer -----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// Shared by bench_prover and bench_soundness_times: runs the builtin
// qualifier soundness suite under both search engines (the incremental
// trail-based core and the copy-per-node reference core), checks that the
// per-obligation verdicts are identical, measures the warm prover-cache
// replay, and writes the machine-readable `stq-bench-prover-v1` report so
// the perf trajectory is trackable across PRs.
//
// Environment:
//   STQ_PROVER_BENCH_OUT       output path (default BENCH_prover.json)
//   STQ_ENFORCE_TIMING_BOUNDS  non-zero: a blown bound, a verdict mismatch,
//                              or a non-replaying warm pass is a failure
//
// Bounds follow section 4 of the paper at 10x slack: value qualifiers
// under 1 s each (gate 10 s), reference qualifiers under 30 s each
// (gate 300 s).
//
//===----------------------------------------------------------------------===//

#ifndef STQ_BENCH_PROVERBENCHREPORT_H
#define STQ_BENCH_PROVERBENCHREPORT_H

#include "prover/ProverCache.h"
#include "qual/Builtins.h"
#include "soundness/Soundness.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace stq::benchutil {

struct ObligationEntry {
  std::string Qual;
  std::string Kind;
  std::string Description;
  bool IsRef = false;
  double Seconds = 0.0;          ///< Incremental-engine prover time.
  double ReferenceSeconds = 0.0; ///< Reference-engine prover time.
  uint64_t Propagations = 0;
  unsigned Instantiations = 0;
  std::string Result;
  bool VerdictMatch = true;
};

struct ProverBenchReport {
  std::vector<ObligationEntry> Entries;
  double IncrementalSeconds = 0.0;
  double ReferenceSeconds = 0.0;
  double ValueSeconds = 0.0; ///< Incremental time over value qualifiers.
  double ValueBoundSeconds = 10.0;
  double RefSeconds = 0.0; ///< Incremental time over reference qualifiers.
  double RefBoundSeconds = 300.0;
  bool VerdictsMatch = true;
  double WarmHitRate = 0.0;
  uint64_t WarmProverCalls = 0; ///< Cache misses on the warm replay: 0.
  uint64_t PersistHits = 0;     ///< Hits served by the save/load roundtrip.

  double speedup() const {
    return IncrementalSeconds > 0.0 ? ReferenceSeconds / IncrementalSeconds
                                    : 0.0;
  }
  bool withinBounds() const {
    return VerdictsMatch && ValueSeconds <= ValueBoundSeconds &&
           RefSeconds <= RefBoundSeconds && WarmProverCalls == 0;
  }
};

inline std::string benchJsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

/// Runs the whole builtin suite once per engine (sequential, uncached, so
/// the numbers are pure prover time) and once more against a persisted
/// cache roundtrip.
inline ProverBenchReport measureProverBench() {
  ProverBenchReport Report;

  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  qual::loadAllBuiltinQualifiers(Set, Diags);

  prover::ProverOptions Incremental;
  Incremental.Engine = prover::EngineKind::Incremental;
  prover::ProverOptions Reference;
  Reference.Engine = prover::EngineKind::Reference;

  soundness::SoundnessChecker IncChecker(Set, Incremental);
  std::vector<soundness::SoundnessReport> Inc = IncChecker.checkAll(1);
  soundness::SoundnessChecker RefChecker(Set, Reference);
  std::vector<soundness::SoundnessReport> Ref = RefChecker.checkAll(1);

  for (size_t QI = 0; QI < Inc.size(); ++QI) {
    const soundness::SoundnessReport &IR = Inc[QI];
    if (IR.IsFlowQualifier)
      continue;
    const qual::QualifierDef *Q = Set.find(IR.Qual);
    bool IsRef = Q && Q->IsRef;
    for (size_t OI = 0; OI < IR.Obligations.size(); ++OI) {
      const soundness::Obligation &O = IR.Obligations[OI];
      ObligationEntry E;
      E.Qual = IR.Qual;
      E.Kind = O.Kind;
      E.Description = O.Description;
      E.IsRef = IsRef;
      E.Seconds = O.Stats.Seconds;
      E.Propagations = O.Stats.Propagations;
      E.Instantiations = O.Stats.Instantiations;
      E.Result = prover::resultName(O.Result);
      // checkAll's obligation order is deterministic, so the two engines'
      // reports align index for index.
      const soundness::Obligation &R = Ref[QI].Obligations[OI];
      E.ReferenceSeconds = R.Stats.Seconds;
      E.VerdictMatch = O.Result == R.Result;
      Report.VerdictsMatch = Report.VerdictsMatch && E.VerdictMatch;
      Report.IncrementalSeconds += E.Seconds;
      Report.ReferenceSeconds += E.ReferenceSeconds;
      (IsRef ? Report.RefSeconds : Report.ValueSeconds) += E.Seconds;
      Report.Entries.push_back(std::move(E));
    }
  }

  // The cross-run replay: prove once into a cache, persist it, load it
  // into a fresh cache, and prove again. The warm pass must discharge
  // every obligation without a single prover call.
  {
    prover::ProverCache Cold;
    soundness::SoundnessChecker Prime(Set, Incremental, nullptr, &Cold,
                                      nullptr);
    Prime.checkAll(1);
    std::string Path = "BENCH_prover.cache.tmp";
    if (Cold.save(Path)) {
      prover::ProverCache Warm;
      Warm.load(Path);
      soundness::SoundnessChecker Replay(Set, Incremental, nullptr, &Warm,
                                         nullptr);
      Replay.checkAll(1);
      prover::CacheStats CS = Warm.stats();
      Report.WarmHitRate = CS.hitRate();
      Report.WarmProverCalls = CS.Misses;
      Report.PersistHits = CS.PersistHits;
      std::remove(Path.c_str());
    } else {
      Report.WarmProverCalls = ~uint64_t(0); // Could not measure: fail.
    }
  }

  return Report;
}

inline bool writeProverBench(const ProverBenchReport &R,
                             const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  char Buf[64];
  OS << "{\n  \"schema\": \"stq-bench-prover-v1\",\n  \"entries\": [\n";
  for (size_t I = 0; I < R.Entries.size(); ++I) {
    const ObligationEntry &E = R.Entries[I];
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.Seconds);
    OS << "    {\n"
       << "      \"qual\": \"" << benchJsonEscape(E.Qual) << "\",\n"
       << "      \"kind\": \"" << benchJsonEscape(E.Kind) << "\",\n"
       << "      \"description\": \"" << benchJsonEscape(E.Description)
       << "\",\n"
       << "      \"family\": \"" << (E.IsRef ? "ref" : "value") << "\",\n"
       << "      \"seconds\": " << Buf << ",\n";
    std::snprintf(Buf, sizeof(Buf), "%.6f", E.ReferenceSeconds);
    OS << "      \"reference_seconds\": " << Buf << ",\n"
       << "      \"propagations\": " << E.Propagations << ",\n"
       << "      \"instantiations\": " << E.Instantiations << ",\n"
       << "      \"result\": \"" << E.Result << "\",\n"
       << "      \"verdict_match\": " << (E.VerdictMatch ? "true" : "false")
       << "\n    }" << (I + 1 < R.Entries.size() ? "," : "") << "\n";
  }
  std::snprintf(Buf, sizeof(Buf), "%.6f", R.IncrementalSeconds);
  OS << "  ],\n  \"incremental_seconds\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.6f", R.ReferenceSeconds);
  OS << "  \"reference_seconds\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", R.speedup());
  OS << "  \"speedup\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.6f", R.ValueSeconds);
  OS << "  \"value_seconds\": " << Buf << ",\n"
     << "  \"value_bound_seconds\": " << R.ValueBoundSeconds << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.6f", R.RefSeconds);
  OS << "  \"ref_seconds\": " << Buf << ",\n"
     << "  \"ref_bound_seconds\": " << R.RefBoundSeconds << ",\n"
     << "  \"verdicts_match\": " << (R.VerdictsMatch ? "true" : "false")
     << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", R.WarmHitRate);
  OS << "  \"warm_cache_hit_rate\": " << Buf << ",\n"
     << "  \"warm_prover_calls\": " << R.WarmProverCalls << ",\n"
     << "  \"persist_hits\": " << R.PersistHits << ",\n"
     << "  \"all_within_bounds\": " << (R.withinBounds() ? "true" : "false")
     << "\n}\n";
  return true;
}

/// Measures, prints a summary, writes the JSON report, and applies the
/// STQ_ENFORCE_TIMING_BOUNDS gate. Returns false when enforcement is on
/// and a bound was blown.
inline bool reportProverBench() {
  ProverBenchReport R = measureProverBench();
  std::printf("=== Prover engine benchmark (incremental vs reference) ===\n");
  std::printf("obligations: %zu, verdicts %s\n", R.Entries.size(),
              R.VerdictsMatch ? "identical" : "DIVERGED");
  std::printf("incremental: %.4fs  reference: %.4fs  speedup: %.2fx\n",
              R.IncrementalSeconds, R.ReferenceSeconds, R.speedup());
  std::printf("value qualifiers: %.4fs (gate %.0fs = 10x paper bound)\n",
              R.ValueSeconds, R.ValueBoundSeconds);
  std::printf("reference qualifiers: %.4fs (gate %.0fs = 10x paper bound)\n",
              R.RefSeconds, R.RefBoundSeconds);
  std::printf("warm cache replay: hit rate %.3f, prover calls %llu, "
              "persisted hits %llu\n",
              R.WarmHitRate,
              static_cast<unsigned long long>(R.WarmProverCalls),
              static_cast<unsigned long long>(R.PersistHits));

  const char *Out = std::getenv("STQ_PROVER_BENCH_OUT");
  std::string Path = Out && *Out ? Out : "BENCH_prover.json";
  if (writeProverBench(R, Path))
    std::printf("prover bench written to %s\n\n", Path.c_str());
  else
    std::printf("could not write %s\n\n", Path.c_str());

  const char *Enforce = std::getenv("STQ_ENFORCE_TIMING_BOUNDS");
  if (Enforce && *Enforce && std::string(Enforce) != "0" &&
      !R.withinBounds())
    return false;
  return true;
}

} // namespace stq::benchutil

#endif // STQ_BENCH_PROVERBENCHREPORT_H
