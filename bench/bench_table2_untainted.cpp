//===- bench_table2_untainted.cpp - Experiment T2 (Table 2) ---------------===//
//
// Regenerates Table 2: the untainted format-string experiment on the
// bftpd / mingetty / identd analogues.
//
//===----------------------------------------------------------------------===//

#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace stq::workloads;

static void printTable() {
  Table2Row B = runUntaintedExperiment(makeBftpd());
  Table2Row M = runUntaintedExperiment(makeMingetty());
  Table2Row I = runUntaintedExperiment(makeIdentd());
  std::printf("=== Table 2: untainted format strings ===\n");
  std::printf("%-14s | %7s %7s | %8s %8s | %7s %7s\n", "", "paper", "repo",
              "paper", "repo", "paper", "repo");
  std::printf("%-14s | %7s %7s | %8s %8s | %7s %7s\n", "program:", "bftpd",
              "bftpd", "mingetty", "mingetty", "identd", "identd");
  std::printf("%-14s | %7u %7u | %8u %8u | %7u %7u\n", "lines:", 750u,
              B.Lines, 293u, M.Lines, 228u, I.Lines);
  std::printf("%-14s | %7u %7u | %8u %8u | %7u %7u\n", "printf calls:",
              134u, B.PrintfCalls, 23u, M.PrintfCalls, 21u, I.PrintfCalls);
  std::printf("%-14s | %7u %7u | %8u %8u | %7u %7u\n", "annotations:", 2u,
              B.Annotations, 1u, M.Annotations, 0u, I.Annotations);
  std::printf("%-14s | %7u %7u | %8u %8u | %7u %7u\n", "casts:", 0u,
              B.Casts, 0u, M.Casts, 0u, I.Casts);
  std::printf("%-14s | %7u %7u | %8u %8u | %7u %7u\n", "errors:", 1u,
              B.Errors, 0u, M.Errors, 0u, I.Errors);
  std::printf("(the single bftpd error is the previously reported "
              "exploitable format-string bug)\n\n");
}

static void BM_UntaintedBftpd(benchmark::State &State) {
  GeneratedWorkload W = makeBftpd();
  for (auto _ : State) {
    Table2Row Row = runUntaintedExperiment(W);
    benchmark::DoNotOptimize(Row.Errors);
  }
}
BENCHMARK(BM_UntaintedBftpd)->Unit(benchmark::kMillisecond);

static void BM_UntaintedMingetty(benchmark::State &State) {
  GeneratedWorkload W = makeMingetty();
  for (auto _ : State) {
    Table2Row Row = runUntaintedExperiment(W);
    benchmark::DoNotOptimize(Row.Errors);
  }
}
BENCHMARK(BM_UntaintedMingetty)->Unit(benchmark::kMillisecond);

static void BM_UntaintedIdentd(benchmark::State &State) {
  GeneratedWorkload W = makeIdentd();
  for (auto _ : State) {
    Table2Row Row = runUntaintedExperiment(W);
    benchmark::DoNotOptimize(Row.Errors);
  }
}
BENCHMARK(BM_UntaintedIdentd)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
