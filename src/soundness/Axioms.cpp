//===- Axioms.cpp ---------------------------------------------------------===//

#include "soundness/Axioms.h"

using namespace stq;
using namespace stq::soundness;
using namespace stq::prover;

void stq::soundness::addSemanticAxioms(Prover &P) {
  TermArena &A = P.arena();
  Vocab V(A);

  TermId Vs = A.var("s");
  TermId Vc = A.var("c");
  TermId Ve1 = A.var("e1"), Ve2 = A.var("e2"), Ve = A.var("e");
  TermId Vl = A.var("l");
  TermId Vm = A.var("m"), Vk = A.var("k"), Vv = A.var("v"), Vj = A.var("j");
  TermId Vx = A.var("x"), Vy = A.var("y");

  // --- Expression evaluation -------------------------------------------
  // evalExpr(s, constInt(c)) = c.
  P.addAxiom("eval-const",
             fForall({"s", "c"},
                     fEq(V.evalExpr(Vs, V.constIntExpr(Vc)), Vc),
                     {MultiPattern{V.evalExpr(Vs, V.constIntExpr(Vc))}}));
  // Binary arithmetic expressions evaluate through their uninterpreted
  // (but sign-axiomatized) value-level counterparts.
  struct BinMap {
    const char *ExprSym;
    const char *ValueSym;
  };
  for (BinMap M : {BinMap{"mult", "times"}, BinMap{"plus", "plus"},
                   BinMap{"sub", "minus"}, BinMap{"div", "divide"},
                   BinMap{"rem", "remainder"}}) {
    TermId ExprT = V.binExpr(M.ExprSym, Ve1, Ve2);
    P.addAxiom(std::string("eval-") + M.ExprSym,
               fForall({"s", "e1", "e2"},
                       fEq(V.evalExpr(Vs, ExprT),
                           A.app(M.ValueSym, {V.evalExpr(Vs, Ve1),
                                              V.evalExpr(Vs, Ve2)})),
                       {MultiPattern{V.evalExpr(Vs, ExprT)}}));
  }
  // Unary negation.
  P.addAxiom("eval-neg",
             fForall({"s", "e"},
                     fEq(V.evalExpr(Vs, V.unExpr("neg", Ve)),
                         A.app("negate", {V.evalExpr(Vs, Ve)})),
                     {MultiPattern{V.evalExpr(Vs, V.unExpr("neg", Ve))}}));
  // Dereference reads the store at the pointer's value.
  P.addAxiom("eval-deref",
             fForall({"s", "e"},
                     fEq(V.evalExpr(Vs, V.derefExpr(Ve)),
                         V.select(V.getStore(Vs), V.evalExpr(Vs, Ve))),
                     {MultiPattern{V.evalExpr(Vs, V.derefExpr(Ve))}}));
  // Address-of yields the l-value's location.
  P.addAxiom("eval-addrof",
             fForall({"s", "l"},
                     fEq(V.evalExpr(Vs, V.addrOfExpr(Vl)),
                         V.location(Vs, Vl)),
                     {MultiPattern{V.evalExpr(Vs, V.addrOfExpr(Vl))}}));

  // --- Locations --------------------------------------------------------
  // Valid l-values have non-NULL locations, and locations are locations.
  P.addAxiom("location-nonnull",
             fForall({"s", "l"},
                     fNe(V.location(Vs, Vl), A.nullTerm()),
                     {MultiPattern{V.location(Vs, Vl)}}));
  P.addAxiom("location-isloc",
             fForall({"s", "l"}, V.isLoc(V.location(Vs, Vl)),
                     {MultiPattern{V.location(Vs, Vl)}}));

  // --- Maps --------------------------------------------------------------
  P.addAxiom("select-update-eq",
             fForall({"m", "k", "v"},
                     fEq(V.select(V.update(Vm, Vk, Vv), Vk), Vv),
                     {MultiPattern{V.update(Vm, Vk, Vv)}}));
  P.addAxiom(
      "select-update-other",
      fForall({"m", "k", "v", "j"},
              fOr({fEq(Vj, Vk), fEq(V.select(V.update(Vm, Vk, Vv), Vj),
                                    V.select(Vm, Vj))}),
              {MultiPattern{V.select(V.update(Vm, Vk, Vv), Vj)}}));

  // --- Environments -------------------------------------------------------
  // Distinct variables live at distinct locations.
  P.addAxiom("env-injective",
             fForall({"s", "x", "y"},
                     fOr({fEq(Vx, Vy),
                          fNe(V.select(V.getEnv(Vs), Vx),
                              V.select(V.getEnv(Vs), Vy))}),
                     {MultiPattern{V.select(V.getEnv(Vs), Vx),
                                   V.select(V.getEnv(Vs), Vy)}}));
  // Variable locations are on the stack and are valid locations.
  P.addAxiom("env-stack",
             fForall({"s", "x"},
                     V.notHeapLoc(V.select(V.getEnv(Vs), Vx)),
                     {MultiPattern{V.select(V.getEnv(Vs), Vx)}}));
  P.addAxiom("env-isloc",
             fForall({"s", "x"}, V.isLoc(V.select(V.getEnv(Vs), Vx)),
                     {MultiPattern{V.select(V.getEnv(Vs), Vx)}}));
  P.addAxiom("env-nonnull",
             fForall({"s", "x"},
                     fNe(V.select(V.getEnv(Vs), Vx), A.nullTerm()),
                     {MultiPattern{V.select(V.getEnv(Vs), Vx)}}));

  // --- Sorts ---------------------------------------------------------------
  // NULL is neither a heap location nor a location at all.
  P.addHypothesis(V.notHeapLoc(A.nullTerm()));
  P.addHypothesis(V.notLoc(A.nullTerm()));

  // Partial nonlinear arithmetic, as in Simplify.
  P.addArithmeticSignAxioms();
}
