//===- Soundness.cpp ------------------------------------------------------===//

#include "soundness/Soundness.h"

#include "soundness/Axioms.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>
#include <chrono>
#include <functional>
#include <map>
#include <sstream>

using namespace stq;
using namespace stq::soundness;
using namespace stq::prover;
using qual::Classifier;
using qual::Clause;
using qual::ExprPattern;
using qual::InvPred;
using qual::InvTerm;
using qual::Pred;
using qual::QualifierDef;
using cminus::BinaryOp;
using cminus::UnaryOp;

namespace {

const char *binExprSym(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Mul:
    return "mult";
  case BinaryOp::Add:
    return "plus";
  case BinaryOp::Sub:
    return "sub";
  case BinaryOp::Div:
    return "div";
  case BinaryOp::Rem:
    return "rem";
  case BinaryOp::Eq:
    return "cmpEq";
  case BinaryOp::Ne:
    return "cmpNe";
  case BinaryOp::Lt:
    return "cmpLt";
  case BinaryOp::Le:
    return "cmpLe";
  case BinaryOp::Gt:
    return "cmpGt";
  case BinaryOp::Ge:
    return "cmpGe";
  case BinaryOp::LAnd:
    return "logAnd";
  case BinaryOp::LOr:
    return "logOr";
  }
  return "unknownBin";
}

const char *unExprSym(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "neg";
  case UnaryOp::Not:
    return "lognot";
  case UnaryOp::BitNot:
    return "bitnot";
  }
  return "unknownUn";
}

/// Context for translating a qualifier invariant into a prover formula.
struct InvCtx {
  TermId State = InvalidTerm;     ///< Execution state term (for evalExpr).
  /// The store the invariant is evaluated against. Post-states use the
  /// explicit update(...) term so the select/update axioms' triggers match
  /// syntactically (our matcher does not match modulo equality).
  TermId Store = InvalidTerm;
  TermId ValueTerm = InvalidTerm; ///< value(<subject>).
  TermId LocTerm = InvalidTerm;   ///< location(<subject>) (ref quals only).
  std::map<std::string, TermId> Bound; ///< forall-bound location vars.
};

/// Builds one proof obligation: owns a prover seeded with the semantic
/// axioms and provides the translation helpers shared by every obligation
/// kind.
class ObligationBuilder {
public:
  ObligationBuilder(const qual::QualifierSet &Set, ProverOptions Options)
      : Set(Set), P(Options), A(P.arena()), V(A) {
    addSemanticAxioms(P);
    Rho = A.app("rho");
  }

  Prover &prover() { return P; }
  TermArena &arena() { return A; }
  Vocab &vocab() { return V; }
  TermId rho() const { return Rho; }

  /// Builds the reified expression term for a case/assign pattern,
  /// creating fresh constants for the pattern variables; returns the term
  /// and populates the bindings used for where-predicate translation.
  TermId buildPatternExpr(const QualifierDef &Q, const Clause &C);

  /// Translates a where-predicate into a hypothesis formula.
  FormulaPtr translatePred(const Pred &Pr);

  /// Translates qualifier \p Q's invariant under \p Ctx. Returns fTrue for
  /// flow qualifiers.
  FormulaPtr translateInv(const QualifierDef &Q, const InvCtx &Ctx);

  /// Invariant hypothesis for a qualifier check q(X) on expression term
  /// \p ExprTerm in state \p State.
  FormulaPtr qualHypothesis(const std::string &QualName, TermId ExprTerm,
                            TermId State);

  /// Adds the allocation facts for a fresh heap cell and returns its
  /// location value.
  TermId freshAllocation(TermId PreStore);

private:
  TermId termOfVar(const QualifierDef &Q, const Clause &C,
                   const std::string &Name);
  FormulaPtr translateInvPred(const InvPred &Inv, InvCtx &Ctx);
  TermId translateInvTerm(const InvTerm &T, const InvCtx &Ctx);

  const qual::QualifierSet &Set;
  Prover P;
  TermArena &A;
  Vocab V;
  TermId Rho = InvalidTerm;
  /// Pattern variable -> reified expression/l-value term.
  std::map<std::string, TermId> ExprOf;
  /// Const-classifier variable -> its value term.
  std::map<std::string, TermId> ConstValOf;
};

TermId ObligationBuilder::termOfVar(const QualifierDef &Q, const Clause &C,
                                    const std::string &Name) {
  auto Found = ExprOf.find(Name);
  if (Found != ExprOf.end())
    return Found->second;
  const qual::VarPatternDecl *D = C.findDecl(Name);
  TermId T;
  if (D && D->Cls == Classifier::Const) {
    // A constant expression whose value is an arbitrary integer constant.
    TermId Val = A.app("$const_" + Name);
    ConstValOf[Name] = Val;
    T = V.constIntExpr(Val);
  } else if (D && (D->Cls == Classifier::LValue || D->Cls == Classifier::Var)) {
    T = A.app("$lv_" + Name);
  } else {
    // Expr classifier (or the subject): an arbitrary expression.
    T = A.app("$expr_" + Name);
  }
  ExprOf[Name] = T;
  (void)Q;
  return T;
}

TermId ObligationBuilder::buildPatternExpr(const QualifierDef &Q,
                                           const Clause &C) {
  const ExprPattern &Pat = C.Pattern;
  switch (Pat.K) {
  case ExprPattern::Kind::Var:
    return termOfVar(Q, C, Pat.X);
  case ExprPattern::Kind::Deref:
    return V.derefExpr(termOfVar(Q, C, Pat.X));
  case ExprPattern::Kind::AddrOf:
    return V.addrOfExpr(termOfVar(Q, C, Pat.X));
  case ExprPattern::Kind::Unary:
    return V.unExpr(unExprSym(Pat.Uop), termOfVar(Q, C, Pat.X));
  case ExprPattern::Kind::Binary:
    return V.binExpr(binExprSym(Pat.Bop), termOfVar(Q, C, Pat.X),
                     termOfVar(Q, C, Pat.Y));
  case ExprPattern::Kind::New:
  case ExprPattern::Kind::Null:
    assert(false && "NULL/new handled by the assign-clause driver");
    return InvalidTerm;
  }
  return InvalidTerm;
}

FormulaPtr ObligationBuilder::qualHypothesis(const std::string &QualName,
                                             TermId ExprTerm, TermId State) {
  const QualifierDef *Q = Set.find(QualName);
  if (!Q || !Q->Invariant)
    return fTrue(); // Flow qualifier: nothing may be assumed.
  InvCtx Ctx;
  Ctx.State = State;
  Ctx.Store = V.getStore(State);
  Ctx.ValueTerm = V.evalExpr(State, ExprTerm);
  return translateInv(*Q, Ctx);
}

FormulaPtr ObligationBuilder::translatePred(const Pred &Pr) {
  switch (Pr.K) {
  case Pred::Kind::True:
    return fTrue();
  case Pred::Kind::And:
    return fAnd({translatePred(*Pr.LHS), translatePred(*Pr.RHS)});
  case Pred::Kind::Or:
    return fOr({translatePred(*Pr.LHS), translatePred(*Pr.RHS)});
  case Pred::Kind::QualCheck: {
    auto Found = ExprOf.find(Pr.Var);
    assert(Found != ExprOf.end() && "predicate variable not bound");
    return qualHypothesis(Pr.Qual, Found->second, Rho);
  }
  case Pred::Kind::Compare: {
    auto TermOf = [&](const Pred::Term &T) -> TermId {
      switch (T.K) {
      case Pred::Term::Kind::Int:
        return A.intConst(T.Int);
      case Pred::Term::Kind::Null:
        return A.nullTerm();
      case Pred::Term::Kind::Var: {
        auto Found = ConstValOf.find(T.Var);
        assert(Found != ConstValOf.end() &&
               "comparison on non-Const variable");
        return Found->second;
      }
      }
      return InvalidTerm;
    };
    TermId L = TermOf(Pr.A), R = TermOf(Pr.B);
    switch (Pr.CmpOp) {
    case BinaryOp::Eq:
      return fEq(L, R);
    case BinaryOp::Ne:
      return fNe(L, R);
    case BinaryOp::Lt:
      return fLt(L, R);
    case BinaryOp::Le:
      return fLe(L, R);
    case BinaryOp::Gt:
      return fGt(L, R);
    case BinaryOp::Ge:
      return fGe(L, R);
    default:
      return fTrue();
    }
  }
  }
  return fTrue();
}

FormulaPtr ObligationBuilder::translateInv(const QualifierDef &Q,
                                           const InvCtx &Ctx) {
  if (!Q.Invariant)
    return fTrue();
  InvCtx Mutable = Ctx;
  return translateInvPred(*Q.Invariant, Mutable);
}

TermId ObligationBuilder::translateInvTerm(const InvTerm &T,
                                           const InvCtx &Ctx) {
  switch (T.K) {
  case InvTerm::Kind::ValueOf:
    return Ctx.ValueTerm;
  case InvTerm::Kind::LocationOf:
    assert(Ctx.LocTerm != InvalidTerm && "location in a value qualifier");
    return Ctx.LocTerm;
  case InvTerm::Kind::Deref: {
    auto Found = Ctx.Bound.find(T.Var);
    assert(Found != Ctx.Bound.end() && "unbound quantified variable");
    return V.select(Ctx.Store, Found->second);
  }
  case InvTerm::Kind::VarRef: {
    auto Found = Ctx.Bound.find(T.Var);
    assert(Found != Ctx.Bound.end() && "unbound quantified variable");
    return Found->second;
  }
  case InvTerm::Kind::Int:
    return A.intConst(T.Int);
  case InvTerm::Kind::Null:
    return A.nullTerm();
  }
  return InvalidTerm;
}

FormulaPtr ObligationBuilder::translateInvPred(const InvPred &Inv,
                                               InvCtx &Ctx) {
  switch (Inv.K) {
  case InvPred::Kind::Compare: {
    TermId L = translateInvTerm(Inv.A, Ctx);
    TermId R = translateInvTerm(Inv.B, Ctx);
    switch (Inv.CmpOp) {
    case BinaryOp::Eq:
      return fEq(L, R);
    case BinaryOp::Ne:
      return fNe(L, R);
    case BinaryOp::Lt:
      return fLt(L, R);
    case BinaryOp::Le:
      return fLe(L, R);
    case BinaryOp::Gt:
      return fGt(L, R);
    case BinaryOp::Ge:
      return fGe(L, R);
    default:
      return fTrue();
    }
  }
  case InvPred::Kind::IsHeapLoc:
    return V.isHeapLoc(translateInvTerm(Inv.A, Ctx));
  case InvPred::Kind::And:
    return fAnd({translateInvPred(*Inv.LHS, Ctx),
                 translateInvPred(*Inv.RHS, Ctx)});
  case InvPred::Kind::Or:
    return fOr({translateInvPred(*Inv.LHS, Ctx),
                translateInvPred(*Inv.RHS, Ctx)});
  case InvPred::Kind::Implies:
    return fImplies(translateInvPred(*Inv.LHS, Ctx),
                    translateInvPred(*Inv.RHS, Ctx));
  case InvPred::Kind::Forall: {
    // Quantified variables range over memory locations in the state.
    std::string VarName = "q_" + Inv.ForallVar;
    TermId Var = A.var(VarName);
    auto Saved = Ctx.Bound;
    Ctx.Bound[Inv.ForallVar] = Var;
    FormulaPtr Body = translateInvPred(*Inv.Body, Ctx);
    Ctx.Bound = Saved;
    return fForall({VarName}, std::move(Body));
  }
  }
  return fTrue();
}

TermId ObligationBuilder::freshAllocation(TermId PreStore) {
  TermId NewL = A.app("$newLoc");
  P.addHypothesis(V.isHeapLoc(NewL));
  P.addHypothesis(V.isLoc(NewL));
  P.addHypothesis(fNe(NewL, A.nullTerm()));
  // Freshness: no existing cell holds the new location.
  TermId Pv = A.var("fp");
  P.addHypothesis(fForall({"fp"}, fNe(V.select(PreStore, Pv), NewL),
                          {MultiPattern{V.select(PreStore, Pv)}}));
  return NewL;
}

} // namespace

//===----------------------------------------------------------------------===//
// Obligation drivers
//===----------------------------------------------------------------------===//

void SoundnessChecker::dischargeGoal(Prover &P, FormulaPtr Goal,
                                     Obligation &O) const {
  if (Cache) {
    {
      stats::ScopedTimer Canon(Metrics, "prover.canon_seconds");
      O.CacheKey = prover::canonicalTaskKey(P.arena(), P.inputs(), Goal);
    }
    if (auto Hit = Cache->lookup(O.CacheKey)) {
      O.Result = Hit->Result;
      O.Stats = Hit->Stats;
      O.FromCache = true;
      return;
    }
  }
  O.Result = P.prove(Goal);
  O.Stats = P.stats();
  if (Cache)
    Cache->insert(O.CacheKey, O.Result, O.Stats);
}

Obligation SoundnessChecker::dischargeCaseClause(const QualifierDef &Q,
                                                 const Clause &C,
                                                 unsigned Index) const {
  Obligation O;
  O.Qual = Q.Name;
  O.Kind = "case";
  O.Description = "case clause " + std::to_string(Index + 1) + " (" +
                  C.Pattern.str() + ")";

  ObligationBuilder B(Set, Options);
  TermId E = B.buildPatternExpr(Q, C);
  B.prover().addHypothesis(B.translatePred(C.Where));

  InvCtx Ctx;
  Ctx.State = B.rho();
  Ctx.Store = B.vocab().getStore(B.rho());
  Ctx.ValueTerm = B.vocab().evalExpr(B.rho(), E);
  FormulaPtr Goal = B.translateInv(Q, Ctx);
  dischargeGoal(B.prover(), std::move(Goal), O);
  return O;
}

Obligation SoundnessChecker::dischargeAssignClause(const QualifierDef &Q,
                                                   const Clause &C,
                                                   unsigned Index) const {
  Obligation O;
  O.Qual = Q.Name;
  O.Kind = "assign";
  O.Description = "assign clause " + std::to_string(Index + 1) + " (" +
                  C.Pattern.str() + ")";

  ObligationBuilder B(Set, Options);
  Prover &P = B.prover();
  TermArena &A = B.arena();
  Vocab &V = B.vocab();
  TermId Rho = B.rho();
  TermId PreStore = V.getStore(Rho);

  // The subject l-value's location.
  TermId LocL = A.app("$locSubj");
  P.addHypothesis(V.isLoc(LocL));
  P.addHypothesis(fNe(LocL, A.nullTerm()));

  // The assigned value, per the clause's pattern.
  TermId RhsVal;
  switch (C.Pattern.K) {
  case ExprPattern::Kind::Null:
    RhsVal = A.nullTerm();
    break;
  case ExprPattern::Kind::New:
    RhsVal = B.freshAllocation(PreStore);
    break;
  default: {
    TermId E = B.buildPatternExpr(Q, C);
    P.addHypothesis(B.translatePred(C.Where));
    RhsVal = V.evalExpr(Rho, E);
    break;
  }
  }

  // Post-state: the store is updated at the subject's location. The
  // invariant is evaluated directly over the update(...) term.
  TermId PostStore = V.update(PreStore, LocL, RhsVal);

  InvCtx Ctx;
  Ctx.State = Rho;
  Ctx.Store = PostStore;
  Ctx.LocTerm = LocL;
  Ctx.ValueTerm = V.select(PostStore, LocL);
  dischargeGoal(P, B.translateInv(Q, Ctx), O);
  return O;
}

Obligation SoundnessChecker::dischargeOnDecl(const QualifierDef &Q) const {
  Obligation O;
  O.Qual = Q.Name;
  O.Kind = "ondecl";
  O.Description = "establishment at declaration";

  ObligationBuilder B(Set, Options);
  Prover &P = B.prover();
  TermArena &A = B.arena();
  Vocab &V = B.vocab();
  TermId Rho = B.rho();
  TermId PreStore = V.getStore(Rho);

  // A freshly declared variable: a stack location no existing cell holds,
  // zero-initialized (our interpreter's semantics; DESIGN.md documents the
  // substitution for C's uninitialized locals).
  TermId LocL = A.app("$locSubj");
  P.addHypothesis(V.isLoc(LocL));
  P.addHypothesis(V.notHeapLoc(LocL));
  P.addHypothesis(fNe(LocL, A.nullTerm()));
  TermId Pv = A.var("fp");
  P.addHypothesis(fForall({"fp"}, fNe(V.select(PreStore, Pv), LocL),
                          {MultiPattern{V.select(PreStore, Pv)}}));

  TermId PostStore = V.update(PreStore, LocL, A.nullTerm());

  InvCtx Ctx;
  Ctx.State = Rho;
  Ctx.Store = PostStore;
  Ctx.LocTerm = LocL;
  Ctx.ValueTerm = V.select(PostStore, LocL);
  dischargeGoal(P, B.translateInv(Q, Ctx), O);
  return O;
}

namespace {

/// One case of the paper's preservation analysis over right-hand sides
/// consistent with the disallow clause (section 2.2.3).
struct RhsCase {
  const char *Name;
  /// Configures the RHS value; returns it.
  std::function<TermId(ObligationBuilder &, TermId /*PreStore*/,
                       TermId /*LocL*/, TermId /*SubjVarName*/)>
      Setup;
};

std::vector<RhsCase> preservationRhsCases(const QualifierDef &Q) {
  std::vector<RhsCase> Cases;
  Cases.push_back(
      {"rhs NULL",
       [](ObligationBuilder &B, TermId, TermId, TermId) {
         return B.arena().nullTerm();
       }});
  Cases.push_back(
      {"rhs integer constant",
       [](ObligationBuilder &B, TermId, TermId, TermId) {
         TermId C = B.arena().app("$intVal");
         B.prover().addHypothesis(B.vocab().notLoc(C));
         B.prover().addHypothesis(B.vocab().notHeapLoc(C));
         return C;
       }});
  Cases.push_back(
      {"rhs new allocation",
       [](ObligationBuilder &B, TermId PreStore, TermId, TermId) {
         return B.freshAllocation(PreStore);
       }});
  Cases.push_back(
      {"rhs read of an l-value",
       [&Q](ObligationBuilder &B, TermId PreStore, TermId LocL, TermId) {
         TermId K = B.arena().app("$readLoc");
         B.prover().addHypothesis(B.vocab().isLoc(K));
         // `disallow L`: the read may not refer to the subject l-value.
         if (Q.DisallowRead)
           B.prover().addHypothesis(fNe(K, LocL));
         return B.vocab().select(PreStore, K);
       }});
  Cases.push_back(
      {"rhs address of a variable",
       [&Q](ObligationBuilder &B, TermId, TermId, TermId SubjVar) {
         TermId Y = B.arena().app("$otherVar");
         // `disallow &X`: the address-of may not name the subject.
         if (Q.DisallowAddrOf && SubjVar != InvalidTerm)
           B.prover().addHypothesis(fNe(Y, SubjVar));
         return B.vocab().select(B.vocab().getEnv(B.rho()), Y);
       }});
  return Cases;
}

} // namespace

Obligation
SoundnessChecker::dischargePreservationCase(const QualifierDef &Q,
                                            unsigned CaseIndex) const {
  std::vector<RhsCase> Cases = preservationRhsCases(Q);
  assert(CaseIndex < Cases.size() && "preservation case out of range");
  const RhsCase &RC = Cases[CaseIndex];

  Obligation O;
  O.Qual = Q.Name;
  O.Kind = "preserve";
  O.Description = std::string("preservation, ") + RC.Name;

  ObligationBuilder B(Set, Options);
  Prover &P = B.prover();
  TermArena &A = B.arena();
  Vocab &V = B.vocab();
  TermId Rho = B.rho();
  TermId PreStore = V.getStore(Rho);

  // The subject l-value's location. For Var subjects it is an
  // environment slot, enabling injectivity/stack reasoning.
  TermId SubjVar = InvalidTerm;
  TermId LocL;
  if (Q.SubjectCls == Classifier::Var) {
    SubjVar = A.app("$subjVar");
    LocL = V.select(V.getEnv(Rho), SubjVar);
  } else {
    LocL = A.app("$locSubj");
    P.addHypothesis(V.isLoc(LocL));
    P.addHypothesis(fNe(LocL, A.nullTerm()));
  }

  // The invariant holds before the assignment.
  InvCtx Pre;
  Pre.State = Rho;
  Pre.Store = PreStore;
  Pre.LocTerm = LocL;
  Pre.ValueTerm = V.select(PreStore, LocL);
  P.addHypothesis(B.translateInv(Q, Pre));

  // An assignment to some other l-value. When the qualifier has an
  // assign block, assignments to the subject itself are covered by the
  // assign obligations; otherwise the target may be any l-value,
  // including the subject.
  TermId Loc2 = A.app("$locOther");
  P.addHypothesis(V.isLoc(Loc2));
  P.addHypothesis(fNe(Loc2, A.nullTerm()));
  if (!Q.Assigns.empty())
    P.addHypothesis(fNe(Loc2, LocL));

  TermId RhsVal = RC.Setup(B, PreStore, LocL, SubjVar);

  TermId PostStore = V.update(PreStore, Loc2, RhsVal);

  InvCtx PostCtx;
  PostCtx.State = Rho;
  PostCtx.Store = PostStore;
  PostCtx.LocTerm = LocL;
  PostCtx.ValueTerm = V.select(PostStore, LocL);
  dischargeGoal(P, B.translateInv(Q, PostCtx), O);
  return O;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Obligation SoundnessChecker::runObligation(
    const std::function<Obligation()> &Task) const {
  trace::Span Span("obligation");
  auto Start = std::chrono::steady_clock::now();
  Obligation O = Task();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Span.active())
    Span.detail(O.Qual + " " + O.Kind + ": " + O.Description + " -> " +
                prover::resultName(O.Result));
  if (Metrics) {
    Metrics->add("prove.obligations", 1);
    Metrics->add(O.proved() ? "prove.obligations_proved"
                            : "prove.obligations_failed",
                 1);
    if (O.FromCache)
      Metrics->add("prove.obligations_from_cache", 1);
    Metrics->record("prove.obligation_seconds", Seconds);
    // Incremental-engine work counters (docs/OBSERVABILITY.md). Cache hits
    // replay the original run's stats, so for a fixed input these totals
    // are identical for any --jobs value even when the schedule changes
    // which duplicate obligation populates the cache first.
    Metrics->add("prover.propagations", O.Stats.Propagations);
    Metrics->add("prover.theory_pops", O.Stats.TheoryPops);
    Metrics->add("prover.delta_terms", O.Stats.DeltaTerms);
    Metrics->record("prover.trail_depth", O.Stats.MaxTrailDepth);
  }
  return O;
}

std::vector<std::function<Obligation()>>
SoundnessChecker::obligationTasks(const QualifierDef &Q) const {
  // Each closure owns an independent prover session, so the pool may run
  // them on any thread in any order; callers write results into
  // preassigned slots to keep report order deterministic.
  std::vector<std::function<Obligation()>> Tasks;
  if (Q.isValue()) {
    for (unsigned I = 0; I < Q.Cases.size(); ++I)
      Tasks.push_back(
          [this, &Q, I] { return dischargeCaseClause(Q, Q.Cases[I], I); });
    return Tasks;
  }
  for (unsigned I = 0; I < Q.Assigns.size(); ++I)
    Tasks.push_back(
        [this, &Q, I] { return dischargeAssignClause(Q, Q.Assigns[I], I); });
  if (Q.OnDecl)
    Tasks.push_back([this, &Q] { return dischargeOnDecl(Q); });
  size_t PreserveCases = preservationRhsCases(Q).size();
  for (unsigned I = 0; I < PreserveCases; ++I)
    Tasks.push_back(
        [this, &Q, I] { return dischargePreservationCase(Q, I); });
  return Tasks;
}

void SoundnessChecker::finalizeReport(SoundnessReport &Report) const {
  for (const Obligation &O : Report.Obligations) {
    // Cache hits carry the original run's stats; only fresh prover time
    // counts toward this report's wall clock.
    if (!O.FromCache)
      Report.TotalSeconds += O.Stats.Seconds;
    if (!O.proved() && Diags)
      Diags->error(SourceLoc(), "soundness",
                   "qualifier '" + Report.Qual + "': obligation failed: " +
                       O.Description +
                       (O.Stats.Model.empty()
                            ? std::string()
                            : " [counterexample sketch: " + O.Stats.Model +
                                  "]"));
  }
}

SoundnessReport SoundnessChecker::checkQualifier(const std::string &Name,
                                                 unsigned Jobs) {
  SoundnessReport Report;
  Report.Qual = Name;
  const QualifierDef *Q = Set.find(Name);
  if (!Q) {
    if (Diags)
      Diags->error(SourceLoc(), "soundness",
                   "unknown qualifier '" + Name + "'");
    return Report;
  }
  if (!Q->Invariant) {
    // Flow qualifier: proper value flow is guaranteed by subtyping alone.
    Report.IsFlowQualifier = true;
    return Report;
  }

  trace::Span Span("obligations", trace::Tracer::enabled()
                                      ? Name
                                      : std::string());
  auto Tasks = obligationTasks(*Q);
  Report.Obligations.resize(Tasks.size());
  parallelFor(Jobs, Tasks.size(), [&](size_t I) {
    Report.Obligations[I] = runObligation(Tasks[I]);
  }, nullptr, Pool);
  finalizeReport(Report);
  return Report;
}

std::vector<SoundnessReport> SoundnessChecker::checkAll(unsigned Jobs) {
  // Flatten every qualifier's obligations into one task list so the pool
  // balances across qualifiers (reference qualifiers dominate; value
  // qualifiers finish in milliseconds).
  trace::Span Span("obligations");
  std::vector<SoundnessReport> Out(Set.all().size());
  std::vector<std::function<Obligation()>> Tasks;
  std::vector<std::pair<size_t, size_t>> Slots; // (report, obligation) index
  for (size_t QI = 0; QI < Set.all().size(); ++QI) {
    const QualifierDef &Q = Set.all()[QI];
    Out[QI].Qual = Q.Name;
    if (!Q.Invariant) {
      Out[QI].IsFlowQualifier = true;
      continue;
    }
    auto QTasks = obligationTasks(Q);
    Out[QI].Obligations.resize(QTasks.size());
    for (size_t TI = 0; TI < QTasks.size(); ++TI) {
      Tasks.push_back(std::move(QTasks[TI]));
      Slots.emplace_back(QI, TI);
    }
  }
  parallelFor(Jobs, Tasks.size(), [&](size_t I) {
    Out[Slots[I].first].Obligations[Slots[I].second] =
        runObligation(Tasks[I]);
  }, nullptr, Pool);
  for (SoundnessReport &R : Out)
    finalizeReport(R);
  return Out;
}

std::string stq::soundness::formatReports(
    const std::vector<SoundnessReport> &Reports) {
  std::ostringstream OS;
  for (const SoundnessReport &R : Reports) {
    OS << R.Qual << ": ";
    if (R.IsFlowQualifier) {
      OS << "flow qualifier (sound by subtyping)\n";
      continue;
    }
    OS << (R.sound() ? "SOUND" : "UNSOUND") << " ("
       << R.Obligations.size() << " obligations, " << R.failedCount()
       << " failed, " << R.TotalSeconds << "s)\n";
    for (const Obligation &O : R.Obligations)
      OS << "  [" << (O.proved() ? "ok" : "FAIL") << "] " << O.Kind << ": "
         << O.Description << " (" << O.Stats.Seconds << "s)\n";
  }
  return OS.str();
}
