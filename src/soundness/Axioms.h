//===- Axioms.h - Axiomatized dynamic semantics of the IL -------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The axioms the soundness checker supplies to the prover (section 4.1).
/// Execution states are represented by constants related through
/// `getEnv`/`getStore`; program expressions are reified terms (`constInt`,
/// `multExpr`, `addrOfExpr`, ...) evaluated by `evalExpr`; environments and
/// stores are maps with `select`/`update`.
///
/// Where the paper writes stepState(rho), our obligations introduce an
/// explicit post-state constant whose store is an `update` of the
/// pre-state's store; the two encodings are interchangeable and ours keeps
/// the triggers simple.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SOUNDNESS_AXIOMS_H
#define STQ_SOUNDNESS_AXIOMS_H

#include "prover/Prover.h"

namespace stq::soundness {

/// Helpers that build the soundness vocabulary over a prover's arena.
/// All functions intern terms; repeated calls are cheap.
struct Vocab {
  prover::TermArena &A;

  explicit Vocab(prover::TermArena &A) : A(A) {}

  // States and their components.
  prover::TermId getEnv(prover::TermId State) {
    return A.app("getEnv", {State});
  }
  prover::TermId getStore(prover::TermId State) {
    return A.app("getStore", {State});
  }

  // Maps.
  prover::TermId select(prover::TermId Map, prover::TermId Key) {
    return A.app("select", {Map, Key});
  }
  prover::TermId update(prover::TermId Map, prover::TermId Key,
                        prover::TermId Value) {
    return A.app("update", {Map, Key, Value});
  }

  // Reified program expressions.
  prover::TermId constIntExpr(prover::TermId Value) {
    return A.app("constInt", {Value});
  }
  prover::TermId binExpr(const std::string &Op, prover::TermId E1,
                         prover::TermId E2) {
    return A.app(Op + "Expr", {E1, E2});
  }
  prover::TermId unExpr(const std::string &Op, prover::TermId E) {
    return A.app(Op + "Expr", {E});
  }
  prover::TermId derefExpr(prover::TermId E) {
    return A.app("derefExpr", {E});
  }
  prover::TermId addrOfExpr(prover::TermId L) {
    return A.app("addrOfExpr", {L});
  }

  // Evaluation and locations.
  prover::TermId evalExpr(prover::TermId State, prover::TermId E) {
    return A.app("evalExpr", {State, E});
  }
  prover::TermId location(prover::TermId State, prover::TermId L) {
    return A.app("location", {State, L});
  }

  // Value-sort predicates.
  prover::FormulaPtr isHeapLoc(prover::TermId V) {
    return prover::fPred(A, "isHeapLoc", {V});
  }
  prover::FormulaPtr notHeapLoc(prover::TermId V) {
    return prover::fNotPred(A, "isHeapLoc", {V});
  }
  prover::FormulaPtr isLoc(prover::TermId V) {
    return prover::fPred(A, "isLoc", {V});
  }
  prover::FormulaPtr notLoc(prover::TermId V) {
    return prover::fNotPred(A, "isLoc", {V});
  }
};

/// Installs the standard semantic axioms into \p P: expression evaluation,
/// map select/update, location validity, environment injectivity and
/// stack-ness, and NULL/heap sort facts. Also installs the arithmetic sign
/// axioms for `times`/`plus`/`negate`.
void addSemanticAxioms(prover::Prover &P);

} // namespace stq::soundness

#endif // STQ_SOUNDNESS_AXIOMS_H
