//===- Soundness.h - Automated soundness checking of qualifiers -*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automated soundness checker (sections 2.1.3, 2.2.3, 4.2). For each
/// qualifier with a declared invariant it generates proof obligations and
/// discharges them with the prover:
///
///  * one obligation per `case` clause of a value qualifier: matching the
///    pattern and satisfying the predicate, in an arbitrary execution
///    state, must establish the invariant;
///  * one obligation per `assign` clause of a reference qualifier, and one
///    for `ondecl`: the assignment/declaration must establish the
///    invariant for the qualified l-value;
///  * preservation obligations: an arbitrary assignment to some *other*
///    l-value, with a right-hand side consistent with the qualifier's
///    `disallow` clause, must preserve the invariant. The checker performs
///    the paper's case analysis over right-hand-side forms (NULL, integer
///    constants, allocation, reads, addresses of variables).
///
/// `restrict` clauses do not affect soundness and are ignored. Qualifiers
/// without an invariant (flow qualifiers such as tainted/untainted) have no
/// obligations: their guarantees come from subtyping alone.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SOUNDNESS_SOUNDNESS_H
#define STQ_SOUNDNESS_SOUNDNESS_H

#include "prover/Prover.h"
#include "qual/QualAST.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace stq::soundness {

/// One discharged (or failed) proof obligation.
struct Obligation {
  std::string Qual;
  /// "case", "assign", "ondecl", or "preserve".
  std::string Kind;
  std::string Description;
  prover::ProofResult Result = prover::ProofResult::Unknown;
  prover::ProverStats Stats;

  bool proved() const { return Result == prover::ProofResult::Proved; }
};

/// The soundness verdict for one qualifier.
struct SoundnessReport {
  std::string Qual;
  /// True when the qualifier declares no invariant: soundness is vacuous
  /// (flow qualifiers).
  bool IsFlowQualifier = false;
  std::vector<Obligation> Obligations;
  double TotalSeconds = 0.0;

  bool sound() const {
    for (const Obligation &O : Obligations)
      if (!O.proved())
        return false;
    return true;
  }
  unsigned failedCount() const {
    unsigned N = 0;
    for (const Obligation &O : Obligations)
      if (!O.proved())
        ++N;
    return N;
  }
};

/// Checks qualifier definitions for soundness against their declared
/// invariants. Failures are also reported to the diagnostic engine (phase
/// "soundness") when one is supplied.
class SoundnessChecker {
public:
  SoundnessChecker(const qual::QualifierSet &Set,
                   prover::ProverOptions Options = {},
                   DiagnosticEngine *Diags = nullptr)
      : Set(Set), Options(Options), Diags(Diags) {}

  /// Checks one qualifier by name.
  SoundnessReport checkQualifier(const std::string &Name);
  /// Checks every qualifier in the set.
  std::vector<SoundnessReport> checkAll();

private:
  Obligation dischargeCaseClause(const qual::QualifierDef &Q,
                                 const qual::Clause &C, unsigned Index);
  Obligation dischargeAssignClause(const qual::QualifierDef &Q,
                                   const qual::Clause &C, unsigned Index);
  Obligation dischargeOnDecl(const qual::QualifierDef &Q);
  std::vector<Obligation> dischargePreservation(const qual::QualifierDef &Q);

  const qual::QualifierSet &Set;
  prover::ProverOptions Options;
  DiagnosticEngine *Diags;
};

/// Renders a human-readable summary of \p Reports.
std::string formatReports(const std::vector<SoundnessReport> &Reports);

} // namespace stq::soundness

#endif // STQ_SOUNDNESS_SOUNDNESS_H
