//===- Soundness.h - Automated soundness checking of qualifiers -*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automated soundness checker (sections 2.1.3, 2.2.3, 4.2). For each
/// qualifier with a declared invariant it generates proof obligations and
/// discharges them with the prover:
///
///  * one obligation per `case` clause of a value qualifier: matching the
///    pattern and satisfying the predicate, in an arbitrary execution
///    state, must establish the invariant;
///  * one obligation per `assign` clause of a reference qualifier, and one
///    for `ondecl`: the assignment/declaration must establish the
///    invariant for the qualified l-value;
///  * preservation obligations: an arbitrary assignment to some *other*
///    l-value, with a right-hand side consistent with the qualifier's
///    `disallow` clause, must preserve the invariant. The checker performs
///    the paper's case analysis over right-hand-side forms (NULL, integer
///    constants, allocation, reads, addresses of variables).
///
/// `restrict` clauses do not affect soundness and are ignored. Qualifiers
/// without an invariant (flow qualifiers such as tainted/untainted) have no
/// obligations: their guarantees come from subtyping alone.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SOUNDNESS_SOUNDNESS_H
#define STQ_SOUNDNESS_SOUNDNESS_H

#include "prover/Prover.h"
#include "prover/ProverCache.h"
#include "qual/QualAST.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"

#include <functional>
#include <string>
#include <vector>

namespace stq {
class ThreadPool;
}

namespace stq::soundness {

/// One discharged (or failed) proof obligation.
struct Obligation {
  std::string Qual;
  /// "case", "assign", "ondecl", or "preserve".
  std::string Kind;
  std::string Description;
  prover::ProofResult Result = prover::ProofResult::Unknown;
  prover::ProverStats Stats;
  /// The canonical task key, when a cache was consulted.
  std::string CacheKey;
  /// True when Result was replayed from the cache; Stats then describe the
  /// original (cached) run.
  bool FromCache = false;

  bool proved() const { return Result == prover::ProofResult::Proved; }
};

/// The soundness verdict for one qualifier.
struct SoundnessReport {
  std::string Qual;
  /// True when the qualifier declares no invariant: soundness is vacuous
  /// (flow qualifiers).
  bool IsFlowQualifier = false;
  std::vector<Obligation> Obligations;
  double TotalSeconds = 0.0;

  bool sound() const {
    for (const Obligation &O : Obligations)
      if (!O.proved())
        return false;
    return true;
  }
  unsigned failedCount() const {
    unsigned N = 0;
    for (const Obligation &O : Obligations)
      if (!O.proved())
        ++N;
    return N;
  }
};

/// Checks qualifier definitions for soundness against their declared
/// invariants. Failures are also reported to the diagnostic engine (phase
/// "soundness") when one is supplied.
class SoundnessChecker {
public:
  /// \p Metrics, when given, receives per-obligation counters and timing
  /// histograms (`prove.*`, `prover.canon_seconds`); see
  /// docs/OBSERVABILITY.md for the names.
  /// \p Pool, when given, is a shared worker pool: obligations fan out on
  /// it as a task group instead of a per-call pool, so concurrent callers
  /// (e.g. server requests) share workers.
  SoundnessChecker(const qual::QualifierSet &Set,
                   prover::ProverOptions Options = {},
                   DiagnosticEngine *Diags = nullptr,
                   prover::ProverCache *Cache = nullptr,
                   stats::Registry *Metrics = nullptr,
                   ThreadPool *Pool = nullptr)
      : Set(Set), Options(Options), Diags(Diags), Cache(Cache),
        Metrics(Metrics), Pool(Pool) {}

  /// Checks one qualifier by name, discharging its obligations across
  /// \p Jobs worker threads (every obligation is an independent prover
  /// session). Jobs <= 1 is the sequential baseline; results and their
  /// order are identical for any job count.
  SoundnessReport checkQualifier(const std::string &Name, unsigned Jobs = 1);
  /// Checks every qualifier in the set, fanning all obligations of all
  /// qualifiers into one task pool.
  std::vector<SoundnessReport> checkAll(unsigned Jobs = 1);

private:
  /// The independent proof tasks for \p Q, in report order. Each closure
  /// owns its prover session and is safe to run on any thread.
  std::vector<std::function<Obligation()>>
  obligationTasks(const qual::QualifierDef &Q) const;
  /// Reports failures to Diags and accumulates timing, after tasks ran.
  void finalizeReport(SoundnessReport &Report) const;

  Obligation dischargeCaseClause(const qual::QualifierDef &Q,
                                 const qual::Clause &C, unsigned Index) const;
  Obligation dischargeAssignClause(const qual::QualifierDef &Q,
                                   const qual::Clause &C,
                                   unsigned Index) const;
  Obligation dischargeOnDecl(const qual::QualifierDef &Q) const;
  Obligation dischargePreservationCase(const qual::QualifierDef &Q,
                                       unsigned CaseIndex) const;
  /// Consults the cache, runs the prover on a miss, and records the
  /// outcome into \p O.
  void dischargeGoal(prover::Prover &P, prover::FormulaPtr Goal,
                     Obligation &O) const;

  /// Wraps \p Task with the per-obligation trace span, wall-time
  /// histogram, and verdict counters.
  Obligation runObligation(const std::function<Obligation()> &Task) const;

  const qual::QualifierSet &Set;
  prover::ProverOptions Options;
  DiagnosticEngine *Diags;
  prover::ProverCache *Cache;
  stats::Registry *Metrics;
  ThreadPool *Pool;
};

/// Renders a human-readable summary of \p Reports.
std::string formatReports(const std::vector<SoundnessReport> &Reports);

} // namespace stq::soundness

#endif // STQ_SOUNDNESS_SOUNDNESS_H
