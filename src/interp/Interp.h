//===- Interp.h - C-minus interpreter with run-time checks ------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A big-step interpreter for lowered C-minus programs. It plays the role
/// of gcc + hardware in the paper's pipeline: it executes the program the
/// extensible typechecker instrumented, firing the run-time qualifier
/// checks at casts to value-qualified types (section 2.1.3; a fatal error
/// is signaled when a check fails), and it models `printf` format-string
/// consumption so format-string vulnerabilities are dynamically observable
/// (section 6.3).
///
/// Memory is block-based: every variable and allocation is a block of
/// cells; pointers are (block, offset) pairs, which realizes the paper's
/// logical model of memory (p+i stays within p's block type).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_INTERP_INTERP_H
#define STQ_INTERP_INTERP_H

#include "checker/Checker.h"
#include "cminus/AST.h"
#include "qual/QualAST.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stq::interp {

/// A run-time value: an integer or a pointer (NULL is the zero pointer of
/// a distinguished invalid block).
struct Value {
  enum class Kind { Int, Ptr, Null };

  Kind K = Kind::Int;
  int64_t Int = 0;
  uint32_t Block = 0;
  int64_t Off = 0;

  static Value makeInt(int64_t V) { return Value{Kind::Int, V, 0, 0}; }
  static Value makeNull() { return Value{Kind::Null, 0, 0, 0}; }
  static Value makePtr(uint32_t Block, int64_t Off) {
    return Value{Kind::Ptr, 0, Block, Off};
  }

  bool isTruthy() const {
    switch (K) {
    case Kind::Int:
      return Int != 0;
    case Kind::Null:
      return false;
    case Kind::Ptr:
      return true;
    }
    return false;
  }

  std::string str() const;
};

/// How a run terminated.
enum class RunStatus {
  Ok,                  ///< Entry function returned normally.
  Trap,                ///< Memory error (null/dangling/out-of-bounds).
  CheckFailure,        ///< A run-time qualifier check failed (fatal error).
  FuelExhausted,       ///< Step budget exceeded.
  SetupError,          ///< Missing entry point or malformed program.
};

/// One fired run-time qualifier check that failed.
struct CheckFailure {
  SourceLoc Loc;
  std::string Qual;
  std::string ValueStr;
};

/// One printf-style call that consumed more arguments than were supplied:
/// the dynamic signature of a format-string vulnerability.
struct FormatViolation {
  SourceLoc Loc;
  std::string Format;
  unsigned Supplied = 0;
  unsigned Consumed = 0;
};

struct RunResult {
  RunStatus Status = RunStatus::SetupError;
  /// Entry function's return value, when Status == Ok.
  std::optional<int64_t> ExitValue;
  /// Everything printf produced.
  std::string Output;
  std::string TrapMessage;
  std::vector<CheckFailure> CheckFailures;
  std::vector<FormatViolation> FormatViolations;
  /// Declared value-qualifier invariants that were violated by a store the
  /// checker accepted (audit mode only). Non-empty means the static checker
  /// let an invariant-breaking value reach a qualified location: a direct
  /// counterexample to the paper's Theorem 5.1.
  std::vector<CheckFailure> AuditFailures;
  uint64_t Steps = 0;
  /// Run-time qualifier checks that executed (pass or fail).
  uint64_t ChecksExecuted = 0;
  /// Invariant audits that executed in audit mode (pass or fail).
  uint64_t AuditChecks = 0;

  bool ok() const { return Status == RunStatus::Ok; }
};

struct InterpOptions {
  std::string EntryPoint = "main";
  uint64_t Fuel = 10'000'000;
  /// When set, every store to a location whose declared type carries a
  /// value qualifier with an invariant re-evaluates that invariant against
  /// the stored value, recording (not trapping on) violations in
  /// RunResult::AuditFailures. This turns Theorem 5.1 into an executable
  /// oracle: on checker-accepted programs the audit must never fire.
  /// Uninitialized declarations and the synthetic entry-point argument
  /// binding are exempt (the checker does not govern those default values).
  bool AuditQualifiedStores = false;
};

/// The interpreter's total-order comparison semantics over run-time values:
/// integers sort before pointers, NULL is the zero pointer of the invalid
/// block, pointers compare by (block, offset). Shared with the bytecode VM
/// (src/vm) so both engines agree on comparisons by construction.
bool compareValues(cminus::BinaryOp Op, const Value &L, const Value &R);

/// Evaluates a value-qualifier invariant against a concrete value \p V.
/// \p IsHeapBlock answers whether a block id names a heap allocation (the
/// `isheap value(E)` predicate); it is only consulted for pointer values.
/// Shared with the bytecode VM so guard/audit outcomes are bit-identical.
bool invariantHolds(const qual::InvPred &Inv, const Value &V,
                    const std::function<bool(uint32_t)> &IsHeapBlock);

/// Executes \p Prog. \p Quals supplies invariant definitions for the
/// run-time checks listed in \p Checks (produced by the extensible
/// typechecker).
RunResult runProgram(const cminus::Program &Prog,
                     const qual::QualifierSet &Quals,
                     const std::vector<checker::RuntimeCastCheck> &Checks,
                     InterpOptions Options = {});

/// Convenience: full pipeline (parse, sema, lower, qualifier-check,
/// execute). Qualifier warnings do not block execution, as in the paper.
RunResult runSource(const std::string &Source,
                    const qual::QualifierSet &Quals, DiagnosticEngine &Diags,
                    InterpOptions Options = {});

} // namespace stq::interp

#endif // STQ_INTERP_INTERP_H
