//===- Interp.cpp ---------------------------------------------------------===//

#include "interp/Interp.h"

#include "cminus/Lowering.h"
#include "cminus/Printer.h"
#include "support/Trace.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace stq;
using namespace stq::interp;
using namespace stq::cminus;

std::string Value::str() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Null:
    return "NULL";
  case Kind::Ptr:
    return "&B" + std::to_string(Block) + "+" + std::to_string(Off);
  }
  return "?";
}

namespace {

struct Location {
  uint32_t Block = 0;
  int64_t Off = 0;
};

struct MemBlock {
  std::vector<Value> Cells;
  bool IsHeap = false;
  bool Alive = true;
};

/// Control-flow outcome of executing a statement.
enum class Flow { Normal, Break, Continue, Return };

class Interpreter {
public:
  Interpreter(const Program &Prog, const qual::QualifierSet &Quals,
              const std::vector<checker::RuntimeCastCheck> &Checks,
              InterpOptions Options)
      : Prog(Prog), Quals(Quals), Options(Options) {
    for (const checker::RuntimeCastCheck &C : Checks)
      CheckMap[C.Cast] = C.Quals;
    Blocks.emplace_back(); // Block 0 is invalid.
  }

  RunResult run();

private:
  using Frame = std::map<const VarDecl *, uint32_t>;

  void trap(SourceLoc Loc, const std::string &Message) {
    if (Halted)
      return;
    Halted = true;
    Result.Status = RunStatus::Trap;
    Result.TrapMessage = Loc.str() + ": " + Message;
  }
  bool spendFuel() {
    ++Result.Steps;
    if (Result.Steps > Options.Fuel) {
      if (!Halted) {
        Halted = true;
        Result.Status = RunStatus::FuelExhausted;
      }
      return false;
    }
    return !Halted;
  }

  // Memory.
  unsigned sizeOfType(const TypePtr &Ty);
  Value initialValueFor(const TypePtr &Ty);
  uint32_t allocBlockForType(const TypePtr &Ty, bool IsHeap);
  void initBlockCells(MemBlock &Block, const TypePtr &Ty, unsigned Base);
  uint32_t allocRawBlock(unsigned Cells, bool IsHeap);
  Value readLoc(Location Loc, SourceLoc At);
  void writeLoc(Location Loc, Value V, SourceLoc At);
  int64_t fieldOffset(const TypePtr &StructTy, const std::string &Field,
                      TypePtr &FieldTyOut, SourceLoc At);

  // Evaluation.
  Value evalExpr(const Expr *E, Frame &F);
  std::optional<Location> evalLValue(const LValue *LV, Frame &F);
  Value evalCall(const CallExpr *Call, Frame &F);
  Value callFunction(const FuncDecl *Fn, const std::vector<Value> &Args,
                     SourceLoc At, bool AuditParams = true);
  Value doPrintf(const CallExpr *Call, const std::vector<Value> &Args);
  std::string readString(Value Ptr, SourceLoc At);

  // Run-time qualifier checks.
  void runCastChecks(const CastExpr *Cast, const Value &V);
  bool invariantHolds(const qual::InvPred &Inv, const Value &V);
  bool compareValues(cminus::BinaryOp Op, const Value &A, const Value &B);

  // Execution.
  Flow execStmt(const Stmt *S, Frame &F, Value &RetVal);
  void execAssignTo(Location Loc, const Expr *RHS, Frame &F, SourceLoc At,
                    const TypePtr &AuditTy = nullptr);
  void auditStore(const TypePtr &DeclTy, const Value &V, SourceLoc At);

  const Program &Prog;
  const qual::QualifierSet &Quals;
  InterpOptions Options;
  std::map<const CastExpr *, std::vector<std::string>> CheckMap;

  std::vector<MemBlock> Blocks;
  Frame Globals;
  std::map<const StrConstExpr *, uint32_t> StringBlocks;
  RunResult Result;
  bool Halted = false;
};

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

unsigned Interpreter::sizeOfType(const TypePtr &Ty) {
  TypePtr Bare = Type::withoutQuals(Ty);
  if (Bare->isStruct()) {
    const StructDef *Def = Prog.findStruct(Bare->structName());
    if (!Def)
      return 1;
    unsigned N = 0;
    for (const StructDef::Field &Fd : Def->Fields)
      N += sizeOfType(Fd.Ty);
    return N == 0 ? 1 : N;
  }
  return 1;
}

Value Interpreter::initialValueFor(const TypePtr &Ty) {
  TypePtr Bare = Type::withoutQuals(Ty);
  if (Bare->isPointer())
    return Value::makeNull();
  return Value::makeInt(0);
}

uint32_t Interpreter::allocRawBlock(unsigned Cells, bool IsHeap) {
  MemBlock B;
  B.Cells.assign(std::max(1u, Cells), Value::makeInt(0));
  B.IsHeap = IsHeap;
  Blocks.push_back(std::move(B));
  return static_cast<uint32_t>(Blocks.size() - 1);
}

void Interpreter::initBlockCells(MemBlock &Block, const TypePtr &Ty,
                                 unsigned Base) {
  TypePtr Bare = Type::withoutQuals(Ty);
  if (Bare->isStruct()) {
    const StructDef *Def = Prog.findStruct(Bare->structName());
    if (!Def)
      return;
    unsigned Off = 0;
    for (const StructDef::Field &Fd : Def->Fields) {
      initBlockCells(Block, Fd.Ty, Base + Off);
      Off += sizeOfType(Fd.Ty);
    }
    return;
  }
  if (Base < Block.Cells.size())
    Block.Cells[Base] = initialValueFor(Ty);
}

uint32_t Interpreter::allocBlockForType(const TypePtr &Ty, bool IsHeap) {
  uint32_t Id = allocRawBlock(sizeOfType(Ty), IsHeap);
  initBlockCells(Blocks[Id], Ty, 0);
  return Id;
}

Value Interpreter::readLoc(Location Loc, SourceLoc At) {
  if (Loc.Block == 0 || Loc.Block >= Blocks.size()) {
    trap(At, "read through invalid pointer");
    return Value::makeInt(0);
  }
  MemBlock &B = Blocks[Loc.Block];
  if (!B.Alive) {
    trap(At, "read from freed memory");
    return Value::makeInt(0);
  }
  if (Loc.Off < 0 || static_cast<size_t>(Loc.Off) >= B.Cells.size()) {
    trap(At, "out-of-bounds read at offset " + std::to_string(Loc.Off));
    return Value::makeInt(0);
  }
  return B.Cells[Loc.Off];
}

void Interpreter::writeLoc(Location Loc, Value V, SourceLoc At) {
  if (Loc.Block == 0 || Loc.Block >= Blocks.size()) {
    trap(At, "write through invalid pointer");
    return;
  }
  MemBlock &B = Blocks[Loc.Block];
  if (!B.Alive) {
    trap(At, "write to freed memory");
    return;
  }
  if (Loc.Off < 0 || static_cast<size_t>(Loc.Off) >= B.Cells.size()) {
    trap(At, "out-of-bounds write at offset " + std::to_string(Loc.Off));
    return;
  }
  B.Cells[Loc.Off] = V;
}

int64_t Interpreter::fieldOffset(const TypePtr &StructTy,
                                 const std::string &Field,
                                 TypePtr &FieldTyOut, SourceLoc At) {
  TypePtr Bare = Type::withoutQuals(StructTy);
  if (!Bare->isStruct()) {
    trap(At, "field access on non-struct value");
    return 0;
  }
  const StructDef *Def = Prog.findStruct(Bare->structName());
  if (!Def) {
    trap(At, "unknown struct '" + Bare->structName() + "'");
    return 0;
  }
  int64_t Off = 0;
  for (const StructDef::Field &Fd : Def->Fields) {
    if (Fd.Name == Field) {
      FieldTyOut = Fd.Ty;
      return Off;
    }
    Off += sizeOfType(Fd.Ty);
  }
  trap(At, "struct '" + Def->Name + "' has no field '" + Field + "'");
  return 0;
}

//===----------------------------------------------------------------------===//
// L-values and expressions
//===----------------------------------------------------------------------===//

std::optional<Location> Interpreter::evalLValue(const LValue *LV, Frame &F) {
  if (!spendFuel())
    return std::nullopt;
  Location Loc;
  TypePtr CurTy;
  if (LV->isVar()) {
    auto Local = F.find(LV->Var);
    if (Local != F.end()) {
      Loc.Block = Local->second;
    } else {
      auto Glob = Globals.find(LV->Var);
      if (Glob == Globals.end()) {
        trap(LV->Loc, "unbound variable '" + LV->Var->Name + "'");
        return std::nullopt;
      }
      Loc.Block = Glob->second;
    }
    Loc.Off = 0;
    CurTy = LV->Var->DeclaredTy;
  } else {
    Value Addr = evalExpr(LV->Addr, F);
    if (Halted)
      return std::nullopt;
    if (Addr.K == Value::Kind::Null) {
      trap(LV->Loc, "null pointer dereference");
      return std::nullopt;
    }
    if (Addr.K != Value::Kind::Ptr) {
      trap(LV->Loc, "dereference of non-pointer value " + Addr.str());
      return std::nullopt;
    }
    Loc.Block = Addr.Block;
    Loc.Off = Addr.Off;
    TypePtr AddrTy = LV->Addr->Ty;
    CurTy = (AddrTy && AddrTy->isPointer()) ? AddrTy->pointee()
                                            : Type::getInt();
  }
  for (const std::string &Field : LV->Fields) {
    TypePtr FieldTy;
    Loc.Off += fieldOffset(CurTy, Field, FieldTy, LV->Loc);
    if (Halted)
      return std::nullopt;
    CurTy = FieldTy;
  }
  return Loc;
}

bool Interpreter::compareValues(BinaryOp Op, const Value &A, const Value &B) {
  return interp::compareValues(Op, A, B);
}

Value Interpreter::evalExpr(const Expr *E, Frame &F) {
  if (!spendFuel())
    return Value::makeInt(0);
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
    return Value::makeInt(cast<IntConstExpr>(E)->Value);
  case Expr::Kind::NullConst:
    return Value::makeNull();
  case Expr::Kind::StrConst: {
    const auto *Str = cast<StrConstExpr>(E);
    auto [It, Inserted] = StringBlocks.emplace(Str, 0);
    if (Inserted) {
      uint32_t Id = allocRawBlock(
          static_cast<unsigned>(Str->Value.size() + 1), /*IsHeap=*/false);
      for (size_t I = 0; I < Str->Value.size(); ++I)
        Blocks[Id].Cells[I] = Value::makeInt(Str->Value[I]);
      Blocks[Id].Cells[Str->Value.size()] = Value::makeInt(0);
      It->second = Id;
    }
    return Value::makePtr(It->second, 0);
  }
  case Expr::Kind::LValRead: {
    auto Loc = evalLValue(cast<LValReadExpr>(E)->LV, F);
    if (!Loc)
      return Value::makeInt(0);
    return readLoc(*Loc, E->Loc);
  }
  case Expr::Kind::AddrOf: {
    auto Loc = evalLValue(cast<AddrOfExpr>(E)->LV, F);
    if (!Loc)
      return Value::makeInt(0);
    return Value::makePtr(Loc->Block, Loc->Off);
  }
  case Expr::Kind::Unary: {
    const auto *Un = cast<UnaryExpr>(E);
    Value V = evalExpr(Un->Sub, F);
    if (Halted)
      return Value::makeInt(0);
    switch (Un->Op) {
    case UnaryOp::Neg:
      if (V.K != Value::Kind::Int) {
        trap(E->Loc, "negation of non-integer");
        return Value::makeInt(0);
      }
      return Value::makeInt(-V.Int);
    case UnaryOp::Not:
      return Value::makeInt(V.isTruthy() ? 0 : 1);
    case UnaryOp::BitNot:
      if (V.K != Value::Kind::Int) {
        trap(E->Loc, "bitwise-not of non-integer");
        return Value::makeInt(0);
      }
      return Value::makeInt(~V.Int);
    }
    return Value::makeInt(0);
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    // Short-circuit operators first.
    if (Bin->Op == BinaryOp::LAnd) {
      Value L = evalExpr(Bin->LHS, F);
      if (Halted || !L.isTruthy())
        return Value::makeInt(0);
      return Value::makeInt(evalExpr(Bin->RHS, F).isTruthy() ? 1 : 0);
    }
    if (Bin->Op == BinaryOp::LOr) {
      Value L = evalExpr(Bin->LHS, F);
      if (Halted)
        return Value::makeInt(0);
      if (L.isTruthy())
        return Value::makeInt(1);
      return Value::makeInt(evalExpr(Bin->RHS, F).isTruthy() ? 1 : 0);
    }
    Value L = evalExpr(Bin->LHS, F);
    if (Halted)
      return Value::makeInt(0);
    Value R = evalExpr(Bin->RHS, F);
    if (Halted)
      return Value::makeInt(0);
    switch (Bin->Op) {
    case BinaryOp::Add:
      if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Int)
        return Value::makePtr(L.Block, L.Off + R.Int);
      if (L.K == Value::Kind::Int && R.K == Value::Kind::Ptr)
        return Value::makePtr(R.Block, R.Off + L.Int);
      if (L.K == Value::Kind::Int && R.K == Value::Kind::Int)
        return Value::makeInt(L.Int + R.Int);
      trap(E->Loc, "invalid operands to '+'");
      return Value::makeInt(0);
    case BinaryOp::Sub:
      if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Int)
        return Value::makePtr(L.Block, L.Off - R.Int);
      if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Ptr) {
        if (L.Block != R.Block) {
          trap(E->Loc, "subtraction of pointers to different blocks");
          return Value::makeInt(0);
        }
        return Value::makeInt(L.Off - R.Off);
      }
      if (L.K == Value::Kind::Int && R.K == Value::Kind::Int)
        return Value::makeInt(L.Int - R.Int);
      trap(E->Loc, "invalid operands to '-'");
      return Value::makeInt(0);
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem: {
      if (L.K != Value::Kind::Int || R.K != Value::Kind::Int) {
        trap(E->Loc, "arithmetic on non-integers");
        return Value::makeInt(0);
      }
      if (Bin->Op == BinaryOp::Mul)
        return Value::makeInt(L.Int * R.Int);
      if (R.Int == 0) {
        trap(E->Loc, "division by zero");
        return Value::makeInt(0);
      }
      return Value::makeInt(Bin->Op == BinaryOp::Div ? L.Int / R.Int
                                                     : L.Int % R.Int);
    }
    default:
      return Value::makeInt(compareValues(Bin->Op, L, R) ? 1 : 0);
    }
  }
  case Expr::Kind::Cast: {
    const auto *Cast_ = cast<CastExpr>(E);
    Value V = evalExpr(Cast_->Sub, F);
    if (Halted)
      return V;
    runCastChecks(Cast_, V);
    return V;
  }
  case Expr::Kind::Call:
    return evalCall(cast<CallExpr>(E), F);
  case Expr::Kind::SizeofType:
    return Value::makeInt(sizeOfType(cast<SizeofTypeExpr>(E)->Target));
  }
  return Value::makeInt(0);
}

//===----------------------------------------------------------------------===//
// Run-time qualifier checks
//===----------------------------------------------------------------------===//

bool Interpreter::invariantHolds(const qual::InvPred &Inv, const Value &V) {
  return interp::invariantHolds(Inv, V, [this](uint32_t Block) {
    return Block < Blocks.size() && Blocks[Block].IsHeap;
  });
}

void Interpreter::runCastChecks(const CastExpr *Cast, const Value &V) {
  auto Found = CheckMap.find(Cast);
  if (Found == CheckMap.end())
    return;
  for (const std::string &QualName : Found->second) {
    const qual::QualifierDef *Q = Quals.find(QualName);
    if (!Q || !Q->Invariant)
      continue;
    ++Result.ChecksExecuted;
    if (invariantHolds(*Q->Invariant, V))
      continue;
    // The paper's semantics: a fatal error is signaled.
    Result.CheckFailures.push_back({Cast->Loc, QualName, V.str()});
    Halted = true;
    Result.Status = RunStatus::CheckFailure;
    return;
  }
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

std::string Interpreter::readString(Value Ptr, SourceLoc At) {
  std::string Out;
  if (Ptr.K != Value::Kind::Ptr) {
    trap(At, "expected a string pointer");
    return Out;
  }
  Location Loc{Ptr.Block, Ptr.Off};
  for (unsigned Guard = 0; Guard < 65536; ++Guard) {
    Value C = readLoc(Loc, At);
    if (Halted || C.K != Value::Kind::Int || C.Int == 0)
      break;
    Out += static_cast<char>(C.Int);
    ++Loc.Off;
  }
  return Out;
}

Value Interpreter::doPrintf(const CallExpr *Call,
                            const std::vector<Value> &Args) {
  if (Args.empty()) {
    trap(Call->Loc, "printf requires a format argument");
    return Value::makeInt(0);
  }
  std::string Format = readString(Args[0], Call->Loc);
  if (Halted)
    return Value::makeInt(0);
  std::string Out;
  size_t NextArg = 1;
  unsigned Consumed = 0;
  bool Violated = false;
  for (size_t I = 0; I < Format.size(); ++I) {
    if (Format[I] != '%') {
      Out += Format[I];
      continue;
    }
    if (I + 1 >= Format.size())
      break;
    char Spec = Format[++I];
    if (Spec == '%') {
      Out += '%';
      continue;
    }
    ++Consumed;
    Value Arg;
    bool HadArg = NextArg < Args.size();
    if (HadArg) {
      Arg = Args[NextArg++];
    } else {
      // The dynamic signature of a format-string vulnerability: the call
      // reads a nonexistent argument off the stack.
      Violated = true;
      Arg = Value::makeInt(static_cast<int64_t>(0xDEADBEEF));
    }
    switch (Spec) {
    case 'd':
    case 'x':
      Out += (Arg.K == Value::Kind::Int) ? std::to_string(Arg.Int)
                                         : Arg.str();
      break;
    case 'c':
      Out += (Arg.K == Value::Kind::Int) ? std::string(1, char(Arg.Int))
                                         : "?";
      break;
    case 's':
      if (!HadArg) {
        Out += "<stack-garbage>";
      } else {
        Out += readString(Arg, Call->Loc);
        if (Halted)
          return Value::makeInt(0);
      }
      break;
    default:
      Out += '%';
      Out += Spec;
      break;
    }
  }
  if (Violated)
    Result.FormatViolations.push_back(
        {Call->Loc, Format, static_cast<unsigned>(Args.size() - 1),
         Consumed});
  Result.Output += Out;
  return Value::makeInt(static_cast<int64_t>(Out.size()));
}

Value Interpreter::evalCall(const CallExpr *Call, Frame &F) {
  std::vector<Value> Args;
  Args.reserve(Call->Args.size());
  for (const Expr *Arg : Call->Args) {
    Args.push_back(evalExpr(Arg, F));
    if (Halted)
      return Value::makeInt(0);
  }
  // Builtins.
  if (Call->IsAlloc || Call->CalleeName == "malloc") {
    int64_t N = Args.empty() || Args[0].K != Value::Kind::Int ? 1
                                                              : Args[0].Int;
    if (N < 0)
      N = 0;
    uint32_t Id = allocRawBlock(static_cast<unsigned>(N), /*IsHeap=*/true);
    return Value::makePtr(Id, 0);
  }
  if (Call->CalleeName == "free" && !Call->Callee) {
    if (!Args.empty() && Args[0].K == Value::Kind::Ptr &&
        Args[0].Block < Blocks.size())
      Blocks[Args[0].Block].Alive = false;
    return Value::makeInt(0);
  }
  const FuncDecl *Fn = Call->Callee;
  if (!Fn)
    Fn = Prog.findFunction(Call->CalleeName);
  if (Fn && Fn->isDefinition())
    return callFunction(Fn, Args, Call->Loc);
  // Undeclared or prototype-only printf-family calls get the printf model
  // when the first parameter looks like a format string.
  if (Call->CalleeName == "printf" ||
      (Fn && Fn->Variadic && !Fn->Params.empty() &&
       Type::withoutQuals(Fn->Params[0]->DeclaredTy)->isPointer()))
    return doPrintf(Call, Args);
  trap(Call->Loc, "call to undefined function '" + Call->CalleeName + "'");
  return Value::makeInt(0);
}

Value Interpreter::callFunction(const FuncDecl *Fn,
                                const std::vector<Value> &Args,
                                SourceLoc At, bool AuditParams) {
  if (!spendFuel())
    return Value::makeInt(0);
  Frame F;
  for (size_t I = 0; I < Fn->Params.size(); ++I) {
    uint32_t Id = allocBlockForType(Fn->Params[I]->DeclaredTy,
                                    /*IsHeap=*/false);
    if (I < Args.size()) {
      Blocks[Id].Cells[0] = Args[I];
      if (AuditParams)
        auditStore(Fn->Params[I]->DeclaredTy, Args[I], At);
    }
    F[Fn->Params[I]] = Id;
  }
  (void)At;
  Value RetVal = Value::makeInt(0);
  execStmt(Fn->Body, F, RetVal);
  return RetVal;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Interpreter::execAssignTo(Location Loc, const Expr *RHS, Frame &F,
                               SourceLoc At, const TypePtr &AuditTy) {
  Value V = evalExpr(RHS, F);
  if (Halted)
    return;
  writeLoc(Loc, V, At);
  if (!Halted)
    auditStore(AuditTy, V, At);
}

void Interpreter::auditStore(const TypePtr &DeclTy, const Value &V,
                             SourceLoc At) {
  if (!Options.AuditQualifiedStores || !DeclTy)
    return;
  for (const std::string &QualName : DeclTy->quals()) {
    const qual::QualifierDef *Q = Quals.find(QualName);
    // Reference-qualifier invariants quantify over locations; only value
    // qualifiers state a per-value property the audit can evaluate.
    if (!Q || Q->IsRef || !Q->Invariant)
      continue;
    ++Result.AuditChecks;
    if (!invariantHolds(*Q->Invariant, V))
      Result.AuditFailures.push_back({At, QualName, V.str()});
  }
}

Flow Interpreter::execStmt(const Stmt *S, Frame &F, Value &RetVal) {
  if (!S || !spendFuel())
    return Flow::Normal;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts) {
      Flow Fl = execStmt(Sub, F, RetVal);
      if (Halted)
        return Flow::Return;
      if (Fl != Flow::Normal)
        return Fl;
    }
    return Flow::Normal;
  case Stmt::Kind::Decl: {
    const VarDecl *Var = cast<DeclStmt>(S)->Var;
    uint32_t Id = allocBlockForType(Var->DeclaredTy, /*IsHeap=*/false);
    F[Var] = Id;
    if (Var->Init)
      execAssignTo(Location{Id, 0}, Var->Init, F, Var->Loc,
                   Var->DeclaredTy);
    return Flow::Normal;
  }
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    auto Loc = evalLValue(Assign->LHS, F);
    if (!Loc)
      return Flow::Normal;
    execAssignTo(*Loc, Assign->RHS, F, Assign->Loc, Assign->LHS->Ty);
    return Flow::Normal;
  }
  case Stmt::Kind::CallStmt:
    evalCall(cast<CallStmt>(S)->Call, F);
    return Flow::Normal;
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    Value Cond = evalExpr(If->Cond, F);
    if (Halted)
      return Flow::Return;
    if (Cond.isTruthy())
      return execStmt(If->Then, F, RetVal);
    return execStmt(If->Else, F, RetVal);
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    while (true) {
      Value Cond = evalExpr(While->Cond, F);
      if (Halted)
        return Flow::Return;
      if (!Cond.isTruthy())
        return Flow::Normal;
      Flow Fl = execStmt(While->Body, F, RetVal);
      if (Halted)
        return Flow::Return;
      if (Fl == Flow::Break)
        return Flow::Normal;
      if (Fl == Flow::Return)
        return Fl;
    }
  }
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->Init) {
      execStmt(For->Init, F, RetVal);
      if (Halted)
        return Flow::Return;
    }
    while (true) {
      if (For->Cond) {
        Value Cond = evalExpr(For->Cond, F);
        if (Halted)
          return Flow::Return;
        if (!Cond.isTruthy())
          return Flow::Normal;
      }
      Flow Fl = execStmt(For->Body, F, RetVal);
      if (Halted)
        return Flow::Return;
      if (Fl == Flow::Break)
        return Flow::Normal;
      if (Fl == Flow::Return)
        return Fl;
      if (For->Step) {
        execStmt(For->Step, F, RetVal);
        if (Halted)
          return Flow::Return;
      }
    }
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    if (Ret->Value) {
      RetVal = evalExpr(Ret->Value, F);
      if (Halted)
        return Flow::Return;
    }
    return Flow::Return;
  }
  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  }
  return Flow::Normal;
}

//===----------------------------------------------------------------------===//
// Entry
//===----------------------------------------------------------------------===//

RunResult Interpreter::run() {
  const FuncDecl *Entry = Prog.findFunction(Options.EntryPoint);
  if (!Entry || !Entry->isDefinition()) {
    Result.Status = RunStatus::SetupError;
    Result.TrapMessage = "entry point '" + Options.EntryPoint +
                         "' not found or has no body";
    return Result;
  }

  // Allocate and initialize globals.
  Frame Empty;
  for (const VarDecl *G : Prog.Globals) {
    uint32_t Id = allocBlockForType(G->DeclaredTy, /*IsHeap=*/false);
    Globals[G] = Id;
  }
  for (const VarDecl *G : Prog.Globals) {
    if (!G->Init)
      continue;
    execAssignTo(Location{Globals[G], 0}, G->Init, Empty, G->Loc,
                 G->DeclaredTy);
    if (Halted)
      return Result;
  }

  Result.Status = RunStatus::Ok;
  std::vector<Value> Args;
  for (const VarDecl *P : Entry->Params)
    Args.push_back(initialValueFor(P->DeclaredTy));
  // The entry function's arguments are synthesized defaults, not values
  // the checker vetted, so they are exempt from the audit.
  Value Ret = callFunction(Entry, Args, Entry->Loc, /*AuditParams=*/false);
  if (!Halted) {
    Result.Status = RunStatus::Ok;
    if (Ret.K == Value::Kind::Int)
      Result.ExitValue = Ret.Int;
    else
      Result.ExitValue = 0;
  }
  return Result;
}

} // namespace

bool stq::interp::compareValues(BinaryOp Op, const Value &A, const Value &B) {
  auto AsTuple = [](const Value &V) {
    // Total order: ints before pointers; NULL is the zero pointer.
    int Rank = V.K == Value::Kind::Int ? 0 : 1;
    int64_t Primary = V.K == Value::Kind::Int ? V.Int
                      : V.K == Value::Kind::Null ? 0
                                                 : static_cast<int64_t>(
                                                       V.Block);
    int64_t Secondary = V.K == Value::Kind::Ptr ? V.Off : 0;
    return std::make_tuple(Rank, Primary, Secondary);
  };
  bool Equal;
  if (A.K == Value::Kind::Int && B.K == Value::Kind::Int)
    Equal = A.Int == B.Int;
  else
    Equal = AsTuple(A) == AsTuple(B);
  switch (Op) {
  case BinaryOp::Eq:
    return Equal;
  case BinaryOp::Ne:
    return !Equal;
  case BinaryOp::Lt:
    return AsTuple(A) < AsTuple(B);
  case BinaryOp::Le:
    return AsTuple(A) <= AsTuple(B);
  case BinaryOp::Gt:
    return AsTuple(A) > AsTuple(B);
  case BinaryOp::Ge:
    return AsTuple(A) >= AsTuple(B);
  default:
    return false;
  }
}

bool stq::interp::invariantHolds(
    const qual::InvPred &Inv, const Value &V,
    const std::function<bool(uint32_t)> &IsHeapBlock) {
  using qual::InvPred;
  using qual::InvTerm;
  auto TermValue = [&](const InvTerm &T) -> Value {
    switch (T.K) {
    case InvTerm::Kind::ValueOf:
      return V;
    case InvTerm::Kind::Int:
      return Value::makeInt(T.Int);
    case InvTerm::Kind::Null:
      return Value::makeNull();
    default:
      // location/deref/quantified: only reference qualifiers use these,
      // and reference-qualifier casts are never instrumented.
      return Value::makeInt(0);
    }
  };
  switch (Inv.K) {
  case InvPred::Kind::Compare:
    return compareValues(Inv.CmpOp, TermValue(Inv.A), TermValue(Inv.B));
  case InvPred::Kind::IsHeapLoc: {
    Value T = TermValue(Inv.A);
    return T.K == Value::Kind::Ptr && IsHeapBlock(T.Block);
  }
  case InvPred::Kind::And:
    return invariantHolds(*Inv.LHS, V, IsHeapBlock) &&
           invariantHolds(*Inv.RHS, V, IsHeapBlock);
  case InvPred::Kind::Or:
    return invariantHolds(*Inv.LHS, V, IsHeapBlock) ||
           invariantHolds(*Inv.RHS, V, IsHeapBlock);
  case InvPred::Kind::Implies:
    return !invariantHolds(*Inv.LHS, V, IsHeapBlock) ||
           invariantHolds(*Inv.RHS, V, IsHeapBlock);
  case InvPred::Kind::Forall:
    return true; // Not instrumented (reference qualifiers only).
  }
  return true;
}

RunResult stq::interp::runProgram(
    const Program &Prog, const qual::QualifierSet &Quals,
    const std::vector<checker::RuntimeCastCheck> &Checks,
    InterpOptions Options) {
  trace::Span Span("execute");
  Interpreter I(Prog, Quals, Checks, Options);
  return I.run();
}

RunResult stq::interp::runSource(const std::string &Source,
                                 const qual::QualifierSet &Quals,
                                 DiagnosticEngine &Diags,
                                 InterpOptions Options) {
  std::unique_ptr<Program> Prog;
  checker::CheckResult Check =
      checker::checkSource(Source, Quals, Diags, Prog);
  RunResult R;
  if (!Prog || Diags.hasErrors()) {
    R.Status = RunStatus::SetupError;
    R.TrapMessage = "front-end errors";
    return R;
  }
  return runProgram(*Prog, Quals, Check.RuntimeChecks, Options);
}
