//===- Compiler.cpp - Lowered C-minus -> register bytecode ----------------===//
//
// Lowers each function to a flat instruction stream over virtual registers.
// The translation is built around one invariant: executing the bytecode
// performs exactly the interpreter's observable actions — block
// allocations, memory reads/writes, traps, qualifier checks, audits,
// printf output and fuel spends — in exactly the interpreter's order.
//
// Fuel: the interpreter charges one unit at each expression, lvalue,
// statement and call-function entry. The compiler tracks those entries in
// `PendingFuel` and attaches the accumulated count to the next emitted
// instruction, which charges them one unit at a time before executing.
// Pending fuel may never be carried across a label that can also be
// reached by a jump (the jump path's fuel was already absorbed by the
// jump instruction), so the compiler flushes it with an explicit Tick on
// the fall-through path before binding such labels. It also may not be
// merged past a potentially-trapping or halting instruction — with one
// fuel unit left, spend-then-trap must exhaust differently from
// trap-then-spend — which the per-instruction charge-before-execute rule
// guarantees.
//
// Register discipline: compiling an expression allocates its result
// register at the current register top and leaves the top one past it;
// sub-expression temporaries above the result are released by resetting
// the top. Call arguments therefore land in consecutive registers.
//
//===----------------------------------------------------------------------===//

#include "cminus/Type.h"
#include "support/Casting.h"
#include "vm/VM.h"

#include <cassert>
#include <map>

using namespace stq;
using namespace stq::vm;
using namespace stq::cminus;

namespace {

class Compiler {
public:
  Compiler(const Program &Prog, const qual::QualifierSet &Quals,
           const std::vector<checker::RuntimeCastCheck> &Checks,
           ModuleCode &M)
      : Prog(Prog), Quals(Quals), M(M) {
    // Last check wins per cast site, matching the interpreter's CheckMap.
    for (const checker::RuntimeCastCheck &C : Checks)
      CheckMap[C.Cast] = C.Quals;
  }

  void compile(const std::string &EntryPoint) {
    for (const VarDecl *G : Prog.Globals) {
      GlobalIndex[G] = static_cast<uint32_t>(M.Globals.size());
      M.Globals.push_back(G);
      M.GlobalTemplates.push_back(internTemplate(G->DeclaredTy));
    }
    M.EntryName = EntryPoint;
    M.Fns.emplace_back(); // Fns[0]: synthetic startup.
    for (const FuncDecl *Fn : Prog.Functions)
      if (Fn->isDefinition()) {
        FnIndex[Fn] = static_cast<uint32_t>(M.Fns.size());
        M.Fns.emplace_back();
        M.Fns.back().Fn = Fn;
      }
    const FuncDecl *Entry = Prog.findFunction(EntryPoint);
    if (!Entry || !Entry->isDefinition()) {
      M.EntryMissing = true;
      return;
    }
    for (uint32_t I = 1; I < M.Fns.size(); ++I)
      compileFunction(I);
    compileStartup(Entry);
  }

private:
  const Program &Prog;
  const qual::QualifierSet &Quals;
  ModuleCode &M;
  std::map<const CastExpr *, std::vector<std::string>> CheckMap;

  std::map<const VarDecl *, uint32_t> GlobalIndex;
  std::map<const FuncDecl *, uint32_t> FnIndex;
  std::map<const Type *, uint32_t> TemplateIndex;
  std::map<const StrConstExpr *, uint32_t> StrIndex;
  std::map<std::string, uint32_t> MsgIndex;
  std::map<std::tuple<int, int64_t, uint32_t, int64_t>, uint32_t> ConstIndex;

  // Per-function state.
  FnCode *F = nullptr;
  std::map<const VarDecl *, uint32_t> LocalSlots;
  uint32_t PendingFuel = 0;
  uint32_t RegTop = 0;

  /// One enclosing statement context a break/continue/return can target.
  /// Loops catch break/continue; a For's Init and Step statements discard
  /// *every* control-flow escape (the interpreter ignores their Flow
  /// result), so `return` there only records the value and jumps on.
  struct Scope {
    bool Discard = false;
    int64_t ContTarget = -1; ///< Known continue target (while head).
    std::vector<size_t> BreakFix, ContFix, AllFix;
  };
  std::vector<Scope> Scopes;

  //===--------------------------------------------------------------------===
  // Module side tables
  //===--------------------------------------------------------------------===

  unsigned sizeOfType(const TypePtr &Ty) {
    TypePtr Bare = Type::withoutQuals(Ty);
    if (Bare->isStruct()) {
      const StructDef *Def = Prog.findStruct(Bare->structName());
      if (!Def)
        return 1;
      unsigned N = 0;
      for (const StructDef::Field &Fd : Def->Fields)
        N += sizeOfType(Fd.Ty);
      return N == 0 ? 1 : N;
    }
    return 1;
  }

  Value initialValueFor(const TypePtr &Ty) {
    TypePtr Bare = Type::withoutQuals(Ty);
    if (Bare->isPointer())
      return Value::makeNull();
    return Value::makeInt(0);
  }

  void initCells(std::vector<Value> &Cells, const TypePtr &Ty,
                 unsigned Base) {
    TypePtr Bare = Type::withoutQuals(Ty);
    if (Bare->isStruct()) {
      const StructDef *Def = Prog.findStruct(Bare->structName());
      if (!Def)
        return;
      unsigned Off = 0;
      for (const StructDef::Field &Fd : Def->Fields) {
        initCells(Cells, Fd.Ty, Base + Off);
        Off += sizeOfType(Fd.Ty);
      }
      return;
    }
    if (Base < Cells.size())
      Cells[Base] = initialValueFor(Ty);
  }

  /// Precomputed cell image of allocBlockForType(Ty).
  uint32_t internTemplate(const TypePtr &Ty) {
    auto [It, Inserted] = TemplateIndex.emplace(Ty.get(), 0);
    if (!Inserted)
      return It->second;
    std::vector<Value> Cells(std::max(1u, sizeOfType(Ty)),
                             Value::makeInt(0));
    initCells(Cells, Ty, 0);
    It->second = static_cast<uint32_t>(M.Templates.size());
    M.Templates.push_back(std::move(Cells));
    return It->second;
  }

  uint32_t internString(const StrConstExpr *S) {
    auto [It, Inserted] =
        StrIndex.emplace(S, static_cast<uint32_t>(M.Strings.size()));
    if (Inserted)
      M.Strings.push_back(S);
    return It->second;
  }

  /// Deduplicated constant-pool index for \p V (Imm/BinaryImm payloads).
  uint32_t internConst(const Value &V) {
    auto Key = std::make_tuple(static_cast<int>(V.K), V.Int, V.Block, V.Off);
    auto [It, Inserted] =
        ConstIndex.emplace(Key, static_cast<uint32_t>(M.Consts.size()));
    if (Inserted)
      M.Consts.push_back(V);
    return It->second;
  }

  uint32_t internMsg(const std::string &Msg) {
    auto [It, Inserted] =
        MsgIndex.emplace(Msg, static_cast<uint32_t>(M.Msgs.size()));
    if (Inserted)
      M.Msgs.push_back(Msg);
    return It->second;
  }

  /// Recognize invariants of the shape `value(E) cmp <int literal|NULL>`
  /// (the common builtins: pos, neg, nonneg, nonzero, nonnull) and record
  /// a fast form the dispatch loop can check without walking the AST.
  /// Literal-on-the-left compares are normalized by flipping the operator.
  static void classifyFastInv(const qual::InvPred &Inv, GuardQual &GQ) {
    using qual::InvPred;
    using qual::InvTerm;
    if (Inv.K != InvPred::Kind::Compare)
      return;
    switch (Inv.CmpOp) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      break;
    default:
      return;
    }
    const InvTerm *Val = nullptr, *Lit = nullptr;
    bool Flip = false;
    if (Inv.A.K == InvTerm::Kind::ValueOf) {
      Val = &Inv.A;
      Lit = &Inv.B;
    } else if (Inv.B.K == InvTerm::Kind::ValueOf) {
      Val = &Inv.B;
      Lit = &Inv.A;
      Flip = true;
    }
    if (!Val)
      return;
    BinaryOp Op = Inv.CmpOp;
    if (Flip) {
      switch (Op) {
      case BinaryOp::Lt: Op = BinaryOp::Gt; break;
      case BinaryOp::Le: Op = BinaryOp::Ge; break;
      case BinaryOp::Gt: Op = BinaryOp::Lt; break;
      case BinaryOp::Ge: Op = BinaryOp::Le; break;
      default: break; // Eq/Ne are symmetric.
      }
    }
    if (Lit->K == InvTerm::Kind::Int) {
      GQ.Fast = FastInv::CmpInt;
      GQ.FastOp = Op;
      GQ.FastImm = Lit->Int;
    } else if (Lit->K == InvTerm::Kind::Null &&
               (Op == BinaryOp::Eq || Op == BinaryOp::Ne)) {
      GQ.Fast = FastInv::CmpNull;
      GQ.FastOp = Op;
    }
  }

  /// Qualifier checks of an instrumented cast (NoIndex when none apply).
  uint32_t guardIndex(const CastExpr *Cast) {
    auto Found = CheckMap.find(Cast);
    if (Found == CheckMap.end())
      return NoIndex;
    GuardSite Site;
    Site.Cast = Cast;
    Site.Loc = Cast->Loc;
    for (const std::string &Name : Found->second) {
      const qual::QualifierDef *Q = Quals.find(Name);
      if (!Q || !Q->Invariant)
        continue;
      GuardQual GQ;
      GQ.Name = Name;
      GQ.Inv = &*Q->Invariant;
      classifyFastInv(*GQ.Inv, GQ);
      Site.Quals.push_back(std::move(GQ));
    }
    if (Site.Quals.empty())
      return NoIndex;
    M.Guards.push_back(std::move(Site));
    return static_cast<uint32_t>(M.Guards.size() - 1);
  }

  /// Audited invariants of a store to a location of declared type \p Ty.
  uint32_t auditIndex(const TypePtr &Ty) {
    if (!Ty)
      return NoIndex;
    AuditSite Site;
    for (const std::string &Name : Ty->quals()) {
      const qual::QualifierDef *Q = Quals.find(Name);
      if (!Q || Q->IsRef || !Q->Invariant)
        continue;
      Site.Quals.emplace_back(Name, &*Q->Invariant);
    }
    if (Site.Quals.empty())
      return NoIndex;
    M.Audits.push_back(std::move(Site));
    return static_cast<uint32_t>(M.Audits.size() - 1);
  }

  //===--------------------------------------------------------------------===
  // Emission
  //===--------------------------------------------------------------------===

  size_t emit(Instr I) {
    I.Fuel = PendingFuel;
    PendingFuel = 0;
    F->Code.push_back(I);
    return F->Code.size() - 1;
  }

  /// Emits a fuel-only Tick when pending fuel must not leak across an
  /// upcoming label (loop heads, branch joins).
  void flushPending() {
    if (!PendingFuel)
      return;
    Instr T;
    T.K = Op::Tick;
    emit(T);
  }

  /// Emit a jump-if-false on \p Cond, fusing with an immediately
  /// preceding Binary/BinaryImm that produced it (loop and if conditions
  /// are almost always comparisons). The fused form still writes R[A],
  /// and jumps have no observable effect nor fuel of their own at these
  /// sites (PendingFuel is 0 after the condition's last instruction), so
  /// no charge moves across an observable boundary. Returns the
  /// instruction index to patch with the jump target.
  size_t emitFalseBranch(uint16_t Cond) {
    if (PendingFuel == 0 && !F->Code.empty()) {
      Instr &L = F->Code.back();
      if ((L.K == Op::Binary || L.K == Op::BinaryImm) && L.A == Cond) {
        L.K = L.K == Op::Binary ? Op::BinaryJmp : Op::BinaryImmJmp;
        return F->Code.size() - 1;
      }
    }
    Instr Br;
    Br.K = Op::JmpIfFalse;
    Br.A = Cond;
    return emit(Br);
  }

  size_t here() const { return F->Code.size(); }
  void patch(size_t At, size_t Target) {
    F->Code[At].Target = static_cast<int32_t>(Target);
  }

  uint16_t allocReg() {
    assert(RegTop < NoReg && "register file overflow");
    uint16_t R = static_cast<uint16_t>(RegTop++);
    F->NumRegs = std::max(F->NumRegs, RegTop);
    return R;
  }

  uint16_t localSlot(const VarDecl *V) {
    auto [It, Inserted] =
        LocalSlots.emplace(V, static_cast<uint32_t>(LocalSlots.size()));
    if (Inserted)
      F->SlotVars.push_back(V); // Slot -> decl, for unbound-var traps.
    F->NumSlots =
        std::max(F->NumSlots, static_cast<uint32_t>(LocalSlots.size()));
    return static_cast<uint16_t>(It->second);
  }

  void emitTrapMsg(SourceLoc At, const std::string &Msg) {
    Instr T;
    T.K = Op::TrapMsg;
    T.Extra = internMsg(Msg);
    T.At = At;
    emit(T);
  }

  //===--------------------------------------------------------------------===
  // L-values and expressions
  //===--------------------------------------------------------------------===

  /// Statically resolved field path: total offset, or the first error in
  /// interpreter order (the base instruction still executes first, so
  /// base traps — unbound variable, null deref — win, as they must).
  struct FieldRes {
    int64_t Off = 0;
    bool Error = false;
    std::string Msg;
  };

  FieldRes resolveFields(TypePtr CurTy, const LValue *LV) {
    FieldRes R;
    for (const std::string &Field : LV->Fields) {
      if (!CurTy)
        CurTy = Type::getInt();
      TypePtr Bare = Type::withoutQuals(CurTy);
      if (!Bare->isStruct()) {
        R.Error = true;
        R.Msg = "field access on non-struct value";
        return R;
      }
      const StructDef *Def = Prog.findStruct(Bare->structName());
      if (!Def) {
        R.Error = true;
        R.Msg = "unknown struct '" + Bare->structName() + "'";
        return R;
      }
      int64_t Off = 0;
      TypePtr FieldTy;
      bool Found = false;
      for (const StructDef::Field &Fd : Def->Fields) {
        if (Fd.Name == Field) {
          FieldTy = Fd.Ty;
          Found = true;
          break;
        }
        Off += sizeOfType(Fd.Ty);
      }
      if (!Found) {
        R.Error = true;
        R.Msg = "struct '" + Def->Name + "' has no field '" + Field + "'";
        return R;
      }
      R.Off += Off;
      CurTy = FieldTy;
    }
    return R;
  }

  /// Leaves the address (a pointer value) in the returned register.
  uint16_t compileLValue(const LValue *LV) {
    ++PendingFuel; // evalLValue entry.
    if (LV->isVar()) {
      uint16_t R = allocReg();
      Instr I;
      I.K = Op::VarAddr;
      I.A = R;
      I.At = LV->Loc;
      auto Glob = GlobalIndex.find(LV->Var);
      if (Glob != GlobalIndex.end()) {
        I.Mode = AddrGlobal;
        I.Extra = Glob->second;
      } else {
        // Never-bound slots keep the 0 sentinel and trap at run time,
        // exactly when the interpreter's frame lookup misses.
        I.Mode = AddrLocal;
        I.Extra = localSlot(LV->Var);
      }
      FieldRes FR = resolveFields(LV->Var->DeclaredTy, LV);
      I.Off = static_cast<int32_t>(FR.Off);
      emit(I);
      if (FR.Error)
        emitTrapMsg(LV->Loc, FR.Msg);
      return R;
    }
    uint16_t R = compileExpr(LV->Addr);
    TypePtr AddrTy = LV->Addr->Ty;
    TypePtr CurTy =
        (AddrTy && AddrTy->isPointer()) ? AddrTy->pointee() : Type::getInt();
    FieldRes FR = resolveFields(CurTy, LV);
    Instr I;
    I.K = Op::DerefBase;
    I.A = R;
    I.B = R;
    I.Off = static_cast<int32_t>(FR.Off);
    I.At = LV->Loc;
    emit(I);
    if (FR.Error)
      emitTrapMsg(LV->Loc, FR.Msg);
    return R;
  }

  uint16_t compileCall(const CallExpr *Call) {
    uint16_t Dst = allocReg();
    uint16_t ArgBase = static_cast<uint16_t>(RegTop);
    for (const Expr *Arg : Call->Args)
      compileExpr(Arg);
    uint16_t Argc = static_cast<uint16_t>(Call->Args.size());
    // Callee dispatch is fully static, mirroring evalCall's cascade.
    if (Call->IsAlloc || Call->CalleeName == "malloc") {
      Instr I;
      I.K = Op::CallAlloc;
      I.A = Dst;
      I.B = ArgBase;
      I.C = Argc;
      emit(I);
    } else if (Call->CalleeName == "free" && !Call->Callee) {
      Instr I;
      I.K = Op::CallFree;
      I.A = Dst;
      I.B = ArgBase;
      I.C = Argc;
      emit(I);
    } else {
      const FuncDecl *Fn = Call->Callee;
      if (!Fn)
        Fn = Prog.findFunction(Call->CalleeName);
      if (Fn && Fn->isDefinition()) {
        ++PendingFuel; // callFunction entry.
        Instr I;
        I.K = Op::Call;
        I.A = Dst;
        I.B = ArgBase;
        I.C = Argc;
        I.Extra = FnIndex[Fn];
        I.At = Call->Loc;
        I.Mode = 1; // Audit parameter binds (entry call passes 0).
        emit(I);
      } else if (Call->CalleeName == "printf" ||
                 (Fn && Fn->Variadic && !Fn->Params.empty() &&
                  Type::withoutQuals(Fn->Params[0]->DeclaredTy)
                      ->isPointer())) {
        Instr I;
        I.K = Op::CallPrintf;
        I.A = Dst;
        I.B = ArgBase;
        I.C = Argc;
        I.At = Call->Loc;
        emit(I);
      } else {
        emitTrapMsg(Call->Loc, "call to undefined function '" +
                                   Call->CalleeName + "'");
      }
    }
    RegTop = Dst + 1u;
    return Dst;
  }

  uint16_t compileExpr(const Expr *E) {
    ++PendingFuel; // evalExpr entry.
    switch (E->getKind()) {
    case Expr::Kind::IntConst: {
      uint16_t R = allocReg();
      Instr I;
      I.K = Op::Imm;
      I.A = R;
      I.Extra = internConst(Value::makeInt(cast<IntConstExpr>(E)->Value));
      emit(I);
      return R;
    }
    case Expr::Kind::NullConst: {
      uint16_t R = allocReg();
      Instr I;
      I.K = Op::Imm;
      I.A = R;
      I.Extra = internConst(Value::makeNull());
      emit(I);
      return R;
    }
    case Expr::Kind::StrConst: {
      uint16_t R = allocReg();
      Instr I;
      I.K = Op::StrPtr;
      I.A = R;
      I.Extra = internString(cast<StrConstExpr>(E));
      emit(I);
      return R;
    }
    case Expr::Kind::LValRead: {
      const LValue *LV = cast<LValReadExpr>(E)->LV;
      // Plain variable reads (the dominant expression form) fuse the
      // VarAddr+Load pair into one LoadVar. The fused instruction keeps
      // both instructions' fuel and runs the exact same trap cascade, so
      // it is observably identical; requiring the two source locations to
      // agree keeps trap bytes identical even for exotic AST shapes.
      if (LV->isVar() && LV->Loc == E->Loc) {
        FieldRes FR = resolveFields(LV->Var->DeclaredTy, LV);
        if (!FR.Error) {
          ++PendingFuel; // evalLValue entry.
          uint16_t R = allocReg();
          Instr I;
          I.K = Op::LoadVar;
          I.A = R;
          I.Off = static_cast<int32_t>(FR.Off);
          I.At = E->Loc;
          auto Glob = GlobalIndex.find(LV->Var);
          if (Glob != GlobalIndex.end()) {
            I.Mode = AddrGlobal;
            I.Extra = Glob->second;
          } else {
            I.Mode = AddrLocal;
            I.Extra = localSlot(LV->Var);
          }
          emit(I);
          return R;
        }
      }
      // Pointer-based reads fuse the DerefBase+Load pair the same way.
      if (!LV->isVar() && LV->Loc == E->Loc) {
        TypePtr AddrTy = LV->Addr->Ty;
        TypePtr CurTy = (AddrTy && AddrTy->isPointer()) ? AddrTy->pointee()
                                                        : Type::getInt();
        FieldRes FR = resolveFields(CurTy, LV);
        if (!FR.Error) {
          ++PendingFuel; // evalLValue entry.
          uint16_t R = compileExpr(LV->Addr);
          Instr I;
          I.K = Op::LoadInd;
          I.A = R;
          I.B = R;
          I.Off = static_cast<int32_t>(FR.Off);
          I.At = E->Loc;
          emit(I);
          return R;
        }
      }
      uint16_t R = compileLValue(LV);
      Instr I;
      I.K = Op::Load;
      I.A = R;
      I.B = R;
      I.At = E->Loc;
      emit(I);
      return R;
    }
    case Expr::Kind::AddrOf:
      return compileLValue(cast<AddrOfExpr>(E)->LV);
    case Expr::Kind::Unary: {
      const auto *Un = cast<UnaryExpr>(E);
      uint16_t R = compileExpr(Un->Sub);
      Instr I;
      I.K = Op::Unary;
      I.A = R;
      I.B = R;
      I.UOp = Un->Op;
      I.At = E->Loc;
      emit(I);
      return R;
    }
    case Expr::Kind::Binary: {
      const auto *Bin = cast<BinaryExpr>(E);
      if (Bin->Op == BinaryOp::LAnd || Bin->Op == BinaryOp::LOr) {
        bool IsAnd = Bin->Op == BinaryOp::LAnd;
        uint16_t L = compileExpr(Bin->LHS);
        Instr Br;
        Br.K = IsAnd ? Op::JmpIfFalse : Op::JmpIfTrue;
        Br.A = L;
        size_t BrAt = emit(Br);
        uint16_t R = compileExpr(Bin->RHS);
        Instr T;
        T.K = Op::Truthy;
        T.A = L;
        T.B = R;
        emit(T);
        Instr J;
        J.K = Op::Jmp;
        size_t JAt = emit(J);
        patch(BrAt, here());
        Instr Imm;
        Imm.K = Op::Imm;
        Imm.A = L;
        Imm.Extra = internConst(Value::makeInt(IsAnd ? 0 : 1));
        emit(Imm);
        patch(JAt, here());
        RegTop = L + 1u;
        return L;
      }
      // A constant right operand folds into the operation: the Imm that
      // would materialize it has no observable effect, so merging its
      // fuel into the fused instruction preserves exhaustion behavior.
      if (Bin->RHS->getKind() == Expr::Kind::IntConst ||
          Bin->RHS->getKind() == Expr::Kind::NullConst) {
        uint16_t L = compileExpr(Bin->LHS);
        ++PendingFuel; // evalExpr entry for the constant RHS.
        Instr I;
        I.K = Op::BinaryImm;
        I.A = L;
        I.B = L;
        I.Extra = internConst(
            Bin->RHS->getKind() == Expr::Kind::IntConst
                ? Value::makeInt(cast<IntConstExpr>(Bin->RHS)->Value)
                : Value::makeNull());
        I.BOp = Bin->Op;
        I.At = E->Loc;
        emit(I);
        RegTop = L + 1u;
        return L;
      }
      // A constant LEFT operand folds too when the operation commutes
      // (or is a comparison, which flips exactly under the total order).
      // The constant's fuel rides on the right operand's first
      // instruction — the same position the Imm held in the sequence.
      if (Bin->LHS->getKind() == Expr::Kind::IntConst) {
        BinaryOp Flipped = Bin->Op;
        bool CanFold = true;
        switch (Bin->Op) {
        case BinaryOp::Add:
        case BinaryOp::Mul:
        case BinaryOp::Eq:
        case BinaryOp::Ne:
          break;
        case BinaryOp::Lt: Flipped = BinaryOp::Gt; break;
        case BinaryOp::Le: Flipped = BinaryOp::Ge; break;
        case BinaryOp::Gt: Flipped = BinaryOp::Lt; break;
        case BinaryOp::Ge: Flipped = BinaryOp::Le; break;
        default:
          CanFold = false;
          break;
        }
        if (CanFold) {
          ++PendingFuel; // evalExpr entry for the constant LHS.
          uint16_t R = compileExpr(Bin->RHS);
          Instr I;
          I.K = Op::BinaryImm;
          I.A = R;
          I.B = R;
          I.Extra =
              internConst(Value::makeInt(cast<IntConstExpr>(Bin->LHS)->Value));
          I.BOp = Flipped;
          I.At = E->Loc;
          emit(I);
          RegTop = R + 1u;
          return R;
        }
      }
      uint16_t L = compileExpr(Bin->LHS);
      uint16_t R = compileExpr(Bin->RHS);
      Instr I;
      I.K = Op::Binary;
      I.A = L;
      I.B = L;
      I.C = R;
      I.BOp = Bin->Op;
      I.At = E->Loc;
      emit(I);
      RegTop = L + 1u;
      return L;
    }
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(E);
      uint16_t R = compileExpr(C->Sub);
      uint32_t G = guardIndex(C);
      if (G != NoIndex) {
        Instr I;
        I.K = Op::Guard;
        I.A = R;
        I.Extra = G;
        I.At = C->Loc;
        emit(I);
      }
      return R;
    }
    case Expr::Kind::Call:
      return compileCall(cast<CallExpr>(E));
    case Expr::Kind::SizeofType: {
      uint16_t R = allocReg();
      Instr I;
      I.K = Op::Imm;
      I.A = R;
      I.Extra = internConst(
          Value::makeInt(sizeOfType(cast<SizeofTypeExpr>(E)->Target)));
      emit(I);
      return R;
    }
    }
    uint16_t R = allocReg();
    Instr I;
    I.K = Op::Imm;
    I.A = R;
    I.Extra = internConst(Value::makeInt(0));
    emit(I);
    return R;
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  void compileBreak() {
    Instr J;
    J.K = Op::Jmp;
    if (!Scopes.empty()) {
      Scope &S = Scopes.back();
      (S.Discard ? S.AllFix : S.BreakFix).push_back(emit(J));
      return;
    }
    // No enclosing loop: Flow::Break falls out of the function body,
    // returning the frame's current return value.
    Instr R;
    R.K = Op::Ret;
    R.A = NoReg;
    emit(R);
  }

  void compileContinue() {
    if (!Scopes.empty()) {
      Scope &S = Scopes.back();
      Instr J;
      J.K = Op::Jmp;
      if (S.Discard) {
        S.AllFix.push_back(emit(J));
      } else if (S.ContTarget >= 0) {
        J.Target = static_cast<int32_t>(S.ContTarget);
        emit(J);
      } else {
        S.ContFix.push_back(emit(J));
      }
      return;
    }
    Instr R;
    R.K = Op::Ret;
    R.A = NoReg;
    emit(R);
  }

  void compileReturn(const ReturnStmt *Ret) {
    // A For's Init/Step discards every flow escape, including Return:
    // the value is recorded but execution continues with the loop.
    size_t DiscardAt = Scopes.size();
    for (size_t I = Scopes.size(); I-- > 0;)
      if (Scopes[I].Discard) {
        DiscardAt = I;
        break;
      }
    uint16_t V = NoReg;
    if (Ret->Value)
      V = compileExpr(Ret->Value);
    if (DiscardAt != Scopes.size()) {
      if (V != NoReg) {
        Instr S;
        S.K = Op::SetRet;
        S.A = V;
        emit(S);
      }
      Instr J;
      J.K = Op::Jmp;
      Scopes[DiscardAt].AllFix.push_back(emit(J));
      return;
    }
    Instr R;
    R.K = Op::Ret;
    R.A = V;
    emit(R);
  }

  void compileStmt(const Stmt *S) {
    if (!S)
      return; // Null statements spend no fuel (interp: `!S || !spendFuel()`).
    ++PendingFuel; // execStmt entry.
    uint32_t Saved = RegTop;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
        compileStmt(Sub);
      break;
    case Stmt::Kind::Decl: {
      const VarDecl *Var = cast<DeclStmt>(S)->Var;
      uint16_t Slot = localSlot(Var);
      Instr NB;
      NB.K = Op::NewBlock;
      NB.B = Slot;
      NB.Extra = internTemplate(Var->DeclaredTy);
      emit(NB);
      if (Var->Init) {
        uint16_t V = compileExpr(Var->Init);
        Instr St;
        St.K = Op::StoreSlot;
        St.A = V;
        St.B = Slot;
        St.Extra = auditIndex(Var->DeclaredTy);
        St.At = Var->Loc;
        emit(St);
      }
      break;
    }
    case Stmt::Kind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      const LValue *LHS = Assign->LHS;
      if (LHS->isVar() && LHS->Loc == Assign->Loc) {
        FieldRes FR = resolveFields(LHS->Var->DeclaredTy, LHS);
        if (!FR.Error) {
          // Fused VarAddr+Store. The address computation has no
          // observable effect (the unbound check moves to the store,
          // where it still fires first), so the value is computed first
          // and the lvalue's fuel rides on the RHS's first instruction —
          // the cumulative charge before each instruction is unchanged.
          ++PendingFuel; // evalLValue entry.
          uint16_t V = compileExpr(Assign->RHS);
          Instr St;
          St.K = Op::StoreVar;
          St.B = V;
          auto Glob = GlobalIndex.find(LHS->Var);
          if (Glob != GlobalIndex.end()) {
            St.Mode = AddrGlobal;
            St.Extra = Glob->second;
          } else {
            St.Mode = AddrLocal;
            St.Extra = localSlot(LHS->Var);
          }
          St.Off = static_cast<int32_t>(FR.Off);
          uint32_t Aud = auditIndex(LHS->Ty);
          St.Target = Aud == NoIndex ? -1 : static_cast<int32_t>(Aud);
          St.At = Assign->Loc;
          emit(St);
          break;
        }
      }
      uint16_t A = compileLValue(Assign->LHS);
      uint16_t V = compileExpr(Assign->RHS);
      Instr St;
      St.K = Op::Store;
      St.A = A;
      St.B = V;
      St.Extra = auditIndex(Assign->LHS->Ty);
      St.At = Assign->Loc;
      emit(St);
      break;
    }
    case Stmt::Kind::CallStmt:
      // evalCall directly: no expression-entry fuel for the call node.
      compileCall(cast<CallStmt>(S)->Call);
      break;
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      uint16_t Cond = compileExpr(If->Cond);
      size_t BrAt = emitFalseBranch(Cond);
      RegTop = Saved;
      compileStmt(If->Then);
      if (If->Else) {
        Instr J;
        J.K = Op::Jmp;
        size_t JAt = emit(J); // Absorbs the then-branch's trailing fuel.
        patch(BrAt, here());
        compileStmt(If->Else);
        flushPending();
        patch(JAt, here());
      } else {
        flushPending();
        patch(BrAt, here());
      }
      break;
    }
    case Stmt::Kind::While: {
      const auto *While = cast<WhileStmt>(S);
      flushPending(); // Loop-entry fuel must not recharge per iteration.
      size_t Head = here();
      uint16_t Cond = compileExpr(While->Cond);
      size_t BrAt = emitFalseBranch(Cond);
      RegTop = Saved;
      Scopes.push_back(Scope{false, static_cast<int64_t>(Head), {}, {}, {}});
      compileStmt(While->Body);
      Instr J;
      J.K = Op::Jmp;
      J.Target = static_cast<int32_t>(Head);
      emit(J); // Absorbs the body's trailing fuel.
      Scope Sc = std::move(Scopes.back());
      Scopes.pop_back();
      size_t End = here();
      patch(BrAt, End);
      for (size_t Fix : Sc.BreakFix)
        patch(Fix, End);
      break;
    }
    case Stmt::Kind::For: {
      const auto *For = cast<ForStmt>(S);
      std::vector<size_t> InitFix;
      if (For->Init) {
        Scopes.push_back(Scope{true, -1, {}, {}, {}});
        compileStmt(For->Init);
        InitFix = std::move(Scopes.back().AllFix);
        Scopes.pop_back();
      }
      flushPending();
      size_t Head = here();
      for (size_t Fix : InitFix)
        patch(Fix, Head);
      size_t BrAt = SIZE_MAX;
      if (For->Cond) {
        uint16_t Cond = compileExpr(For->Cond);
        BrAt = emitFalseBranch(Cond);
        RegTop = Saved;
      }
      Scopes.push_back(Scope{false, -1, {}, {}, {}});
      compileStmt(For->Body);
      flushPending(); // Body fall-through fuel; continue paths skip it.
      size_t Cont = here();
      Scope Sc = std::move(Scopes.back());
      Scopes.pop_back();
      for (size_t Fix : Sc.ContFix)
        patch(Fix, Cont);
      if (For->Step) {
        Scopes.push_back(Scope{true, -1, {}, {}, {}});
        compileStmt(For->Step);
        std::vector<size_t> StepFix = std::move(Scopes.back().AllFix);
        Scopes.pop_back();
        for (size_t Fix : StepFix)
          patch(Fix, Head); // Discarded escapes resume the loop.
      }
      Instr J;
      J.K = Op::Jmp;
      J.Target = static_cast<int32_t>(Head);
      emit(J); // Absorbs the step's trailing fuel.
      size_t End = here();
      if (BrAt != SIZE_MAX)
        patch(BrAt, End);
      for (size_t Fix : Sc.BreakFix)
        patch(Fix, End);
      break;
    }
    case Stmt::Kind::Return:
      compileReturn(cast<ReturnStmt>(S));
      break;
    case Stmt::Kind::Break:
      compileBreak();
      break;
    case Stmt::Kind::Continue:
      compileContinue();
      break;
    }
    RegTop = Saved;
  }

  //===--------------------------------------------------------------------===
  // Functions
  //===--------------------------------------------------------------------===

  void resetFunctionState(uint32_t Idx) {
    F = &M.Fns[Idx];
    LocalSlots.clear();
    Scopes.clear();
    PendingFuel = 0;
    RegTop = 0;
  }

  void compileFunction(uint32_t Idx) {
    resetFunctionState(Idx);
    const FuncDecl *Fn = F->Fn;
    for (const VarDecl *P : Fn->Params) {
      F->ParamSlots.push_back(localSlot(P));
      F->ParamTemplates.push_back(internTemplate(P->DeclaredTy));
      F->ParamAudits.push_back(auditIndex(P->DeclaredTy));
    }
    compileStmt(Fn->Body);
    Instr R; // Fall-off-the-end return; absorbs any trailing fuel.
    R.K = Op::Ret;
    R.A = NoReg;
    emit(R);
  }

  /// Fns[0]: run global initializers in declaration order (global blocks
  /// themselves are allocated host-side before execution, preserving the
  /// interpreter's block-id assignment), then call the entry point with
  /// synthesized default arguments — unaudited, exactly like the
  /// interpreter — and return its result.
  void compileStartup(const FuncDecl *Entry) {
    resetFunctionState(0);
    for (size_t GI = 0; GI < M.Globals.size(); ++GI) {
      const VarDecl *G = M.Globals[GI];
      if (!G->Init)
        continue;
      uint16_t A = allocReg();
      Instr VA;
      VA.K = Op::VarAddr;
      VA.Mode = AddrGlobal;
      VA.A = A;
      VA.Extra = static_cast<uint32_t>(GI);
      VA.At = G->Loc;
      emit(VA);
      uint16_t V = compileExpr(G->Init);
      Instr St;
      St.K = Op::Store;
      St.A = A;
      St.B = V;
      St.Extra = auditIndex(G->DeclaredTy);
      St.At = G->Loc;
      emit(St);
      RegTop = 0;
    }
    uint16_t Dst = allocReg();
    for (const VarDecl *P : Entry->Params) {
      uint16_t R = allocReg();
      Instr I;
      I.K = Op::Imm;
      I.A = R;
      I.Extra = internConst(initialValueFor(P->DeclaredTy));
      emit(I);
    }
    ++PendingFuel; // callFunction entry.
    Instr C;
    C.K = Op::Call;
    C.A = Dst;
    C.B = static_cast<uint16_t>(Dst + 1);
    C.C = static_cast<uint16_t>(Entry->Params.size());
    C.Extra = FnIndex[Entry];
    C.At = Entry->Loc;
    C.Mode = 0; // Synthesized entry arguments are exempt from the audit.
    emit(C);
    Instr R;
    R.K = Op::Ret;
    R.A = Dst;
    emit(R);
  }
};

} // namespace

namespace stq::vm {

void compileModule(const cminus::Program &Prog,
                   const qual::QualifierSet &Quals,
                   const std::vector<checker::RuntimeCastCheck> &Checks,
                   const std::string &EntryPoint, ModuleCode &M) {
  Compiler(Prog, Quals, Checks, M).compile(EntryPoint);
}

} // namespace stq::vm
