//===- Elide.cpp - Prover-driven guard elision ----------------------------===//
//
// Rewrites statically discharged guard checks to no-ops, the qualifier
// analogue of erasing range checks a refinement already proves redundant.
// Two discharge routes, both conservative:
//
//  1. Concrete: the cast operand is an integer or NULL literal, so the
//     invariant can be evaluated outright. Holds -> elide; fails -> keep
//     (the guard must still fire at run time).
//
//  2. Entailment: the operand's static type carries qualifiers whose
//     invariants — by the paper's Theorem 5.1 — hold for its run-time
//     value. The pass asks the prover whether those hypotheses entail the
//     guarded qualifier's invariant over one shared value term, through
//     the shared ProverCache so identical queries are answered once.
//
// The entailment route is gated twice. It runs only when the checker
// accepted the program with zero qualifier errors (static types mean
// nothing on a program the checker rejected), and each hypothesis
// qualifier must itself pass the soundness checker — the fuzzer
// deliberately pushes unsound qualifiers through here, and assuming an
// unsound invariant would change observable behavior. Elision must never
// do that: the differential oracle compares elision on/off byte for byte.
//
//===----------------------------------------------------------------------===//

#include "cminus/Type.h"
#include "soundness/Axioms.h"
#include "soundness/Soundness.h"
#include "support/Casting.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <map>

using namespace stq;
using namespace stq::vm;
using namespace stq::prover;
using qual::InvPred;
using qual::InvTerm;

namespace {

/// Invariants over terms the run-time evaluator models exactly: value(E),
/// integer and NULL literals. Location vocabulary (deref, quantifiers)
/// belongs to reference qualifiers, whose casts are never instrumented;
/// bail out rather than guess.
bool termSupported(const InvTerm &T) {
  switch (T.K) {
  case InvTerm::Kind::ValueOf:
  case InvTerm::Kind::Int:
  case InvTerm::Kind::Null:
    return true;
  default:
    return false;
  }
}

bool invSupported(const InvPred &Inv) {
  switch (Inv.K) {
  case InvPred::Kind::Compare:
    return termSupported(Inv.A) && termSupported(Inv.B);
  case InvPred::Kind::IsHeapLoc:
    return termSupported(Inv.A);
  case InvPred::Kind::And:
  case InvPred::Kind::Or:
  case InvPred::Kind::Implies:
    return invSupported(*Inv.LHS) && invSupported(*Inv.RHS);
  case InvPred::Kind::Forall:
    return false;
  }
  return false;
}

/// Translates an invariant over a single value term, mirroring the
/// soundness checker's encoding so prover axioms and cache entries line
/// up. Callers must have verified invSupported().
class InvTranslator {
public:
  InvTranslator(TermArena &A, TermId ValueTerm)
      : A(A), V(A), ValueTerm(ValueTerm) {}

  FormulaPtr translate(const InvPred &Inv) {
    switch (Inv.K) {
    case InvPred::Kind::Compare: {
      TermId L = term(Inv.A), R = term(Inv.B);
      switch (Inv.CmpOp) {
      case cminus::BinaryOp::Eq:
        return fEq(L, R);
      case cminus::BinaryOp::Ne:
        return fNe(L, R);
      case cminus::BinaryOp::Lt:
        return fLt(L, R);
      case cminus::BinaryOp::Le:
        return fLe(L, R);
      case cminus::BinaryOp::Gt:
        return fGt(L, R);
      case cminus::BinaryOp::Ge:
        return fGe(L, R);
      default:
        return fTrue();
      }
    }
    case InvPred::Kind::IsHeapLoc:
      return V.isHeapLoc(term(Inv.A));
    case InvPred::Kind::And:
      return fAnd({translate(*Inv.LHS), translate(*Inv.RHS)});
    case InvPred::Kind::Or:
      return fOr({translate(*Inv.LHS), translate(*Inv.RHS)});
    case InvPred::Kind::Implies:
      return fImplies(translate(*Inv.LHS), translate(*Inv.RHS));
    case InvPred::Kind::Forall:
      return fTrue(); // Unreachable behind invSupported().
    }
    return fTrue();
  }

private:
  TermId term(const InvTerm &T) {
    switch (T.K) {
    case InvTerm::Kind::ValueOf:
      return ValueTerm;
    case InvTerm::Kind::Int:
      return A.intConst(T.Int);
    case InvTerm::Kind::Null:
      return A.nullTerm();
    default:
      return ValueTerm; // Unreachable behind termSupported().
    }
  }

  TermArena &A;
  soundness::Vocab V;
  TermId ValueTerm;
};

class Elider {
public:
  Elider(CompiledProgram &CP, const qual::QualifierSet &Quals,
         const VmOptions &Options)
      : CP(CP), Quals(Quals), Options(Options) {}

  void run() {
    ElisionStats &S = CP.Elision;
    for (GuardSite &Site : CP.M.Guards) {
      ++S.GuardSites;
      const cminus::Expr *Sub = Site.Cast ? Site.Cast->Sub : nullptr;
      for (GuardQual &Q : Site.Quals) {
        ++S.GuardQuals;
        if (!Sub || !invSupported(*Q.Inv))
          continue;
        if (elideConcrete(Sub, Q) || elideByEntailment(Sub, Q)) {
          Q.Elided = true;
          ++S.Elided;
        }
      }
    }
    rewriteDischargedGuards();
  }

private:
  CompiledProgram &CP;
  const qual::QualifierSet &Quals;
  const VmOptions &Options;
  /// Soundness verdict per hypothesis qualifier (obligations memoize in
  /// the shared ProverCache; this memoizes the verdict per pass).
  std::map<std::string, bool> SoundVerdict;
  /// Entailment verdict per (sorted hypothesis set, goal) within a pass;
  /// across passes the ProverCache answers by canonical task key.
  std::map<std::string, bool> QueryMemo;

  /// Literal operands evaluate outright with the engines' own semantics.
  bool elideConcrete(const cminus::Expr *Sub, const GuardQual &Q) {
    Value V;
    if (Sub->getKind() == cminus::Expr::Kind::IntConst)
      V = Value::makeInt(cast<cminus::IntConstExpr>(Sub)->Value);
    else if (Sub->getKind() == cminus::Expr::Kind::NullConst)
      V = Value::makeNull();
    else
      return false;
    ++CP.Elision.ConcreteElided;
    bool Holds = interp::invariantHolds(*Q.Inv, V,
                                        [](uint32_t) { return false; });
    if (!Holds)
      --CP.Elision.ConcreteElided;
    return Holds;
  }

  bool qualifierSound(const std::string &Name) {
    auto [It, Inserted] = SoundVerdict.emplace(Name, false);
    if (Inserted) {
      soundness::SoundnessChecker Checker(Quals, Options.Prover,
                                          /*Diags=*/nullptr, Options.Cache,
                                          Options.Metrics);
      It->second = Checker.checkQualifier(Name).sound();
    }
    return It->second;
  }

  /// Sound, invariant-bearing value qualifiers on the operand's static
  /// type: the hypotheses Theorem 5.1 lets us assume about its value.
  std::vector<const qual::QualifierDef *>
  hypothesisQuals(const cminus::Expr *Sub) {
    std::vector<const qual::QualifierDef *> Hyps;
    if (!Options.ProgramCheckedClean || !Sub->Ty)
      return Hyps;
    for (const std::string &Name : Sub->Ty->quals()) {
      const qual::QualifierDef *Q = Quals.find(Name);
      if (!Q || Q->IsRef || !Q->Invariant || !invSupported(*Q->Invariant))
        continue;
      if (qualifierSound(Name))
        Hyps.push_back(Q);
    }
    return Hyps;
  }

  bool elideByEntailment(const cminus::Expr *Sub, const GuardQual &Q) {
    std::vector<const qual::QualifierDef *> Hyps = hypothesisQuals(Sub);
    if (Hyps.empty())
      return false;
    // Trivial entailment: the operand's type already carries the guarded
    // qualifier (and it is sound).
    for (const qual::QualifierDef *H : Hyps)
      if (H->Name == Q.Name)
        return true;
    std::string Memo;
    for (const qual::QualifierDef *H : Hyps)
      Memo += H->Name + ",";
    Memo += "=>" + Q.Name;
    auto Found = QueryMemo.find(Memo);
    if (Found != QueryMemo.end())
      return Found->second;
    bool Proved = proveEntailment(Hyps, Q);
    QueryMemo[Memo] = Proved;
    return Proved;
  }

  bool proveEntailment(const std::vector<const qual::QualifierDef *> &Hyps,
                       const GuardQual &Q) {
    ++CP.Elision.ProverQueries;
    if (Options.Metrics)
      Options.Metrics->add("vm.elide.queries", 1);
    Prover P(Options.Prover);
    soundness::addSemanticAxioms(P);
    TermArena &A = P.arena();
    InvTranslator T(A, A.app("$guardval"));
    for (const qual::QualifierDef *H : Hyps)
      P.addHypothesis(T.translate(*H->Invariant));
    FormulaPtr Goal = T.translate(*Q.Inv);
    if (Options.Cache) {
      std::string Key = canonicalTaskKey(A, P.inputs(), Goal);
      if (auto Hit = Options.Cache->lookup(Key)) {
        ++CP.Elision.CacheHits;
        if (Options.Metrics)
          Options.Metrics->add("vm.elide.cache_hits", 1);
        return Hit->Result == ProofResult::Proved;
      }
      ProofResult R = P.prove(Goal);
      Options.Cache->insert(Key, R, P.stats());
      return R == ProofResult::Proved;
    }
    return P.prove(Goal) == ProofResult::Proved;
  }

  /// A guard whose every qualifier is discharged costs nothing at all.
  void rewriteDischargedGuards() {
    for (FnCode &Fn : CP.M.Fns)
      for (Instr &I : Fn.Code) {
        if (I.K != Op::Guard)
          continue;
        const GuardSite &Site = CP.M.Guards[I.Extra];
        bool All = true;
        for (const GuardQual &Q : Site.Quals)
          All = All && Q.Elided;
        if (All)
          I.K = Op::Nop; // Fuel is preserved; the check work vanishes.
      }
  }
};

} // namespace

void stq::vm::elideGuards(CompiledProgram &CP,
                          const qual::QualifierSet &Quals,
                          const VmOptions &Options) {
  trace::Span Span("vm.elide");
  Elider(CP, Quals, Options).run();
  if (Options.Metrics) {
    const ElisionStats &S = CP.Elision;
    Options.Metrics->add("vm.guards_total", S.GuardQuals);
    Options.Metrics->add("vm.guards_elided", S.Elided);
    Options.Metrics->add("vm.guards_residual", S.residual());
  }
}

/// Post-elision peephole: a Guard whose site carries exactly one
/// qualifier, still residual, with an integer-compare fast form whose
/// immediate fits the instruction, specializes to GuardFast — the
/// dispatch loop then never touches the side table on the passing path.
/// Sites with elided qualifiers keep the generic form so the elided-hit
/// accounting stays exact.
static void specializeFastGuards(ModuleCode &M) {
  for (FnCode &Fn : M.Fns)
    for (Instr &I : Fn.Code) {
      if (I.K != Op::Guard)
        continue;
      const GuardSite &Site = M.Guards[I.Extra];
      if (Site.Quals.size() != 1)
        continue;
      const GuardQual &Q = Site.Quals.front();
      if (Q.Elided || Q.Fast != FastInv::CmpInt ||
          Q.FastImm < INT32_MIN || Q.FastImm > INT32_MAX)
        continue;
      I.K = Op::GuardFast;
      I.BOp = Q.FastOp;
      I.Off = static_cast<int32_t>(Q.FastImm);
    }
}

std::unique_ptr<CompiledProgram>
stq::vm::compileProgram(const cminus::Program &Prog,
                        const qual::QualifierSet &Quals,
                        const std::vector<checker::RuntimeCastCheck> &Checks,
                        const VmOptions &Options) {
  auto CP = std::make_unique<CompiledProgram>();
  {
    trace::Span Span("vm.compile");
    compileModule(Prog, Quals, Checks, Options.Interp.EntryPoint, CP->M);
  }
  if (Options.Metrics) {
    Options.Metrics->add("vm.compilations", 1);
    Options.Metrics->add("vm.functions", CP->M.Fns.size());
    Options.Metrics->add("vm.instructions", CP->M.instructionCount());
  }
  if (Options.ElideChecks)
    elideGuards(*CP, Quals, Options);
  else
    for (const GuardSite &Site : CP->M.Guards) {
      ++CP->Elision.GuardSites;
      CP->Elision.GuardQuals += Site.Quals.size();
    }
  specializeFastGuards(CP->M);
  return CP;
}

interp::RunResult
stq::vm::runProgram(const cminus::Program &Prog,
                    const qual::QualifierSet &Quals,
                    const std::vector<checker::RuntimeCastCheck> &Checks,
                    const VmOptions &Options) {
  auto CP = compileProgram(Prog, Quals, Checks, Options);
  return execute(*CP, Options.Interp, Options.Metrics);
}
