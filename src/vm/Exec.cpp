//===- Exec.cpp - The bytecode machine ------------------------------------===//
//
// A tight dispatch loop over the flat instruction streams Compiler.cpp
// produces. Every observable action — block allocation order, traps (and
// their exact diagnostic bytes), qualifier checks, audits, printf output,
// fuel accounting — replicates src/interp bit for bit; the interpreter
// stays on as the differential oracle for this file.
//
// Three things keep the loop fast without touching observable behavior:
//
//  * Block cells live in one contiguous arena (Cells) instead of one
//    vector per block, so an allocation is an append, not a malloc.
//    Block ids and their assignment order are unchanged.
//  * The dispatch loop caches the current frame's code pointer, PC,
//    register window and slot base in locals, refreshing them only when
//    a Call or Ret actually changes frames.
//  * Fuel is charged arithmetically: an instruction's spend points are
//    added in one step, clamping to Fuel+1 on exhaustion — the same
//    final step count and halt point as charging one unit at a time.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"
#include "vm/VM.h"

#include <cassert>

using namespace stq;
using namespace stq::vm;
using namespace stq::cminus;
using stq::interp::RunResult;
using stq::interp::RunStatus;

namespace {

/// A (start, length) window into the cell arena. Ids and allocation order
/// match the interpreter's block model exactly.
struct MemBlock {
  uint32_t Start = 0;
  uint32_t Len = 0;
  bool IsHeap = false;
  bool Alive = true;
};

struct Location {
  uint32_t Block = 0;
  int64_t Off = 0;
};

/// The int/int fast path shared by Binary and BinaryImm: the common
/// arithmetic and comparison forms that can neither trap nor involve
/// pointers. Returns false for everything else (pointer arithmetic,
/// division/remainder, mixed kinds), which takes the full-fidelity path.
inline bool fastIntBinary(BinaryOp Op, const Value &L, const Value &R,
                          Value &Out) {
  if (L.K != Value::Kind::Int || R.K != Value::Kind::Int)
    return false;
  int64_t A = L.Int, B = R.Int;
  switch (Op) {
  case BinaryOp::Add:
    Out = Value::makeInt(A + B);
    return true;
  case BinaryOp::Sub:
    Out = Value::makeInt(A - B);
    return true;
  case BinaryOp::Mul:
    Out = Value::makeInt(A * B);
    return true;
  case BinaryOp::Lt:
    Out = Value::makeInt(A < B ? 1 : 0);
    return true;
  case BinaryOp::Le:
    Out = Value::makeInt(A <= B ? 1 : 0);
    return true;
  case BinaryOp::Gt:
    Out = Value::makeInt(A > B ? 1 : 0);
    return true;
  case BinaryOp::Ge:
    Out = Value::makeInt(A >= B ? 1 : 0);
    return true;
  case BinaryOp::Eq:
    Out = Value::makeInt(A == B ? 1 : 0);
    return true;
  case BinaryOp::Ne:
    Out = Value::makeInt(A != B ? 1 : 0);
    return true;
  case BinaryOp::Div:
    if (B == 0)
      return false; // Slow path owns the division-by-zero trap.
    Out = Value::makeInt(A / B);
    return true;
  case BinaryOp::Rem:
    if (B == 0)
      return false;
    Out = Value::makeInt(A % B);
    return true;
  default:
    return false;
  }
}

class Machine {
public:
  Machine(const ModuleCode &M, const interp::InterpOptions &Options)
      : M(M), Options(Options) {
    Blocks.emplace_back(); // Block 0 is invalid.
  }

  RunResult run() {
    if (M.EntryMissing) {
      Result.Status = RunStatus::SetupError;
      Result.TrapMessage =
          "entry point '" + M.EntryName + "' not found or has no body";
      return Result;
    }
    // Pre-size the hot vectors so short runs don't spend their time in
    // allocator churn; none of this changes ids or allocation order.
    // Modest reservations: short runs (the daemons run a few hundred
    // steps) are dominated by setup, and growth amortizes for long ones.
    Cells.reserve(256);
    Blocks.reserve(64);
    Regs.reserve(128);
    Slots.reserve(128);
    Frames.reserve(16);
    GlobalBlocks.reserve(M.Globals.size());
    for (uint32_t T : M.GlobalTemplates)
      GlobalBlocks.push_back(allocFromTemplate(T, /*IsHeap=*/false));
    StringBlocks.assign(M.Strings.size(), 0);
    pushFrame(0, /*CallerDst=*/0);
    loop();
    if (!Halted) {
      Result.Status = RunStatus::Ok;
      Result.ExitValue =
          FinalRet.K == Value::Kind::Int ? FinalRet.Int : 0;
    }
    return Result;
  }

  uint64_t elidedGuardHits() const { return ElidedHits; }

private:
  struct FrameRT {
    uint32_t FnIdx = 0;
    uint32_t PC = 0;
    uint32_t RegBase = 0;
    uint32_t SlotBase = 0;
    uint32_t CallerDst = 0; ///< Absolute register receiving the result.
    Value RetVal = Value::makeInt(0);
  };

  const ModuleCode &M;
  interp::InterpOptions Options;
  std::vector<Value> Cells; ///< The cell arena all blocks live in.
  std::vector<MemBlock> Blocks;
  std::vector<uint32_t> GlobalBlocks;
  std::vector<uint32_t> StringBlocks; ///< 0 until lazily interned.
  std::vector<Value> Regs;
  std::vector<uint32_t> Slots; ///< 0 means unbound.
  std::vector<FrameRT> Frames;
  Value FinalRet = Value::makeInt(0);
  RunResult Result;
  bool Halted = false;
  uint64_t ElidedHits = 0;

  void trap(SourceLoc Loc, const std::string &Message) {
    if (Halted)
      return;
    Halted = true;
    Result.Status = RunStatus::Trap;
    Result.TrapMessage = Loc.str() + ": " + Message;
  }

  bool isHeapBlock(uint32_t Block) const {
    return Block < Blocks.size() && Blocks[Block].IsHeap;
  }

  bool holds(const qual::InvPred &Inv, const Value &V) {
    return interp::invariantHolds(
        Inv, V, [this](uint32_t Block) { return isHeapBlock(Block); });
  }

  uint32_t allocRawBlock(unsigned N, bool IsHeap) {
    MemBlock B;
    B.Start = static_cast<uint32_t>(Cells.size());
    B.Len = std::max(1u, N);
    B.IsHeap = IsHeap;
    Cells.resize(Cells.size() + B.Len, Value::makeInt(0));
    Blocks.push_back(B);
    return static_cast<uint32_t>(Blocks.size() - 1);
  }

  uint32_t allocFromTemplate(uint32_t Template, bool IsHeap) {
    const std::vector<Value> &T = M.Templates[Template];
    MemBlock B;
    B.Start = static_cast<uint32_t>(Cells.size());
    B.Len = static_cast<uint32_t>(T.size());
    B.IsHeap = IsHeap;
    Cells.insert(Cells.end(), T.begin(), T.end());
    Blocks.push_back(B);
    return static_cast<uint32_t>(Blocks.size() - 1);
  }

  Value readLoc(Location Loc, SourceLoc At) {
    if (Loc.Block == 0 || Loc.Block >= Blocks.size()) {
      trap(At, "read through invalid pointer");
      return Value::makeInt(0);
    }
    const MemBlock &B = Blocks[Loc.Block];
    if (!B.Alive) {
      trap(At, "read from freed memory");
      return Value::makeInt(0);
    }
    if (Loc.Off < 0 || Loc.Off >= B.Len) {
      trap(At, "out-of-bounds read at offset " + std::to_string(Loc.Off));
      return Value::makeInt(0);
    }
    return Cells[B.Start + Loc.Off];
  }

  void writeLoc(Location Loc, Value V, SourceLoc At) {
    if (Loc.Block == 0 || Loc.Block >= Blocks.size()) {
      trap(At, "write through invalid pointer");
      return;
    }
    const MemBlock &B = Blocks[Loc.Block];
    if (!B.Alive) {
      trap(At, "write to freed memory");
      return;
    }
    if (Loc.Off < 0 || Loc.Off >= B.Len) {
      trap(At, "out-of-bounds write at offset " + std::to_string(Loc.Off));
      return;
    }
    Cells[B.Start + Loc.Off] = V;
  }

  void audit(uint32_t Site, const Value &V, SourceLoc At) {
    if (!Options.AuditQualifiedStores || Site == NoIndex)
      return;
    for (const auto &[Name, Inv] : M.Audits[Site].Quals) {
      ++Result.AuditChecks;
      if (!holds(*Inv, V))
        Result.AuditFailures.push_back({At, Name, V.str()});
    }
  }

  std::string readString(Value Ptr, SourceLoc At) {
    std::string Out;
    if (Ptr.K != Value::Kind::Ptr) {
      trap(At, "expected a string pointer");
      return Out;
    }
    Location Loc{Ptr.Block, Ptr.Off};
    for (unsigned Guard = 0; Guard < 65536; ++Guard) {
      Value C = readLoc(Loc, At);
      if (Halted || C.K != Value::Kind::Int || C.Int == 0)
        break;
      Out += static_cast<char>(C.Int);
      ++Loc.Off;
    }
    return Out;
  }

  Value doPrintf(uint32_t ArgBase, uint32_t Argc, SourceLoc At) {
    if (Argc == 0) {
      trap(At, "printf requires a format argument");
      return Value::makeInt(0);
    }
    std::string Format = readString(Regs[ArgBase], At);
    if (Halted)
      return Value::makeInt(0);
    std::string Out;
    uint32_t NextArg = 1;
    unsigned Consumed = 0;
    bool Violated = false;
    for (size_t I = 0; I < Format.size(); ++I) {
      if (Format[I] != '%') {
        Out += Format[I];
        continue;
      }
      if (I + 1 >= Format.size())
        break;
      char Spec = Format[++I];
      if (Spec == '%') {
        Out += '%';
        continue;
      }
      ++Consumed;
      Value Arg;
      bool HadArg = NextArg < Argc;
      if (HadArg) {
        Arg = Regs[ArgBase + NextArg++];
      } else {
        // The dynamic signature of a format-string vulnerability: the
        // call reads a nonexistent argument off the stack.
        Violated = true;
        Arg = Value::makeInt(static_cast<int64_t>(0xDEADBEEF));
      }
      switch (Spec) {
      case 'd':
      case 'x':
        Out += (Arg.K == Value::Kind::Int) ? std::to_string(Arg.Int)
                                           : Arg.str();
        break;
      case 'c':
        Out += (Arg.K == Value::Kind::Int) ? std::string(1, char(Arg.Int))
                                           : "?";
        break;
      case 's':
        if (!HadArg) {
          Out += "<stack-garbage>";
        } else {
          Out += readString(Arg, At);
          if (Halted)
            return Value::makeInt(0);
        }
        break;
      default:
        Out += '%';
        Out += Spec;
        break;
      }
    }
    if (Violated)
      Result.FormatViolations.push_back({At, Format, Argc - 1, Consumed});
    Result.Output += Out;
    return Value::makeInt(static_cast<int64_t>(Out.size()));
  }

  void pushFrame(uint32_t FnIdx, uint32_t CallerDst) {
    const FnCode &Fn = M.Fns[FnIdx];
    FrameRT Fr;
    Fr.FnIdx = FnIdx;
    Fr.RegBase = static_cast<uint32_t>(Regs.size());
    Fr.SlotBase = static_cast<uint32_t>(Slots.size());
    Fr.CallerDst = CallerDst;
    Regs.resize(Regs.size() + Fn.NumRegs);
    Slots.resize(Slots.size() + Fn.NumSlots, 0);
    Frames.push_back(Fr);
  }

  Value binaryOp(BinaryOp Op, const Value &L, const Value &R, SourceLoc At) {
    switch (Op) {
    case BinaryOp::Add:
      if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Int)
        return Value::makePtr(L.Block, L.Off + R.Int);
      if (L.K == Value::Kind::Int && R.K == Value::Kind::Ptr)
        return Value::makePtr(R.Block, R.Off + L.Int);
      if (L.K == Value::Kind::Int && R.K == Value::Kind::Int)
        return Value::makeInt(L.Int + R.Int);
      trap(At, "invalid operands to '+'");
      return Value::makeInt(0);
    case BinaryOp::Sub:
      if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Int)
        return Value::makePtr(L.Block, L.Off - R.Int);
      if (L.K == Value::Kind::Ptr && R.K == Value::Kind::Ptr) {
        if (L.Block != R.Block) {
          trap(At, "subtraction of pointers to different blocks");
          return Value::makeInt(0);
        }
        return Value::makeInt(L.Off - R.Off);
      }
      if (L.K == Value::Kind::Int && R.K == Value::Kind::Int)
        return Value::makeInt(L.Int - R.Int);
      trap(At, "invalid operands to '-'");
      return Value::makeInt(0);
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem: {
      if (L.K != Value::Kind::Int || R.K != Value::Kind::Int) {
        trap(At, "arithmetic on non-integers");
        return Value::makeInt(0);
      }
      if (Op == BinaryOp::Mul)
        return Value::makeInt(L.Int * R.Int);
      if (R.Int == 0) {
        trap(At, "division by zero");
        return Value::makeInt(0);
      }
      return Value::makeInt(Op == BinaryOp::Div ? L.Int / R.Int
                                                : L.Int % R.Int);
    }
    default:
      return Value::makeInt(interp::compareValues(Op, L, R) ? 1 : 0);
    }
  }

  void loop() {
    uint64_t Steps = Result.Steps;
    const uint64_t FuelMax = Options.Fuel;
    while (!Halted && !Frames.empty()) {
      // Cache the frame in locals; every case below either `continue`s
      // (same frame) or falls out of the switch (Call/Ret changed frames,
      // re-cache). Halting paths sync Result.Steps and return.
      FrameRT &F = Frames.back();
      const FnCode &CurFn = M.Fns[F.FnIdx];
      const Instr *Code = CurFn.Code.data();
      const Value *Consts = M.Consts.data();
      uint32_t PC = F.PC;
      Value *R = Regs.data() + F.RegBase;
      const uint32_t RegBase = F.RegBase;
      const uint32_t SlotBase = F.SlotBase;
      for (;;) {
        const Instr &I = Code[PC];
        // Charge the interpreter spend points this instruction stands
        // for before executing it. Charging them in one arithmetic step
        // halts at the same point with the same final step count as
        // charging one unit at a time.
        if (I.Fuel) {
          if (Steps + I.Fuel > FuelMax) {
            Result.Steps = FuelMax + 1;
            Result.Status = RunStatus::FuelExhausted;
            Halted = true;
            return;
          }
          Steps += I.Fuel;
        }
        switch (I.K) {
        case Op::Nop:
        case Op::Tick:
          ++PC;
          continue;
        case Op::Imm:
          R[I.A] = Consts[I.Extra];
          ++PC;
          continue;
        case Op::StrPtr: {
          uint32_t &Cache = StringBlocks[I.Extra];
          if (Cache == 0) {
            const StrConstExpr *S = M.Strings[I.Extra];
            uint32_t Id = allocRawBlock(
                static_cast<unsigned>(S->Value.size() + 1),
                /*IsHeap=*/false);
            uint32_t Start = Blocks[Id].Start;
            for (size_t C = 0; C < S->Value.size(); ++C)
              Cells[Start + C] = Value::makeInt(S->Value[C]);
            Cells[Start + S->Value.size()] = Value::makeInt(0);
            Cache = Id;
          }
          R[I.A] = Value::makePtr(Cache, 0);
          ++PC;
          continue;
        }
        case Op::VarAddr: {
          uint32_t Block = 0;
          if (I.Mode == AddrGlobal) {
            Block = GlobalBlocks[I.Extra];
          } else {
            Block = Slots[SlotBase + I.Extra];
            if (Block == 0) {
              trap(I.At, "unbound variable '" +
                             CurFn.SlotVars[I.Extra]->Name + "'");
              Result.Steps = Steps;
              return;
            }
          }
          R[I.A] = Value::makePtr(Block, I.Off);
          ++PC;
          continue;
        }
        case Op::DerefBase: {
          Value Addr = R[I.B];
          if (Addr.K == Value::Kind::Null) {
            trap(I.At, "null pointer dereference");
            Result.Steps = Steps;
            return;
          }
          if (Addr.K != Value::Kind::Ptr) {
            trap(I.At, "dereference of non-pointer value " + Addr.str());
            Result.Steps = Steps;
            return;
          }
          R[I.A] = Value::makePtr(Addr.Block, Addr.Off + I.Off);
          ++PC;
          continue;
        }
        case Op::Load: {
          Value Addr = R[I.B];
          Value V = readLoc(Location{Addr.Block, Addr.Off}, I.At);
          if (Halted) {
            Result.Steps = Steps;
            return;
          }
          R[I.A] = V;
          ++PC;
          continue;
        }
        case Op::LoadVar: {
          // The fused VarAddr+Load: same trap cascade — unbound variable
          // first, then the load's own checks (the block can be dead when
          // the program freed an address-of'd local).
          uint32_t Block = 0;
          if (I.Mode == AddrGlobal) {
            Block = GlobalBlocks[I.Extra];
          } else {
            Block = Slots[SlotBase + I.Extra];
            if (Block == 0) {
              trap(I.At, "unbound variable '" +
                             CurFn.SlotVars[I.Extra]->Name + "'");
              Result.Steps = Steps;
              return;
            }
          }
          const MemBlock &B = Blocks[Block];
          if (B.Alive && I.Off >= 0 && I.Off < B.Len) {
            R[I.A] = Cells[B.Start + I.Off];
            ++PC;
            continue;
          }
          Value V = readLoc(Location{Block, I.Off}, I.At);
          if (Halted) {
            Result.Steps = Steps;
            return;
          }
          R[I.A] = V;
          ++PC;
          continue;
        }
        case Op::LoadInd: {
          // The fused DerefBase+Load: the deref's null/non-pointer traps
          // first, then the load's own checks on the combined offset.
          Value Addr = R[I.B];
          if (Addr.K != Value::Kind::Ptr) {
            if (Addr.K == Value::Kind::Null)
              trap(I.At, "null pointer dereference");
            else
              trap(I.At, "dereference of non-pointer value " + Addr.str());
            Result.Steps = Steps;
            return;
          }
          int64_t Off = Addr.Off + I.Off;
          if (Addr.Block != 0 && Addr.Block < Blocks.size()) {
            const MemBlock &B = Blocks[Addr.Block];
            if (B.Alive && Off >= 0 && Off < B.Len) {
              R[I.A] = Cells[B.Start + Off];
              ++PC;
              continue;
            }
          }
          Value V = readLoc(Location{Addr.Block, Off}, I.At);
          if (Halted) {
            Result.Steps = Steps;
            return;
          }
          R[I.A] = V;
          ++PC;
          continue;
        }
        case Op::Store: {
          Value Addr = R[I.A];
          const Value &V = R[I.B];
          if (Addr.K == Value::Kind::Ptr && Addr.Block != 0 &&
              Addr.Block < Blocks.size()) {
            const MemBlock &B = Blocks[Addr.Block];
            if (B.Alive && Addr.Off >= 0 && Addr.Off < B.Len) {
              Cells[B.Start + Addr.Off] = V;
              if (I.Extra != NoIndex)
                audit(I.Extra, V, I.At);
              ++PC;
              continue;
            }
          }
          writeLoc(Location{Addr.Block, Addr.Off}, V, I.At);
          if (Halted) {
            Result.Steps = Steps;
            return;
          }
          audit(I.Extra, V, I.At);
          ++PC;
          continue;
        }
        case Op::StoreVar: {
          // The fused VarAddr+Store: the unbound check still fires before
          // the store's own checks, with the same trap bytes.
          uint32_t Block = 0;
          if (I.Mode == AddrGlobal) {
            Block = GlobalBlocks[I.Extra];
          } else {
            Block = Slots[SlotBase + I.Extra];
            if (Block == 0) {
              trap(I.At, "unbound variable '" +
                             CurFn.SlotVars[I.Extra]->Name + "'");
              Result.Steps = Steps;
              return;
            }
          }
          const Value &V = R[I.B];
          const MemBlock &B = Blocks[Block];
          if (B.Alive && I.Off >= 0 && I.Off < B.Len) {
            Cells[B.Start + I.Off] = V;
            if (I.Target >= 0)
              audit(static_cast<uint32_t>(I.Target), V, I.At);
            ++PC;
            continue;
          }
          writeLoc(Location{Block, I.Off}, V, I.At);
          if (Halted) {
            Result.Steps = Steps;
            return;
          }
          if (I.Target >= 0)
            audit(static_cast<uint32_t>(I.Target), V, I.At);
          ++PC;
          continue;
        }
        case Op::StoreSlot: {
          // A declaration initializer: the target block is freshly
          // allocated, so the write cannot trap.
          Value V = R[I.A];
          Cells[Blocks[Slots[SlotBase + I.B]].Start] = V;
          audit(I.Extra, V, I.At);
          ++PC;
          continue;
        }
        case Op::NewBlock:
          Slots[SlotBase + I.B] = allocFromTemplate(I.Extra, false);
          ++PC;
          continue;
        case Op::Unary: {
          Value V = R[I.B];
          switch (I.UOp) {
          case UnaryOp::Neg:
            if (V.K != Value::Kind::Int) {
              trap(I.At, "negation of non-integer");
              Result.Steps = Steps;
              return;
            }
            R[I.A] = Value::makeInt(-V.Int);
            break;
          case UnaryOp::Not:
            R[I.A] = Value::makeInt(V.isTruthy() ? 0 : 1);
            break;
          case UnaryOp::BitNot:
            if (V.K != Value::Kind::Int) {
              trap(I.At, "bitwise-not of non-integer");
              Result.Steps = Steps;
              return;
            }
            R[I.A] = Value::makeInt(~V.Int);
            break;
          }
          ++PC;
          continue;
        }
        case Op::Binary: {
          Value V;
          if (!fastIntBinary(I.BOp, R[I.B], R[I.C], V)) {
            V = binaryOp(I.BOp, R[I.B], R[I.C], I.At);
            if (Halted) {
              Result.Steps = Steps;
              return;
            }
          }
          R[I.A] = V;
          ++PC;
          continue;
        }
        case Op::BinaryImm: {
          Value V;
          if (!fastIntBinary(I.BOp, R[I.B], Consts[I.Extra], V)) {
            V = binaryOp(I.BOp, R[I.B], Consts[I.Extra], I.At);
            if (Halted) {
              Result.Steps = Steps;
              return;
            }
          }
          R[I.A] = V;
          ++PC;
          continue;
        }
        case Op::BinaryJmp:
        case Op::BinaryImmJmp: {
          // The fused condition: compute the binary (trapping exactly
          // like Binary/BinaryImm), then branch on the result's
          // truthiness. The register is still written.
          const Value &RC =
              I.K == Op::BinaryImmJmp ? Consts[I.Extra] : R[I.C];
          Value V;
          if (!fastIntBinary(I.BOp, R[I.B], RC, V)) {
            V = binaryOp(I.BOp, R[I.B], RC, I.At);
            if (Halted) {
              Result.Steps = Steps;
              return;
            }
          }
          R[I.A] = V;
          PC = V.isTruthy() ? PC + 1 : static_cast<uint32_t>(I.Target);
          continue;
        }
        case Op::Truthy:
          R[I.A] = Value::makeInt(R[I.B].isTruthy() ? 1 : 0);
          ++PC;
          continue;
        case Op::Jmp:
          PC = static_cast<uint32_t>(I.Target);
          continue;
        case Op::JmpIfFalse:
          PC = R[I.A].isTruthy() ? PC + 1 : static_cast<uint32_t>(I.Target);
          continue;
        case Op::JmpIfTrue:
          PC = R[I.A].isTruthy() ? static_cast<uint32_t>(I.Target) : PC + 1;
          continue;
        case Op::GuardFast: {
          // A single-qualifier site with an integer-compare invariant.
          // Failures and non-integer operands replay the generic
          // evaluation, so the reported bytes are identical.
          const Value &V = R[I.A];
          ++Result.ChecksExecuted;
          bool Ok;
          if (V.K == Value::Kind::Int) {
            const int64_t Imm = I.Off;
            switch (I.BOp) {
            case cminus::BinaryOp::Eq: Ok = V.Int == Imm; break;
            case cminus::BinaryOp::Ne: Ok = V.Int != Imm; break;
            case cminus::BinaryOp::Lt: Ok = V.Int < Imm; break;
            case cminus::BinaryOp::Le: Ok = V.Int <= Imm; break;
            case cminus::BinaryOp::Gt: Ok = V.Int > Imm; break;
            case cminus::BinaryOp::Ge: Ok = V.Int >= Imm; break;
            default: Ok = false; break;
            }
          } else {
            const GuardSite &Site = M.Guards[I.Extra];
            Ok = holds(*Site.Quals.front().Inv, V);
          }
          if (Ok) {
            ++PC;
            continue;
          }
          const GuardSite &Site = M.Guards[I.Extra];
          Result.CheckFailures.push_back(
              {Site.Loc, Site.Quals.front().Name, V.str()});
          Halted = true;
          Result.Status = RunStatus::CheckFailure;
          Result.Steps = Steps;
          return;
        }
        case Op::Guard: {
          const GuardSite &Site = M.Guards[I.Extra];
          const Value &V = R[I.A];
          for (const GuardQual &Q : Site.Quals) {
            if (Q.Elided) {
              ++ElidedHits;
              continue;
            }
            ++Result.ChecksExecuted;
            // Fast forms replicate interp::compareValues exactly; anything
            // they do not cover falls back to the shared AST walk.
            bool Ok;
            if (Q.Fast == FastInv::CmpInt && V.K == Value::Kind::Int) {
              switch (Q.FastOp) {
              case cminus::BinaryOp::Eq: Ok = V.Int == Q.FastImm; break;
              case cminus::BinaryOp::Ne: Ok = V.Int != Q.FastImm; break;
              case cminus::BinaryOp::Lt: Ok = V.Int < Q.FastImm; break;
              case cminus::BinaryOp::Le: Ok = V.Int <= Q.FastImm; break;
              case cminus::BinaryOp::Gt: Ok = V.Int > Q.FastImm; break;
              case cminus::BinaryOp::Ge: Ok = V.Int >= Q.FastImm; break;
              default: Ok = holds(*Q.Inv, V); break;
              }
            } else if (Q.Fast == FastInv::CmpNull) {
              // Equal-to-NULL under the interpreter's total order: NULL
              // itself, or a pointer whose tuple is (0, 0).
              bool EqNull = V.K == Value::Kind::Null ||
                            (V.K == Value::Kind::Ptr && V.Block == 0 &&
                             V.Off == 0);
              Ok = Q.FastOp == cminus::BinaryOp::Eq ? EqNull : !EqNull;
            } else {
              Ok = holds(*Q.Inv, V);
            }
            if (Ok)
              continue;
            // The paper's semantics: a fatal error is signaled.
            Result.CheckFailures.push_back({Site.Loc, Q.Name, V.str()});
            Halted = true;
            Result.Status = RunStatus::CheckFailure;
            Result.Steps = Steps;
            return;
          }
          ++PC;
          continue;
        }
        case Op::SetRet:
          F.RetVal = R[I.A];
          ++PC;
          continue;
        case Op::Ret: {
          Value RV = I.A == NoReg ? F.RetVal : R[I.A];
          uint32_t FrameRegBase = F.RegBase;
          uint32_t FrameSlotBase = F.SlotBase;
          uint32_t Dst = F.CallerDst;
          Frames.pop_back();
          Regs.resize(FrameRegBase);
          Slots.resize(FrameSlotBase);
          if (Frames.empty()) {
            FinalRet = RV;
            Result.Steps = Steps;
            return;
          }
          Regs[Dst] = RV;
          break; // Frame changed: fall out to re-cache.
        }
        case Op::Call: {
          const FnCode &Callee = M.Fns[I.Extra];
          uint32_t ArgBase = RegBase + I.B;
          uint32_t Argc = I.C;
          uint32_t Dst = RegBase + I.A;
          bool AuditParams = I.Mode != 0;
          SourceLoc At = I.At;
          F.PC = PC + 1; // Resume point; F is invalidated by pushFrame.
          pushFrame(I.Extra, Dst);
          FrameRT &NF = Frames.back();
          for (size_t P = 0; P < Callee.ParamSlots.size(); ++P) {
            uint32_t Id = allocFromTemplate(Callee.ParamTemplates[P],
                                            /*IsHeap=*/false);
            if (P < Argc) {
              Cells[Blocks[Id].Start] = Regs[ArgBase + P];
              if (AuditParams)
                audit(Callee.ParamAudits[P], Regs[ArgBase + P], At);
            }
            Slots[NF.SlotBase + Callee.ParamSlots[P]] = Id;
          }
          break; // Frame changed: fall out to re-cache.
        }
        case Op::CallAlloc: {
          Value Arg0 = I.C > 0 ? R[I.B] : Value::makeInt(0);
          int64_t N =
              (I.C == 0 || Arg0.K != Value::Kind::Int) ? 1 : Arg0.Int;
          if (N < 0)
            N = 0;
          uint32_t Id =
              allocRawBlock(static_cast<unsigned>(N), /*IsHeap=*/true);
          R[I.A] = Value::makePtr(Id, 0);
          ++PC;
          continue;
        }
        case Op::CallFree: {
          if (I.C > 0) {
            Value Arg0 = R[I.B];
            if (Arg0.K == Value::Kind::Ptr && Arg0.Block < Blocks.size())
              Blocks[Arg0.Block].Alive = false;
          }
          R[I.A] = Value::makeInt(0);
          ++PC;
          continue;
        }
        case Op::CallPrintf: {
          Value V = doPrintf(RegBase + I.B, I.C, I.At);
          if (Halted) {
            Result.Steps = Steps;
            return;
          }
          R[I.A] = V;
          ++PC;
          continue;
        }
        case Op::TrapMsg:
          trap(I.At, M.Msgs[I.Extra]);
          Result.Steps = Steps;
          return;
        }
        break; // Only Call/Ret reach here.
      }
    }
    Result.Steps = Steps;
  }
};

} // namespace

RunResult stq::vm::execute(const CompiledProgram &CP,
                           const interp::InterpOptions &Options,
                           stats::Registry *Metrics) {
  trace::Span Span("vm.execute");
  Machine Mach(CP.M, Options);
  RunResult R = Mach.run();
  if (Metrics) {
    Metrics->add("vm.executions", 1);
    Metrics->add("vm.elided_check_hits", Mach.elidedGuardHits());
  }
  return R;
}
