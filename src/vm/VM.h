//===- VM.h - Bytecode back end for lowered C-minus -------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-bytecode execution engine. It plays the same role as
/// src/interp — gcc + hardware for the paper's instrumented programs —
/// but compiles each function once to a flat instruction stream and then
/// runs a tight dispatch loop, which makes the run phase several times
/// faster. The interpreter remains the differential oracle: for any
/// program, `vm::runProgram` and `interp::runProgram` must produce
/// byte-identical RunResults (modulo ChecksExecuted when elision is on).
///
/// On top of compilation sits prover-driven check elision: per guard
/// site, the pass asks the existing prover (through the shared
/// ProverCache) whether the target qualifier's invariant is entailed by
/// the qualifiers already on the operand's static type, and marks
/// discharged guards as elided. This is the qualifier-world analogue of
/// the paper's observation that residual run-time checks are cheap
/// (§6): most of them can be erased outright.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_VM_VM_H
#define STQ_VM_VM_H

#include "checker/Checker.h"
#include "interp/Interp.h"
#include "prover/Prover.h"
#include "prover/ProverCache.h"
#include "support/Stats.h"
#include "vm/Bytecode.h"

#include <memory>

namespace stq::vm {

struct VmOptions {
  interp::InterpOptions Interp;

  /// Run the prover-driven guard-elision pass after compilation.
  bool ElideChecks = true;

  /// Elision hypotheses ("the operand's static qualifiers hold for its
  /// run-time value") are only valid on programs the checker accepted
  /// with zero qualifier errors — that is exactly Theorem 5.1. The
  /// caller asserts that here; when false the elision pass still elides
  /// guards on constant operands whose invariants hold concretely, but
  /// never consults static types. Additionally, each hypothesis
  /// qualifier must itself pass the soundness checker (the fuzzer
  /// deliberately feeds unsound qualifiers through this path).
  bool ProgramCheckedClean = false;

  /// Prover configuration + shared memoization cache for elision
  /// queries (and the soundness verdicts gating them).
  prover::ProverOptions Prover;
  prover::ProverCache *Cache = nullptr;
  stats::Registry *Metrics = nullptr;
};

/// What the elision pass did (also exported as vm.* counters).
struct ElisionStats {
  uint64_t GuardSites = 0;     ///< Instrumented cast sites compiled.
  uint64_t GuardQuals = 0;     ///< Individual qualifier checks compiled.
  uint64_t Elided = 0;         ///< Qualifier checks discharged statically.
  uint64_t ConcreteElided = 0; ///< ... of which on constant operands.
  uint64_t ProverQueries = 0;  ///< Entailment goals sent to the prover.
  uint64_t CacheHits = 0;      ///< ... answered from the ProverCache.

  uint64_t residual() const { return GuardQuals - Elided; }
};

/// A compiled program. Holds pointers into the cminus::Program and
/// qual::QualifierSet it was compiled from; both must outlive it.
struct CompiledProgram {
  ModuleCode M;
  ElisionStats Elision;
};

/// Compiles (and, per \p Options, elides guards of) \p Prog. Never fails:
/// setup problems (missing entry point) are recorded in the module and
/// surface as SetupError at execution, matching the interpreter.
std::unique_ptr<CompiledProgram>
compileProgram(const cminus::Program &Prog, const qual::QualifierSet &Quals,
               const std::vector<checker::RuntimeCastCheck> &Checks,
               const VmOptions &Options = {});

/// Executes a compiled program. Repeatable: each call starts from a
/// fresh machine state.
interp::RunResult execute(const CompiledProgram &CP,
                          const interp::InterpOptions &Options,
                          stats::Registry *Metrics = nullptr);

/// Convenience: compile + elide + execute, the drop-in replacement for
/// interp::runProgram.
interp::RunResult runProgram(const cminus::Program &Prog,
                             const qual::QualifierSet &Quals,
                             const std::vector<checker::RuntimeCastCheck> &Checks,
                             const VmOptions &Options = {});

// Internal pipeline stages, exposed for tests and benchmarks.

/// Bytecode generation (Compiler.cpp).
void compileModule(const cminus::Program &Prog,
                   const qual::QualifierSet &Quals,
                   const std::vector<checker::RuntimeCastCheck> &Checks,
                   const std::string &EntryPoint, ModuleCode &M);

/// Prover-driven guard elision (Elide.cpp); fills \p CP.Elision and marks
/// discharged GuardQuals, rewriting fully-discharged Guards to Nop.
void elideGuards(CompiledProgram &CP, const qual::QualifierSet &Quals,
                 const VmOptions &Options);

} // namespace stq::vm

#endif // STQ_VM_VM_H
