//===- Bytecode.h - Register bytecode for lowered C-minus -------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form the VM executes: each function becomes a flat stream
/// of instructions over virtual registers. Memory stays block-based and
/// identical to the interpreter's (block, offset) model, so traps, audits,
/// fired checks and output are bit-for-bit comparable across engines.
///
/// Fuel is made engine-independent by construction: every instruction
/// carries the number of interpreter spend points (expression/lvalue/
/// statement/call entries) it stands for, charged one unit at a time
/// before the instruction executes. The compiler accumulates pending fuel
/// across emission and flushes it with explicit `Tick` instructions at
/// control-flow join points, so `FuelExhausted` fires after exactly the
/// same step count on both engines.
///
/// Instrumented qualifier casts lower to `Guard` instructions referencing
/// a GuardSite; the elision pass (Elide.cpp) may mark individual qualifiers
/// of a site as statically discharged, or rewrite the whole instruction to
/// `Nop` when every qualifier is discharged.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_VM_BYTECODE_H
#define STQ_VM_BYTECODE_H

#include "cminus/AST.h"
#include "interp/Interp.h"
#include "qual/QualAST.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stq::vm {

using interp::Value;

enum class Op : uint8_t {
  Nop,       ///< Nothing (still charges its Fuel). Elided guards end here.
  Tick,      ///< Fuel-only instruction flushed at control-flow joins.
  Imm,       ///< R[A] = Consts[Extra].
  StrPtr,    ///< R[A] = pointer to interned string Strings[Extra] (lazy).
  VarAddr,   ///< R[A] = address of a variable (+ static field offset Off).
  DerefBase, ///< R[A] = R[B] interpreted as a base pointer, + Off. Traps.
  Load,      ///< R[A] = memory at R[B] (an address value). Traps.
  LoadVar,   ///< R[A] = a variable's cell at static offset Off (the fused
             ///< VarAddr+Load form of a plain variable read; Mode/Extra
             ///< as VarAddr). Traps exactly like the unfused pair.
  LoadInd,   ///< R[A] = memory at (R[B] + Off) — the fused DerefBase+Load
             ///< form of a pointer-based read. Traps exactly like the pair.
  BinaryImm, ///< R[A] = R[B] BOp Consts[Extra] (a constant right operand
             ///< folded into the operation). Traps per interpreter rules.
  Store,     ///< memory at R[A] = R[B]; optional audit Audits[Extra]. Traps.
  StoreVar,  ///< a variable's cell at static offset Off = R[B] — the fused
             ///< VarAddr+Store form of a plain-variable assignment
             ///< (Mode/Extra as VarAddr; audit site in Target, -1 = none).
             ///< The address has no observable effect, so the value is
             ///< computed first; traps exactly like the unfused pair.
  StoreSlot, ///< cell 0 of Slots[B]'s block = R[A]; audit Audits[Extra].
  NewBlock,  ///< Slots[B] = fresh block from Templates[Extra] (a decl).
  Unary,     ///< R[A] = UOp R[B]. Traps on non-integer negation/bitnot.
  Binary,    ///< R[A] = R[B] BOp R[C]. Traps per interpreter rules.
  Truthy,    ///< R[A] = R[B] is truthy ? 1 : 0 (short-circuit results).
  Jmp,       ///< PC = Target.
  JmpIfFalse,///< if !R[A].isTruthy() PC = Target.
  JmpIfTrue, ///< if R[A].isTruthy() PC = Target.
  BinaryJmp, ///< R[A] = R[B] BOp R[C]; then if !R[A].isTruthy()
             ///< PC = Target — the fused compare-and-branch form of a
             ///< condition (if/while/for). Traps exactly like Binary.
  BinaryImmJmp, ///< As BinaryJmp with a constant right operand
             ///< (Consts[Extra]), the fused BinaryImm+JmpIfFalse.
  Guard,     ///< Run residual qualifier checks Guards[Extra] against R[A].
  GuardFast, ///< Specialized Guard: the site has exactly one qualifier,
             ///< residual, with a CmpInt fast form whose immediate fits
             ///< Off — R[A].Int BOp Off checked inline; non-integer
             ///< operands and failures replay the generic site walk.
  SetRet,    ///< Frame return value = R[A] (a discarded `return`).
  Ret,       ///< Return R[A] (or the frame return value when A == NoReg).
  Call,      ///< R[A] = call Fns[Extra](R[B..B+C-1]). Mode=1 audits params.
  CallAlloc, ///< R[A] = malloc(R[B..]) — fresh heap block.
  CallFree,  ///< R[A] = 0; marks R[B]'s block dead when it is a pointer.
  CallPrintf,///< R[A] = printf(R[B..B+C-1]) — appends to RunResult::Output.
  TrapMsg,   ///< Halt with Msgs[Extra] at At (statically known trap).
};

/// VarAddr addressing modes.
enum AddrMode : uint8_t {
  AddrLocal = 0,  ///< Extra = local slot index; slot 0-block means unbound.
  AddrGlobal = 1, ///< Extra = global index.
  AddrUnbound = 2,///< Always traps "unbound variable" (no binding exists).
};

constexpr uint16_t NoReg = 0xFFFF;
constexpr uint32_t NoIndex = 0xFFFFFFFFu;

/// Kept deliberately small (36 bytes): large compiled programs must fit in
/// cache for the dispatch loop to pay off. Constants live in the module's
/// constant pool (Imm/BinaryImm reference it via Extra) and the variable
/// decls needed for unbound-variable traps live in FnCode::SlotVars /
/// ModuleCode::Globals.
struct Instr {
  Op K = Op::Nop;
  uint8_t Mode = 0;       ///< AddrMode (VarAddr) / audit-params flag (Call).
  cminus::UnaryOp UOp = cminus::UnaryOp::Neg;
  cminus::BinaryOp BOp = cminus::BinaryOp::Add;
  uint16_t A = NoReg;     ///< Destination / first operand register.
  uint16_t B = NoReg;     ///< Second operand register or slot index.
  uint16_t C = NoReg;     ///< Third operand register or argument count.
  /// Interpreter spend points charged before this instruction executes.
  uint32_t Fuel = 0;
  uint32_t Extra = NoIndex; ///< Side-table index (fn/guard/audit/const/...).
  int32_t Target = -1;    ///< Jump target (instruction index).
  int32_t Off = 0;        ///< Statically resolved field offset.
  SourceLoc At;           ///< Source location for traps/checks/audits.
};

/// Compiled fast form of a simple invariant: `value(E) cmp <literal>`.
/// Residual guards with a fast form are checked by a couple of native
/// compares in the dispatch loop instead of walking the predicate AST;
/// the semantics replicate interp::compareValues exactly, so results
/// stay bit-for-bit identical to the interpreter.
enum class FastInv : uint8_t {
  None,    ///< No fast form; fall back to interp::invariantHolds.
  CmpInt,  ///< value(E) FastOp FastImm (integer literal comparison).
  CmpNull, ///< value(E) ==/!= NULL.
};

/// One qualifier of an instrumented cast. Elided=true means the elision
/// pass proved the invariant from the static context; the VM then skips
/// the dynamic evaluation (and does not count it as an executed check).
struct GuardQual {
  std::string Name;
  const qual::InvPred *Inv = nullptr;
  bool Elided = false;
  FastInv Fast = FastInv::None;
  cminus::BinaryOp FastOp = cminus::BinaryOp::Eq;
  int64_t FastImm = 0;
};

/// One instrumented cast site (a `Guard` instruction's payload).
struct GuardSite {
  const cminus::CastExpr *Cast = nullptr;
  SourceLoc Loc;
  std::vector<GuardQual> Quals;
};

/// Invariants audited on a store to a qualified location (audit mode).
struct AuditSite {
  std::vector<std::pair<std::string, const qual::InvPred *>> Quals;
};

/// One compiled function.
struct FnCode {
  const cminus::FuncDecl *Fn = nullptr;
  std::vector<Instr> Code;
  uint32_t NumRegs = 0;
  uint32_t NumSlots = 0;
  /// Slot index -> declaration, for unbound-variable trap messages.
  std::vector<const cminus::VarDecl *> SlotVars;
  /// Slot index for each parameter, in declaration order.
  std::vector<uint16_t> ParamSlots;
  /// Block template for each parameter's declared type.
  std::vector<uint32_t> ParamTemplates;
  /// Audit site per parameter (NoIndex when no audited qualifiers).
  std::vector<uint32_t> ParamAudits;
};

/// A whole compiled program plus its side tables. AST and qualifier-set
/// pointers reference the cminus::Program and qual::QualifierSet the
/// module was compiled from; both must outlive the module.
struct ModuleCode {
  /// Fns[0] is the synthetic startup function: it runs global
  /// initializers in declaration order, then calls the entry point with
  /// default argument values and returns its result.
  std::vector<FnCode> Fns;
  /// Initial cell images for block allocations, precomputed per site.
  std::vector<std::vector<Value>> Templates;
  /// Deduplicated constant pool; Imm and BinaryImm index it via Extra.
  std::vector<Value> Consts;
  /// Lazily interned string literals (one block per StrConst AST node,
  /// allocated at first execution, exactly like the interpreter).
  std::vector<const cminus::StrConstExpr *> Strings;
  std::vector<GuardSite> Guards;
  std::vector<AuditSite> Audits;
  /// Statically known trap messages (without the location prefix).
  std::vector<std::string> Msgs;
  /// Globals in declaration order (block ids are assigned host-side in
  /// this order before startup runs, matching the interpreter).
  std::vector<const cminus::VarDecl *> Globals;
  std::vector<uint32_t> GlobalTemplates;
  /// Set when the entry point is missing or has no body; execution then
  /// reports SetupError without running, like the interpreter.
  bool EntryMissing = false;
  std::string EntryName;

  uint64_t instructionCount() const {
    uint64_t N = 0;
    for (const FnCode &F : Fns)
      N += F.Code.size();
    return N;
  }
};

} // namespace stq::vm

#endif // STQ_VM_BYTECODE_H
