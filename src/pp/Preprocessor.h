//===- Preprocessor.h - Lexer-level C preprocessor --------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-pass, line-oriented C preprocessor in front of the C-minus
/// parser, so the pipeline can ingest the paper's real §6 subjects (grep's
/// dfa.c/dfa.h, bftpd, mingetty, identd) instead of hand-flattened
/// transcriptions. Supported:
///
///   * `#include "f.h"` and `#include <f.h>` with a search path (quoted
///     includes try the including file's directory first), an include
///     stack recorded per spliced line, and a recursion-depth cap that
///     diagnoses cycles instead of overflowing;
///   * object-like and function-like macros (`#define N 10`,
///     `#define MAX(a,b) ...`) with argument substitution, rescanning,
///     and the C99 no-reexpansion rule for self-referential and mutually
///     recursive macros; `#undef`;
///   * `#if` / `#ifdef` / `#ifndef` / `#elif` / `#else` / `#endif` with
///     the integer constant-expression subset (decimal/hex literals,
///     `defined`, `! ~ -`, `* / % + -`, comparisons, `&& ||`, `?:`,
///     parentheses) and a nesting-depth cap;
///   * `#error`, and comment stripping that preserves line/column
///     coordinates (comment bytes become spaces).
///
/// Output is the expanded source text plus a LineMap: for every output
/// line, the originating file, physical line, include stack, and — when
/// the line was rewritten by macro expansion — the macro backtrace. The
/// downstream parser/sema/checker run on the expanded text unchanged;
/// the multi-TU front end uses the map to render "in file included
/// from ..." chains and macro-expansion notes instead of raw
/// post-expansion SourceLocs.
///
/// Robustness mirrors the parser's hardening contracts (see
/// tests/test_pp.cpp): include depth, conditional depth, per-line
/// expansion work, and the diagnostic flood are all capped; missing
/// headers and unterminated conditionals are diagnosed, never crashed on.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PP_PREPROCESSOR_H
#define STQ_PP_PREPROCESSOR_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stq::pp {

/// A virtual filesystem: resolved path -> file contents. The include
/// closure a recording resolver collects ships over stq-rpc-v1 in exactly
/// this shape, so the daemon re-resolves includes without touching client
/// paths.
using FileMap = std::map<std::string, std::string>;

/// Where `#include` bytes come from. Resolution order (quoted: including
/// file's directory, then the -I dirs; angled: -I dirs only) lives in the
/// preprocessor; resolvers only answer "give me this exact path".
class FileResolver {
public:
  virtual ~FileResolver();
  /// Reads \p Path into \p Text; false when the file does not exist
  /// (the preprocessor then tries the next search-path candidate).
  virtual bool read(const std::string &Path, std::string &Text) = 0;
};

/// Reads from the real filesystem. When \p Record is non-null, every
/// successful read is mirrored into it — the client-side include-closure
/// scan `stqc --server` runs before shipping a multi-input request.
class DiskResolver : public FileResolver {
public:
  explicit DiskResolver(FileMap *Record = nullptr) : Record(Record) {}
  bool read(const std::string &Path, std::string &Text) override;

private:
  FileMap *Record;
};

/// Serves a shipped FileMap; never touches the filesystem (the daemon's
/// resolver). Search-path resolution is byte-identical to the disk pass
/// that recorded the map: a candidate is readable iff the map holds it.
class MemoryResolver : public FileResolver {
public:
  explicit MemoryResolver(const FileMap &Files) : Files(Files) {}
  bool read(const std::string &Path, std::string &Text) override;

private:
  const FileMap &Files;
};

/// One frame of an include chain: the file that wrote the `#include` and
/// the line it sits on.
struct IncludeFrame {
  std::string File;
  unsigned Line = 0;
};

/// Per-output-line provenance.
struct LineInfo {
  /// Index into LineMap::Files.
  uint32_t FileId = 0;
  /// 1-based physical line in that file.
  uint32_t PhysLine = 0;
  /// Index into LineMap::Stacks (0 = the empty stack: the main file).
  uint32_t StackId = 0;
  /// When the line was rewritten by macro expansion, the name of the
  /// outermost macro expanded on it (empty otherwise). Columns on such
  /// lines are post-expansion coordinates; the renderer says so.
  std::string Macro;
};

/// Maps expanded-output coordinates back to user coordinates.
struct LineMap {
  std::vector<std::string> Files;
  /// Interned include chains, outermost first; Stacks[0] is empty.
  std::vector<std::vector<IncludeFrame>> Stacks;
  /// Lines[N-1] describes output line N.
  std::vector<LineInfo> Lines;

  /// Provenance for output line \p Line (1-based); null when out of range
  /// (synthesized or unknown locations).
  const LineInfo *info(unsigned Line) const {
    if (Line == 0 || Line > Lines.size())
      return nullptr;
    return &Lines[Line - 1];
  }
  const std::string &file(const LineInfo &I) const { return Files[I.FileId]; }
  const std::vector<IncludeFrame> &stack(const LineInfo &I) const {
    return Stacks[I.StackId];
  }
};

/// Counters one preprocess() run publishes (summed over TUs into the
/// pp.* metrics; docs/OBSERVABILITY.md).
struct PpStats {
  uint64_t Files = 0;       ///< Distinct files entered (main + includes).
  uint64_t Includes = 0;    ///< `#include` directives honored.
  uint64_t MacrosDefined = 0;
  uint64_t Expansions = 0;  ///< Macro invocations expanded.
  uint64_t Conditionals = 0; ///< #if/#ifdef/#ifndef directives evaluated.
  uint64_t LinesIn = 0;     ///< Physical input lines consumed.
  uint64_t LinesOut = 0;    ///< Expanded output lines produced.
};

struct PpOptions {
  /// -I search directories, in command-line order.
  std::vector<std::string> IncludeDirs;
  /// -D predefines: "NAME" (defined as 1) or "NAME=VALUE".
  std::vector<std::string> Defines;

  /// Robustness caps, mirroring the parser's limits.
  unsigned MaxIncludeDepth = 32;
  unsigned MaxConditionalDepth = 64;
  /// Macro expansions allowed while rewriting one logical line; past it
  /// the line is diagnosed and emitted as-is expanded so far.
  unsigned MaxExpansionsPerLine = 4096;
  unsigned MaxErrors = 64;
};

struct PpResult {
  /// The expanded translation unit (what the parser consumes).
  std::string Text;
  LineMap Map;
  /// FNV-style 128-bit hash of the post-preprocess text and every file
  /// name in the include closure: the per-TU content key the incremental
  /// layer folds in, so a header edit re-keys every includer.
  uint64_t StreamHashA = 0;
  uint64_t StreamHashB = 0;
  PpStats Stats;
  /// False when any pp-phase error was reported.
  bool Ok = false;
};

/// Preprocesses \p MainText (presented as file \p MainName). Include
/// resolution goes through \p Resolver; diagnostics land in \p Diags with
/// phase "pp", already file-attributed (Diagnostic::File) and followed by
/// their "in file included from ..." notes.
PpResult preprocess(const std::string &MainName, const std::string &MainText,
                    FileResolver &Resolver, const PpOptions &Options,
                    DiagnosticEngine &Diags);

/// Runs the preprocessor over every input purely to collect the include
/// closure: the returned map holds every file `#include` successfully
/// resolved from disk. `stqc --server` ships it so the daemon resolves
/// the same headers without touching client paths.
FileMap collectIncludeClosure(
    const std::vector<std::pair<std::string, std::string>> &Inputs,
    const PpOptions &Options);

/// The directory prefix of \p Path ("" for a bare filename) — the quoted
/// include search anchor.
std::string dirName(const std::string &Path);

} // namespace stq::pp

#endif // STQ_PP_PREPROCESSOR_H
