//===- Preprocessor.cpp ---------------------------------------------------===//

#include "pp/Preprocessor.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

using namespace stq;
using namespace stq::pp;

FileResolver::~FileResolver() = default;

bool DiskResolver::read(const std::string &Path, std::string &Text) {
  // A directory opens "successfully" as an empty ifstream on POSIX; treat
  // it as not-a-header so quoted-include search falls through to the next
  // candidate (the -I dirs) instead of splicing in zero bytes.
  std::error_code EC;
  if (!std::filesystem::is_regular_file(Path, EC))
    return false;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Text = SS.str();
  if (Record)
    (*Record)[Path] = Text;
  return true;
}

bool MemoryResolver::read(const std::string &Path, std::string &Text) {
  auto It = Files.find(Path);
  if (It == Files.end())
    return false;
  Text = It->second;
  return true;
}

std::string stq::pp::dirName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return "";
  return Path.substr(0, Slash);
}

namespace {

//===----------------------------------------------------------------------===//
// Comment stripping (phase preserving line/column coordinates)
//===----------------------------------------------------------------------===//

/// Replaces comment bytes with spaces so every surviving token keeps its
/// physical (line, col); newlines inside block comments are preserved so
/// line numbers stay aligned. String and char literals are respected.
std::string stripComments(const std::string &In) {
  std::string Out = In;
  enum { Code, Str, Chr, Line, Block } State = Code;
  for (size_t I = 0; I < Out.size(); ++I) {
    char C = Out[I];
    char N = I + 1 < Out.size() ? Out[I + 1] : '\0';
    switch (State) {
    case Code:
      if (C == '"')
        State = Str;
      else if (C == '\'')
        State = Chr;
      else if (C == '/' && N == '/') {
        State = Line;
        Out[I] = ' ';
      } else if (C == '/' && N == '*') {
        State = Block;
        Out[I] = ' ';
      }
      break;
    case Str:
      if (C == '\\' && N != '\0')
        ++I;
      else if (C == '"' || C == '\n')
        State = Code;
      break;
    case Chr:
      if (C == '\\' && N != '\0')
        ++I;
      else if (C == '\'' || C == '\n')
        State = Code;
      break;
    case Line:
      if (C == '\n')
        State = Code;
      else
        Out[I] = ' ';
      break;
    case Block:
      if (C == '*' && N == '/') {
        Out[I] = ' ';
        Out[I + 1] = ' ';
        ++I;
        State = Code;
      } else if (C != '\n') {
        Out[I] = ' ';
      }
      break;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Pp tokens
//===----------------------------------------------------------------------===//

/// One preprocessing token: the raw spelling plus the hide set that
/// implements the C99 no-reexpansion rule (a macro name already expanded
/// on this token's derivation path never expands again).
struct PTok {
  std::string Text;
  std::vector<std::string> Hide;

  bool hidden(const std::string &Name) const {
    return std::find(Hide.begin(), Hide.end(), Name) != Hide.end();
  }
};

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentToken(const std::string &T) {
  return !T.empty() && isIdentStart(T[0]);
}

/// Splits one logical line into preprocessing tokens (spellings only;
/// whitespace dropped). Strings/chars are single tokens; punctuation is
/// matched greedily so `->`, `==`, `...` survive re-rendering.
std::vector<PTok> scanTokens(const std::string &Line) {
  std::vector<PTok> Out;
  size_t I = 0;
  const size_t N = Line.size();
  auto take = [&](size_t Len) {
    Out.push_back({Line.substr(I, Len), {}});
    I += Len;
  };
  while (I < N) {
    char C = Line[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (isIdentStart(C)) {
      size_t J = I + 1;
      while (J < N && isIdentChar(Line[J]))
        ++J;
      take(J - I);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      // A pp-number: digits, letters, underscores, dots (covers hex).
      size_t J = I + 1;
      while (J < N && (isIdentChar(Line[J]) || Line[J] == '.'))
        ++J;
      take(J - I);
      continue;
    }
    if (C == '"' || C == '\'') {
      size_t J = I + 1;
      while (J < N && Line[J] != C) {
        if (Line[J] == '\\' && J + 1 < N)
          ++J;
        ++J;
      }
      take(std::min(J + 1, N) - I);
      continue;
    }
    // Punctuation, longest match first.
    static const char *Three[] = {"..."};
    static const char *Two[] = {"->", "==", "!=", "<=", ">=",
                                "&&", "||", "=>", "<<", ">>"};
    bool Matched = false;
    for (const char *P : Three)
      if (Line.compare(I, 3, P) == 0) {
        take(3);
        Matched = true;
        break;
      }
    if (Matched)
      continue;
    for (const char *P : Two)
      if (Line.compare(I, 2, P) == 0) {
        take(2);
        Matched = true;
        break;
      }
    if (Matched)
      continue;
    take(1);
  }
  return Out;
}

std::string renderTokens(const std::vector<PTok> &Toks) {
  std::string Out;
  for (const PTok &T : Toks) {
    if (!Out.empty())
      Out += ' ';
    Out += T.Text;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Macros
//===----------------------------------------------------------------------===//

struct Macro {
  std::string Name;
  bool FunctionLike = false;
  std::vector<std::string> Params;
  std::vector<PTok> Body;
};

//===----------------------------------------------------------------------===//
// The preprocessor state machine
//===----------------------------------------------------------------------===//

/// FNV-1a over two independent 64-bit streams (the incremental layer's
/// Hash128 shape, computed locally so pp stays dependency-light).
struct StreamHasher {
  uint64_t A = 0xcbf29ce484222325ULL;
  uint64_t B = 0x9e3779b97f4a7c15ULL;
  void bytes(const std::string &S) {
    u64(S.size());
    for (char C : S)
      byte(static_cast<uint8_t>(C));
  }
  void byte(uint8_t X) {
    A = (A ^ X) * 0x100000001b3ULL;
    B = (B ^ X) * 0xff51afd7ed558ccdULL;
  }
  void u64(uint64_t X) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>(X >> (I * 8)));
  }
};

/// One #if/#ifdef level.
struct Cond {
  bool ParentActive = true;
  /// The branch currently selected at this level.
  bool ThisActive = false;
  /// Some branch at this level has already been taken (gates #elif/#else).
  bool Taken = false;
  bool SeenElse = false;
  unsigned Line = 0; ///< Where the #if sits, for unterminated diagnostics.
};

class Pp {
public:
  Pp(FileResolver &Resolver, const PpOptions &Options,
     DiagnosticEngine &Diags)
      : Resolver(Resolver), Opts(Options), Diags(Diags) {
    Result.Map.Stacks.emplace_back(); // Stacks[0] = the empty chain.
  }

  PpResult run(const std::string &MainName, const std::string &MainText) {
    for (const std::string &D : Opts.Defines)
      predefine(D);
    processFile(MainName, MainText);
    StreamHasher H;
    H.bytes(Result.Text);
    for (const std::string &F : ClosureNames)
      H.bytes(F);
    Result.StreamHashA = H.A;
    Result.StreamHashB = H.B;
    Result.Ok = ErrorCount == 0;
    return std::move(Result);
  }

private:
  //===--------------------------------------------------------------------===//
  // Diagnostics
  //===--------------------------------------------------------------------===//

  void error(const std::string &File, unsigned Line, const std::string &Msg) {
    ++ErrorCount;
    if (ErrorCount > Opts.MaxErrors)
      return;
    if (ErrorCount == Opts.MaxErrors) {
      Diags.error(SourceLoc(), "pp",
                  "too many preprocessor errors; suppressing the rest");
      return;
    }
    Diagnostic D;
    D.Severity = DiagSeverity::Error;
    D.File = File;
    D.Loc = SourceLoc(Line, 1);
    D.Phase = "pp";
    D.Message = Msg;
    Diags.report(std::move(D));
    noteIncludeChain();
  }

  /// Emits one "in file included from ..." note per active include frame,
  /// innermost includer first — the rendering the multi-TU front end also
  /// uses for parse/sema/check diagnostics on included lines.
  void noteIncludeChain() {
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It)
      Diags.note(SourceLoc(), "pp",
                 "in file included from " + It->File + ":" +
                     std::to_string(It->Line));
  }

  //===--------------------------------------------------------------------===//
  // Output
  //===--------------------------------------------------------------------===//

  uint32_t fileId(const std::string &Name) {
    for (uint32_t I = 0; I < Result.Map.Files.size(); ++I)
      if (Result.Map.Files[I] == Name)
        return I;
    Result.Map.Files.push_back(Name);
    return static_cast<uint32_t>(Result.Map.Files.size() - 1);
  }

  uint32_t stackId() {
    if (Stack.empty())
      return 0;
    // Linear intern: include chains are few and shallow.
    for (uint32_t I = 1; I < Result.Map.Stacks.size(); ++I) {
      const auto &S = Result.Map.Stacks[I];
      if (S.size() == Stack.size() &&
          std::equal(S.begin(), S.end(), Stack.begin(),
                     [](const IncludeFrame &A, const IncludeFrame &B) {
                       return A.File == B.File && A.Line == B.Line;
                     }))
        return I;
    }
    Result.Map.Stacks.push_back(Stack);
    return static_cast<uint32_t>(Result.Map.Stacks.size() - 1);
  }

  void emitLine(const std::string &Text, const std::string &File,
                unsigned PhysLine, const std::string &Macro) {
    Result.Text += Text;
    Result.Text += '\n';
    LineInfo Info;
    Info.FileId = fileId(File);
    Info.PhysLine = PhysLine;
    Info.StackId = stackId();
    Info.Macro = Macro;
    Result.Map.Lines.push_back(std::move(Info));
    ++Result.Stats.LinesOut;
  }

  //===--------------------------------------------------------------------===//
  // Macro table
  //===--------------------------------------------------------------------===//

  const Macro *findMacro(const std::string &Name) const {
    auto It = Macros.find(Name);
    return It == Macros.end() ? nullptr : &It->second;
  }

  void predefine(const std::string &Spec) {
    size_t Eq = Spec.find('=');
    Macro M;
    M.Name = Eq == std::string::npos ? Spec : Spec.substr(0, Eq);
    std::string Value = Eq == std::string::npos ? "1" : Spec.substr(Eq + 1);
    M.Body = scanTokens(Value);
    if (M.Name.empty() || !isIdentToken(M.Name)) {
      error("<command line>", 0, "bad -D macro name '" + M.Name + "'");
      return;
    }
    ++Result.Stats.MacrosDefined;
    Macros[M.Name] = std::move(M);
  }

  //===--------------------------------------------------------------------===//
  // One file
  //===--------------------------------------------------------------------===//

  /// Splits \p Text into logical lines (backslash-newline spliced),
  /// remembering each logical line's first physical line number.
  static void splitLogicalLines(const std::string &Text,
                                std::vector<std::string> &Lines,
                                std::vector<unsigned> &PhysLines,
                                uint64_t &PhysCount) {
    std::string Cur;
    unsigned Phys = 1, Start = 1;
    bool Open = false;
    auto flush = [&]() {
      Lines.push_back(Cur);
      PhysLines.push_back(Start);
      Cur.clear();
      Open = false;
    };
    for (size_t I = 0; I < Text.size(); ++I) {
      char C = Text[I];
      if (C == '\n') {
        ++PhysCount;
        if (!Cur.empty() && Cur.back() == '\\') {
          Cur.pop_back();
          Open = true;
          ++Phys;
          continue;
        }
        flush();
        ++Phys;
        Start = Phys;
        continue;
      }
      if (!Open && Cur.empty())
        Start = Phys;
      Open = true;
      Cur += C;
    }
    if (Open || !Cur.empty()) {
      ++PhysCount;
      flush();
    }
  }

  void processFile(const std::string &Name, const std::string &RawText) {
    ++Result.Stats.Files;
    ClosureNames.push_back(Name);
    ActiveFiles.push_back(Name);
    std::string Text = stripComments(RawText);
    std::vector<std::string> Lines;
    std::vector<unsigned> PhysLines;
    splitLogicalLines(Text, Lines, PhysLines, Result.Stats.LinesIn);

    std::vector<Cond> Conds;
    size_t CondBase = 0; // Conds is per-file by construction.
    (void)CondBase;

    for (size_t Idx = 0; Idx < Lines.size(); ++Idx) {
      const std::string &Line = Lines[Idx];
      unsigned Phys = PhysLines[Idx];
      size_t NonWs = Line.find_first_not_of(" \t");
      bool Active = true;
      for (const Cond &C : Conds)
        Active = Active && C.ParentActive && C.ThisActive;

      if (NonWs != std::string::npos && Line[NonWs] == '#') {
        handleDirective(Name, Line.substr(NonWs + 1), Phys, Conds, Active);
        continue;
      }
      if (!Active)
        continue;
      processTextLine(Name, Line, Phys, Lines, Idx);
    }

    for (const Cond &C : Conds)
      error(Name, C.Line, "unterminated conditional directive");
    ActiveFiles.pop_back();
  }

  /// Emits one in-conditional source line, expanding macros when any are
  /// invoked on it. Function-like invocations may consume following lines
  /// (arguments spanning lines); \p Idx advances past them.
  void processTextLine(const std::string &File, const std::string &Line,
                       unsigned Phys, const std::vector<std::string> &Lines,
                       size_t &Idx) {
    std::vector<PTok> Toks = scanTokens(Line);
    // Fast path: no expandable macro on the line — emit verbatim, keeping
    // the user's exact columns.
    bool NeedsExpansion = false;
    for (size_t I = 0; I < Toks.size(); ++I) {
      if (!isIdentToken(Toks[I].Text))
        continue;
      const Macro *M = findMacro(Toks[I].Text);
      if (!M)
        continue;
      if (!M->FunctionLike ||
          (I + 1 < Toks.size() && Toks[I + 1].Text == "(") ||
          I + 1 == Toks.size()) {
        NeedsExpansion = true;
        break;
      }
    }
    if (!NeedsExpansion) {
      emitLine(Line, File, Phys, "");
      return;
    }

    unsigned Budget = Opts.MaxExpansionsPerLine;
    std::string FirstMacro;
    RefillFn Refill = [&](std::vector<PTok> &More) {
      // Pull the next logical line into the token buffer (a function-like
      // invocation whose arguments span lines). Directives inside an
      // invocation are not supported.
      if (Idx + 1 >= Lines.size())
        return false;
      const std::string &Next = Lines[Idx + 1];
      size_t NonWs = Next.find_first_not_of(" \t");
      if (NonWs != std::string::npos && Next[NonWs] == '#')
        return false;
      ++Idx;
      More = scanTokens(Next);
      return true;
    };
    std::vector<PTok> Expanded =
        expandTokens(std::move(Toks), File, Phys, Budget, &FirstMacro,
                     &Refill);
    emitLine(renderTokens(Expanded), File, Phys, FirstMacro);
  }

  //===--------------------------------------------------------------------===//
  // Macro expansion
  //===--------------------------------------------------------------------===//

  using RefillFn = std::function<bool(std::vector<PTok> &)>;

  /// Rewrites \p Toks until no expandable macro remains (hide sets
  /// guarantee termination; \p Budget caps pathological growth).
  std::vector<PTok> expandTokens(std::vector<PTok> Toks,
                                 const std::string &File, unsigned Phys,
                                 unsigned &Budget, std::string *FirstMacro,
                                 const RefillFn *Refill) {
    std::vector<PTok> Out;
    size_t I = 0;
    bool BudgetDiagnosed = false;
    while (I < Toks.size()) {
      PTok &T = Toks[I];
      const Macro *M =
          isIdentToken(T.Text) && !T.hidden(T.Text) ? findMacro(T.Text)
                                                    : nullptr;
      if (!M) {
        Out.push_back(std::move(T));
        ++I;
        continue;
      }
      if (Budget == 0) {
        if (!BudgetDiagnosed) {
          BudgetDiagnosed = true;
          error(File, Phys, "macro expansion limit exceeded on this line");
        }
        Out.push_back(std::move(T));
        ++I;
        continue;
      }

      if (!M->FunctionLike) {
        --Budget;
        ++Result.Stats.Expansions;
        if (FirstMacro && FirstMacro->empty())
          *FirstMacro = M->Name;
        std::vector<PTok> Body = M->Body;
        for (PTok &B : Body) {
          B.Hide = T.Hide;
          B.Hide.push_back(M->Name);
        }
        Toks.erase(Toks.begin() + static_cast<long>(I));
        Toks.insert(Toks.begin() + static_cast<long>(I), Body.begin(),
                    Body.end());
        continue; // Rescan from the spliced tokens.
      }

      // Function-like: require '(' (possibly on a following line).
      if (I + 1 >= Toks.size() && Refill) {
        std::vector<PTok> More;
        if ((*Refill)(More))
          Toks.insert(Toks.end(), More.begin(), More.end());
      }
      if (I + 1 >= Toks.size() || Toks[I + 1].Text != "(") {
        Out.push_back(std::move(T));
        ++I;
        continue;
      }

      // Collect arguments, balancing parentheses.
      std::vector<std::vector<PTok>> Args;
      Args.emplace_back();
      size_t J = I + 2;
      int Depth = 1;
      bool Closed = false;
      while (true) {
        if (J >= Toks.size()) {
          std::vector<PTok> More;
          if (Refill && (*Refill)(More)) {
            Toks.insert(Toks.end(), More.begin(), More.end());
            continue;
          }
          break;
        }
        const std::string &S = Toks[J].Text;
        if (S == "(")
          ++Depth;
        else if (S == ")") {
          --Depth;
          if (Depth == 0) {
            Closed = true;
            ++J;
            break;
          }
        } else if (S == "," && Depth == 1) {
          Args.emplace_back();
          ++J;
          continue;
        }
        Args.back().push_back(Toks[J]);
        ++J;
      }
      if (!Closed) {
        error(File, Phys,
              "unterminated invocation of macro '" + M->Name + "'");
        Out.push_back(std::move(T));
        ++I;
        continue;
      }
      // `M()` with one empty argument means zero arguments.
      if (Args.size() == 1 && Args[0].empty() && M->Params.empty())
        Args.clear();
      if (Args.size() != M->Params.size()) {
        error(File, Phys,
              "macro '" + M->Name + "' expects " +
                  std::to_string(M->Params.size()) + " argument(s), got " +
                  std::to_string(Args.size()));
        Out.push_back(std::move(T));
        ++I;
        continue;
      }

      --Budget;
      ++Result.Stats.Expansions;
      if (FirstMacro && FirstMacro->empty())
        *FirstMacro = M->Name;

      // Arguments are fully expanded before substitution (C99 6.10.3.1).
      std::vector<std::vector<PTok>> ExpArgs;
      ExpArgs.reserve(Args.size());
      for (std::vector<PTok> &A : Args)
        ExpArgs.push_back(
            expandTokens(std::move(A), File, Phys, Budget, nullptr, nullptr));

      std::vector<PTok> Body;
      for (const PTok &B : M->Body) {
        auto P = std::find(M->Params.begin(), M->Params.end(), B.Text);
        if (isIdentToken(B.Text) && P != M->Params.end()) {
          const auto &Arg = ExpArgs[static_cast<size_t>(
              P - M->Params.begin())];
          for (PTok A : Arg) {
            A.Hide.insert(A.Hide.end(), T.Hide.begin(), T.Hide.end());
            A.Hide.push_back(M->Name);
            Body.push_back(std::move(A));
          }
          continue;
        }
        PTok Copy = B;
        Copy.Hide = T.Hide;
        Copy.Hide.push_back(M->Name);
        Body.push_back(std::move(Copy));
      }
      Toks.erase(Toks.begin() + static_cast<long>(I),
                 Toks.begin() + static_cast<long>(J));
      Toks.insert(Toks.begin() + static_cast<long>(I), Body.begin(),
                  Body.end());
      // Rescan from the spliced tokens.
    }
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Directives
  //===--------------------------------------------------------------------===//

  void handleDirective(const std::string &File, const std::string &Tail,
                       unsigned Phys, std::vector<Cond> &Conds,
                       bool Active) {
    std::vector<PTok> Toks = scanTokens(Tail);
    if (Toks.empty())
      return; // The null directive (`#`) is legal and ignored.
    const std::string &Name = Toks[0].Text;

    // Conditional-flow directives act even in skipped regions.
    if (Name == "if" || Name == "ifdef" || Name == "ifndef") {
      if (Conds.size() >= Opts.MaxConditionalDepth) {
        error(File, Phys, "conditional nesting too deep (max " +
                              std::to_string(Opts.MaxConditionalDepth) + ")");
        // Keep the stack balanced so the matching #endif pops cleanly.
      }
      Cond C;
      C.ParentActive = Active && Conds.size() < Opts.MaxConditionalDepth;
      C.Line = Phys;
      if (C.ParentActive) {
        ++Result.Stats.Conditionals;
        bool V = false;
        if (Name == "if") {
          V = evalCondition(File, Phys,
                            std::vector<PTok>(Toks.begin() + 1, Toks.end()));
        } else {
          if (Toks.size() < 2 || !isIdentToken(Toks[1].Text))
            error(File, Phys, "expected macro name after #" + Name);
          else
            V = findMacro(Toks[1].Text) != nullptr;
          if (Name == "ifndef")
            V = !V;
        }
        C.ThisActive = V;
        C.Taken = V;
      }
      Conds.push_back(C);
      return;
    }
    if (Name == "elif") {
      if (Conds.empty() || Conds.back().SeenElse) {
        error(File, Phys, "#elif without matching #if");
        return;
      }
      Cond &C = Conds.back();
      if (!C.ParentActive)
        return;
      if (C.Taken) {
        C.ThisActive = false;
        return;
      }
      bool V = evalCondition(File, Phys,
                             std::vector<PTok>(Toks.begin() + 1, Toks.end()));
      C.ThisActive = V;
      C.Taken = V;
      return;
    }
    if (Name == "else") {
      if (Conds.empty() || Conds.back().SeenElse) {
        error(File, Phys, "#else without matching #if");
        return;
      }
      Cond &C = Conds.back();
      C.SeenElse = true;
      if (!C.ParentActive)
        return;
      C.ThisActive = !C.Taken;
      C.Taken = true;
      return;
    }
    if (Name == "endif") {
      if (Conds.empty()) {
        error(File, Phys, "#endif without matching #if");
        return;
      }
      Conds.pop_back();
      return;
    }

    if (!Active)
      return; // Everything below is skipped in a false branch.

    if (Name == "include") {
      handleInclude(File, Tail, Phys);
      return;
    }
    if (Name == "define") {
      handleDefine(File, Tail, Phys, Toks);
      return;
    }
    if (Name == "undef") {
      if (Toks.size() < 2 || !isIdentToken(Toks[1].Text)) {
        error(File, Phys, "expected macro name after #undef");
        return;
      }
      Macros.erase(Toks[1].Text);
      return;
    }
    if (Name == "error") {
      std::string Msg = Tail.substr(Tail.find("error") + 5);
      size_t S = Msg.find_first_not_of(" \t");
      error(File, Phys,
            "#error" + (S == std::string::npos ? std::string()
                                               : ": " + Msg.substr(S)));
      return;
    }
    if (Name == "pragma")
      return; // Accepted and ignored.
    error(File, Phys, "unknown preprocessor directive '#" + Name + "'");
  }

  void handleDefine(const std::string &File, const std::string &Tail,
                    unsigned Phys, const std::vector<PTok> &Toks) {
    if (Toks.size() < 2 || !isIdentToken(Toks[1].Text)) {
      error(File, Phys, "expected macro name after #define");
      return;
    }
    Macro M;
    M.Name = Toks[1].Text;
    size_t BodyStart = 2;
    // Function-like iff '(' immediately follows the name (no whitespace):
    // find the name in the raw tail and inspect the next character.
    size_t NamePos = Tail.find(M.Name, Tail.find("define") + 6);
    bool FnLike = NamePos != std::string::npos &&
                  NamePos + M.Name.size() < Tail.size() &&
                  Tail[NamePos + M.Name.size()] == '(';
    if (FnLike) {
      M.FunctionLike = true;
      size_t I = 2;
      if (I >= Toks.size() || Toks[I].Text != "(") {
        error(File, Phys, "malformed macro parameter list");
        return;
      }
      ++I;
      if (I < Toks.size() && Toks[I].Text == ")") {
        ++I;
      } else {
        while (true) {
          if (I >= Toks.size()) {
            error(File, Phys, "unterminated macro parameter list");
            return;
          }
          if (Toks[I].Text == "...") {
            error(File, Phys, "variadic macros are not supported");
            return;
          }
          if (!isIdentToken(Toks[I].Text)) {
            error(File, Phys,
                  "expected parameter name in macro parameter list");
            return;
          }
          if (std::find(M.Params.begin(), M.Params.end(), Toks[I].Text) !=
              M.Params.end())
            error(File, Phys, "duplicate macro parameter '" + Toks[I].Text +
                                  "'");
          M.Params.push_back(Toks[I].Text);
          ++I;
          if (I < Toks.size() && Toks[I].Text == ",") {
            ++I;
            continue;
          }
          if (I < Toks.size() && Toks[I].Text == ")") {
            ++I;
            break;
          }
          error(File, Phys, "expected ',' or ')' in macro parameter list");
          return;
        }
      }
      BodyStart = I;
    }
    for (size_t I = BodyStart; I < Toks.size(); ++I) {
      if (Toks[I].Text == "#" || Toks[I].Text == "##")
        error(File, Phys,
              "'" + Toks[I].Text +
                  "' (stringize/paste) is not supported in macro bodies");
      M.Body.push_back(Toks[I]);
    }
    auto It = Macros.find(M.Name);
    if (It != Macros.end())
      Diags.warning(SourceLoc(Phys, 1), "pp",
                    "macro '" + M.Name + "' redefined");
    ++Result.Stats.MacrosDefined;
    Macros[M.Name] = std::move(M);
  }

  void handleInclude(const std::string &File, const std::string &Tail,
                     unsigned Phys) {
    // Parse `"name"` or `<name>` from the raw tail (the token scanner
    // would split <a/b.h> at punctuation).
    size_t Pos = Tail.find("include") + 7;
    while (Pos < Tail.size() &&
           std::isspace(static_cast<unsigned char>(Tail[Pos])))
      ++Pos;
    if (Pos >= Tail.size() || (Tail[Pos] != '"' && Tail[Pos] != '<')) {
      error(File, Phys, "expected \"file\" or <file> after #include");
      return;
    }
    bool Angled = Tail[Pos] == '<';
    char Close = Angled ? '>' : '"';
    size_t End = Tail.find(Close, Pos + 1);
    if (End == std::string::npos) {
      error(File, Phys, "unterminated #include file name");
      return;
    }
    std::string Name = Tail.substr(Pos + 1, End - Pos - 1);
    if (Name.empty()) {
      error(File, Phys, "empty #include file name");
      return;
    }

    if (Stack.size() >= Opts.MaxIncludeDepth) {
      error(File, Phys,
            "include depth exceeds " + std::to_string(Opts.MaxIncludeDepth) +
                " (possible include cycle) while including '" + Name + "'");
      return;
    }

    std::vector<std::string> Candidates;
    if (!Name.empty() && Name[0] == '/') {
      Candidates.push_back(Name);
    } else {
      if (!Angled) {
        std::string Dir = dirName(File);
        Candidates.push_back(Dir.empty() ? Name : Dir + "/" + Name);
      }
      for (const std::string &D : Opts.IncludeDirs)
        Candidates.push_back(D.empty() ? Name : D + "/" + Name);
    }

    std::string Text, Resolved;
    for (const std::string &C : Candidates)
      if (Resolver.read(C, Text)) {
        Resolved = C;
        break;
      }
    if (Resolved.empty()) {
      std::string Tried;
      for (const std::string &C : Candidates)
        Tried += (Tried.empty() ? "" : ", ") + C;
      error(File, Phys,
            Angled ? "<" + Name + ">: no such header (searched: " + Tried +
                         ")"
                   : "\"" + Name + "\": no such header (searched: " + Tried +
                         ")");
      return;
    }
    for (const std::string &A : ActiveFiles)
      if (A == Resolved) {
        error(File, Phys, "circular include of '" + Resolved + "'");
        return;
      }

    ++Result.Stats.Includes;
    Stack.push_back({File, Phys});
    processFile(Resolved, Text);
    Stack.pop_back();
  }

  //===--------------------------------------------------------------------===//
  // #if constant expressions
  //===--------------------------------------------------------------------===//

  /// `defined X` / `defined(X)` replacement, then macro expansion, then
  /// the constant-expression parser. Unknown identifiers evaluate to 0
  /// (the C semantics).
  bool evalCondition(const std::string &File, unsigned Phys,
                     std::vector<PTok> Toks) {
    std::vector<PTok> Replaced;
    for (size_t I = 0; I < Toks.size(); ++I) {
      if (Toks[I].Text != "defined") {
        Replaced.push_back(std::move(Toks[I]));
        continue;
      }
      std::string Target;
      if (I + 1 < Toks.size() && isIdentToken(Toks[I + 1].Text)) {
        Target = Toks[I + 1].Text;
        I += 1;
      } else if (I + 3 < Toks.size() && Toks[I + 1].Text == "(" &&
                 isIdentToken(Toks[I + 2].Text) && Toks[I + 3].Text == ")") {
        Target = Toks[I + 2].Text;
        I += 3;
      } else {
        error(File, Phys, "expected macro name after 'defined'");
        return false;
      }
      PTok T;
      T.Text = findMacro(Target) ? "1" : "0";
      Replaced.push_back(std::move(T));
    }
    unsigned Budget = Opts.MaxExpansionsPerLine;
    std::vector<PTok> Expanded = expandTokens(std::move(Replaced), File,
                                              Phys, Budget, nullptr, nullptr);
    CondParser P{Expanded, 0, File, Phys, this};
    int64_t V = P.parseTernary();
    if (P.Pos != Expanded.size())
      error(File, Phys, "trailing tokens in #if expression");
    return V != 0;
  }

  struct CondParser {
    const std::vector<PTok> &Toks;
    size_t Pos;
    const std::string &File;
    unsigned Phys;
    Pp *Owner;
    static constexpr unsigned MaxDepth = 200;
    unsigned Depth = 0;

    const std::string &peek() {
      static const std::string Empty;
      return Pos < Toks.size() ? Toks[Pos].Text : Empty;
    }
    bool eat(const char *S) {
      if (peek() == S) {
        ++Pos;
        return true;
      }
      return false;
    }
    void err(const std::string &M) { Owner->error(File, Phys, M); }

    int64_t parseTernary() {
      int64_t C = parseLOr();
      if (eat("?")) {
        int64_t A = parseTernary();
        if (!eat(":"))
          err("expected ':' in #if expression");
        int64_t B = parseTernary();
        return C ? A : B;
      }
      return C;
    }
    int64_t parseLOr() {
      int64_t V = parseLAnd();
      while (eat("||"))
        V = (V != 0) | (parseLAnd() != 0);
      return V;
    }
    int64_t parseLAnd() {
      int64_t V = parseEq();
      while (eat("&&"))
        V = (V != 0) & (parseEq() != 0);
      return V;
    }
    int64_t parseEq() {
      int64_t V = parseRel();
      while (true) {
        if (eat("=="))
          V = V == parseRel();
        else if (eat("!="))
          V = V != parseRel();
        else
          return V;
      }
    }
    int64_t parseRel() {
      int64_t V = parseAdd();
      while (true) {
        if (eat("<"))
          V = V < parseAdd();
        else if (eat(">"))
          V = V > parseAdd();
        else if (eat("<="))
          V = V <= parseAdd();
        else if (eat(">="))
          V = V >= parseAdd();
        else
          return V;
      }
    }
    int64_t parseAdd() {
      int64_t V = parseMul();
      while (true) {
        if (eat("+"))
          V = V + parseMul();
        else if (eat("-"))
          V = V - parseMul();
        else
          return V;
      }
    }
    int64_t parseMul() {
      int64_t V = parseUnary();
      while (true) {
        if (eat("*")) {
          V = V * parseUnary();
        } else if (eat("/")) {
          int64_t R = parseUnary();
          if (R == 0) {
            err("division by zero in #if expression");
            V = 0;
          } else {
            V = V / R;
          }
        } else if (eat("%")) {
          int64_t R = parseUnary();
          if (R == 0) {
            err("remainder by zero in #if expression");
            V = 0;
          } else {
            V = V % R;
          }
        } else {
          return V;
        }
      }
    }
    int64_t parseUnary() {
      if (Depth >= MaxDepth) {
        err("#if expression too deeply nested");
        Pos = Toks.size();
        return 0;
      }
      ++Depth;
      int64_t V;
      if (eat("!"))
        V = parseUnary() == 0;
      else if (eat("-"))
        V = -parseUnary();
      else if (eat("~"))
        V = ~parseUnary();
      else if (eat("+"))
        V = parseUnary();
      else
        V = parsePrimary();
      --Depth;
      return V;
    }
    int64_t parsePrimary() {
      if (eat("(")) {
        int64_t V = parseTernary();
        if (!eat(")"))
          err("expected ')' in #if expression");
        return V;
      }
      const std::string &T = peek();
      if (T.empty()) {
        err("unexpected end of #if expression");
        return 0;
      }
      ++Pos;
      if (std::isdigit(static_cast<unsigned char>(T[0]))) {
        // Decimal or hex; trailing u/U/l/L suffixes tolerated.
        size_t End = T.size();
        while (End > 0 && (T[End - 1] == 'u' || T[End - 1] == 'U' ||
                           T[End - 1] == 'l' || T[End - 1] == 'L'))
          --End;
        errno = 0;
        char *Stop = nullptr;
        std::string Num = T.substr(0, End);
        long long V = std::strtoll(Num.c_str(), &Stop, 0);
        if (Stop != Num.c_str() + Num.size())
          err("bad integer literal '" + T + "' in #if expression");
        return V;
      }
      if (T.size() >= 3 && T[0] == '\'')
        return static_cast<int64_t>(
            T[1] == '\\' && T.size() >= 4 ? T[2] : T[1]);
      if (isIdentToken(T))
        return 0; // Undefined identifiers are 0 in #if.
      err("unexpected token '" + T + "' in #if expression");
      return 0;
    }
  };

  FileResolver &Resolver;
  const PpOptions &Opts;
  DiagnosticEngine &Diags;
  PpResult Result;
  std::map<std::string, Macro> Macros;
  /// Active include chain (frames: includer file + line).
  std::vector<IncludeFrame> Stack;
  /// Resolved paths currently being processed (cycle detection).
  std::vector<std::string> ActiveFiles;
  /// Every file entered, in inclusion order (folded into the stream hash).
  std::vector<std::string> ClosureNames;
  unsigned ErrorCount = 0;
};

} // namespace

PpResult stq::pp::preprocess(const std::string &MainName,
                             const std::string &MainText,
                             FileResolver &Resolver, const PpOptions &Options,
                             DiagnosticEngine &Diags) {
  Pp P(Resolver, Options, Diags);
  return P.run(MainName, MainText);
}

FileMap stq::pp::collectIncludeClosure(
    const std::vector<std::pair<std::string, std::string>> &Inputs,
    const PpOptions &Options) {
  FileMap Out;
  for (const auto &[Name, Text] : Inputs) {
    DiskResolver Resolver(&Out);
    DiagnosticEngine Scratch; // Real diagnostics come from the real run.
    preprocess(Name, Text, Resolver, Options, Scratch);
  }
  return Out;
}
