//===- Frontend.h - Multi-TU ingestion over the preprocessor ----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-C multi-translation-unit front end: each input file is
/// preprocessed (src/pp), parsed, sema-checked, and lowered as an
/// independent TU — stq::Session fans compileUnit() over its worker pool
/// — and a link step then unifies the per-TU symbol tables, diagnosing
/// duplicate definitions and qualifier-signature mismatches across TUs
/// the way a linker would.
///
/// Because the core pipeline's SourceLocs have no file dimension, every
/// TU-local diagnostic comes out in *post-expansion* coordinates.
/// remapDiagnostics() rewrites them against the TU's pp::LineMap: the
/// location becomes (physical line in the originating file), the
/// Diagnostic::File field carries the file name, and included or
/// macro-expanded lines grow "in file included from ..." / "in expansion
/// of macro ..." notes. The classic single-input pipeline never goes
/// through here and renders byte-identically to every release since the
/// seed.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FRONTEND_FRONTEND_H
#define STQ_FRONTEND_FRONTEND_H

#include "cminus/AST.h"
#include "pp/Preprocessor.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace stq::frontend {

/// One input file as the *client* read it (the daemon never touches
/// caller paths; stq-rpc-v1 ships name + text).
struct InputFile {
  std::string Name;
  std::string Text;
};

/// Everything compileUnit() needs besides the input itself. The qualifier
/// name lists come from the loaded qual::QualifierSet (names() for the
/// parser, refNames() for sema) and are read-only, so one CompileOptions
/// is safely shared by concurrent compileUnit() calls.
struct CompileOptions {
  pp::PpOptions Pp;
  /// When non-null, #include resolution reads this shipped map instead of
  /// the filesystem (daemon mode).
  const pp::FileMap *Files = nullptr;
  std::vector<std::string> QualNames;
  std::vector<std::string> RefQualNames;
};

/// One compiled translation unit.
struct TUnit {
  std::string Name;
  pp::PpResult Pp;
  /// Null when preprocessing failed outright; otherwise the parsed AST
  /// (possibly incomplete when FrontEndOk is false).
  std::unique_ptr<cminus::Program> Program;
  /// Preprocess + parse + sema + lower + verify all succeeded.
  bool FrontEndOk = false;
};

/// Compiles one TU: preprocess, parse, sema, lower, verify. Diagnostics
/// land in \p Diags in TU-local (post-expansion) form — run
/// remapDiagnostics() over them before rendering. Thread-safe against
/// other compileUnit() calls on distinct \p Diags engines.
TUnit compileUnit(const std::string &Name, const std::string &Text,
                  const CompileOptions &Opts, DiagnosticEngine &Diags);

/// Rewrites \p Diags[From..] from post-expansion coordinates to
/// file-attributed user coordinates using \p Map, inserting include-chain
/// and macro-expansion notes after each remapped diagnostic. Diagnostics
/// that already carry a file (the preprocessor's own) are left untouched;
/// location-free diagnostics are attributed to \p MainFile.
void remapDiagnostics(std::vector<Diagnostic> &Diags, size_t From,
                      const std::string &MainFile, const pp::LineMap &Map);

/// Cross-TU symbol resolution over compiled units, in input order:
/// a function may be declared (prototyped) in any number of TUs but
/// defined in at most one, every declaration must agree on the full
/// qualified signature (qualifier mismatches across TUs are exactly the
/// bugs the paper's checker exists to catch, so they are link errors
/// here), globals may be defined once, and struct definitions shared
/// through headers must agree field-for-field. Reports phase "link"
/// errors into \p Diags (already file-attributed via each TU's LineMap);
/// returns true when no link error was found.
bool linkUnits(const std::vector<TUnit> &TUs, DiagnosticEngine &Diags);

} // namespace stq::frontend

#endif // STQ_FRONTEND_FRONTEND_H
