//===- Frontend.cpp -------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "cminus/Type.h"

#include <map>

using namespace stq;
using namespace stq::frontend;

TUnit stq::frontend::compileUnit(const std::string &Name,
                                 const std::string &Text,
                                 const CompileOptions &Opts,
                                 DiagnosticEngine &Diags) {
  TUnit U;
  U.Name = Name;
  static const pp::FileMap EmptyMap;
  pp::DiskResolver Disk;
  pp::MemoryResolver Shipped(Opts.Files ? *Opts.Files : EmptyMap);
  pp::FileResolver *R = Opts.Files ? static_cast<pp::FileResolver *>(&Shipped)
                                   : &Disk;
  U.Pp = pp::preprocess(Name, Text, *R, Opts.Pp, Diags);
  if (!U.Pp.Ok)
    return U;
  U.Program = cminus::parseProgram(U.Pp.Text, Opts.QualNames, Diags);
  if (!U.Program || Diags.hasErrors())
    return U;
  if (!cminus::runSema(*U.Program, Opts.RefQualNames, Diags))
    return U;
  if (!cminus::lowerProgram(*U.Program, Diags) ||
      !cminus::verifyLoweredProgram(*U.Program, Diags))
    return U;
  U.FrontEndOk = true;
  return U;
}

namespace {

/// Builds the include-chain / macro-expansion notes for a line described
/// by \p Info (innermost includer first, matching the preprocessor's own
/// rendering).
std::vector<Diagnostic> locationNotes(const pp::LineMap &Map,
                                      const pp::LineInfo &Info) {
  std::vector<Diagnostic> Notes;
  if (!Info.Macro.empty()) {
    Diagnostic N;
    N.Severity = DiagSeverity::Note;
    N.Phase = "frontend";
    N.Message = "in expansion of macro '" + Info.Macro +
                "' (column is post-expansion)";
    Notes.push_back(std::move(N));
  }
  const std::vector<pp::IncludeFrame> &Stack = Map.stack(Info);
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    Diagnostic N;
    N.Severity = DiagSeverity::Note;
    N.Phase = "frontend";
    N.Message =
        "in file included from " + It->File + ":" + std::to_string(It->Line);
    Notes.push_back(std::move(N));
  }
  return Notes;
}

} // namespace

void stq::frontend::remapDiagnostics(std::vector<Diagnostic> &Diags,
                                     size_t From, const std::string &MainFile,
                                     const pp::LineMap &Map) {
  for (size_t I = From; I < Diags.size(); ++I) {
    Diagnostic &D = Diags[I];
    if (!D.File.empty())
      continue; // Already attributed (the preprocessor's own).
    if (!D.Loc.isValid()) {
      // Attachment notes stay bare; unit-level messages name the TU.
      if (D.Severity != DiagSeverity::Note)
        D.File = MainFile;
      continue;
    }
    const pp::LineInfo *Info = Map.info(D.Loc.Line);
    if (!Info) {
      D.File = MainFile;
      continue;
    }
    D.File = Map.file(*Info);
    D.Loc = SourceLoc(Info->PhysLine, D.Loc.Col);
    std::vector<Diagnostic> Notes = locationNotes(Map, *Info);
    Diags.insert(Diags.begin() + static_cast<long>(I + 1),
                 std::make_move_iterator(Notes.begin()),
                 std::make_move_iterator(Notes.end()));
    I += Notes.size();
  }
}

namespace {

/// One linked symbol's first sighting.
struct SymInfo {
  std::string Sig;   ///< Full qualified type spelling.
  std::string TU;    ///< Input file that first introduced it.
  std::string DefTU; ///< Input file that *defined* it (functions/globals).
  bool Defined = false;
};

/// The declaration's user-facing location: file + physical line via the
/// TU's line map, falling back to the TU name.
void attribute(Diagnostic &D, const TUnit &U, SourceLoc Loc) {
  if (const pp::LineInfo *Info = U.Pp.Map.info(Loc.Line)) {
    D.File = U.Pp.Map.file(*Info);
    D.Loc = SourceLoc(Info->PhysLine, Loc.Col);
    return;
  }
  D.File = U.Name;
  D.Loc = Loc;
}

void linkError(DiagnosticEngine &Diags, const TUnit &U, SourceLoc Loc,
               std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Phase = "link";
  D.Message = std::move(Message);
  attribute(D, U, Loc);
  Diags.report(std::move(D));
}

std::string funcSig(const cminus::FuncDecl &F) {
  std::string Sig = F.type()->str();
  if (F.Variadic)
    Sig += ", ...";
  return Sig;
}

std::string structSig(const cminus::StructDef &S) {
  std::string Sig = "{";
  for (const auto &F : S.Fields)
    Sig += " " + F.Ty->str() + " " + F.Name + ";";
  return Sig + " }";
}

} // namespace

bool stq::frontend::linkUnits(const std::vector<TUnit> &TUs,
                              DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  std::map<std::string, SymInfo> Functions, Globals, Structs;

  for (const TUnit &U : TUs) {
    if (!U.Program)
      continue;

    for (const cminus::StructDef *S : U.Program->Structs) {
      std::string Sig = structSig(*S);
      auto [It, Inserted] = Structs.try_emplace(S->Name);
      SymInfo &Sym = It->second;
      if (Inserted) {
        Sym = {Sig, U.Name, U.Name, true};
        continue;
      }
      if (Sym.Sig != Sig)
        linkError(Diags, U, S->Loc,
                  "conflicting definitions of struct '" + S->Name + "': '" +
                      Sym.Sig + "' (" + Sym.TU + ") vs '" + Sig + "' (" +
                      U.Name + ")");
    }

    for (const cminus::VarDecl *G : U.Program->Globals) {
      std::string Sig = G->DeclaredTy->str();
      auto [It, Inserted] = Globals.try_emplace(G->Name);
      SymInfo &Sym = It->second;
      if (Inserted) {
        Sym = {Sig, U.Name, U.Name, true};
        continue;
      }
      // C-minus has no `extern`: every global is a definition, so a
      // shared global must live in exactly one TU.
      linkError(Diags, U, G->Loc,
                Sym.Sig == Sig
                    ? "duplicate definition of global '" + G->Name +
                          "' (already defined in " + Sym.DefTU + ")"
                    : "conflicting definitions of global '" + G->Name +
                          "': '" + Sym.Sig + "' (" + Sym.DefTU + ") vs '" +
                          Sig + "' (" + U.Name + ")");
    }

    for (const cminus::FuncDecl *F : U.Program->Functions) {
      std::string Sig = funcSig(*F);
      auto [It, Inserted] = Functions.try_emplace(F->Name);
      SymInfo &Sym = It->second;
      if (Inserted) {
        Sym = {Sig, U.Name, F->isDefinition() ? U.Name : "",
               F->isDefinition()};
        continue;
      }
      if (Sym.Sig != Sig) {
        // The load-bearing link diagnostic: a caller compiled against a
        // prototype whose qualifiers disagree with another TU's view
        // would silently subvert the checker's guarantees.
        linkError(Diags, U, F->Loc,
                  "qualifier signature mismatch for function '" + F->Name +
                      "': '" + Sym.Sig + "' (" + Sym.TU + ") vs '" + Sig +
                      "' (" + U.Name + ")");
        continue;
      }
      if (F->isDefinition()) {
        if (Sym.Defined)
          linkError(Diags, U, F->Loc,
                    "duplicate definition of function '" + F->Name +
                        "' (already defined in " + Sym.DefTU + ")");
        Sym.Defined = true;
        if (Sym.DefTU.empty())
          Sym.DefTU = U.Name;
      }
    }
  }
  return Diags.errorCount() == Before;
}
