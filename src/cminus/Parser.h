//===- Parser.h - C-minus parser --------------------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for C-minus. Qualifier names are supplied by the
/// caller (they come from loaded qualifier definitions, mirroring the
/// paper's gcc-attribute macros) and are accepted in postfix position after
/// any type. The parser resolves variable names against lexical scopes as it
/// goes; C-minus is declare-before-use.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CMINUS_PARSER_H
#define STQ_CMINUS_PARSER_H

#include "cminus/AST.h"
#include "support/Diagnostics.h"
#include "support/Lexer.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace stq::cminus {

/// Parses one C-minus translation unit.
///
/// \param Source the program text.
/// \param QualifierNames identifiers to recognize as type qualifiers.
/// \param Diags receives parse errors (phase "parse").
/// \returns the parsed program; inspect Diags.hasErrors() for validity.
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      const std::vector<std::string>
                                          &QualifierNames,
                                      DiagnosticEngine &Diags);

namespace detail {

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::set<std::string> QualifierNames,
         DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), QualifierNames(std::move(QualifierNames)),
        Diags(Diags), Prog(std::make_unique<Program>()) {}

  std::unique_ptr<Program> run();

private:
  // Token plumbing.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind K) const { return peek().is(K); }
  bool checkIdent(const char *S) const { return peek().isIdent(S); }
  bool match(TokenKind K);
  bool matchIdent(const char *S);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Message);
  /// Skips tokens until a likely statement/declaration boundary.
  void synchronize();

  // Scopes.
  void pushScope();
  void popScope();
  VarDecl *lookupVar(const std::string &Name) const;
  void declareVar(VarDecl *Var);

  // Types.
  bool atTypeStart() const;
  /// Parses `basetype quals* ('*' quals*)*`; returns null on error.
  TypePtr parseType();
  std::vector<std::string> parseQuals();

  // Top level.
  void parseTopLevel();
  void parseStructDef();
  void parseFunctionRest(TypePtr RetTy, const std::string &Name,
                         SourceLoc Loc);
  void parseGlobalRest(TypePtr Ty, const std::string &Name, SourceLoc Loc);

  // Statements.
  Stmt *parseStmt();
  BlockStmt *parseBlock();
  Stmt *parseDeclStmt();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseFor();
  Stmt *parseReturn();
  Stmt *parseExprOrAssign();

  // Expressions (precedence climbing).
  Expr *parseExpr();
  Expr *parseLOr();
  Expr *parseLAnd();
  Expr *parseEquality();
  Expr *parseRelational();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  /// Requires \p E to be an l-value read and returns the l-value; reports an
  /// error and returns null otherwise.
  LValue *requireLValue(Expr *E, const char *Context);
  /// Makes a placeholder int expression after an error.
  Expr *makeErrorExpr(SourceLoc Loc);

  /// Hard cap on expression/statement nesting. Recursive descent uses the
  /// native stack, so an adversarial `((((...` tower would otherwise
  /// overflow it; past the cap the parser diagnoses once, resynchronizes,
  /// and keeps going.
  static constexpr unsigned MaxNestingDepth = 200;
  /// True when nesting is within bounds; otherwise reports the (one)
  /// too-deep diagnostic, skips to a statement boundary, and returns false.
  bool checkDepth();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::set<std::string> QualifierNames;
  DiagnosticEngine &Diags;
  std::unique_ptr<Program> Prog;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  unsigned Depth = 0;
  bool DepthErrorReported = false;
  /// Diagnostics cap for pathological input; the last slot reports the
  /// suppression itself.
  static constexpr unsigned MaxParseErrors = 64;
  unsigned ErrorCount = 0;
};

} // namespace detail

} // namespace stq::cminus

#endif // STQ_CMINUS_PARSER_H
