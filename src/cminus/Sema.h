//===- Sema.h - Base semantic analysis for C-minus --------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The base type system. Sema resolves calls, assigns a static type to
/// every expression and l-value, and checks *unqualified* structural
/// compatibility; all qualifier reasoning is deferred to the extensible
/// typechecker. Reference qualifiers are stripped from the r-types of
/// l-value reads here (paper section 2.2.1), which is why Sema must be told
/// which loaded qualifiers are reference qualifiers.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CMINUS_SEMA_H
#define STQ_CMINUS_SEMA_H

#include "cminus/AST.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace stq::cminus {

/// Runs base semantic analysis over \p Prog.
///
/// \param RefQualNames the loaded reference-qualifier names (stripped from
///        r-types of l-value reads).
/// \returns true if no errors were reported (phase "sema").
bool runSema(Program &Prog, const std::vector<std::string> &RefQualNames,
             DiagnosticEngine &Diags);

/// Returns true if a value of deep-unqualified type \p Src may flow into a
/// location of deep-unqualified type \p Dst under the base type system
/// (identical structure; char/int interchangeable; NULL and void* to any
/// pointer and back).
bool isBaseAssignable(const TypePtr &Src, const TypePtr &Dst);

} // namespace stq::cminus

#endif // STQ_CMINUS_SEMA_H
