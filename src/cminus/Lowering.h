//===- Lowering.h - CIL-style normalization ---------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed and Sema-checked program into the CIL-style discipline
/// the paper's qualifier checker assumes: expressions are side-effect-free
/// and calls appear only as instructions. Nested calls are hoisted into
/// fresh temporaries declared immediately before the enclosing statement.
///
/// Deliberate restrictions (reported as errors, matching what CIL would
/// instead restructure): calls are not permitted inside loop conditions,
/// for-steps, or short-circuit operands.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CMINUS_LOWERING_H
#define STQ_CMINUS_LOWERING_H

#include "cminus/AST.h"
#include "support/Diagnostics.h"

namespace stq::cminus {

/// Flattens nested calls. Requires Sema to have run (types are needed for
/// the introduced temporaries). Returns true on success (phase "lower").
bool lowerProgram(Program &Prog, DiagnosticEngine &Diags);

/// Verifies the lowered discipline: every call occurs in a direct
/// instruction position (call statement, or the immediate RHS of an
/// assignment/initializer, possibly under a single cast), and every
/// expression has a type. Returns true if the program conforms (phase
/// "verify").
bool verifyLoweredProgram(const Program &Prog, DiagnosticEngine &Diags);

/// If \p E is a call, or a call under a single cast (ignored for pattern
/// matching, as in the paper), returns the call; otherwise null.
CallExpr *getDirectCall(Expr *E);
const CallExpr *getDirectCall(const Expr *E);

} // namespace stq::cminus

#endif // STQ_CMINUS_LOWERING_H
