//===- Sema.cpp -----------------------------------------------------------===//

#include "cminus/Sema.h"

#include "support/Trace.h"

#include <cassert>

using namespace stq;
using namespace stq::cminus;

bool stq::cminus::isBaseAssignable(const TypePtr &Src, const TypePtr &Dst) {
  TypePtr S = Type::deepUnqualified(Src);
  TypePtr D = Type::deepUnqualified(Dst);
  if (Type::equals(S, D))
    return true;
  // char and int interconvert.
  if (S->isArithmetic() && D->isArithmetic())
    return true;
  // void* converts to and from any pointer (C rules; malloc idiom).
  if (S->isPointer() && D->isPointer()) {
    if (S->pointee()->isVoid() || D->pointee()->isVoid())
      return true;
    // char* and void* aside, pointees must agree exactly.
    return Type::equals(S->pointee(), D->pointee());
  }
  return false;
}

namespace {

class Sema {
public:
  Sema(Program &Prog, const std::vector<std::string> &RefQualNames,
       DiagnosticEngine &Diags)
      : Prog(Prog), RefQuals(RefQualNames), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, "sema", Message);
  }

  void checkFunction(FuncDecl *Fn);
  void checkStmt(Stmt *S);
  /// Checks an initialization or assignment of \p RHS into type \p DstTy.
  void checkAssignable(const TypePtr &DstTy, Expr *RHS, SourceLoc Loc,
                       const char *What);

  /// Computes and stores the type of \p E; returns it (never null; falls
  /// back to int after reporting an error).
  TypePtr typeOf(Expr *E);
  TypePtr typeOfLValue(LValue *LV);
  TypePtr typeOfCall(CallExpr *Call);

  /// Strips reference qualifiers from the top level of \p T (r-type rule).
  TypePtr stripRefQuals(const TypePtr &T) {
    return Type::withoutQualsIn(T, RefQuals);
  }

  Program &Prog;
  const std::vector<std::string> &RefQuals;
  DiagnosticEngine &Diags;
  FuncDecl *CurrentFn = nullptr;
};

} // namespace

bool Sema::run() {
  unsigned ErrorsBefore = Diags.errorCount();
  for (VarDecl *G : Prog.Globals)
    if (G->Init)
      checkAssignable(G->DeclaredTy, G->Init, G->Loc, "global initializer");
  for (FuncDecl *Fn : Prog.Functions)
    if (Fn->isDefinition())
      checkFunction(Fn);
  return Diags.errorCount() == ErrorsBefore;
}

void Sema::checkFunction(FuncDecl *Fn) {
  CurrentFn = Fn;
  if (Type::withoutQuals(Fn->RetTy)->isStruct())
    error(Fn->Loc, "functions cannot return struct values; return a "
                   "pointer instead");
  for (const VarDecl *P : Fn->Params)
    if (Type::withoutQuals(P->DeclaredTy)->isStruct())
      error(P->Loc, "struct parameters are not supported; pass a pointer");
  checkStmt(Fn->Body);
  CurrentFn = nullptr;
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (Stmt *Sub : cast<BlockStmt>(S)->Stmts)
      checkStmt(Sub);
    return;
  case Stmt::Kind::Decl: {
    VarDecl *Var = cast<DeclStmt>(S)->Var;
    if (Var->DeclaredTy->isVoid()) {
      error(Var->Loc, "variable '" + Var->Name + "' has void type");
      return;
    }
    if (Var->Init)
      checkAssignable(Var->DeclaredTy, Var->Init, Var->Loc, "initializer");
    return;
  }
  case Stmt::Kind::Assign: {
    auto *Assign = cast<AssignStmt>(S);
    TypePtr LHSTy = typeOfLValue(Assign->LHS);
    checkAssignable(LHSTy, Assign->RHS, Assign->Loc, "assignment");
    return;
  }
  case Stmt::Kind::CallStmt:
    typeOf(cast<CallStmt>(S)->Call);
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    TypePtr CondTy = typeOf(If->Cond);
    if (!CondTy->isArithmetic() && !CondTy->isPointer())
      error(If->Cond->Loc, "if condition must be arithmetic or a pointer");
    checkStmt(If->Then);
    checkStmt(If->Else);
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    TypePtr CondTy = typeOf(While->Cond);
    if (!CondTy->isArithmetic() && !CondTy->isPointer())
      error(While->Cond->Loc,
            "while condition must be arithmetic or a pointer");
    checkStmt(While->Body);
    return;
  }
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    checkStmt(For->Init);
    if (For->Cond) {
      TypePtr CondTy = typeOf(For->Cond);
      if (!CondTy->isArithmetic() && !CondTy->isPointer())
        error(For->Cond->Loc,
              "for condition must be arithmetic or a pointer");
    }
    checkStmt(For->Step);
    checkStmt(For->Body);
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    assert(CurrentFn && "return outside function");
    if (Ret->Value) {
      if (CurrentFn->RetTy->isVoid())
        error(Ret->Loc, "void function '" + CurrentFn->Name +
                            "' returns a value");
      else
        checkAssignable(CurrentFn->RetTy, Ret->Value, Ret->Loc,
                        "return value");
    } else if (!CurrentFn->RetTy->isVoid()) {
      error(Ret->Loc,
            "non-void function '" + CurrentFn->Name + "' returns no value");
    }
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void Sema::checkAssignable(const TypePtr &DstTy, Expr *RHS, SourceLoc Loc,
                           const char *What) {
  TypePtr RHSTy = typeOf(RHS);
  if (isa<NullConstExpr>(RHS) && DstTy->isPointer())
    return;
  // Whole-struct copies are outside the C-minus subset (CIL would expand
  // them field by field); structs are manipulated through fields and
  // pointers.
  if (Type::withoutQuals(DstTy)->isStruct()) {
    error(Loc, std::string("struct values cannot be copied in ") + What +
                   "; assign the fields individually");
    return;
  }
  if (!isBaseAssignable(RHSTy, DstTy))
    error(Loc, std::string("incompatible types in ") + What + ": cannot use '" +
                   RHSTy->str() + "' as '" + DstTy->str() + "'");
}

TypePtr Sema::typeOfLValue(LValue *LV) {
  if (LV->Ty)
    return LV->Ty;
  TypePtr Cur;
  if (LV->isVar()) {
    Cur = LV->Var->DeclaredTy;
  } else {
    TypePtr AddrTy = typeOf(LV->Addr);
    if (!AddrTy->isPointer()) {
      error(LV->Loc, "cannot dereference non-pointer type '" + AddrTy->str() +
                         "'");
      Cur = Type::getInt();
    } else {
      Cur = AddrTy->pointee();
    }
  }
  for (const std::string &Field : LV->Fields) {
    TypePtr Bare = Type::withoutQuals(Cur);
    if (!Bare->isStruct()) {
      error(LV->Loc, "member access on non-struct type '" + Cur->str() + "'");
      Cur = Type::getInt();
      break;
    }
    StructDef *Def = Prog.findStruct(Bare->structName());
    if (!Def) {
      error(LV->Loc, "unknown struct '" + Bare->structName() + "'");
      Cur = Type::getInt();
      break;
    }
    const StructDef::Field *F = Def->findField(Field);
    if (!F) {
      error(LV->Loc, "struct '" + Def->Name + "' has no field '" + Field +
                         "'");
      Cur = Type::getInt();
      break;
    }
    Cur = F->Ty;
  }
  LV->Ty = Cur;
  return Cur;
}

TypePtr Sema::typeOfCall(CallExpr *Call) {
  FuncDecl *Callee = Prog.findFunction(Call->CalleeName);
  // Builtin allocation and I/O routines are available without declaration,
  // standing in for the paper's alternate library-header signatures.
  if (!Callee) {
    if (Call->CalleeName == "malloc") {
      Call->IsAlloc = true;
      for (Expr *Arg : Call->Args)
        typeOf(Arg);
      if (Call->Args.size() != 1)
        error(Call->Loc, "malloc takes exactly one argument");
      return Type::getPointer(Type::getVoid());
    }
    if (Call->CalleeName == "free") {
      for (Expr *Arg : Call->Args)
        typeOf(Arg);
      if (Call->Args.size() != 1)
        error(Call->Loc, "free takes exactly one argument");
      return Type::getVoid();
    }
    if (Call->CalleeName == "printf") {
      for (Expr *Arg : Call->Args)
        typeOf(Arg);
      if (Call->Args.empty())
        error(Call->Loc, "printf requires a format string");
      return Type::getInt();
    }
    error(Call->Loc, "call to undeclared function '" + Call->CalleeName +
                         "'");
    for (Expr *Arg : Call->Args)
      typeOf(Arg);
    return Type::getInt();
  }

  Call->Callee = Callee;
  if (Call->CalleeName == "malloc")
    Call->IsAlloc = true;
  size_t NumParams = Callee->Params.size();
  if (Call->Args.size() < NumParams ||
      (Call->Args.size() > NumParams && !Callee->Variadic)) {
    error(Call->Loc, "wrong number of arguments to '" + Callee->Name +
                         "': expected " + std::to_string(NumParams) +
                         (Callee->Variadic ? "+" : "") + ", got " +
                         std::to_string(Call->Args.size()));
  }
  for (size_t I = 0; I < Call->Args.size(); ++I) {
    if (I < NumParams)
      checkAssignable(Callee->Params[I]->DeclaredTy, Call->Args[I],
                      Call->Args[I]->Loc, "argument");
    else
      typeOf(Call->Args[I]);
  }
  return Callee->RetTy;
}

TypePtr Sema::typeOf(Expr *E) {
  if (E->Ty)
    return E->Ty;
  TypePtr Result;
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
    Result = Type::getInt();
    break;
  case Expr::Kind::StrConst:
    Result = Type::getPointer(Type::getChar());
    break;
  case Expr::Kind::NullConst:
    Result = Type::getPointer(Type::getVoid());
    break;
  case Expr::Kind::LValRead: {
    auto *Read = cast<LValReadExpr>(E);
    TypePtr LVTy = typeOfLValue(Read->LV);
    // Reference qualifiers are not part of the r-type (section 2.2.1).
    Result = stripRefQuals(LVTy);
    break;
  }
  case Expr::Kind::AddrOf: {
    auto *Addr = cast<AddrOfExpr>(E);
    // Reference qualifiers describe the l-value's address identity, not its
    // contents, so they do not become part of the pointee type.
    Result = Type::getPointer(stripRefQuals(typeOfLValue(Addr->LV)));
    break;
  }
  case Expr::Kind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    TypePtr SubTy = typeOf(Un->Sub);
    if (Un->Op == UnaryOp::Not) {
      if (!SubTy->isArithmetic() && !SubTy->isPointer())
        error(E->Loc, "operand of '!' must be arithmetic or a pointer");
    } else if (!SubTy->isArithmetic()) {
      error(E->Loc, std::string("operand of unary '") +
                        unaryOpSpelling(Un->Op) + "' must be arithmetic");
    }
    Result = Type::getInt();
    break;
  }
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    TypePtr L = typeOf(Bin->LHS);
    TypePtr R = typeOf(Bin->RHS);
    switch (Bin->Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      // Pointer arithmetic keeps the pointer's type (the paper's logical
      // model of memory: p+i has the type of p).
      if (L->isPointer() && R->isArithmetic()) {
        Result = L;
      } else if (Bin->Op == BinaryOp::Add && L->isArithmetic() &&
                 R->isPointer()) {
        Result = R;
      } else if (L->isArithmetic() && R->isArithmetic()) {
        Result = Type::getInt();
      } else if (Bin->Op == BinaryOp::Sub && L->isPointer() &&
                 R->isPointer()) {
        Result = Type::getInt();
      } else {
        error(E->Loc, std::string("invalid operands to '") +
                          binaryOpSpelling(Bin->Op) + "': '" + L->str() +
                          "' and '" + R->str() + "'");
        Result = Type::getInt();
      }
      break;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem:
      if (!L->isArithmetic() || !R->isArithmetic())
        error(E->Loc, std::string("invalid operands to '") +
                          binaryOpSpelling(Bin->Op) + "'");
      Result = Type::getInt();
      break;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      bool BothArith = L->isArithmetic() && R->isArithmetic();
      bool BothPtr = L->isPointer() && R->isPointer();
      bool NullCmp = (L->isPointer() && isa<NullConstExpr>(Bin->RHS)) ||
                     (R->isPointer() && isa<NullConstExpr>(Bin->LHS));
      if (!BothArith && !BothPtr && !NullCmp)
        error(E->Loc, std::string("invalid comparison between '") + L->str() +
                          "' and '" + R->str() + "'");
      Result = Type::getInt();
      break;
    }
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      Result = Type::getInt();
      break;
    }
    break;
  }
  case Expr::Kind::Cast: {
    auto *Cast_ = cast<CastExpr>(E);
    TypePtr SubTy = typeOf(Cast_->Sub);
    TypePtr S = Type::deepUnqualified(SubTy);
    TypePtr D = Type::deepUnqualified(Cast_->Target);
    bool Ok = (S->isArithmetic() || S->isPointer()) &&
              (D->isArithmetic() || D->isPointer());
    // Identity and qualifier-only casts are always fine.
    if (!Ok && !Type::equals(S, D))
      error(E->Loc, "invalid cast from '" + SubTy->str() + "' to '" +
                        Cast_->Target->str() + "'");
    Result = Cast_->Target;
    break;
  }
  case Expr::Kind::Call:
    Result = typeOfCall(cast<CallExpr>(E));
    break;
  case Expr::Kind::SizeofType:
    Result = Type::getInt();
    break;
  }
  assert(Result && "expression type not computed");
  E->Ty = Result;
  return Result;
}

bool stq::cminus::runSema(Program &Prog,
                          const std::vector<std::string> &RefQualNames,
                          DiagnosticEngine &Diags) {
  trace::Span Span("sema");
  Sema S(Prog, RefQualNames, Diags);
  return S.run();
}
