//===- Printer.h - C-minus pretty printer -----------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a (possibly lowered) program back to C-minus source. Used for
/// golden tests, human inspection, and emitting instrumented programs.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CMINUS_PRINTER_H
#define STQ_CMINUS_PRINTER_H

#include "cminus/AST.h"

#include <string>

namespace stq::cminus {

/// Renders \p E as C-minus source.
std::string printExpr(const Expr *E);
/// Renders \p LV as C-minus source.
std::string printLValue(const LValue *LV);
/// Renders \p S with the given starting indentation (2 spaces per level).
std::string printStmt(const Stmt *S, unsigned Indent = 0);
/// Renders the whole program.
std::string printProgram(const Program &Prog);

} // namespace stq::cminus

#endif // STQ_CMINUS_PRINTER_H
