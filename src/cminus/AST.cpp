//===- AST.cpp ------------------------------------------------------------===//

#include "cminus/AST.h"

using namespace stq::cminus;

const StructDef::Field *StructDef::findField(
    const std::string &FieldName) const {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

TypePtr FuncDecl::type() const {
  std::vector<TypePtr> ParamTys;
  ParamTys.reserve(Params.size());
  for (const VarDecl *P : Params)
    ParamTys.push_back(P->DeclaredTy);
  return Type::getFunction(RetTy, std::move(ParamTys), Variadic);
}

const char *stq::cminus::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  }
  return "?";
}

const char *stq::cminus::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  }
  return "?";
}

FuncDecl *Program::findFunction(const std::string &Name) const {
  for (FuncDecl *F : Functions)
    if (F->Name == Name)
      return F;
  return nullptr;
}

StructDef *Program::findStruct(const std::string &Name) const {
  for (StructDef *S : Structs)
    if (S->Name == Name)
      return S;
  return nullptr;
}
