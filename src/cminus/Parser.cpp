//===- Parser.cpp ---------------------------------------------------------===//

#include "cminus/Parser.h"

#include "support/Trace.h"

#include <cassert>

using namespace stq;
using namespace stq::cminus;
using namespace stq::cminus::detail;

std::unique_ptr<Program> stq::cminus::parseProgram(
    const std::string &Source,
    const std::vector<std::string> &QualifierNames, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens;
  {
    trace::Span LexSpan("lex");
    Tokens = Lex.tokenize();
  }
  trace::Span ParseSpan("parse");
  std::set<std::string> QualSet(QualifierNames.begin(), QualifierNames.end());
  Parser P(std::move(Tokens), std::move(QualSet), Diags);
  return P.run();
}

//===----------------------------------------------------------------------===//
// Token plumbing
//===----------------------------------------------------------------------===//

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile sentinel.
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::matchIdent(const char *S) {
  if (!checkIdent(S))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (match(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::error(const std::string &Message) {
  // Cap the flood: malformed input (fuzzed bytes, deep-nesting recovery)
  // can otherwise produce one diagnostic per token.
  ++ErrorCount;
  if (ErrorCount > MaxParseErrors)
    return;
  if (ErrorCount == MaxParseErrors) {
    Diags.error(peek().Loc, "parse",
                "too many parse errors; suppressing further diagnostics");
    return;
  }
  Diags.error(peek().Loc, "parse", Message);
}

void Parser::synchronize() {
  while (!check(TokenKind::EndOfFile)) {
    if (match(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace))
      return;
    advance();
  }
}

namespace {
/// Increments a nesting counter for the lifetime of one recursive parse
/// call.
struct DepthScope {
  unsigned &Depth;
  explicit DepthScope(unsigned &Depth) : Depth(Depth) { ++Depth; }
  ~DepthScope() { --Depth; }
};
} // namespace

bool Parser::checkDepth() {
  if (Depth < MaxNestingDepth)
    return true;
  if (!DepthErrorReported) {
    error("nesting too deep: more than " + std::to_string(MaxNestingDepth) +
          " levels of nested expressions or statements");
    DepthErrorReported = true;
  }
  synchronize();
  return false;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Parser::pushScope() { Scopes.emplace_back(); }

void Parser::popScope() {
  assert(!Scopes.empty() && "popScope without matching push");
  Scopes.pop_back();
}

VarDecl *Parser::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Parser::declareVar(VarDecl *Var) {
  assert(!Scopes.empty() && "declaration outside any scope");
  auto [It, Inserted] = Scopes.back().emplace(Var->Name, Var);
  if (!Inserted)
    Diags.error(Var->Loc, "parse",
                "redeclaration of '" + Var->Name + "' in the same scope");
  (void)It;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::atTypeStart() const {
  return checkIdent("void") || checkIdent("int") || checkIdent("char") ||
         checkIdent("struct");
}

std::vector<std::string> Parser::parseQuals() {
  std::vector<std::string> Quals;
  while (check(TokenKind::Identifier) &&
         QualifierNames.count(peek().Text) != 0)
    Quals.push_back(advance().Text);
  return Quals;
}

TypePtr Parser::parseType() {
  TypePtr Base;
  if (matchIdent("void")) {
    Base = Type::getVoid();
  } else if (matchIdent("int")) {
    Base = Type::getInt();
  } else if (matchIdent("char")) {
    Base = Type::getChar();
  } else if (matchIdent("struct")) {
    if (!check(TokenKind::Identifier)) {
      error("expected struct name");
      return nullptr;
    }
    Base = Type::getStruct(advance().Text);
  } else {
    error("expected type");
    return nullptr;
  }
  std::vector<std::string> Quals = parseQuals();
  if (!Quals.empty())
    Base = Type::withQuals(Base, std::move(Quals));
  while (match(TokenKind::Star)) {
    Base = Type::getPointer(Base);
    Quals = parseQuals();
    if (!Quals.empty())
      Base = Type::withQuals(Base, std::move(Quals));
  }
  return Base;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::run() {
  pushScope(); // Global scope.
  while (!check(TokenKind::EndOfFile)) {
    size_t Before = Pos;
    parseTopLevel();
    // Guarantee progress on malformed input (e.g. a stray '}' at top
    // level, where synchronize() deliberately stops without consuming).
    if (Pos == Before)
      advance();
  }
  popScope();
  return std::move(Prog);
}

void Parser::parseTopLevel() {
  // Struct definition: 'struct' IDENT '{'.
  if (checkIdent("struct") && peek(1).is(TokenKind::Identifier) &&
      peek(2).is(TokenKind::LBrace)) {
    parseStructDef();
    return;
  }
  if (!atTypeStart()) {
    error("expected declaration at top level, found " +
          std::string(tokenKindName(peek().Kind)));
    synchronize();
    return;
  }
  SourceLoc Loc = peek().Loc;
  TypePtr Ty = parseType();
  if (!Ty) {
    synchronize();
    return;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected declarator name");
    synchronize();
    return;
  }
  std::string Name = advance().Text;
  if (check(TokenKind::LParen))
    parseFunctionRest(Ty, Name, Loc);
  else
    parseGlobalRest(Ty, Name, Loc);
}

void Parser::parseStructDef() {
  SourceLoc Loc = advance().Loc; // 'struct'
  std::string Name = advance().Text;
  StructDef *Def = Prog->Ctx.createStruct(Name, Loc);
  expect(TokenKind::LBrace, "after struct name");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    TypePtr FieldTy = parseType();
    if (!FieldTy) {
      synchronize();
      continue;
    }
    if (!check(TokenKind::Identifier)) {
      error("expected field name");
      synchronize();
      continue;
    }
    std::string FieldName = advance().Text;
    if (Def->findField(FieldName))
      error("duplicate field '" + FieldName + "'");
    Def->Fields.push_back({FieldName, FieldTy});
    expect(TokenKind::Semi, "after struct field");
  }
  expect(TokenKind::RBrace, "to close struct definition");
  expect(TokenKind::Semi, "after struct definition");
  Prog->Structs.push_back(Def);
}

void Parser::parseFunctionRest(TypePtr RetTy, const std::string &Name,
                               SourceLoc Loc) {
  FuncDecl *Fn = Prog->Ctx.createFunc(Name, RetTy, Loc);
  expect(TokenKind::LParen, "after function name");
  pushScope(); // Parameter scope.
  if (checkIdent("void") && peek(1).is(TokenKind::RParen)) {
    advance(); // `f(void)`: explicit empty parameter list.
  } else if (!check(TokenKind::RParen)) {
    while (true) {
      if (match(TokenKind::Ellipsis)) {
        Fn->Variadic = true;
        break;
      }
      TypePtr ParamTy = parseType();
      if (!ParamTy)
        break;
      std::string ParamName;
      SourceLoc ParamLoc = peek().Loc;
      if (check(TokenKind::Identifier) &&
          QualifierNames.count(peek().Text) == 0)
        ParamName = advance().Text;
      VarDecl *Param = Prog->Ctx.createVar(ParamName, ParamTy, ParamLoc);
      Param->IsParam = true;
      if (!ParamName.empty())
        declareVar(Param);
      Fn->Params.push_back(Param);
      if (!match(TokenKind::Comma))
        break;
    }
  }
  expect(TokenKind::RParen, "to close parameter list");

  // Merge with a previous prototype if one exists.
  if (FuncDecl *Prev = Prog->findFunction(Name)) {
    if (Prev->isDefinition() && check(TokenKind::LBrace))
      Diags.error(Loc, "parse", "redefinition of function '" + Name + "'");
  } else {
    Prog->Functions.push_back(Fn);
  }

  if (check(TokenKind::LBrace)) {
    // If a prototype exists, replace its entry so calls resolve to the
    // definition.
    for (auto &Entry : Prog->Functions)
      if (Entry->Name == Name)
        Entry = Fn;
    Fn->Body = parseBlock();
  } else {
    expect(TokenKind::Semi, "after function prototype");
  }
  popScope();
}

void Parser::parseGlobalRest(TypePtr Ty, const std::string &Name,
                             SourceLoc Loc) {
  VarDecl *Var = Prog->Ctx.createVar(Name, Ty, Loc);
  Var->IsGlobal = true;
  declareVar(Var);
  Prog->Globals.push_back(Var);
  if (match(TokenKind::Eq))
    Var->Init = parseExpr();
  expect(TokenKind::Semi, "after global declaration");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open block");
  auto *Block = Prog->Ctx.createStmt<BlockStmt>(Loc);
  pushScope();
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (Stmt *S = parseStmt())
      Block->Stmts.push_back(S);
  }
  popScope();
  expect(TokenKind::RBrace, "to close block");
  return Block;
}

Stmt *Parser::parseStmt() {
  if (!checkDepth())
    return nullptr;
  DepthScope Scope(Depth);
  if (check(TokenKind::LBrace))
    return parseBlock();
  if (atTypeStart())
    return parseDeclStmt();
  if (checkIdent("if"))
    return parseIf();
  if (checkIdent("while"))
    return parseWhile();
  if (checkIdent("for"))
    return parseFor();
  if (checkIdent("return"))
    return parseReturn();
  if (checkIdent("break")) {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semi, "after 'break'");
    return Prog->Ctx.createStmt<BreakStmt>(Loc);
  }
  if (checkIdent("continue")) {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semi, "after 'continue'");
    return Prog->Ctx.createStmt<ContinueStmt>(Loc);
  }
  return parseExprOrAssign();
}

Stmt *Parser::parseDeclStmt() {
  SourceLoc Loc = peek().Loc;
  TypePtr Ty = parseType();
  if (!Ty) {
    synchronize();
    return nullptr;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected variable name in declaration");
    synchronize();
    return nullptr;
  }
  std::string Name = advance().Text;
  VarDecl *Var = Prog->Ctx.createVar(Name, Ty, Loc);
  if (match(TokenKind::Eq))
    Var->Init = parseExpr();
  declareVar(Var);
  expect(TokenKind::Semi, "after declaration");
  return Prog->Ctx.createStmt<DeclStmt>(Var, Loc);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "to close if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (matchIdent("else"))
    Else = parseStmt();
  return Prog->Ctx.createStmt<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "to close while condition");
  Stmt *Body = parseStmt();
  return Prog->Ctx.createStmt<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");
  pushScope();
  Stmt *Init = nullptr;
  if (!check(TokenKind::Semi)) {
    if (atTypeStart())
      Init = parseDeclStmt(); // Consumes the ';'.
    else
      Init = parseExprOrAssign(); // Consumes the ';'.
  } else {
    advance();
  }
  Expr *Cond = nullptr;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for condition");
  Stmt *Step = nullptr;
  if (!check(TokenKind::RParen)) {
    // The step is an assignment or call without the trailing ';'.
    Expr *E = parseExpr();
    if (match(TokenKind::Eq)) {
      LValue *LV = requireLValue(E, "on the left of '='");
      Expr *RHS = parseExpr();
      if (LV)
        Step = Prog->Ctx.createStmt<AssignStmt>(LV, RHS, E->Loc);
    } else if (auto *Call = dyn_cast<CallExpr>(E)) {
      Step = Prog->Ctx.createStmt<CallStmt>(Call, E->Loc);
    } else {
      error("for-step must be an assignment or a call");
    }
  }
  expect(TokenKind::RParen, "to close for header");
  Stmt *Body = parseStmt();
  popScope();
  return Prog->Ctx.createStmt<ForStmt>(Init, Cond, Step, Body, Loc);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = advance().Loc; // 'return'
  Expr *Value = nullptr;
  if (!check(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "after return statement");
  return Prog->Ctx.createStmt<ReturnStmt>(Value, Loc);
}

Stmt *Parser::parseExprOrAssign() {
  SourceLoc Loc = peek().Loc;
  Expr *E = parseExpr();
  if (match(TokenKind::Eq)) {
    LValue *LV = requireLValue(E, "on the left of '='");
    Expr *RHS = parseExpr();
    expect(TokenKind::Semi, "after assignment");
    if (!LV)
      return nullptr;
    return Prog->Ctx.createStmt<AssignStmt>(LV, RHS, Loc);
  }
  expect(TokenKind::Semi, "after expression statement");
  if (auto *Call = dyn_cast<CallExpr>(E))
    return Prog->Ctx.createStmt<CallStmt>(Call, Loc);
  error("expression statement must be a call");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

LValue *Parser::requireLValue(Expr *E, const char *Context) {
  if (auto *Read = dyn_cast<LValReadExpr>(E))
    return Read->LV;
  error(std::string("expected an l-value ") + Context);
  return nullptr;
}

Expr *Parser::makeErrorExpr(SourceLoc Loc) {
  return Prog->Ctx.createExpr<IntConstExpr>(0, Loc);
}

Expr *Parser::parseExpr() {
  if (!checkDepth())
    return makeErrorExpr(peek().Loc);
  DepthScope Scope(Depth);
  return parseLOr();
}

Expr *Parser::parseLOr() {
  Expr *LHS = parseLAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseLAnd();
    LHS = Prog->Ctx.createExpr<BinaryExpr>(BinaryOp::LOr, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseLAnd() {
  Expr *LHS = parseEquality();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseEquality();
    LHS = Prog->Ctx.createExpr<BinaryExpr>(BinaryOp::LAnd, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseEquality() {
  Expr *LHS = parseRelational();
  while (check(TokenKind::EqEq) || check(TokenKind::BangEq)) {
    BinaryOp Op = check(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseRelational();
    LHS = Prog->Ctx.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseRelational() {
  Expr *LHS = parseAdditive();
  while (check(TokenKind::Less) || check(TokenKind::LessEq) ||
         check(TokenKind::Greater) || check(TokenKind::GreaterEq)) {
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else
      Op = BinaryOp::Ge;
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseAdditive();
    LHS = Prog->Ctx.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseAdditive() {
  Expr *LHS = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinaryOp Op = check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseMultiplicative();
    LHS = Prog->Ctx.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseMultiplicative() {
  Expr *LHS = parseUnary();
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else
      Op = BinaryOp::Rem;
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseUnary();
    LHS = Prog->Ctx.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseUnary() {
  // Unary operators and casts recurse directly into parseUnary without
  // passing through parseExpr, so a `-----...` tower needs its own guard.
  if (!checkDepth())
    return makeErrorExpr(peek().Loc);
  DepthScope Scope(Depth);
  SourceLoc Loc = peek().Loc;
  if (match(TokenKind::Minus)) {
    Expr *Sub = parseUnary();
    // Fold negative integer literals into constants (as CIL does), so
    // Const-classifier patterns match them.
    if (auto *IC = dyn_cast<IntConstExpr>(Sub))
      return Prog->Ctx.createExpr<IntConstExpr>(-IC->Value, Loc);
    return Prog->Ctx.createExpr<UnaryExpr>(UnaryOp::Neg, Sub, Loc);
  }
  if (match(TokenKind::Bang)) {
    Expr *Sub = parseUnary();
    return Prog->Ctx.createExpr<UnaryExpr>(UnaryOp::Not, Sub, Loc);
  }
  if (match(TokenKind::Tilde)) {
    Expr *Sub = parseUnary();
    return Prog->Ctx.createExpr<UnaryExpr>(UnaryOp::BitNot, Sub, Loc);
  }
  if (match(TokenKind::Star)) {
    Expr *Sub = parseUnary();
    LValue *LV = Prog->Ctx.createLValue(Sub, Loc);
    return Prog->Ctx.createExpr<LValReadExpr>(LV, Loc);
  }
  if (match(TokenKind::Amp)) {
    Expr *Sub = parseUnary();
    LValue *LV = requireLValue(Sub, "after '&'");
    if (!LV)
      return makeErrorExpr(Loc);
    return Prog->Ctx.createExpr<AddrOfExpr>(LV, Loc);
  }
  // Cast: '(' type ')' unary.
  if (check(TokenKind::LParen) && peek(1).is(TokenKind::Identifier) &&
      (peek(1).isIdent("void") || peek(1).isIdent("int") ||
       peek(1).isIdent("char") || peek(1).isIdent("struct"))) {
    advance(); // '('
    TypePtr Target = parseType();
    expect(TokenKind::RParen, "to close cast");
    Expr *Sub = parseUnary();
    if (!Target)
      return Sub;
    return Prog->Ctx.createExpr<CastExpr>(Target, Sub, Loc);
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    SourceLoc Loc = peek().Loc;
    if (match(TokenKind::LBracket)) {
      // a[i] desugars to *(a + i); the logical memory model means the
      // element type equals the pointer's pointee type.
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "to close index");
      Expr *Addr =
          Prog->Ctx.createExpr<BinaryExpr>(BinaryOp::Add, E, Index, Loc);
      LValue *LV = Prog->Ctx.createLValue(Addr, Loc);
      E = Prog->Ctx.createExpr<LValReadExpr>(LV, Loc);
      continue;
    }
    if (match(TokenKind::Dot)) {
      if (!check(TokenKind::Identifier)) {
        error("expected field name after '.'");
        return E;
      }
      std::string Field = advance().Text;
      LValue *LV = requireLValue(E, "before '.'");
      if (!LV)
        return makeErrorExpr(Loc);
      LV->Fields.push_back(Field);
      // Reuse the same read expression; its type is recomputed by Sema.
      continue;
    }
    if (match(TokenKind::Arrow)) {
      if (!check(TokenKind::Identifier)) {
        error("expected field name after '->'");
        return E;
      }
      std::string Field = advance().Text;
      LValue *LV = Prog->Ctx.createLValue(E, Loc);
      LV->Fields.push_back(Field);
      E = Prog->Ctx.createExpr<LValReadExpr>(LV, Loc);
      continue;
    }
    break;
  }
  return E;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::IntLiteral)) {
    int64_t V = advance().IntValue;
    return Prog->Ctx.createExpr<IntConstExpr>(V, Loc);
  }
  if (check(TokenKind::CharLiteral)) {
    int64_t V = advance().IntValue;
    return Prog->Ctx.createExpr<IntConstExpr>(V, Loc);
  }
  if (check(TokenKind::StringLiteral)) {
    std::string S = advance().Text;
    return Prog->Ctx.createExpr<StrConstExpr>(std::move(S), Loc);
  }
  if (checkIdent("NULL")) {
    advance();
    return Prog->Ctx.createExpr<NullConstExpr>(Loc);
  }
  if (checkIdent("sizeof")) {
    advance();
    expect(TokenKind::LParen, "after 'sizeof'");
    TypePtr Target = parseType();
    expect(TokenKind::RParen, "to close sizeof");
    if (!Target)
      return makeErrorExpr(Loc);
    return Prog->Ctx.createExpr<SizeofTypeExpr>(Target, Loc);
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (check(TokenKind::LParen)) {
      advance();
      std::vector<Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close call");
      return Prog->Ctx.createExpr<CallExpr>(Name, std::move(Args), Loc);
    }
    VarDecl *Var = lookupVar(Name);
    if (!Var) {
      error("use of undeclared identifier '" + Name + "'");
      return makeErrorExpr(Loc);
    }
    LValue *LV = Prog->Ctx.createLValue(Var, Loc);
    return Prog->Ctx.createExpr<LValReadExpr>(LV, Loc);
  }
  if (match(TokenKind::LParen)) {
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  error("expected expression, found " +
        std::string(tokenKindName(peek().Kind)));
  advance();
  return makeErrorExpr(Loc);
}
