//===- Lowering.cpp -------------------------------------------------------===//

#include "cminus/Lowering.h"

#include "support/Trace.h"

#include <cassert>
#include <string>
#include <vector>

using namespace stq;
using namespace stq::cminus;

CallExpr *stq::cminus::getDirectCall(Expr *E) {
  if (auto *Call = dyn_cast<CallExpr>(E))
    return Call;
  if (auto *Cast_ = dyn_cast<CastExpr>(E))
    return dyn_cast<CallExpr>(Cast_->Sub);
  return nullptr;
}

const CallExpr *stq::cminus::getDirectCall(const Expr *E) {
  return getDirectCall(const_cast<Expr *>(E));
}

namespace {

class Lowerer {
public:
  Lowerer(Program &Prog, DiagnosticEngine &Diags) : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, "lower", Message);
  }

  void lowerBlock(BlockStmt *Block);
  /// Lowers one statement; hoisted temporaries are appended to \p Pre.
  void lowerStmt(Stmt *S, std::vector<Stmt *> &Pre);

  /// Rewrites \p E so it contains no calls, hoisting any into temporaries
  /// declared in \p Pre. \p AllowCalls permits \p E itself (not subexprs)
  /// to be a direct call.
  Expr *flatten(Expr *E, std::vector<Stmt *> &Pre, bool AllowDirectCall);
  void flattenLValue(LValue *LV, std::vector<Stmt *> &Pre);
  /// Hoists \p Call into a fresh temp; returns a read of the temp.
  Expr *hoistCall(CallExpr *Call, std::vector<Stmt *> &Pre);
  /// Reports an error for any call contained in \p E (used where hoisting
  /// would change semantics, e.g. loop conditions).
  void forbidCalls(Expr *E, const char *Where);
  void forbidCallsLValue(LValue *LV, const char *Where);

  /// Wraps \p S in a block containing \p Pre followed by \p S, or returns
  /// \p S unchanged when no hoisting occurred.
  Stmt *wrapWithPre(Stmt *S, const std::vector<Stmt *> &Pre) {
    if (Pre.empty())
      return S;
    auto *Block = Prog.Ctx.createStmt<BlockStmt>(S->Loc);
    Block->Stmts = Pre;
    Block->Stmts.push_back(S);
    return Block;
  }

  Program &Prog;
  DiagnosticEngine &Diags;
  unsigned NextTemp = 0;
};

} // namespace

bool Lowerer::run() {
  unsigned ErrorsBefore = Diags.errorCount();
  for (VarDecl *G : Prog.Globals)
    if (G->Init)
      forbidCalls(G->Init, "global initializer");
  for (FuncDecl *Fn : Prog.Functions)
    if (Fn->isDefinition())
      lowerBlock(Fn->Body);
  return Diags.errorCount() == ErrorsBefore;
}

void Lowerer::lowerBlock(BlockStmt *Block) {
  std::vector<Stmt *> NewStmts;
  NewStmts.reserve(Block->Stmts.size());
  for (Stmt *S : Block->Stmts) {
    std::vector<Stmt *> Pre;
    lowerStmt(S, Pre);
    for (Stmt *P : Pre)
      NewStmts.push_back(P);
    NewStmts.push_back(S);
  }
  Block->Stmts = std::move(NewStmts);
}

void Lowerer::lowerStmt(Stmt *S, std::vector<Stmt *> &Pre) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    lowerBlock(cast<BlockStmt>(S));
    return;
  case Stmt::Kind::Decl: {
    VarDecl *Var = cast<DeclStmt>(S)->Var;
    if (Var->Init)
      Var->Init = flatten(Var->Init, Pre, /*AllowDirectCall=*/true);
    return;
  }
  case Stmt::Kind::Assign: {
    auto *Assign = cast<AssignStmt>(S);
    flattenLValue(Assign->LHS, Pre);
    Assign->RHS = flatten(Assign->RHS, Pre, /*AllowDirectCall=*/true);
    return;
  }
  case Stmt::Kind::CallStmt: {
    auto *CS = cast<CallStmt>(S);
    for (Expr *&Arg : CS->Call->Args)
      Arg = flatten(Arg, Pre, /*AllowDirectCall=*/false);
    return;
  }
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    If->Cond = flatten(If->Cond, Pre, /*AllowDirectCall=*/false);
    if (If->Then) {
      std::vector<Stmt *> ThenPre;
      lowerStmt(If->Then, ThenPre);
      If->Then = wrapWithPre(If->Then, ThenPre);
    }
    if (If->Else) {
      std::vector<Stmt *> ElsePre;
      lowerStmt(If->Else, ElsePre);
      If->Else = wrapWithPre(If->Else, ElsePre);
    }
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    forbidCalls(While->Cond, "loop condition");
    std::vector<Stmt *> BodyPre;
    lowerStmt(While->Body, BodyPre);
    While->Body = wrapWithPre(While->Body, BodyPre);
    return;
  }
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    if (For->Init)
      lowerStmt(For->Init, Pre);
    if (For->Cond)
      forbidCalls(For->Cond, "loop condition");
    if (For->Step) {
      std::vector<Stmt *> StepPre;
      lowerStmt(For->Step, StepPre);
      if (!StepPre.empty())
        error(For->Step->Loc, "calls are not permitted inside a for-step");
    }
    std::vector<Stmt *> BodyPre;
    lowerStmt(For->Body, BodyPre);
    For->Body = wrapWithPre(For->Body, BodyPre);
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (Ret->Value)
      Ret->Value = flatten(Ret->Value, Pre, /*AllowDirectCall=*/false);
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

Expr *Lowerer::flatten(Expr *E, std::vector<Stmt *> &Pre,
                       bool AllowDirectCall) {
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::StrConst:
  case Expr::Kind::NullConst:
  case Expr::Kind::SizeofType:
    return E;
  case Expr::Kind::LValRead:
    flattenLValue(cast<LValReadExpr>(E)->LV, Pre);
    return E;
  case Expr::Kind::AddrOf:
    flattenLValue(cast<AddrOfExpr>(E)->LV, Pre);
    return E;
  case Expr::Kind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    Un->Sub = flatten(Un->Sub, Pre, /*AllowDirectCall=*/false);
    return E;
  }
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    if (Bin->Op == BinaryOp::LAnd || Bin->Op == BinaryOp::LOr) {
      // Hoisting out of a short-circuit operand would change semantics.
      forbidCalls(Bin->LHS, "short-circuit operand");
      forbidCalls(Bin->RHS, "short-circuit operand");
      return E;
    }
    Bin->LHS = flatten(Bin->LHS, Pre, /*AllowDirectCall=*/false);
    Bin->RHS = flatten(Bin->RHS, Pre, /*AllowDirectCall=*/false);
    return E;
  }
  case Expr::Kind::Cast: {
    auto *Cast_ = cast<CastExpr>(E);
    // A cast directly around a call keeps the call in direct position (the
    // paper ignores such casts for pattern matching).
    bool SubIsCall = isa<CallExpr>(Cast_->Sub);
    Cast_->Sub = flatten(Cast_->Sub, Pre, AllowDirectCall && SubIsCall);
    return E;
  }
  case Expr::Kind::Call: {
    auto *Call = cast<CallExpr>(E);
    for (Expr *&Arg : Call->Args)
      Arg = flatten(Arg, Pre, /*AllowDirectCall=*/false);
    if (AllowDirectCall)
      return E;
    return hoistCall(Call, Pre);
  }
  }
  return E;
}

void Lowerer::flattenLValue(LValue *LV, std::vector<Stmt *> &Pre) {
  if (!LV->isMem())
    return;
  LV->Addr = flatten(LV->Addr, Pre, /*AllowDirectCall=*/false);
  // CIL's *&lv simplification: a dereference of an address-of collapses to
  // the inner l-value (with field paths concatenated). Without this, *&p
  // would launder disallow-read qualifiers.
  while (LV->isMem()) {
    auto *Addr = dyn_cast<AddrOfExpr>(LV->Addr);
    if (!Addr)
      break;
    LValue *Inner = Addr->LV;
    std::vector<std::string> ExtraFields = LV->Fields;
    std::vector<std::string> Fields = Inner->Fields;
    Fields.insert(Fields.end(), ExtraFields.begin(), ExtraFields.end());
    // Sema ran before lowering; recompute the collapsed l-value's type
    // from the inner l-value's (which covers Inner->Fields already).
    TypePtr Ty = Inner->Ty;
    for (const std::string &Field : ExtraFields) {
      if (!Ty)
        break;
      TypePtr Bare = Type::withoutQuals(Ty);
      const StructDef *Def =
          Bare->isStruct() ? Prog.findStruct(Bare->structName()) : nullptr;
      const StructDef::Field *F = Def ? Def->findField(Field) : nullptr;
      Ty = F ? F->Ty : nullptr;
    }
    LV->K = Inner->K;
    LV->Var = Inner->Var;
    LV->Addr = Inner->Addr;
    LV->Fields = std::move(Fields);
    LV->Ty = Ty;
  }
}

Expr *Lowerer::hoistCall(CallExpr *Call, std::vector<Stmt *> &Pre) {
  TypePtr Ty = Call->Ty ? Call->Ty : Type::getInt();
  if (Ty->isVoid()) {
    error(Call->Loc, "void call used as a value");
    Ty = Type::getInt();
  }
  std::string Name = "__cil_tmp" + std::to_string(NextTemp++);
  VarDecl *Temp = Prog.Ctx.createVar(Name, Ty, Call->Loc);
  Temp->Init = Call;
  Pre.push_back(Prog.Ctx.createStmt<DeclStmt>(Temp, Call->Loc));
  LValue *LV = Prog.Ctx.createLValue(Temp, Call->Loc);
  LV->Ty = Ty;
  auto *Read = Prog.Ctx.createExpr<LValReadExpr>(LV, Call->Loc);
  Read->Ty = Ty;
  return Read;
}

void Lowerer::forbidCalls(Expr *E, const char *Where) {
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::StrConst:
  case Expr::Kind::NullConst:
  case Expr::Kind::SizeofType:
    return;
  case Expr::Kind::LValRead:
    forbidCallsLValue(cast<LValReadExpr>(E)->LV, Where);
    return;
  case Expr::Kind::AddrOf:
    forbidCallsLValue(cast<AddrOfExpr>(E)->LV, Where);
    return;
  case Expr::Kind::Unary:
    forbidCalls(cast<UnaryExpr>(E)->Sub, Where);
    return;
  case Expr::Kind::Binary:
    forbidCalls(cast<BinaryExpr>(E)->LHS, Where);
    forbidCalls(cast<BinaryExpr>(E)->RHS, Where);
    return;
  case Expr::Kind::Cast:
    forbidCalls(cast<CastExpr>(E)->Sub, Where);
    return;
  case Expr::Kind::Call:
    error(E->Loc, std::string("calls are not permitted inside a ") + Where);
    return;
  }
}

void Lowerer::forbidCallsLValue(LValue *LV, const char *Where) {
  if (LV->isMem())
    forbidCalls(LV->Addr, Where);
}

bool stq::cminus::lowerProgram(Program &Prog, DiagnosticEngine &Diags) {
  trace::Span Span("lower");
  Lowerer L(Prog, Diags);
  return L.run();
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

namespace {

class Verifier {
public:
  Verifier(const Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void fail(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, "verify", Message);
  }

  void verifyStmt(const Stmt *S);
  /// Verifies a pure (call-free) expression.
  void verifyPure(const Expr *E);
  void verifyLValue(const LValue *LV);
  void verifyCallArgs(const CallExpr *Call);
  /// Verifies a direct-instruction RHS: either pure, or a call (possibly
  /// under one cast) with pure arguments.
  void verifyRHS(const Expr *E);

  const Program &Prog;
  DiagnosticEngine &Diags;
};

} // namespace

bool Verifier::run() {
  unsigned ErrorsBefore = Diags.errorCount();
  for (const VarDecl *G : Prog.Globals)
    if (G->Init)
      verifyPure(G->Init);
  for (const FuncDecl *Fn : Prog.Functions)
    if (Fn->isDefinition())
      verifyStmt(Fn->Body);
  return Diags.errorCount() == ErrorsBefore;
}

void Verifier::verifyStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
      verifyStmt(Sub);
    return;
  case Stmt::Kind::Decl:
    if (const Expr *Init = cast<DeclStmt>(S)->Var->Init)
      verifyRHS(Init);
    return;
  case Stmt::Kind::Assign:
    verifyLValue(cast<AssignStmt>(S)->LHS);
    verifyRHS(cast<AssignStmt>(S)->RHS);
    return;
  case Stmt::Kind::CallStmt:
    verifyCallArgs(cast<CallStmt>(S)->Call);
    return;
  case Stmt::Kind::If:
    verifyPure(cast<IfStmt>(S)->Cond);
    verifyStmt(cast<IfStmt>(S)->Then);
    verifyStmt(cast<IfStmt>(S)->Else);
    return;
  case Stmt::Kind::While:
    verifyPure(cast<WhileStmt>(S)->Cond);
    verifyStmt(cast<WhileStmt>(S)->Body);
    return;
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    verifyStmt(For->Init);
    if (For->Cond)
      verifyPure(For->Cond);
    verifyStmt(For->Step);
    verifyStmt(For->Body);
    return;
  }
  case Stmt::Kind::Return:
    if (const Expr *V = cast<ReturnStmt>(S)->Value)
      verifyPure(V);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void Verifier::verifyRHS(const Expr *E) {
  if (const CallExpr *Call = getDirectCall(E)) {
    verifyCallArgs(Call);
    return;
  }
  verifyPure(E);
}

void Verifier::verifyCallArgs(const CallExpr *Call) {
  for (const Expr *Arg : Call->Args)
    verifyPure(Arg);
}

void Verifier::verifyPure(const Expr *E) {
  if (!E->Ty)
    fail(E->Loc, "expression without a computed type");
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::StrConst:
  case Expr::Kind::NullConst:
  case Expr::Kind::SizeofType:
    return;
  case Expr::Kind::LValRead:
    verifyLValue(cast<LValReadExpr>(E)->LV);
    return;
  case Expr::Kind::AddrOf:
    verifyLValue(cast<AddrOfExpr>(E)->LV);
    return;
  case Expr::Kind::Unary:
    verifyPure(cast<UnaryExpr>(E)->Sub);
    return;
  case Expr::Kind::Binary:
    verifyPure(cast<BinaryExpr>(E)->LHS);
    verifyPure(cast<BinaryExpr>(E)->RHS);
    return;
  case Expr::Kind::Cast:
    verifyPure(cast<CastExpr>(E)->Sub);
    return;
  case Expr::Kind::Call:
    fail(E->Loc, "call in a pure-expression position after lowering");
    return;
  }
}

void Verifier::verifyLValue(const LValue *LV) {
  if (!LV->Ty)
    fail(LV->Loc, "l-value without a computed type");
  if (LV->isMem())
    verifyPure(LV->Addr);
}

bool stq::cminus::verifyLoweredProgram(const Program &Prog,
                                       DiagnosticEngine &Diags) {
  Verifier V(Prog, Diags);
  return V.run();
}
