//===- AST.h - C-minus abstract syntax --------------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-minus AST. After the CIL-style lowering pass (Lowering.h) the AST
/// obeys the paper's intermediate-language discipline: expressions are
/// side-effect-free, l-values are a distinguished category, and calls appear
/// only as instructions (a call statement or the direct right-hand side of
/// an assignment/initialization). The qualifier checker and the soundness
/// axioms both consume this lowered form.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CMINUS_AST_H
#define STQ_CMINUS_AST_H

#include "cminus/Type.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace stq::cminus {

class Expr;
class Stmt;
class BlockStmt;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A struct definition with named, typed fields.
class StructDef {
public:
  struct Field {
    std::string Name;
    TypePtr Ty;
  };

  StructDef(std::string Name, SourceLoc Loc)
      : Name(std::move(Name)), Loc(Loc) {}

  std::string Name;
  std::vector<Field> Fields;
  SourceLoc Loc;

  /// Returns the field named \p FieldName, or nullptr.
  const Field *findField(const std::string &FieldName) const;
};

/// A variable declaration: global, local, or parameter. The declared type
/// retains every user-written qualifier (value and reference).
class VarDecl {
public:
  VarDecl(std::string Name, TypePtr Ty, SourceLoc Loc, unsigned Id)
      : Name(std::move(Name)), DeclaredTy(std::move(Ty)), Loc(Loc), Id(Id) {}

  std::string Name;
  TypePtr DeclaredTy;
  /// Optional initializer (may be a call; treated as an assignment
  /// instruction by the checker).
  Expr *Init = nullptr;
  bool IsGlobal = false;
  bool IsParam = false;
  SourceLoc Loc;
  /// Dense id unique within one Program; used for memoization keys.
  unsigned Id;
};

/// A function declaration or definition.
class FuncDecl {
public:
  FuncDecl(std::string Name, TypePtr RetTy, SourceLoc Loc)
      : Name(std::move(Name)), RetTy(std::move(RetTy)), Loc(Loc) {}

  std::string Name;
  TypePtr RetTy;
  std::vector<VarDecl *> Params;
  bool Variadic = false;
  /// Null for prototypes.
  BlockStmt *Body = nullptr;
  SourceLoc Loc;

  bool isDefinition() const { return Body != nullptr; }
  /// Builds the function type from the return and parameter types.
  TypePtr type() const;
};

//===----------------------------------------------------------------------===//
// L-values
//===----------------------------------------------------------------------===//

/// An l-value: a variable or a memory dereference, optionally extended by a
/// field path (matching CIL's host+offset representation). `d->trans` is
/// Mem(read d) with path [trans]; `s.f` is Var(s) with path [f].
class LValue {
public:
  enum class Kind { Var, Mem };

  LValue(VarDecl *Var, SourceLoc Loc) : K(Kind::Var), Var(Var), Loc(Loc) {}
  LValue(Expr *Addr, SourceLoc Loc) : K(Kind::Mem), Addr(Addr), Loc(Loc) {}

  Kind getKind() const { return K; }
  bool isVar() const { return K == Kind::Var; }
  bool isMem() const { return K == Kind::Mem; }
  /// True if this is a bare variable with no field path.
  bool isBareVar() const { return isVar() && Fields.empty(); }

  Kind K;
  /// The variable, for Var l-values.
  VarDecl *Var = nullptr;
  /// The address expression, for Mem l-values.
  Expr *Addr = nullptr;
  /// Field path applied after the base (empty for plain variables/derefs).
  std::vector<std::string> Fields;
  SourceLoc Loc;
  /// Declared type of the l-value, including reference qualifiers; set by
  /// Sema.
  TypePtr Ty;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class UnaryOp : uint8_t { Neg, Not, BitNot };
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd,
  LOr,
};

/// Returns the C spelling of \p Op, e.g. "*" or "&&".
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);

/// Base of the expression hierarchy. After lowering every Expr except a
/// direct-instruction CallExpr is side-effect-free.
class Expr {
public:
  enum class Kind {
    IntConst,
    StrConst,
    NullConst,
    LValRead,
    AddrOf,
    Unary,
    Binary,
    Cast,
    Call,
    SizeofType,
  };

  virtual ~Expr() = default;

  Kind getKind() const { return K; }

  SourceLoc Loc;
  /// Static type, set by Sema. For l-value reads this is the r-type
  /// (reference qualifiers stripped).
  TypePtr Ty;
  /// Dense id unique within one Program; used for memoization keys.
  unsigned Id = 0;

protected:
  Expr(Kind K, SourceLoc Loc) : Loc(Loc), K(K) {}

private:
  Kind K;
};

/// An integer or character constant.
class IntConstExpr : public Expr {
public:
  IntConstExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntConst, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntConst; }
};

/// A string literal (type char*).
class StrConstExpr : public Expr {
public:
  StrConstExpr(std::string Value, SourceLoc Loc)
      : Expr(Kind::StrConst, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::StrConst; }
};

/// The NULL constant.
class NullConstExpr : public Expr {
public:
  explicit NullConstExpr(SourceLoc Loc) : Expr(Kind::NullConst, Loc) {}
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::NullConst;
  }
};

/// Reading an l-value (using it on the right-hand side).
class LValReadExpr : public Expr {
public:
  LValReadExpr(LValue *LV, SourceLoc Loc) : Expr(Kind::LValRead, Loc), LV(LV) {}
  LValue *LV;
  static bool classof(const Expr *E) { return E->getKind() == Kind::LValRead; }
};

/// Taking the address of an l-value.
class AddrOfExpr : public Expr {
public:
  AddrOfExpr(LValue *LV, SourceLoc Loc) : Expr(Kind::AddrOf, Loc), LV(LV) {}
  LValue *LV;
  static bool classof(const Expr *E) { return E->getKind() == Kind::AddrOf; }
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Sub, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(Sub) {}
  UnaryOp Op;
  Expr *Sub;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }
};

/// An explicit cast `(type) e`. Casts to value-qualified types trigger
/// run-time check instrumentation (paper section 2.1.3).
class CastExpr : public Expr {
public:
  CastExpr(TypePtr Target, Expr *Sub, SourceLoc Loc)
      : Expr(Kind::Cast, Loc), Target(std::move(Target)), Sub(Sub) {}
  TypePtr Target;
  Expr *Sub;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Cast; }
};

/// A call. After lowering, calls occur only as a CallStmt or as the direct
/// right-hand side of an assignment/initializer (possibly under one cast,
/// which is ignored for pattern-matching purposes, as in the paper).
class CallExpr : public Expr {
public:
  CallExpr(std::string CalleeName, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), CalleeName(std::move(CalleeName)),
        Args(std::move(Args)) {}
  std::string CalleeName;
  std::vector<Expr *> Args;
  /// Resolved by Sema; null for unknown externals.
  FuncDecl *Callee = nullptr;
  /// True for memory-allocation routines (malloc); these match the `new`
  /// pattern in qualifier definitions.
  bool IsAlloc = false;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }
};

/// `sizeof(type)`; evaluates to the logical size of the type.
class SizeofTypeExpr : public Expr {
public:
  SizeofTypeExpr(TypePtr Target, SourceLoc Loc)
      : Expr(Kind::SizeofType, Loc), Target(std::move(Target)) {}
  TypePtr Target;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::SizeofType;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Block,
    Decl,
    Assign,
    CallStmt,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
  };

  virtual ~Stmt() = default;

  Kind getKind() const { return K; }
  SourceLoc Loc;

protected:
  Stmt(Kind K, SourceLoc Loc) : Loc(Loc), K(K) {}

private:
  Kind K;
};

class BlockStmt : public Stmt {
public:
  explicit BlockStmt(SourceLoc Loc) : Stmt(Kind::Block, Loc) {}
  std::vector<Stmt *> Stmts;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }
};

class DeclStmt : public Stmt {
public:
  DeclStmt(VarDecl *Var, SourceLoc Loc) : Stmt(Kind::Decl, Loc), Var(Var) {}
  VarDecl *Var;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Decl; }
};

class AssignStmt : public Stmt {
public:
  AssignStmt(LValue *LHS, Expr *RHS, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), LHS(LHS), RHS(RHS) {}
  LValue *LHS;
  Expr *RHS;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }
};

class CallStmt : public Stmt {
public:
  CallStmt(CallExpr *Call, SourceLoc Loc)
      : Stmt(Kind::CallStmt, Loc), Call(Call) {}
  CallExpr *Call;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::CallStmt; }
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // may be null
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *Cond;
  Stmt *Body;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }
};

/// A `for` loop; desugared to while by the lowering pass.
class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Stmt *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step), Body(Body) {}
  Stmt *Init; // may be null
  Expr *Cond; // may be null (treated as true)
  Stmt *Step; // may be null
  Stmt *Body;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(Value) {}
  Expr *Value; // may be null
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Continue; }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// Owns every AST node of one translation unit and hands out raw pointers.
class ASTContext {
public:
  template <typename T, typename... Args> T *createExpr(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    T *Raw = Node.get();
    Raw->Id = NextExprId++;
    Exprs.push_back(std::move(Node));
    return Raw;
  }

  LValue *createLValue(VarDecl *Var, SourceLoc Loc) {
    LValues.push_back(std::make_unique<LValue>(Var, Loc));
    return LValues.back().get();
  }
  LValue *createLValue(Expr *Addr, SourceLoc Loc) {
    LValues.push_back(std::make_unique<LValue>(Addr, Loc));
    return LValues.back().get();
  }

  template <typename T, typename... Args> T *createStmt(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    T *Raw = Node.get();
    Stmts.push_back(std::move(Node));
    return Raw;
  }

  VarDecl *createVar(std::string Name, TypePtr Ty, SourceLoc Loc) {
    auto Node =
        std::make_unique<VarDecl>(std::move(Name), std::move(Ty), Loc,
                                  NextVarId++);
    VarDecl *Raw = Node.get();
    Vars.push_back(std::move(Node));
    return Raw;
  }

  FuncDecl *createFunc(std::string Name, TypePtr RetTy, SourceLoc Loc) {
    Funcs.push_back(
        std::make_unique<FuncDecl>(std::move(Name), std::move(RetTy), Loc));
    return Funcs.back().get();
  }

  StructDef *createStruct(std::string Name, SourceLoc Loc) {
    Structs.push_back(std::make_unique<StructDef>(std::move(Name), Loc));
    return Structs.back().get();
  }

  unsigned numExprs() const { return NextExprId; }

  /// Clears every computed type so Sema can be re-run after a tool mutates
  /// declared types (the annotation driver's iterative loop).
  void resetComputedTypes() {
    for (auto &E : Exprs)
      E->Ty = nullptr;
    for (auto &LV : LValues)
      LV->Ty = nullptr;
  }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<LValue>> LValues;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<VarDecl>> Vars;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;
  std::vector<std::unique_ptr<StructDef>> Structs;
  unsigned NextExprId = 0;
  unsigned NextVarId = 0;
};

/// One parsed translation unit.
class Program {
public:
  ASTContext Ctx;
  std::vector<StructDef *> Structs;
  std::vector<VarDecl *> Globals;
  std::vector<FuncDecl *> Functions;

  FuncDecl *findFunction(const std::string &Name) const;
  StructDef *findStruct(const std::string &Name) const;
};

} // namespace stq::cminus

#endif // STQ_CMINUS_AST_H
