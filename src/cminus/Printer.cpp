//===- Printer.cpp --------------------------------------------------------===//

#include "cminus/Printer.h"

#include <sstream>

using namespace stq;
using namespace stq::cminus;

namespace {

/// Escapes a string for emission inside double quotes.
std::string escapeString(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\0':
      Out += "\\0";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }

/// Precedence levels for parenthesization; larger binds tighter.
int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LOr:
    return 1;
  case BinaryOp::LAnd:
    return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return 3;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 5;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return 6;
  }
  return 0;
}

std::string printExprPrec(const Expr *E, int ParentPrec);

std::string printLValueImpl(const LValue *LV) {
  std::string Out;
  if (LV->isVar()) {
    Out = LV->Var->Name;
  } else {
    Out = "*" + printExprPrec(LV->Addr, 7);
  }
  bool First = true;
  for (const std::string &Field : LV->Fields) {
    if (First && LV->isMem()) {
      // Prefer the arrow form: *e with a field path prints as e->f.
      Out = printExprPrec(LV->Addr, 7) + "->" + Field;
    } else {
      Out += "." + Field;
    }
    First = false;
  }
  return Out;
}

std::string printExprPrec(const Expr *E, int ParentPrec) {
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
    return std::to_string(cast<IntConstExpr>(E)->Value);
  case Expr::Kind::StrConst:
    return "\"" + escapeString(cast<StrConstExpr>(E)->Value) + "\"";
  case Expr::Kind::NullConst:
    return "NULL";
  case Expr::Kind::LValRead:
    return printLValueImpl(cast<LValReadExpr>(E)->LV);
  case Expr::Kind::AddrOf:
    return "&" + printLValueImpl(cast<AddrOfExpr>(E)->LV);
  case Expr::Kind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    return std::string(unaryOpSpelling(Un->Op)) +
           printExprPrec(Un->Sub, 7);
  }
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    int Prec = precedenceOf(Bin->Op);
    std::string Out = printExprPrec(Bin->LHS, Prec) + " " +
                      binaryOpSpelling(Bin->Op) + " " +
                      printExprPrec(Bin->RHS, Prec + 1);
    if (Prec < ParentPrec)
      return "(" + Out + ")";
    return Out;
  }
  case Expr::Kind::Cast: {
    auto *Cast_ = cast<CastExpr>(E);
    return "(" + Cast_->Target->str() + ") " + printExprPrec(Cast_->Sub, 7);
  }
  case Expr::Kind::Call: {
    auto *Call = cast<CallExpr>(E);
    std::string Out = Call->CalleeName + "(";
    for (size_t I = 0; I < Call->Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExprPrec(Call->Args[I], 0);
    }
    return Out + ")";
  }
  case Expr::Kind::SizeofType:
    return "sizeof(" + cast<SizeofTypeExpr>(E)->Target->str() + ")";
  }
  return "<?>";
}

void printStmtTo(std::ostringstream &OS, const Stmt *S, unsigned Indent);

void printBlockBody(std::ostringstream &OS, const BlockStmt *Block,
                    unsigned Indent) {
  OS << "{\n";
  for (const Stmt *Sub : Block->Stmts)
    printStmtTo(OS, Sub, Indent + 1);
  OS << indentStr(Indent) << "}";
}

void printStmtTo(std::ostringstream &OS, const Stmt *S, unsigned Indent) {
  if (!S)
    return;
  OS << indentStr(Indent);
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    printBlockBody(OS, cast<BlockStmt>(S), Indent);
    OS << "\n";
    return;
  case Stmt::Kind::Decl: {
    const VarDecl *Var = cast<DeclStmt>(S)->Var;
    OS << Var->DeclaredTy->str() << " " << Var->Name;
    if (Var->Init)
      OS << " = " << printExprPrec(Var->Init, 0);
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Assign: {
    auto *Assign = cast<AssignStmt>(S);
    OS << printLValueImpl(Assign->LHS) << " = "
       << printExprPrec(Assign->RHS, 0) << ";\n";
    return;
  }
  case Stmt::Kind::CallStmt:
    OS << printExprPrec(cast<CallStmt>(S)->Call, 0) << ";\n";
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    OS << "if (" << printExprPrec(If->Cond, 0) << ")\n";
    printStmtTo(OS, If->Then, Indent + 1);
    if (If->Else) {
      OS << indentStr(Indent) << "else\n";
      printStmtTo(OS, If->Else, Indent + 1);
    }
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    OS << "while (" << printExprPrec(While->Cond, 0) << ")\n";
    printStmtTo(OS, While->Body, Indent + 1);
    return;
  }
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    OS << "for (";
    // Header statements render inline, without their trailing ";\n".
    auto InlineStmt = [&](const Stmt *H) {
      if (!H)
        return;
      if (const auto *Decl = dyn_cast<DeclStmt>(H)) {
        OS << Decl->Var->DeclaredTy->str() << " " << Decl->Var->Name;
        if (Decl->Var->Init)
          OS << " = " << printExprPrec(Decl->Var->Init, 0);
        return;
      }
      if (const auto *Assign = dyn_cast<AssignStmt>(H)) {
        OS << printLValueImpl(Assign->LHS) << " = "
           << printExprPrec(Assign->RHS, 0);
        return;
      }
      if (const auto *CS = dyn_cast<CallStmt>(H))
        OS << printExprPrec(CS->Call, 0);
    };
    InlineStmt(For->Init);
    OS << "; ";
    if (For->Cond)
      OS << printExprPrec(For->Cond, 0);
    OS << "; ";
    InlineStmt(For->Step);
    OS << ")\n";
    printStmtTo(OS, For->Body, Indent + 1);
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    OS << "return";
    if (Ret->Value)
      OS << " " << printExprPrec(Ret->Value, 0);
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Break:
    OS << "break;\n";
    return;
  case Stmt::Kind::Continue:
    OS << "continue;\n";
    return;
  }
}

} // namespace

std::string stq::cminus::printExpr(const Expr *E) {
  return printExprPrec(E, 0);
}

std::string stq::cminus::printLValue(const LValue *LV) {
  return printLValueImpl(LV);
}

std::string stq::cminus::printStmt(const Stmt *S, unsigned Indent) {
  std::ostringstream OS;
  printStmtTo(OS, S, Indent);
  return OS.str();
}

std::string stq::cminus::printProgram(const Program &Prog) {
  std::ostringstream OS;
  for (const StructDef *Def : Prog.Structs) {
    OS << "struct " << Def->Name << " {\n";
    for (const StructDef::Field &F : Def->Fields)
      OS << "  " << F.Ty->str() << " " << F.Name << ";\n";
    OS << "};\n\n";
  }
  for (const VarDecl *G : Prog.Globals) {
    OS << G->DeclaredTy->str() << " " << G->Name;
    if (G->Init)
      OS << " = " << printExpr(G->Init);
    OS << ";\n";
  }
  if (!Prog.Globals.empty())
    OS << "\n";
  for (const FuncDecl *Fn : Prog.Functions) {
    OS << Fn->RetTy->str() << " " << Fn->Name << "(";
    for (size_t I = 0; I < Fn->Params.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Fn->Params[I]->DeclaredTy->str();
      if (!Fn->Params[I]->Name.empty())
        OS << " " << Fn->Params[I]->Name;
    }
    if (Fn->Variadic)
      OS << (Fn->Params.empty() ? "..." : ", ...");
    OS << ")";
    if (!Fn->isDefinition()) {
      OS << ";\n\n";
      continue;
    }
    OS << " ";
    OS << printStmt(Fn->Body, 0);
  }
  return OS.str();
}
