//===- Type.h - C-minus types with qualifier sets ---------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-minus type representation. Every type node carries a set of
/// user-defined qualifier names; the paper's postfix notation means a
/// qualifier attaches to the whole type to its left, so `int pos*` is a
/// pointer to pos-qualified int while `int* unique` is a unique-qualified
/// pointer to int. Qualifier order is irrelevant (rule SubQualReorder), so
/// the set is kept sorted and deduplicated.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CMINUS_TYPE_H
#define STQ_CMINUS_TYPE_H

#include <memory>
#include <string>
#include <vector>

namespace stq::cminus {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// An immutable, structurally compared type. Construct via the static
/// factories; share freely.
class Type {
public:
  enum class Kind { Void, Int, Char, Pointer, Struct, Function };

  Kind getKind() const { return K; }

  /// Top-level qualifier names, sorted and deduplicated.
  const std::vector<std::string> &quals() const { return Quals; }
  bool hasQual(const std::string &Q) const;

  bool isVoid() const { return K == Kind::Void; }
  bool isInt() const { return K == Kind::Int; }
  bool isChar() const { return K == Kind::Char; }
  bool isArithmetic() const { return isInt() || isChar(); }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isStruct() const { return K == Kind::Struct; }
  bool isFunction() const { return K == Kind::Function; }

  /// Pointee type; only valid for pointers.
  const TypePtr &pointee() const { return Pointee; }
  /// Struct tag; only valid for struct types.
  const std::string &structName() const { return StructName; }
  /// Return type; only valid for function types.
  const TypePtr &returnType() const { return Ret; }
  /// Parameter types; only valid for function types.
  const std::vector<TypePtr> &paramTypes() const { return Params; }
  bool isVariadic() const { return Variadic; }

  // Factories.
  static TypePtr getVoid();
  static TypePtr getInt();
  static TypePtr getChar();
  static TypePtr getPointer(TypePtr Pointee);
  static TypePtr getStruct(std::string Name);
  static TypePtr getFunction(TypePtr Ret, std::vector<TypePtr> Params,
                             bool Variadic);

  /// Returns this type with \p Qual added to the top-level qualifier set.
  static TypePtr withQual(const TypePtr &T, const std::string &Qual);
  /// Returns this type with the given top-level qualifier set (replacing the
  /// existing one).
  static TypePtr withQuals(const TypePtr &T, std::vector<std::string> Quals);
  /// Returns this type with an empty top-level qualifier set.
  static TypePtr withoutQuals(const TypePtr &T);
  /// Returns this type with every qualifier in \p Drop removed from the
  /// top-level set (used to strip reference qualifiers from r-types).
  static TypePtr withoutQualsIn(const TypePtr &T,
                                const std::vector<std::string> &Drop);
  /// Returns this type with every qualifier removed at every level; the
  /// base type system compares these, leaving all qualifier reasoning to
  /// the extensible checker.
  static TypePtr deepUnqualified(const TypePtr &T);

  /// Structural equality including qualifier sets at every level.
  static bool equals(const TypePtr &A, const TypePtr &B);
  /// Structural equality ignoring top-level qualifiers only; nested
  /// qualifier sets must still match (no subtyping under pointers).
  static bool equalsIgnoringTopQuals(const TypePtr &A, const TypePtr &B);

  /// The paper's subtype relation for value-qualified types: A <= B iff the
  /// types agree structurally, A's top-level qualifier set is a superset of
  /// B's, and all nested qualifier sets are equal. (Reference qualifiers are
  /// stripped from r-types before this is consulted, so top-level qualifiers
  /// here are value qualifiers.)
  static bool isSubtypeOf(const TypePtr &A, const TypePtr &B);

  /// Renders in C-minus postfix syntax, e.g. "int pos*" or "char* untainted".
  std::string str() const;

private:
  explicit Type(Kind K) : K(K) {}

  Kind K;
  std::vector<std::string> Quals;
  TypePtr Pointee;
  std::string StructName;
  TypePtr Ret;
  std::vector<TypePtr> Params;
  bool Variadic = false;
};

} // namespace stq::cminus

#endif // STQ_CMINUS_TYPE_H
