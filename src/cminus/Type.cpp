//===- Type.cpp -----------------------------------------------------------===//

#include "cminus/Type.h"

#include <algorithm>
#include <cassert>

using namespace stq::cminus;

bool Type::hasQual(const std::string &Q) const {
  return std::binary_search(Quals.begin(), Quals.end(), Q);
}

TypePtr Type::getVoid() {
  static TypePtr T(new Type(Kind::Void));
  return T;
}

TypePtr Type::getInt() {
  static TypePtr T(new Type(Kind::Int));
  return T;
}

TypePtr Type::getChar() {
  static TypePtr T(new Type(Kind::Char));
  return T;
}

TypePtr Type::getPointer(TypePtr Pointee) {
  assert(Pointee && "pointer to null type");
  auto *T = new Type(Kind::Pointer);
  T->Pointee = std::move(Pointee);
  return TypePtr(T);
}

TypePtr Type::getStruct(std::string Name) {
  auto *T = new Type(Kind::Struct);
  T->StructName = std::move(Name);
  return TypePtr(T);
}

TypePtr Type::getFunction(TypePtr Ret, std::vector<TypePtr> Params,
                          bool Variadic) {
  auto *T = new Type(Kind::Function);
  T->Ret = std::move(Ret);
  T->Params = std::move(Params);
  T->Variadic = Variadic;
  return TypePtr(T);
}

static void normalizeQuals(std::vector<std::string> &Quals) {
  std::sort(Quals.begin(), Quals.end());
  Quals.erase(std::unique(Quals.begin(), Quals.end()), Quals.end());
}

static TypePtr cloneShallow(const TypePtr &T) {
  auto *N = new Type(*T);
  return TypePtr(N);
}

// cloneShallow needs access to the copy constructor; grant it via a helper
// in the class's translation unit. The copy constructor is implicitly
// available because all members are copyable and the class is a friend of
// itself.

TypePtr Type::withQual(const TypePtr &T, const std::string &Qual) {
  std::vector<std::string> Quals = T->Quals;
  Quals.push_back(Qual);
  return withQuals(T, std::move(Quals));
}

TypePtr Type::withQuals(const TypePtr &T, std::vector<std::string> Quals) {
  normalizeQuals(Quals);
  if (Quals == T->Quals)
    return T;
  TypePtr N = cloneShallow(T);
  const_cast<Type *>(N.get())->Quals = std::move(Quals);
  return N;
}

TypePtr Type::withoutQuals(const TypePtr &T) {
  if (T->Quals.empty())
    return T;
  return withQuals(T, {});
}

TypePtr Type::withoutQualsIn(const TypePtr &T,
                             const std::vector<std::string> &Drop) {
  std::vector<std::string> Kept;
  for (const std::string &Q : T->Quals)
    if (std::find(Drop.begin(), Drop.end(), Q) == Drop.end())
      Kept.push_back(Q);
  return withQuals(T, std::move(Kept));
}

TypePtr Type::deepUnqualified(const TypePtr &T) {
  TypePtr Stripped = withoutQuals(T);
  switch (T->getKind()) {
  case Kind::Pointer: {
    TypePtr Pointee = deepUnqualified(T->pointee());
    if (Pointee.get() == T->pointee().get() && Stripped.get() == T.get())
      return T;
    return getPointer(std::move(Pointee));
  }
  case Kind::Function: {
    std::vector<TypePtr> Params;
    Params.reserve(T->paramTypes().size());
    for (const TypePtr &P : T->paramTypes())
      Params.push_back(deepUnqualified(P));
    return getFunction(deepUnqualified(T->returnType()), std::move(Params),
                       T->isVariadic());
  }
  default:
    return Stripped;
  }
}

bool Type::equals(const TypePtr &A, const TypePtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->K != B->K || A->Quals != B->Quals)
    return false;
  switch (A->K) {
  case Kind::Void:
  case Kind::Int:
  case Kind::Char:
    return true;
  case Kind::Pointer:
    return equals(A->Pointee, B->Pointee);
  case Kind::Struct:
    return A->StructName == B->StructName;
  case Kind::Function: {
    if (A->Variadic != B->Variadic || A->Params.size() != B->Params.size())
      return false;
    if (!equals(A->Ret, B->Ret))
      return false;
    for (size_t I = 0; I < A->Params.size(); ++I)
      if (!equals(A->Params[I], B->Params[I]))
        return false;
    return true;
  }
  }
  return false;
}

bool Type::equalsIgnoringTopQuals(const TypePtr &A, const TypePtr &B) {
  return equals(withoutQuals(A), withoutQuals(B));
}

bool Type::isSubtypeOf(const TypePtr &A, const TypePtr &B) {
  if (!equalsIgnoringTopQuals(A, B))
    return false;
  // A's qualifier set must include B's (tau q <= tau, transitively).
  return std::includes(A->Quals.begin(), A->Quals.end(), B->Quals.begin(),
                       B->Quals.end());
}

std::string Type::str() const {
  std::string Out;
  switch (K) {
  case Kind::Void:
    Out = "void";
    break;
  case Kind::Int:
    Out = "int";
    break;
  case Kind::Char:
    Out = "char";
    break;
  case Kind::Struct:
    Out = "struct " + StructName;
    break;
  case Kind::Pointer:
    Out = Pointee->str() + "*";
    break;
  case Kind::Function: {
    Out = Ret->str() + " (";
    for (size_t I = 0; I < Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Params[I]->str();
    }
    if (Variadic)
      Out += Params.empty() ? "..." : ", ...";
    Out += ")";
    break;
  }
  }
  for (const std::string &Q : Quals) {
    Out += " ";
    Out += Q;
  }
  return Out;
}
