//===- ProverSessionGen.h - Randomized prover sessions ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays one randomized prover session (quantified axioms from fixed
/// templates, random ground hypotheses, one goal) under a chosen engine.
/// The construction is fully determined by the seed, so the incremental and
/// reference engines see byte-identical sessions; budgets stay far from the
/// resource limits so a verdict can never flip on a wall-clock edge.
///
/// Shared by the engine-differential unit tests and the stq-fuzz campaign.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_PROVERSESSIONGEN_H
#define STQ_FUZZ_PROVERSESSIONGEN_H

#include "prover/Prover.h"

namespace stq::fuzz {

/// Builds and proves the session determined by \p Seed under \p Engine.
/// (Uses std::mt19937 internally — its sequence is pinned by the C++
/// standard, so seeds replay identically across platforms.)
prover::ProofResult runProverSession(unsigned Seed, prover::EngineKind Engine);

} // namespace stq::fuzz

#endif // STQ_FUZZ_PROVERSESSIONGEN_H
