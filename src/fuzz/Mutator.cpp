//===- Mutator.cpp --------------------------------------------------------===//

#include "fuzz/Mutator.h"

using namespace stq;
using namespace stq::fuzz;

std::string stq::fuzz::mutateBytes(const std::string &In, Rng &R) {
  std::string Out = In;
  unsigned Ops = static_cast<unsigned>(R.range(1, 4));
  for (unsigned I = 0; I < Ops; ++I) {
    if (Out.empty()) {
      Out.push_back(static_cast<char>(R.pick(256)));
      continue;
    }
    size_t At = R.pick(Out.size());
    switch (R.pick(5)) {
    case 0: // flip one byte to an arbitrary value
      Out[At] = static_cast<char>(R.pick(256));
      break;
    case 1: // delete a short span
      Out.erase(At, 1 + R.pick(4));
      break;
    case 2: { // duplicate a span elsewhere
      size_t Len = 1 + R.pick(8);
      std::string Span = Out.substr(At, Len);
      Out.insert(R.pick(Out.size() + 1), Span);
      break;
    }
    case 3: // insert an arbitrary byte
      Out.insert(Out.begin() + static_cast<long>(At),
                 static_cast<char>(R.pick(256)));
      break;
    default: // truncate
      Out.resize(At);
      break;
    }
  }
  return Out;
}

std::string stq::fuzz::tokenSoup(Rng &R, Vocab V, unsigned Len) {
  static const char *const CMinusFragments[] = {
      "int",    "char",  "struct", "*",  "(",      ")",    "{",  "}",
      ";",      ",",     "x",      "y",  "f",      "42",   "+",  "-",
      "/",      "%",     "==",     "!=", "return", "if",   "else",
      "while",  "for",   "&",      "&&", "||",     "NULL", "=",  "\"s\"",
      "pos",    "->",    ".",      "[",  "]",      "!",    "~",  "<",
      "sizeof", "break", "0x1F",   "'c'"};
  static const char *const QualFragments[] = {
      "value",  "ref",  "qualifier", "case",   "of",       "decl",
      "where",  "(",    ")",         ":",      "|",        "invariant",
      "forall", "T",    "int",       "Expr",   "Const",    "LValue",
      "Var",    "E",    "C",         "value",  "location", "*",
      "&&",     "||",   "=>",        ">",      "0",        "NULL",
      "assign", "new",  "disallow",  "ondecl", "isHeapLoc"};
  const char *const *Fragments =
      V == Vocab::CMinus ? CMinusFragments : QualFragments;
  size_t Count = V == Vocab::CMinus
                     ? sizeof(CMinusFragments) / sizeof(char *)
                     : sizeof(QualFragments) / sizeof(char *);
  std::string Out;
  for (unsigned I = 0; I < Len; ++I) {
    Out += Fragments[R.pick(Count)];
    Out += ' ';
  }
  return Out;
}
