//===- Campaign.h - The stq-fuzz campaign driver ----------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates randomized fuzzing runs over the whole pipeline, holding
/// eight oracles over every generated input:
///
///  1. Soundness (Theorem 5.1, executable): a program the checker accepts
///     must execute with zero invariant-audit failures under
///     InterpOptions::AuditQualifiedStores. Run-time check failures at
///     casts are the paper's sanctioned dynamic escape hatch and are legal.
///  2. Engine differential: the incremental prover and the reference
///     engine must return identical verdicts, obligation by obligation,
///     on generated qualifier sets and randomized prover sessions.
///  3. Metamorphic/concurrency: `check` output is byte-identical across
///     job counts and across the shared-context (stqd server) execution
///     path, and warm-cache re-proofs replay cold verdicts exactly.
///  4. Edit-replay: seeded edit sequences (body tweaks, signature
///     changes, qualifier-set changes, function add/delete) re-checked
///     through a warm incremental engine must be byte-identical — output
///     and metrics-invariant counters — to a cold full check at every
///     step. Failing scripts ddmin-shrink and replay from tests/corpus/
///     (`.edits` files).
///  5. Inference: strip every inferable annotation from a generated
///     program, re-infer with the constraint engine, and apply — the
///     annotated program must not gain qualifier errors (clean stays
///     clean: the greatest-fixpoint guarantee), the fixpoint reference
///     engine's inferred set must be contained in the constraint engine's
///     full set, and the suggestion report must be byte-identical across
///     job counts.
///  6. Robustness: both front ends diagnose arbitrary malformed input
///     (token soup, byte mutations) without crashing; a crash takes the
///     process down and is caught by the harness around the campaign.
///  7. VM differential: the register-bytecode VM and the tree-walking
///     interpreter must produce byte-identical runs (status, exit value,
///     output, traps, fired checks, audits, format violations, steps),
///     and the VM with prover-driven check elision enabled must match
///     itself with elision disabled on everything but the executed-check
///     count. Runs on every checker-accepted program, on dedicated
///     `vm`-scenario draws, and on replayed `.cmm` corpus files.
///  8. Front-end flattening: preprocess-then-check on a generated
///     multi-translation-unit program (shared headers, macros, cross-TU
///     prototypes) must be byte-identical across job counts, and its
///     verdict counters must equal checking the pre-expanded single-TU
///     flattening of the same program.
///
/// Failures carry the offending input, delta-minimized when
/// CampaignOptions::Minimize is set. Every run is derived from the
/// campaign seed alone: identical seeds replay identical campaigns,
/// byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_CAMPAIGN_H
#define STQ_FUZZ_CAMPAIGN_H

#include "support/Stats.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace stq::fuzz {

struct CampaignOptions {
  uint64_t Seed = 1;
  /// Randomized runs to execute (after any corpus replay).
  unsigned Runs = 100;
  /// Soft wall-clock budget; 0 means none. When set, the campaign stops
  /// early once exceeded (run counts then vary across machines, so
  /// byte-determinism only holds for the budget-free configuration).
  unsigned TimeBudgetSeconds = 0;
  /// Delta-minimize failing inputs before reporting them.
  bool Minimize = true;
  /// The parallel side of the metamorphic oracle (`--jobs N` vs 1).
  unsigned Jobs = 4;
  /// Interpreter step budget per execution; keeps MayDiverge programs and
  /// accidental generator loops bounded.
  uint64_t Fuel = 200000;
  /// When non-empty, every run executes this one scenario instead of the
  /// weighted mix: "soundness", "mixed", "qualgen", "prover",
  /// "edit-replay", "inference", "vm", "frontend", or "robustness" (the
  /// CI incremental-smoke job pins "edit-replay", inference-smoke pins
  /// "inference", frontend-smoke pins "frontend").
  std::string OnlyScenario;
};

/// One oracle violation (or front-end crash-adjacent reject) with enough
/// context to reproduce it.
struct FuzzFailure {
  /// "soundness", "engine-differential", "metamorphic", "edit-replay",
  /// "inference", "vm", "frontend", "header-edit", or "robustness".
  std::string Oracle;
  /// The per-run seed that produced the input.
  uint64_t RunSeed = 0;
  /// Machine tag: "audit-violation", "jobs-mismatch", "verdict-mismatch",
  /// "qualgen-reject", ...
  std::string Kind;
  /// The offending program or qualifier-DSL text (minimized when enabled).
  std::string Input;
  /// Human-readable diagnosis.
  std::string Detail;
};

struct CampaignResult {
  unsigned RunsExecuted = 0;
  std::vector<FuzzFailure> Failures;
  bool ok() const { return Failures.empty(); }
};

/// Executes one campaign. Progress and failures are narrated to \p Log
/// when non-null; counters land in \p Stats under the `fuzz.` prefix.
CampaignResult runCampaign(const CampaignOptions &Opts,
                           stats::Registry &Stats, std::ostream *Log);

/// Replays one persisted corpus input through the oracles appropriate to
/// its kind (`.cmm` → front end, jobs differential, audited execution;
/// `.qual` → load, engine differential, warm-cache replay; `.edits` →
/// incremental-vs-cold edit replay). Appends any violation to \p Result.
/// Returns false when the file cannot be read.
bool replayCorpusFile(const std::string &Path, const CampaignOptions &Opts,
                      stats::Registry &Stats, CampaignResult &Result);

} // namespace stq::fuzz

#endif // STQ_FUZZ_CAMPAIGN_H
