//===- Rng.h - Deterministic fuzzing RNG ------------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's random source: splitmix64, fully determined by the seed
/// and independent of the standard library's distribution implementations,
/// so `stq-fuzz --seed S` reproduces the same campaign on any platform.
/// Sub-streams are forked with fork() so structural changes in one
/// generator do not shift the random choices of another.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_RNG_H
#define STQ_FUZZ_RNG_H

#include <cstdint>

namespace stq::fuzz {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); 0 when N == 0.
  uint64_t pick(uint64_t N) { return N == 0 ? 0 : next() % N; }

  /// Uniform in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    if (Hi <= Lo)
      return Lo;
    return Lo + static_cast<int64_t>(
                    pick(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Percent / 100.
  bool chance(unsigned Percent) { return pick(100) < Percent; }

  /// An independent sub-stream: consuming more numbers from the fork does
  /// not perturb this stream.
  Rng fork() { return Rng(next()); }

private:
  uint64_t State;
};

} // namespace stq::fuzz

#endif // STQ_FUZZ_RNG_H
