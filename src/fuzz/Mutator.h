//===- Mutator.h - Byte and token-level input mutation ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Input mutation for the robustness oracle: the front ends must diagnose
/// malformed input, never abort. Two strategies:
///
///  * mutateBytes: classic byte-level ops (flip, delete, duplicate, insert,
///    truncate) over an existing input — finds lexer/recovery crashes near
///    valid programs.
///  * tokenSoup: random sequences of language fragments — finds parser
///    crashes on structurally wild but token-clean input.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_MUTATOR_H
#define STQ_FUZZ_MUTATOR_H

#include "fuzz/Rng.h"

#include <string>

namespace stq::fuzz {

/// Applies 1-4 random byte-level mutations to \p In.
std::string mutateBytes(const std::string &In, Rng &R);

/// Which fragment vocabulary tokenSoup draws from.
enum class Vocab { CMinus, QualDsl };

/// A random space-separated sequence of \p Len fragments.
std::string tokenSoup(Rng &R, Vocab V, unsigned Len);

} // namespace stq::fuzz

#endif // STQ_FUZZ_MUTATOR_H
