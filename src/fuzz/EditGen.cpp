//===- EditGen.cpp --------------------------------------------------------===//

#include "fuzz/EditGen.h"

#include "fuzz/ProgramGen.h"

#include <sstream>

using namespace stq;
using namespace stq::fuzz;

namespace {

constexpr const char *StepSeparator = "//== step";
constexpr const char *QualsDirective = "//! quals:";

//===----------------------------------------------------------------------===//
// The program model
//===----------------------------------------------------------------------===//

/// One modeled function. Signature variants:
///   0: int fI(int a)           — the baseline
///   1: int fI(int pos a)       — arity-preserving qualifier flip, so a
///                                 0<->1 edit is a *pure* signature change
///                                 (no caller text changes)
///   2: int fI(int a, int b)    — arity change; callers re-render
struct FnModel {
  unsigned Index = 0;
  unsigned SigVariant = 0;
  uint64_t BodySeed = 0;
};

struct ProgramModel {
  std::vector<FnModel> Fns;
  /// Active builtin qualifier names for this version.
  std::vector<std::string> Builtins;
};

std::string fnName(const FnModel &Fn) {
  return "f" + std::to_string(Fn.Index);
}

std::string renderSignature(const FnModel &Fn) {
  switch (Fn.SigVariant) {
  case 1:
    return "int " + fnName(Fn) + "(int pos a)";
  case 2:
    return "int " + fnName(Fn) + "(int a, int b)";
  default:
    return "int " + fnName(Fn) + "(int a)";
  }
}

/// A call to \p Callee with arity matching its current signature variant.
std::string renderCall(const FnModel &Callee, const std::string &Arg,
                       uint64_t Seed) {
  if (Callee.SigVariant == 2)
    return fnName(Callee) + "(" + Arg + ", " +
           std::to_string(1 + Seed % 7) + ")";
  return fnName(Callee) + "(" + Arg + ")";
}

/// Renders a function body deterministically from its seed. Bodies mix
/// plain arithmetic, a qualified local (sometimes deliberately violated —
/// qualifier warnings are part of the byte-compared output), and calls to
/// lower-indexed functions (acyclic by construction, so signature edits
/// have a transitive caller chain to dirty).
std::string renderBody(const FnModel &Fn, const std::vector<FnModel> &Fns) {
  uint64_t S = Fn.BodySeed;
  std::ostringstream OS;
  OS << renderSignature(Fn) << " {\n";
  OS << "  int x = " << (S % 19) << " + a;\n";
  if (S % 3 == 0) {
    // A pos declaration whose initializer may or may not be derivably
    // positive: half of these carry a qualifier warning.
    long Init = (S % 2 == 0) ? static_cast<long>(1 + S % 5)
                             : -static_cast<long>(1 + S % 5);
    OS << "  int pos p" << (S % 4) << " = " << Init << ";\n";
  }
  if (Fn.SigVariant == 2)
    OS << "  x = x + b;\n";
  // Up to two calls to lower-indexed functions, chosen by seed bits.
  unsigned Calls = 0;
  for (unsigned J = 0; J < Fn.Index && Calls < 2; ++J) {
    if (((S >> (J % 48)) & 3) == 0) {
      OS << "  x = x + " << renderCall(Fns[J], "x", S >> 8) << ";\n";
      ++Calls;
    }
  }
  if (S % 5 == 1)
    OS << "  if (x > 0) { x = x - 1; }\n";
  OS << "  return x;\n";
  OS << "}\n";
  return OS.str();
}

/// Renders the whole version: f0..fN-1 in index order, then main() calling
/// every function (re-rendered from the model, so add/delete and arity
/// edits keep every version front-end-clean).
std::string renderProgram(const ProgramModel &M) {
  std::ostringstream OS;
  for (const FnModel &Fn : M.Fns)
    OS << renderBody(Fn, M.Fns) << "\n";
  OS << "int main() {\n  int r = 0;\n";
  for (const FnModel &Fn : M.Fns)
    OS << "  r = r + " << renderCall(Fn, "r", Fn.BodySeed) << ";\n";
  OS << "  return r;\n}\n";
  return OS.str();
}

EditScript::Step renderStep(const ProgramModel &M) {
  EditScript::Step Step;
  Step.Source = renderProgram(M);
  Step.Builtins = M.Builtins;
  return Step;
}

} // namespace

//===----------------------------------------------------------------------===//
// Textual form
//===----------------------------------------------------------------------===//

std::string stq::fuzz::renderEditScript(const EditScript &Script) {
  std::ostringstream OS;
  for (size_t I = 0; I < Script.Steps.size(); ++I) {
    if (I > 0)
      OS << StepSeparator << "\n";
    const EditScript::Step &Step = Script.Steps[I];
    if (!Step.Builtins.empty()) {
      OS << QualsDirective;
      for (size_t J = 0; J < Step.Builtins.size(); ++J)
        OS << (J == 0 ? " " : ",") << Step.Builtins[J];
      OS << "\n";
    }
    OS << Step.Source;
  }
  return OS.str();
}

EditScript stq::fuzz::parseEditScript(const std::string &Text) {
  EditScript Script;
  EditScript::Step Cur;
  bool SawContent = false;
  auto Flush = [&] {
    // Drop steps with no program text at all (ddmin leftovers).
    if (SawContent)
      Script.Steps.push_back(std::move(Cur));
    Cur = EditScript::Step();
    SawContent = false;
  };

  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind(StepSeparator, 0) == 0) {
      Flush();
      continue;
    }
    if (Line.rfind(QualsDirective, 0) == 0) {
      std::string List = Line.substr(std::string(QualsDirective).size());
      std::string Name;
      for (char Ch : List) {
        if (Ch == ',' || Ch == ' ' || Ch == '\t') {
          if (!Name.empty())
            Cur.Builtins.push_back(Name);
          Name.clear();
        } else {
          Name += Ch;
        }
      }
      if (!Name.empty())
        Cur.Builtins.push_back(Name);
      continue;
    }
    Cur.Source += Line;
    Cur.Source += "\n";
    if (Line.find_first_not_of(" \t") != std::string::npos)
      SawContent = true;
  }
  Flush();
  for (EditScript::Step &Step : Script.Steps)
    if (Step.Builtins.empty())
      Step.Builtins = programQualifiers();
  return Script;
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

EditScript stq::fuzz::generateEditScript(Rng &R) {
  ProgramModel M;
  const unsigned Fns = 2 + static_cast<unsigned>(R.pick(4)); // 2..5
  for (unsigned I = 0; I < Fns; ++I) {
    FnModel Fn;
    Fn.Index = I;
    Fn.SigVariant = static_cast<unsigned>(R.pick(3));
    Fn.BodySeed = R.next();
    M.Fns.push_back(Fn);
  }
  M.Builtins = programQualifiers();

  EditScript Script;
  Script.Steps.push_back(renderStep(M));

  const unsigned Edits = 2 + static_cast<unsigned>(R.pick(6)); // 2..7
  for (unsigned E = 0; E < Edits; ++E) {
    switch (R.pick(5)) {
    case 0: {
      // Body tweak: one function's seed changes; everything else must hit.
      if (!M.Fns.empty())
        M.Fns[R.pick(M.Fns.size())].BodySeed = R.next();
      break;
    }
    case 1: {
      // Signature change. Favor the 0<->1 qualifier flip: it is
      // arity-preserving, so no caller's *text* changes and only the
      // invalidation policy (transitive-caller dirtying) re-checks them.
      if (!M.Fns.empty()) {
        FnModel &Fn = M.Fns[R.pick(M.Fns.size())];
        if (Fn.SigVariant == 2 || R.chance(75))
          Fn.SigVariant = Fn.SigVariant == 1 ? 0 : 1;
        else
          Fn.SigVariant = 2;
      }
      break;
    }
    case 2: {
      // Qualifier-set change: dirties every work item via the env hash.
      // "pos" always stays in — rendered programs mention it, and every
      // version must remain front-end-clean.
      const std::vector<std::string> &All = programQualifiers();
      std::vector<std::string> Subset;
      for (const std::string &Q : All)
        if (Q == "pos" || R.chance(70))
          Subset.push_back(Q);
      M.Builtins = std::move(Subset);
      break;
    }
    case 3: {
      // Function add (bounded so scripts stay small).
      if (M.Fns.size() < 7) {
        FnModel Fn;
        Fn.Index = static_cast<unsigned>(M.Fns.size());
        Fn.SigVariant = static_cast<unsigned>(R.pick(3));
        Fn.BodySeed = R.next();
        M.Fns.push_back(Fn);
      }
      break;
    }
    default: {
      // Function delete: only the highest-indexed one, so remaining calls
      // (always to lower indices) stay resolved; main re-renders.
      if (M.Fns.size() > 1)
        M.Fns.pop_back();
      break;
    }
    }
    Script.Steps.push_back(renderStep(M));
  }
  return Script;
}
