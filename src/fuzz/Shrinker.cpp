//===- Shrinker.cpp -------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include <vector>

using namespace stq;
using namespace stq::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &In) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : In) {
    Cur.push_back(C);
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinExcept(const std::vector<std::string> &Units, size_t From,
                       size_t To) {
  std::string Out;
  for (size_t I = 0; I < Units.size(); ++I)
    if (I < From || I >= To)
      Out += Units[I];
  return Out;
}

/// One ddmin pass over \p Units: tries removing chunks, halving the chunk
/// size until it reaches 1. Returns the minimized unit list.
std::vector<std::string> ddmin(std::vector<std::string> Units,
                               const FailurePredicate &Fails,
                               unsigned &EvalsLeft) {
  size_t Chunk = Units.size() / 2;
  while (Chunk >= 1 && EvalsLeft > 0) {
    bool Removed = false;
    for (size_t From = 0; From + Chunk <= Units.size() && EvalsLeft > 0;) {
      std::string Candidate = joinExcept(Units, From, From + Chunk);
      --EvalsLeft;
      if (!Candidate.empty() && Fails(Candidate)) {
        Units.erase(Units.begin() + static_cast<long>(From),
                    Units.begin() + static_cast<long>(From + Chunk));
        Removed = true;
        // Keep From: the next chunk slid into this position.
      } else {
        From += Chunk;
      }
    }
    // Retry the same granularity after progress; halve when a full sweep
    // removes nothing. Termination: either the vector shrinks or Chunk does.
    if (!Removed)
      Chunk /= 2;
  }
  return Units;
}

} // namespace

std::string stq::fuzz::shrink(const std::string &Input,
                              const FailurePredicate &Fails,
                              unsigned MaxEvals) {
  unsigned EvalsLeft = MaxEvals;
  if (EvalsLeft == 0 || Input.empty())
    return Input;
  --EvalsLeft;
  if (!Fails(Input))
    return Input;

  // Phase 1: whole lines.
  std::vector<std::string> Lines = splitLines(Input);
  Lines = ddmin(std::move(Lines), Fails, EvalsLeft);

  // Phase 2: character chunks within the surviving text.
  std::string Text;
  for (const std::string &L : Lines)
    Text += L;
  std::vector<std::string> Chars;
  Chars.reserve(Text.size());
  for (char C : Text)
    Chars.push_back(std::string(1, C));
  Chars = ddmin(std::move(Chars), Fails, EvalsLeft);

  std::string Out;
  for (const std::string &C : Chars)
    Out += C;
  return Out;
}
