//===- QualGen.cpp --------------------------------------------------------===//

#include "fuzz/QualGen.h"

using namespace stq;
using namespace stq::fuzz;

namespace {

const char *const CmpOps[] = {">", ">=", "<", "<=", "!=", "=="};

std::string valueQualifier(Rng &R, unsigned Index,
                           const std::vector<GeneratedQualifier> &Earlier,
                           GeneratedQualifier &Meta) {
  Meta.Name = "q" + std::to_string(Index);
  Meta.IsRef = false;
  Meta.ConstOp = CmpOps[R.pick(6)];
  Meta.Bound = R.range(-3, 5);

  std::string Out = "value qualifier " + Meta.Name + "(int Expr E)\n";
  Out += "  case E of\n";
  Out += "    decl int Const C:\n";
  Out += "      C, where C " + Meta.ConstOp + " " +
         std::to_string(Meta.Bound) + "\n";
  if (R.chance(40)) {
    const char *BinOp = R.chance(50) ? "+" : "*";
    Out += "  | decl int Expr E1, E2:\n";
    Out += "      E1 " + std::string(BinOp) + " E2, where " + Meta.Name +
           "(E1) && " + Meta.Name + "(E2)\n";
  }
  if (R.chance(30)) {
    Out += "  | decl int Expr E1:\n";
    Out += "      -E1, where " + Meta.Name + "(E1)\n";
  }
  if (!Earlier.empty() && R.chance(30)) {
    // Coercion from an earlier qualifier in the same set; sound only when
    // the earlier invariant implies this one — the prover decides.
    const GeneratedQualifier &Prev = Earlier[R.pick(Earlier.size())];
    if (!Prev.IsRef) {
      Out += "  | decl int Expr E1:\n";
      Out += "      E1, where " + Prev.Name + "(E1)\n";
    }
  }
  if (R.chance(25)) {
    Out += "  restrict\n";
    Out += "    decl int Expr E1, E2:\n";
    Out += "      E1 / E2, where " + Meta.Name + "(E2)\n";
  }
  // Usually the invariant restates the const case; sometimes it is
  // perturbed so the obligation set contains refutable goals.
  std::string InvOp = Meta.ConstOp;
  long InvBound = Meta.Bound;
  Meta.InvariantMatchesConstCase = true;
  if (R.chance(15)) {
    Meta.InvariantMatchesConstCase = false;
    if (R.chance(50))
      InvOp = CmpOps[R.pick(6)];
    else
      InvBound += R.chance(50) ? 1 : -1;
  }
  Out += "  invariant value(E) " + InvOp + " " + std::to_string(InvBound) +
         "\n";
  return Out;
}

std::string refQualifier(Rng &R, unsigned Index, GeneratedQualifier &Meta) {
  Meta.Name = "r" + std::to_string(Index);
  Meta.IsRef = true;
  if (R.chance(50)) {
    // The unique shape: pointer l-values assignable only from NULL or a
    // fresh allocation, never read.
    std::string Out = "ref qualifier " + Meta.Name + "(T* LValue L)\n";
    Out += "  assign L\n";
    Out += "    NULL\n";
    Out += "  | new\n";
    Out += "  disallow L\n";
    return Out;
  }
  // The unaliased shape: established at the declaration, address never
  // taken afterwards.
  std::string Out = "ref qualifier " + Meta.Name + "(T Var X)\n";
  Out += "  ondecl\n";
  Out += "  disallow &X\n";
  return Out;
}

} // namespace

GeneratedQualSet stq::fuzz::generateQualSet(Rng &R) {
  GeneratedQualSet Set;
  unsigned Values = static_cast<unsigned>(R.range(1, 3));
  for (unsigned I = 0; I < Values; ++I) {
    GeneratedQualifier Meta;
    Set.Source += valueQualifier(R, I, Set.Quals, Meta);
    Set.Source += "\n";
    Set.Quals.push_back(Meta);
  }
  if (R.chance(30)) {
    GeneratedQualifier Meta;
    Set.Source += refQualifier(R, 0, Meta);
    Set.Source += "\n";
    Set.Quals.push_back(Meta);
  }
  return Set;
}

bool stq::fuzz::derivableConst(const GeneratedQualifier &Q, long &Out) {
  if (Q.IsRef)
    return false;
  if (Q.ConstOp == ">")
    Out = Q.Bound + 1;
  else if (Q.ConstOp == ">=" || Q.ConstOp == "==")
    Out = Q.Bound;
  else if (Q.ConstOp == "<")
    Out = Q.Bound - 1;
  else if (Q.ConstOp == "<=")
    Out = Q.Bound;
  else if (Q.ConstOp == "!=")
    Out = Q.Bound + 1;
  else
    return false;
  return true;
}
