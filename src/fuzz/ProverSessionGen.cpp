//===- ProverSessionGen.cpp -----------------------------------------------===//

#include "fuzz/ProverSessionGen.h"

#include <random>
#include <vector>

using namespace stq;

prover::ProofResult stq::fuzz::runProverSession(unsigned Seed,
                                                prover::EngineKind Engine) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](size_t N) {
    return static_cast<size_t>(Rng() % static_cast<unsigned>(N));
  };

  prover::ProverOptions Options;
  Options.Engine = Engine;
  prover::Prover P(Options);
  prover::TermArena &A = P.arena();

  // Ground vocabulary: constants, small ints, and random f/g/h towers.
  std::vector<prover::TermId> Pool;
  for (const char *C : {"a", "b", "c"})
    Pool.push_back(A.app(C));
  for (int I : {-1, 0, 2})
    Pool.push_back(A.intConst(I));
  size_t Grow = 3 + Pick(5);
  for (size_t I = 0; I < Grow; ++I) {
    prover::TermId X = Pool[Pick(Pool.size())];
    prover::TermId Y = Pool[Pick(Pool.size())];
    switch (Pick(3)) {
    case 0:
      Pool.push_back(A.app("f", {X}));
      break;
    case 1:
      Pool.push_back(A.app("g", {X}));
      break;
    default:
      Pool.push_back(A.app("h", {X, Y}));
      break;
    }
  }

  auto RandomLit = [&]() {
    prover::TermId X = Pool[Pick(Pool.size())];
    prover::TermId Y = Pool[Pick(Pool.size())];
    switch (Pick(6)) {
    case 0:
      return prover::fEq(X, Y);
    case 1:
      return prover::fNe(X, Y);
    case 2:
      return prover::fLe(X, Y);
    case 3:
      return prover::fLt(X, Y);
    case 4:
      return prover::fGe(X, Y);
    default:
      return prover::fGt(X, Y);
    }
  };

  // Quantified axioms come from fixed templates whose inferred triggers
  // cover their variables (the generator only randomizes which are on).
  if (Pick(2)) {
    prover::TermId V = A.var("x");
    P.addAxiom("mono",
               prover::fForall({"x"}, prover::fLe(A.app("f", {V}),
                                                  A.app("g", {V}))));
  }
  if (Pick(2)) {
    prover::TermId V = A.var("y");
    P.addAxiom("idem",
               prover::fForall({"y"},
                               prover::fEq(A.app("f", {A.app("f", {V})}),
                                           A.app("f", {V}))));
  }
  if (Pick(2))
    P.addArithmeticSignAxioms();

  size_t Hyps = 1 + Pick(4);
  for (size_t I = 0; I < Hyps; ++I) {
    switch (Pick(4)) {
    case 0:
      P.addHypothesis(prover::fOr({RandomLit(), RandomLit()}));
      break;
    case 1:
      P.addHypothesis(prover::fImplies(RandomLit(), RandomLit()));
      break;
    default:
      P.addHypothesis(RandomLit());
      break;
    }
  }

  prover::FormulaPtr Goal = Pick(3) == 0
                                ? prover::fImplies(RandomLit(), RandomLit())
                                : RandomLit();
  return P.prove(Goal);
}
