//===- QualGen.h - Random qualifier-definition files ------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of qualifier-DSL files. Each set contains a few
/// threshold-style value qualifiers (const case plus optional sum/product/
/// negation/coercion cases, optional division restrict) and occasionally a
/// reference qualifier mirroring the unique/unaliased shapes, exercising
/// every block kind: case, restrict, assign, disallow, ondecl.
///
/// Output is always well-formed (parses and passes checkWellFormed), but
/// NOT always sound: a fraction of invariants are deliberately perturbed
/// away from the const case, so the soundness prover sees both provable
/// and refutable obligation sets — exactly what the engine-differential
/// oracle needs. When the prover does declare a set sound, Theorem 5.1
/// applies and the campaign runs a derivable-constant program under the
/// interpreter's invariant audit.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_QUALGEN_H
#define STQ_FUZZ_QUALGEN_H

#include "fuzz/Rng.h"

#include <string>
#include <vector>

namespace stq::fuzz {

struct GeneratedQualifier {
  std::string Name;
  bool IsRef = false;
  /// Value qualifiers only: the const case is `C, where C <ConstOp> <Bound>`.
  std::string ConstOp;
  long Bound = 0;
  /// True when the invariant matches the const case (the set's soundness
  /// still depends on the other cases; only the prover's word is final).
  bool InvariantMatchesConstCase = false;
};

struct GeneratedQualSet {
  /// The full DSL source text.
  std::string Source;
  std::vector<GeneratedQualifier> Quals;
};

/// Generates one qualifier-definition file. Deterministic in \p R.
GeneratedQualSet generateQualSet(Rng &R);

/// A constant that the qualifier's const case accepts. Returns false for
/// ref qualifiers. Callers should only execute programs built from these
/// constants when the prover declared the whole set sound.
bool derivableConst(const GeneratedQualifier &Q, long &Out);

} // namespace stq::fuzz

#endif // STQ_FUZZ_QUALGEN_H
