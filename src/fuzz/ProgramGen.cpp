//===- ProgramGen.cpp -----------------------------------------------------===//

#include "fuzz/ProgramGen.h"

using namespace stq;
using namespace stq::fuzz;

namespace {

/// The value-qualifier vocabulary the generator reasons about. Derivations
/// mirror the builtin case rules (see `stqc dump-builtin`): a positive
/// constant derives Pos, pos*pos derives Pos, a Pos expression coerces to
/// Nonzero, only constants derive Untainted, everything derives Tainted.
enum class Q { None, Pos, Neg, Nonzero, Untainted, Tainted };

const char *spec(Q Qual) {
  switch (Qual) {
  case Q::None:
    return "int ";
  case Q::Pos:
    return "int pos ";
  case Q::Neg:
    return "int neg ";
  case Q::Nonzero:
    return "int nonzero ";
  case Q::Untainted:
    return "int untainted ";
  case Q::Tainted:
    return "int tainted ";
  }
  return "int ";
}

/// An expression with a magnitude bound: |value| <= 9^Lg, always. Bounds
/// are threaded through every construct (assignment right-hand sides never
/// exceed the target's declared bound, loop bodies included) so no run of
/// a Sound-mode program can overflow int64 — an overflowed `pos` value
/// would wrap negative and fire the invariant audit as a false Theorem 5.1
/// counterexample.
struct GenExpr {
  std::string Text;
  unsigned Lg = 1;
};

struct VarInfo {
  std::string Name;
  Q Qual = Q::None;
  /// Magnitude budget: every value this variable ever holds satisfies
  /// |v| <= 9^Lg.
  unsigned Lg = 1;
  /// False for unaliased variables (their ref qualifier disallows `&`).
  bool CanTakeAddr = true;
  /// False for unaliased variables (keep their ondecl binding stable).
  bool CanAssign = true;
};

struct PtrInfo {
  std::string Name;
  Q Pointee = Q::None;
  unsigned PointeeLg = 1;
  bool Nonnull = false;
};

struct FnInfo {
  std::string Name;
  Q Ret = Q::None;
  unsigned RetLg = 1;
  std::vector<Q> Params;
};

/// Callers cap argument bounds here; helper bodies assume it of params.
constexpr unsigned ParamLg = 4;
/// Ceiling for any declaration's magnitude budget (9^6 is ~5e5).
constexpr unsigned MaxVarLg = 6;

/// True when reading a variable declared with \p Have derives \p Want.
bool derives(Q Have, Q Want) {
  if (Want == Q::None || Want == Q::Tainted)
    return true;
  if (Have == Want)
    return true;
  // The nonzero coercion case: E1 where pos(E1).
  return Want == Q::Nonzero && Have == Q::Pos;
}

class Generator {
public:
  Generator(Rng &R, const ProgramGenOptions &Opts)
      : R(R), Opts(Opts),
        Mixed(Opts.GenMode == ProgramGenOptions::Mode::Mixed) {}

  std::string run() {
    std::string Out;
    unsigned Helpers = static_cast<unsigned>(R.pick(Opts.MaxHelpers + 1));
    for (unsigned I = 0; I < Helpers; ++I)
      Out += helper();
    Out += mainFunction();
    return Out;
  }

private:
  Rng &R;
  const ProgramGenOptions &Opts;
  bool Mixed;
  std::vector<FnInfo> Fns;
  std::vector<VarInfo> Ints;
  std::vector<PtrInfo> Ptrs;
  unsigned NameCounter = 0;

  std::string fresh(const char *Prefix) {
    return Prefix + std::to_string(NameCounter++);
  }

  /// Mixed mode plants qualifier errors by answering a qualified request
  /// with an arbitrary expression.
  bool sabotage() { return Mixed && R.chance(30); }

  const VarInfo *pickVar(Q Want, unsigned MaxLg) {
    std::vector<const VarInfo *> Fits;
    for (const VarInfo &V : Ints)
      if (derives(V.Qual, Want) && V.Lg <= MaxLg)
        Fits.push_back(&V);
    if (Fits.empty())
      return nullptr;
    return Fits[R.pick(Fits.size())];
  }

  const PtrInfo *pickPtr(Q Pointee, bool NeedNonnull) {
    std::vector<const PtrInfo *> Fits;
    for (const PtrInfo &P : Ptrs)
      if (P.Pointee == Pointee && (!NeedNonnull || P.Nonnull))
        Fits.push_back(&P);
    if (Fits.empty())
      return nullptr;
    return Fits[R.pick(Fits.size())];
  }

  const FnInfo *pickFn(Q Want, unsigned MaxLg) {
    std::vector<const FnInfo *> Fits;
    for (const FnInfo &F : Fns)
      if (derives(F.Ret, Want) && F.RetLg <= MaxLg)
        Fits.push_back(&F);
    if (Fits.empty())
      return nullptr;
    return Fits[R.pick(Fits.size())];
  }

  GenExpr call(const FnInfo &Fn, unsigned Depth) {
    std::string Out = Fn.Name + "(";
    for (size_t I = 0; I < Fn.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += expr(Fn.Params[I], Depth, ParamLg).Text;
    }
    return {Out + ")", Fn.RetLg};
  }

  GenExpr posConst() { return {std::to_string(R.range(1, 9)), 1}; }
  GenExpr negConst() { return {std::to_string(R.range(-9, -1)), 1}; }

  /// An expression that derives \p Want (in Sound mode; Mixed mode may
  /// sabotage) with magnitude at most 9^MaxLg. Depth 0 falls back to
  /// constants and variables.
  GenExpr expr(Q Want, unsigned Depth, unsigned MaxLg) {
    if (MaxLg == 0)
      MaxLg = 1;
    if (sabotage() && Want != Q::None)
      return expr(Q::None, Depth, MaxLg);
    // Products need a splittable budget on top of recursion depth.
    bool Deep = Depth > 0;
    bool CanMul = Deep && MaxLg >= 2;
    switch (Want) {
    case Q::Pos: {
      switch (R.pick(Deep ? 5u : 2u)) {
      case 0:
        return posConst();
      case 1:
        if (const VarInfo *V = pickVar(Q::Pos, MaxLg))
          return {V->Name, V->Lg};
        return posConst();
      case 2: {
        if (!CanMul)
          return posConst();
        GenExpr A = expr(Q::Pos, Depth - 1, MaxLg / 2);
        GenExpr B = expr(Q::Pos, Depth - 1, MaxLg / 2);
        return {"(" + A.Text + " * " + B.Text + ")", A.Lg + B.Lg};
      }
      case 3: {
        GenExpr A = expr(Q::Neg, Depth - 1, MaxLg);
        return {"(- " + A.Text + ")", A.Lg};
      }
      default:
        if (const FnInfo *F = pickFn(Q::Pos, MaxLg))
          return call(*F, Depth - 1);
        if (Opts.UseCasts && R.chance(50))
          return castExpr(Q::Pos, Depth - 1, MaxLg);
        return posConst();
      }
    }
    case Q::Neg: {
      switch (R.pick(Deep ? 4u : 2u)) {
      case 0:
        return negConst();
      case 1:
        if (const VarInfo *V = pickVar(Q::Neg, MaxLg))
          return {V->Name, V->Lg};
        return negConst();
      case 2: {
        GenExpr A = expr(Q::Pos, Depth - 1, MaxLg);
        return {"(- " + A.Text + ")", A.Lg};
      }
      default: {
        if (!CanMul)
          return negConst();
        bool PosFirst = R.chance(50);
        GenExpr A = expr(PosFirst ? Q::Pos : Q::Neg, Depth - 1, MaxLg / 2);
        GenExpr B = expr(PosFirst ? Q::Neg : Q::Pos, Depth - 1, MaxLg / 2);
        return {"(" + A.Text + " * " + B.Text + ")", A.Lg + B.Lg};
      }
      }
    }
    case Q::Nonzero: {
      switch (R.pick(Deep ? 4u : 2u)) {
      case 0:
        // Any nonzero constant derives (case C where C != 0).
        return R.chance(70) ? posConst() : negConst();
      case 1:
        if (const VarInfo *V = pickVar(Q::Nonzero, MaxLg))
          return {V->Name, V->Lg};
        return posConst();
      case 2:
        return expr(Q::Pos, Depth - 1, MaxLg);
      default: {
        if (!CanMul)
          return posConst();
        GenExpr A = expr(Q::Nonzero, Depth - 1, MaxLg / 2);
        GenExpr B = expr(Q::Nonzero, Depth - 1, MaxLg / 2);
        return {"(" + A.Text + " * " + B.Text + ")", A.Lg + B.Lg};
      }
      }
    }
    case Q::Untainted: {
      // Only constants (and other untainted values) derive untainted.
      if (const VarInfo *V = R.chance(40) ? pickVar(Q::Untainted, MaxLg)
                                          : nullptr)
        return {V->Name, V->Lg};
      return {std::to_string(R.range(-9, 81)), 2};
    }
    case Q::Tainted:
      return expr(Q::None, Depth, MaxLg);
    case Q::None:
      break;
    }
    // Unconstrained integer expression.
    switch (R.pick(Deep ? 8u : 2u)) {
    case 0:
      return {std::to_string(R.range(-9, 9)), 1};
    case 1: {
      if (const VarInfo *V = pickVar(Q::None, MaxLg))
        return {V->Name, V->Lg};
      return {std::to_string(R.range(0, 9)), 1};
    }
    case 2: {
      if (R.chance(50) && CanMul) {
        GenExpr A = expr(Q::None, Depth - 1, MaxLg / 2);
        GenExpr B = expr(Q::None, Depth - 1, MaxLg / 2);
        return {"(" + A.Text + " * " + B.Text + ")", A.Lg + B.Lg};
      }
      // 9^a + 9^b <= 2 * 9^max <= 9^(max+1).
      unsigned Sub = MaxLg > 1 ? MaxLg - 1 : 1;
      GenExpr A = expr(Q::None, Depth - 1, Sub);
      GenExpr B = expr(Q::None, Depth - 1, Sub);
      const char *Op = R.chance(50) ? " + " : " - ";
      unsigned Lg = (A.Lg > B.Lg ? A.Lg : B.Lg) + 1;
      return {"(" + A.Text + Op + B.Text + ")", Lg};
    }
    case 3: {
      // Division: the nonzero restrict applies to every division site, so
      // Sound mode only divides by derivably-nonzero expressions. Mixed
      // mode plants restrict violations with arbitrary divisors.
      Q Divisor = Mixed && R.chance(40) ? Q::None : Q::Nonzero;
      const char *Op = R.chance(70) ? " / " : " % ";
      GenExpr A = expr(Q::None, Depth - 1, MaxLg);
      GenExpr B = expr(Divisor, Depth - 1, MaxLg);
      return {"(" + A.Text + Op + B.Text + ")", MaxLg};
    }
    case 4: {
      const char *Ops[] = {" < ", " <= ", " > ", " >= ", " == ", " != "};
      GenExpr A = expr(Q::None, Depth - 1, MaxVarLg);
      GenExpr B = expr(Q::None, Depth - 1, MaxVarLg);
      return {"(" + A.Text + Ops[R.pick(6)] + B.Text + ")", 1};
    }
    case 5:
      if (Opts.UsePointers)
        if (const PtrInfo *P = pickPtr(R.chance(50) ? Q::Pos : Q::None,
                                       /*NeedNonnull=*/true))
          if (P->PointeeLg <= MaxLg)
            return {"*" + P->Name, P->PointeeLg};
      [[fallthrough]];
    case 6:
      if (const FnInfo *F = pickFn(Q::None, MaxLg))
        return call(*F, Depth - 1);
      return {std::to_string(R.range(1, 9)), 1};
    default: {
      GenExpr A = expr(Q::None, Depth - 1, MaxLg);
      return {"(- " + A.Text + ")", A.Lg};
    }
    }
  }

  /// A cast to a value-qualified type: the dynamic escape hatch. Mostly
  /// over operands that satisfy the invariant anyway (the run-time check
  /// passes; when the operand even statically derives the target the
  /// checker elides the check), rarely over arbitrary operands (the check
  /// may fail at run time — a legal outcome the oracle tolerates).
  GenExpr castExpr(Q Target, unsigned Depth, unsigned MaxLg) {
    const char *Name = Target == Q::Pos       ? "pos"
                       : Target == Q::Neg     ? "neg"
                       : Target == Q::Nonzero ? "nonzero"
                                              : "pos";
    Q Operand = R.chance(80) ? Target : Q::None;
    GenExpr A = expr(Operand, Depth, MaxLg);
    return {std::string("(int ") + Name + ")(" + A.Text + ")", A.Lg};
  }

  std::string declStmt(const std::string &Indent) {
    // Pointer declarations point at an addressable local of matching
    // qualifier; `&L` derives nonnull.
    if (Opts.UsePointers && R.chance(18)) {
      std::vector<const VarInfo *> Targets;
      for (const VarInfo &V : Ints)
        if (V.CanTakeAddr && (V.Qual == Q::None || V.Qual == Q::Pos))
          Targets.push_back(&V);
      if (!Targets.empty()) {
        const VarInfo *T = Targets[R.pick(Targets.size())];
        PtrInfo P;
        P.Name = fresh("p");
        P.Pointee = T->Qual;
        P.PointeeLg = T->Lg;
        P.Nonnull = !Mixed || R.chance(70);
        std::string Quals = (P.Pointee == Q::Pos ? "int pos *" : "int*");
        std::string Line = Indent + Quals + (P.Nonnull ? " nonnull " : " ") +
                           P.Name + " = &" + T->Name + ";\n";
        Ptrs.push_back(P);
        return Line;
      }
    }
    if (Opts.UseRefQuals && R.chance(8)) {
      // unique: assignable only from NULL or an allocation, never read.
      std::string Name = fresh("u");
      std::string Line = Indent + "int* unique " + Name + " = NULL;\n";
      if (R.chance(50))
        Line += Indent + Name + " = malloc(sizeof(int));\n";
      return Line;
    }
    if (Opts.UseRefQuals && R.chance(8)) {
      // unaliased: readable, but its address must never be taken and we
      // keep the ondecl binding stable.
      VarInfo V;
      V.Name = fresh("w");
      V.Qual = Q::None;
      V.CanTakeAddr = false;
      V.CanAssign = false;
      GenExpr Init = expr(Q::None, Opts.MaxExprDepth, MaxVarLg);
      V.Lg = Init.Lg;
      std::string Line =
          Indent + "int unaliased " + V.Name + " = " + Init.Text + ";\n";
      Ints.push_back(V);
      return Line;
    }
    static const Q Kinds[] = {Q::None, Q::None,    Q::Pos,       Q::Pos,
                              Q::Neg,  Q::Nonzero, Q::Untainted, Q::Tainted};
    VarInfo V;
    V.Qual = Kinds[R.pick(8)];
    V.Name = fresh("v");
    // The declared budget (not the initializer's actual bound) is the
    // variable's bound for life: later assignments stay within it.
    V.Lg = static_cast<unsigned>(R.range(2, MaxVarLg));
    GenExpr Init = expr(V.Qual, Opts.MaxExprDepth, V.Lg);
    if (Init.Lg > V.Lg)
      V.Lg = Init.Lg;
    std::string Line =
        Indent + spec(V.Qual) + V.Name + " = " + Init.Text + ";\n";
    Ints.push_back(V);
    return Line;
  }

  std::string assignStmt(const std::string &Indent) {
    // Through a pointer (the l-value's declared type governs the check) or
    // directly to a variable.
    if (Opts.UsePointers && R.chance(30) && !Ptrs.empty()) {
      const PtrInfo &P = Ptrs[R.pick(Ptrs.size())];
      if (P.Nonnull || Mixed)
        return Indent + "*" + P.Name + " = " +
               expr(P.Pointee, Opts.MaxExprDepth, P.PointeeLg).Text + ";\n";
    }
    std::vector<const VarInfo *> Targets;
    for (const VarInfo &V : Ints)
      if (V.CanAssign)
        Targets.push_back(&V);
    if (Targets.empty())
      return declStmt(Indent);
    const VarInfo *T = Targets[R.pick(Targets.size())];
    return Indent + T->Name + " = " +
           expr(T->Qual, Opts.MaxExprDepth, T->Lg).Text + ";\n";
  }

  std::string condExpr() {
    if (R.chance(50))
      if (const VarInfo *V = pickVar(Q::None, MaxVarLg))
        return V->Name + " < " + std::to_string(R.range(0, 9));
    return expr(Q::None, 1, MaxVarLg).Text;
  }

  std::string block(const std::string &Indent, unsigned Stmts) {
    // Inner scopes: declarations made here go out of scope at the brace.
    size_t IntMark = Ints.size(), PtrMark = Ptrs.size();
    std::string Out = "{\n";
    for (unsigned I = 0; I < Stmts; ++I)
      Out += stmt(Indent + "  ");
    Out += Indent + "}";
    Ints.resize(IntMark);
    Ptrs.resize(PtrMark);
    return Out;
  }

  std::string stmt(const std::string &Indent) {
    switch (R.pick(10)) {
    case 0:
    case 1:
    case 2:
    case 3:
      return declStmt(Indent);
    case 4:
    case 5:
      return assignStmt(Indent);
    case 6: {
      std::string Out = Indent + "if (" + condExpr() + ") " +
                        block(Indent, 1 + static_cast<unsigned>(R.pick(2)));
      if (R.chance(50))
        Out += " else " + block(Indent, 1);
      return Out + "\n";
    }
    case 7: {
      if (!Opts.UseLoops)
        return declStmt(Indent);
      if (Opts.MayDiverge && R.chance(2)) {
        // Terminated only by the interpreter's fuel bound.
        return Indent + "while (1) { }\n";
      }
      if (R.chance(50)) {
        // Counter-bounded while; the decrement is the last body statement.
        std::string C = fresh("c");
        std::string Out = Indent + "int " + C + " = " +
                          std::to_string(R.range(2, 6)) + ";\n";
        size_t IntMark = Ints.size(), PtrMark = Ptrs.size();
        Out += Indent + "while (" + C + " > 0) {\n";
        Out += stmt(Indent + "  ");
        Out += Indent + "  " + C + " = " + C + " - 1;\n";
        Out += Indent + "}\n";
        Ints.resize(IntMark);
        Ptrs.resize(PtrMark);
        return Out;
      }
      std::string I2 = fresh("i");
      return Indent + "for (int " + I2 + " = 0; " + I2 + " < " +
             std::to_string(R.range(2, 5)) + "; " + I2 + " = " + I2 +
             " + 1) " + block(Indent, 1 + static_cast<unsigned>(R.pick(2))) +
             "\n";
    }
    case 8: {
      if (const FnInfo *F = pickFn(Q::None, MaxVarLg))
        return Indent + call(*F, 1).Text + ";\n";
      return declStmt(Indent);
    }
    default: {
      if (R.chance(40))
        if (const VarInfo *V = pickVar(Q::None, MaxVarLg))
          return Indent + "printf(\"%d\\n\", " + V->Name + ");\n";
      return declStmt(Indent);
    }
    }
  }

  std::string body(unsigned Stmts, Q RetQual, unsigned RetLg) {
    std::string Out;
    for (unsigned I = 0; I < Stmts; ++I)
      Out += stmt("  ");
    Out += "  return " + expr(RetQual, Opts.MaxExprDepth, RetLg).Text + ";\n";
    return Out;
  }

  std::string helper() {
    FnInfo Fn;
    Fn.Name = fresh("f");
    static const Q Rets[] = {Q::None, Q::Pos, Q::Nonzero};
    Fn.Ret = Rets[R.pick(3)];
    Fn.RetLg = MaxVarLg;
    unsigned Params = static_cast<unsigned>(R.pick(3));
    Ints.clear();
    Ptrs.clear();
    std::string Sig;
    static const Q ParamQs[] = {Q::None, Q::None, Q::Pos, Q::Untainted};
    for (unsigned P = 0; P < Params; ++P) {
      VarInfo V;
      V.Qual = ParamQs[R.pick(4)];
      V.Name = fresh("a");
      // Callers promise |arg| <= 9^ParamLg.
      V.Lg = ParamLg;
      if (P)
        Sig += ", ";
      Sig += spec(V.Qual) + V.Name;
      Ints.push_back(V);
      Fn.Params.push_back(V.Qual);
    }
    unsigned Stmts =
        1 + static_cast<unsigned>(R.pick(Opts.MaxStmtsPerFunction / 2 + 1));
    std::string Out = spec(Fn.Ret) + Fn.Name + "(" + Sig + ") {\n" +
                      body(Stmts, Fn.Ret, Fn.RetLg) + "}\n";
    Fns.push_back(Fn);
    return Out;
  }

  std::string mainFunction() {
    Ints.clear();
    Ptrs.clear();
    unsigned Stmts =
        2 + static_cast<unsigned>(R.pick(Opts.MaxStmtsPerFunction));
    return "int main() {\n" + body(Stmts, Q::None, MaxVarLg) + "}\n";
  }
};

} // namespace

const std::vector<std::string> &stq::fuzz::programQualifiers() {
  static const std::vector<std::string> Names = {
      "pos",     "neg",       "nonzero", "nonnull",
      "tainted", "untainted", "unique",  "unaliased"};
  return Names;
}

std::string stq::fuzz::generateProgram(Rng &R, const ProgramGenOptions &Opts) {
  Generator G(R, Opts);
  return G.run();
}
