//===- Shrinker.h - Delta-debugging input minimization ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ddmin-style minimization for failing fuzz inputs: repeatedly removes
/// line chunks, then character chunks, keeping any removal under which the
/// caller's predicate still reports the failure. The evaluation budget is
/// bounded so pathological predicates cannot stall a campaign.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_SHRINKER_H
#define STQ_FUZZ_SHRINKER_H

#include <functional>
#include <string>

namespace stq::fuzz {

/// True when \p Input still triggers the failure being minimized.
using FailurePredicate = std::function<bool(const std::string &)>;

/// Returns a (non-strictly) smaller input that still satisfies \p Fails.
/// \p Fails(Input) is assumed true on entry; if not, \p Input is returned
/// unchanged. At most \p MaxEvals predicate evaluations are spent.
std::string shrink(const std::string &Input, const FailurePredicate &Fails,
                   unsigned MaxEvals = 2000);

} // namespace stq::fuzz

#endif // STQ_FUZZ_SHRINKER_H
