//===- Campaign.cpp -------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "checker/ConstraintInference.h"
#include "checker/Incremental.h"
#include "cminus/Printer.h"
#include "fuzz/EditGen.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/ProverSessionGen.h"
#include "fuzz/QualGen.h"
#include "fuzz/Shrinker.h"
#include "server/Exec.h"
#include "support/MetricsEmitter.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

using namespace stq;
using namespace stq::fuzz;

namespace {

/// Everything a scenario needs to report into. Pool/Cache model the warm
/// stqd process state for the server-path byte-identity comparison; they
/// may be null (corpus replay), which skips that comparison.
struct OracleContext {
  const CampaignOptions &Opts;
  stats::Registry &Stats;
  CampaignResult &Result;
  std::ostream *Log;
  ThreadPool *Pool = nullptr;
  prover::ProverCache *Cache = nullptr;
};

std::string trunc(const std::string &S, size_t Max = 400) {
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...[truncated]";
}

void reportFailure(OracleContext &C, FuzzFailure F) {
  C.Stats.add("fuzz.oracle." + F.Oracle + "_violations", 1);
  if (C.Log)
    *C.Log << "fuzz: " << F.Oracle << " violation (" << F.Kind << ", seed "
           << F.RunSeed << "): " << F.Detail << "\n";
  C.Result.Failures.push_back(std::move(F));
}

/// Shrinks a failing text input, metering predicate evaluations.
std::string minimized(OracleContext &C, const std::string &Input,
                      const FailurePredicate &StillFails) {
  if (!C.Opts.Minimize)
    return Input;
  unsigned Evals = 0;
  std::string Out = shrink(
      Input,
      [&](const std::string &Candidate) {
        ++Evals;
        return StillFails(Candidate);
      },
      500);
  C.Stats.add("fuzz.shrink.evals", Evals);
  return Out;
}

//===----------------------------------------------------------------------===//
// check invocations (the metamorphic oracle's subject)
//===----------------------------------------------------------------------===//

server::ExecResult checkInvocation(const std::string &Source, unsigned Jobs,
                                   const server::SharedContext &Shared = {}) {
  server::Invocation Inv;
  Inv.Command = "check";
  Inv.Source = Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = programQualifiers();
  Inv.Session.Jobs = Jobs;
  return server::executeInvocation(Inv, Shared);
}

/// `check` with an explicit builtin set (edit scripts change theirs).
server::ExecResult checkStep(const EditScript::Step &Step, unsigned Jobs) {
  server::Invocation Inv;
  Inv.Command = "check";
  Inv.Source = Step.Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = Step.Builtins;
  Inv.Session.Jobs = Jobs;
  return server::executeInvocation(Inv);
}

/// `recheck` against a warm engine — the incremental side of the
/// edit-replay differential.
server::ExecResult recheckStep(const EditScript::Step &Step, unsigned Jobs,
                               checker::incremental::Engine *Engine,
                               ThreadPool *Pool) {
  server::Invocation Inv;
  Inv.Command = "recheck";
  Inv.Source = Step.Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = Step.Builtins;
  Inv.Session.Jobs = Jobs;
  Inv.Session.IncrementalUnit = "fuzz";
  server::SharedContext Shared;
  Shared.Incremental = Engine;
  Shared.Pool = Pool;
  return server::executeInvocation(Inv, Shared);
}

bool sameExec(const server::ExecResult &A, const server::ExecResult &B) {
  return A.ExitCode == B.ExitCode && A.Out == B.Out && A.Err == B.Err;
}

std::string describeExecDiff(const server::ExecResult &A,
                             const server::ExecResult &B, const char *AName,
                             const char *BName) {
  std::ostringstream OS;
  OS << AName << " exit=" << A.ExitCode << " vs " << BName
     << " exit=" << B.ExitCode;
  if (A.Out != B.Out)
    OS << "; stdout differs:\n--- " << AName << "\n" << trunc(A.Out)
       << "\n--- " << BName << "\n" << trunc(B.Out);
  if (A.Err != B.Err)
    OS << "; stderr differs:\n--- " << AName << "\n" << trunc(A.Err)
       << "\n--- " << BName << "\n" << trunc(B.Err);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// VM differential oracle
//===----------------------------------------------------------------------===//

/// The complete observable surface of one execution, rendered for byte
/// comparison. \p IncludeCheckCount is dropped when comparing elision
/// on/off: discharged guards legitimately stop counting as executed
/// checks; everything else must still match exactly.
std::string formatRunResult(const interp::RunResult &R,
                            bool IncludeCheckCount) {
  std::ostringstream OS;
  OS << "status=" << static_cast<int>(R.Status) << "\n";
  if (R.ExitValue)
    OS << "exit=" << *R.ExitValue << "\n";
  OS << "output=[" << R.Output << "]\n";
  OS << "trap=[" << R.TrapMessage << "]\n";
  for (const interp::CheckFailure &F : R.CheckFailures)
    OS << "check-failure " << F.Loc.str() << " '" << F.Qual << "' "
       << F.ValueStr << "\n";
  for (const interp::FormatViolation &V : R.FormatViolations)
    OS << "format-violation " << V.Loc.str() << " [" << V.Format << "] "
       << V.Supplied << "/" << V.Consumed << "\n";
  for (const interp::CheckFailure &F : R.AuditFailures)
    OS << "audit-failure " << F.Loc.str() << " '" << F.Qual << "' "
       << F.ValueStr << "\n";
  OS << "steps=" << R.Steps << "\n";
  OS << "audit-checks=" << R.AuditChecks << "\n";
  if (IncludeCheckCount)
    OS << "checks-executed=" << R.ChecksExecuted << "\n";
  return OS.str();
}

/// One execution through the Session pipeline on the given backend.
/// Returns false (no dump) when the front end rejects the program.
bool backendRunDump(const std::string &Source, uint64_t Fuel,
                    SessionOptions::ExecBackend Backend, bool Elide,
                    bool IncludeCheckCount, std::string &Dump) {
  SessionOptions SO;
  SO.Builtins = programQualifiers();
  SO.Interp.AuditQualifiedStores = true;
  SO.Interp.Fuel = Fuel;
  SO.Backend = Backend;
  SO.VmElideChecks = Elide;
  Session S(SO);
  Session::RunOutcome Out = S.run(Source);
  if (!Out.Check.FrontEndOk)
    return false;
  Dump = formatRunResult(Out.Run, IncludeCheckCount);
  return true;
}

bool vmDifferentialViolation(const std::string &Source, uint64_t Fuel,
                             std::string *Kind, std::string *Why) {
  std::string Interp, VmOff, VmOn;
  if (!backendRunDump(Source, Fuel, SessionOptions::ExecBackend::Interp,
                      /*Elide=*/false, /*IncludeCheckCount=*/true, Interp))
    return false;
  if (!backendRunDump(Source, Fuel, SessionOptions::ExecBackend::Vm,
                      /*Elide=*/false, /*IncludeCheckCount=*/true, VmOff)) {
    if (Kind)
      *Kind = "vm-frontend-divergence";
    if (Why)
      *Why = "front end accepted for interp but not for vm";
    return true;
  }
  // Interpreter vs VM without elision: everything matches, including the
  // executed-check count.
  if (Interp != VmOff) {
    if (Kind)
      *Kind = "backend-mismatch";
    if (Why)
      *Why = "interp vs vm (elision off):\n--- interp\n" + trunc(Interp) +
             "\n--- vm\n" + trunc(VmOff);
    return true;
  }
  // Elision on vs off: observable behavior identical (check count aside).
  std::string VmOffNoCount, VmOnNoCount;
  backendRunDump(Source, Fuel, SessionOptions::ExecBackend::Vm,
                 /*Elide=*/false, /*IncludeCheckCount=*/false, VmOffNoCount);
  if (!backendRunDump(Source, Fuel, SessionOptions::ExecBackend::Vm,
                      /*Elide=*/true, /*IncludeCheckCount=*/false,
                      VmOnNoCount))
    return false;
  if (VmOffNoCount != VmOnNoCount) {
    if (Kind)
      *Kind = "elision-mismatch";
    if (Why)
      *Why = "vm elision off vs on:\n--- off\n" + trunc(VmOffNoCount) +
             "\n--- on\n" + trunc(VmOnNoCount);
    return true;
  }
  return false;
}

/// The seventh oracle: the bytecode VM against the tree-walking
/// interpreter on the identical program, byte for byte, then the VM
/// against itself with check elision enabled.
void vmOracle(const std::string &Source, uint64_t RunSeed, OracleContext &C) {
  C.Stats.add("fuzz.vm.runs", 1);
  std::string Kind, Why;
  if (!vmDifferentialViolation(Source, C.Opts.Fuel, &Kind, &Why))
    return;
  C.Stats.add("fuzz.vm.mismatches", 1);
  uint64_t Fuel = C.Opts.Fuel;
  FuzzFailure F;
  F.Oracle = "vm";
  F.Kind = Kind;
  F.RunSeed = RunSeed;
  F.Detail = Why;
  F.Input = minimized(C, Source, [Fuel](const std::string &Text) {
    std::string K, W;
    return vmDifferentialViolation(Text, Fuel, &K, &W);
  });
  reportFailure(C, std::move(F));
}

//===----------------------------------------------------------------------===//
// C-minus program oracles
//===----------------------------------------------------------------------===//

/// Jobs differential + server path + (when accepted) the Theorem 5.1
/// audit. Shared by generated programs and corpus replays.
void cmmOracles(const std::string &Source, uint64_t RunSeed,
                OracleContext &C) {
  server::ExecResult Seq = checkInvocation(Source, 1);
  server::ExecResult Par = checkInvocation(Source, C.Opts.Jobs);
  if (!sameExec(Seq, Par)) {
    unsigned Jobs = C.Opts.Jobs;
    FuzzFailure F;
    F.Oracle = "metamorphic";
    F.Kind = "jobs-mismatch";
    F.RunSeed = RunSeed;
    F.Detail = describeExecDiff(Seq, Par, "jobs=1", "jobs=N");
    F.Input = minimized(C, Source, [Jobs](const std::string &S) {
      return !sameExec(checkInvocation(S, 1), checkInvocation(S, Jobs));
    });
    reportFailure(C, std::move(F));
    return;
  }

  // The stqd execution path: same invocation against warm shared state
  // must stay byte-identical.
  if (C.Pool && C.Cache) {
    server::SharedContext Shared;
    Shared.Pool = C.Pool;
    Shared.Cache = C.Cache;
    server::ExecResult Srv = checkInvocation(Source, C.Opts.Jobs, Shared);
    if (!sameExec(Par, Srv)) {
      FuzzFailure F;
      F.Oracle = "metamorphic";
      F.Kind = "server-mismatch";
      F.RunSeed = RunSeed;
      F.Input = Source;
      F.Detail = describeExecDiff(Par, Srv, "local", "shared-context");
      reportFailure(C, std::move(F));
      return;
    }
  }

  if (Seq.ExitCode != 0) {
    C.Stats.add("fuzz.check.rejected", 1);
    return;
  }
  C.Stats.add("fuzz.check.accepted", 1);

  // Accepted programs also feed the VM differential: both back ends (and
  // elision on/off) must agree byte for byte before the audit runs.
  vmOracle(Source, RunSeed, C);

  // Theorem 5.1: the accepted program runs with the invariant audit armed.
  SessionOptions SO;
  SO.Builtins = programQualifiers();
  SO.Interp.AuditQualifiedStores = true;
  SO.Interp.Fuel = C.Opts.Fuel;
  Session S(SO);
  Session::RunOutcome Out = S.run(Source);
  C.Stats.add("fuzz.exec.runs", 1);
  C.Stats.add("fuzz.audit.checks", Out.Run.AuditChecks);
  switch (Out.Run.Status) {
  case interp::RunStatus::Trap: {
    // An accepted program has no legal trap, whatever mode generated it:
    // the nonnull restrict guards every dereference and the nonzero
    // restrict guards every `/` and `%` divisor. (This oracle caught the
    // missing `%` restrict; see tests/corpus/rem_zero_divisor.cmm.)
    FuzzFailure F;
    F.Oracle = "soundness";
    F.Kind = "trap";
    F.RunSeed = RunSeed;
    F.Input = Source;
    F.Detail = "accepted program trapped: " + Out.Run.TrapMessage;
    C.Stats.add("fuzz.exec.traps", 1);
    reportFailure(C, std::move(F));
    break;
  }
  case interp::RunStatus::FuelExhausted:
    C.Stats.add("fuzz.exec.fuel_exhausted", 1);
    break;
  case interp::RunStatus::CheckFailure:
    // A failing run-time check at a cast is the paper's sanctioned
    // dynamic semantics, not a soundness violation.
    C.Stats.add("fuzz.exec.check_failures", 1);
    break;
  default:
    break;
  }
  if (!Out.Run.AuditFailures.empty()) {
    const interp::CheckFailure &A = Out.Run.AuditFailures.front();
    uint64_t Fuel = C.Opts.Fuel;
    FuzzFailure F;
    F.Oracle = "soundness";
    F.Kind = "audit-violation";
    F.RunSeed = RunSeed;
    F.Detail = "invariant of '" + A.Qual + "' violated by value " +
               A.ValueStr + " at line " + std::to_string(A.Loc.Line) +
               " in a checker-accepted program";
    F.Input = minimized(C, Source, [Fuel](const std::string &Text) {
      if (checkInvocation(Text, 1).ExitCode != 0)
        return false;
      SessionOptions MO;
      MO.Builtins = programQualifiers();
      MO.Interp.AuditQualifiedStores = true;
      MO.Interp.Fuel = Fuel;
      Session MS(MO);
      return !MS.run(Text).Run.AuditFailures.empty();
    });
    reportFailure(C, std::move(F));
  }
}

//===----------------------------------------------------------------------===//
// Qualifier-set oracles
//===----------------------------------------------------------------------===//

bool reportsDiffer(const std::vector<soundness::SoundnessReport> &A,
                   const std::vector<soundness::SoundnessReport> &B,
                   std::string &Why) {
  if (A.size() != B.size()) {
    Why = "report count " + std::to_string(A.size()) + " vs " +
          std::to_string(B.size());
    return true;
  }
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].Obligations.size() != B[I].Obligations.size()) {
      Why = A[I].Qual + ": obligation count differs";
      return true;
    }
    for (size_t J = 0; J < A[I].Obligations.size(); ++J) {
      const soundness::Obligation &X = A[I].Obligations[J];
      const soundness::Obligation &Y = B[I].Obligations[J];
      if (X.Result != Y.Result || X.Description != Y.Description) {
        Why = X.Qual + ": " + X.Description + " -> " +
              std::to_string(static_cast<int>(X.Result)) + " vs " +
              std::to_string(static_cast<int>(Y.Result));
        return true;
      }
    }
  }
  return false;
}

std::vector<soundness::SoundnessReport>
proveQualSource(const std::string &Src, prover::EngineKind Engine,
                prover::ProverCache *SharedCache = nullptr) {
  SessionOptions SO;
  SO.QualSources = {Src};
  SO.Prover.Engine = Engine;
  SO.SharedCache = SharedCache;
  Session S(SO);
  if (!S.loadQualifiers())
    return {};
  return S.prove();
}

/// Load + engine differential + warm-cache replay; for generated sets that
/// prove fully sound, the derivable-constant program closes the loop with
/// an audited execution. \p Set is null for corpus files (which may be
/// deliberately malformed robustness inputs, so a load failure is fine).
void qualSetOracles(const std::string &Src, const GeneratedQualSet *Set,
                    uint64_t RunSeed, OracleContext &C) {
  SessionOptions SO;
  SO.QualSources = {Src};
  Session S(SO);
  if (!S.loadQualifiers()) {
    if (Set) {
      // The generator promises well-formed output; a reject means the
      // generator or the DSL front end broke its contract.
      std::ostringstream OS;
      S.diags().print(OS);
      FuzzFailure F;
      F.Oracle = "robustness";
      F.Kind = "qualgen-reject";
      F.RunSeed = RunSeed;
      F.Input = Src;
      F.Detail = "generated qualifier set failed to load:\n" + trunc(OS.str());
      reportFailure(C, std::move(F));
    }
    return;
  }

  std::vector<soundness::SoundnessReport> Inc = S.prove();
  std::vector<soundness::SoundnessReport> Ref =
      proveQualSource(Src, prover::EngineKind::Reference);
  std::string Why;
  if (reportsDiffer(Inc, Ref, Why)) {
    FuzzFailure F;
    F.Oracle = "engine-differential";
    F.Kind = "verdict-mismatch";
    F.RunSeed = RunSeed;
    F.Detail = "incremental vs reference: " + Why;
    F.Input = minimized(C, Src, [](const std::string &Text) {
      std::vector<soundness::SoundnessReport> A =
          proveQualSource(Text, prover::EngineKind::Incremental);
      if (A.empty())
        return false;
      std::vector<soundness::SoundnessReport> B =
          proveQualSource(Text, prover::EngineKind::Reference);
      std::string W;
      return reportsDiffer(A, B, W);
    });
    reportFailure(C, std::move(F));
    return;
  }

  // Warm replay from this session's populated cache: verdicts must match
  // the cold pass exactly.
  std::vector<soundness::SoundnessReport> Warm = proveQualSource(
      Src, prover::EngineKind::Incremental, &S.proverCache());
  if (reportsDiffer(Inc, Warm, Why)) {
    FuzzFailure F;
    F.Oracle = "metamorphic";
    F.Kind = "warm-cache-mismatch";
    F.RunSeed = RunSeed;
    F.Input = Src;
    F.Detail = "cold vs warm-cache re-proof: " + Why;
    reportFailure(C, std::move(F));
    return;
  }

  if (!Set)
    return;
  bool AllSound = !Inc.empty();
  for (const soundness::SoundnessReport &Report : Inc)
    AllSound = AllSound && Report.sound();
  if (!AllSound)
    return;

  // The prover vouched for the set; Theorem 5.1 now covers programs over
  // it, so a derivable-constant program must run audit-clean.
  std::string Prog = "int main() {\n";
  unsigned Decls = 0;
  for (const GeneratedQualifier &Q : Set->Quals) {
    long Const = 0;
    if (!derivableConst(Q, Const))
      continue;
    Prog += "  int " + Q.Name + " x" + std::to_string(Decls++) + " = " +
            std::to_string(Const) + ";\n";
  }
  Prog += "  return 0;\n}\n";
  if (Decls == 0)
    return;
  SessionOptions PO;
  PO.QualSources = {Src};
  PO.Interp.AuditQualifiedStores = true;
  PO.Interp.Fuel = C.Opts.Fuel;
  Session PS(PO);
  Session::RunOutcome Out = PS.run(Prog);
  if (!Out.Check.FrontEndOk || Out.Check.Result.QualErrors > 0) {
    // Incompleteness (a conservative reject) is not a soundness bug.
    C.Stats.add("fuzz.check.rejected", 1);
    return;
  }
  C.Stats.add("fuzz.check.accepted", 1);
  C.Stats.add("fuzz.exec.runs", 1);
  C.Stats.add("fuzz.audit.checks", Out.Run.AuditChecks);
  if (!Out.Run.AuditFailures.empty()) {
    const interp::CheckFailure &A = Out.Run.AuditFailures.front();
    FuzzFailure F;
    F.Oracle = "soundness";
    F.Kind = "audit-violation-proved-set";
    F.RunSeed = RunSeed;
    F.Input = Src + "\n// program:\n" + Prog;
    F.Detail = "prover declared the set sound, yet invariant of '" + A.Qual +
               "' was violated by value " + A.ValueStr;
    reportFailure(C, std::move(F));
  }
}

//===----------------------------------------------------------------------===//
// Edit-replay oracles
//===----------------------------------------------------------------------===//

/// The session counters that must not depend on *how* a verdict was
/// produced: the snapshot's counters with scheduling-dependent prefixes
/// (pool.*, check.memo.*, incremental.*, ...) erased. Zero-valued entries
/// are dropped too — warm and cold paths may materialize different zero
/// counters, and 0-vs-absent is presentational, not semantic.
std::map<std::string, uint64_t>
invariantCounters(const stats::Registry &Metrics) {
  std::map<std::string, uint64_t> Counters = Metrics.snapshot().Counters;
  for (auto It = Counters.begin(); It != Counters.end();) {
    bool Drop = It->second == 0;
    for (const std::string &P :
         metrics::schedulingDependentCounterPrefixes())
      Drop = Drop || It->first.rfind(P, 0) == 0;
    It = Drop ? Counters.erase(It) : std::next(It);
  }
  return Counters;
}

std::string describeCounterDiff(const std::map<std::string, uint64_t> &Warm,
                                const std::map<std::string, uint64_t> &Cold) {
  for (const auto &KV : Warm) {
    auto It = Cold.find(KV.first);
    if (It == Cold.end())
      return "'" + KV.first + "' only in warm (" +
             std::to_string(KV.second) + ")";
    if (It->second != KV.second)
      return "'" + KV.first + "': warm " + std::to_string(KV.second) +
             " vs cold " + std::to_string(It->second);
  }
  for (const auto &KV : Cold)
    if (!Warm.count(KV.first))
      return "'" + KV.first + "' only in cold (" +
             std::to_string(KV.second) + ")";
  return "identical";
}

/// The edit-replay differential: replays \p Text as an edit script, with
/// every step's warm `recheck` (fresh incremental engine at step 0, warm
/// thereafter) byte-compared against a cold one-shot `check`, then a
/// second replay comparing the metrics-invariant session counters the two
/// paths publish. Returns true and fills \p Kind/\p Why on the first
/// divergence. \p Pool may be null (shrinking, corpus replay).
bool editScriptViolation(const std::string &Text, const CampaignOptions &Opts,
                         ThreadPool *Pool, std::string *Kind,
                         std::string *Why) {
  EditScript Script = parseEditScript(Text);

  checker::incremental::Engine Engine;
  for (size_t I = 0; I < Script.Steps.size(); ++I) {
    const EditScript::Step &Step = Script.Steps[I];
    server::ExecResult Warm = recheckStep(Step, Opts.Jobs, &Engine, Pool);
    server::ExecResult Cold = checkStep(Step, 1);
    if (!sameExec(Warm, Cold)) {
      if (Kind)
        *Kind = "incremental-mismatch";
      if (Why)
        *Why = "step " + std::to_string(I) + ": " +
               describeExecDiff(Warm, Cold, "recheck-warm", "check-cold");
      return true;
    }
  }

  // Second replay at the Session level: the verdict-bearing counters
  // (check.qual_errors, check.deref_sites, diag.*, ...) must not drift
  // when part of the answer is served from the verdict store.
  checker::incremental::Engine Engine2;
  for (size_t I = 0; I < Script.Steps.size(); ++I) {
    const EditScript::Step &Step = Script.Steps[I];
    SessionOptions AO;
    AO.Builtins = Step.Builtins;
    AO.Jobs = Opts.Jobs;
    AO.SharedIncremental = &Engine2;
    AO.IncrementalUnit = "fuzz";
    Session A(AO);
    A.recheck(Step.Source);
    SessionOptions BO;
    BO.Builtins = Step.Builtins;
    BO.Jobs = 1;
    Session B(BO);
    B.check(Step.Source);
    std::map<std::string, uint64_t> MA = invariantCounters(A.metrics());
    std::map<std::string, uint64_t> MB = invariantCounters(B.metrics());
    if (MA != MB) {
      if (Kind)
        *Kind = "incremental-metrics-mismatch";
      if (Why)
        *Why = "step " + std::to_string(I) +
               ": invariant counters diverge: " + describeCounterDiff(MA, MB);
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Scenarios
//===----------------------------------------------------------------------===//

void soundnessScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  ProgramGenOptions GO;
  GO.MayDiverge = true;
  std::string Source = generateProgram(R, GO);
  C.Stats.add("fuzz.gen.programs", 1);
  cmmOracles(Source, RunSeed, C);
}

void mixedScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  ProgramGenOptions GO;
  GO.GenMode = ProgramGenOptions::Mode::Mixed;
  std::string Source = generateProgram(R, GO);
  C.Stats.add("fuzz.gen.programs", 1);
  // Mixed programs mostly carry diagnostics; the jobs differential (and
  // the audit, on the occasional accepted one) still applies.
  cmmOracles(Source, RunSeed, C);
}

void qualgenScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  GeneratedQualSet Set = generateQualSet(R);
  C.Stats.add("fuzz.gen.qualsets", 1);
  qualSetOracles(Set.Source, &Set, RunSeed, C);
}

void proverScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  unsigned SubSeed = static_cast<unsigned>(R.next());
  C.Stats.add("fuzz.gen.prover_sessions", 1);
  prover::ProofResult Inc =
      runProverSession(SubSeed, prover::EngineKind::Incremental);
  prover::ProofResult Ref =
      runProverSession(SubSeed, prover::EngineKind::Reference);
  if (Inc != Ref) {
    FuzzFailure F;
    F.Oracle = "engine-differential";
    F.Kind = "session-mismatch";
    F.RunSeed = RunSeed;
    F.Input = "runProverSession(" + std::to_string(SubSeed) + ")";
    F.Detail = "incremental=" + std::to_string(static_cast<int>(Inc)) +
               " reference=" + std::to_string(static_cast<int>(Ref));
    reportFailure(C, std::move(F));
  }
}

void editReplayScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  EditScript Script = generateEditScript(R);
  C.Stats.add("fuzz.gen.edit_scripts", 1);
  C.Stats.add("fuzz.gen.edit_steps", Script.Steps.size());
  std::string Text = renderEditScript(Script);
  std::string Kind, Why;
  if (!editScriptViolation(Text, C.Opts, C.Pool, &Kind, &Why))
    return;
  FuzzFailure F;
  F.Oracle = "edit-replay";
  F.Kind = Kind;
  F.RunSeed = RunSeed;
  F.Detail = Why;
  const CampaignOptions &Opts = C.Opts;
  F.Input = minimized(C, Text, [&Opts](const std::string &Candidate) {
    std::string K, W;
    return editScriptViolation(Candidate, Opts, nullptr, &K, &W);
  });
  reportFailure(C, std::move(F));
}

/// Parses the error count from a `check` verdict line ("qualifier errors:
/// N (..."). Returns false on a front-end failure (no verdict line).
bool parseQualErrors(const server::ExecResult &R, unsigned &Out) {
  const std::string Tag = "qualifier errors: ";
  size_t At = R.Out.find(Tag);
  if (R.ExitCode >= 2 || At == std::string::npos)
    return false;
  Out = static_cast<unsigned>(
      std::strtoul(R.Out.c_str() + At + Tag.size(), nullptr, 10));
  return true;
}

server::ExecResult inferInvocation(const std::string &Source, unsigned Jobs,
                                   bool Apply) {
  server::Invocation Inv;
  Inv.Command = "infer";
  Inv.Source = Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = programQualifiers();
  Inv.Session.Jobs = Jobs;
  Inv.Session.Infer.Apply = Apply;
  return server::executeInvocation(Inv);
}

/// The inference oracle: strip every inferable annotation, re-infer with
/// the constraint engine, apply, and hold the result to three laws —
/// applying inferred annotations never adds errors (and keeps a clean
/// program clean, the greatest-fixpoint guarantee), the fixpoint reference
/// engine's inferred set is contained in the constraint engine's full set,
/// and the suggestion report is byte-identical across job counts.
void inferenceScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  std::string Source = generateProgram(R);
  C.Stats.add("fuzz.gen.programs", 1);
  C.Stats.add("fuzz.inference.inputs", 1);

  // Strip inferable qualifiers through the front end and re-print.
  SessionOptions SO;
  SO.Builtins = programQualifiers();
  Session Strip(SO);
  Session::FrontEndOutcome FE = Strip.frontEnd(Source);
  if (!FE.Ok || Strip.diags().hasErrors())
    return; // Generator produced a front-end reject; nothing to infer.
  checker::stripInferableQualifiers(*FE.Program, Strip.qualifiers());
  std::string Stripped = cminus::printProgram(*FE.Program);

  // Jobs differential: the suggestion report is deterministic by key.
  server::ExecResult Seq = inferInvocation(Stripped, 1, /*Apply=*/false);
  server::ExecResult Par =
      inferInvocation(Stripped, C.Opts.Jobs, /*Apply=*/false);
  if (!sameExec(Seq, Par)) {
    FuzzFailure F;
    F.Oracle = "inference";
    F.Kind = "jobs-mismatch-infer";
    F.RunSeed = RunSeed;
    F.Input = Stripped;
    F.Detail = describeExecDiff(Seq, Par, "jobs=1", "jobs=N");
    reportFailure(C, std::move(F));
    return;
  }

  // Apply the minimal set: errors must not increase, clean must stay
  // clean.
  unsigned StrippedErrors = 0;
  if (!parseQualErrors(checkInvocation(Stripped, 1), StrippedErrors))
    return;
  server::ExecResult Applied = inferInvocation(Stripped, 1, /*Apply=*/true);
  unsigned AppliedErrors = 0;
  if (Applied.ExitCode != 0 ||
      !parseQualErrors(checkInvocation(Applied.Out, 1), AppliedErrors)) {
    FuzzFailure F;
    F.Oracle = "inference";
    F.Kind = "applied-reject";
    F.RunSeed = RunSeed;
    F.Input = Stripped;
    F.Detail = "annotated program no longer passes the front end:\n" +
               trunc(Applied.Out) + "\n" + trunc(Applied.Err);
    reportFailure(C, std::move(F));
    return;
  }
  if (AppliedErrors > StrippedErrors) {
    FuzzFailure F;
    F.Oracle = "inference";
    F.Kind = StrippedErrors == 0 ? "apply-not-clean" : "apply-errors-increase";
    F.RunSeed = RunSeed;
    F.Input = Stripped;
    F.Detail = "stripped program has " + std::to_string(StrippedErrors) +
               " qualifier error(s), applying inferred annotations yields " +
               std::to_string(AppliedErrors);
    reportFailure(C, std::move(F));
    return;
  }

  // Containment: every (var, qualifier) the reference fixpoint engine
  // infers appears in the constraint engine's full set (minimal plus
  // demoted), keyed without AST pointers.
  Session Infer(SO);
  Session::FrontEndOutcome FE2 = Infer.frontEnd(Stripped);
  if (!FE2.Ok || Infer.diags().hasErrors())
    return;
  checker::ConstraintInferenceOptions IO;
  IO.Cache = C.Cache;
  checker::InferenceReport Cons =
      checker::inferWithConstraints(*FE2.Program, Infer.qualifiers(), IO);
  checker::InferenceReport Fix =
      checker::fixpointReport(*FE2.Program, Infer.qualifiers(), IO);
  auto pairKey = [](const checker::InferenceSuggestion &S,
                    const checker::SuggestedQual &Q) {
    return std::to_string(S.Unit) + ":" + S.Function + ":" + S.Var + ":" +
           S.Loc.str() + ":" + Q.Qual;
  };
  std::set<std::string> ConsPairs;
  for (const auto &S : Cons.Suggestions)
    for (const auto &Q : S.Quals)
      ConsPairs.insert(pairKey(S, Q));
  for (const auto &S : Fix.Suggestions)
    for (const auto &Q : S.Quals)
      if (!ConsPairs.count(pairKey(S, Q))) {
        FuzzFailure F;
        F.Oracle = "inference";
        F.Kind = "fixpoint-containment";
        F.RunSeed = RunSeed;
        F.Input = Stripped;
        F.Detail = "fixpoint engine infers " + pairKey(S, Q) +
                   " but the constraint engine's full set omits it";
        reportFailure(C, std::move(F));
        return;
      }
}

/// Dedicated VM-differential runs: divergence-capable programs (checker
/// verdict irrelevant — rejected programs still execute) through
/// interp-vs-vm and elision-on/off byte comparison.
void vmScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  ProgramGenOptions GO;
  GO.MayDiverge = true;
  std::string Source = generateProgram(R, GO);
  C.Stats.add("fuzz.gen.programs", 1);
  vmOracle(Source, RunSeed, C);
}

/// `check` over the multi-TU front end: the units ship as `inputs`, the
/// headers as an in-memory `files` map, exactly like a client talking to
/// stqd.
server::ExecResult multiTuInvocation(const workloads::MultiTuProgram &P,
                                     unsigned Jobs) {
  server::Invocation Inv;
  Inv.Command = "check";
  for (const workloads::MultiTuProgram::File &U : P.Units)
    Inv.Inputs.push_back({U.Name, U.Text});
  for (const workloads::MultiTuProgram::File &H : P.Headers)
    Inv.Files[H.Name] = H.Text;
  Inv.HasFiles = true;
  Inv.Session.Builtins = {"pos", "neg"};
  Inv.Session.Jobs = Jobs;
  return server::executeInvocation(Inv);
}

/// The same program pre-expanded into one translation unit, still fed
/// through the preprocessing front end (the flattening keeps the #define
/// and #ifndef lines, only #includes are gone).
server::ExecResult flattenedInvocation(const workloads::MultiTuProgram &P) {
  server::Invocation Inv;
  Inv.Command = "check";
  Inv.Inputs.push_back({"flattened.c", P.Flattened});
  Inv.HasFiles = true; // Empty map: the flattening resolves no includes.
  Inv.Session.Builtins = {"pos", "neg"};
  Inv.Session.Jobs = 1;
  return server::executeInvocation(Inv);
}

/// The `qualifier errors: ...` verdict line, the location-independent tail
/// of a check's stdout (multi-TU and flattened runs place diagnostics at
/// different files/lines, so only the counters are comparable).
std::string verdictLine(const std::string &Out) {
  size_t Pos = Out.rfind("qualifier errors:");
  return Pos == std::string::npos ? std::string() : Out.substr(Pos);
}

/// The frontend oracle: preprocess-then-check on a generated multi-TU
/// program must be byte-identical across job counts, and its verdict
/// counters must equal checking the pre-expanded single-TU flattening of
/// the same program.
void frontendScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  unsigned Units = 2 + static_cast<unsigned>(R.pick(6));
  unsigned Fns = 1 + static_cast<unsigned>(R.pick(4));
  unsigned Seed = 1 + static_cast<unsigned>(R.pick(63));
  workloads::MultiTuProgram P = workloads::makeMultiTuFarm(Units, Fns, Seed);
  C.Stats.add("fuzz.frontend.inputs", 1);

  server::ExecResult Seq = multiTuInvocation(P, 1);
  server::ExecResult Par = multiTuInvocation(P, C.Opts.Jobs);
  if (!sameExec(Seq, Par)) {
    FuzzFailure F;
    F.Oracle = "frontend";
    F.Kind = "jobs-mismatch-multitu";
    F.RunSeed = RunSeed;
    F.Input = P.Flattened;
    F.Detail = describeExecDiff(Seq, Par, "jobs=1", "jobs=N");
    reportFailure(C, std::move(F));
    return;
  }

  server::ExecResult Flat = flattenedInvocation(P);
  if (Seq.ExitCode != Flat.ExitCode ||
      verdictLine(Seq.Out) != verdictLine(Flat.Out)) {
    FuzzFailure F;
    F.Oracle = "frontend";
    F.Kind = "flatten-mismatch";
    F.RunSeed = RunSeed;
    F.Input = P.Flattened;
    F.Detail = "multi-TU (" + std::to_string(P.Units.size()) +
               " units, farm seed " + std::to_string(Seed) + ") vs " +
               "flattened single TU: " +
               describeExecDiff(Seq, Flat, "multi-tu", "flattened");
    reportFailure(C, std::move(F));
  }
}

/// A `recheck` over a header+unit tree, shaped exactly like a client
/// talking to stqd: the units ship as `inputs`, the headers as the
/// in-memory `files` map.
server::Invocation recheckTreeInvocation(const workloads::MultiTuProgram &P,
                                         unsigned Jobs) {
  server::Invocation Inv;
  Inv.Command = "recheck";
  for (const workloads::MultiTuProgram::File &U : P.Units)
    Inv.Inputs.push_back({U.Name, U.Text});
  for (const workloads::MultiTuProgram::File &H : P.Headers)
    Inv.Files[H.Name] = H.Text;
  Inv.HasFiles = true;
  Inv.Session.Jobs = Jobs;
  return Inv;
}

/// Applies one seeded edit to header \p Text: insert a blank line, insert
/// a harmless #define, or append a fresh prototype. All three keep the
/// tree front-end-clean while shifting line maps and every includer's
/// preprocessed signature.
std::string editHeaderText(const std::string &Text, Rng &R, unsigned Step,
                           std::string &Desc) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char Ch : Text) {
    if (Ch == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(Ch);
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  std::string Tag = std::to_string(Step);
  switch (R.pick(3)) {
  case 0: {
    size_t At = R.pick(Lines.size() + 1);
    Lines.insert(Lines.begin() + At, "");
    Desc = "insert blank line at " + std::to_string(At + 1);
    break;
  }
  case 1: {
    size_t At = R.pick(Lines.size() + 1);
    Lines.insert(Lines.begin() + At, "#define STQ_FUZZ_PAD_" + Tag + " " + Tag);
    Desc = "insert #define at " + std::to_string(At + 1);
    break;
  }
  default:
    Lines.push_back("int stq_fuzz_probe_" + Tag + "(int x);");
    Desc = "append prototype stq_fuzz_probe_" + Tag;
    break;
  }
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// The header-edit oracle: a §6 corpus program (or a small synthetic
/// farm) is rechecked through one persistent incremental engine while its
/// shared headers are edited between runs — what a long-lived stqd sees
/// from an editor session. After every header touch the warm recheck must
/// stay byte-identical to a cold recheck of the same tree.
void headerEditScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  workloads::MultiTuProgram Prog;
  std::string Name;
  std::string QualFile;
  if (R.pick(3) == 0) {
    unsigned Units = 2 + static_cast<unsigned>(R.pick(5));
    unsigned Fns = 1 + static_cast<unsigned>(R.pick(3));
    unsigned Seed = 1 + static_cast<unsigned>(R.pick(63));
    Prog = workloads::makeMultiTuFarm(Units, Fns, Seed);
    Name = "farm-" + std::to_string(Seed);
  } else {
    std::vector<workloads::CorpusProgram> All = workloads::makeAllCorpora();
    workloads::CorpusProgram &P = All[R.pick(All.size())];
    Prog = std::move(P.Prog);
    QualFile = P.QualFile;
    Name = P.Name;
  }
  if (Prog.Headers.empty())
    return;
  C.Stats.add("fuzz.header_edit.programs", 1);

  server::Invocation Inv = recheckTreeInvocation(Prog, C.Opts.Jobs);
  if (QualFile.empty()) {
    Inv.Session.Builtins = {"pos", "neg"};
  } else {
    Inv.Session.QualSources = {QualFile};
    Inv.Session.IncludeDirs = {"include", "lib"};
  }

  checker::incremental::Engine Engine;
  server::SharedContext Warm;
  Warm.Incremental = &Engine;

  // Prime the engine on the pristine tree, then edit and re-verify.
  std::string LastEdit = "pristine tree";
  std::string LastHeader;
  unsigned Steps = 2 + static_cast<unsigned>(R.pick(3));
  for (unsigned Step = 0; Step <= Steps; ++Step) {
    server::ExecResult WarmR = server::executeInvocation(Inv, Warm);
    server::ExecResult ColdR = server::executeInvocation(Inv);
    if (!sameExec(WarmR, ColdR)) {
      FuzzFailure F;
      F.Oracle = "header-edit";
      F.Kind = "warm-cold-recheck-mismatch";
      F.RunSeed = RunSeed;
      F.Input = LastHeader.empty() ? std::string() : Inv.Files[LastHeader];
      F.Detail = Name + " after step " + std::to_string(Step) + " (" +
                 LastEdit + "): " +
                 describeExecDiff(WarmR, ColdR, "warm-recheck",
                                  "cold-recheck");
      reportFailure(C, std::move(F));
      return;
    }
    if (Step == Steps)
      break;
    const workloads::MultiTuProgram::File &H =
        Prog.Headers[R.pick(Prog.Headers.size())];
    std::string Desc;
    Inv.Files[H.Name] = editHeaderText(Inv.Files[H.Name], R, Step, Desc);
    LastEdit = H.Name + ": " + Desc;
    LastHeader = H.Name;
    C.Stats.add("fuzz.header_edit.edits", 1);
  }
}

void robustnessScenario(Rng &R, uint64_t RunSeed, OracleContext &C) {
  C.Stats.add("fuzz.robustness.inputs", 1);
  switch (R.pick(4)) {
  case 0: {
    // Token soup through the C-minus front end: diagnose, never abort.
    std::string Soup =
        tokenSoup(R, Vocab::CMinus, 5 + static_cast<unsigned>(R.pick(60)));
    SessionOptions SO;
    SO.Builtins = programQualifiers();
    Session S(SO);
    S.frontEnd(Soup);
    break;
  }
  case 1: {
    std::string Soup =
        tokenSoup(R, Vocab::QualDsl, 5 + static_cast<unsigned>(R.pick(50)));
    SessionOptions SO;
    SO.QualSources = {Soup};
    Session S(SO);
    S.loadQualifiers();
    break;
  }
  case 2: {
    // Byte mutations of a valid program: exercises lexer and parser
    // recovery near well-formed input; the jobs differential must hold on
    // the diagnostic output too.
    std::string Source = mutateBytes(generateProgram(R), R);
    C.Stats.add("fuzz.mutations", 1);
    server::ExecResult Seq = checkInvocation(Source, 1);
    server::ExecResult Par = checkInvocation(Source, C.Opts.Jobs);
    if (!sameExec(Seq, Par)) {
      FuzzFailure F;
      F.Oracle = "metamorphic";
      F.Kind = "jobs-mismatch-mutated";
      F.RunSeed = RunSeed;
      F.Input = Source;
      F.Detail = describeExecDiff(Seq, Par, "jobs=1", "jobs=N");
      reportFailure(C, std::move(F));
    }
    break;
  }
  default: {
    std::string Src = mutateBytes(generateQualSet(R).Source, R);
    C.Stats.add("fuzz.mutations", 1);
    SessionOptions SO;
    SO.QualSources = {Src};
    Session S(SO);
    S.loadQualifiers();
    break;
  }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

CampaignResult stq::fuzz::runCampaign(const CampaignOptions &Opts,
                                      stats::Registry &Stats,
                                      std::ostream *Log) {
  CampaignResult Result;
  ThreadPool Pool(Opts.Jobs);
  prover::ProverCache Cache;
  OracleContext C{Opts, Stats, Result, Log, &Pool, &Cache};

  Rng Master(Opts.Seed);
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Opts.Runs; ++I) {
    if (Opts.TimeBudgetSeconds > 0) {
      auto Elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
      if (Elapsed >= static_cast<long>(Opts.TimeBudgetSeconds)) {
        if (Log)
          *Log << "fuzz: time budget exhausted after " << I << " runs\n";
        break;
      }
    }
    uint64_t RunSeed = Master.next();
    Rng R(RunSeed);
    Stats.add("fuzz.runs", 1);
    // The weight draw happens even under OnlyScenario so per-run seeds
    // line up with the mixed campaign for the same master seed.
    uint64_t W = R.pick(100);
    const std::string &Only = Opts.OnlyScenario;
    if (Only == "soundness" || (Only.empty() && W < 45))
      soundnessScenario(R, RunSeed, C);
    else if (Only == "mixed" || (Only.empty() && W < 60))
      mixedScenario(R, RunSeed, C);
    else if (Only == "qualgen" || (Only.empty() && W < 75))
      qualgenScenario(R, RunSeed, C);
    else if (Only == "prover" || (Only.empty() && W < 85))
      proverScenario(R, RunSeed, C);
    else if (Only == "edit-replay" || (Only.empty() && W < 93))
      editReplayScenario(R, RunSeed, C);
    else if (Only == "inference" || (Only.empty() && W < 96))
      inferenceScenario(R, RunSeed, C);
    else if (Only == "vm" || (Only.empty() && W < 97))
      vmScenario(R, RunSeed, C);
    else if (Only == "frontend" || (Only.empty() && W < 98))
      frontendScenario(R, RunSeed, C);
    else if (Only == "header-edit" || (Only.empty() && W < 99))
      headerEditScenario(R, RunSeed, C);
    else
      robustnessScenario(R, RunSeed, C);
    ++Result.RunsExecuted;
    if (Log && (I + 1) % 100 == 0)
      *Log << "fuzz: " << (I + 1) << "/" << Opts.Runs << " runs, "
           << Result.Failures.size() << " failures\n";
  }
  return Result;
}

bool stq::fuzz::replayCorpusFile(const std::string &Path,
                                 const CampaignOptions &Opts,
                                 stats::Registry &Stats,
                                 CampaignResult &Result) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Text = SS.str();
  Stats.add("fuzz.corpus.replayed", 1);
  OracleContext C{Opts, Stats, Result, nullptr, nullptr, nullptr};
  bool IsQual =
      Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".qual") == 0;
  bool IsEdits =
      Path.size() >= 6 && Path.compare(Path.size() - 6, 6, ".edits") == 0;
  if (IsQual) {
    qualSetOracles(Text, nullptr, 0, C);
  } else if (IsEdits) {
    std::string Kind, Why;
    if (editScriptViolation(Text, Opts, nullptr, &Kind, &Why)) {
      FuzzFailure F;
      F.Oracle = "edit-replay";
      F.Kind = Kind;
      F.Input = Text;
      F.Detail = Why;
      reportFailure(C, std::move(F));
    }
  } else {
    cmmOracles(Text, 0, C);
  }
  return true;
}
