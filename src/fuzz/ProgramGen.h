//===- ProgramGen.h - Random qualifier-annotated C-minus programs -*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of well-scoped C-minus programs annotated with
/// the builtin qualifiers. Two modes:
///
///  * Sound: every construct is derivable under the builtin rules — the
///    checker is expected to accept, which arms the Theorem 5.1 oracle
///    (accepted + executed must never violate a declared invariant).
///    A small fraction of casts use arbitrary operands, exercising the
///    dynamic escape hatch (a run-time CheckFailure is a legal outcome).
///  * Mixed: the expression grammar deliberately mixes derivable and
///    underivable terms (zero constants, sums, bad divisions), so programs
///    yield both accepted declarations and qualifier diagnostics — the
///    input of choice for the sequential-vs-parallel differential oracle.
///
/// Both modes promise front-end-clean output: parse, sema, and lowering
/// always succeed. Only the qualifier checker's verdict varies.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_PROGRAMGEN_H
#define STQ_FUZZ_PROGRAMGEN_H

#include "fuzz/Rng.h"

#include <string>
#include <vector>

namespace stq::fuzz {

struct ProgramGenOptions {
  enum class Mode { Sound, Mixed };
  Mode GenMode = Mode::Sound;
  /// Helper functions generated before main (callable from later code).
  unsigned MaxHelpers = 3;
  unsigned MaxStmtsPerFunction = 7;
  unsigned MaxExprDepth = 3;
  bool UsePointers = true;
  bool UseLoops = true;
  /// Casts to value-qualified types (the paper's dynamic escape hatch).
  bool UseCasts = true;
  /// unique / unaliased declarations (reference qualifiers).
  bool UseRefQuals = true;
  /// Sound mode: permit rare `while (1) {}` loops, relying on the
  /// interpreter's fuel bound to terminate the run.
  bool MayDiverge = false;
};

/// The builtin qualifiers generated programs reference; load exactly these.
const std::vector<std::string> &programQualifiers();

/// Generates one program. Consumes only from \p R, so equal seeds yield
/// byte-identical programs.
std::string generateProgram(Rng &R, const ProgramGenOptions &Opts = {});

} // namespace stq::fuzz

#endif // STQ_FUZZ_PROGRAMGEN_H
