//===- EditGen.h - Seeded edit-sequence generation --------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates seeded edit sequences for the edit-replay oracle: a program
/// is modeled as a list of functions (name, signature variant, body seed),
/// rendered to text, then mutated step by step with the edit kinds the
/// incremental engine must survive — body tweaks, signature changes
/// (arity-preserving qualifier flips and arity changes with callers
/// re-rendered from the model), qualifier-set changes, and function
/// add/delete. Every version is front-end-clean by construction, so the
/// oracle compares checker verdicts, not parse errors.
///
/// Scripts have a line-oriented textual form so failing sequences shrink
/// with the generic ddmin line shrinker and replay from tests/corpus/:
///
///   //! quals: pos,neg
///   <program version 0>
///   //== step
///   //! quals: pos
///   <program version 1>
///   ...
///
/// A missing `//! quals:` directive means the step uses the standard
/// program-fuzzing qualifier set. Any line subset still parses (steps
/// that end up empty are dropped), which keeps ddmin effective.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_FUZZ_EDITGEN_H
#define STQ_FUZZ_EDITGEN_H

#include "fuzz/Rng.h"

#include <string>
#include <vector>

namespace stq::fuzz {

/// One parsed edit script: program text plus the active builtin qualifier
/// names, per step.
struct EditScript {
  struct Step {
    std::string Source;
    std::vector<std::string> Builtins;
  };
  std::vector<Step> Steps;
};

/// Renders \p Script to the textual form above.
std::string renderEditScript(const EditScript &Script);

/// Parses the textual form. Total: any input yields a (possibly empty)
/// script — malformed fragments become ordinary program text for the
/// front end to diagnose, so shrunken scripts always mean something.
EditScript parseEditScript(const std::string &Text);

/// Generates a seeded edit sequence: an initial rendered program followed
/// by 2–7 model-level edits (body tweak, signature change, qualifier-set
/// change, function add/delete). Deterministic in \p R.
EditScript generateEditScript(Rng &R);

} // namespace stq::fuzz

#endif // STQ_FUZZ_EDITGEN_H
