//===- Lambda.cpp ---------------------------------------------------------===//

#include "lambda/Lambda.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <sstream>

using namespace stq;
using namespace stq::lambda;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

namespace {
LTypePtr makeType(LType T) { return std::make_shared<LType>(std::move(T)); }
} // namespace

LTypePtr LType::unit() {
  LType T;
  T.K = Kind::Unit;
  return makeType(std::move(T));
}

LTypePtr LType::intTy() {
  LType T;
  T.K = Kind::Int;
  return makeType(std::move(T));
}

LTypePtr LType::fun(LTypePtr Param, LTypePtr Result) {
  LType T;
  T.K = Kind::Fun;
  T.A = std::move(Param);
  T.B = std::move(Result);
  return makeType(std::move(T));
}

LTypePtr LType::ref(LTypePtr Pointee) {
  LType T;
  T.K = Kind::Ref;
  T.A = std::move(Pointee);
  return makeType(std::move(T));
}

LTypePtr LType::withQuals(const LTypePtr &T, std::set<std::string> Quals) {
  LType N = *T;
  N.Quals = std::move(Quals);
  return makeType(std::move(N));
}

LTypePtr LType::stripped(const LTypePtr &T) {
  if (T->Quals.empty())
    return T;
  return withQuals(T, {});
}

bool LType::equals(const LTypePtr &X, const LTypePtr &Y) {
  if (X.get() == Y.get())
    return true;
  if (X->K != Y->K || X->Quals != Y->Quals)
    return false;
  switch (X->K) {
  case Kind::Unit:
  case Kind::Int:
    return true;
  case Kind::Ref:
    return equals(X->A, Y->A);
  case Kind::Fun:
    return equals(X->A, Y->A) && equals(X->B, Y->B);
  }
  return false;
}

bool LType::isSubtype(const LTypePtr &Sub, const LTypePtr &Super) {
  if (Sub->K != Super->K)
    return false;
  // SubValQual (+ transitivity): the subtype's qualifier set must include
  // the supertype's. SubQualReorder is free with sets.
  if (!std::includes(Sub->Quals.begin(), Sub->Quals.end(),
                     Super->Quals.begin(), Super->Quals.end()))
    return false;
  switch (Sub->K) {
  case Kind::Unit:
  case Kind::Int:
    return true;
  case Kind::Ref:
    // No subtyping underneath ref types: pointees must be equal.
    return equals(Sub->A, Super->A);
  case Kind::Fun:
    // SubFun: contravariant parameter, covariant result.
    return isSubtype(Super->A, Sub->A) && isSubtype(Sub->B, Super->B);
  }
  return false;
}

std::string LType::str() const {
  std::string Out;
  switch (K) {
  case Kind::Unit:
    Out = "unit";
    break;
  case Kind::Int:
    Out = "int";
    break;
  case Kind::Ref:
    Out = "ref " + A->str();
    break;
  case Kind::Fun:
    Out = "(" + A->str() + " -> " + B->str() + ")";
    break;
  }
  for (const std::string &Q : Quals)
    Out += " " + Q;
  return Out;
}

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

namespace {
TermPtr makeTerm(Term T) { return std::make_shared<Term>(std::move(T)); }
} // namespace

TermPtr stq::lambda::tConst(int64_t V) {
  Term T;
  T.K = Term::Kind::Const;
  T.Int = V;
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tUnit() {
  Term T;
  T.K = Term::Kind::Unit;
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tVar(std::string Name) {
  Term T;
  T.K = Term::Kind::Var;
  T.Name = std::move(Name);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tLambda(std::string Name, LTypePtr ParamTy,
                             TermPtr Body) {
  Term T;
  T.K = Term::Kind::Lambda;
  T.Name = std::move(Name);
  T.ParamTy = std::move(ParamTy);
  T.S1 = std::move(Body);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tDeref(TermPtr E) {
  Term T;
  T.K = Term::Kind::Deref;
  T.S1 = std::move(E);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tBin(LBinOp Op, TermPtr L, TermPtr R) {
  Term T;
  T.K = Term::Kind::BinOp;
  T.Bin = Op;
  T.S1 = std::move(L);
  T.S2 = std::move(R);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tUn(LUnOp Op, TermPtr E) {
  Term T;
  T.K = Term::Kind::UnOp;
  T.Un = Op;
  T.S1 = std::move(E);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tApp(TermPtr F, TermPtr Arg) {
  Term T;
  T.K = Term::Kind::App;
  T.S1 = std::move(F);
  T.S2 = std::move(Arg);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tLet(std::string Name, TermPtr Bound, TermPtr Body) {
  Term T;
  T.K = Term::Kind::Let;
  T.Name = std::move(Name);
  T.S1 = std::move(Bound);
  T.S2 = std::move(Body);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tRef(TermPtr E) {
  Term T;
  T.K = Term::Kind::Ref;
  T.S1 = std::move(E);
  return makeTerm(std::move(T));
}

TermPtr stq::lambda::tAssign(TermPtr Target, TermPtr Value) {
  Term T;
  T.K = Term::Kind::Assign;
  T.S1 = std::move(Target);
  T.S2 = std::move(Value);
  return makeTerm(std::move(T));
}

std::string Term::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Const:
    OS << Int;
    break;
  case Kind::Unit:
    OS << "()";
    break;
  case Kind::Var:
    OS << Name;
    break;
  case Kind::Lambda:
    OS << "(\\" << Name << ":" << (ParamTy ? ParamTy->str() : "?") << ". "
       << S1->str() << ")";
    break;
  case Kind::Deref:
    OS << "!" << S1->str();
    break;
  case Kind::BinOp: {
    const char *Op = Bin == LBinOp::Add ? "+" : Bin == LBinOp::Sub ? "-"
                                                                   : "*";
    OS << "(" << S1->str() << " " << Op << " " << S2->str() << ")";
    break;
  }
  case Kind::UnOp:
    OS << "(-" << S1->str() << ")";
    break;
  case Kind::App:
    OS << "(" << S1->str() << " " << S2->str() << ")";
    break;
  case Kind::Let:
    OS << "(let " << Name << " = " << S1->str() << " in " << S2->str()
       << ")";
    break;
  case Kind::Ref:
    OS << "(ref " << S1->str() << ")";
    break;
  case Kind::Assign:
    OS << "(" << S1->str() << " := " << S2->str() << ")";
    break;
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Rule systems
//===----------------------------------------------------------------------===//

QualSystem QualSystem::posNegNonzero() {
  QualSystem Sys;
  // pos: positive constants; products of pos; negation of neg.
  Sys.Rules.push_back({"pos", CaseRule::Shape::IntConst,
                       [](int64_t C) { return C > 0; }, LBinOp::Add,
                       LUnOp::Neg, {}, {}});
  Sys.Rules.push_back({"pos", CaseRule::Shape::Binary, nullptr, LBinOp::Mul,
                       LUnOp::Neg, {"pos"}, {"pos"}});
  Sys.Rules.push_back({"pos", CaseRule::Shape::Unary, nullptr, LBinOp::Add,
                       LUnOp::Neg, {"neg"}, {}});
  // pos: sums of pos (the extension verified in the soundness tests).
  Sys.Rules.push_back({"pos", CaseRule::Shape::Binary, nullptr, LBinOp::Add,
                       LUnOp::Neg, {"pos"}, {"pos"}});
  // neg: negative constants; negation of pos; mixed products.
  Sys.Rules.push_back({"neg", CaseRule::Shape::IntConst,
                       [](int64_t C) { return C < 0; }, LBinOp::Add,
                       LUnOp::Neg, {}, {}});
  Sys.Rules.push_back({"neg", CaseRule::Shape::Unary, nullptr, LBinOp::Add,
                       LUnOp::Neg, {"pos"}, {}});
  Sys.Rules.push_back({"neg", CaseRule::Shape::Binary, nullptr, LBinOp::Mul,
                       LUnOp::Neg, {"pos"}, {"neg"}});
  Sys.Rules.push_back({"neg", CaseRule::Shape::Binary, nullptr, LBinOp::Mul,
                       LUnOp::Neg, {"neg"}, {"pos"}});
  // nonzero: nonzero constants; pos is nonzero (subtype encoding);
  // products of nonzero.
  Sys.Rules.push_back({"nonzero", CaseRule::Shape::IntConst,
                       [](int64_t C) { return C != 0; }, LBinOp::Add,
                       LUnOp::Neg, {}, {}});
  Sys.Rules.push_back({"nonzero", CaseRule::Shape::Same, nullptr,
                       LBinOp::Add, LUnOp::Neg, {"pos"}, {}});
  Sys.Rules.push_back({"nonzero", CaseRule::Shape::Same, nullptr,
                       LBinOp::Add, LUnOp::Neg, {"neg"}, {}});
  Sys.Rules.push_back({"nonzero", CaseRule::Shape::Binary, nullptr,
                       LBinOp::Mul, LUnOp::Neg, {"nonzero"}, {"nonzero"}});

  Sys.IntInvariants["pos"] = [](int64_t V) { return V > 0; };
  Sys.IntInvariants["neg"] = [](int64_t V) { return V < 0; };
  Sys.IntInvariants["nonzero"] = [](int64_t V) { return V != 0; };
  return Sys;
}

QualSystem QualSystem::withBogusSubtractionRule() {
  QualSystem Sys = posNegNonzero();
  // The paper's running example of an erroneous rule: pos (e1 - e2) from
  // pos e1, pos e2. Locally unsound.
  Sys.Rules.push_back({"pos", CaseRule::Shape::Binary, nullptr, LBinOp::Sub,
                       LUnOp::Neg, {"pos"}, {"pos"}});
  return Sys;
}

//===----------------------------------------------------------------------===//
// Typechecking
//===----------------------------------------------------------------------===//

namespace {

bool hasAll(const std::set<std::string> &Quals,
            const std::vector<std::string> &Needed) {
  for (const std::string &Q : Needed)
    if (!Quals.count(Q))
      return false;
  return true;
}

/// Applies the T-QUALCASE rule instances to compute the derivable
/// qualifier set of an int-typed node.
std::set<std::string> deriveQuals(const Term &T, const QualSystem &Sys,
                                  const std::set<std::string> &LhsQ,
                                  const std::set<std::string> &RhsQ) {
  std::set<std::string> Out;
  for (const CaseRule &R : Sys.Rules) {
    switch (R.K) {
    case CaseRule::Shape::IntConst:
      if (T.K == Term::Kind::Const && R.ConstPred && R.ConstPred(T.Int))
        Out.insert(R.Qual);
      break;
    case CaseRule::Shape::Binary:
      if (T.K == Term::Kind::BinOp && T.Bin == R.Bin && hasAll(LhsQ, R.Lhs) &&
          hasAll(RhsQ, R.Rhs))
        Out.insert(R.Qual);
      break;
    case CaseRule::Shape::Unary:
      if (T.K == Term::Kind::UnOp && T.Un == R.Un && hasAll(LhsQ, R.Lhs))
        Out.insert(R.Qual);
      break;
    case CaseRule::Shape::Same:
      break; // Applied in the closure pass below.
    }
  }
  return Out;
}

/// Closes a qualifier set under Same-shaped rules (subtype encodings).
void closeQuals(std::set<std::string> &Quals, const QualSystem &Sys) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const CaseRule &R : Sys.Rules) {
      if (R.K != CaseRule::Shape::Same || Quals.count(R.Qual))
        continue;
      if (hasAll(Quals, R.Lhs)) {
        Quals.insert(R.Qual);
        Changed = true;
      }
    }
  }
}

LTypePtr typecheckImpl(const TermPtr &T, const QualSystem &Sys,
                       const TypeEnv &Env) {
  LTypePtr Result;
  switch (T->K) {
  case Term::Kind::Const: {
    std::set<std::string> Quals = deriveQuals(*T, Sys, {}, {});
    closeQuals(Quals, Sys);
    Result = LType::withQuals(LType::intTy(), std::move(Quals));
    break;
  }
  case Term::Kind::Unit:
    Result = LType::unit();
    break;
  case Term::Kind::Var: {
    auto Found = Env.find(T->Name);
    if (Found == Env.end())
      return nullptr;
    Result = Found->second;
    break;
  }
  case Term::Kind::Lambda: {
    if (!T->ParamTy)
      return nullptr;
    TypeEnv Inner = Env;
    Inner[T->Name] = T->ParamTy;
    LTypePtr BodyTy = typecheckImpl(T->S1, Sys, Inner);
    if (!BodyTy)
      return nullptr;
    Result = LType::fun(T->ParamTy, BodyTy);
    break;
  }
  case Term::Kind::Deref: {
    LTypePtr SubTy = typecheckImpl(T->S1, Sys, Env);
    if (!SubTy || SubTy->K != LType::Kind::Ref)
      return nullptr;
    Result = SubTy->A;
    break;
  }
  case Term::Kind::BinOp:
  case Term::Kind::UnOp: {
    LTypePtr L = typecheckImpl(T->S1, Sys, Env);
    if (!L || L->K != LType::Kind::Int)
      return nullptr;
    std::set<std::string> RQ;
    if (T->K == Term::Kind::BinOp) {
      LTypePtr R = typecheckImpl(T->S2, Sys, Env);
      if (!R || R->K != LType::Kind::Int)
        return nullptr;
      RQ = R->Quals;
    }
    std::set<std::string> Quals = deriveQuals(*T, Sys, L->Quals, RQ);
    closeQuals(Quals, Sys);
    Result = LType::withQuals(LType::intTy(), std::move(Quals));
    break;
  }
  case Term::Kind::App: {
    LTypePtr FunTy = typecheckImpl(T->S1, Sys, Env);
    if (!FunTy || FunTy->K != LType::Kind::Fun)
      return nullptr;
    LTypePtr ArgTy = typecheckImpl(T->S2, Sys, Env);
    if (!ArgTy || !LType::isSubtype(ArgTy, FunTy->A))
      return nullptr;
    Result = FunTy->B;
    break;
  }
  case Term::Kind::Let: {
    LTypePtr BoundTy = typecheckImpl(T->S1, Sys, Env);
    if (!BoundTy)
      return nullptr;
    TypeEnv Inner = Env;
    Inner[T->Name] = BoundTy;
    Result = typecheckImpl(T->S2, Sys, Inner);
    if (!Result)
      return nullptr;
    break;
  }
  case Term::Kind::Ref: {
    LTypePtr SubTy = typecheckImpl(T->S1, Sys, Env);
    if (!SubTy)
      return nullptr;
    Result = LType::ref(SubTy);
    break;
  }
  case Term::Kind::Assign: {
    LTypePtr Target = typecheckImpl(T->S1, Sys, Env);
    if (!Target || Target->K != LType::Kind::Ref)
      return nullptr;
    LTypePtr ValueTy = typecheckImpl(T->S2, Sys, Env);
    if (!ValueTy || !LType::isSubtype(ValueTy, Target->A))
      return nullptr;
    Result = LType::unit();
    break;
  }
  }
  T->Ty = Result;
  return Result;
}

} // namespace

LTypePtr stq::lambda::typecheck(const TermPtr &T, const QualSystem &Sys,
                                const TypeEnv &Env) {
  return typecheckImpl(T, Sys, Env);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

std::string LValue::str() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Unit:
    return "()";
  case Kind::Closure:
    return "<closure \\" + Param + ">";
  case Kind::Loc:
    return "loc#" + std::to_string(Loc);
  }
  return "?";
}

namespace {

LValuePtr makeLValue(LValue V) {
  return std::make_shared<LValue>(std::move(V));
}

struct Evaluator {
  Store &S;
  uint64_t Fuel;
  bool Failed = false;
  std::string Error;

  void fail(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Error = Message;
    }
  }

  LValuePtr eval(const TermPtr &T, const ValueEnv &Env) {
    if (Failed)
      return nullptr;
    if (Fuel-- == 0) {
      fail("fuel exhausted");
      return nullptr;
    }
    switch (T->K) {
    case Term::Kind::Const: {
      LValue V;
      V.K = LValue::Kind::Int;
      V.Int = T->Int;
      return makeLValue(std::move(V));
    }
    case Term::Kind::Unit:
      return makeLValue(LValue{});
    case Term::Kind::Var: {
      auto Found = Env.find(T->Name);
      if (Found == Env.end()) {
        fail("unbound variable " + T->Name);
        return nullptr;
      }
      return Found->second;
    }
    case Term::Kind::Lambda: {
      LValue V;
      V.K = LValue::Kind::Closure;
      V.Param = T->Name;
      V.Body = T->S1;
      V.Captured = Env;
      V.ClosureTy = T->Ty;
      return makeLValue(std::move(V));
    }
    case Term::Kind::Deref: {
      LValuePtr Sub = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      if (Sub->K != LValue::Kind::Loc || Sub->Loc >= S.Cells.size()) {
        fail("dereference of a non-location");
        return nullptr;
      }
      return S.Cells[Sub->Loc];
    }
    case Term::Kind::BinOp: {
      LValuePtr L = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      LValuePtr R = eval(T->S2, Env);
      if (Failed)
        return nullptr;
      if (L->K != LValue::Kind::Int || R->K != LValue::Kind::Int) {
        fail("arithmetic on non-integers");
        return nullptr;
      }
      int64_t Out = T->Bin == LBinOp::Add   ? L->Int + R->Int
                    : T->Bin == LBinOp::Sub ? L->Int - R->Int
                                            : L->Int * R->Int;
      LValue V;
      V.K = LValue::Kind::Int;
      V.Int = Out;
      return makeLValue(std::move(V));
    }
    case Term::Kind::UnOp: {
      LValuePtr Sub = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      if (Sub->K != LValue::Kind::Int) {
        fail("negation of a non-integer");
        return nullptr;
      }
      LValue V;
      V.K = LValue::Kind::Int;
      V.Int = -Sub->Int;
      return makeLValue(std::move(V));
    }
    case Term::Kind::App: {
      LValuePtr Fn = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      LValuePtr Arg = eval(T->S2, Env);
      if (Failed)
        return nullptr;
      if (Fn->K != LValue::Kind::Closure) {
        fail("application of a non-function");
        return nullptr;
      }
      ValueEnv Inner = Fn->Captured;
      Inner[Fn->Param] = Arg;
      return eval(Fn->Body, Inner);
    }
    case Term::Kind::Let: {
      LValuePtr Bound = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      ValueEnv Inner = Env;
      Inner[T->Name] = Bound;
      return eval(T->S2, Inner);
    }
    case Term::Kind::Ref: {
      LValuePtr Sub = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      LValue V;
      V.K = LValue::Kind::Loc;
      V.Loc = S.Cells.size();
      S.Cells.push_back(Sub);
      // Record the cell's static type (Theorem 5.1's Gamma').
      S.CellTypes.push_back(T->S1->Ty);
      return makeLValue(std::move(V));
    }
    case Term::Kind::Assign: {
      LValuePtr Target = eval(T->S1, Env);
      if (Failed)
        return nullptr;
      LValuePtr V = eval(T->S2, Env);
      if (Failed)
        return nullptr;
      if (Target->K != LValue::Kind::Loc || Target->Loc >= S.Cells.size()) {
        fail("assignment to a non-location");
        return nullptr;
      }
      S.Cells[Target->Loc] = V;
      return makeLValue(LValue{});
    }
    }
    fail("unknown term");
    return nullptr;
  }
};

} // namespace

EvalResult stq::lambda::evaluate(const TermPtr &T, Store &S, uint64_t Fuel) {
  Evaluator E{S, Fuel, false, {}};
  EvalResult R;
  R.Value = E.eval(T, {});
  R.Ok = !E.Failed;
  R.Error = E.Error;
  return R;
}

//===----------------------------------------------------------------------===//
// Semantic conformance (figure 11)
//===----------------------------------------------------------------------===//

bool stq::lambda::conforms(const LValuePtr &V, const LTypePtr &Ty,
                           const Store &S, const QualSystem &Sys) {
  if (!V || !Ty)
    return false;
  // Rule Q-QUAL: every qualifier's invariant must hold for the value.
  for (const std::string &Q : Ty->Quals) {
    auto Inv = Sys.IntInvariants.find(Q);
    if (Inv == Sys.IntInvariants.end())
      return false; // Unknown qualifier: fail closed.
    if (V->K != LValue::Kind::Int || !Inv->second(V->Int))
      return false;
  }
  switch (Ty->K) {
  case LType::Kind::Int:
    return V->K == LValue::Kind::Int;
  case LType::Kind::Unit:
    return V->K == LValue::Kind::Unit;
  case LType::Kind::Fun:
    // Q-FUN, algorithmically: the closure's recorded static type must be a
    // subtype of the required function type.
    return V->K == LValue::Kind::Closure && V->ClosureTy &&
           LType::isSubtype(V->ClosureTy, LType::stripped(Ty));
  case LType::Kind::Ref: {
    // Q-REF: the location is live and its contents conform to the pointee
    // type in the current store.
    if (V->K != LValue::Kind::Loc || V->Loc >= S.Cells.size())
      return false;
    return conforms(S.Cells[V->Loc], Ty->A, S, Sys);
  }
  }
  return false;
}

bool stq::lambda::preservationHolds(const LValuePtr &Result,
                                    const LTypePtr &Ty, const Store &S,
                                    const QualSystem &Sys) {
  if (!conforms(Result, Ty, S, Sys))
    return false;
  // Definition 5.2: every store cell conforms to its recorded type.
  for (size_t I = 0; I < S.Cells.size(); ++I)
    if (!conforms(S.Cells[I], S.CellTypes[I], S, Sys))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Random generation
//===----------------------------------------------------------------------===//

namespace {

class Generator {
public:
  explicit Generator(GenOptions Options)
      : Options(Options), Rng(Options.Seed) {}

  TermPtr gen() { return genTerm(Options.MaxDepth, {}); }

private:
  unsigned pick(unsigned N) { return std::uniform_int_distribution<unsigned>(
      0, N - 1)(Rng); }
  int64_t pickInt() {
    return std::uniform_int_distribution<int64_t>(-9, 9)(Rng);
  }

  TermPtr genTerm(unsigned Depth, std::vector<std::string> Scope) {
    if (Depth == 0 || pick(6) == 0) {
      // Leaves: constants, unit, or an in-scope variable.
      if (!Scope.empty() && pick(3) == 0)
        return tVar(Scope[pick(static_cast<unsigned>(Scope.size()))]);
      if (pick(5) == 0)
        return tUnit();
      return tConst(pickInt());
    }
    switch (pick(8)) {
    case 0:
      return tBin(LBinOp::Add, genTerm(Depth - 1, Scope),
                  genTerm(Depth - 1, Scope));
    case 1:
      return tBin(LBinOp::Sub, genTerm(Depth - 1, Scope),
                  genTerm(Depth - 1, Scope));
    case 2:
      return tBin(LBinOp::Mul, genTerm(Depth - 1, Scope),
                  genTerm(Depth - 1, Scope));
    case 3:
      return tUn(LUnOp::Neg, genTerm(Depth - 1, Scope));
    case 4: {
      std::string Name = "x" + std::to_string(NextVar++);
      TermPtr Bound = genTerm(Depth - 1, Scope);
      Scope.push_back(Name);
      return tLet(Name, Bound, genTerm(Depth - 1, Scope));
    }
    case 5:
      return tRef(genTerm(Depth - 1, Scope));
    case 6: {
      // let r = ref e in (r := e'; !r) expressed with lets.
      std::string Name = "r" + std::to_string(NextVar++);
      TermPtr Cell = tRef(genTerm(Depth - 1, Scope));
      Scope.push_back(Name);
      TermPtr Write = tAssign(tVar(Name), genTerm(Depth - 1, Scope));
      std::string Ignore = "u" + std::to_string(NextVar++);
      return tLet(Name, Cell,
                  tLet(Ignore, Write, tDeref(tVar(Name))));
    }
    default:
      return tDeref(tRef(genTerm(Depth - 1, Scope)));
    }
  }

  GenOptions Options;
  std::mt19937_64 Rng;
  unsigned NextVar = 0;
};

} // namespace

TermPtr stq::lambda::generateTerm(GenOptions Options) {
  Generator G(Options);
  return G.gen();
}
