//===- Lambda.h - The paper's formal calculus (section 5) -------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simply-typed lambda calculus with ML-style references and
/// user-defined value qualifiers from section 5 (figures 8-11):
///
///  * statements s ::= e | s1 s2 | let x = s1 in s2 | ref s | s1 := s2
///  * expressions e ::= c | () | x | \x.s | !e   (plus integer operators,
///    so the qualifier rule templates of figure 10 have operations to
///    range over)
///  * types tau ::= unit | int | tau -> tau | ref tau | tau q
///
/// The module provides the subtype relation (figure 9), a synthesis-style
/// typechecker whose derived qualifier sets realize the T-QUALCASE rule
/// template, a big-step evaluator, the semantic conformance relation
/// (figure 11), and a random well-typed-program generator used to
/// property-test Theorem 5.1 (type preservation): for locally sound rule
/// sets every evaluation preserves conformance, and for locally unsound
/// rule sets the tests find counterexample programs.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_LAMBDA_LAMBDA_H
#define STQ_LAMBDA_LAMBDA_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace stq::lambda {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

class LType;
using LTypePtr = std::shared_ptr<const LType>;

/// A type of the calculus; every node carries a (possibly empty) set of
/// qualifier names, as in figure 8's `tau q` production.
class LType {
public:
  enum class Kind { Unit, Int, Fun, Ref };

  Kind K = Kind::Int;
  LTypePtr A; ///< Parameter type (Fun) or pointee (Ref).
  LTypePtr B; ///< Result type (Fun).
  std::set<std::string> Quals;

  static LTypePtr unit();
  static LTypePtr intTy();
  static LTypePtr fun(LTypePtr Param, LTypePtr Result);
  static LTypePtr ref(LTypePtr Pointee);
  static LTypePtr withQuals(const LTypePtr &T, std::set<std::string> Quals);
  static LTypePtr stripped(const LTypePtr &T);

  /// Structural equality including qualifier sets at every level.
  static bool equals(const LTypePtr &X, const LTypePtr &Y);
  /// Figure 9's subtype relation: SubValQual + SubQualReorder + SubFun;
  /// ref types are invariant.
  static bool isSubtype(const LTypePtr &Sub, const LTypePtr &Super);

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

enum class LBinOp { Add, Sub, Mul };
enum class LUnOp { Neg };

class Term;
using TermPtr = std::shared_ptr<Term>;

/// A statement or expression (expressions are the side-effect-free
/// subset).
class Term {
public:
  enum class Kind {
    Const,  ///< integer constant
    Unit,   ///< ()
    Var,    ///< x
    Lambda, ///< \x:tau. s
    Deref,  ///< !e
    BinOp,  ///< e1 op e2
    UnOp,   ///< op e
    App,    ///< s1 s2
    Let,    ///< let x = s1 in s2
    Ref,    ///< ref s
    Assign, ///< s1 := s2
  };

  Kind K = Kind::Unit;
  int64_t Int = 0;
  std::string Name;  ///< Var/Lambda/Let binder.
  LTypePtr ParamTy;  ///< Lambda parameter annotation.
  TermPtr S1, S2;    ///< Children.
  LBinOp Bin = LBinOp::Add;
  LUnOp Un = LUnOp::Neg;
  /// Synthesized type, set by the typechecker (used by conformance and the
  /// evaluator's location typing).
  LTypePtr Ty;

  std::string str() const;
};

TermPtr tConst(int64_t V);
TermPtr tUnit();
TermPtr tVar(std::string Name);
TermPtr tLambda(std::string Name, LTypePtr ParamTy, TermPtr Body);
TermPtr tDeref(TermPtr E);
TermPtr tBin(LBinOp Op, TermPtr L, TermPtr R);
TermPtr tUn(LUnOp Op, TermPtr E);
TermPtr tApp(TermPtr F, TermPtr Arg);
TermPtr tLet(std::string Name, TermPtr Bound, TermPtr Body);
TermPtr tRef(TermPtr E);
TermPtr tAssign(TermPtr Target, TermPtr Value);

//===----------------------------------------------------------------------===//
// Qualifier rule systems (the T-QUALCASE template, figure 10)
//===----------------------------------------------------------------------===//

/// One instance of the rule template: an expression form whose operands
/// must carry given qualifiers lets the whole expression carry Qual.
struct CaseRule {
  enum class Shape {
    IntConst, ///< constant c with ConstPred(c)
    Binary,   ///< e1 op e2 with operand qualifier requirements
    Unary,    ///< op e with operand qualifier requirement
    Same,     ///< e itself carrying other qualifiers (subtype encoding)
  };

  std::string Qual;
  Shape K = Shape::IntConst;
  std::function<bool(int64_t)> ConstPred;
  LBinOp Bin = LBinOp::Add;
  LUnOp Un = LUnOp::Neg;
  std::vector<std::string> Lhs; ///< required qualifiers on operand 1
  std::vector<std::string> Rhs; ///< required qualifiers on operand 2
};

/// A rule system plus the qualifiers' value-level invariants ([[q]]).
struct QualSystem {
  std::vector<CaseRule> Rules;
  std::map<std::string, std::function<bool(int64_t)>> IntInvariants;

  /// The paper's pos/neg/nonzero system (locally sound).
  static QualSystem posNegNonzero();
  /// The same system with the bogus `pos (e1 - e2)` rule of section 2.1.3
  /// (locally unsound; used to show preservation failing).
  static QualSystem withBogusSubtractionRule();
};

//===----------------------------------------------------------------------===//
// Typechecking
//===----------------------------------------------------------------------===//

using TypeEnv = std::map<std::string, LTypePtr>;

/// Synthesizes the type of \p T under \p Env, attaching every derivable
/// qualifier (base rules + subsumption-closed case rules). Returns null on
/// a type error; annotates each node's Ty field.
LTypePtr typecheck(const TermPtr &T, const QualSystem &Sys,
                   const TypeEnv &Env = {});

//===----------------------------------------------------------------------===//
// Evaluation and conformance
//===----------------------------------------------------------------------===//

struct LValue;
using LValuePtr = std::shared_ptr<LValue>;
using ValueEnv = std::map<std::string, LValuePtr>;

/// A run-time value: integer, unit, closure, or store location.
struct LValue {
  enum class Kind { Int, Unit, Closure, Loc };

  Kind K = Kind::Unit;
  int64_t Int = 0;
  // Closure.
  std::string Param;
  TermPtr Body;
  ValueEnv Captured;
  LTypePtr ClosureTy; ///< The lambda's synthesized type.
  // Location.
  size_t Loc = 0;

  std::string str() const;
};

struct Store {
  std::vector<LValuePtr> Cells;
  /// Static type of each cell, recorded at allocation (the Gamma' of
  /// Theorem 5.1).
  std::vector<LTypePtr> CellTypes;
};

struct EvalResult {
  bool Ok = false;
  std::string Error;
  LValuePtr Value;
};

/// Big-step evaluation with a step budget. Requires \p T to have been
/// typechecked (Ty annotations present) so ref cells record their types.
EvalResult evaluate(const TermPtr &T, Store &S, uint64_t Fuel = 100000);

/// Figure 11's semantic conformance: does \p V conform to type \p Ty in
/// store \p S under rule system \p Sys? Checks every qualifier's invariant
/// and recursively follows ref cells.
bool conforms(const LValuePtr &V, const LTypePtr &Ty, const Store &S,
              const QualSystem &Sys);

/// Checks Theorem 5.1's conclusion for an evaluated program: the result
/// conforms to the program's type and every store cell conforms to its
/// recorded type.
bool preservationHolds(const LValuePtr &Result, const LTypePtr &Ty,
                       const Store &S, const QualSystem &Sys);

//===----------------------------------------------------------------------===//
// Random program generation (for property tests)
//===----------------------------------------------------------------------===//

struct GenOptions {
  unsigned MaxDepth = 5;
  uint64_t Seed = 1;
};

/// Generates a random closed term (not necessarily well-typed; callers
/// filter with typecheck). Deterministic in the seed.
TermPtr generateTerm(GenOptions Options);

} // namespace stq::lambda

#endif // STQ_LAMBDA_LAMBDA_H
