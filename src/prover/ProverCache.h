//===- ProverCache.h - Memoized prover query cache --------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A memoization layer over prover sessions. Every soundness obligation is
/// an independent session (axioms + hypotheses + one goal) over its own
/// TermArena, so TermIds are not stable across sessions; the cache instead
/// keys on a *canonical form*: a structural serialization of every formula
/// fed to the session plus the goal, with bound variables renamed to
/// first-use indices (alpha-normalization) and symmetric equalities
/// oriented lexicographically. Two sessions with the same key are
/// textually identical proof tasks up to alpha-renaming, which the prover
/// treats equivalently, so replaying the cached answer is sound.
///
/// The canonical form is kept as the map key (not just its 64-bit hash), so
/// a hash collision can never replay the wrong answer; the property tests
/// brute-force injectivity of the canonicalizer over small term spaces.
///
/// The cache is sharded 16 ways and safe for concurrent use by the
/// parallel checking pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_PROVERCACHE_H
#define STQ_PROVER_PROVERCACHE_H

#include "prover/Prover.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace stq::prover {

/// Serializes terms and formulas of one arena into an arena-independent
/// canonical string. Bound variables (from Forall binders) are numbered in
/// order of first use, so alpha-equivalent formulas canonicalize
/// identically; free pattern variables keep their names.
class Canonicalizer {
public:
  explicit Canonicalizer(const TermArena &Arena) : A(Arena) {}

  /// Canonical form of a (typically ground) term.
  std::string term(TermId T);
  /// Canonical form of a formula.
  std::string formula(const FormulaPtr &F);

private:
  void termInto(TermId T, std::string &Out);
  void formulaInto(const FormulaPtr &F, std::string &Out);
  void litInto(const Lit &L, std::string &Out);

  const TermArena &A;
  /// Innermost-last scopes of binder names; each maps to an assigned index
  /// or ~0u when not yet used.
  std::vector<std::vector<std::pair<std::string, unsigned>>> Scopes;
  unsigned NextBinder = 0;
};

/// 64-bit FNV-1a, used to bucket canonical keys across shards.
uint64_t fnv1aHash(const std::string &S);

/// The canonical key of one whole proof task: every axiom and hypothesis
/// fed to the session (in insertion order) plus the goal.
std::string canonicalTaskKey(const TermArena &A,
                             const std::vector<ProverInput> &Inputs,
                             const FormulaPtr &Goal);

/// A replayed prover answer.
struct CachedAnswer {
  ProofResult Result = ProofResult::Unknown;
  /// The stats of the run that produced the entry (Seconds = what a miss
  /// would have cost).
  ProverStats Stats;
  /// True when the entry came from load() rather than this process's own
  /// prover runs; hits on such entries count as cache persistence hits.
  bool FromDisk = false;
};

/// Counters for `stqc --metrics` and the scaling benchmark. Hits + Misses
/// == Lookups.
struct CacheStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Entries = 0;
  /// Probes that found their shard mutex already held and had to block.
  /// A measure of shard contention under the parallel pipeline; always 0
  /// with one job.
  uint64_t Contended = 0;
  /// Sum of the original solve times of every hit: prover latency the
  /// cache avoided.
  double SecondsSaved = 0.0;
  /// Entries deserialized from a --cache-file by load().
  uint64_t PersistLoaded = 0;
  /// Lookup hits served by a disk-loaded entry: proofs skipped entirely
  /// because an earlier run already discharged them.
  uint64_t PersistHits = 0;

  double hitRate() const {
    return Lookups == 0 ? 0.0 : static_cast<double>(Hits) / Lookups;
  }
};

/// Thread-safe memoization of prover answers by canonical task key.
class ProverCache {
public:
  std::optional<CachedAnswer> lookup(const std::string &Key);
  void insert(const std::string &Key, ProofResult Result,
              const ProverStats &Stats);
  CacheStats stats() const;
  void clear();

  /// On-disk format version header. A file that does not start with exactly
  /// this line is ignored wholesale by load(): a stale or foreign cache must
  /// never be trusted.
  static constexpr const char *PersistVersion = "stq-prover-cache-v1";

  /// Serializes every entry to \p Path (version header, then
  /// length-prefixed canonical keys — keys contain newlines — and verdict
  /// lines). Written to a temp file and renamed into place, so a concurrent
  /// load() sees either the old file or the new one, never a torn write.
  /// Returns false (with \p Error set) on I/O failure.
  bool save(const std::string &Path, std::string *Error = nullptr);
  /// Merges entries from \p Path into the cache, marking them FromDisk.
  /// Entries already present (from this run's proving) win over the file.
  /// A missing file, wrong version header, or any parse inconsistency
  /// discards the whole file (never a prefix of it) and returns false with
  /// \p Error set; the cache is left unchanged in that case.
  bool load(const std::string &Path, std::string *Error = nullptr);

private:
  static constexpr unsigned NumShards = 16;

  struct Shard {
    std::mutex M;
    std::unordered_map<std::string, CachedAnswer> Map;
  };

  Shard &shardFor(const std::string &Key) {
    return Shards[fnv1aHash(Key) % NumShards];
  }

  Shard Shards[NumShards];
  mutable std::mutex StatsM;
  CacheStats Stats;
};

} // namespace stq::prover

#endif // STQ_PROVER_PROVERCACHE_H
