//===- Formula.cpp --------------------------------------------------------===//

#include "prover/Formula.h"

using namespace stq::prover;

std::string Lit::str(const TermArena &A) const {
  const char *OpStr = O == Op::Eq ? (Neg ? " != " : " = ")
                      : O == Op::Le ? (Neg ? " > " : " <= ")
                                    : (Neg ? " >= " : " < ");
  // For negated order literals the polarity is folded into the operator
  // with swapped meaning: !(a <= b) is a > b.
  return A.str(L) + OpStr + A.str(R);
}

std::string Formula::str(const TermArena &A) const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Lit:
    return L.str(A);
  case Kind::Not:
    return "!(" + Kids[0]->str(A) + ")";
  case Kind::Implies:
    return "(" + Kids[0]->str(A) + " ==> " + Kids[1]->str(A) + ")";
  case Kind::And:
  case Kind::Or: {
    std::string Sep = K == Kind::And ? " /\\ " : " \\/ ";
    std::string Out = "(";
    for (size_t I = 0; I < Kids.size(); ++I) {
      if (I)
        Out += Sep;
      Out += Kids[I]->str(A);
    }
    return Out + ")";
  }
  case Kind::Forall: {
    std::string Out = "(FORALL ";
    for (size_t I = 0; I < Vars.size(); ++I) {
      if (I)
        Out += " ";
      Out += Vars[I];
    }
    return Out + ". " + Body->str(A) + ")";
  }
  }
  return "?";
}

namespace {

FormulaPtr make(Formula F) { return std::make_shared<Formula>(std::move(F)); }

} // namespace

FormulaPtr stq::prover::fTrue() {
  Formula F;
  F.K = Formula::Kind::True;
  return make(std::move(F));
}

FormulaPtr stq::prover::fFalse() {
  Formula F;
  F.K = Formula::Kind::False;
  return make(std::move(F));
}

FormulaPtr stq::prover::fLit(Lit L) {
  Formula F;
  F.K = Formula::Kind::Lit;
  F.L = L;
  return make(std::move(F));
}

FormulaPtr stq::prover::fEq(TermId A, TermId B) {
  return fLit(Lit{false, Lit::Op::Eq, A, B});
}

FormulaPtr stq::prover::fNe(TermId A, TermId B) {
  return fLit(Lit{true, Lit::Op::Eq, A, B});
}

FormulaPtr stq::prover::fLt(TermId A, TermId B) {
  return fLit(Lit{false, Lit::Op::Lt, A, B});
}

FormulaPtr stq::prover::fLe(TermId A, TermId B) {
  return fLit(Lit{false, Lit::Op::Le, A, B});
}

FormulaPtr stq::prover::fGt(TermId A, TermId B) { return fLt(B, A); }

FormulaPtr stq::prover::fGe(TermId A, TermId B) { return fLe(B, A); }

FormulaPtr stq::prover::fPred(TermArena &A, const std::string &Sym,
                              std::vector<TermId> Args) {
  return fEq(A.app(Sym, std::move(Args)), A.trueTerm());
}

FormulaPtr stq::prover::fNotPred(TermArena &A, const std::string &Sym,
                                 std::vector<TermId> Args) {
  return fNe(A.app(Sym, std::move(Args)), A.trueTerm());
}

FormulaPtr stq::prover::fNot(FormulaPtr F) {
  Formula Out;
  Out.K = Formula::Kind::Not;
  Out.Kids.push_back(std::move(F));
  return make(std::move(Out));
}

FormulaPtr stq::prover::fAnd(std::vector<FormulaPtr> Kids) {
  if (Kids.empty())
    return fTrue();
  if (Kids.size() == 1)
    return Kids[0];
  Formula Out;
  Out.K = Formula::Kind::And;
  Out.Kids = std::move(Kids);
  return make(std::move(Out));
}

FormulaPtr stq::prover::fOr(std::vector<FormulaPtr> Kids) {
  if (Kids.empty())
    return fFalse();
  if (Kids.size() == 1)
    return Kids[0];
  Formula Out;
  Out.K = Formula::Kind::Or;
  Out.Kids = std::move(Kids);
  return make(std::move(Out));
}

FormulaPtr stq::prover::fImplies(FormulaPtr A, FormulaPtr B) {
  Formula Out;
  Out.K = Formula::Kind::Implies;
  Out.Kids.push_back(std::move(A));
  Out.Kids.push_back(std::move(B));
  return make(std::move(Out));
}

FormulaPtr stq::prover::fForall(std::vector<std::string> Vars,
                                FormulaPtr Body,
                                std::vector<MultiPattern> Triggers) {
  Formula Out;
  Out.K = Formula::Kind::Forall;
  Out.Vars = std::move(Vars);
  Out.Body = std::move(Body);
  Out.Triggers = std::move(Triggers);
  return make(std::move(Out));
}
