//===- Theory.cpp ---------------------------------------------------------===//

#include "prover/Theory.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace stq::prover;

//===----------------------------------------------------------------------===//
// Congruence closure
//===----------------------------------------------------------------------===//

CongruenceClosure::CongruenceClosure(const TermArena &A) : Arena(A) {
  sync();
  // true and false are distinct.
  assertNe(A.trueTerm(), A.falseTerm());
}

void CongruenceClosure::sync() {
  uint32_t N = Arena.size();
  uint32_t Old = static_cast<uint32_t>(Parent.size());
  if (Old >= N)
    return;
  Parent.resize(N);
  Size.resize(N, 1);
  Uses.resize(N);
  Registered.resize(N, false);
  for (uint32_t I = Old; I < N; ++I)
    Parent[I] = I;
  // Register every term so congruence sees the full DAG, including terms
  // that appear only in order literals.
  for (uint32_t I = 0; I < N; ++I)
    if (Arena.get(I).K != TermData::Kind::Var)
      ensure(I);
}

TermId CongruenceClosure::find(TermId T) {
  if (T >= Parent.size())
    sync();
  while (Parent[T] != T) {
    Parent[T] = Parent[Parent[T]];
    T = Parent[T];
  }
  return T;
}

std::vector<TermId> CongruenceClosure::signatureOf(TermId T) {
  const TermData &D = Arena.get(T);
  std::vector<TermId> Sig;
  Sig.reserve(D.Args.size());
  for (TermId Arg : D.Args)
    Sig.push_back(find(Arg));
  return Sig;
}

void CongruenceClosure::ensure(TermId T) {
  if (Registered[T])
    return;
  Registered[T] = true;
  const TermData &D = Arena.get(T);
  if (D.K == TermData::Kind::Int)
    ClassInt[find(T)] = D.Int;
  for (TermId Arg : D.Args) {
    ensure(Arg);
    Uses[find(Arg)].push_back(T);
  }
  if (D.K == TermData::Kind::App && !D.Args.empty()) {
    auto Key = std::make_pair(D.Sym, signatureOf(T));
    auto [It, Inserted] = Signatures.emplace(Key, T);
    if (!Inserted && find(It->second) != find(T))
      PendingMerges.emplace_back(It->second, T);
    while (!PendingMerges.empty()) {
      auto [X, Y] = PendingMerges.back();
      PendingMerges.pop_back();
      merge(X, Y);
    }
  }
}

void CongruenceClosure::merge(TermId A, TermId B) {
  if (Conflict)
    return;
  TermId Ra = find(A), Rb = find(B);
  if (Ra == Rb)
    return;
  if (Size[Ra] < Size[Rb])
    std::swap(Ra, Rb);
  // Merge Rb into Ra.
  auto IntA = ClassInt.find(Ra);
  auto IntB = ClassInt.find(Rb);
  if (IntA != ClassInt.end() && IntB != ClassInt.end() &&
      IntA->second != IntB->second) {
    Conflict = true;
    return;
  }
  Parent[Rb] = Ra;
  Size[Ra] += Size[Rb];
  if (IntB != ClassInt.end())
    ClassInt[Ra] = IntB->second;

  // Recompute signatures of terms that used Rb.
  std::vector<TermId> Moved = std::move(Uses[Rb]);
  Uses[Rb].clear();
  for (TermId User : Moved) {
    const TermData &D = Arena.get(User);
    auto Key = std::make_pair(D.Sym, signatureOf(User));
    auto [It, Inserted] = Signatures.emplace(Key, User);
    if (!Inserted && find(It->second) != find(User))
      PendingMerges.emplace_back(It->second, User);
    Uses[Ra].push_back(User);
  }
  while (!PendingMerges.empty()) {
    auto [X, Y] = PendingMerges.back();
    PendingMerges.pop_back();
    merge(X, Y);
  }
  if (!checkNeConflicts())
    Conflict = true;
}

bool CongruenceClosure::checkNeConflicts() {
  for (auto &[A, B] : Disequalities)
    if (find(A) == find(B))
      return false;
  return true;
}

bool CongruenceClosure::assertEq(TermId A, TermId B) {
  if (Conflict)
    return false;
  sync();
  merge(A, B);
  return !Conflict;
}

bool CongruenceClosure::assertNe(TermId A, TermId B) {
  if (Conflict)
    return false;
  sync();
  if (find(A) == find(B)) {
    Conflict = true;
    return false;
  }
  Disequalities.emplace_back(A, B);
  return true;
}

std::optional<int64_t> CongruenceClosure::classIntValue(TermId T) {
  auto Found = ClassInt.find(find(T));
  if (Found == ClassInt.end())
    return std::nullopt;
  return Found->second;
}

//===----------------------------------------------------------------------===//
// Integer difference bounds
//===----------------------------------------------------------------------===//

namespace {

/// A difference-bound solver over congruence-class representatives. Builds
/// edges x - y <= c and searches for negative cycles (Floyd-Warshall; the
/// variable counts here are tiny). Also detects disequalities forced into
/// equalities.
class DiffBounds {
public:
  explicit DiffBounds(CongruenceClosure &CC) : CC(CC) {}

  /// Index for the class of term \p T, creating it on first use.
  unsigned varOf(TermId T) {
    TermId Rep = CC.find(T);
    auto [It, Inserted] = VarIndex.emplace(Rep, Vars.size());
    if (Inserted) {
      Vars.push_back(Rep);
      // Classes with a known integer value are pinned relative to zero.
      if (auto V = CC.classIntValue(Rep)) {
        unsigned Z = zeroVar();
        addEdge(It->second, Z, *V);
        addEdge(Z, It->second, -*V);
      }
    }
    return It->second;
  }

  unsigned zeroVar() {
    if (!Zero) {
      Zero = Vars.size();
      Vars.push_back(InvalidTerm);
      VarIndex.emplace(InvalidTerm, *Zero);
    }
    return *Zero;
  }

  /// Adds x - y <= c.
  void addEdge(unsigned X, unsigned Y, int64_t C) {
    Edges.push_back({X, Y, C});
  }

  /// Returns true on an arithmetic conflict given the extra disequality
  /// pairs (a forced equality contradicting a disequality is a conflict).
  bool conflict(const std::vector<std::pair<TermId, TermId>> &NePairs) {
    size_t N = Vars.size();
    if (N == 0)
      return false;
    constexpr int64_t Inf = std::numeric_limits<int64_t>::max() / 4;
    std::vector<std::vector<int64_t>> Dist(N, std::vector<int64_t>(N, Inf));
    for (size_t I = 0; I < N; ++I)
      Dist[I][I] = 0;
    for (const Edge &E : Edges)
      Dist[E.X][E.Y] = std::min(Dist[E.X][E.Y], E.C);
    for (size_t K = 0; K < N; ++K)
      for (size_t I = 0; I < N; ++I) {
        if (Dist[I][K] == Inf)
          continue;
        for (size_t J = 0; J < N; ++J) {
          if (Dist[K][J] == Inf)
            continue;
          Dist[I][J] = std::min(Dist[I][J], Dist[I][K] + Dist[K][J]);
        }
      }
    for (size_t I = 0; I < N; ++I)
      if (Dist[I][I] < 0)
        return true;
    // x <= y and y <= x force x = y; conflict with an asserted x != y.
    for (auto &[A, B] : NePairs) {
      auto Ia = VarIndex.find(CC.find(A));
      auto Ib = VarIndex.find(CC.find(B));
      if (Ia == VarIndex.end() || Ib == VarIndex.end())
        continue;
      if (Dist[Ia->second][Ib->second] <= 0 &&
          Dist[Ib->second][Ia->second] <= 0)
        return true;
    }
    return false;
  }

private:
  struct Edge {
    unsigned X, Y;
    int64_t C;
  };

  CongruenceClosure &CC;
  std::map<TermId, unsigned> VarIndex;
  std::vector<TermId> Vars;
  std::vector<Edge> Edges;
  std::optional<unsigned> Zero;
};

} // namespace

bool stq::prover::theoryConflict(const TermArena &A,
                                 const std::vector<Lit> &Units) {
  CongruenceClosure CC(A);
  std::vector<std::pair<TermId, TermId>> NePairs;
  std::vector<Lit> OrderLits;
  for (const Lit &L : Units) {
    if (L.O == Lit::Op::Eq) {
      bool Ok = L.Neg ? CC.assertNe(L.L, L.R) : CC.assertEq(L.L, L.R);
      if (!Ok)
        return true;
      if (L.Neg)
        NePairs.emplace_back(L.L, L.R);
    } else {
      OrderLits.push_back(L);
    }
  }
  if (CC.inConflict())
    return true;

  DiffBounds DB(CC);
  for (const Lit &L : OrderLits) {
    unsigned X = DB.varOf(L.L);
    unsigned Y = DB.varOf(L.R);
    if (!L.Neg) {
      // L <= R  ->  L - R <= 0 ;  L < R  ->  L - R <= -1 (integers).
      DB.addEdge(X, Y, L.O == Lit::Op::Le ? 0 : -1);
    } else {
      // !(L <= R) -> R < L -> R - L <= -1 ; !(L < R) -> R - L <= 0.
      DB.addEdge(Y, X, L.O == Lit::Op::Le ? -1 : 0);
    }
  }
  // Pin every integer-valued class that participates in equalities so that
  // order literals can see constants merged in via congruence.
  return DB.conflict(NePairs);
}
