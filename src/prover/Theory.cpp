//===- Theory.cpp ---------------------------------------------------------===//

#include "prover/Theory.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace stq::prover;

//===----------------------------------------------------------------------===//
// Congruence closure
//===----------------------------------------------------------------------===//

CongruenceClosure::CongruenceClosure(const TermArena &A) : Arena(A) {
  sync();
  // true and false are distinct.
  assertNe(A.trueTerm(), A.falseTerm());
}

void CongruenceClosure::sync() {
  uint32_t N = Arena.size();
  uint32_t Old = static_cast<uint32_t>(Parent.size());
  if (Old >= N)
    return;
  Parent.resize(N);
  Size.resize(N, 1);
  Uses.resize(N);
  Registered.resize(N, false);
  for (uint32_t I = Old; I < N; ++I)
    Parent[I] = I;
  // Register every term so congruence sees the full DAG, including terms
  // that appear only in order literals.
  for (uint32_t I = 0; I < N; ++I)
    if (Arena.get(I).K != TermData::Kind::Var)
      ensure(I);
}

TermId CongruenceClosure::find(TermId T) {
  if (T >= Parent.size())
    sync();
  while (Parent[T] != T) {
    Parent[T] = Parent[Parent[T]];
    T = Parent[T];
  }
  return T;
}

std::vector<TermId> CongruenceClosure::signatureOf(TermId T) {
  const TermData &D = Arena.get(T);
  std::vector<TermId> Sig;
  Sig.reserve(D.Args.size());
  for (TermId Arg : D.Args)
    Sig.push_back(find(Arg));
  return Sig;
}

void CongruenceClosure::ensure(TermId T) {
  if (Registered[T])
    return;
  Registered[T] = true;
  const TermData &D = Arena.get(T);
  if (D.K == TermData::Kind::Int)
    ClassInt[find(T)] = D.Int;
  for (TermId Arg : D.Args) {
    ensure(Arg);
    Uses[find(Arg)].push_back(T);
  }
  if (D.K == TermData::Kind::App && !D.Args.empty()) {
    auto Key = std::make_pair(D.Sym, signatureOf(T));
    auto [It, Inserted] = Signatures.emplace(Key, T);
    if (!Inserted && find(It->second) != find(T))
      PendingMerges.emplace_back(It->second, T);
    while (!PendingMerges.empty()) {
      auto [X, Y] = PendingMerges.back();
      PendingMerges.pop_back();
      merge(X, Y);
    }
  }
}

void CongruenceClosure::merge(TermId A, TermId B) {
  if (Conflict)
    return;
  TermId Ra = find(A), Rb = find(B);
  if (Ra == Rb)
    return;
  if (Size[Ra] < Size[Rb])
    std::swap(Ra, Rb);
  // Merge Rb into Ra.
  auto IntA = ClassInt.find(Ra);
  auto IntB = ClassInt.find(Rb);
  if (IntA != ClassInt.end() && IntB != ClassInt.end() &&
      IntA->second != IntB->second) {
    Conflict = true;
    return;
  }
  Parent[Rb] = Ra;
  Size[Ra] += Size[Rb];
  if (IntB != ClassInt.end())
    ClassInt[Ra] = IntB->second;

  // Recompute signatures of terms that used Rb.
  std::vector<TermId> Moved = std::move(Uses[Rb]);
  Uses[Rb].clear();
  for (TermId User : Moved) {
    const TermData &D = Arena.get(User);
    auto Key = std::make_pair(D.Sym, signatureOf(User));
    auto [It, Inserted] = Signatures.emplace(Key, User);
    if (!Inserted && find(It->second) != find(User))
      PendingMerges.emplace_back(It->second, User);
    Uses[Ra].push_back(User);
  }
  while (!PendingMerges.empty()) {
    auto [X, Y] = PendingMerges.back();
    PendingMerges.pop_back();
    merge(X, Y);
  }
  if (!checkNeConflicts())
    Conflict = true;
}

bool CongruenceClosure::checkNeConflicts() {
  for (auto &[A, B] : Disequalities)
    if (find(A) == find(B))
      return false;
  return true;
}

bool CongruenceClosure::assertEq(TermId A, TermId B) {
  if (Conflict)
    return false;
  sync();
  merge(A, B);
  return !Conflict;
}

bool CongruenceClosure::assertNe(TermId A, TermId B) {
  if (Conflict)
    return false;
  sync();
  if (find(A) == find(B)) {
    Conflict = true;
    return false;
  }
  Disequalities.emplace_back(A, B);
  return true;
}

std::optional<int64_t> CongruenceClosure::classIntValue(TermId T) {
  auto Found = ClassInt.find(find(T));
  if (Found == ClassInt.end())
    return std::nullopt;
  return Found->second;
}

//===----------------------------------------------------------------------===//
// Integer difference bounds
//===----------------------------------------------------------------------===//

namespace {

/// A difference-bound solver over congruence-class representatives. Builds
/// edges x - y <= c and searches for negative cycles (Floyd-Warshall; the
/// variable counts here are tiny). Also detects disequalities forced into
/// equalities. Templated over the closure type so the reference
/// CongruenceClosure and the backtrackable TheorySolver share the exact
/// same arithmetic semantics.
template <class CCT> class DiffBounds {
public:
  explicit DiffBounds(CCT &CC) : CC(CC) {}

  /// Index for the class of term \p T, creating it on first use.
  unsigned varOf(TermId T) {
    TermId Rep = CC.find(T);
    auto [It, Inserted] = VarIndex.emplace(Rep, Vars.size());
    if (Inserted) {
      Vars.push_back(Rep);
      // Classes with a known integer value are pinned relative to zero.
      if (auto V = CC.classIntValue(Rep)) {
        unsigned Z = zeroVar();
        addEdge(It->second, Z, *V);
        addEdge(Z, It->second, -*V);
      }
    }
    return It->second;
  }

  unsigned zeroVar() {
    if (!Zero) {
      Zero = Vars.size();
      Vars.push_back(InvalidTerm);
      VarIndex.emplace(InvalidTerm, *Zero);
    }
    return *Zero;
  }

  /// Adds x - y <= c.
  void addEdge(unsigned X, unsigned Y, int64_t C) {
    Edges.push_back({X, Y, C});
  }

  /// Returns true on an arithmetic conflict given the extra disequality
  /// pairs (a forced equality contradicting a disequality is a conflict).
  bool conflict(const std::vector<std::pair<TermId, TermId>> &NePairs) {
    size_t N = Vars.size();
    if (N == 0)
      return false;
    constexpr int64_t Inf = std::numeric_limits<int64_t>::max() / 4;
    std::vector<std::vector<int64_t>> Dist(N, std::vector<int64_t>(N, Inf));
    for (size_t I = 0; I < N; ++I)
      Dist[I][I] = 0;
    for (const Edge &E : Edges)
      Dist[E.X][E.Y] = std::min(Dist[E.X][E.Y], E.C);
    for (size_t K = 0; K < N; ++K)
      for (size_t I = 0; I < N; ++I) {
        if (Dist[I][K] == Inf)
          continue;
        for (size_t J = 0; J < N; ++J) {
          if (Dist[K][J] == Inf)
            continue;
          Dist[I][J] = std::min(Dist[I][J], Dist[I][K] + Dist[K][J]);
        }
      }
    for (size_t I = 0; I < N; ++I)
      if (Dist[I][I] < 0)
        return true;
    // x <= y and y <= x force x = y; conflict with an asserted x != y.
    for (auto &[A, B] : NePairs) {
      auto Ia = VarIndex.find(CC.find(A));
      auto Ib = VarIndex.find(CC.find(B));
      if (Ia == VarIndex.end() || Ib == VarIndex.end())
        continue;
      if (Dist[Ia->second][Ib->second] <= 0 &&
          Dist[Ib->second][Ia->second] <= 0)
        return true;
    }
    return false;
  }

private:
  struct Edge {
    unsigned X, Y;
    int64_t C;
  };

  CCT &CC;
  std::map<TermId, unsigned> VarIndex;
  std::vector<TermId> Vars;
  std::vector<Edge> Edges;
  std::optional<unsigned> Zero;
};

/// Shared difference-bound pass: translates \p OrderLits into edges over
/// \p CC's class representatives and reports an arithmetic conflict.
template <class CCT>
bool diffBoundsConflict(CCT &CC, const std::vector<Lit> &OrderLits,
                        const std::vector<std::pair<TermId, TermId>> &NePairs) {
  DiffBounds<CCT> DB(CC);
  for (const Lit &L : OrderLits) {
    unsigned X = DB.varOf(L.L);
    unsigned Y = DB.varOf(L.R);
    if (!L.Neg) {
      // L <= R  ->  L - R <= 0 ;  L < R  ->  L - R <= -1 (integers).
      DB.addEdge(X, Y, L.O == Lit::Op::Le ? 0 : -1);
    } else {
      // !(L <= R) -> R < L -> R - L <= -1 ; !(L < R) -> R - L <= 0.
      DB.addEdge(Y, X, L.O == Lit::Op::Le ? -1 : 0);
    }
  }
  // Pin every integer-valued class that participates in equalities so that
  // order literals can see constants merged in via congruence.
  return DB.conflict(NePairs);
}

} // namespace

bool stq::prover::theoryConflict(const TermArena &A,
                                 const std::vector<Lit> &Units) {
  CongruenceClosure CC(A);
  std::vector<std::pair<TermId, TermId>> NePairs;
  std::vector<Lit> OrderLits;
  for (const Lit &L : Units) {
    if (L.O == Lit::Op::Eq) {
      bool Ok = L.Neg ? CC.assertNe(L.L, L.R) : CC.assertEq(L.L, L.R);
      if (!Ok)
        return true;
      if (L.Neg)
        NePairs.emplace_back(L.L, L.R);
    } else {
      OrderLits.push_back(L);
    }
  }
  if (CC.inConflict())
    return true;

  return diffBoundsConflict(CC, OrderLits, NePairs);
}

//===----------------------------------------------------------------------===//
// Backtrackable theory solver
//===----------------------------------------------------------------------===//

TheorySolver::TheorySolver(const TermArena &A) : Arena(A) {
  registerAll();
  // true and false are distinct (level-0 seed, never popped; excluded from
  // the difference-bound NePairs like the reference path excludes it).
  Disequalities.emplace_back(A.trueTerm(), A.falseTerm());
}

void TheorySolver::registerAll() {
  uint32_t N = Arena.size();
  Parent.resize(N);
  Size.assign(N, 1);
  Uses.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    Parent[I] = I;
  // Arguments are interned before the applications that use them, so a
  // single id-order pass reproduces CongruenceClosure::ensure's recursive
  // registration order exactly.
  for (uint32_t T = 0; T < N; ++T) {
    const TermData &D = Arena.get(T);
    if (D.K == TermData::Kind::Var)
      continue;
    if (D.K == TermData::Kind::Int)
      ClassInt[find(T)] = D.Int;
    for (TermId Arg : D.Args)
      Uses[find(Arg)].push_back(T);
    if (D.K == TermData::Kind::App && !D.Args.empty()) {
      insertSignature(T);
      while (!PendingMerges.empty()) {
        auto [X, Y] = PendingMerges.back();
        PendingMerges.pop_back();
        merge(X, Y);
      }
    }
  }
}

TermId TheorySolver::find(TermId T) {
  // No path compression: the parent links are part of the undo trail, and
  // union-by-size keeps the chains logarithmic.
  while (Parent[T] != T)
    T = Parent[T];
  return T;
}

std::vector<TermId> TheorySolver::signatureOf(TermId T) {
  const TermData &D = Arena.get(T);
  std::vector<TermId> Sig;
  Sig.reserve(D.Args.size());
  for (TermId Arg : D.Args)
    Sig.push_back(find(Arg));
  return Sig;
}

void TheorySolver::insertSignature(TermId T) {
  auto Key = std::make_pair(Arena.get(T).Sym, signatureOf(T));
  auto [It, Inserted] = Signatures.emplace(Key, T);
  if (Inserted)
    SigTrail.push_back(std::move(Key));
  else if (find(It->second) != find(T))
    PendingMerges.emplace_back(It->second, T);
}

void TheorySolver::merge(TermId A, TermId B) {
  if (Conflict)
    return;
  TermId Ra = find(A), Rb = find(B);
  if (Ra == Rb)
    return;
  if (Size[Ra] < Size[Rb])
    std::swap(Ra, Rb);
  // Merge Rb into Ra.
  auto IntA = ClassInt.find(Ra);
  auto IntB = ClassInt.find(Rb);
  if (IntA != ClassInt.end() && IntB != ClassInt.end() &&
      IntA->second != IntB->second) {
    Conflict = true;
    return;
  }
  MergeRec Rec;
  Rec.Child = Rb;
  Rec.Into = Ra;
  Rec.UsesOldLen = Uses[Ra].size();
  Rec.WroteInt = IntB != ClassInt.end();
  Rec.HadInt = IntA != ClassInt.end();
  Rec.OldInt = Rec.HadInt ? IntA->second : 0;
  MergeTrail.push_back(Rec);

  Parent[Rb] = Ra;
  Size[Ra] += Size[Rb];
  if (IntB != ClassInt.end())
    ClassInt[Ra] = IntB->second;

  // Recompute signatures of terms that used Rb. Uses[Rb] is left intact
  // (Rb is no longer a root, so it is never consulted until pop() makes it
  // one again); Uses[Ra] grows and is truncated back on undo.
  for (size_t I = 0, E = Uses[Rb].size(); I < E; ++I) {
    TermId User = Uses[Rb][I];
    insertSignature(User);
    Uses[Ra].push_back(User);
  }
  while (!PendingMerges.empty()) {
    auto [X, Y] = PendingMerges.back();
    PendingMerges.pop_back();
    merge(X, Y);
  }
  if (!checkNeConflicts())
    Conflict = true;
}

bool TheorySolver::checkNeConflicts() {
  for (auto &[A, B] : Disequalities)
    if (find(A) == find(B))
      return false;
  return true;
}

void TheorySolver::push() {
  Frames.push_back({MergeTrail.size(), SigTrail.size(), Disequalities.size(),
                    OrderLits.size(), Conflict});
}

void TheorySolver::pop() {
  Frame F = Frames.back();
  Frames.pop_back();
  ++Pops;
  while (MergeTrail.size() > F.Merges) {
    const MergeRec &R = MergeTrail.back();
    Parent[R.Child] = R.Child;
    Size[R.Into] -= Size[R.Child];
    Uses[R.Into].resize(R.UsesOldLen);
    if (R.WroteInt) {
      if (R.HadInt)
        ClassInt[R.Into] = R.OldInt;
      else
        ClassInt.erase(R.Into);
    }
    MergeTrail.pop_back();
  }
  while (SigTrail.size() > F.Sigs) {
    Signatures.erase(SigTrail.back());
    SigTrail.pop_back();
  }
  Disequalities.resize(F.Diseqs);
  OrderLits.resize(F.Orders);
  Conflict = F.PrevConflict;
}

bool TheorySolver::assertLit(const Lit &L) {
  if (Conflict)
    return false;
  if (L.O != Lit::Op::Eq) {
    OrderLits.push_back(L);
    return true;
  }
  if (L.Neg) {
    if (find(L.L) == find(L.R)) {
      Conflict = true;
      return false;
    }
    Disequalities.emplace_back(L.L, L.R);
    return true;
  }
  merge(L.L, L.R);
  return !Conflict;
}

bool TheorySolver::conflictNow() {
  if (Conflict)
    return true;
  // Disequalities[0] is the true != false seed; the reference path's
  // NePairs contain only unit-derived pairs, so skip it here too.
  std::vector<std::pair<TermId, TermId>> NePairs(Disequalities.begin() + 1,
                                                 Disequalities.end());
  return diffBoundsConflict(*this, OrderLits, NePairs);
}

std::optional<int64_t> TheorySolver::classIntValue(TermId T) {
  auto Found = ClassInt.find(find(T));
  if (Found == ClassInt.end())
    return std::nullopt;
  return Found->second;
}
