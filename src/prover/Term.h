//===- Term.h - Hash-consed first-order terms -------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term language of the automatic theorem prover that stands in for
/// Simplify (section 4). Terms are hash-consed in an arena: structurally
/// equal terms share one TermId, which makes congruence closure and pattern
/// matching cheap.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_TERM_H
#define STQ_PROVER_TERM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stq::prover {

using TermId = uint32_t;
constexpr TermId InvalidTerm = ~0u;

/// One node of the term DAG.
struct TermData {
  enum class Kind {
    App, ///< Function application (constants are nullary applications).
    Int, ///< Integer literal; two different literals are always disequal.
    Var, ///< Pattern variable; appears only in axioms and triggers.
  };

  Kind K = Kind::App;
  std::string Sym;
  std::vector<TermId> Args;
  int64_t Int = 0;
};

/// Substitutions map pattern-variable names to ground terms.
using Subst = std::map<std::string, TermId>;

/// Owns all terms of one prover session. TermIds are dense indices, so
/// side tables can be plain vectors.
class TermArena {
public:
  TermArena();

  /// Interns an application term.
  TermId app(const std::string &Sym, std::vector<TermId> Args = {});
  /// Interns an integer literal.
  TermId intConst(int64_t Value);
  /// Interns a pattern variable.
  TermId var(const std::string &Name);

  const TermData &get(TermId Id) const { return Terms[Id]; }
  uint32_t size() const { return static_cast<uint32_t>(Terms.size()); }

  /// Distinguished constants shared by every session.
  TermId trueTerm() const { return True; }
  TermId falseTerm() const { return False; }
  TermId nullTerm() const { return Null; }

  bool isGround(TermId Id) const;
  /// Collects the pattern variables occurring in \p Id into \p Out.
  void collectVars(TermId Id, std::vector<std::string> &Out) const;

  /// Applies \p S to \p Id; every variable in \p Id must be bound.
  TermId substitute(TermId Id, const Subst &S);

  /// Matches pattern \p Pattern against ground term \p Ground, extending
  /// \p S. Purely syntactic (no matching modulo equality). Returns false and
  /// leaves \p S unspecified on mismatch.
  bool match(TermId Pattern, TermId Ground, Subst &S) const;

  std::string str(TermId Id) const;

private:
  struct Key {
    TermData::Kind K;
    std::string Sym;
    std::vector<TermId> Args;
    int64_t Int;
    bool operator<(const Key &O) const {
      if (K != O.K)
        return K < O.K;
      if (Int != O.Int)
        return Int < O.Int;
      if (Sym != O.Sym)
        return Sym < O.Sym;
      return Args < O.Args;
    }
  };

  TermId intern(TermData Data);

  std::vector<TermData> Terms;
  std::map<Key, TermId> Interned;
  TermId True = 0, False = 0, Null = 0;
};

} // namespace stq::prover

#endif // STQ_PROVER_TERM_H
