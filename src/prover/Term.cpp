//===- Term.cpp -----------------------------------------------------------===//

#include "prover/Term.h"

#include <cassert>

using namespace stq::prover;

TermArena::TermArena() {
  True = app("true");
  False = app("false");
  Null = app("NULL");
}

TermId TermArena::intern(TermData Data) {
  Key K{Data.K, Data.Sym, Data.Args, Data.Int};
  auto Found = Interned.find(K);
  if (Found != Interned.end())
    return Found->second;
  TermId Id = static_cast<TermId>(Terms.size());
  Terms.push_back(std::move(Data));
  Interned.emplace(std::move(K), Id);
  return Id;
}

TermId TermArena::app(const std::string &Sym, std::vector<TermId> Args) {
  TermData D;
  D.K = TermData::Kind::App;
  D.Sym = Sym;
  D.Args = std::move(Args);
  return intern(std::move(D));
}

TermId TermArena::intConst(int64_t Value) {
  TermData D;
  D.K = TermData::Kind::Int;
  D.Int = Value;
  return intern(std::move(D));
}

TermId TermArena::var(const std::string &Name) {
  TermData D;
  D.K = TermData::Kind::Var;
  D.Sym = Name;
  return intern(std::move(D));
}

bool TermArena::isGround(TermId Id) const {
  const TermData &D = Terms[Id];
  if (D.K == TermData::Kind::Var)
    return false;
  for (TermId Arg : D.Args)
    if (!isGround(Arg))
      return false;
  return true;
}

void TermArena::collectVars(TermId Id, std::vector<std::string> &Out) const {
  const TermData &D = Terms[Id];
  if (D.K == TermData::Kind::Var) {
    for (const std::string &Existing : Out)
      if (Existing == D.Sym)
        return;
    Out.push_back(D.Sym);
    return;
  }
  for (TermId Arg : D.Args)
    collectVars(Arg, Out);
}

TermId TermArena::substitute(TermId Id, const Subst &S) {
  const TermData D = Terms[Id]; // Copy: interning may reallocate Terms.
  switch (D.K) {
  case TermData::Kind::Int:
    return Id;
  case TermData::Kind::Var: {
    auto Found = S.find(D.Sym);
    assert(Found != S.end() && "unbound variable during substitution");
    return Found->second;
  }
  case TermData::Kind::App: {
    if (D.Args.empty())
      return Id;
    std::vector<TermId> Args;
    Args.reserve(D.Args.size());
    bool Changed = false;
    for (TermId Arg : D.Args) {
      TermId NewArg = substitute(Arg, S);
      Changed = Changed || NewArg != Arg;
      Args.push_back(NewArg);
    }
    if (!Changed)
      return Id;
    return app(D.Sym, std::move(Args));
  }
  }
  return Id;
}

bool TermArena::match(TermId Pattern, TermId Ground, Subst &S) const {
  const TermData &P = Terms[Pattern];
  if (P.K == TermData::Kind::Var) {
    auto [It, Inserted] = S.emplace(P.Sym, Ground);
    return Inserted || It->second == Ground;
  }
  const TermData &G = Terms[Ground];
  if (P.K != G.K)
    return false;
  if (P.K == TermData::Kind::Int)
    return P.Int == G.Int;
  if (P.Sym != G.Sym || P.Args.size() != G.Args.size())
    return false;
  for (size_t I = 0; I < P.Args.size(); ++I)
    if (!match(P.Args[I], G.Args[I], S))
      return false;
  return true;
}

std::string TermArena::str(TermId Id) const {
  const TermData &D = Terms[Id];
  switch (D.K) {
  case TermData::Kind::Int:
    return std::to_string(D.Int);
  case TermData::Kind::Var:
    return "?" + D.Sym;
  case TermData::Kind::App: {
    if (D.Args.empty())
      return D.Sym;
    std::string Out = D.Sym + "(";
    for (size_t I = 0; I < D.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += str(D.Args[I]);
    }
    return Out + ")";
  }
  }
  return "?";
}
