//===- Formula.h - First-order formulas -------------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formulas over the prover's term language: literals (equality and integer
/// order), boolean connectives, and universal quantification with optional
/// explicit trigger patterns (Simplify-style). Uninterpreted predicates are
/// encoded as boolean-valued terms compared against the distinguished
/// `true` constant.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_FORMULA_H
#define STQ_PROVER_FORMULA_H

#include "prover/Term.h"

#include <memory>
#include <string>
#include <vector>

namespace stq::prover {

/// An atomic constraint, possibly negated. Gt/Ge are normalized into Lt/Le
/// by swapping operands at construction time.
struct Lit {
  enum class Op { Eq, Le, Lt };

  bool Neg = false;
  Op O = Op::Eq;
  TermId L = InvalidTerm;
  TermId R = InvalidTerm;

  Lit negated() const { return Lit{!Neg, O, L, R}; }

  /// Canonical tuple for set membership (orients symmetric equalities).
  std::tuple<bool, Op, TermId, TermId> key() const {
    if (O == Op::Eq && R < L)
      return {Neg, O, R, L};
    return {Neg, O, L, R};
  }
  bool operator<(const Lit &Other) const { return key() < Other.key(); }
  bool operator==(const Lit &Other) const { return key() == Other.key(); }

  std::string str(const TermArena &A) const;
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// One multipattern: a set of term patterns that must all match (sharing
/// variable bindings) to produce an instantiation.
using MultiPattern = std::vector<TermId>;

/// An immutable formula tree.
class Formula {
public:
  enum class Kind { Lit, And, Or, Not, Implies, Forall, True, False };

  Kind K = Kind::True;
  prover::Lit L;                  // Kind::Lit
  std::vector<FormulaPtr> Kids;   // And/Or (n-ary), Not/Implies (1/2 kids)
  std::vector<std::string> Vars;  // Forall
  std::vector<MultiPattern> Triggers; // Forall (may be empty: inferred)
  FormulaPtr Body;                // Forall

  std::string str(const TermArena &A) const;
};

// Builders.
FormulaPtr fTrue();
FormulaPtr fFalse();
FormulaPtr fLit(Lit L);
FormulaPtr fEq(TermId A, TermId B);
FormulaPtr fNe(TermId A, TermId B);
FormulaPtr fLt(TermId A, TermId B);
FormulaPtr fLe(TermId A, TermId B);
FormulaPtr fGt(TermId A, TermId B);
FormulaPtr fGe(TermId A, TermId B);
/// Uninterpreted predicate application: Sym(Args) = true.
FormulaPtr fPred(TermArena &A, const std::string &Sym,
                 std::vector<TermId> Args);
/// Negated predicate application: Sym(Args) = false. (Stronger than
/// "not equal to true": predicates are two-valued in our encoding.)
FormulaPtr fNotPred(TermArena &A, const std::string &Sym,
                    std::vector<TermId> Args);
FormulaPtr fNot(FormulaPtr F);
FormulaPtr fAnd(std::vector<FormulaPtr> Kids);
FormulaPtr fOr(std::vector<FormulaPtr> Kids);
FormulaPtr fImplies(FormulaPtr A, FormulaPtr B);
/// Universal quantification. \p Triggers may be empty, in which case the
/// preprocessor infers patterns from the body.
FormulaPtr fForall(std::vector<std::string> Vars, FormulaPtr Body,
                   std::vector<MultiPattern> Triggers = {});

} // namespace stq::prover

#endif // STQ_PROVER_FORMULA_H
