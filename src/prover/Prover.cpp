//===- Prover.cpp ---------------------------------------------------------===//

#include "prover/Prover.h"

#include "prover/Theory.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace stq::prover;

Prover::Prover(ProverOptions Options) : Options(Options) {
  Deadline = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(Options.TimeoutSeconds));
}

bool Prover::timedOut() const {
  return std::chrono::steady_clock::now() > Deadline;
}

TermId Prover::freshConst(const std::string &Hint) {
  return A.app("$" + Hint + "_" + std::to_string(SkolemCount++));
}

//===----------------------------------------------------------------------===//
// Clausification
//===----------------------------------------------------------------------===//

namespace {

/// Cross product of two clause sets: CNF of (X \/ Y).
std::vector<std::vector<Lit>> crossClauses(
    const std::vector<std::vector<Lit>> &Xs,
    const std::vector<std::vector<Lit>> &Ys) {
  std::vector<std::vector<Lit>> Out;
  Out.reserve(Xs.size() * Ys.size());
  for (const auto &X : Xs)
    for (const auto &Y : Ys) {
      std::vector<Lit> C = X;
      C.insert(C.end(), Y.begin(), Y.end());
      Out.push_back(std::move(C));
    }
  return Out;
}

} // namespace

std::vector<Prover::Clause> Prover::toClauses(const FormulaPtr &F,
                                              bool Positive) {
  switch (F->K) {
  case Formula::Kind::True:
    if (Positive)
      return {};
    return {Clause{}}; // The empty clause: unsatisfiable.
  case Formula::Kind::False:
    if (Positive)
      return {Clause{}};
    return {};
  case Formula::Kind::Lit:
    return {Clause{Positive ? F->L : F->L.negated()}};
  case Formula::Kind::Not:
    return toClauses(F->Kids[0], !Positive);
  case Formula::Kind::Implies: {
    if (Positive) {
      // A => B is !A \/ B.
      return crossClauses(toClauses(F->Kids[0], false),
                          toClauses(F->Kids[1], true));
    }
    // !(A => B) is A /\ !B.
    auto Out = toClauses(F->Kids[0], true);
    auto More = toClauses(F->Kids[1], false);
    Out.insert(Out.end(), More.begin(), More.end());
    return Out;
  }
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    bool Conjunctive = (F->K == Formula::Kind::And) == Positive;
    if (Conjunctive) {
      std::vector<Clause> Out;
      for (const FormulaPtr &Kid : F->Kids) {
        auto More = toClauses(Kid, Positive);
        Out.insert(Out.end(), More.begin(), More.end());
      }
      return Out;
    }
    std::vector<Clause> Out = {Clause{}};
    for (const FormulaPtr &Kid : F->Kids)
      Out = crossClauses(Out, toClauses(Kid, Positive));
    return Out;
  }
  case Formula::Kind::Forall: {
    if (Positive) {
      // A nested positive forall: guard the axiom with a fresh proxy
      // literal so the quantifier can live inside a clause.
      TermId Proxy = A.app("$proxy_" + std::to_string(ProxyCount++));
      Lit ProxyLit{false, Lit::Op::Eq, Proxy, A.trueTerm()};
      FormulaPtr Guarded =
          fOr({fLit(ProxyLit.negated()), F->Body});
      addAxiomInternal("proxy", F->Vars, F->Triggers, Guarded);
      return {Clause{ProxyLit}};
    }
    // Negative forall: exists a counterexample; Skolemize.
    Subst S;
    for (const std::string &V : F->Vars)
      S[V] = freshConst("sk_" + V);
    return toClauses(substFormula(F->Body, S), false);
  }
  }
  return {};
}

FormulaPtr Prover::substFormula(const FormulaPtr &F, const Subst &S) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return F;
  case Formula::Kind::Lit: {
    Lit L = F->L;
    L.L = A.substitute(L.L, S);
    L.R = A.substitute(L.R, S);
    return fLit(L);
  }
  case Formula::Kind::Not:
    return fNot(substFormula(F->Kids[0], S));
  case Formula::Kind::Implies:
    return fImplies(substFormula(F->Kids[0], S),
                    substFormula(F->Kids[1], S));
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    std::vector<FormulaPtr> Kids;
    Kids.reserve(F->Kids.size());
    for (const FormulaPtr &Kid : F->Kids)
      Kids.push_back(substFormula(Kid, S));
    return F->K == Formula::Kind::And ? fAnd(std::move(Kids))
                                      : fOr(std::move(Kids));
  }
  case Formula::Kind::Forall: {
    // Substitute only the free variables (bound names shadow).
    Subst Inner = S;
    for (const std::string &V : F->Vars)
      Inner.erase(V);
    if (Inner.empty())
      return F;
    return fForall(F->Vars, substFormula(F->Body, Inner), F->Triggers);
  }
  }
  return F;
}

void Prover::addClauses(std::vector<Clause> Cs) {
  for (Clause &C : Cs) {
    // Canonical form for dedup.
    std::vector<std::tuple<bool, Lit::Op, TermId, TermId>> Key;
    Key.reserve(C.size());
    for (const Lit &L : C)
      Key.push_back(L.key());
    std::sort(Key.begin(), Key.end());
    Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
    if (!ClauseDedup.insert(Key).second)
      continue;
    GroundClauses.push_back(std::move(C));
  }
  Stats.Clauses = static_cast<unsigned>(GroundClauses.size());
}

void Prover::addAxiomInternal(const std::string &Name,
                              std::vector<std::string> Vars,
                              std::vector<MultiPattern> Triggers,
                              FormulaPtr Body) {
  Axiom Ax;
  Ax.Name = Name;
  Ax.Vars = std::move(Vars);
  Ax.Body = std::move(Body);
  Ax.Triggers = std::move(Triggers);
  if (Ax.Triggers.empty())
    Ax.Triggers = inferTriggers(Ax.Vars, Ax.Body);
  Axioms.push_back(std::move(Ax));
}

void Prover::addAxiom(const std::string &Name, FormulaPtr F) {
  Inputs.push_back({"axiom:" + Name, F});
  if (F->K == Formula::Kind::Forall) {
    addAxiomInternal(Name, F->Vars, F->Triggers, F->Body);
    return;
  }
  addClauses(toClauses(F, /*Positive=*/true));
}

void Prover::addHypothesis(FormulaPtr F) {
  Inputs.push_back({"hyp", F});
  addClauses(toClauses(F, /*Positive=*/true));
}

//===----------------------------------------------------------------------===//
// Trigger inference
//===----------------------------------------------------------------------===//

void Prover::collectAppTerms(const FormulaPtr &F, std::vector<TermId> &Out) {
  switch (F->K) {
  case Formula::Kind::Lit: {
    // Walk both sides, collecting application subterms that mention at
    // least one variable.
    std::vector<TermId> Stack = {F->L.L, F->L.R};
    while (!Stack.empty()) {
      TermId T = Stack.back();
      Stack.pop_back();
      const TermData &D = A.get(T);
      if (D.K == TermData::Kind::App && !D.Args.empty()) {
        std::vector<std::string> Vars;
        A.collectVars(T, Vars);
        if (!Vars.empty())
          Out.push_back(T);
      }
      for (TermId Arg : D.Args)
        Stack.push_back(Arg);
    }
    return;
  }
  case Formula::Kind::Not:
  case Formula::Kind::Implies:
  case Formula::Kind::And:
  case Formula::Kind::Or:
    for (const FormulaPtr &Kid : F->Kids)
      collectAppTerms(Kid, Out);
    return;
  case Formula::Kind::Forall:
    collectAppTerms(F->Body, Out);
    return;
  default:
    return;
  }
}

namespace {

unsigned termSize(const TermArena &A, TermId T) {
  const TermData &D = A.get(T);
  unsigned N = 1;
  for (TermId Arg : D.Args)
    N += termSize(A, Arg);
  return N;
}

} // namespace

std::vector<MultiPattern> Prover::inferTriggers(
    const std::vector<std::string> &Vars, const FormulaPtr &Body) {
  std::vector<TermId> Candidates;
  collectAppTerms(Body, Candidates);
  std::sort(Candidates.begin(), Candidates.end());
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());
  if (Vars.empty() || Candidates.empty())
    return {};

  auto varsOf = [&](TermId T) {
    std::vector<std::string> Out;
    A.collectVars(T, Out);
    return Out;
  };

  // Prefer a single smallest term covering all variables.
  TermId Best = InvalidTerm;
  unsigned BestSize = ~0u;
  for (TermId T : Candidates) {
    std::vector<std::string> TV = varsOf(T);
    bool CoversAll = true;
    for (const std::string &V : Vars)
      if (std::find(TV.begin(), TV.end(), V) == TV.end()) {
        CoversAll = false;
        break;
      }
    if (CoversAll && termSize(A, T) < BestSize) {
      Best = T;
      BestSize = termSize(A, T);
    }
  }
  if (Best != InvalidTerm)
    return {MultiPattern{Best}};

  // Greedy multipattern: repeatedly add the candidate covering the most
  // uncovered variables.
  std::set<std::string> Uncovered(Vars.begin(), Vars.end());
  MultiPattern MP;
  while (!Uncovered.empty()) {
    TermId Pick = InvalidTerm;
    unsigned PickCount = 0;
    for (TermId T : Candidates) {
      unsigned Count = 0;
      for (const std::string &V : varsOf(T))
        if (Uncovered.count(V))
          ++Count;
      if (Count > PickCount) {
        Pick = T;
        PickCount = Count;
      }
    }
    if (Pick == InvalidTerm)
      return {}; // Some variable occurs in no application term.
    MP.push_back(Pick);
    for (const std::string &V : varsOf(Pick))
      Uncovered.erase(V);
  }
  return {MP};
}

//===----------------------------------------------------------------------===//
// Instantiation
//===----------------------------------------------------------------------===//

namespace {

/// TermArena::match with a bind trail: every variable this call newly binds
/// into \p S is recorded in \p Bound, so the caller can roll the shared
/// substitution back instead of deep-copying the map per candidate.
bool matchBind(const TermArena &A, TermId Pattern, TermId Ground, Subst &S,
               std::vector<std::string> &Bound) {
  const TermData &P = A.get(Pattern);
  if (P.K == TermData::Kind::Var) {
    auto [It, Inserted] = S.emplace(P.Sym, Ground);
    if (Inserted)
      Bound.push_back(P.Sym);
    return Inserted || It->second == Ground;
  }
  const TermData &G = A.get(Ground);
  if (P.K != G.K)
    return false;
  if (P.K == TermData::Kind::Int)
    return P.Int == G.Int;
  if (P.Sym != G.Sym || P.Args.size() != G.Args.size())
    return false;
  for (size_t I = 0; I < P.Args.size(); ++I)
    if (!matchBind(A, P.Args[I], G.Args[I], S, Bound))
      return false;
  return true;
}

} // namespace

void Prover::matchMultiPattern(const MultiPattern &MP, size_t PatternIdx,
                               size_t DeltaIdx, Subst &S,
                               std::vector<std::string> &Bound,
                               std::vector<Subst> &Out) {
  if (PatternIdx == MP.size()) {
    Out.push_back(S);
    return;
  }
  TermId Pattern = MP[PatternIdx];
  const TermData &P = A.get(Pattern);
  auto Found = BySymIndex.find(P.Sym);
  if (Found == BySymIndex.end())
    return;
  const std::vector<TermId> &Candidates = Found->second;
  size_t OldCount = Candidates.size();
  if (auto OC = RoundOldCount.find(P.Sym); OC != RoundOldCount.end())
    OldCount = OC->second;
  else if (DeltaIdx != ~size_t(0))
    OldCount = 0; // Symbol first appeared this round: everything is delta.
  size_t Begin = 0, End = Candidates.size();
  if (DeltaIdx != ~size_t(0)) {
    if (PatternIdx < DeltaIdx)
      End = OldCount; // Strictly pre-round terms.
    else if (PatternIdx == DeltaIdx)
      Begin = OldCount; // This round's delta.
  }
  for (size_t I = Begin; I < End; ++I) {
    size_t Mark = Bound.size();
    if (matchBind(A, Pattern, Candidates[I], S, Bound))
      matchMultiPattern(MP, PatternIdx + 1, DeltaIdx, S, Bound, Out);
    while (Bound.size() > Mark) {
      S.erase(Bound.back());
      Bound.pop_back();
    }
  }
}

unsigned Prover::instantiateRound() {
  // Delta indexing: only terms interned since the previous round are new
  // match candidates. Terms interned *during* this round's instantiations
  // are picked up next round, matching the historical snapshot semantics.
  uint32_t RoundStart = A.size();
  RoundOldCount.clear();
  for (const auto &[Sym, Terms] : BySymIndex)
    RoundOldCount[Sym] = Terms.size();
  unsigned Delta = 0;
  for (TermId T = IndexedWatermark; T < RoundStart; ++T) {
    const TermData &D = A.get(T);
    if (D.K != TermData::Kind::App || D.Args.empty())
      continue;
    if (!A.isGround(T))
      continue;
    BySymIndex[D.Sym].push_back(T);
    ++Delta;
  }
  IndexedWatermark = RoundStart;
  Stats.DeltaTerms += Delta;

  unsigned NewClauses = 0;
  for (unsigned AxIdx = 0; AxIdx < Axioms.size(); ++AxIdx) {
    // Instantiation can append proxy axioms to Axioms (nested positive
    // foralls), so copy what matching needs instead of holding a reference
    // across the mutation.
    bool Fresh = Axioms[AxIdx].FreshForMatch;
    Axioms[AxIdx].FreshForMatch = false;
    std::vector<std::string> Vars = Axioms[AxIdx].Vars;
    std::vector<MultiPattern> Triggers = Axioms[AxIdx].Triggers;
    FormulaPtr Body = Axioms[AxIdx].Body;
    for (const MultiPattern &MP : Triggers) {
      std::vector<Subst> Matches;
      Subst Shared;
      std::vector<std::string> Bound;
      if (Fresh) {
        // First participation: catch up against the whole index.
        matchMultiPattern(MP, 0, ~size_t(0), Shared, Bound, Matches);
      } else {
        // One position per choice of DeltaIdx draws from this round's new
        // terms; all-older combinations were enumerated by earlier rounds
        // (and would be discarded by InstDedup anyway).
        for (size_t D = 0; D < MP.size(); ++D)
          matchMultiPattern(MP, 0, D, Shared, Bound, Matches);
      }
      for (const Subst &S : Matches) {
        if (Stats.Instantiations >= Options.MaxInstantiations) {
          ResourcesExceeded = true;
          return NewClauses;
        }
        // Require every axiom variable to be bound by the trigger.
        bool Complete = true;
        std::vector<TermId> Binding;
        for (const std::string &V : Vars) {
          auto FoundVar = S.find(V);
          if (FoundVar == S.end()) {
            Complete = false;
            break;
          }
          Binding.push_back(FoundVar->second);
        }
        if (!Complete)
          continue;
        if (!InstDedup.emplace(AxIdx, Binding).second)
          continue;
        ++Stats.Instantiations;
        Subst Restricted;
        for (size_t I = 0; I < Vars.size(); ++I)
          Restricted[Vars[I]] = Binding[I];
        FormulaPtr Instance = substFormula(Body, Restricted);
        size_t Before = GroundClauses.size();
        addClauses(toClauses(Instance, /*Positive=*/true));
        NewClauses += static_cast<unsigned>(GroundClauses.size() - Before);
      }
    }
  }
  return NewClauses;
}

//===----------------------------------------------------------------------===//
// DPLL search: reference engine (copy-per-node recursion)
//===----------------------------------------------------------------------===//

bool Prover::refuteReference(std::vector<Lit> Units,
                             std::vector<Clause> Clauses, unsigned Depth) {
  if (Depth > Options.MaxSplitDepth || timedOut()) {
    ResourcesExceeded = true;
    return false;
  }

  std::set<std::tuple<bool, Lit::Op, TermId, TermId>> UnitSet;
  for (const Lit &L : Units)
    UnitSet.insert(L.key());

  // Unit propagation to fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Clause> Remaining;
    Remaining.reserve(Clauses.size());
    for (Clause &C : Clauses) {
      Clause Simplified;
      bool Satisfied = false;
      for (const Lit &L : C) {
        if (UnitSet.count(L.key())) {
          Satisfied = true;
          break;
        }
        if (UnitSet.count(L.negated().key()))
          continue; // Literal is false; drop it.
        Simplified.push_back(L);
      }
      if (Satisfied)
        continue;
      if (Simplified.empty())
        return true; // Empty clause: contradiction.
      if (Simplified.size() == 1) {
        if (!UnitSet.count(Simplified[0].key())) {
          Units.push_back(Simplified[0]);
          UnitSet.insert(Simplified[0].key());
          Changed = true;
        }
        continue;
      }
      Remaining.push_back(std::move(Simplified));
    }
    Clauses = std::move(Remaining);
  }

  ++Stats.TheoryChecks;
  if (theoryConflict(A, Units))
    return true;

  if (Clauses.empty()) {
    // Consistent: record a counterexample sketch.
    std::string Model;
    for (const Lit &L : Units) {
      if (!Model.empty())
        Model += " /\\ ";
      Model += L.str(A);
    }
    Stats.Model = Model;
    return false;
  }

  // Split on the smallest clause.
  size_t BestIdx = 0;
  for (size_t I = 1; I < Clauses.size(); ++I)
    if (Clauses[I].size() < Clauses[BestIdx].size())
      BestIdx = I;
  Clause Chosen = Clauses[BestIdx];
  Clauses.erase(Clauses.begin() + BestIdx);

  for (size_t I = 0; I < Chosen.size(); ++I) {
    ++Stats.Splits;
    std::vector<Lit> BranchUnits = Units;
    BranchUnits.push_back(Chosen[I]);
    // Later branches may assume earlier literals were false.
    for (size_t J = 0; J < I; ++J)
      BranchUnits.push_back(Chosen[J].negated());
    if (!refuteReference(BranchUnits, Clauses, Depth + 1))
      return false;
    if (timedOut()) {
      ResourcesExceeded = true;
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// DPLL search: incremental trail-based engine
//===----------------------------------------------------------------------===//

namespace {

/// The incremental search core. One instance per refutation round: it
/// encodes the ground clause database once (atoms, two-watched-literal
/// watch lists), then explores the DPLL tree over a single destructive
/// assignment trail with a backtrackable TheorySolver, instead of copying
/// Units/Clauses at every node.
///
/// The search replicates the reference engine's shape exactly — split on
/// the first smallest not-yet-satisfied clause, try its literals in order,
/// branch i assumes literals 0..i-1 false — so both engines walk the same
/// tree and return identical verdicts; only the bookkeeping differs.
class IncrementalSearch {
public:
  enum class Outcome { Refuted, Consistent, ResourceOut };

  IncrementalSearch(const TermArena &A, const ProverOptions &Options,
                    ProverStats &Stats,
                    std::chrono::steady_clock::time_point Deadline)
      : A(A), Options(Options), Stats(Stats), Deadline(Deadline), TS(A) {}

  Outcome run(const std::vector<std::vector<Lit>> &Ground) {
    if (!buildClauses(Ground))
      return Outcome::Refuted; // Empty clause or contradictory units.

    for (;;) {
      if (!propagate()) {
        if (!backtrack())
          return Outcome::Refuted;
        continue;
      }
      if (timedOut())
        return Outcome::ResourceOut;
      ++Stats.TheoryChecks;
      if (TS.conflictNow()) {
        if (!backtrack())
          return Outcome::Refuted;
        continue;
      }
      size_t Chosen = chooseClause();
      if (Chosen == ~size_t(0)) {
        buildModel();
        return Outcome::Consistent;
      }
      // The reference engine aborts a node entered at depth > MaxSplitDepth;
      // entering a branch below this decision is exactly that node.
      if (Frames.size() + 1 > Options.MaxSplitDepth)
        return Outcome::ResourceOut;
      Frame F;
      F.TrailMark = Trail.size();
      F.Next = 0;
      for (unsigned EL : Clauses[Chosen].Lits)
        if (value(EL) == 0)
          F.Lits.push_back(EL);
      Frames.push_back(std::move(F));
      ++Stats.Splits;
      enqueue(Frames.back().Lits[0]);
    }
  }

  uint64_t theoryPops() const { return TS.pops(); }

private:
  struct WClause {
    /// Encoded literals (2*atom + sign); Lits[0] and Lits[1] are watched.
    std::vector<unsigned> Lits;
  };
  struct Frame {
    std::vector<unsigned> Lits; ///< Branch literals, in clause order.
    size_t Next;                ///< Branch currently being explored.
    size_t TrailMark;           ///< Trail size at the decision point.
  };

  static unsigned negate(unsigned EL) { return EL ^ 1u; }

  unsigned atomOf(const Lit &L) {
    Lit Pos = L;
    Pos.Neg = false;
    auto Key = Pos.key();
    auto [It, Inserted] = AtomIds.emplace(Key, Atoms.size());
    if (Inserted) {
      Atoms.push_back(Pos);
      Val.push_back(0);
      Watches.emplace_back();
      Watches.emplace_back();
    }
    return It->second;
  }

  /// Encoded literal of \p L; bit 0 is the negation flag.
  unsigned encode(const Lit &L) { return 2 * atomOf(L) + (L.Neg ? 1u : 0u); }

  Lit litOf(unsigned EL) const {
    return (EL & 1u) ? Atoms[EL / 2].negated() : Atoms[EL / 2];
  }

  /// -1 false, 0 unassigned, +1 true.
  int value(unsigned EL) const {
    int8_t V = Val[EL / 2];
    if (V == 0)
      return 0;
    return (EL & 1u) ? -V : V;
  }

  /// Asserts \p EL true; returns false on a boolean conflict.
  bool enqueue(unsigned EL) {
    int V = value(EL);
    if (V > 0)
      return true;
    if (V < 0)
      return false;
    Val[EL / 2] = (EL & 1u) ? -1 : 1;
    Trail.push_back(EL);
    if (Trail.size() > Stats.MaxTrailDepth)
      Stats.MaxTrailDepth = static_cast<unsigned>(Trail.size());
    return true;
  }

  /// Encodes the ground clauses, seeds watches and level-0 units. Returns
  /// false if a clause is empty or the units are contradictory.
  bool buildClauses(const std::vector<std::vector<Lit>> &Ground) {
    for (const std::vector<Lit> &C : Ground) {
      WClause W;
      for (const Lit &L : C) {
        unsigned EL = encode(L);
        if (std::find(W.Lits.begin(), W.Lits.end(), EL) == W.Lits.end())
          W.Lits.push_back(EL);
      }
      if (W.Lits.empty())
        return false;
      if (W.Lits.size() == 1) {
        if (!enqueue(W.Lits[0]))
          return false;
        continue;
      }
      unsigned Idx = static_cast<unsigned>(Clauses.size());
      Watches[W.Lits[0]].push_back(Idx);
      Watches[W.Lits[1]].push_back(Idx);
      Clauses.push_back(std::move(W));
    }
    return true;
  }

  /// Unit propagation to fixpoint, asserting each trail literal into the
  /// theory solver as it is consumed. Returns false on any conflict
  /// (boolean or theory).
  bool propagate() {
    while (QHead < Trail.size()) {
      unsigned L = Trail[QHead++];
      // Theory first: one push per trail literal keeps theory frames in
      // lockstep with trail positions for backtracking.
      TS.push();
      ++TheoryCount;
      if (!TS.assertLit(litOf(L)))
        return false;
      // Visit clauses watching ~L (now false).
      unsigned FalseLit = negate(L);
      std::vector<unsigned> &WL = Watches[FalseLit];
      size_t Kept = 0;
      for (size_t I = 0; I < WL.size(); ++I) {
        unsigned CI = WL[I];
        WClause &C = Clauses[CI];
        if (C.Lits[0] == FalseLit)
          std::swap(C.Lits[0], C.Lits[1]);
        // Now C.Lits[1] == FalseLit.
        if (value(C.Lits[0]) > 0) {
          WL[Kept++] = CI; // Satisfied; keep the watch.
          continue;
        }
        bool Moved = false;
        for (size_t K = 2; K < C.Lits.size(); ++K) {
          if (value(C.Lits[K]) >= 0) {
            std::swap(C.Lits[1], C.Lits[K]);
            Watches[C.Lits[1]].push_back(CI);
            Moved = true;
            break;
          }
        }
        if (Moved)
          continue; // Watch moved; drop from this list.
        WL[Kept++] = CI;
        if (value(C.Lits[0]) < 0) {
          // All literals false: conflict. Keep the remaining watches.
          for (size_t J = I + 1; J < WL.size(); ++J)
            WL[Kept++] = WL[J];
          WL.resize(Kept);
          return false;
        }
        ++Stats.Propagations;
        enqueue(C.Lits[0]); // Unit: cannot conflict (value checked above).
      }
      WL.resize(Kept);
    }
    return true;
  }

  /// Undoes trail and theory state back to \p Mark.
  void popTo(size_t Mark) {
    while (Trail.size() > Mark) {
      Val[Trail.back() / 2] = 0;
      Trail.pop_back();
    }
    while (TheoryCount > Mark) {
      TS.pop();
      --TheoryCount;
    }
    QHead = Mark;
  }

  /// Advances to the next unexplored branch after a refuted subtree.
  /// Returns false when every branch up the stack is exhausted (the root
  /// clause set is refuted).
  bool backtrack() {
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      ++F.Next;
      if (F.Next >= F.Lits.size()) {
        popTo(F.TrailMark);
        Frames.pop_back();
        continue; // This subtree is refuted; advance the parent.
      }
      popTo(F.TrailMark);
      ++Stats.Splits;
      // Later branches assume earlier literals were false.
      bool Ok = true;
      for (size_t J = 0; J < F.Next && Ok; ++J)
        Ok = enqueue(negate(F.Lits[J]));
      if (Ok)
        Ok = enqueue(F.Lits[F.Next]);
      if (!Ok)
        continue; // Branch contradictory on entry; try the next.
      return true;
    }
    return false;
  }

  /// First smallest not-yet-satisfied clause (by unassigned-literal count),
  /// mirroring the reference engine's "split on the smallest clause".
  /// Returns ~0 when every clause is satisfied.
  size_t chooseClause() {
    size_t Best = ~size_t(0);
    size_t BestSize = ~size_t(0);
    for (size_t I = 0; I < Clauses.size(); ++I) {
      size_t Unassigned = 0;
      bool Satisfied = false;
      for (unsigned EL : Clauses[I].Lits) {
        int V = value(EL);
        if (V > 0) {
          Satisfied = true;
          break;
        }
        if (V == 0)
          ++Unassigned;
      }
      if (Satisfied)
        continue;
      if (Unassigned < BestSize) {
        Best = I;
        BestSize = Unassigned;
      }
    }
    return Best;
  }

  void buildModel() {
    std::string Model;
    for (unsigned EL : Trail) {
      if (!Model.empty())
        Model += " /\\ ";
      Model += litOf(EL).str(A);
    }
    Stats.Model = Model;
  }

  bool timedOut() const {
    return std::chrono::steady_clock::now() > Deadline;
  }

  const TermArena &A;
  const ProverOptions &Options;
  ProverStats &Stats;
  std::chrono::steady_clock::time_point Deadline;
  TheorySolver TS;

  std::map<std::tuple<bool, Lit::Op, TermId, TermId>, unsigned> AtomIds;
  std::vector<Lit> Atoms;   ///< Positive literal per atom.
  std::vector<int8_t> Val;  ///< Per-atom assignment.
  std::vector<WClause> Clauses;
  std::vector<std::vector<unsigned>> Watches; ///< Per encoded literal.
  std::vector<unsigned> Trail;
  size_t QHead = 0;
  size_t TheoryCount = 0; ///< Theory frames pushed ( == trail prefix).
  std::vector<Frame> Frames;
};

} // namespace

bool Prover::refuteIncremental() {
  IncrementalSearch Search(A, Options, Stats, Deadline);
  IncrementalSearch::Outcome Out = Search.run(GroundClauses);
  Stats.TheoryPops += Search.theoryPops();
  switch (Out) {
  case IncrementalSearch::Outcome::Refuted:
    return true;
  case IncrementalSearch::Outcome::Consistent:
    return false;
  case IncrementalSearch::Outcome::ResourceOut:
    ResourcesExceeded = true;
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

void Prover::addArithmeticSignAxioms() {
  TermId Va = A.var("a"), Vb = A.var("b");
  TermId Zero = A.intConst(0);
  TermId Times = A.app("times", {Va, Vb});
  TermId Plus = A.app("plus", {Va, Vb});
  std::vector<MultiPattern> TimesTrig = {MultiPattern{Times}};
  std::vector<MultiPattern> PlusTrig = {MultiPattern{Plus}};

  auto Pos = [&](TermId T) { return fGt(T, Zero); };
  auto Neg = [&](TermId T) { return fLt(T, Zero); };
  auto NonNeg = [&](TermId T) { return fGe(T, Zero); };
  auto NonPos = [&](TermId T) { return fLe(T, Zero); };

  addAxiom("times-pos-pos",
           fForall({"a", "b"},
                   fImplies(fAnd({Pos(Va), Pos(Vb)}), Pos(Times)),
                   TimesTrig));
  addAxiom("times-neg-neg",
           fForall({"a", "b"},
                   fImplies(fAnd({Neg(Va), Neg(Vb)}), Pos(Times)),
                   TimesTrig));
  addAxiom("times-pos-neg",
           fForall({"a", "b"},
                   fImplies(fAnd({Pos(Va), Neg(Vb)}), Neg(Times)),
                   TimesTrig));
  addAxiom("times-neg-pos",
           fForall({"a", "b"},
                   fImplies(fAnd({Neg(Va), Pos(Vb)}), Neg(Times)),
                   TimesTrig));
  addAxiom("times-nonzero",
           fForall({"a", "b"},
                   fImplies(fAnd({fNe(Va, Zero), fNe(Vb, Zero)}),
                            fNe(Times, Zero)),
                   TimesTrig));
  addAxiom("times-nonneg-nonneg",
           fForall({"a", "b"},
                   fImplies(fAnd({NonNeg(Va), NonNeg(Vb)}), NonNeg(Times)),
                   TimesTrig));
  addAxiom("times-nonpos-nonpos",
           fForall({"a", "b"},
                   fImplies(fAnd({NonPos(Va), NonPos(Vb)}), NonNeg(Times)),
                   TimesTrig));
  addAxiom("plus-pos-pos",
           fForall({"a", "b"},
                   fImplies(fAnd({Pos(Va), Pos(Vb)}), Pos(Plus)), PlusTrig));
  addAxiom("plus-neg-neg",
           fForall({"a", "b"},
                   fImplies(fAnd({Neg(Va), Neg(Vb)}), Neg(Plus)), PlusTrig));
  addAxiom("plus-nonneg-nonneg",
           fForall({"a", "b"},
                   fImplies(fAnd({NonNeg(Va), NonNeg(Vb)}), NonNeg(Plus)),
                   PlusTrig));
  addAxiom("plus-nonpos-nonpos",
           fForall({"a", "b"},
                   fImplies(fAnd({NonPos(Va), NonPos(Vb)}), NonPos(Plus)),
                   PlusTrig));
  // Negation: neg(a) = 0 - a, axiomatized by sign flips.
  TermId NegT = A.app("negate", {Va});
  std::vector<MultiPattern> NegTrig = {MultiPattern{NegT}};
  addAxiom("negate-pos",
           fForall({"a"}, fImplies(Pos(Va), Neg(NegT)), NegTrig));
  addAxiom("negate-neg",
           fForall({"a"}, fImplies(Neg(Va), Pos(NegT)), NegTrig));
  addAxiom("negate-nonzero",
           fForall({"a"}, fImplies(fNe(Va, Zero), fNe(NegT, Zero)), NegTrig));
}

ProofResult Prover::prove(FormulaPtr Goal) {
  trace::Span Span("prover");
  auto Start = std::chrono::steady_clock::now();
  addClauses(toClauses(Goal, /*Positive=*/false));

  ProofResult Result = ProofResult::Unknown;
  for (unsigned Round = 0; Round <= Options.MaxRounds; ++Round) {
    Stats.Rounds = Round + 1;
    if (timedOut() || ResourcesExceeded) {
      Result = ProofResult::ResourceOut;
      break;
    }
    ResourcesExceeded = false;
    bool Refuted = Options.Engine == EngineKind::Reference
                       ? refuteReference({}, GroundClauses, 0)
                       : refuteIncremental();
    if (Refuted) {
      Result = ProofResult::Proved;
      break;
    }
    if (ResourcesExceeded) {
      Result = ProofResult::ResourceOut;
      break;
    }
    unsigned NewClauses = instantiateRound();
    if (ResourcesExceeded) {
      Result = ProofResult::ResourceOut;
      break;
    }
    if (NewClauses == 0) {
      Result = ProofResult::Unknown; // Saturated.
      break;
    }
  }

  Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}
