//===- Prover.cpp ---------------------------------------------------------===//

#include "prover/Prover.h"

#include "prover/Theory.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace stq::prover;

Prover::Prover(ProverOptions Options) : Options(Options) {
  Deadline = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(Options.TimeoutSeconds));
}

bool Prover::timedOut() const {
  return std::chrono::steady_clock::now() > Deadline;
}

TermId Prover::freshConst(const std::string &Hint) {
  return A.app("$" + Hint + "_" + std::to_string(SkolemCount++));
}

//===----------------------------------------------------------------------===//
// Clausification
//===----------------------------------------------------------------------===//

namespace {

/// Cross product of two clause sets: CNF of (X \/ Y).
std::vector<std::vector<Lit>> crossClauses(
    const std::vector<std::vector<Lit>> &Xs,
    const std::vector<std::vector<Lit>> &Ys) {
  std::vector<std::vector<Lit>> Out;
  Out.reserve(Xs.size() * Ys.size());
  for (const auto &X : Xs)
    for (const auto &Y : Ys) {
      std::vector<Lit> C = X;
      C.insert(C.end(), Y.begin(), Y.end());
      Out.push_back(std::move(C));
    }
  return Out;
}

} // namespace

std::vector<Prover::Clause> Prover::toClauses(const FormulaPtr &F,
                                              bool Positive) {
  switch (F->K) {
  case Formula::Kind::True:
    if (Positive)
      return {};
    return {Clause{}}; // The empty clause: unsatisfiable.
  case Formula::Kind::False:
    if (Positive)
      return {Clause{}};
    return {};
  case Formula::Kind::Lit:
    return {Clause{Positive ? F->L : F->L.negated()}};
  case Formula::Kind::Not:
    return toClauses(F->Kids[0], !Positive);
  case Formula::Kind::Implies: {
    if (Positive) {
      // A => B is !A \/ B.
      return crossClauses(toClauses(F->Kids[0], false),
                          toClauses(F->Kids[1], true));
    }
    // !(A => B) is A /\ !B.
    auto Out = toClauses(F->Kids[0], true);
    auto More = toClauses(F->Kids[1], false);
    Out.insert(Out.end(), More.begin(), More.end());
    return Out;
  }
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    bool Conjunctive = (F->K == Formula::Kind::And) == Positive;
    if (Conjunctive) {
      std::vector<Clause> Out;
      for (const FormulaPtr &Kid : F->Kids) {
        auto More = toClauses(Kid, Positive);
        Out.insert(Out.end(), More.begin(), More.end());
      }
      return Out;
    }
    std::vector<Clause> Out = {Clause{}};
    for (const FormulaPtr &Kid : F->Kids)
      Out = crossClauses(Out, toClauses(Kid, Positive));
    return Out;
  }
  case Formula::Kind::Forall: {
    if (Positive) {
      // A nested positive forall: guard the axiom with a fresh proxy
      // literal so the quantifier can live inside a clause.
      TermId Proxy = A.app("$proxy_" + std::to_string(ProxyCount++));
      Lit ProxyLit{false, Lit::Op::Eq, Proxy, A.trueTerm()};
      FormulaPtr Guarded =
          fOr({fLit(ProxyLit.negated()), F->Body});
      addAxiomInternal("proxy", F->Vars, F->Triggers, Guarded);
      return {Clause{ProxyLit}};
    }
    // Negative forall: exists a counterexample; Skolemize.
    Subst S;
    for (const std::string &V : F->Vars)
      S[V] = freshConst("sk_" + V);
    return toClauses(substFormula(F->Body, S), false);
  }
  }
  return {};
}

FormulaPtr Prover::substFormula(const FormulaPtr &F, const Subst &S) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return F;
  case Formula::Kind::Lit: {
    Lit L = F->L;
    L.L = A.substitute(L.L, S);
    L.R = A.substitute(L.R, S);
    return fLit(L);
  }
  case Formula::Kind::Not:
    return fNot(substFormula(F->Kids[0], S));
  case Formula::Kind::Implies:
    return fImplies(substFormula(F->Kids[0], S),
                    substFormula(F->Kids[1], S));
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    std::vector<FormulaPtr> Kids;
    Kids.reserve(F->Kids.size());
    for (const FormulaPtr &Kid : F->Kids)
      Kids.push_back(substFormula(Kid, S));
    return F->K == Formula::Kind::And ? fAnd(std::move(Kids))
                                      : fOr(std::move(Kids));
  }
  case Formula::Kind::Forall: {
    // Substitute only the free variables (bound names shadow).
    Subst Inner = S;
    for (const std::string &V : F->Vars)
      Inner.erase(V);
    if (Inner.empty())
      return F;
    return fForall(F->Vars, substFormula(F->Body, Inner), F->Triggers);
  }
  }
  return F;
}

void Prover::addClauses(std::vector<Clause> Cs) {
  for (Clause &C : Cs) {
    // Canonical form for dedup.
    std::vector<std::tuple<bool, Lit::Op, TermId, TermId>> Key;
    Key.reserve(C.size());
    for (const Lit &L : C)
      Key.push_back(L.key());
    std::sort(Key.begin(), Key.end());
    Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
    if (!ClauseDedup.insert(Key).second)
      continue;
    GroundClauses.push_back(std::move(C));
  }
  Stats.Clauses = static_cast<unsigned>(GroundClauses.size());
}

void Prover::addAxiomInternal(const std::string &Name,
                              std::vector<std::string> Vars,
                              std::vector<MultiPattern> Triggers,
                              FormulaPtr Body) {
  Axiom Ax;
  Ax.Name = Name;
  Ax.Vars = std::move(Vars);
  Ax.Body = std::move(Body);
  Ax.Triggers = std::move(Triggers);
  if (Ax.Triggers.empty())
    Ax.Triggers = inferTriggers(Ax.Vars, Ax.Body);
  Axioms.push_back(std::move(Ax));
}

void Prover::addAxiom(const std::string &Name, FormulaPtr F) {
  Inputs.push_back({"axiom:" + Name, F});
  if (F->K == Formula::Kind::Forall) {
    addAxiomInternal(Name, F->Vars, F->Triggers, F->Body);
    return;
  }
  addClauses(toClauses(F, /*Positive=*/true));
}

void Prover::addHypothesis(FormulaPtr F) {
  Inputs.push_back({"hyp", F});
  addClauses(toClauses(F, /*Positive=*/true));
}

//===----------------------------------------------------------------------===//
// Trigger inference
//===----------------------------------------------------------------------===//

void Prover::collectAppTerms(const FormulaPtr &F, std::vector<TermId> &Out) {
  switch (F->K) {
  case Formula::Kind::Lit: {
    // Walk both sides, collecting application subterms that mention at
    // least one variable.
    std::vector<TermId> Stack = {F->L.L, F->L.R};
    while (!Stack.empty()) {
      TermId T = Stack.back();
      Stack.pop_back();
      const TermData &D = A.get(T);
      if (D.K == TermData::Kind::App && !D.Args.empty()) {
        std::vector<std::string> Vars;
        A.collectVars(T, Vars);
        if (!Vars.empty())
          Out.push_back(T);
      }
      for (TermId Arg : D.Args)
        Stack.push_back(Arg);
    }
    return;
  }
  case Formula::Kind::Not:
  case Formula::Kind::Implies:
  case Formula::Kind::And:
  case Formula::Kind::Or:
    for (const FormulaPtr &Kid : F->Kids)
      collectAppTerms(Kid, Out);
    return;
  case Formula::Kind::Forall:
    collectAppTerms(F->Body, Out);
    return;
  default:
    return;
  }
}

namespace {

unsigned termSize(const TermArena &A, TermId T) {
  const TermData &D = A.get(T);
  unsigned N = 1;
  for (TermId Arg : D.Args)
    N += termSize(A, Arg);
  return N;
}

} // namespace

std::vector<MultiPattern> Prover::inferTriggers(
    const std::vector<std::string> &Vars, const FormulaPtr &Body) {
  std::vector<TermId> Candidates;
  collectAppTerms(Body, Candidates);
  std::sort(Candidates.begin(), Candidates.end());
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());
  if (Vars.empty() || Candidates.empty())
    return {};

  auto varsOf = [&](TermId T) {
    std::vector<std::string> Out;
    A.collectVars(T, Out);
    return Out;
  };

  // Prefer a single smallest term covering all variables.
  TermId Best = InvalidTerm;
  unsigned BestSize = ~0u;
  for (TermId T : Candidates) {
    std::vector<std::string> TV = varsOf(T);
    bool CoversAll = true;
    for (const std::string &V : Vars)
      if (std::find(TV.begin(), TV.end(), V) == TV.end()) {
        CoversAll = false;
        break;
      }
    if (CoversAll && termSize(A, T) < BestSize) {
      Best = T;
      BestSize = termSize(A, T);
    }
  }
  if (Best != InvalidTerm)
    return {MultiPattern{Best}};

  // Greedy multipattern: repeatedly add the candidate covering the most
  // uncovered variables.
  std::set<std::string> Uncovered(Vars.begin(), Vars.end());
  MultiPattern MP;
  while (!Uncovered.empty()) {
    TermId Pick = InvalidTerm;
    unsigned PickCount = 0;
    for (TermId T : Candidates) {
      unsigned Count = 0;
      for (const std::string &V : varsOf(T))
        if (Uncovered.count(V))
          ++Count;
      if (Count > PickCount) {
        Pick = T;
        PickCount = Count;
      }
    }
    if (Pick == InvalidTerm)
      return {}; // Some variable occurs in no application term.
    MP.push_back(Pick);
    for (const std::string &V : varsOf(Pick))
      Uncovered.erase(V);
  }
  return {MP};
}

//===----------------------------------------------------------------------===//
// Instantiation
//===----------------------------------------------------------------------===//

void Prover::matchMultiPattern(
    const Axiom &Ax, const MultiPattern &MP, size_t PatternIdx, Subst &S,
    const std::map<std::string, std::vector<TermId>> &BySym,
    std::vector<Subst> &Out) {
  if (PatternIdx == MP.size()) {
    Out.push_back(S);
    return;
  }
  TermId Pattern = MP[PatternIdx];
  const TermData &P = A.get(Pattern);
  auto Found = BySym.find(P.Sym);
  if (Found == BySym.end())
    return;
  for (TermId Ground : Found->second) {
    Subst Extended = S;
    if (A.match(Pattern, Ground, Extended))
      matchMultiPattern(Ax, MP, PatternIdx + 1, Extended, BySym, Out);
  }
}

unsigned Prover::instantiateRound() {
  // Snapshot the ground application terms, indexed by head symbol.
  std::map<std::string, std::vector<TermId>> BySym;
  uint32_t N = A.size();
  for (TermId T = 0; T < N; ++T) {
    const TermData &D = A.get(T);
    if (D.K != TermData::Kind::App || D.Args.empty())
      continue;
    if (!A.isGround(T))
      continue;
    BySym[D.Sym].push_back(T);
  }

  unsigned NewClauses = 0;
  for (unsigned AxIdx = 0; AxIdx < Axioms.size(); ++AxIdx) {
    const Axiom &Ax = Axioms[AxIdx];
    for (const MultiPattern &MP : Ax.Triggers) {
      std::vector<Subst> Matches;
      Subst Empty;
      matchMultiPattern(Ax, MP, 0, Empty, BySym, Matches);
      for (const Subst &S : Matches) {
        if (Stats.Instantiations >= Options.MaxInstantiations) {
          ResourcesExceeded = true;
          return NewClauses;
        }
        // Require every axiom variable to be bound by the trigger.
        bool Complete = true;
        std::vector<TermId> Binding;
        for (const std::string &V : Ax.Vars) {
          auto Found = S.find(V);
          if (Found == S.end()) {
            Complete = false;
            break;
          }
          Binding.push_back(Found->second);
        }
        if (!Complete)
          continue;
        if (!InstDedup.emplace(AxIdx, Binding).second)
          continue;
        ++Stats.Instantiations;
        Subst Restricted;
        for (size_t I = 0; I < Ax.Vars.size(); ++I)
          Restricted[Ax.Vars[I]] = Binding[I];
        FormulaPtr Instance = substFormula(Ax.Body, Restricted);
        size_t Before = GroundClauses.size();
        addClauses(toClauses(Instance, /*Positive=*/true));
        NewClauses += static_cast<unsigned>(GroundClauses.size() - Before);
      }
    }
  }
  return NewClauses;
}

//===----------------------------------------------------------------------===//
// DPLL search
//===----------------------------------------------------------------------===//

bool Prover::refute(std::vector<Lit> Units, std::vector<Clause> Clauses,
                    unsigned Depth) {
  if (Depth > Options.MaxSplitDepth || timedOut()) {
    ResourcesExceeded = true;
    return false;
  }

  std::set<std::tuple<bool, Lit::Op, TermId, TermId>> UnitSet;
  for (const Lit &L : Units)
    UnitSet.insert(L.key());

  // Unit propagation to fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Clause> Remaining;
    Remaining.reserve(Clauses.size());
    for (Clause &C : Clauses) {
      Clause Simplified;
      bool Satisfied = false;
      for (const Lit &L : C) {
        if (UnitSet.count(L.key())) {
          Satisfied = true;
          break;
        }
        if (UnitSet.count(L.negated().key()))
          continue; // Literal is false; drop it.
        Simplified.push_back(L);
      }
      if (Satisfied)
        continue;
      if (Simplified.empty())
        return true; // Empty clause: contradiction.
      if (Simplified.size() == 1) {
        if (!UnitSet.count(Simplified[0].key())) {
          Units.push_back(Simplified[0]);
          UnitSet.insert(Simplified[0].key());
          Changed = true;
        }
        continue;
      }
      Remaining.push_back(std::move(Simplified));
    }
    Clauses = std::move(Remaining);
  }

  ++Stats.TheoryChecks;
  if (theoryConflict(A, Units))
    return true;

  if (Clauses.empty()) {
    // Consistent: record a counterexample sketch.
    std::string Model;
    for (const Lit &L : Units) {
      if (!Model.empty())
        Model += " /\\ ";
      Model += L.str(A);
    }
    Stats.Model = Model;
    return false;
  }

  // Split on the smallest clause.
  size_t BestIdx = 0;
  for (size_t I = 1; I < Clauses.size(); ++I)
    if (Clauses[I].size() < Clauses[BestIdx].size())
      BestIdx = I;
  Clause Chosen = Clauses[BestIdx];
  Clauses.erase(Clauses.begin() + BestIdx);

  for (size_t I = 0; I < Chosen.size(); ++I) {
    ++Stats.Splits;
    std::vector<Lit> BranchUnits = Units;
    BranchUnits.push_back(Chosen[I]);
    // Later branches may assume earlier literals were false.
    for (size_t J = 0; J < I; ++J)
      BranchUnits.push_back(Chosen[J].negated());
    if (!refute(BranchUnits, Clauses, Depth + 1))
      return false;
    if (timedOut()) {
      ResourcesExceeded = true;
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

void Prover::addArithmeticSignAxioms() {
  TermId Va = A.var("a"), Vb = A.var("b");
  TermId Zero = A.intConst(0);
  TermId Times = A.app("times", {Va, Vb});
  TermId Plus = A.app("plus", {Va, Vb});
  std::vector<MultiPattern> TimesTrig = {MultiPattern{Times}};
  std::vector<MultiPattern> PlusTrig = {MultiPattern{Plus}};

  auto Pos = [&](TermId T) { return fGt(T, Zero); };
  auto Neg = [&](TermId T) { return fLt(T, Zero); };
  auto NonNeg = [&](TermId T) { return fGe(T, Zero); };
  auto NonPos = [&](TermId T) { return fLe(T, Zero); };

  addAxiom("times-pos-pos",
           fForall({"a", "b"},
                   fImplies(fAnd({Pos(Va), Pos(Vb)}), Pos(Times)),
                   TimesTrig));
  addAxiom("times-neg-neg",
           fForall({"a", "b"},
                   fImplies(fAnd({Neg(Va), Neg(Vb)}), Pos(Times)),
                   TimesTrig));
  addAxiom("times-pos-neg",
           fForall({"a", "b"},
                   fImplies(fAnd({Pos(Va), Neg(Vb)}), Neg(Times)),
                   TimesTrig));
  addAxiom("times-neg-pos",
           fForall({"a", "b"},
                   fImplies(fAnd({Neg(Va), Pos(Vb)}), Neg(Times)),
                   TimesTrig));
  addAxiom("times-nonzero",
           fForall({"a", "b"},
                   fImplies(fAnd({fNe(Va, Zero), fNe(Vb, Zero)}),
                            fNe(Times, Zero)),
                   TimesTrig));
  addAxiom("times-nonneg-nonneg",
           fForall({"a", "b"},
                   fImplies(fAnd({NonNeg(Va), NonNeg(Vb)}), NonNeg(Times)),
                   TimesTrig));
  addAxiom("times-nonpos-nonpos",
           fForall({"a", "b"},
                   fImplies(fAnd({NonPos(Va), NonPos(Vb)}), NonNeg(Times)),
                   TimesTrig));
  addAxiom("plus-pos-pos",
           fForall({"a", "b"},
                   fImplies(fAnd({Pos(Va), Pos(Vb)}), Pos(Plus)), PlusTrig));
  addAxiom("plus-neg-neg",
           fForall({"a", "b"},
                   fImplies(fAnd({Neg(Va), Neg(Vb)}), Neg(Plus)), PlusTrig));
  addAxiom("plus-nonneg-nonneg",
           fForall({"a", "b"},
                   fImplies(fAnd({NonNeg(Va), NonNeg(Vb)}), NonNeg(Plus)),
                   PlusTrig));
  addAxiom("plus-nonpos-nonpos",
           fForall({"a", "b"},
                   fImplies(fAnd({NonPos(Va), NonPos(Vb)}), NonPos(Plus)),
                   PlusTrig));
  // Negation: neg(a) = 0 - a, axiomatized by sign flips.
  TermId NegT = A.app("negate", {Va});
  std::vector<MultiPattern> NegTrig = {MultiPattern{NegT}};
  addAxiom("negate-pos",
           fForall({"a"}, fImplies(Pos(Va), Neg(NegT)), NegTrig));
  addAxiom("negate-neg",
           fForall({"a"}, fImplies(Neg(Va), Pos(NegT)), NegTrig));
  addAxiom("negate-nonzero",
           fForall({"a"}, fImplies(fNe(Va, Zero), fNe(NegT, Zero)), NegTrig));
}

ProofResult Prover::prove(FormulaPtr Goal) {
  trace::Span Span("prover");
  auto Start = std::chrono::steady_clock::now();
  addClauses(toClauses(Goal, /*Positive=*/false));

  ProofResult Result = ProofResult::Unknown;
  for (unsigned Round = 0; Round <= Options.MaxRounds; ++Round) {
    Stats.Rounds = Round + 1;
    if (timedOut() || ResourcesExceeded) {
      Result = ProofResult::ResourceOut;
      break;
    }
    ResourcesExceeded = false;
    if (refute({}, GroundClauses, 0)) {
      Result = ProofResult::Proved;
      break;
    }
    if (ResourcesExceeded) {
      Result = ProofResult::ResourceOut;
      break;
    }
    unsigned NewClauses = instantiateRound();
    if (ResourcesExceeded) {
      Result = ProofResult::ResourceOut;
      break;
    }
    if (NewClauses == 0) {
      Result = ProofResult::Unknown; // Saturated.
      break;
    }
  }

  Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}
