//===- Theory.h - Ground theory solver (EUF + integer order) ----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground decision procedures behind the prover, in the Nelson-Oppen
/// style of Simplify: congruence closure for equality with uninterpreted
/// functions, and an integer difference-bound solver for order literals,
/// with equalities propagated between the two until fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_THEORY_H
#define STQ_PROVER_THEORY_H

#include "prover/Formula.h"
#include "prover/Term.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace stq::prover {

/// Congruence closure over the term DAG. Built fresh for each theory check
/// (the DPLL search rebuilds rather than backtracks; problem sizes are
/// small).
class CongruenceClosure {
public:
  explicit CongruenceClosure(const TermArena &A);

  /// Asserts an equality; returns false if a conflict arises.
  bool assertEq(TermId A, TermId B);
  /// Asserts a disequality; returns false if a conflict arises.
  bool assertNe(TermId A, TermId B);

  TermId find(TermId T);
  bool isEqual(TermId A, TermId B) { return find(A) == find(B); }
  bool inConflict() const { return Conflict; }

  /// The integer constant value of \p T's class, if known.
  std::optional<int64_t> classIntValue(TermId T);

private:
  /// Grows the side tables to the arena's current size and registers every
  /// term (terms may be interned after construction).
  void sync();
  /// Registers \p T and its subterms.
  void ensure(TermId T);
  /// Computes the congruence signature of an application term.
  std::vector<TermId> signatureOf(TermId T);
  /// Merges the classes of A and B, processing congruence consequences.
  void merge(TermId A, TermId B);
  bool checkNeConflicts();

  const TermArena &Arena;
  std::vector<TermId> Parent;
  std::vector<uint32_t> Size;
  /// Terms that mention each class representative as an argument.
  std::vector<std::vector<TermId>> Uses;
  /// Signature -> witness term, for congruence detection.
  std::map<std::pair<std::string, std::vector<TermId>>, TermId> Signatures;
  /// Known integer value per class representative.
  std::map<TermId, int64_t> ClassInt;
  std::vector<std::pair<TermId, TermId>> Disequalities;
  std::vector<std::pair<TermId, TermId>> PendingMerges;
  std::vector<bool> Registered;
  bool Conflict = false;
};

/// Checks a conjunction of literals for theory consistency.
///
/// \returns true if the conjunction is UNSATISFIABLE (a conflict was found),
/// false if it is consistent as far as the solver can tell.
bool theoryConflict(const TermArena &A, const std::vector<Lit> &Units);

} // namespace stq::prover

#endif // STQ_PROVER_THEORY_H
