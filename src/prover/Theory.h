//===- Theory.h - Ground theory solver (EUF + integer order) ----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground decision procedures behind the prover, in the Nelson-Oppen
/// style of Simplify: congruence closure for equality with uninterpreted
/// functions, and an integer difference-bound solver for order literals,
/// with equalities propagated between the two until fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_THEORY_H
#define STQ_PROVER_THEORY_H

#include "prover/Formula.h"
#include "prover/Term.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace stq::prover {

/// Congruence closure over the term DAG. Built fresh for each theory check
/// (the DPLL search rebuilds rather than backtracks; problem sizes are
/// small).
class CongruenceClosure {
public:
  explicit CongruenceClosure(const TermArena &A);

  /// Asserts an equality; returns false if a conflict arises.
  bool assertEq(TermId A, TermId B);
  /// Asserts a disequality; returns false if a conflict arises.
  bool assertNe(TermId A, TermId B);

  TermId find(TermId T);
  bool isEqual(TermId A, TermId B) { return find(A) == find(B); }
  bool inConflict() const { return Conflict; }

  /// The integer constant value of \p T's class, if known.
  std::optional<int64_t> classIntValue(TermId T);

private:
  /// Grows the side tables to the arena's current size and registers every
  /// term (terms may be interned after construction).
  void sync();
  /// Registers \p T and its subterms.
  void ensure(TermId T);
  /// Computes the congruence signature of an application term.
  std::vector<TermId> signatureOf(TermId T);
  /// Merges the classes of A and B, processing congruence consequences.
  void merge(TermId A, TermId B);
  bool checkNeConflicts();

  const TermArena &Arena;
  std::vector<TermId> Parent;
  std::vector<uint32_t> Size;
  /// Terms that mention each class representative as an argument.
  std::vector<std::vector<TermId>> Uses;
  /// Signature -> witness term, for congruence detection.
  std::map<std::pair<std::string, std::vector<TermId>>, TermId> Signatures;
  /// Known integer value per class representative.
  std::map<TermId, int64_t> ClassInt;
  std::vector<std::pair<TermId, TermId>> Disequalities;
  std::vector<std::pair<TermId, TermId>> PendingMerges;
  std::vector<bool> Registered;
  bool Conflict = false;
};

/// Checks a conjunction of literals for theory consistency.
///
/// \returns true if the conjunction is UNSATISFIABLE (a conflict was found),
/// false if it is consistent as far as the solver can tell.
///
/// This is the *reference* path: it rebuilds a CongruenceClosure from the
/// full literal set on every call. The incremental engine uses TheorySolver
/// below instead; the differential tests hold the two to identical verdicts.
bool theoryConflict(const TermArena &A, const std::vector<Lit> &Units);

/// Backtrackable ground theory state for the incremental trail-based DPLL
/// engine: congruence closure whose union-find, signature table, and
/// class-int maps carry undo records, so the search asserts one literal per
/// push() and un-asserts it with pop() instead of rebuilding the closure at
/// every node.
///
/// Construction registers the whole arena (terms are not interned during a
/// refutation round) and performs the base congruence merges at level 0.
/// Order literals (Le/Lt) are recorded on the trail and checked by
/// consistent(), which runs the same difference-bound procedure as the
/// reference path over the currently asserted set.
class TheorySolver {
public:
  explicit TheorySolver(const TermArena &A);

  /// Opens a backtrack point. Every assertLit() call is made under the
  /// innermost open point; pop() undoes everything since the matching
  /// push().
  void push();
  /// Undoes all assertions (merges, signatures, disequalities, order
  /// literals, the conflict flag) since the matching push().
  void pop();
  unsigned level() const { return static_cast<unsigned>(Frames.size()); }

  /// Asserts \p L (with its polarity). Equality/disequality literals run
  /// through the congruence closure eagerly; order literals are recorded
  /// for consistent(). Returns false if the closure is now in conflict.
  bool assertLit(const Lit &L);
  bool inConflict() const { return Conflict; }

  /// Full consistency check of everything asserted so far: the congruence
  /// state plus the difference-bound procedure over the recorded order
  /// literals. Returns true if a conflict is detectable (UNSAT).
  bool conflictNow();

  TermId find(TermId T);
  std::optional<int64_t> classIntValue(TermId T);

  /// Total pop() calls, for the prover.theory_pops counter.
  uint64_t pops() const { return Pops; }

private:
  struct Frame {
    size_t Merges, Sigs, Diseqs, Orders;
    bool PrevConflict;
  };
  struct MergeRec {
    TermId Child;      ///< Root merged away (Parent[Child] reset on undo).
    TermId Into;       ///< Root it was merged into.
    size_t UsesOldLen; ///< Uses[Into] length before the merge.
    bool WroteInt;     ///< Whether the merge wrote ClassInt[Into].
    bool HadInt;       ///< Whether Into's class had an int value before.
    int64_t OldInt;    ///< That value, when HadInt.
  };
  using SigKey = std::pair<std::string, std::vector<TermId>>;

  void registerAll();
  std::vector<TermId> signatureOf(TermId T);
  void merge(TermId A, TermId B);
  bool checkNeConflicts();
  void insertSignature(TermId T);

  const TermArena &Arena;
  std::vector<TermId> Parent;
  std::vector<uint32_t> Size;
  std::vector<std::vector<TermId>> Uses;
  std::map<SigKey, TermId> Signatures;
  std::map<TermId, int64_t> ClassInt;
  std::vector<std::pair<TermId, TermId>> Disequalities;
  std::vector<Lit> OrderLits;
  std::vector<std::pair<TermId, TermId>> PendingMerges;
  bool Conflict = false;

  // Undo machinery.
  std::vector<Frame> Frames;
  std::vector<MergeRec> MergeTrail;
  std::vector<SigKey> SigTrail;
  uint64_t Pops = 0;
};

} // namespace stq::prover

#endif // STQ_PROVER_THEORY_H
