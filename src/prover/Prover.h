//===- Prover.h - Refutation-based automatic theorem prover -----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch stand-in for the Simplify prover (Detlefs, Nelson, Saxe)
/// used by the paper's soundness checker. Architecture, like Simplify's:
///
///  * refutation-based: assert axioms and hypotheses, assert the negated
///    goal, search for a contradiction;
///  * ground reasoning by congruence closure + integer difference bounds
///    (Theory.h), combined Nelson-Oppen style;
///  * universally quantified axioms handled by trigger-based pattern
///    matching and instantiation, in rounds;
///  * propositional structure handled by a small DPLL search with theory
///    checks at every node.
///
/// The prover is deliberately incomplete (as Simplify is); the soundness
/// checker treats "Unknown" as a failed proof obligation.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_PROVER_H
#define STQ_PROVER_PROVER_H

#include "prover/Formula.h"
#include "prover/Term.h"

#include <chrono>
#include <set>
#include <string>
#include <vector>

namespace stq::prover {

struct ProverOptions {
  /// Maximum instantiation rounds before giving up.
  unsigned MaxRounds = 8;
  /// Total instantiation budget.
  unsigned MaxInstantiations = 200000;
  /// DPLL depth bound.
  unsigned MaxSplitDepth = 64;
  /// Wall-clock budget; exceeded => ResourceOut.
  double TimeoutSeconds = 25.0;
};

enum class ProofResult {
  Proved,      ///< The goal is valid (refutation found).
  Unknown,     ///< Saturated without refutation: obligation fails.
  ResourceOut, ///< Budget exhausted.
};

/// Stable lowercase name, used in trace details and JSON metrics.
inline const char *resultName(ProofResult R) {
  switch (R) {
  case ProofResult::Proved:
    return "proved";
  case ProofResult::Unknown:
    return "unknown";
  case ProofResult::ResourceOut:
    return "resource-out";
  }
  return "unknown";
}

/// One formula fed into a session (axiom or hypothesis), recorded in
/// insertion order so the memoized prover cache (ProverCache.h) can key the
/// whole proof task canonically.
struct ProverInput {
  /// "axiom:<name>" or "hyp".
  std::string Tag;
  FormulaPtr F;
};

struct ProverStats {
  unsigned Rounds = 0;
  unsigned Instantiations = 0;
  unsigned Splits = 0;
  unsigned TheoryChecks = 0;
  unsigned Clauses = 0;
  double Seconds = 0.0;
  /// A satisfying literal set from the last failed round (a counterexample
  /// sketch), for diagnostics.
  std::string Model;
};

/// One prover session: add axioms and hypotheses, then prove one goal.
class Prover {
public:
  explicit Prover(ProverOptions Options = {});

  TermArena &arena() { return A; }

  /// Adds a universally quantified axiom (Formula::Kind::Forall) or a
  /// ground fact. Triggers may be given on the Forall node; otherwise they
  /// are inferred from the body.
  void addAxiom(const std::string &Name, FormulaPtr F);
  /// Adds a hypothesis (asserted positively; quantifiers become axioms).
  void addHypothesis(FormulaPtr F);
  /// Adds sign-propagation axioms for the uninterpreted `times` and `plus`
  /// symbols (Simplify-style partial nonlinear arithmetic).
  void addArithmeticSignAxioms();

  /// Attempts to prove \p Goal from the axioms and hypotheses. One-shot.
  ProofResult prove(FormulaPtr Goal);

  const ProverStats &stats() const { return Stats; }

  /// Every axiom and hypothesis added so far, in order. Together with the
  /// goal this identifies the proof task for memoization.
  const std::vector<ProverInput> &inputs() const { return Inputs; }

  /// Fresh Skolem constant (also used by obligation generators for their
  /// own "arbitrary value" constants).
  TermId freshConst(const std::string &Hint);

private:
  struct Axiom {
    std::string Name;
    std::vector<std::string> Vars;
    std::vector<MultiPattern> Triggers;
    FormulaPtr Body; ///< Quantifier-free over Vars.
  };

  using Clause = std::vector<Lit>;

  /// Converts \p F (positively if \p Positive) into clauses, extracting
  /// quantifiers: positive foralls become axioms (via proxy literals when
  /// nested), negative foralls are Skolemized.
  std::vector<Clause> toClauses(const FormulaPtr &F, bool Positive);
  void addClauses(std::vector<Clause> Cs);
  void addAxiomInternal(const std::string &Name,
                        std::vector<std::string> Vars,
                        std::vector<MultiPattern> Triggers, FormulaPtr Body);
  /// Applies \p S to every term in \p F (no quantifiers inside).
  FormulaPtr substFormula(const FormulaPtr &F, const Subst &S);
  std::vector<MultiPattern> inferTriggers(const std::vector<std::string> &Vars,
                                          const FormulaPtr &Body);
  void collectAppTerms(const FormulaPtr &F, std::vector<TermId> &Out);

  /// Runs one instantiation round; returns the number of new clauses.
  unsigned instantiateRound();
  void matchMultiPattern(const Axiom &Ax, const MultiPattern &MP,
                         size_t PatternIdx, Subst &S,
                         const std::map<std::string, std::vector<TermId>>
                             &BySym,
                         std::vector<Subst> &Out);

  /// DPLL: returns true if the clause set with \p Units is unsatisfiable.
  bool refute(std::vector<Lit> Units, std::vector<Clause> Clauses,
              unsigned Depth);

  bool timedOut() const;

  ProverOptions Options;
  TermArena A;
  std::vector<ProverInput> Inputs;
  std::vector<Axiom> Axioms;
  std::vector<Clause> GroundClauses;
  std::set<std::vector<std::tuple<bool, Lit::Op, TermId, TermId>>>
      ClauseDedup;
  std::set<std::pair<unsigned, std::vector<TermId>>> InstDedup;
  ProverStats Stats;
  unsigned SkolemCount = 0;
  unsigned ProxyCount = 0;
  bool Exhausted = false;
  bool ResourcesExceeded = false;
  std::chrono::steady_clock::time_point Deadline;
};

} // namespace stq::prover

#endif // STQ_PROVER_PROVER_H
