//===- Prover.h - Refutation-based automatic theorem prover -----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch stand-in for the Simplify prover (Detlefs, Nelson, Saxe)
/// used by the paper's soundness checker. Architecture, like Simplify's:
///
///  * refutation-based: assert axioms and hypotheses, assert the negated
///    goal, search for a contradiction;
///  * ground reasoning by congruence closure + integer difference bounds
///    (Theory.h), combined Nelson-Oppen style;
///  * universally quantified axioms handled by trigger-based pattern
///    matching and instantiation, in rounds;
///  * propositional structure handled by a small DPLL search with theory
///    checks at every node.
///
/// The prover is deliberately incomplete (as Simplify is); the soundness
/// checker treats "Unknown" as a failed proof obligation.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_PROVER_PROVER_H
#define STQ_PROVER_PROVER_H

#include "prover/Formula.h"
#include "prover/Term.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace stq::prover {

/// Which search core prove() runs. Incremental is the trail-based engine
/// (single destructive assignment stack, two-watched-literal propagation,
/// backtrackable theory state); Reference is the historical copy-per-node
/// recursion, kept as the oracle for the differential tests. Both produce
/// identical verdicts; see docs/ARCHITECTURE.md.
enum class EngineKind { Incremental, Reference };

struct ProverOptions {
  /// Maximum instantiation rounds before giving up.
  unsigned MaxRounds = 8;
  /// Total instantiation budget.
  unsigned MaxInstantiations = 200000;
  /// DPLL depth bound.
  unsigned MaxSplitDepth = 64;
  /// Wall-clock budget; exceeded => ResourceOut.
  double TimeoutSeconds = 25.0;
  /// Search core selection.
  EngineKind Engine = EngineKind::Incremental;
};

enum class ProofResult {
  Proved,      ///< The goal is valid (refutation found).
  Unknown,     ///< Saturated without refutation: obligation fails.
  ResourceOut, ///< Budget exhausted.
};

/// Stable lowercase name, used in trace details and JSON metrics.
inline const char *resultName(ProofResult R) {
  switch (R) {
  case ProofResult::Proved:
    return "proved";
  case ProofResult::Unknown:
    return "unknown";
  case ProofResult::ResourceOut:
    return "resource-out";
  }
  return "unknown";
}

/// One formula fed into a session (axiom or hypothesis), recorded in
/// insertion order so the memoized prover cache (ProverCache.h) can key the
/// whole proof task canonically.
struct ProverInput {
  /// "axiom:<name>" or "hyp".
  std::string Tag;
  FormulaPtr F;
};

struct ProverStats {
  unsigned Rounds = 0;
  unsigned Instantiations = 0;
  unsigned Splits = 0;
  unsigned TheoryChecks = 0;
  unsigned Clauses = 0;
  /// Literals implied by two-watched-literal unit propagation (incremental
  /// engine only; zero under EngineKind::Reference).
  uint64_t Propagations = 0;
  /// Deepest assignment trail reached (incremental engine only).
  unsigned MaxTrailDepth = 0;
  /// Backtracking pops of theory-solver state (incremental engine only).
  uint64_t TheoryPops = 0;
  /// Ground terms indexed by the delta trigger index across all rounds
  /// (engine-independent: instantiation is shared by both cores).
  unsigned DeltaTerms = 0;
  double Seconds = 0.0;
  /// A satisfying literal set from the last failed round (a counterexample
  /// sketch), for diagnostics.
  std::string Model;
};

/// One prover session: add axioms and hypotheses, then prove one goal.
class Prover {
public:
  explicit Prover(ProverOptions Options = {});

  TermArena &arena() { return A; }

  /// Adds a universally quantified axiom (Formula::Kind::Forall) or a
  /// ground fact. Triggers may be given on the Forall node; otherwise they
  /// are inferred from the body.
  void addAxiom(const std::string &Name, FormulaPtr F);
  /// Adds a hypothesis (asserted positively; quantifiers become axioms).
  void addHypothesis(FormulaPtr F);
  /// Adds sign-propagation axioms for the uninterpreted `times` and `plus`
  /// symbols (Simplify-style partial nonlinear arithmetic).
  void addArithmeticSignAxioms();

  /// Attempts to prove \p Goal from the axioms and hypotheses. One-shot.
  ProofResult prove(FormulaPtr Goal);

  const ProverStats &stats() const { return Stats; }

  /// Every axiom and hypothesis added so far, in order. Together with the
  /// goal this identifies the proof task for memoization.
  const std::vector<ProverInput> &inputs() const { return Inputs; }

  /// Fresh Skolem constant (also used by obligation generators for their
  /// own "arbitrary value" constants).
  TermId freshConst(const std::string &Hint);

private:
  struct Axiom {
    std::string Name;
    std::vector<std::string> Vars;
    std::vector<MultiPattern> Triggers;
    FormulaPtr Body; ///< Quantifier-free over Vars.
    /// True until the axiom's first instantiation round: a fresh axiom must
    /// catch up against the whole term index before delta matching applies.
    bool FreshForMatch = true;
  };

  using Clause = std::vector<Lit>;

  /// Converts \p F (positively if \p Positive) into clauses, extracting
  /// quantifiers: positive foralls become axioms (via proxy literals when
  /// nested), negative foralls are Skolemized.
  std::vector<Clause> toClauses(const FormulaPtr &F, bool Positive);
  void addClauses(std::vector<Clause> Cs);
  void addAxiomInternal(const std::string &Name,
                        std::vector<std::string> Vars,
                        std::vector<MultiPattern> Triggers, FormulaPtr Body);
  /// Applies \p S to every term in \p F (no quantifiers inside).
  FormulaPtr substFormula(const FormulaPtr &F, const Subst &S);
  std::vector<MultiPattern> inferTriggers(const std::vector<std::string> &Vars,
                                          const FormulaPtr &Body);
  void collectAppTerms(const FormulaPtr &F, std::vector<TermId> &Out);

  /// Runs one instantiation round; returns the number of new clauses.
  /// Indexes only terms interned since the previous round (delta trigger
  /// indexing); all-older candidate combinations were enumerated by the
  /// round that first indexed their newest term.
  unsigned instantiateRound();
  /// Matches MP[PatternIdx..] against the round's candidate index, binding
  /// into one shared substitution with rollback (no per-candidate map
  /// copies). Position \p DeltaIdx draws from this round's delta terms;
  /// positions before it draw from strictly older terms and positions after
  /// it from the full index, so each combination is enumerated exactly once
  /// across DeltaIdx choices. DeltaIdx == ~size_t(0) matches every position
  /// against the full index (a fresh axiom catching up).
  void matchMultiPattern(const MultiPattern &MP, size_t PatternIdx,
                         size_t DeltaIdx, Subst &S,
                         std::vector<std::string> &Bound,
                         std::vector<Subst> &Out);

  /// Reference DPLL (EngineKind::Reference): returns true if the clause set
  /// with \p Units is unsatisfiable. Copies Units and Clauses per node; the
  /// differential tests hold the incremental engine to its verdicts.
  bool refuteReference(std::vector<Lit> Units, std::vector<Clause> Clauses,
                       unsigned Depth);
  /// Incremental trail-based DPLL over GroundClauses (EngineKind::
  /// Incremental). Same verdict contract as refuteReference({}, GroundClauses,
  /// 0); sets ResourcesExceeded on depth/time exhaustion.
  bool refuteIncremental();

  bool timedOut() const;

  ProverOptions Options;
  TermArena A;
  std::vector<ProverInput> Inputs;
  std::vector<Axiom> Axioms;
  std::vector<Clause> GroundClauses;
  std::set<std::vector<std::tuple<bool, Lit::Op, TermId, TermId>>>
      ClauseDedup;
  std::set<std::pair<unsigned, std::vector<TermId>>> InstDedup;
  /// Delta trigger index: every ground application term indexed so far, by
  /// head symbol; terms with id >= IndexedWatermark are not yet indexed.
  std::map<std::string, std::vector<TermId>> BySymIndex;
  /// Per-symbol index sizes before the current round's delta was appended.
  std::map<std::string, size_t> RoundOldCount;
  uint32_t IndexedWatermark = 0;
  ProverStats Stats;
  unsigned SkolemCount = 0;
  unsigned ProxyCount = 0;
  bool Exhausted = false;
  bool ResourcesExceeded = false;
  std::chrono::steady_clock::time_point Deadline;
};

} // namespace stq::prover

#endif // STQ_PROVER_PROVER_H
