//===- ProverCache.cpp ----------------------------------------------------===//

#include "prover/ProverCache.h"

#include "support/Trace.h"

using namespace stq::prover;

//===----------------------------------------------------------------------===//
// Canonicalizer
//===----------------------------------------------------------------------===//

namespace {

/// Probe-serializes \p T with assigned binders as ?N and unassigned ones as
/// the wildcard ?*, without mutating the binder state. Used to orient
/// symmetric equalities alpha-invariantly: the probe depends only on
/// structure and on indices assigned by earlier (alpha-invariant)
/// traversal, never on binder names.
void probeInto(const TermArena &A, TermId T,
               const std::vector<std::vector<std::pair<std::string, unsigned>>>
                   &Scopes,
               std::string &Out) {
  const TermData &D = A.get(T);
  switch (D.K) {
  case TermData::Kind::Int:
    Out += '#';
    Out += std::to_string(D.Int);
    return;
  case TermData::Kind::Var:
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope)
      for (const auto &[Name, Index] : *Scope)
        if (Name == D.Sym) {
          if (Index == ~0u)
            Out += "?*";
          else {
            Out += '?';
            Out += std::to_string(Index);
          }
          return;
        }
    Out += "(fv ";
    Out += D.Sym;
    Out += ')';
    return;
  case TermData::Kind::App:
    if (D.Args.empty()) {
      Out += D.Sym;
      return;
    }
    Out += '(';
    Out += D.Sym;
    for (TermId Arg : D.Args) {
      Out += ' ';
      probeInto(A, Arg, Scopes, Out);
    }
    Out += ')';
    return;
  }
}

} // namespace

void Canonicalizer::termInto(TermId T, std::string &Out) {
  const TermData &D = A.get(T);
  switch (D.K) {
  case TermData::Kind::Int:
    Out += '#';
    Out += std::to_string(D.Int);
    return;
  case TermData::Kind::Var:
    // Bound variable: assign the next index on first use, so any
    // alpha-renaming of the binders canonicalizes identically.
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope)
      for (auto &[Name, Index] : *Scope)
        if (Name == D.Sym) {
          if (Index == ~0u)
            Index = NextBinder++;
          Out += '?';
          Out += std::to_string(Index);
          return;
        }
    // Free pattern variable (only possible when canonicalizing a bare
    // axiom body): keep the name.
    Out += "(fv ";
    Out += D.Sym;
    Out += ')';
    return;
  case TermData::Kind::App:
    if (D.Args.empty()) {
      Out += D.Sym;
      return;
    }
    Out += '(';
    Out += D.Sym;
    for (TermId Arg : D.Args) {
      Out += ' ';
      termInto(Arg, Out);
    }
    Out += ')';
    return;
  }
}

std::string Canonicalizer::term(TermId T) {
  std::string Out;
  termInto(T, Out);
  return Out;
}

void Canonicalizer::litInto(const Lit &L, std::string &Out) {
  Out += "(lit ";
  Out += L.Neg ? '-' : '+';
  switch (L.O) {
  case Lit::Op::Eq:
    Out += "= ";
    break;
  case Lit::Op::Le:
    Out += "<= ";
    break;
  case Lit::Op::Lt:
    Out += "< ";
    break;
  }
  TermId First = L.L, Second = L.R;
  if (L.O == Lit::Op::Eq) {
    // Orient the symmetric equality by probe serialization; ties keep the
    // original order (a tie means the sides are identical up to
    // not-yet-numbered binders, so either order canonicalizes the same).
    std::string PL, PR;
    probeInto(A, L.L, Scopes, PL);
    probeInto(A, L.R, Scopes, PR);
    if (PR < PL)
      std::swap(First, Second);
  }
  termInto(First, Out);
  Out += ' ';
  termInto(Second, Out);
  Out += ')';
}

void Canonicalizer::formulaInto(const FormulaPtr &F, std::string &Out) {
  switch (F->K) {
  case Formula::Kind::True:
    Out += 'T';
    return;
  case Formula::Kind::False:
    Out += 'F';
    return;
  case Formula::Kind::Lit:
    litInto(F->L, Out);
    return;
  case Formula::Kind::Not:
    Out += "(not ";
    formulaInto(F->Kids[0], Out);
    Out += ')';
    return;
  case Formula::Kind::Implies:
    Out += "(=> ";
    formulaInto(F->Kids[0], Out);
    Out += ' ';
    formulaInto(F->Kids[1], Out);
    Out += ')';
    return;
  case Formula::Kind::And:
  case Formula::Kind::Or:
    Out += F->K == Formula::Kind::And ? "(and" : "(or";
    for (const FormulaPtr &Kid : F->Kids) {
      Out += ' ';
      formulaInto(Kid, Out);
    }
    Out += ')';
    return;
  case Formula::Kind::Forall: {
    Out += "(forall ";
    Out += std::to_string(F->Vars.size());
    Out += ' ';
    Scopes.emplace_back();
    for (const std::string &V : F->Vars)
      Scopes.back().emplace_back(V, ~0u);
    formulaInto(F->Body, Out);
    for (const MultiPattern &MP : F->Triggers) {
      Out += " (trig";
      for (TermId T : MP) {
        Out += ' ';
        termInto(T, Out);
      }
      Out += ')';
    }
    Scopes.pop_back();
    Out += ')';
    return;
  }
  }
}

std::string Canonicalizer::formula(const FormulaPtr &F) {
  std::string Out;
  formulaInto(F, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Task keys
//===----------------------------------------------------------------------===//

uint64_t stq::prover::fnv1aHash(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string stq::prover::canonicalTaskKey(
    const TermArena &A, const std::vector<ProverInput> &Inputs,
    const FormulaPtr &Goal) {
  std::string Key;
  for (const ProverInput &In : Inputs) {
    // Binder numbering restarts per formula: quantifier scopes never span
    // formulas, and it keeps standalone formula keys stable.
    Canonicalizer C(A);
    Key += In.Tag;
    Key += ':';
    Key += C.formula(In.F);
    Key += '\n';
  }
  Canonicalizer C(A);
  Key += "goal:";
  Key += C.formula(Goal);
  return Key;
}

//===----------------------------------------------------------------------===//
// ProverCache
//===----------------------------------------------------------------------===//

std::optional<CachedAnswer> ProverCache::lookup(const std::string &Key) {
  Shard &S = shardFor(Key);
  std::optional<CachedAnswer> Out;
  bool Contention = false;
  {
    std::unique_lock<std::mutex> Lock(S.M, std::try_to_lock);
    if (!Lock.owns_lock()) {
      Contention = true;
      Lock.lock();
    }
    auto Found = S.Map.find(Key);
    if (Found != S.Map.end())
      Out = Found->second;
  }
  if (trace::Tracer::enabled())
    trace::instant(Out ? "prover.cache.hit" : "prover.cache.miss");
  std::lock_guard<std::mutex> Lock(StatsM);
  ++Stats.Lookups;
  if (Contention)
    ++Stats.Contended;
  if (Out) {
    ++Stats.Hits;
    Stats.SecondsSaved += Out->Stats.Seconds;
  } else {
    ++Stats.Misses;
  }
  return Out;
}

void ProverCache::insert(const std::string &Key, ProofResult Result,
                         const ProverStats &ProveStats) {
  Shard &S = shardFor(Key);
  bool Fresh;
  bool Contention = false;
  {
    std::unique_lock<std::mutex> Lock(S.M, std::try_to_lock);
    if (!Lock.owns_lock()) {
      Contention = true;
      Lock.lock();
    }
    Fresh = S.Map.emplace(Key, CachedAnswer{Result, ProveStats}).second;
  }
  std::lock_guard<std::mutex> Lock(StatsM);
  ++Stats.Insertions;
  if (Contention)
    ++Stats.Contended;
  if (Fresh)
    ++Stats.Entries;
}

CacheStats ProverCache::stats() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Stats;
}

void ProverCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
  std::lock_guard<std::mutex> Lock(StatsM);
  Stats = {};
}
