//===- ProverCache.cpp ----------------------------------------------------===//

#include "prover/ProverCache.h"

#include "support/Trace.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace stq::prover;

//===----------------------------------------------------------------------===//
// Canonicalizer
//===----------------------------------------------------------------------===//

namespace {

/// Probe-serializes \p T with assigned binders as ?N and unassigned ones as
/// the wildcard ?*, without mutating the binder state. Used to orient
/// symmetric equalities alpha-invariantly: the probe depends only on
/// structure and on indices assigned by earlier (alpha-invariant)
/// traversal, never on binder names.
void probeInto(const TermArena &A, TermId T,
               const std::vector<std::vector<std::pair<std::string, unsigned>>>
                   &Scopes,
               std::string &Out) {
  const TermData &D = A.get(T);
  switch (D.K) {
  case TermData::Kind::Int:
    Out += '#';
    Out += std::to_string(D.Int);
    return;
  case TermData::Kind::Var:
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope)
      for (const auto &[Name, Index] : *Scope)
        if (Name == D.Sym) {
          if (Index == ~0u)
            Out += "?*";
          else {
            Out += '?';
            Out += std::to_string(Index);
          }
          return;
        }
    Out += "(fv ";
    Out += D.Sym;
    Out += ')';
    return;
  case TermData::Kind::App:
    if (D.Args.empty()) {
      Out += D.Sym;
      return;
    }
    Out += '(';
    Out += D.Sym;
    for (TermId Arg : D.Args) {
      Out += ' ';
      probeInto(A, Arg, Scopes, Out);
    }
    Out += ')';
    return;
  }
}

} // namespace

void Canonicalizer::termInto(TermId T, std::string &Out) {
  const TermData &D = A.get(T);
  switch (D.K) {
  case TermData::Kind::Int:
    Out += '#';
    Out += std::to_string(D.Int);
    return;
  case TermData::Kind::Var:
    // Bound variable: assign the next index on first use, so any
    // alpha-renaming of the binders canonicalizes identically.
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope)
      for (auto &[Name, Index] : *Scope)
        if (Name == D.Sym) {
          if (Index == ~0u)
            Index = NextBinder++;
          Out += '?';
          Out += std::to_string(Index);
          return;
        }
    // Free pattern variable (only possible when canonicalizing a bare
    // axiom body): keep the name.
    Out += "(fv ";
    Out += D.Sym;
    Out += ')';
    return;
  case TermData::Kind::App:
    if (D.Args.empty()) {
      Out += D.Sym;
      return;
    }
    Out += '(';
    Out += D.Sym;
    for (TermId Arg : D.Args) {
      Out += ' ';
      termInto(Arg, Out);
    }
    Out += ')';
    return;
  }
}

std::string Canonicalizer::term(TermId T) {
  std::string Out;
  termInto(T, Out);
  return Out;
}

void Canonicalizer::litInto(const Lit &L, std::string &Out) {
  Out += "(lit ";
  Out += L.Neg ? '-' : '+';
  switch (L.O) {
  case Lit::Op::Eq:
    Out += "= ";
    break;
  case Lit::Op::Le:
    Out += "<= ";
    break;
  case Lit::Op::Lt:
    Out += "< ";
    break;
  }
  TermId First = L.L, Second = L.R;
  if (L.O == Lit::Op::Eq) {
    // Orient the symmetric equality by probe serialization; ties keep the
    // original order (a tie means the sides are identical up to
    // not-yet-numbered binders, so either order canonicalizes the same).
    std::string PL, PR;
    probeInto(A, L.L, Scopes, PL);
    probeInto(A, L.R, Scopes, PR);
    if (PR < PL)
      std::swap(First, Second);
  }
  termInto(First, Out);
  Out += ' ';
  termInto(Second, Out);
  Out += ')';
}

void Canonicalizer::formulaInto(const FormulaPtr &F, std::string &Out) {
  switch (F->K) {
  case Formula::Kind::True:
    Out += 'T';
    return;
  case Formula::Kind::False:
    Out += 'F';
    return;
  case Formula::Kind::Lit:
    litInto(F->L, Out);
    return;
  case Formula::Kind::Not:
    Out += "(not ";
    formulaInto(F->Kids[0], Out);
    Out += ')';
    return;
  case Formula::Kind::Implies:
    Out += "(=> ";
    formulaInto(F->Kids[0], Out);
    Out += ' ';
    formulaInto(F->Kids[1], Out);
    Out += ')';
    return;
  case Formula::Kind::And:
  case Formula::Kind::Or:
    Out += F->K == Formula::Kind::And ? "(and" : "(or";
    for (const FormulaPtr &Kid : F->Kids) {
      Out += ' ';
      formulaInto(Kid, Out);
    }
    Out += ')';
    return;
  case Formula::Kind::Forall: {
    Out += "(forall ";
    Out += std::to_string(F->Vars.size());
    Out += ' ';
    Scopes.emplace_back();
    for (const std::string &V : F->Vars)
      Scopes.back().emplace_back(V, ~0u);
    formulaInto(F->Body, Out);
    for (const MultiPattern &MP : F->Triggers) {
      Out += " (trig";
      for (TermId T : MP) {
        Out += ' ';
        termInto(T, Out);
      }
      Out += ')';
    }
    Scopes.pop_back();
    Out += ')';
    return;
  }
  }
}

std::string Canonicalizer::formula(const FormulaPtr &F) {
  std::string Out;
  formulaInto(F, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Task keys
//===----------------------------------------------------------------------===//

uint64_t stq::prover::fnv1aHash(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string stq::prover::canonicalTaskKey(
    const TermArena &A, const std::vector<ProverInput> &Inputs,
    const FormulaPtr &Goal) {
  std::string Key;
  for (const ProverInput &In : Inputs) {
    // Binder numbering restarts per formula: quantifier scopes never span
    // formulas, and it keeps standalone formula keys stable.
    Canonicalizer C(A);
    Key += In.Tag;
    Key += ':';
    Key += C.formula(In.F);
    Key += '\n';
  }
  Canonicalizer C(A);
  Key += "goal:";
  Key += C.formula(Goal);
  return Key;
}

//===----------------------------------------------------------------------===//
// ProverCache
//===----------------------------------------------------------------------===//

std::optional<CachedAnswer> ProverCache::lookup(const std::string &Key) {
  Shard &S = shardFor(Key);
  std::optional<CachedAnswer> Out;
  bool Contention = false;
  {
    std::unique_lock<std::mutex> Lock(S.M, std::try_to_lock);
    if (!Lock.owns_lock()) {
      Contention = true;
      Lock.lock();
    }
    auto Found = S.Map.find(Key);
    if (Found != S.Map.end())
      Out = Found->second;
  }
  if (trace::Tracer::enabled())
    trace::instant(Out ? "prover.cache.hit" : "prover.cache.miss");
  std::lock_guard<std::mutex> Lock(StatsM);
  ++Stats.Lookups;
  if (Contention)
    ++Stats.Contended;
  if (Out) {
    ++Stats.Hits;
    Stats.SecondsSaved += Out->Stats.Seconds;
    if (Out->FromDisk)
      ++Stats.PersistHits;
  } else {
    ++Stats.Misses;
  }
  return Out;
}

void ProverCache::insert(const std::string &Key, ProofResult Result,
                         const ProverStats &ProveStats) {
  Shard &S = shardFor(Key);
  bool Fresh;
  bool Contention = false;
  {
    std::unique_lock<std::mutex> Lock(S.M, std::try_to_lock);
    if (!Lock.owns_lock()) {
      Contention = true;
      Lock.lock();
    }
    Fresh = S.Map.emplace(Key, CachedAnswer{Result, ProveStats}).second;
  }
  std::lock_guard<std::mutex> Lock(StatsM);
  ++Stats.Insertions;
  if (Contention)
    ++Stats.Contended;
  if (Fresh)
    ++Stats.Entries;
}

CacheStats ProverCache::stats() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Stats;
}

void ProverCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
  std::lock_guard<std::mutex> Lock(StatsM);
  Stats = {};
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

namespace {

const char *persistResultName(ProofResult R) { return resultName(R); }

bool persistResultFromName(const std::string &Name, ProofResult &Out) {
  if (Name == "proved")
    Out = ProofResult::Proved;
  else if (Name == "unknown")
    Out = ProofResult::Unknown;
  else if (Name == "resource-out")
    Out = ProofResult::ResourceOut;
  else
    return false;
  return true;
}

void setError(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
}

} // namespace

bool ProverCache::save(const std::string &Path, std::string *Error) {
  // Snapshot under the shard locks, serialize unlocked.
  std::vector<std::pair<std::string, CachedAnswer>> Entries;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &[Key, Answer] : S.Map)
      Entries.emplace_back(Key, Answer);
  }

  // A --cache-file in a directory that does not exist yet is a valid cold
  // start (e.g. a per-project .cache/ tree): create the parents instead of
  // failing the save.
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Parent, EC);
    if (EC) {
      setError(Error, "cannot create cache directory " + Parent.string() +
                          ": " + EC.message());
      return false;
    }
  }

  // Unique temp name per call: concurrent saves to the same path must not
  // interleave writes; the POSIX rename below is atomic, so readers see a
  // complete file from one save or the other.
  static std::atomic<uint64_t> SaveSeq{0};
  std::string Tmp =
      Path + ".tmp." + std::to_string(SaveSeq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      setError(Error, "cannot open " + Tmp + " for writing");
      return false;
    }
    Out << PersistVersion << '\n' << Entries.size() << '\n';
    for (const auto &[Key, Answer] : Entries) {
      // The canonical key contains newlines, so it is length-prefixed.
      Out << "key " << Key.size() << '\n';
      Out.write(Key.data(), static_cast<std::streamsize>(Key.size()));
      Out << '\n';
      const ProverStats &PS = Answer.Stats;
      Out << "verdict " << persistResultName(Answer.Result) << ' '
          << PS.Seconds << ' ' << PS.Rounds << ' ' << PS.Instantiations
          << ' ' << PS.Splits << ' ' << PS.TheoryChecks << ' ' << PS.Clauses
          << ' ' << PS.Propagations << ' ' << PS.MaxTrailDepth << ' '
          << PS.TheoryPops << ' ' << PS.DeltaTerms << '\n';
    }
    Out.flush();
    if (!Out) {
      setError(Error, "write failed for " + Tmp);
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setError(Error, "cannot rename " + Tmp + " to " + Path);
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool ProverCache::load(const std::string &Path, std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    setError(Error, "cannot open " + Path);
    return false;
  }
  std::string Line;
  if (!std::getline(In, Line) || Line != PersistVersion) {
    setError(Error, "unrecognized cache version header in " + Path +
                        " (expected " + PersistVersion + "); file ignored");
    return false;
  }
  size_t Count = 0;
  if (!std::getline(In, Line) ||
      !(std::istringstream(Line) >> Count)) {
    setError(Error, "corrupt entry count in " + Path + "; file ignored");
    return false;
  }

  // Parse everything into a staging vector first: a corrupt file must be
  // discarded wholesale, never half-applied.
  std::vector<std::pair<std::string, CachedAnswer>> Staged;
  Staged.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    if (!std::getline(In, Line)) {
      setError(Error, "truncated cache file " + Path + "; file ignored");
      return false;
    }
    std::istringstream KeyHdr(Line);
    std::string Word;
    size_t KeyLen = 0;
    if (!(KeyHdr >> Word >> KeyLen) || Word != "key") {
      setError(Error, "corrupt key header in " + Path + "; file ignored");
      return false;
    }
    std::string Key(KeyLen, '\0');
    if (!In.read(Key.data(), static_cast<std::streamsize>(KeyLen)) ||
        In.get() != '\n') {
      setError(Error, "truncated key in " + Path + "; file ignored");
      return false;
    }
    if (!std::getline(In, Line)) {
      setError(Error, "missing verdict line in " + Path + "; file ignored");
      return false;
    }
    std::istringstream Verdict(Line);
    std::string ResultName;
    CachedAnswer Answer;
    Answer.FromDisk = true;
    ProverStats &PS = Answer.Stats;
    if (!(Verdict >> Word >> ResultName >> PS.Seconds >> PS.Rounds >>
          PS.Instantiations >> PS.Splits >> PS.TheoryChecks >> PS.Clauses >>
          PS.Propagations >> PS.MaxTrailDepth >> PS.TheoryPops >>
          PS.DeltaTerms) ||
        Word != "verdict" ||
        !persistResultFromName(ResultName, Answer.Result)) {
      setError(Error, "corrupt verdict line in " + Path + "; file ignored");
      return false;
    }
    Staged.emplace_back(std::move(Key), std::move(Answer));
  }

  // Commit: entries this run already proved win over the file's.
  uint64_t Fresh = 0;
  for (auto &[Key, Answer] : Staged) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.Map.emplace(std::move(Key), std::move(Answer)).second)
      ++Fresh;
  }
  std::lock_guard<std::mutex> Lock(StatsM);
  Stats.PersistLoaded += Fresh;
  Stats.Entries += Fresh;
  return true;
}
