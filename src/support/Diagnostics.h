//===- Diagnostics.h - Diagnostic collection and reporting -----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic engine shared by all phases. Following the paper's CIL
/// implementation, qualifier-checking errors are reported as warnings and do
/// not abort processing; hard parse errors stop the current phase.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_DIAGNOSTICS_H
#define STQ_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace stq {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic: severity, optional location, message text, and
/// the phase that produced it (e.g. "parse", "qualcheck", "soundness").
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Phase;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics across phases. Not thread-safe; one engine per
/// compilation.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Phase,
              std::string Message);

  void error(SourceLoc Loc, std::string Phase, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Phase), std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Phase, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Phase), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Phase, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Phase), std::move(Message));
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  /// Number of diagnostics (any severity) whose phase matches \p Phase.
  unsigned countInPhase(const std::string &Phase) const;

  /// Drops all collected diagnostics and resets counters.
  void clear();

  /// Prints every diagnostic, one per line, to \p OS.
  void print(std::ostream &OS) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace stq

#endif // STQ_SUPPORT_DIAGNOSTICS_H
