//===- Diagnostics.h - Diagnostic collection and reporting -----*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic engine shared by all phases. Following the paper's CIL
/// implementation, qualifier-checking errors are reported as warnings and do
/// not abort processing; hard parse errors stop the current phase.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_DIAGNOSTICS_H
#define STQ_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace stq {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic: severity, optional location, message text, and
/// the phase that produced it (e.g. "parse", "qualcheck", "soundness").
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  /// Optional file attribution, set by the multi-TU front end (the
  /// preprocessor's line map resolves post-expansion locations back to
  /// the including file). Empty for the classic single-input pipeline,
  /// which renders exactly as it always has.
  std::string File;
  std::string Phase;
  std::string Message;

  std::string str() const;
};

const char *severityName(DiagSeverity S);

/// Receives diagnostics as they are reported, so drivers render them
/// without iterating the raw diagnostics() vector after the fact. Attach
/// with DiagnosticEngine::setConsumer; handleDiagnostic is called in report
/// order, finish() once when the producing pipeline completes (required for
/// the JSON consumer to close its document).
class DiagnosticConsumer {
public:
  virtual ~DiagnosticConsumer();
  virtual void handleDiagnostic(const Diagnostic &D) = 0;
  virtual void finish() {}
};

/// Streams each diagnostic as Diagnostic::str() plus a newline —
/// byte-for-byte the historical `stqc` stderr output. An optional phase
/// filter keeps only matching diagnostics (e.g. "qualcheck").
class TextDiagnosticConsumer : public DiagnosticConsumer {
public:
  explicit TextDiagnosticConsumer(std::ostream &OS, std::string PhaseFilter = {})
      : OS(OS), PhaseFilter(std::move(PhaseFilter)) {}
  void handleDiagnostic(const Diagnostic &D) override;

private:
  std::ostream &OS;
  std::string PhaseFilter;
};

/// Collects diagnostics and emits one "stq-diagnostics-v1" JSON document on
/// finish() (schema in docs/OBSERVABILITY.md).
class JsonDiagnosticConsumer : public DiagnosticConsumer {
public:
  explicit JsonDiagnosticConsumer(std::ostream &OS) : OS(OS) {}
  void handleDiagnostic(const Diagnostic &D) override;
  void finish() override;

private:
  std::ostream &OS;
  std::vector<Diagnostic> Pending;
  bool Finished = false;
};

/// Collects diagnostics across phases. Not thread-safe; one engine per
/// compilation.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Phase,
              std::string Message);
  /// Reports a fully-built diagnostic (the multi-TU front end remaps
  /// per-unit diagnostics and re-reports them here with File set).
  void report(Diagnostic D);

  /// Forwards every subsequent report to \p C (also still collected in the
  /// diagnostics() vector). Pass nullptr to detach. The engine does not own
  /// the consumer and never calls finish() itself.
  void setConsumer(DiagnosticConsumer *C) { Consumer = C; }
  DiagnosticConsumer *consumer() const { return Consumer; }

  void error(SourceLoc Loc, std::string Phase, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Phase), std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Phase, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Phase), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Phase, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Phase), std::move(Message));
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  /// Number of diagnostics (any severity) whose phase matches \p Phase.
  unsigned countInPhase(const std::string &Phase) const;

  /// Drops all collected diagnostics and resets counters.
  void clear();

  /// Prints every diagnostic, one per line, to \p OS.
  void print(std::ostream &OS) const;

private:
  std::vector<Diagnostic> Diags;
  DiagnosticConsumer *Consumer = nullptr;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace stq

#endif // STQ_SUPPORT_DIAGNOSTICS_H
