//===- MetricsEmitter.cpp -------------------------------------------------===//

#include "support/MetricsEmitter.h"

#include <cstdio>
#include <ostream>

using namespace stq;
using namespace stq::metrics;

std::optional<Format> stq::metrics::parseFormat(const std::string &Name) {
  if (Name.empty() || Name == "text")
    return Format::Text;
  if (Name == "json")
    return Format::Json;
  return std::nullopt;
}

MetricsEmitter::~MetricsEmitter() = default;

std::unique_ptr<MetricsEmitter> MetricsEmitter::create(Format F) {
  if (F == Format::Json)
    return std::make_unique<JsonMetricsEmitter>();
  return std::make_unique<TextMetricsEmitter>();
}

namespace {

std::string fmtDouble(double V, const char *Spec = "%.9g") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

} // namespace

void TextMetricsEmitter::emit(const stats::Registry::Snapshot &S,
                              std::ostream &OS) const {
  for (const auto &[Name, V] : S.Counters)
    OS << Name << " = " << V << "\n";
  for (const auto &[Name, V] : S.Gauges)
    OS << Name << " = " << fmtDouble(V, "%.3f") << "\n";
  for (const auto &[Name, D] : S.Histograms) {
    OS << Name << ": count=" << D.Count << " sum=" << fmtDouble(D.Sum)
       << " min=" << fmtDouble(D.Min) << " max=" << fmtDouble(D.Max)
       << " mean=" << fmtDouble(D.mean()) << "\n";
  }
}

void JsonMetricsEmitter::emit(const stats::Registry::Snapshot &S,
                              std::ostream &OS) const {
  OS << "{\n  \"schema\": \"stq-metrics-v1\",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": " << V;
    First = false;
  }
  OS << (First ? "},\n" : "\n  },\n");
  OS << "  \"gauges\": {";
  First = true;
  for (const auto &[Name, V] : S.Gauges) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": " << fmtDouble(V);
    First = false;
  }
  OS << (First ? "},\n" : "\n  },\n");
  OS << "  \"histograms\": {";
  First = true;
  for (const auto &[Name, D] : S.Histograms) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name) << "\": {"
       << "\"count\": " << D.Count << ", \"sum\": " << fmtDouble(D.Sum)
       << ", \"min\": " << fmtDouble(D.Min)
       << ", \"max\": " << fmtDouble(D.Max)
       << ", \"mean\": " << fmtDouble(D.mean()) << ", \"buckets\": [";
    for (size_t I = 0; I < D.Buckets.size(); ++I)
      OS << (I ? ", " : "") << D.Buckets[I];
    OS << "]}";
    First = false;
  }
  OS << (First ? "}\n" : "\n  }\n");
  OS << "}\n";
}

void stq::metrics::writeChromeTrace(
    const std::vector<trace::TraceEvent> &Events, std::ostream &OS) {
  OS << "{\"traceEvents\": [";
  bool First = true;
  for (const trace::TraceEvent &E : Events) {
    OS << (First ? "\n" : ",\n");
    First = false;
    std::string Name = E.Name;
    if (!E.Detail.empty())
      Name += " " + E.Detail;
    OS << "  {\"name\": \"" << jsonEscape(Name) << "\", \"ph\": \""
       << (E.K == trace::TraceEvent::Kind::Span ? "X" : "i")
       << "\", \"ts\": " << E.StartUs;
    if (E.K == trace::TraceEvent::Kind::Span)
      OS << ", \"dur\": " << E.DurUs;
    else
      OS << ", \"s\": \"t\"";
    OS << ", \"pid\": 1, \"tid\": " << E.Tid << ", \"args\": {\"depth\": "
       << E.Depth << "}}";
  }
  OS << (First ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

const std::vector<std::string> &
stq::metrics::schedulingDependentCounterPrefixes() {
  // pool.*: jobs/steals are the schedule itself. check.memo.*: the
  // hasQualifier memo is per-checker-instance, so sharded runs re-derive
  // queries a sequential run memo-hits across unit boundaries (Parallel.h).
  // prover.cache.contended: shard-mutex collisions only exist with
  // concurrent probes. incremental.*: hit/miss/eviction accounting depends
  // on store history, not on the program being checked.
  static const std::vector<std::string> Prefixes = {
      "pool.", "check.memo.", "prover.cache.contended", "incremental."};
  return Prefixes;
}

std::string stq::metrics::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}
