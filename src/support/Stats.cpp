//===- Stats.cpp ----------------------------------------------------------===//

#include "support/Stats.h"

#include <cmath>

using namespace stq::stats;

void Histogram::record(double V) {
  // Bucket on the microsecond log2 scale; bucket 0 holds sub-microsecond
  // (and non-positive) samples.
  unsigned Bucket = 0;
  double Us = V * 1e6;
  if (Us >= 1.0) {
    Bucket = static_cast<unsigned>(std::floor(std::log2(Us))) + 1;
    if (Bucket >= NumBuckets)
      Bucket = NumBuckets - 1;
  }
  std::lock_guard<std::mutex> Lock(M);
  if (Count == 0) {
    Min = Max = V;
  } else {
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
  }
  ++Count;
  Sum += V;
  ++Buckets[Bucket];
}

Histogram::Data Histogram::data() const {
  std::lock_guard<std::mutex> Lock(M);
  Data D;
  D.Count = Count;
  D.Sum = Sum;
  D.Min = Min;
  D.Max = Max;
  unsigned Last = 0;
  for (unsigned I = 0; I < NumBuckets; ++I)
    if (Buckets[I] != 0)
      Last = I + 1;
  D.Buckets.assign(Buckets, Buckets + Last);
  return D;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  Snapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->get();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G->get();
  for (const auto &[Name, H] : Histograms)
    S.Histograms[Name] = H->data();
  return S;
}

void Registry::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}
