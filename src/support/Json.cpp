//===- Json.cpp -----------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace stq::json;

//===----------------------------------------------------------------------===//
// Construction and access
//===----------------------------------------------------------------------===//

Value Value::boolean(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

Value Value::integer(int64_t N) {
  Value V;
  V.K = Kind::Int;
  V.I = N;
  return V;
}

Value Value::number(double D) {
  Value V;
  V.K = Kind::Double;
  V.D = D;
  return V;
}

Value Value::str(std::string S) {
  Value V;
  V.K = Kind::String;
  V.S = std::move(S);
  return V;
}

Value Value::array() {
  Value V;
  V.K = Kind::Array;
  return V;
}

Value Value::object() {
  Value V;
  V.K = Kind::Object;
  return V;
}

Value Value::raw(std::string Text) {
  Value V;
  V.K = Kind::Raw;
  V.S = std::move(Text);
  return V;
}

const Value *Value::get(const std::string &Key) const {
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

void Value::set(std::string Key, Value V) {
  for (auto &[Name, Existing] : Members)
    if (Name == Key) {
      Existing = std::move(V);
      return;
    }
  Members.emplace_back(std::move(Key), std::move(V));
}

std::string Value::getString(const std::string &Key,
                             const std::string &Default) const {
  const Value *V = get(Key);
  return V && V->isString() ? V->asString() : Default;
}

int64_t Value::getInt(const std::string &Key, int64_t Default) const {
  const Value *V = get(Key);
  return V && V->isNumber() ? V->asInt() : Default;
}

bool Value::getBool(const std::string &Key, bool Default) const {
  const Value *V = get(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void escapeInto(const std::string &S, std::string &Out) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

} // namespace

void Value::writeInto(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += B ? "true" : "false";
    return;
  case Kind::Int:
    Out += std::to_string(I);
    return;
  case Kind::Double: {
    if (std::isfinite(D)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null";
    }
    return;
  }
  case Kind::String:
    escapeInto(S, Out);
    return;
  case Kind::Raw:
    Out += S;
    return;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &E : Elems) {
      if (!First)
        Out += ',';
      First = false;
      E.writeInto(Out);
    }
    Out += ']';
    return;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Name, V] : Members) {
      if (!First)
        Out += ',';
      First = false;
      escapeInto(Name, Out);
      Out += ':';
      V.writeInto(Out);
    }
    Out += '}';
    return;
  }
  }
}

std::string Value::write() const {
  std::string Out;
  writeInto(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Value::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::str(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out);
    case '{':
      return parseObject(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    if (Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      if (++Pos >= Text.size())
        return fail("truncated escape");
      switch (Text[Pos]) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        // Surrogate pair: decode the low half when present.
        if (Code >= 0xd800 && Code <= 0xdbff &&
            Text.compare(Pos + 1, 2, "\\u") == 0) {
          Pos += 2; // onto the 'u' of the second escape
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xdc00 && Low <= 0xdfff)
            Code = 0x10000 + ((Code - 0xd800) << 10) + (Low - 0xdc00);
          else
            return fail("invalid low surrogate");
        }
        appendUtf8(Code, Out);
        break;
      }
      default:
        return fail("unknown escape character");
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  /// Parses the 4 hex digits after a \u escape; leaves Pos on the last one.
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 >= Text.size())
      return fail("truncated \\u escape");
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + 1 + I];
      Code <<= 4;
      if (C >= '0' && C <= '9')
        Code |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Code |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Code |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    Pos += 4;
    return true;
  }

  static void appendUtf8(unsigned Code, std::string &Out) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xc0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xe0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Digits = false;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      ++Pos;
      Digits = true;
    }
    if (!Digits)
      return fail("expected value");
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsDouble = true;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string Num = Text.substr(Start, Pos - Start);
    if (IsDouble)
      Out = Value::number(std::strtod(Num.c_str(), nullptr));
    else
      Out = Value::integer(std::strtoll(Num.c_str(), nullptr, 10));
    return true;
  }

  bool parseArray(Value &Out) {
    Out = Value::array();
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      Value Elem;
      if (!parseValue(Elem))
        return false;
      Out.push(std::move(Elem));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        skipWs();
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(Value &Out) {
    Out = Value::object();
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      Value V;
      if (!parseValue(V))
        return false;
      Out.set(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool stq::json::parse(const std::string &Text, Value &Out,
                      std::string &Error) {
  Parser P(Text, Error);
  return P.run(Out);
}
