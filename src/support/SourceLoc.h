//===- SourceLoc.h - Source locations for diagnostics ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates shared by the C-minus front end and the
/// qualifier-definition parser.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_SOURCELOC_H
#define STQ_SUPPORT_SOURCELOC_H

#include <string>

namespace stq {

/// A 1-based (line, column) position in some input buffer. Line 0 denotes an
/// unknown/synthesized location.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
  friend bool operator!=(const SourceLoc &A, const SourceLoc &B) {
    return !(A == B);
  }

  /// Renders as "line:col", or "<unknown>" for invalid locations.
  std::string str() const;
};

} // namespace stq

#endif // STQ_SUPPORT_SOURCELOC_H
