//===- Lexer.h - Shared C-like tokenizer ------------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single tokenizer shared by the C-minus front end and the
/// qualifier-definition language. Both languages draw from the same C-like
/// token set; keyword recognition is left to the parsers so each language
/// keeps its own keyword table.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_LEXER_H
#define STQ_SUPPORT_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stq {

enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  StringLiteral,
  CharLiteral,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Ellipsis,
  Arrow,      // ->
  Amp,        // &
  AmpAmp,     // &&
  Pipe,       // |
  PipePipe,   // ||
  Bang,       // !
  BangEq,     // !=
  Eq,         // =
  EqEq,       // ==
  FatArrow,   // =>
  Less,       // <
  LessEq,     // <=
  Greater,    // >
  GreaterEq,  // >=
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Percent,    // %
  Colon,      // :
  Question,   // ?
  Tilde,      // ~
};

/// Returns a human-readable spelling for \p Kind, e.g. "'=='" or
/// "identifier".
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  /// Identifier spelling, or decoded string/char literal contents.
  std::string Text;
  /// Value for IntLiteral and CharLiteral tokens.
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isIdent(const char *S) const {
    return Kind == TokenKind::Identifier && Text == S;
  }
};

/// Tokenizes an entire buffer up front. Handles //- and /* */-style comments,
/// decimal and hex integer literals, and C escape sequences in string/char
/// literals. Lexical errors are reported to the DiagnosticEngine and the
/// offending character is skipped.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the whole buffer and returns the token stream, terminated by an
  /// EndOfFile token.
  std::vector<Token> tokenize();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  void lexToken(std::vector<Token> &Out);
  void lexNumber(std::vector<Token> &Out, SourceLoc Start, char First);
  void lexIdentifier(std::vector<Token> &Out, SourceLoc Start, char First);
  void lexString(std::vector<Token> &Out, SourceLoc Start);
  void lexChar(std::vector<Token> &Out, SourceLoc Start);
  /// Decodes one escape sequence after a backslash; returns the character.
  char lexEscape();
  /// Reports a lexical error, capped so byte garbage cannot flood the
  /// diagnostic stream with one entry per stray character.
  void error(SourceLoc Loc, const std::string &Message);

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  static constexpr unsigned MaxLexErrors = 64;
  unsigned ErrorCount = 0;
};

} // namespace stq

#endif // STQ_SUPPORT_LEXER_H
