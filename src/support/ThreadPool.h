//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool shared by the parallel checking
/// pipeline: the qualifier checker shards functions across it and the
/// soundness checker fans proof obligations out over it. Each worker owns a
/// deque; it pops its own work LIFO (cache-friendly) and steals FIFO from
/// victims when idle. Tasks may submit further tasks.
///
/// Determinism contract: the pool schedules tasks in an arbitrary order, so
/// callers that need reproducible output (diagnostics!) must write results
/// into preassigned slots and merge them in task-index order after wait().
/// `parallelFor` does exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_THREADPOOL_H
#define STQ_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stq {

class ThreadPool {
public:
  /// Counters describing one pool's lifetime, for `stqc --metrics` and the
  /// scaling benchmark.
  struct PoolStats {
    uint64_t Executed = 0; ///< Tasks run to completion.
    uint64_t Steals = 0;   ///< Tasks taken from another worker's deque.
  };

  /// Spawns \p Threads workers (at least one).
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished.
  void wait();

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }
  PoolStats stats() const;

  /// The job count to use when the user passes no --jobs: the hardware
  /// concurrency, with 1 as the fallback when it is unknown.
  static unsigned defaultJobs();

private:
  struct WorkerQueue {
    std::mutex M;
    std::deque<std::function<void()>> Q;
  };

  void workerLoop(unsigned Index);
  /// Pops from the worker's own deque (back) or steals from a victim's
  /// (front). Returns an empty function when no work is available.
  std::function<void()> takeTask(unsigned Self);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex WakeM;
  std::condition_variable WakeCv;  ///< Signals "new work or shutdown".
  std::condition_variable IdleCv;  ///< Signals "Pending may have hit zero".
  bool Stop = false;

  std::atomic<uint64_t> Pending{0};  ///< Submitted but not yet completed.
  std::atomic<uint64_t> NextQueue{0}; ///< Round-robin submission cursor.
  std::atomic<uint64_t> Executed{0};
  std::atomic<uint64_t> Steals{0};
};

/// A completion scope over a shared ThreadPool: tracks only the tasks
/// submitted through it, so several callers (the stqd request workers) can
/// fan work into one process-wide pool and each wait for just their own
/// batch. ThreadPool::wait() waits for *everything* pending, which under a
/// server's sustained load may never drain; a TaskGroup's wait() cannot
/// starve that way. Tasks submitted through a group must not wait on
/// another group from inside the pool (no nested fan-out).
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Enqueues \p Task on the shared pool, counted against this group.
  void submit(std::function<void()> Task);
  /// Blocks until every task submitted through this group has finished.
  void wait();

private:
  ThreadPool &Pool;
  std::mutex M;
  std::condition_variable Cv;
  size_t Outstanding = 0;
};

/// Runs Fn(0) .. Fn(N-1) across \p Jobs workers and returns once all calls
/// finished. Jobs <= 1 (or N <= 1) runs inline on the caller's thread,
/// which is the deterministic sequential baseline. \p StatsOut, when
/// non-null, receives the pool's counters.
///
/// When \p Shared is non-null the iterations are fanned into that
/// long-lived pool through a TaskGroup instead of spawning a fresh pool:
/// the stqd daemon shares one pool across all requests. Per-call Steals
/// are not attributable on a shared pool and report as 0; Executed still
/// reports N.
void parallelFor(unsigned Jobs, size_t N,
                 const std::function<void(size_t)> &Fn,
                 ThreadPool::PoolStats *StatsOut = nullptr,
                 ThreadPool *Shared = nullptr);

} // namespace stq

#endif // STQ_SUPPORT_THREADPOOL_H
