//===- Json.h - Minimal JSON values for the RPC protocol --------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value type with a strict parser and a deterministic writer,
/// used by the `stq-rpc-v1` server protocol (src/server/Protocol.h). The
/// existing emitters (metrics, diagnostics, traces) keep their hand-rolled
/// writers; this type exists for the code that must *read* JSON: the stqd
/// request decoder and the stqc client-mode response decoder.
///
/// Supported: objects, arrays, strings (with \uXXXX escapes decoded to
/// UTF-8), integers, doubles, booleans, null. Object member order is
/// preserved, which keeps encode(decode(x)) stable. A Raw node kind lets
/// the server embed pre-rendered documents (an `stq-metrics-v1` payload)
/// verbatim without re-parsing them; the parser never produces Raw nodes.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_JSON_H
#define STQ_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stq::json {

/// One JSON value. Cheap to move; copies are deep.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object, Raw };

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool B);
  static Value integer(int64_t N);
  static Value number(double D);
  static Value str(std::string S);
  static Value array();
  static Value object();
  /// A pre-rendered JSON document emitted verbatim by write(). The caller
  /// guarantees \p Text is itself valid JSON.
  static Value raw(std::string Text);

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? static_cast<int64_t>(D) : I; }
  double asDouble() const { return K == Kind::Int ? static_cast<double>(I) : D; }
  const std::string &asString() const { return S; }

  /// Array access.
  const std::vector<Value> &elements() const { return Elems; }
  void push(Value V) { Elems.push_back(std::move(V)); }

  /// Object access. Members keep insertion order; get() returns nullptr
  /// when the key is absent.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  const Value *get(const std::string &Key) const;
  void set(std::string Key, Value V);

  /// Typed member lookups with defaults, for decoding requests leniently.
  std::string getString(const std::string &Key,
                        const std::string &Default = {}) const;
  int64_t getInt(const std::string &Key, int64_t Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;

  /// Serializes to compact single-line JSON (no newlines: the RPC framing
  /// is one document per line). Strings escape control characters, so the
  /// output never contains a literal newline.
  std::string write() const;
  void writeInto(std::string &Out) const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S; ///< String payload, or raw text for Kind::Raw.
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Strict parse of one JSON document. Trailing garbage after the document
/// is an error. Returns false with \p Error set on malformed input.
bool parse(const std::string &Text, Value &Out, std::string &Error);

} // namespace stq::json

#endif // STQ_SUPPORT_JSON_H
