//===- ThreadPool.cpp -----------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>

using namespace stq;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Queues.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(WakeM);
    Stop = true;
  }
  WakeCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Target = static_cast<unsigned>(
      NextQueue.fetch_add(1, std::memory_order_relaxed) % Queues.size());
  Pending.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->M);
    Queues[Target]->Q.push_back(std::move(Task));
  }
  WakeCv.notify_one();
}

std::function<void()> ThreadPool::takeTask(unsigned Self) {
  // Own deque first, newest task first: the task most likely to have a hot
  // working set.
  {
    WorkerQueue &Mine = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Mine.M);
    if (!Mine.Q.empty()) {
      std::function<void()> T = std::move(Mine.Q.back());
      Mine.Q.pop_back();
      return T;
    }
  }
  // Steal oldest-first from the other workers, scanning from the next
  // index so victims are spread evenly.
  for (size_t Off = 1; Off < Queues.size(); ++Off) {
    WorkerQueue &Victim = *Queues[(Self + Off) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Victim.M);
    if (!Victim.Q.empty()) {
      std::function<void()> T = std::move(Victim.Q.front());
      Victim.Q.pop_front();
      Steals.fetch_add(1, std::memory_order_relaxed);
      return T;
    }
  }
  return {};
}

void ThreadPool::workerLoop(unsigned Index) {
  for (;;) {
    std::function<void()> Task = takeTask(Index);
    if (Task) {
      Task();
      Executed.fetch_add(1, std::memory_order_relaxed);
      if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task done; wake any wait()ers.
        std::lock_guard<std::mutex> Lock(WakeM);
        IdleCv.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> Lock(WakeM);
    if (Stop)
      return;
    if (Pending.load(std::memory_order_acquire) == 0) {
      WakeCv.wait(Lock);
      continue;
    }
    // Work exists but another worker may hold it; re-scan after a brief
    // wait rather than spinning.
    WakeCv.wait_for(Lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(WakeM);
  IdleCv.wait(Lock, [this] {
    return Pending.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool::PoolStats ThreadPool::stats() const {
  PoolStats S;
  S.Executed = Executed.load(std::memory_order_relaxed);
  S.Steals = Steals.load(std::memory_order_relaxed);
  return S;
}

void TaskGroup::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Outstanding;
  }
  Pool.submit([this, T = std::move(Task)] {
    T();
    std::lock_guard<std::mutex> Lock(M);
    if (--Outstanding == 0)
      Cv.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> Lock(M);
  Cv.wait(Lock, [this] { return Outstanding == 0; });
}

void stq::parallelFor(unsigned Jobs, size_t N,
                      const std::function<void(size_t)> &Fn,
                      ThreadPool::PoolStats *StatsOut, ThreadPool *Shared) {
  if (StatsOut)
    *StatsOut = {};
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    if (StatsOut)
      StatsOut->Executed = N;
    return;
  }
  if (Shared) {
    TaskGroup Group(*Shared);
    for (size_t I = 0; I < N; ++I)
      Group.submit([&Fn, I] { Fn(I); });
    Group.wait();
    if (StatsOut)
      StatsOut->Executed = N; // Steals are pool-wide, not per-group.
    return;
  }
  ThreadPool Pool(static_cast<unsigned>(std::min<size_t>(Jobs, N)));
  for (size_t I = 0; I < N; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
  if (StatsOut)
    *StatsOut = Pool.stats();
}
