//===- Stats.h - Thread-safe named counters and histograms ------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer (docs/OBSERVABILITY.md): a
/// registry of named counters (monotonic integers), gauges (last-write
/// doubles, for derived ratios like cache hit rates), and histograms
/// (count/sum/min/max plus log2 microsecond buckets, for durations).
///
/// A Registry is thread-safe: name lookup takes a mutex, increments on the
/// returned Counter are a single relaxed atomic add. Hot paths should look
/// a Counter up once and keep the reference; entries are never invalidated
/// for a Registry's lifetime. Phase durations are recorded by ScopedTimer;
/// the pipeline entry points additionally open trace spans (Trace.h), so
/// one run can feed both `--metrics` and `--trace`.
///
/// Naming scheme: dot-separated, lowercase, `<component>.<metric>`;
/// duration histograms end in `_seconds`. Counters under the prefixes
/// returned by schedulingDependentCounterPrefixes() (MetricsEmitter.h) are
/// allowed to vary with the job count; everything else must be identical
/// for any `--jobs N` (the determinism test enforces this).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_STATS_H
#define STQ_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stq::stats {

/// A monotonically increasing counter. Increments are lock-free.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  /// Overwrites the value (for publishing an externally accumulated total).
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A distribution summary: count/sum/min/max plus coarse log2 buckets.
/// Bucket I counts samples with floor(log2(V * 1e6)) == I - 1 (bucket 0 is
/// everything below one microsecond), so durations in seconds land in a
/// readable microsecond-scaled histogram.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 40;

  struct Data {
    uint64_t Count = 0;
    double Sum = 0.0;
    double Min = 0.0;
    double Max = 0.0;
    std::vector<uint64_t> Buckets; ///< Trailing zero buckets trimmed.

    double mean() const { return Count == 0 ? 0.0 : Sum / Count; }
  };

  void record(double V);
  Data data() const;

private:
  mutable std::mutex M;
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  uint64_t Buckets[NumBuckets] = {};
};

/// A last-write-wins double, for derived values (rates, ratios).
class Gauge {
public:
  void set(double V) {
    std::lock_guard<std::mutex> Lock(M);
    Value = V;
  }
  double get() const {
    std::lock_guard<std::mutex> Lock(M);
    return Value;
  }

private:
  mutable std::mutex M;
  double Value = 0.0;
};

/// A named collection of counters, gauges, and histograms. Lookup creates
/// on first use; returned references stay valid until clear() or
/// destruction.
class Registry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Convenience: counter(Name).add(N).
  void add(const std::string &Name, uint64_t N) { counter(Name).add(N); }
  /// Convenience: counter(Name).set(N).
  void set(const std::string &Name, uint64_t N) { counter(Name).set(N); }
  /// Convenience: gauge(Name).set(V).
  void setGauge(const std::string &Name, double V) { gauge(Name).set(V); }
  /// Convenience: histogram(Name).record(V).
  void record(const std::string &Name, double V) { histogram(Name).record(V); }

  /// A point-in-time copy, ordered by name (deterministic emission).
  struct Snapshot {
    std::map<std::string, uint64_t> Counters;
    std::map<std::string, double> Gauges;
    std::map<std::string, Histogram::Data> Histograms;
  };
  Snapshot snapshot() const;

  /// Drops every entry (outstanding references become dangling; only call
  /// between measurement runs).
  void clear();

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Records elapsed wall time, in seconds, into a histogram on destruction.
/// A null registry makes the timer a no-op (instrumentation disabled).
class ScopedTimer {
public:
  ScopedTimer(Registry *R, const char *Name)
      : R(R), Name(Name), Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  /// Records now instead of at destruction; idempotent.
  void stop() {
    if (!R)
      return;
    R->record(Name, std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count());
    R = nullptr;
  }

private:
  Registry *R;
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace stq::stats

#endif // STQ_SUPPORT_STATS_H
