//===- Socket.cpp ---------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace stq;

namespace {

std::string errnoString(const std::string &What) {
  return What + ": " + std::strerror(errno);
}

/// Fills \p Addr from \p Path; false when the path exceeds sun_path.
bool makeAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// UnixStream
//===----------------------------------------------------------------------===//

UnixStream::~UnixStream() { close(); }

UnixStream::UnixStream(UnixStream &&Other) noexcept
    : Fd(Other.Fd), Buffered(std::move(Other.Buffered)) {
  Other.Fd = -1;
}

UnixStream &UnixStream::operator=(UnixStream &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Buffered = std::move(Other.Buffered);
    Other.Fd = -1;
  }
  return *this;
}

void UnixStream::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffered.clear();
}

bool UnixStream::connect(const std::string &Path, std::string &Error) {
  close();
  sockaddr_un Addr;
  if (!makeAddress(Path, Addr, Error))
    return false;
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket");
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoString("cannot connect to '" + Path + "'");
    close();
    return false;
  }
  return true;
}

bool UnixStream::writeAll(const std::string &Data, std::string &Error) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("write");
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool UnixStream::readLine(std::string &Out, size_t MaxBytes, int TimeoutMs,
                          std::string &Error) {
  Out.clear();
  Error.clear();
  for (;;) {
    size_t Nl = Buffered.find('\n');
    if (Nl != std::string::npos) {
      if (Nl > MaxBytes) {
        Error = "request exceeds byte limit";
        return false;
      }
      Out = Buffered.substr(0, Nl);
      Buffered.erase(0, Nl + 1);
      return true;
    }
    if (Buffered.size() > MaxBytes) {
      Error = "request exceeds byte limit";
      return false;
    }

    pollfd Pfd{Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, TimeoutMs);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("poll");
      return false;
    }
    if (Ready == 0) {
      Error = "read timeout";
      return false;
    }
    char Buf[4096];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("read");
      return false;
    }
    if (N == 0) {
      // Clean EOF: only an error if it truncated a line in progress.
      if (!Buffered.empty())
        Error = "connection closed mid-line";
      return false;
    }
    Buffered.append(Buf, static_cast<size_t>(N));
  }
}

//===----------------------------------------------------------------------===//
// UnixListener
//===----------------------------------------------------------------------===//

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!BoundPath.empty()) {
    ::unlink(BoundPath.c_str());
    BoundPath.clear();
  }
}

bool UnixListener::listen(const std::string &Path, int Backlog,
                          std::string &Error) {
  close();
  sockaddr_un Addr;
  if (!makeAddress(Path, Addr, Error))
    return false;
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket");
    return false;
  }
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoString("cannot bind '" + Path + "'");
    ::close(Fd);
    Fd = -1;
    return false;
  }
  if (::listen(Fd, Backlog) != 0) {
    Error = errnoString("listen");
    ::close(Fd);
    Fd = -1;
    ::unlink(Path.c_str());
    return false;
  }
  BoundPath = Path;
  return true;
}

UnixStream UnixListener::accept(int TimeoutMs, std::string &Error) {
  Error.clear();
  pollfd Pfd{Fd, POLLIN, 0};
  int Ready = ::poll(&Pfd, 1, TimeoutMs);
  if (Ready < 0) {
    if (errno != EINTR)
      Error = errnoString("poll");
    return UnixStream();
  }
  if (Ready == 0)
    return UnixStream();
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    if (errno != EINTR && errno != ECONNABORTED)
      Error = errnoString("accept");
    return UnixStream();
  }
  return UnixStream(Conn);
}
