//===- MetricsEmitter.h - Text and JSON metrics backends --------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering backends for the observability layer: a Registry snapshot
/// (Stats.h) becomes either a human-readable text block (`stqc --metrics`)
/// or a machine-readable JSON document (`--metrics=json`, schema
/// "stq-metrics-v1"; see docs/OBSERVABILITY.md), and a trace buffer
/// (Trace.h) becomes a Chrome trace-event JSON file (`--trace FILE`).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_METRICSEMITTER_H
#define STQ_SUPPORT_METRICSEMITTER_H

#include "support/Stats.h"
#include "support/Trace.h"

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace stq::metrics {

enum class Format { Text, Json };

/// Parses a `--metrics` value ("text", "json"); nullopt on anything else.
std::optional<Format> parseFormat(const std::string &Name);

/// Renders one Registry snapshot to a stream.
class MetricsEmitter {
public:
  virtual ~MetricsEmitter();
  virtual void emit(const stats::Registry::Snapshot &S,
                    std::ostream &OS) const = 0;

  static std::unique_ptr<MetricsEmitter> create(Format F);
};

/// `name = value` lines grouped into counters / gauges / histograms.
class TextMetricsEmitter : public MetricsEmitter {
public:
  void emit(const stats::Registry::Snapshot &S,
            std::ostream &OS) const override;
};

/// The "stq-metrics-v1" JSON document. Output is deterministic for a given
/// snapshot: keys are sorted, doubles rendered with fixed precision.
class JsonMetricsEmitter : public MetricsEmitter {
public:
  void emit(const stats::Registry::Snapshot &S,
            std::ostream &OS) const override;
};

/// Writes \p Events in the Chrome trace-event format (a JSON object with a
/// "traceEvents" array of "X"/"i" phase records).
void writeChromeTrace(const std::vector<trace::TraceEvent> &Events,
                      std::ostream &OS);

/// Counter-name prefixes whose totals legitimately vary with `--jobs N`
/// (work-stealing schedule, per-shard memo locality). Every other counter
/// must be identical for any job count; the determinism test compares
/// snapshots with these prefixes erased.
const std::vector<std::string> &schedulingDependentCounterPrefixes();

/// JSON string escaping shared by the metrics, diagnostics, and trace
/// backends.
std::string jsonEscape(const std::string &S);

} // namespace stq::metrics

#endif // STQ_SUPPORT_METRICSEMITTER_H
