//===- Trace.h - RAII phase spans and trace events --------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer (docs/OBSERVABILITY.md).
/// Pipeline phases (lex, parse, sema, lower, qualcheck, obligations,
/// prover, execute), per-unit and per-obligation work items, and
/// per-cache-probe events are recorded as spans and instants into a
/// process-global buffer, then written as a Chrome trace-event JSON file by
/// `stqc --trace FILE` (load it in chrome://tracing or Perfetto).
///
/// The disabled path is the default and must stay near-free: every entry
/// point first checks one inline relaxed atomic load and does nothing else
/// when tracing is off, so the instrumentation can remain compiled in on
/// production builds (the checker-time benchmark bounds the overhead at
/// 2%). Recording is thread-safe; spans nest per thread via a thread-local
/// depth.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_TRACE_H
#define STQ_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace stq::trace {

/// One recorded event. Span durations are closed intervals measured on the
/// recording thread; instants have DurUs == 0.
struct TraceEvent {
  enum class Kind { Span, Instant };

  const char *Name = "";  ///< Static phase/event name.
  std::string Detail;     ///< Optional dynamic annotation (function name...).
  Kind K = Kind::Span;
  uint64_t StartUs = 0;   ///< Microseconds since Tracer::start().
  uint64_t DurUs = 0;
  uint32_t Tid = 0;       ///< Small sequential per-trace thread id.
  uint32_t Depth = 0;     ///< Nesting depth on the recording thread.
};

/// The process-global trace collector. Exactly one trace is recorded at a
/// time; start() clears the buffer and enables recording, stop() disables
/// it and hands the events back.
class Tracer {
public:
  /// The inline fast path every instrumentation point checks first.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  static void start();
  static std::vector<TraceEvent> stop();

  /// Appends \p E (no-op unless enabled). Fills in nothing; callers stamp
  /// times and ids via nowUs()/threadId().
  static void record(TraceEvent E);

  static uint64_t nowUs();
  static uint32_t threadId();

  /// Span-nesting depth bookkeeping for the current thread.
  static uint32_t enterSpan();
  static void exitSpan();

private:
  static std::atomic<bool> EnabledFlag;
};

/// RAII span: records one TraceEvent covering its lifetime. Constructing
/// while tracing is disabled is a no-op (one atomic load).
class Span {
public:
  explicit Span(const char *Name) {
    if (Tracer::enabled())
      begin(Name);
  }
  Span(const char *Name, std::string Detail) {
    if (Tracer::enabled()) {
      begin(Name);
      Detail_ = std::move(Detail);
    }
  }
  ~Span() {
    if (Name_)
      end();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a dynamic annotation; callers should guard any expensive
  /// string construction behind active().
  void detail(std::string D) {
    if (Name_)
      Detail_ = std::move(D);
  }
  bool active() const { return Name_ != nullptr; }

private:
  void begin(const char *Name);
  void end();

  const char *Name_ = nullptr;
  std::string Detail_;
  uint64_t StartUs_ = 0;
  uint32_t Depth_ = 0;
};

/// Records an instant event (no-op unless enabled).
void instant(const char *Name);
void instant(const char *Name, std::string Detail);

} // namespace stq::trace

#endif // STQ_SUPPORT_TRACE_H
