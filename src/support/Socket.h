//===- Socket.h - Unix-domain socket transport helpers ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small POSIX socket layer under the `stqd` daemon and the
/// `stqc --server` client (src/server/). Two wrappers:
///
///  * UnixListener — bind/listen on a Unix-domain socket path, accept with
///    a poll timeout so the daemon's accept loop can observe its shutdown
///    flag between connections;
///  * UnixStream — one connected byte stream with line-oriented reads
///    (poll timeout + hard byte limit, the protocol's defense against
///    slow or oversized requests) and full writes.
///
/// Both are move-only RAII owners of their file descriptor. Everything
/// reports errors via bool + std::string; nothing throws.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_SOCKET_H
#define STQ_SUPPORT_SOCKET_H

#include <string>

namespace stq {

/// One connected Unix-domain byte stream.
class UnixStream {
public:
  UnixStream() = default;
  explicit UnixStream(int Fd) : Fd(Fd) {}
  ~UnixStream();

  UnixStream(UnixStream &&Other) noexcept;
  UnixStream &operator=(UnixStream &&Other) noexcept;
  UnixStream(const UnixStream &) = delete;
  UnixStream &operator=(const UnixStream &) = delete;

  /// Connects to the listener at \p Path. False (with \p Error) when the
  /// socket cannot be created or nothing is listening.
  bool connect(const std::string &Path, std::string &Error);

  bool valid() const { return Fd >= 0; }
  void close();

  /// Writes all of \p Data, retrying short writes. SIGPIPE is suppressed
  /// (MSG_NOSIGNAL); a closed peer returns false.
  bool writeAll(const std::string &Data, std::string &Error);

  /// Reads one '\n'-terminated line (the newline is consumed, not
  /// returned). Enforces \p MaxBytes on the line and \p TimeoutMs of
  /// inactivity between reads; EOF before any byte yields false with an
  /// empty Error (clean close). TimeoutMs < 0 waits forever.
  bool readLine(std::string &Out, size_t MaxBytes, int TimeoutMs,
                std::string &Error);

private:
  int Fd = -1;
  std::string Buffered; ///< Bytes read past the previous line.
};

/// A listening Unix-domain socket. Removes a stale socket file on bind and
/// unlinks the path again on close.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens on \p Path (backlog \p Backlog). An existing file
  /// at the path is unlinked first: the daemon owns its socket path.
  bool listen(const std::string &Path, int Backlog, std::string &Error);

  /// Waits up to \p TimeoutMs for a connection. Returns a valid stream, or
  /// an invalid one on timeout/interrupt (Error empty) or failure (Error
  /// set).
  UnixStream accept(int TimeoutMs, std::string &Error);

  bool valid() const { return Fd >= 0; }
  const std::string &path() const { return BoundPath; }
  void close();

private:
  int Fd = -1;
  std::string BoundPath;
};

} // namespace stq

#endif // STQ_SUPPORT_SOCKET_H
