//===- Casting.h - LLVM-style isa/cast/dyn_cast -----------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal hand-rolled RTTI in the LLVM style. A class opts in by defining
/// `static bool classof(const Base *)` over a kind discriminator.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SUPPORT_CASTING_H
#define STQ_SUPPORT_CASTING_H

#include <cassert>

namespace stq {

template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace stq

#endif // STQ_SUPPORT_CASTING_H
