//===- Trace.cpp ----------------------------------------------------------===//

#include "support/Trace.h"

#include <chrono>
#include <mutex>

using namespace stq::trace;

std::atomic<bool> Tracer::EnabledFlag{false};

namespace {

using Clock = std::chrono::steady_clock;

struct TraceState {
  std::mutex M;
  std::vector<TraceEvent> Events;
  Clock::time_point Epoch = Clock::now();
  uint32_t NextTid = 0;
};

TraceState &state() {
  static TraceState S;
  return S;
}

thread_local uint32_t CachedTid = ~0u;
thread_local uint64_t CachedTidTrace = ~0ull;
thread_local uint32_t SpanDepth = 0;

/// Bumped on every start() so cached thread ids from a previous trace are
/// re-assigned.
std::atomic<uint64_t> TraceGeneration{0};

} // namespace

void Tracer::start() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Events.clear();
  S.Epoch = Clock::now();
  S.NextTid = 0;
  TraceGeneration.fetch_add(1, std::memory_order_relaxed);
  EnabledFlag.store(true, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::stop() {
  EnabledFlag.store(false, std::memory_order_release);
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return std::move(S.Events);
}

void Tracer::record(TraceEvent E) {
  if (!enabled())
    return;
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Events.push_back(std::move(E));
}

uint64_t Tracer::nowUs() {
  TraceState &S = state();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            S.Epoch)
          .count());
}

uint32_t Tracer::threadId() {
  uint64_t Gen = TraceGeneration.load(std::memory_order_relaxed);
  if (CachedTidTrace != Gen) {
    TraceState &S = state();
    std::lock_guard<std::mutex> Lock(S.M);
    CachedTid = S.NextTid++;
    CachedTidTrace = Gen;
  }
  return CachedTid;
}

uint32_t Tracer::enterSpan() { return SpanDepth++; }

void Tracer::exitSpan() {
  if (SpanDepth > 0)
    --SpanDepth;
}

void Span::begin(const char *Name) {
  Name_ = Name;
  StartUs_ = Tracer::nowUs();
  Depth_ = Tracer::enterSpan();
}

void Span::end() {
  uint64_t EndUs = Tracer::nowUs();
  Tracer::exitSpan();
  TraceEvent E;
  E.Name = Name_;
  E.Detail = std::move(Detail_);
  E.K = TraceEvent::Kind::Span;
  E.StartUs = StartUs_;
  E.DurUs = EndUs - StartUs_;
  E.Tid = Tracer::threadId();
  E.Depth = Depth_;
  Tracer::record(std::move(E));
}

void stq::trace::instant(const char *Name) {
  if (!Tracer::enabled())
    return;
  instant(Name, std::string());
}

void stq::trace::instant(const char *Name, std::string Detail) {
  if (!Tracer::enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Detail = std::move(Detail);
  E.K = TraceEvent::Kind::Instant;
  E.StartUs = Tracer::nowUs();
  E.Tid = Tracer::threadId();
  Tracer::record(std::move(E));
}
