//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/MetricsEmitter.h"

#include <ostream>

using namespace stq;

const char *stq::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

DiagnosticConsumer::~DiagnosticConsumer() = default;

void TextDiagnosticConsumer::handleDiagnostic(const Diagnostic &D) {
  if (!PhaseFilter.empty() && D.Phase != PhaseFilter)
    return;
  OS << D.str() << "\n";
}

void JsonDiagnosticConsumer::handleDiagnostic(const Diagnostic &D) {
  Pending.push_back(D);
}

void JsonDiagnosticConsumer::finish() {
  if (Finished)
    return;
  Finished = true;
  OS << "{\n  \"schema\": \"stq-diagnostics-v1\",\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : Pending) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << "    {\"severity\": \"" << severityName(D.Severity)
       << "\", \"phase\": \"" << metrics::jsonEscape(D.Phase) << "\", ";
    if (!D.File.empty())
      OS << "\"file\": \"" << metrics::jsonEscape(D.File) << "\", ";
    if (D.Loc.isValid())
      OS << "\"line\": " << D.Loc.Line << ", \"col\": " << D.Loc.Col << ", ";
    OS << "\"message\": \"" << metrics::jsonEscape(D.Message) << "\"}";
  }
  OS << (First ? "]\n" : "\n  ]\n") << "}\n";
  Pending.clear();
}

std::string Diagnostic::str() const {
  std::string Out;
  if (!File.empty()) {
    Out += File;
    Out += ":";
    // A file-attributed diagnostic always renders a position slot, so
    // "a.c:3:7: ..." and file-level messages stay visually aligned.
    if (!Loc.isValid())
      Out += " ";
  }
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  if (!Phase.empty()) {
    Out += " [";
    Out += Phase;
    Out += "]";
  }
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Phase, std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back({Severity, Loc, /*File=*/{}, std::move(Phase),
                   std::move(Message)});
  if (Consumer)
    Consumer->handleDiagnostic(Diags.back());
}

void DiagnosticEngine::report(Diagnostic D) {
  if (D.Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (D.Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back(std::move(D));
  if (Consumer)
    Consumer->handleDiagnostic(Diags.back());
}

unsigned DiagnosticEngine::countInPhase(const std::string &Phase) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Phase == Phase)
      ++N;
  return N;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.str() << "\n";
}
