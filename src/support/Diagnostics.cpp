//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <ostream>

using namespace stq;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  if (!Phase.empty()) {
    Out += " [";
    Out += Phase;
    Out += "]";
  }
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Phase, std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back({Severity, Loc, std::move(Phase), std::move(Message)});
}

unsigned DiagnosticEngine::countInPhase(const std::string &Phase) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Phase == Phase)
      ++N;
  return N;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.str() << "\n";
}
