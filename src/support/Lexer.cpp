//===- Lexer.cpp ----------------------------------------------------------===//

#include "support/Lexer.h"

#include <cassert>
#include <cctype>

using namespace stq;

const char *stq::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Ellipsis:
    return "'...'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::FatArrow:
    return "'=>'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Tilde:
    return "'~'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

void Lexer::error(SourceLoc Loc, const std::string &Message) {
  ++ErrorCount;
  if (ErrorCount > MaxLexErrors)
    return;
  if (ErrorCount == MaxLexErrors) {
    Diags.error(Loc, "lex",
                "too many lexical errors; suppressing further diagnostics");
    return;
  }
  Diags.error(Loc, "lex", Message);
}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> Out;
  while (!atEnd())
    lexToken(Out);
  Token Eof;
  Eof.Kind = TokenKind::EndOfFile;
  Eof.Loc = loc();
  Out.push_back(Eof);
  return Out;
}

static Token makeTok(TokenKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

void Lexer::lexToken(std::vector<Token> &Out) {
  SourceLoc Start = loc();
  char C = advance();
  switch (C) {
  case ' ':
  case '\t':
  case '\r':
  case '\n':
    return;
  case '(':
    Out.push_back(makeTok(TokenKind::LParen, Start));
    return;
  case ')':
    Out.push_back(makeTok(TokenKind::RParen, Start));
    return;
  case '{':
    Out.push_back(makeTok(TokenKind::LBrace, Start));
    return;
  case '}':
    Out.push_back(makeTok(TokenKind::RBrace, Start));
    return;
  case '[':
    Out.push_back(makeTok(TokenKind::LBracket, Start));
    return;
  case ']':
    Out.push_back(makeTok(TokenKind::RBracket, Start));
    return;
  case ';':
    Out.push_back(makeTok(TokenKind::Semi, Start));
    return;
  case ',':
    Out.push_back(makeTok(TokenKind::Comma, Start));
    return;
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      Out.push_back(makeTok(TokenKind::Ellipsis, Start));
      return;
    }
    Out.push_back(makeTok(TokenKind::Dot, Start));
    return;
  case '&':
    Out.push_back(
        makeTok(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Start));
    return;
  case '|':
    Out.push_back(
        makeTok(match('|') ? TokenKind::PipePipe : TokenKind::Pipe, Start));
    return;
  case '!':
    Out.push_back(
        makeTok(match('=') ? TokenKind::BangEq : TokenKind::Bang, Start));
    return;
  case '=':
    if (match('='))
      Out.push_back(makeTok(TokenKind::EqEq, Start));
    else if (match('>'))
      Out.push_back(makeTok(TokenKind::FatArrow, Start));
    else
      Out.push_back(makeTok(TokenKind::Eq, Start));
    return;
  case '<':
    Out.push_back(
        makeTok(match('=') ? TokenKind::LessEq : TokenKind::Less, Start));
    return;
  case '>':
    Out.push_back(makeTok(
        match('=') ? TokenKind::GreaterEq : TokenKind::Greater, Start));
    return;
  case '+':
    Out.push_back(makeTok(TokenKind::Plus, Start));
    return;
  case '-':
    if (match('>'))
      Out.push_back(makeTok(TokenKind::Arrow, Start));
    else
      Out.push_back(makeTok(TokenKind::Minus, Start));
    return;
  case '*':
    Out.push_back(makeTok(TokenKind::Star, Start));
    return;
  case '/':
    if (peek() == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      return;
    }
    if (peek() == '*') {
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (atEnd()) {
        error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      return;
    }
    Out.push_back(makeTok(TokenKind::Slash, Start));
    return;
  case '%':
    Out.push_back(makeTok(TokenKind::Percent, Start));
    return;
  case ':':
    Out.push_back(makeTok(TokenKind::Colon, Start));
    return;
  case '?':
    Out.push_back(makeTok(TokenKind::Question, Start));
    return;
  case '~':
    Out.push_back(makeTok(TokenKind::Tilde, Start));
    return;
  case '"':
    lexString(Out, Start);
    return;
  case '\'':
    lexChar(Out, Start);
    return;
  default:
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber(Out, Start, C);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      lexIdentifier(Out, Start, C);
      return;
    }
    error(Start, std::string("unexpected character '") + C + "'");
    return;
  }
}

void Lexer::lexNumber(std::vector<Token> &Out, SourceLoc Start, char First) {
  int64_t Value = 0;
  if (First == '0' && (peek() == 'x' || peek() == 'X')) {
    advance();
    bool AnyDigit = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      int Digit = std::isdigit(static_cast<unsigned char>(D))
                      ? D - '0'
                      : std::tolower(static_cast<unsigned char>(D)) - 'a' + 10;
      Value = Value * 16 + Digit;
      AnyDigit = true;
    }
    if (!AnyDigit)
      error(Start, "hex literal requires at least one digit");
  } else {
    Value = First - '0';
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
  }
  Token T;
  T.Kind = TokenKind::IntLiteral;
  T.Loc = Start;
  T.IntValue = Value;
  Out.push_back(T);
}

void Lexer::lexIdentifier(std::vector<Token> &Out, SourceLoc Start,
                          char First) {
  std::string Text(1, First);
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();
  Token T;
  T.Kind = TokenKind::Identifier;
  T.Loc = Start;
  T.Text = std::move(Text);
  Out.push_back(T);
}

char Lexer::lexEscape() {
  if (atEnd())
    return '\\';
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    error(loc(), std::string("unknown escape sequence '\\") + C + "'");
    return C;
  }
}

void Lexer::lexString(std::vector<Token> &Out, SourceLoc Start) {
  std::string Text;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\n') {
      error(Start, "unterminated string literal");
      break;
    }
    Text += (C == '\\') ? lexEscape() : C;
  }
  if (!atEnd() && peek() == '"')
    advance();
  else if (atEnd())
    error(Start, "unterminated string literal");
  Token T;
  T.Kind = TokenKind::StringLiteral;
  T.Loc = Start;
  T.Text = std::move(Text);
  Out.push_back(T);
}

void Lexer::lexChar(std::vector<Token> &Out, SourceLoc Start) {
  char Value = '\0';
  if (atEnd()) {
    error(Start, "unterminated character literal");
  } else {
    char C = advance();
    Value = (C == '\\') ? lexEscape() : C;
    if (!match('\''))
      error(Start, "unterminated character literal");
  }
  Token T;
  T.Kind = TokenKind::CharLiteral;
  T.Loc = Start;
  T.IntValue = Value;
  T.Text = std::string(1, Value);
  Out.push_back(T);
}
