//===- PaperEval.cpp ------------------------------------------------------===//

#include "eval/PaperEval.h"

#include "frontend/Frontend.h"
#include "qual/QualParser.h"
#include "support/Json.h"

#include <chrono>
#include <iomanip>
#include <set>
#include <sstream>

using namespace stq;
using namespace stq::eval;

ProgramSpec stq::eval::specFromCorpus(const workloads::CorpusProgram &C) {
  ProgramSpec Spec;
  Spec.Name = C.Name;
  Spec.Kind = C.Kind;
  Spec.QualFileText = C.QualFile;
  Spec.ExpectedErrors = C.ExpectedErrors;
  for (const auto &H : C.Prog.Headers)
    Spec.Files[H.Name] = H.Text;
  for (const auto &U : C.Prog.Units) {
    Spec.Files[U.Name] = U.Text;
    Spec.Units.push_back(U.Name);
  }
  return Spec;
}

namespace {

/// True when \p Path has a "lib" directory component: the paper's
/// alternate library headers, excluded from every table column.
bool isLibFile(const std::string &Path) {
  size_t At = 0;
  while (At < Path.size()) {
    size_t Sep = Path.find('/', At);
    size_t End = Sep == std::string::npos ? Path.size() : Sep;
    if (Path.compare(At, End - At, "lib") == 0)
      return true;
    if (Sep == std::string::npos)
      break;
    At = Sep + 1;
  }
  return false;
}

/// The originating file of a post-expansion line, or the TU name when the
/// line map has no entry (synthesized locations).
const std::string &fileOfLine(const frontend::TUnit &TU, unsigned Line) {
  if (const pp::LineInfo *I = TU.Pp.Map.info(Line))
    return TU.Pp.Map.file(*I);
  return TU.Name;
}

/// Collects every qualifier written anywhere in \p Ty (top level and
/// through pointees), tagged with its depth so keys stay unambiguous.
void collectQuals(const cminus::TypePtr &Ty, unsigned Depth,
                  std::vector<std::string> &Out) {
  if (!Ty)
    return;
  for (const std::string &Q : Ty->quals())
    Out.push_back(Q + "@" + std::to_string(Depth));
  if (Ty->isPointer())
    collectQuals(Ty->pointee(), Depth + 1, Out);
}

std::vector<std::string> qualsOf(const cminus::TypePtr &Ty) {
  std::vector<std::string> Out;
  collectQuals(Ty, 0, Out);
  return Out;
}

/// Per-program AST counting state: annotation keys are deduplicated
/// across TUs (a prototype in a shared header and its definition are one
/// annotation, exactly as one edit wrote them).
struct Counter {
  std::set<std::string> Seen;
  std::set<std::string> SinkFns;
  unsigned Annotations = 0;
  unsigned Casts = 0;
  unsigned PrintfCalls = 0;

  void addKey(const std::string &Key) {
    if (Seen.insert(Key).second)
      ++Annotations;
  }

  void countExpr(const cminus::Expr *E);
  void countLValue(const cminus::LValue *LV);
  void countStmt(const cminus::Stmt *S, const std::string &Fn);
};

void Counter::countLValue(const cminus::LValue *LV) {
  if (LV && LV->isMem())
    countExpr(LV->Addr);
}

void Counter::countExpr(const cminus::Expr *E) {
  using cminus::Expr;
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::StrConst:
  case Expr::Kind::NullConst:
  case Expr::Kind::SizeofType:
    return;
  case Expr::Kind::LValRead:
    countLValue(static_cast<const cminus::LValReadExpr *>(E)->LV);
    return;
  case Expr::Kind::AddrOf:
    countLValue(static_cast<const cminus::AddrOfExpr *>(E)->LV);
    return;
  case Expr::Kind::Unary:
    countExpr(static_cast<const cminus::UnaryExpr *>(E)->Sub);
    return;
  case Expr::Kind::Binary: {
    auto *B = static_cast<const cminus::BinaryExpr *>(E);
    countExpr(B->LHS);
    countExpr(B->RHS);
    return;
  }
  case Expr::Kind::Cast: {
    auto *C = static_cast<const cminus::CastExpr *>(E);
    if (!qualsOf(C->Target).empty())
      ++Casts;
    countExpr(C->Sub);
    return;
  }
  case Expr::Kind::Call: {
    auto *C = static_cast<const cminus::CallExpr *>(E);
    if (SinkFns.count(C->CalleeName))
      ++PrintfCalls;
    for (const cminus::Expr *A : C->Args)
      countExpr(A);
    return;
  }
  }
}

void Counter::countStmt(const cminus::Stmt *S, const std::string &Fn) {
  using cminus::Stmt;
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const cminus::Stmt *Sub :
         static_cast<const cminus::BlockStmt *>(S)->Stmts)
      countStmt(Sub, Fn);
    return;
  case Stmt::Kind::Decl: {
    const cminus::VarDecl *V = static_cast<const cminus::DeclStmt *>(S)->Var;
    for (const std::string &Q : qualsOf(V->DeclaredTy))
      addKey("local|" + Fn + "|" + V->Name + "|" + Q);
    countExpr(V->Init);
    return;
  }
  case Stmt::Kind::Assign: {
    auto *A = static_cast<const cminus::AssignStmt *>(S);
    countLValue(A->LHS);
    countExpr(A->RHS);
    return;
  }
  case Stmt::Kind::CallStmt:
    countExpr(static_cast<const cminus::CallStmt *>(S)->Call);
    return;
  case Stmt::Kind::If: {
    auto *I = static_cast<const cminus::IfStmt *>(S);
    countExpr(I->Cond);
    countStmt(I->Then, Fn);
    countStmt(I->Else, Fn);
    return;
  }
  case Stmt::Kind::While: {
    auto *W = static_cast<const cminus::WhileStmt *>(S);
    countExpr(W->Cond);
    countStmt(W->Body, Fn);
    return;
  }
  case Stmt::Kind::For: {
    auto *F = static_cast<const cminus::ForStmt *>(S);
    countStmt(F->Init, Fn);
    countExpr(F->Cond);
    countStmt(F->Step, Fn);
    countStmt(F->Body, Fn);
    return;
  }
  case Stmt::Kind::Return:
    countExpr(static_cast<const cminus::ReturnStmt *>(S)->Value);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

/// A function whose signature takes an untainted char* parameter belongs
/// to the printf family Table 2 counts call sites of.
bool isUntaintedFormatFn(const cminus::FuncDecl *F) {
  for (const cminus::VarDecl *P : F->Params) {
    const cminus::TypePtr &Ty = P->DeclaredTy;
    if (Ty && Ty->isPointer() && Ty->pointee() && Ty->pointee()->isChar() &&
        Ty->hasQual("untainted"))
      return true;
  }
  return false;
}

void splitLines(const std::string &Text, std::vector<std::string> &Out) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    Out.push_back(Line);
}

} // namespace

EvalRow stq::eval::evalProgram(const ProgramSpec &Spec,
                               const SessionOptions &Base) {
  EvalRow Row;
  Row.Name = Spec.Name;
  Row.Kind = Spec.Kind;

  for (const auto &[Path, Text] : Spec.Files) {
    if (isLibFile(Path))
      continue;
    ++Row.Files;
    Row.Lines += workloads::countLines(Text);
  }

  std::vector<frontend::InputFile> Inputs;
  for (const std::string &Unit : Spec.Units) {
    auto It = Spec.Files.find(Unit);
    if (It == Spec.Files.end()) {
      Row.Diagnostics.push_back("stq-eval: missing unit '" + Unit + "'");
      return Row;
    }
    Inputs.push_back({Unit, It->second});
  }

  // The check: the same Session::checkFiles pipeline stqc drives, with
  // the corpus shipped as an in-memory closure so paths in diagnostics
  // stay corpus-relative regardless of where the tool runs.
  SessionOptions SOpts = Base;
  SOpts.Builtins.clear();
  SOpts.QualFiles.clear();
  SOpts.QualSources = {Spec.QualFileText};
  SOpts.IncludeDirs = Spec.IncludeDirs;
  SOpts.Defines.clear();
  SOpts.ShippedFiles = &Spec.Files;
  {
    Session S(SOpts);
    auto Start = std::chrono::steady_clock::now();
    Session::CheckFilesOutcome OutC = S.checkFiles(Inputs);
    Row.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();
    std::ostringstream Err;
    TextDiagnosticConsumer C(Err);
    for (const Diagnostic &D : S.diags().diagnostics())
      C.handleDiagnostic(D);
    splitLines(Err.str(), Row.Diagnostics);
    if (S.diags().hasErrors()) {
      Row.ExitCode = 2;
      return Row;
    }
    Row.CheckOk = true;
    Row.Derefs = OutC.Result.Stats.DerefSites;
    Row.AssignChecks = OutC.Result.Stats.AssignChecks;
    Row.RuntimeChecks = OutC.Result.RuntimeChecks.size();
    Row.Errors = OutC.Result.QualErrors;
    Row.ExitCode = OutC.Result.ok() ? 0 : 1;
  }

  // The table columns the checker does not already count: annotations,
  // qualifier casts, and printf-family call sites, from freshly compiled
  // ASTs over the same shipped closure.
  qual::QualifierSet Quals;
  DiagnosticEngine QDiags;
  if (!qual::parseQualifiers(Spec.QualFileText, Quals, QDiags))
    return Row;
  frontend::CompileOptions CO;
  CO.Pp.IncludeDirs = Spec.IncludeDirs;
  CO.Files = &Spec.Files;
  CO.QualNames = Quals.names();
  CO.RefQualNames = Quals.refNames();

  std::vector<frontend::TUnit> TUs;
  for (const frontend::InputFile &In : Inputs) {
    DiagnosticEngine D;
    TUs.push_back(frontend::compileUnit(In.Name, In.Text, CO, D));
  }

  Counter Cnt;
  for (const frontend::TUnit &TU : TUs) {
    if (!TU.Program)
      continue;
    for (const cminus::FuncDecl *F : TU.Program->Functions)
      if (isUntaintedFormatFn(F))
        Cnt.SinkFns.insert(F->Name);
  }
  for (const frontend::TUnit &TU : TUs) {
    if (!TU.Program)
      continue;
    for (const cminus::StructDef *SD : TU.Program->Structs) {
      if (isLibFile(fileOfLine(TU, SD->Loc.Line)))
        continue;
      for (const cminus::StructDef::Field &F : SD->Fields)
        for (const std::string &Q : qualsOf(F.Ty))
          Cnt.addKey("struct|" + SD->Name + "|" + F.Name + "|" + Q);
    }
    for (const cminus::VarDecl *G : TU.Program->Globals) {
      if (isLibFile(fileOfLine(TU, G->Loc.Line)))
        continue;
      for (const std::string &Q : qualsOf(G->DeclaredTy))
        Cnt.addKey("global|" + G->Name + "|" + Q);
    }
    for (const cminus::FuncDecl *F : TU.Program->Functions) {
      if (isLibFile(fileOfLine(TU, F->Loc.Line)))
        continue;
      for (size_t I = 0; I < F->Params.size(); ++I)
        for (const std::string &Q : qualsOf(F->Params[I]->DeclaredTy))
          Cnt.addKey("param|" + F->Name + "|" + std::to_string(I) + "|" + Q);
      for (const std::string &Q : qualsOf(F->RetTy))
        Cnt.addKey("ret|" + F->Name + "|" + Q);
      if (F->Body)
        Cnt.countStmt(F->Body, F->Name);
    }
  }
  Row.Annotations = Cnt.Annotations;
  Row.Casts = Cnt.Casts;
  Row.PrintfCalls = Cnt.PrintfCalls;
  return Row;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

void renderTableSection(std::ostringstream &OS, const char *Title,
                        const char *SiteColumn, const std::string &Kind,
                        const std::vector<EvalRow> &Rows) {
  OS << Title << ":\n";
  OS << std::left << std::setw(12) << "program" << std::right << std::setw(7)
     << "files" << std::setw(8) << "lines" << std::setw(9) << SiteColumn
     << std::setw(9) << "annots" << std::setw(8) << "casts" << std::setw(9)
     << "errors" << "\n";
  for (const EvalRow &R : Rows) {
    if (R.Kind != Kind)
      continue;
    unsigned Sites = Kind == "table1" ? R.Derefs : R.PrintfCalls;
    OS << std::left << std::setw(12) << R.Name << std::right << std::setw(7)
       << R.Files << std::setw(8) << R.Lines << std::setw(9) << Sites
       << std::setw(9) << R.Annotations << std::setw(8) << R.Casts
       << std::setw(9) << R.Errors << "\n";
  }
}

} // namespace

std::string stq::eval::renderTables(const std::vector<EvalRow> &Rows) {
  std::ostringstream OS;
  OS << "stq-eval-tables-v1\n\n";
  renderTableSection(OS, "Table 1 (nonnull)", "derefs", "table1", Rows);
  OS << "\n";
  renderTableSection(OS, "Table 2 (untainted)", "calls", "table2", Rows);
  OS << "\nDiagnostics:\n";
  for (const EvalRow &R : Rows) {
    if (R.Diagnostics.empty()) {
      OS << R.Name << ": none\n";
      continue;
    }
    OS << R.Name << ":\n";
    for (const std::string &D : R.Diagnostics)
      OS << "  " << D << "\n";
  }
  return OS.str();
}

std::string stq::eval::renderJson(const std::vector<EvalRow> &Rows,
                                  bool Timings) {
  json::Value Doc = json::Value::object();
  Doc.set("schema", json::Value::str("stq-eval-tables-v1"));
  json::Value Programs = json::Value::array();
  for (const EvalRow &R : Rows) {
    json::Value E = json::Value::object();
    E.set("name", json::Value::str(R.Name));
    E.set("kind", json::Value::str(R.Kind));
    E.set("files", json::Value::integer(R.Files));
    E.set("lines", json::Value::integer(R.Lines));
    E.set("dereference_sites", json::Value::integer(R.Derefs));
    E.set("printf_calls", json::Value::integer(R.PrintfCalls));
    E.set("annotations", json::Value::integer(R.Annotations));
    E.set("casts", json::Value::integer(R.Casts));
    E.set("assignment_checks", json::Value::integer(R.AssignChecks));
    E.set("runtime_checks", json::Value::integer(R.RuntimeChecks));
    E.set("errors", json::Value::integer(R.Errors));
    E.set("exit_code", json::Value::integer(R.ExitCode));
    json::Value Diags = json::Value::array();
    for (const std::string &D : R.Diagnostics)
      Diags.push(json::Value::str(D));
    E.set("diagnostics", std::move(Diags));
    if (Timings)
      E.set("seconds", json::Value::number(R.Seconds));
    Programs.push(std::move(E));
  }
  Doc.set("programs", std::move(Programs));
  return Doc.write() + "\n";
}

std::string stq::eval::renderRow(const EvalRow &Row) {
  std::ostringstream OS;
  OS << "stq-eval-row-v1\n";
  OS << "name " << Row.Name << "\n";
  OS << "kind " << Row.Kind << "\n";
  OS << "ok " << (Row.CheckOk ? 1 : 0) << "\n";
  OS << "files " << Row.Files << "\n";
  OS << "lines " << Row.Lines << "\n";
  OS << "derefs " << Row.Derefs << "\n";
  OS << "calls " << Row.PrintfCalls << "\n";
  OS << "annots " << Row.Annotations << "\n";
  OS << "casts " << Row.Casts << "\n";
  OS << "assign_checks " << Row.AssignChecks << "\n";
  OS << "runtime_checks " << Row.RuntimeChecks << "\n";
  OS << "errors " << Row.Errors << "\n";
  OS << "exit " << Row.ExitCode << "\n";
  for (const std::string &D : Row.Diagnostics)
    OS << "diag " << D << "\n";
  OS << "end\n";
  return OS.str();
}

bool stq::eval::parseRow(const std::string &Text, EvalRow &Out,
                         std::string &Error) {
  Out = EvalRow();
  std::vector<std::string> Lines;
  splitLines(Text, Lines);
  if (Lines.empty() || Lines[0] != "stq-eval-row-v1") {
    Error = "missing stq-eval-row-v1 header";
    return false;
  }
  bool Ended = false;
  for (size_t I = 1; I < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    if (L == "end") {
      Ended = true;
      break;
    }
    size_t Sp = L.find(' ');
    std::string Key = L.substr(0, Sp);
    std::string Val = Sp == std::string::npos ? "" : L.substr(Sp + 1);
    auto Num = [&](unsigned &Dst) { Dst = std::stoul(Val); };
    try {
      if (Key == "name")
        Out.Name = Val;
      else if (Key == "kind")
        Out.Kind = Val;
      else if (Key == "ok")
        Out.CheckOk = Val == "1";
      else if (Key == "files")
        Num(Out.Files);
      else if (Key == "lines")
        Num(Out.Lines);
      else if (Key == "derefs")
        Num(Out.Derefs);
      else if (Key == "calls")
        Num(Out.PrintfCalls);
      else if (Key == "annots")
        Num(Out.Annotations);
      else if (Key == "casts")
        Num(Out.Casts);
      else if (Key == "assign_checks")
        Num(Out.AssignChecks);
      else if (Key == "runtime_checks")
        Num(Out.RuntimeChecks);
      else if (Key == "errors")
        Num(Out.Errors);
      else if (Key == "exit")
        Out.ExitCode = std::stoi(Val);
      else if (Key == "diag")
        Out.Diagnostics.push_back(Val);
      else {
        Error = "unknown row key '" + Key + "'";
        return false;
      }
    } catch (const std::exception &) {
      Error = "bad numeric value in row key '" + Key + "'";
      return false;
    }
  }
  if (!Ended) {
    Error = "truncated row (no 'end')";
    return false;
  }
  return true;
}

std::string stq::eval::diffGolden(const std::string &Golden,
                                  const std::string &Actual) {
  if (Golden == Actual)
    return "";
  std::vector<std::string> Want, Got;
  splitLines(Golden, Want);
  splitLines(Actual, Got);
  std::ostringstream OS;
  size_t N = std::max(Want.size(), Got.size());
  unsigned Shown = 0;
  for (size_t I = 0; I < N; ++I) {
    const std::string *W = I < Want.size() ? &Want[I] : nullptr;
    const std::string *G = I < Got.size() ? &Got[I] : nullptr;
    if (W && G && *W == *G)
      continue;
    if (++Shown > 40) {
      OS << "  ... (further differences suppressed)\n";
      break;
    }
    OS << "  line " << (I + 1) << ":\n";
    if (W)
      OS << "  - " << *W << "\n";
    if (G)
      OS << "  + " << *G << "\n";
  }
  return OS.str();
}
