//===- PaperEval.h - Table 1/Table 2 replication harness --------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper-fidelity evaluation harness: checks a §6 corpus program (a
/// real header+TU layout under tests/corpus/c/) through the multi-TU
/// front end and derives the paper's table columns from the result —
/// annotation and qualifier-cast counts from the linked ASTs (library
/// headers under lib/ excluded, exactly as the paper excludes its
/// alternate library headers), printf-family call sites, and the
/// checker's own dereference/check/error counters from the verdict.
///
/// Everything here is deterministic and timing-free except
/// EvalRow::Seconds, which never enters a rendered table unless the
/// caller opts in — that is what lets stq-eval's output be diffed
/// against golden .expected files and lets the one-shot tool and the
/// stqd `eval` command produce byte-identical documents.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_EVAL_PAPEREVAL_H
#define STQ_EVAL_PAPEREVAL_H

#include "driver/Session.h"
#include "workloads/Workloads.h"

#include <string>
#include <vector>

namespace stq::eval {

/// One evaluatable corpus program: the unit list (check order), every
/// corpus file keyed by its corpus-relative name (units and headers; the
/// daemon ships exactly this map), and the qualifier-DSL source.
struct ProgramSpec {
  std::string Name;
  std::string Kind; ///< "table1" (nonnull) or "table2" (untainted).
  std::vector<std::string> Units;
  pp::FileMap Files;
  std::vector<std::string> IncludeDirs = {"include", "lib"};
  std::string QualFileText;
  unsigned ExpectedErrors = 0;
};

/// Builds the spec for a generated corpus (the generator is the source of
/// truth; the checked-in tree must match it byte-for-byte).
ProgramSpec specFromCorpus(const workloads::CorpusProgram &C);

/// One row of the replicated tables plus the raw check outputs.
struct EvalRow {
  std::string Name;
  std::string Kind;
  unsigned Files = 0;       ///< Corpus files excluding lib/ headers.
  unsigned Lines = 0;       ///< Non-blank lines excluding lib/ headers.
  unsigned Annotations = 0; ///< Distinct as-written qualifier annotations.
  unsigned Casts = 0;       ///< Qualifier casts in function bodies.
  unsigned PrintfCalls = 0; ///< Calls to untainted-format functions.
  unsigned Derefs = 0;        ///< Checker: dereference sites.
  unsigned AssignChecks = 0;  ///< Checker: assignment checks.
  unsigned RuntimeChecks = 0; ///< Checker: residual run-time checks.
  unsigned Errors = 0;        ///< Checker: qualifier errors.
  int ExitCode = 2;
  /// The check's rendered diagnostics, one per line (file-attributed).
  std::vector<std::string> Diagnostics;
  /// Wall-clock seconds of the checkFiles call. Excluded from canonical
  /// renderings so they stay byte-stable.
  double Seconds = 0.0;
  /// False when the front end failed outright (parse/link errors).
  bool CheckOk = false;
};

/// Checks \p Spec through Session::checkFiles and counts the table
/// columns from freshly compiled ASTs. \p Base carries jobs and any
/// process-shared state (the daemon's pool/cache); qualifier sources,
/// include dirs, and the shipped file map are taken from \p Spec.
EvalRow evalProgram(const ProgramSpec &Spec, const SessionOptions &Base);

/// Canonical multi-program document (schema stq-eval-tables-v1): the
/// Table 1 and Table 2 sections in input order followed by per-program
/// diagnostics. Timing-free and byte-stable.
std::string renderTables(const std::vector<EvalRow> &Rows);

/// Canonical JSON document (schema stq-eval-tables-v1). \p Timings adds
/// per-program "seconds" members and is never used for golden diffs.
std::string renderJson(const std::vector<EvalRow> &Rows, bool Timings);

/// The stq-eval-row-v1 key/value serialization the stqd `eval` command
/// returns; parseRow inverts it. Client-side rendering of parsed rows is
/// what makes `stq-eval --server` byte-identical to one-shot.
std::string renderRow(const EvalRow &Row);
bool parseRow(const std::string &Text, EvalRow &Out, std::string &Error);

/// Line-by-line golden comparison: empty when equal, otherwise a
/// readable diff ("-" golden, "+" actual) suitable for CI logs.
std::string diffGolden(const std::string &Golden, const std::string &Actual);

} // namespace stq::eval

#endif // STQ_EVAL_PAPEREVAL_H
