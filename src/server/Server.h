//===- Server.h - The stqd qualifier-checking daemon ------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived checking server behind the `stqd` tool. One process
/// holds the expensive state warm across requests — the persistent prover
/// cache, the default qualifier set, and one worker pool — while every
/// request still runs in a fresh stq::Session, so requests cannot observe
/// each other's diagnostics or per-request metrics.
///
/// Shape (docs/SERVER.md):
///
///   accept loop ──▶ bounded RequestQueue ──▶ N request workers
///        │ (full: answer `busy`, close)            │
///        └── shutdown flag ◀── SIGTERM / `shutdown` request
///
/// Each connection carries one stq-rpc-v1 request line and receives one
/// response line. Reads are bounded in bytes and time. Shutdown is a
/// graceful drain: the acceptor stops, queued and in-flight requests
/// finish, then the shared cache is saved atomically to --cache-file.
///
/// Observability: the server registry tracks `server.*` counters
/// (requests, rejected, errors, queue_depth, request_seconds) plus the
/// shared cache's `prover.cache.*` figures; a `status` request returns a
/// snapshot as an stq-metrics-v1 document.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SERVER_SERVER_H
#define STQ_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "support/Socket.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace stq::server {

struct ServerOptions {
  /// The Unix-domain socket path to listen on.
  std::string SocketPath;
  /// Request workers: how many requests execute concurrently.
  unsigned Workers = 2;
  /// Threads in the shared checking/proving pool that requests with
  /// jobs > 1 fan out on (0 = hardware concurrency).
  unsigned PoolThreads = 0;
  /// Accepted connections waiting for a worker; beyond this the server
  /// answers `busy` (explicit backpressure, never an unbounded queue).
  size_t QueueCapacity = 16;
  /// Inactivity timeout while reading one request line.
  int RequestTimeoutMs = 10000;
  /// Hard ceiling on one request line.
  size_t MaxRequestBytes = 16u << 20;
  /// Qualifier configuration for the shared default set, plus CacheFile:
  /// the persistent prover cache loaded at startup and saved on drain.
  SessionOptions Defaults;
};

/// The daemon. start() warms the shared state and spawns the workers;
/// serve() runs the accept loop until a shutdown is requested, then
/// drains. requestShutdown() is async-signal-safe.
class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Loads the default qualifier set and the persistent cache, binds the
  /// socket, and spawns the request workers. False (with \p Error) when
  /// the qualifier configuration is invalid or the socket cannot bind.
  bool start(std::string &Error);

  /// The accept loop. Returns 0 after a clean drain (cache saved), 1 when
  /// the final cache save failed.
  int serve();

  /// Flags the accept loop to stop after in-flight work. Callable from a
  /// signal handler (only touches an atomic).
  void requestShutdown() { ShutdownFlag.store(true, std::memory_order_relaxed); }
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_relaxed);
  }

  /// Answers one already-parsed request (the unit the workers run; public
  /// so tests can drive it without a socket).
  rpc::Response handleRequest(const rpc::Request &Req);

  stats::Registry &metrics() { return Metrics; }
  const qual::QualifierSet *defaultQualifiers() const { return DefaultQuals; }
  prover::ProverCache &proverCache() { return Cache; }
  checker::incremental::Engine &incrementalEngine() { return Incremental; }

private:
  void workerLoop();
  void handleConnection(UnixStream Conn);
  std::string statusReport(metrics::Format Format);

  ServerOptions Opts;
  UnixListener Listener;
  std::unique_ptr<ThreadPool> Pool;
  prover::ProverCache Cache;
  /// Warm state for `recheck`: the function-granular verdict store and
  /// signature snapshots, alive across requests (docs/SERVER.md).
  checker::incremental::Engine Incremental;
  /// A boot Session owns the default qualifier set (loaded once; shared
  /// read-only into every request that does not configure its own).
  std::unique_ptr<Session> Boot;
  const qual::QualifierSet *DefaultQuals = nullptr;
  stats::Registry Metrics;
  RequestQueue Queue;
  std::vector<std::thread> Workers;
  std::atomic<bool> ShutdownFlag{false};
  bool Started = false;
};

} // namespace stq::server

#endif // STQ_SERVER_SERVER_H
