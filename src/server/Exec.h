//===- Exec.h - The shared stqc invocation executor -------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One parsed `stqc` subcommand, executed to byte buffers. Both front ends
/// run the same executeInvocation(): the one-shot CLI prints Out/Err
/// verbatim and the `stqd` worker ships them in the RPC response, so a
/// request answered by the server is byte-identical to the same command
/// run locally — the differential test in tests/test_server.cpp and the
/// CI smoke job both enforce this.
///
/// The server passes a SharedContext carrying its warm process-wide state
/// (prover cache, default qualifier set, worker pool); the one-shot CLI
/// passes none and the Session owns everything, exactly as before.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SERVER_EXEC_H
#define STQ_SERVER_EXEC_H

#include "driver/Session.h"

#include <string>

namespace stq::server {

/// One fully-parsed `stqc` invocation: the subcommand plus everything that
/// configures a Session. Built from argv by stqc and from a decoded
/// stq-rpc-v1 request by stqd.
struct Invocation {
  /// "prove", "check", "recheck", "run", "infer", or "eval".
  std::string Command;
  /// eval: the corpus program's name and table kind ("table1"/"table2"),
  /// echoed into the stq-eval-row-v1 payload the command returns. The
  /// stq-eval client does all table/JSON rendering itself from parsed
  /// rows, which is what keeps `--server` output byte-identical to
  /// one-shot.
  std::string EvalName;
  std::string EvalKind;
  /// Program source text for check/recheck/run/infer. Input files are read
  /// by the *client* (the daemon never touches caller paths).
  std::string Source;
  bool HasSource = false;
  /// Multi-input mode (check/recheck): the translation units, read by the
  /// client in command-line order. Non-empty selects the multi-TU front
  /// end (preprocess + parse + link per Session::checkFiles); Source is
  /// then unused.
  std::vector<frontend::InputFile> Inputs;
  /// Multi-input mode: the shipped include closure. When HasFiles is set,
  /// `#include` resolution reads this map instead of the filesystem — the
  /// daemon path; the one-shot CLI resolves from disk.
  pp::FileMap Files;
  bool HasFiles = false;
  SessionOptions Session;
  bool Metrics = false;
  metrics::Format MetricsFormat = metrics::Format::Text;
  bool JsonDiagnostics = false;
  /// infer: emit the versioned stq-inference-v1 JSON document instead of
  /// the human-readable text report. Both renderings are produced by this
  /// executor, so one-shot stqc and the stqd infer RPC are byte-identical.
  bool InferJson = false;
  /// Capture a Chrome trace of this invocation into ExecResult::TraceJson.
  bool Trace = false;
};

/// The daemon's warm process-wide state, shared into each per-request
/// Session. All-null (the default) means the Session owns everything.
struct SharedContext {
  prover::ProverCache *Cache = nullptr;
  /// Shared only when the invocation does not configure its own qualifier
  /// set (no builtins/files/sources), so explicit requests still load
  /// exactly what they asked for.
  const qual::QualifierSet *Qualifiers = nullptr;
  ThreadPool *Pool = nullptr;
  /// The long-lived incremental engine for `recheck` (verdict store +
  /// signature snapshots). Safe to share across arbitrary requests: store
  /// keys fold the full qualifier environment, so differently-configured
  /// requests can never serve each other's verdicts. Null: the per-request
  /// Session owns a cold engine (recheck degrades to a full check).
  checker::incremental::Engine *Incremental = nullptr;
};

/// Everything an invocation produced, as bytes plus the exit code.
struct ExecResult {
  std::string Out; ///< The stdout payload.
  std::string Err; ///< The stderr payload (diagnostics).
  std::string TraceJson; ///< Chrome trace document, when Invocation::Trace.
  int ExitCode = 2;
};

/// True for the subcommands executeInvocation() understands.
bool knownCommand(const std::string &Command);

/// Runs \p Inv against a fresh Session (wired to \p Shared when given).
/// Thread-safe: concurrent invocations only share what \p Shared shares,
/// and traced invocations serialize on the process-global tracer.
ExecResult executeInvocation(const Invocation &Inv,
                             const SharedContext &Shared = {});

} // namespace stq::server

#endif // STQ_SERVER_EXEC_H
