//===- Server.cpp ---------------------------------------------------------===//

#include "server/Server.h"

#include "support/MetricsEmitter.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace stq;
using namespace stq::server;

Server::Server(ServerOptions Options)
    : Opts(std::move(Options)), Queue(Opts.QueueCapacity) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
}

Server::~Server() {
  // serve() normally drains; cover the start()-without-serve() paths.
  Queue.close();
  for (std::thread &W : Workers)
    W.join();
}

bool Server::start(std::string &Error) {
  // Warm state 1: the default qualifier set, loaded once through a boot
  // Session and shared read-only with every request that does not ask for
  // its own set.
  SessionOptions BootOpts = Opts.Defaults;
  BootOpts.CacheFile.clear(); // the server owns cache persistence
  Boot = std::make_unique<Session>(BootOpts);
  if (!Boot->loadQualifiers()) {
    std::ostringstream Msg;
    TextDiagnosticConsumer C(Msg);
    for (const Diagnostic &D : Boot->diags().diagnostics())
      C.handleDiagnostic(D);
    Error = "invalid qualifier configuration:\n" + Msg.str();
    return false;
  }
  DefaultQuals = &Boot->qualifiers();

  // Warm state 2: the persistent prover cache (missing file = cold start;
  // stale or corrupt files are discarded by load(), never trusted).
  if (!Opts.Defaults.CacheFile.empty()) {
    std::ifstream Probe(Opts.Defaults.CacheFile);
    if (Probe) {
      Probe.close();
      std::string CacheError;
      if (!Cache.load(Opts.Defaults.CacheFile, &CacheError))
        std::fprintf(stderr, "stqd: prover cache file: %s\n",
                     CacheError.c_str());
    }
  }
  Metrics.set("server.cache_entries_loaded", Cache.stats().Entries);

  // Warm state 3: the shared checking/proving pool.
  unsigned PoolThreads =
      Opts.PoolThreads == 0 ? ThreadPool::defaultJobs() : Opts.PoolThreads;
  Pool = std::make_unique<ThreadPool>(PoolThreads);
  Metrics.set("server.pool_threads", PoolThreads);
  Metrics.set("server.workers", Opts.Workers);

  if (!Listener.listen(Opts.SocketPath, /*Backlog=*/64, Error))
    return false;

  Workers.reserve(Opts.Workers);
  for (unsigned I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Started = true;
  return true;
}

int Server::serve() {
  // Poll-accept so the loop observes the shutdown flag (set by SIGTERM or
  // a `shutdown` request) between connections.
  while (!shutdownRequested()) {
    std::string Error;
    UnixStream Conn = Listener.accept(/*TimeoutMs=*/200, Error);
    if (!Conn.valid()) {
      if (!Error.empty()) {
        std::fprintf(stderr, "stqd: accept: %s\n", Error.c_str());
        Metrics.add("server.errors", 1);
      }
      continue;
    }
    if (!Queue.push(std::move(Conn))) {
      // Bounded queue at capacity: explicit backpressure. Conn is still
      // ours (push only consumes on success).
      Metrics.add("server.rejected", 1);
      rpc::Response Busy;
      Busy.Status = "busy";
      Busy.ExitCode = 6;
      Busy.Error = "server at capacity (queue of " +
                   std::to_string(Opts.QueueCapacity) + " is full); retry";
      std::string WriteError;
      Conn.writeAll(rpc::encodeResponse(Busy) + "\n", WriteError);
      continue;
    }
    Metrics.setGauge("server.queue_depth", static_cast<double>(Queue.depth()));
  }

  // Graceful drain: stop accepting, let queued + in-flight requests
  // finish, then persist the warm cache atomically.
  Listener.close();
  Queue.close();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();

  int Exit = 0;
  if (!Opts.Defaults.CacheFile.empty()) {
    std::string Error;
    if (!Cache.save(Opts.Defaults.CacheFile, &Error)) {
      std::fprintf(stderr, "stqd: prover cache file: %s\n", Error.c_str());
      Exit = 1;
    }
  }
  return Exit;
}

void Server::workerLoop() {
  UnixStream Conn;
  while (Queue.pop(Conn)) {
    handleConnection(std::move(Conn));
    Metrics.setGauge("server.queue_depth", static_cast<double>(Queue.depth()));
  }
}

void Server::handleConnection(UnixStream Conn) {
  std::string Line, Error;
  if (!Conn.readLine(Line, Opts.MaxRequestBytes, Opts.RequestTimeoutMs,
                     Error)) {
    // Timed out, oversized, or closed before a full line: answer with a
    // protocol error when the peer is still there.
    Metrics.add("server.errors", 1);
    rpc::Response R;
    R.Status = "error";
    R.ExitCode = 6;
    R.Error = Error.empty() ? "connection closed before a request line"
                            : Error;
    std::string WriteError;
    Conn.writeAll(rpc::encodeResponse(R) + "\n", WriteError);
    return;
  }

  rpc::Request Req;
  rpc::Response Resp;
  if (!rpc::parseRequest(Line, Req, Error)) {
    Metrics.add("server.errors", 1);
    Resp.Status = "error";
    Resp.ExitCode = 6;
    Resp.Error = Error;
  } else {
    Resp = handleRequest(Req);
  }
  std::string WriteError;
  if (!Conn.writeAll(rpc::encodeResponse(Resp) + "\n", WriteError))
    Metrics.add("server.errors", 1);
}

rpc::Response Server::handleRequest(const rpc::Request &Req) {
  rpc::Response Resp;
  Resp.Id = Req.Id;
  Metrics.add("server.requests", 1);
  stats::ScopedTimer Timer(&Metrics, "server.request_seconds");

  if (Req.Inv.Command == "status") {
    Resp.Out = statusReport(Req.Inv.Metrics ? Req.Inv.MetricsFormat
                                            : metrics::Format::Text);
    return Resp;
  }
  if (Req.Inv.Command == "shutdown") {
    requestShutdown();
    return Resp;
  }

  SharedContext Ctx;
  Ctx.Cache = &Cache;
  Ctx.Qualifiers = DefaultQuals;
  Ctx.Pool = Pool.get();
  Ctx.Incremental = &Incremental;
  ExecResult R = executeInvocation(Req.Inv, Ctx);
  Resp.ExitCode = R.ExitCode;
  Resp.Out = std::move(R.Out);
  Resp.Err = std::move(R.Err);
  Resp.TraceJson = std::move(R.TraceJson);
  return Resp;
}

std::string Server::statusReport(metrics::Format Format) {
  prover::CacheStats CS = Cache.stats();
  Metrics.set("prover.cache.lookups", CS.Lookups);
  Metrics.set("prover.cache.hits", CS.Hits);
  Metrics.set("prover.cache.misses", CS.Misses);
  Metrics.set("prover.cache.insertions", CS.Insertions);
  Metrics.set("prover.cache.entries", CS.Entries);
  Metrics.set("prover.cache.persist_loaded", CS.PersistLoaded);
  Metrics.set("prover.cache.persist_hits", CS.PersistHits);
  Metrics.setGauge("prover.cache.hit_rate", CS.hitRate());
  Metrics.setGauge("prover.cache.seconds_saved", CS.SecondsSaved);
  Metrics.set("qual.loaded", DefaultQuals ? DefaultQuals->all().size() : 0);
  Metrics.set("incremental.store.entries", Incremental.entries());
  Metrics.set("incremental.store.evictions", Incremental.evictions());
  Metrics.setGauge("server.queue_depth", static_cast<double>(Queue.depth()));

  std::ostringstream OS;
  metrics::MetricsEmitter::create(Format)->emit(Metrics.snapshot(), OS);
  return OS.str();
}
