//===- RequestQueue.h - Bounded connection queue ----------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded handoff between the stqd accept loop and its request
/// workers. Explicit backpressure: push() on a full queue fails
/// immediately (the acceptor then answers `busy` and closes) rather than
/// blocking the accept loop or queueing unboundedly. close() wakes every
/// waiting worker; queued connections drain first, so a graceful shutdown
/// still answers everything that was accepted.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SERVER_REQUESTQUEUE_H
#define STQ_SERVER_REQUESTQUEUE_H

#include "support/Socket.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace stq::server {

/// A bounded MPMC queue of accepted connections.
class RequestQueue {
public:
  explicit RequestQueue(size_t Capacity) : Capacity(Capacity) {}

  /// Enqueues \p Conn. False when the queue is at capacity or closed; the
  /// caller still owns the connection and should answer `busy`.
  bool push(UnixStream &&Conn);

  /// Blocks for the next connection. False when the queue is closed and
  /// drained — the worker should exit.
  bool pop(UnixStream &Out);

  /// Rejects further pushes and wakes every blocked pop(); already-queued
  /// connections are still handed out.
  void close();

  size_t depth() const;

private:
  mutable std::mutex M;
  std::condition_variable Cv;
  std::deque<UnixStream> Q;
  size_t Capacity;
  bool Closed = false;
};

} // namespace stq::server

#endif // STQ_SERVER_REQUESTQUEUE_H
