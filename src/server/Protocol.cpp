//===- Protocol.cpp -------------------------------------------------------===//

#include "server/Protocol.h"

#include "prover/ProverCache.h"
#include "support/Json.h"

using namespace stq;
using namespace stq::server;
using namespace stq::server::rpc;

bool stq::server::rpc::isControlCommand(const std::string &Command) {
  return Command == "status" || Command == "shutdown";
}

std::string stq::server::rpc::encodeRequest(const Request &R) {
  json::Value Doc = json::Value::object();
  Doc.set("v", json::Value::str(Version));
  if (!R.Id.empty())
    Doc.set("id", json::Value::str(R.Id));
  Doc.set("command", json::Value::str(R.Inv.Command));
  if (R.Inv.HasSource)
    Doc.set("source", json::Value::str(R.Inv.Source));
  if (!R.Inv.Inputs.empty()) {
    json::Value A = json::Value::array();
    for (const frontend::InputFile &In : R.Inv.Inputs) {
      json::Value E = json::Value::object();
      E.set("name", json::Value::str(In.Name));
      E.set("text", json::Value::str(In.Text));
      A.push(std::move(E));
    }
    Doc.set("inputs", std::move(A));
  }
  if (R.Inv.HasFiles) {
    // The client-collected include closure: the daemon resolves #include
    // from this map and never touches client paths.
    json::Value F = json::Value::object();
    for (const auto &[Path, Text] : R.Inv.Files)
      F.set(Path, json::Value::str(Text));
    Doc.set("files", std::move(F));
  }

  json::Value Opts = json::Value::object();
  const SessionOptions &S = R.Inv.Session;
  if (!S.Builtins.empty()) {
    json::Value A = json::Value::array();
    for (const std::string &B : S.Builtins)
      A.push(json::Value::str(B));
    Opts.set("builtins", std::move(A));
  }
  if (!S.QualSources.empty()) {
    json::Value A = json::Value::array();
    for (const std::string &Src : S.QualSources)
      A.push(json::Value::str(Src));
    Opts.set("qualsources", std::move(A));
  }
  if (!S.Interp.EntryPoint.empty())
    Opts.set("entry", json::Value::str(S.Interp.EntryPoint));
  if (S.Backend != SessionOptions::ExecBackend::Vm)
    Opts.set("backend", json::Value::str("interp"));
  if (!S.VmElideChecks)
    Opts.set("elide_checks", json::Value::boolean(false));
  if (!S.IncrementalUnit.empty())
    Opts.set("unit", json::Value::str(S.IncrementalUnit));
  if (!S.IncludeDirs.empty()) {
    json::Value A = json::Value::array();
    for (const std::string &D : S.IncludeDirs)
      A.push(json::Value::str(D));
    Opts.set("include_dirs", std::move(A));
  }
  if (!S.Defines.empty()) {
    json::Value A = json::Value::array();
    for (const std::string &D : S.Defines)
      A.push(json::Value::str(D));
    Opts.set("defines", std::move(A));
  }
  if (S.Checker.FlowSensitiveNarrowing)
    Opts.set("flow_sensitive", json::Value::boolean(true));
  if (S.Jobs != 1)
    Opts.set("jobs", json::Value::integer(S.Jobs));
  if (S.WarmProverCache)
    Opts.set("warm_cache", json::Value::boolean(true));
  if (R.Inv.Metrics)
    Opts.set("metrics", json::Value::str(
                            R.Inv.MetricsFormat == metrics::Format::Json
                                ? "json"
                                : "text"));
  if (R.Inv.JsonDiagnostics)
    Opts.set("diagnostics", json::Value::str("json"));
  if (S.Infer.Engine != checker::InferenceEngine::Constraints)
    Opts.set("infer_engine",
             json::Value::str(checker::engineName(S.Infer.Engine)));
  if (S.Infer.Scope != checker::InferenceScope::Program)
    Opts.set("infer_scope",
             json::Value::str(checker::scopeName(S.Infer.Scope)));
  if (S.Infer.MaxSuggestions != 0)
    Opts.set("infer_max_suggestions",
             json::Value::integer(S.Infer.MaxSuggestions));
  if (S.Infer.Apply)
    Opts.set("infer_apply", json::Value::boolean(true));
  if (R.Inv.InferJson)
    Opts.set("infer_format", json::Value::str("json"));
  if (R.Inv.Trace)
    Opts.set("trace", json::Value::boolean(true));
  if (!R.Inv.EvalName.empty())
    Opts.set("eval_name", json::Value::str(R.Inv.EvalName));
  if (!R.Inv.EvalKind.empty())
    Opts.set("eval_kind", json::Value::str(R.Inv.EvalKind));
  if (!Opts.members().empty())
    Doc.set("options", std::move(Opts));
  return Doc.write();
}

bool stq::server::rpc::parseRequest(const std::string &Line, Request &Out,
                                    std::string &Error) {
  json::Value Doc;
  if (!json::parse(Line, Doc, Error)) {
    Error = "malformed request: " + Error;
    return false;
  }
  if (!Doc.isObject()) {
    Error = "malformed request: expected a JSON object";
    return false;
  }
  std::string V = Doc.getString("v");
  if (V != Version) {
    Error = V.empty() ? std::string("missing protocol version tag 'v'")
                      : "unsupported protocol version '" + V +
                            "' (this server speaks " + Version + ")";
    return false;
  }
  Out = Request();
  Out.Id = Doc.getString("id");
  Out.Inv.Command = Doc.getString("command");
  if (Out.Inv.Command.empty()) {
    Error = "missing 'command'";
    return false;
  }
  if (!isControlCommand(Out.Inv.Command) && !knownCommand(Out.Inv.Command)) {
    Error = "unknown command '" + Out.Inv.Command + "'";
    return false;
  }
  if (const json::Value *Src = Doc.get("source")) {
    if (!Src->isString()) {
      Error = "'source' must be a string";
      return false;
    }
    Out.Inv.Source = Src->asString();
    Out.Inv.HasSource = true;
  }
  if (const json::Value *Inputs = Doc.get("inputs")) {
    if (!Inputs->isArray()) {
      Error = "'inputs' must be an array";
      return false;
    }
    for (const json::Value &E : Inputs->elements()) {
      const json::Value *Name = E.isObject() ? E.get("name") : nullptr;
      const json::Value *Text = E.isObject() ? E.get("text") : nullptr;
      if (!Name || !Name->isString() || !Text || !Text->isString()) {
        Error = "'inputs' entries must be {\"name\":string,\"text\":string}";
        return false;
      }
      Out.Inv.Inputs.push_back({Name->asString(), Text->asString()});
    }
  }
  if (const json::Value *Files = Doc.get("files")) {
    if (!Files->isObject()) {
      Error = "'files' must be an object of path -> contents";
      return false;
    }
    for (const auto &[Path, Text] : Files->members()) {
      if (!Text.isString()) {
        Error = "'files' must be an object of path -> contents";
        return false;
      }
      Out.Inv.Files[Path] = Text.asString();
    }
    Out.Inv.HasFiles = true;
  }

  const json::Value *Opts = Doc.get("options");
  if (!Opts)
    return true;
  if (!Opts->isObject()) {
    Error = "'options' must be an object";
    return false;
  }
  SessionOptions &S = Out.Inv.Session;
  for (const auto &[Key, Val] : Opts->members()) {
    if (Key == "builtins" || Key == "qualsources") {
      if (!Val.isArray()) {
        Error = "'" + Key + "' must be an array of strings";
        return false;
      }
      for (const json::Value &E : Val.elements()) {
        if (!E.isString()) {
          Error = "'" + Key + "' must be an array of strings";
          return false;
        }
        (Key == "builtins" ? S.Builtins : S.QualSources)
            .push_back(E.asString());
      }
    } else if (Key == "entry") {
      S.Interp.EntryPoint = Val.asString();
    } else if (Key == "backend") {
      if (Val.asString() == "vm") {
        S.Backend = SessionOptions::ExecBackend::Vm;
      } else if (Val.asString() == "interp") {
        S.Backend = SessionOptions::ExecBackend::Interp;
      } else {
        Error = "bad backend '" + Val.asString() + "' (expected vm|interp)";
        return false;
      }
    } else if (Key == "elide_checks") {
      S.VmElideChecks = Val.asBool();
    } else if (Key == "unit") {
      if (!Val.isString()) {
        Error = "'unit' must be a string";
        return false;
      }
      S.IncrementalUnit = Val.asString();
    } else if (Key == "include_dirs" || Key == "defines") {
      if (!Val.isArray()) {
        Error = "'" + Key + "' must be an array of strings";
        return false;
      }
      for (const json::Value &E : Val.elements()) {
        if (!E.isString()) {
          Error = "'" + Key + "' must be an array of strings";
          return false;
        }
        (Key == "include_dirs" ? S.IncludeDirs : S.Defines)
            .push_back(E.asString());
      }
    } else if (Key == "flow_sensitive") {
      S.Checker.FlowSensitiveNarrowing = Val.asBool();
    } else if (Key == "jobs") {
      if (!Val.isNumber() || Val.asInt() < 0) {
        Error = "'jobs' must be a non-negative integer";
        return false;
      }
      S.Jobs = static_cast<unsigned>(Val.asInt());
    } else if (Key == "warm_cache") {
      S.WarmProverCache = Val.asBool();
    } else if (Key == "metrics") {
      auto F = metrics::parseFormat(Val.asString());
      if (!F) {
        Error = "bad metrics format '" + Val.asString() + "'";
        return false;
      }
      Out.Inv.Metrics = true;
      Out.Inv.MetricsFormat = *F;
    } else if (Key == "diagnostics") {
      if (Val.asString() == "json") {
        Out.Inv.JsonDiagnostics = true;
      } else if (Val.asString() != "text") {
        Error = "bad diagnostics format '" + Val.asString() + "'";
        return false;
      }
    } else if (Key == "infer_engine") {
      if (!Val.isString() ||
          !checker::parseEngineName(Val.asString(), S.Infer.Engine)) {
        Error = "bad inference engine '" + Val.asString() +
                "' (expected fixpoint|constraints)";
        return false;
      }
    } else if (Key == "infer_scope") {
      if (!Val.isString() ||
          !checker::parseScopeName(Val.asString(), S.Infer.Scope)) {
        Error = "bad inference scope '" + Val.asString() +
                "' (expected program|locals)";
        return false;
      }
    } else if (Key == "infer_max_suggestions") {
      if (!Val.isNumber() || Val.asInt() < 0) {
        Error = "'infer_max_suggestions' must be a non-negative integer";
        return false;
      }
      S.Infer.MaxSuggestions = static_cast<unsigned>(Val.asInt());
    } else if (Key == "infer_apply") {
      S.Infer.Apply = Val.asBool();
    } else if (Key == "infer_format") {
      if (Val.asString() == "json") {
        Out.Inv.InferJson = true;
      } else if (Val.asString() != "text") {
        Error = "bad inference format '" + Val.asString() + "'";
        return false;
      }
    } else if (Key == "trace") {
      Out.Inv.Trace = Val.asBool();
    } else if (Key == "eval_name" || Key == "eval_kind") {
      if (!Val.isString()) {
        Error = "'" + Key + "' must be a string";
        return false;
      }
      (Key == "eval_name" ? Out.Inv.EvalName : Out.Inv.EvalKind) =
          Val.asString();
    } else {
      Error = "unknown option '" + Key + "'";
      return false;
    }
  }
  return true;
}

std::string stq::server::rpc::encodeResponse(const Response &R) {
  json::Value Doc = json::Value::object();
  Doc.set("v", json::Value::str(Version));
  if (!R.Id.empty())
    Doc.set("id", json::Value::str(R.Id));
  Doc.set("status", json::Value::str(R.Status));
  Doc.set("exit_code", json::Value::integer(R.ExitCode));
  Doc.set("stdout", json::Value::str(R.Out));
  Doc.set("stderr", json::Value::str(R.Err));
  if (!R.TraceJson.empty())
    Doc.set("trace", json::Value::str(R.TraceJson));
  if (!R.Error.empty())
    Doc.set("error", json::Value::str(R.Error));
  return Doc.write();
}

bool stq::server::rpc::parseResponse(const std::string &Line, Response &Out,
                                     std::string &Error) {
  json::Value Doc;
  if (!json::parse(Line, Doc, Error)) {
    Error = "malformed response: " + Error;
    return false;
  }
  if (!Doc.isObject()) {
    Error = "malformed response: expected a JSON object";
    return false;
  }
  std::string V = Doc.getString("v");
  if (V != Version) {
    Error = "unsupported protocol version '" + V + "'";
    return false;
  }
  Out = Response();
  Out.Id = Doc.getString("id");
  Out.Status = Doc.getString("status");
  if (Out.Status.empty()) {
    Error = "missing 'status'";
    return false;
  }
  Out.ExitCode = static_cast<int>(Doc.getInt("exit_code", 2));
  Out.Out = Doc.getString("stdout");
  Out.Err = Doc.getString("stderr");
  Out.TraceJson = Doc.getString("trace");
  Out.Error = Doc.getString("error");
  return true;
}

std::string stq::server::rpc::versionText(const std::string &Tool) {
  // The metrics/diagnostics tags mirror the "schema" fields the emitters
  // write (support/MetricsEmitter.cpp, support/Diagnostics.cpp).
  std::string Out = Tool + " (stq: semantic type qualifiers)\n";
  Out += "  rpc protocol:  ";
  Out += Version;
  Out += "\n  metrics:       stq-metrics-v1\n";
  Out += "  diagnostics:   stq-diagnostics-v1\n";
  Out += "  inference:     stq-inference-v1\n";
  Out += "  prover cache:  ";
  Out += prover::ProverCache::PersistVersion;
  Out += "\n";
  return Out;
}
