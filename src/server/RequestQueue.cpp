//===- RequestQueue.cpp ---------------------------------------------------===//

#include "server/RequestQueue.h"

using namespace stq;
using namespace stq::server;

bool RequestQueue::push(UnixStream &&Conn) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Closed || Q.size() >= Capacity)
      return false;
    Q.push_back(std::move(Conn));
  }
  Cv.notify_one();
  return true;
}

bool RequestQueue::pop(UnixStream &Out) {
  std::unique_lock<std::mutex> Lock(M);
  Cv.wait(Lock, [this] { return !Q.empty() || Closed; });
  if (Q.empty())
    return false;
  Out = std::move(Q.front());
  Q.pop_front();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
  }
  Cv.notify_all();
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> Lock(M);
  return Q.size();
}
