//===- Protocol.h - The stq-rpc-v1 wire protocol ----------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned newline-delimited JSON protocol spoken over the stqd
/// Unix-domain socket (docs/SERVER.md is the normative spec). One request
/// document per connection, one response document back:
///
///   {"v":"stq-rpc-v1","command":"check","source":"int pos x = 3;",
///    "options":{"builtins":["pos","neg"],"jobs":2}}
///
///   {"v":"stq-rpc-v1","status":"ok","exit_code":0,
///    "stdout":"qualifier errors: 0 (...)\n","stderr":""}
///
/// `status` is "ok", "busy" (bounded-queue backpressure: retry later), or
/// "error" (malformed request, unsupported version, oversized or timed-out
/// read). The stdout/stderr payloads carry the existing stq-diagnostics-v1
/// and stq-metrics-v1 documents unchanged — the protocol frames bytes, it
/// does not reinterpret them.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_SERVER_PROTOCOL_H
#define STQ_SERVER_PROTOCOL_H

#include "server/Exec.h"

#include <string>

namespace stq::server::rpc {

/// The protocol version tag every request and response carries.
inline constexpr const char *Version = "stq-rpc-v1";

/// Commands the daemon itself answers (everything else is an Invocation).
bool isControlCommand(const std::string &Command); // "status" | "shutdown"

/// One decoded request: a control command or a full Invocation, plus an
/// opaque client correlation id (echoed back verbatim).
struct Request {
  std::string Id;
  Invocation Inv;
};

/// Encodes \p R as one line of JSON (no trailing newline).
std::string encodeRequest(const Request &R);

/// Decodes one request line. False (with \p Error) on malformed JSON, a
/// missing/unsupported version tag, or an unknown command.
bool parseRequest(const std::string &Line, Request &Out, std::string &Error);

/// One response document.
struct Response {
  std::string Id;
  std::string Status = "ok"; ///< "ok" | "busy" | "error".
  int ExitCode = 0;
  std::string Out;       ///< The stdout payload.
  std::string Err;       ///< The stderr payload.
  std::string TraceJson; ///< Chrome trace document, when requested.
  std::string Error;     ///< Human-readable cause when Status != "ok".
};

std::string encodeResponse(const Response &R);
bool parseResponse(const std::string &Line, Response &Out,
                   std::string &Error);

/// The `--version` banner: the tool name plus every stable format version
/// this build speaks (rpc, metrics, diagnostics, prover cache).
std::string versionText(const std::string &Tool);

} // namespace stq::server::rpc

#endif // STQ_SERVER_PROTOCOL_H
