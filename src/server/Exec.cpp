//===- Exec.cpp -----------------------------------------------------------===//

#include "server/Exec.h"

#include "eval/PaperEval.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <mutex>
#include <sstream>

using namespace stq;
using namespace stq::server;

namespace {

/// Renders every collected diagnostic through the configured consumer
/// (text is byte-for-byte the historical stderr output).
void reportDiagnostics(Session &S, const Invocation &Inv, std::ostream &Err) {
  if (Inv.JsonDiagnostics) {
    JsonDiagnosticConsumer C(Err);
    for (const Diagnostic &D : S.diags().diagnostics())
      C.handleDiagnostic(D);
    C.finish();
    return;
  }
  TextDiagnosticConsumer C(Err);
  for (const Diagnostic &D : S.diags().diagnostics())
    C.handleDiagnostic(D);
}

void emitMetrics(Session &S, const Invocation &Inv, std::ostream &Out) {
  if (Inv.Metrics)
    S.emitMetrics(Out, Inv.MetricsFormat);
}

int execProve(Session &S, const Invocation &Inv, std::ostream &Out,
              std::ostream &Err) {
  if (!S.loadQualifiers()) {
    reportDiagnostics(S, Inv, Err);
    emitMetrics(S, Inv, Out);
    return 2;
  }
  auto Reports = S.prove();
  Out << soundness::formatReports(Reports);
  emitMetrics(S, Inv, Out);
  for (const auto &R : Reports)
    if (!R.sound())
      return 1;
  return 0;
}

int execCheck(Session &S, const Invocation &Inv, std::ostream &Out,
              std::ostream &Err) {
  Session::CheckOutcome OutC = S.check(Inv.Source);
  reportDiagnostics(S, Inv, Err);
  if (S.diags().hasErrors()) {
    emitMetrics(S, Inv, Out);
    return 2;
  }
  Out << "qualifier errors: " << OutC.Result.QualErrors
      << " (dereference sites " << OutC.Result.Stats.DerefSites
      << ", assignment checks " << OutC.Result.Stats.AssignChecks
      << ", run-time checks " << OutC.Result.RuntimeChecks.size() << ")\n";
  emitMetrics(S, Inv, Out);
  return OutC.Result.ok() ? 0 : 1;
}

/// Byte-identical to execCheck on the same source: the verdict line prints
/// the same counters, sourced from the incremental result's counts.
int execRecheck(Session &S, const Invocation &Inv, std::ostream &Out,
                std::ostream &Err) {
  Session::RecheckOutcome OutC = S.recheck(Inv.Source);
  reportDiagnostics(S, Inv, Err);
  if (S.diags().hasErrors()) {
    emitMetrics(S, Inv, Out);
    return 2;
  }
  Out << "qualifier errors: " << OutC.Result.QualErrors
      << " (dereference sites " << OutC.Result.Stats.DerefSites
      << ", assignment checks " << OutC.Result.Stats.AssignChecks
      << ", run-time checks " << OutC.Result.RuntimeCheckCount << ")\n";
  emitMetrics(S, Inv, Out);
  return OutC.Result.ok() ? 0 : 1;
}

/// The multi-TU variants print the same verdict line as execCheck /
/// execRecheck, with counters merged over every TU in input order — the
/// fuzz campaign's frontend oracle compares it byte-for-byte against the
/// flattened single-TU run.
int execCheckFiles(Session &S, const Invocation &Inv, std::ostream &Out,
                   std::ostream &Err) {
  Session::CheckFilesOutcome OutC = S.checkFiles(Inv.Inputs);
  reportDiagnostics(S, Inv, Err);
  if (S.diags().hasErrors()) {
    emitMetrics(S, Inv, Out);
    return 2;
  }
  Out << "qualifier errors: " << OutC.Result.QualErrors
      << " (dereference sites " << OutC.Result.Stats.DerefSites
      << ", assignment checks " << OutC.Result.Stats.AssignChecks
      << ", run-time checks " << OutC.Result.RuntimeChecks.size() << ")\n";
  emitMetrics(S, Inv, Out);
  return OutC.Result.ok() ? 0 : 1;
}

int execRecheckFiles(Session &S, const Invocation &Inv, std::ostream &Out,
                     std::ostream &Err) {
  Session::RecheckFilesOutcome OutC = S.recheckFiles(Inv.Inputs);
  reportDiagnostics(S, Inv, Err);
  if (S.diags().hasErrors()) {
    emitMetrics(S, Inv, Out);
    return 2;
  }
  Out << "qualifier errors: " << OutC.Result.QualErrors
      << " (dereference sites " << OutC.Result.Stats.DerefSites
      << ", assignment checks " << OutC.Result.Stats.AssignChecks
      << ", run-time checks " << OutC.Result.RuntimeCheckCount << ")\n";
  emitMetrics(S, Inv, Out);
  return OutC.Result.ok() ? 0 : 1;
}

/// The stqd `eval` command: checks one shipped corpus program and returns
/// its table row in the stq-eval-row-v1 wire format. No rendering happens
/// here — the stq-eval client parses the row and renders tables/JSON
/// itself, so daemon-backed runs are byte-identical to one-shot runs.
int execEval(const Invocation &Inv, const SessionOptions &SOpts,
             std::ostream &Out, std::ostream &Err) {
  if (Inv.Inputs.empty() || !Inv.HasFiles) {
    Err << "stqc: eval requires shipped units and a shipped file closure\n";
    return 2;
  }
  eval::ProgramSpec Spec;
  Spec.Name = Inv.EvalName;
  Spec.Kind = Inv.EvalKind;
  Spec.Files = Inv.Files;
  for (const frontend::InputFile &In : Inv.Inputs) {
    Spec.Units.push_back(In.Name);
    Spec.Files[In.Name] = In.Text;
  }
  if (!SOpts.IncludeDirs.empty())
    Spec.IncludeDirs = SOpts.IncludeDirs;
  std::string Quals;
  for (const std::string &Src : SOpts.QualSources) {
    Quals += Src;
    if (!Src.empty() && Src.back() != '\n')
      Quals += '\n';
  }
  Spec.QualFileText = Quals;
  eval::EvalRow Row = eval::evalProgram(Spec, SOpts);
  Out << eval::renderRow(Row);
  return Row.ExitCode;
}

int execRun(Session &S, const Invocation &Inv, std::ostream &Out,
            std::ostream &Err) {
  Session::RunOutcome O = S.run(Inv.Source);
  reportDiagnostics(S, Inv, Err);
  const interp::RunResult &R = O.Run;
  if (!R.Output.empty())
    Out << R.Output;
  int Code = 2;
  switch (R.Status) {
  case interp::RunStatus::Ok:
    Out << "[exit " << static_cast<long>(*R.ExitValue) << "]\n";
    Code = static_cast<int>(*R.ExitValue & 0xff);
    break;
  case interp::RunStatus::CheckFailure:
    for (const auto &F : R.CheckFailures)
      Err << "fatal: run-time qualifier check failed at " << F.Loc.str()
          << ": value " << F.ValueStr << " does not satisfy '" << F.Qual
          << "'\n";
    Code = 3;
    break;
  case interp::RunStatus::Trap:
    Err << "trap: " << R.TrapMessage << "\n";
    Code = 4;
    break;
  case interp::RunStatus::FuelExhausted:
    Err << "error: step budget exhausted\n";
    Code = 5;
    break;
  case interp::RunStatus::SetupError:
    Err << "error: " << R.TrapMessage << "\n";
    Code = 2;
    break;
  }
  emitMetrics(S, Inv, Out);
  return Code;
}

/// Renders an inference report as the versioned `stq-inference-v1` JSON
/// document (one line, deterministic member order — the writer preserves
/// insertion order and the suggestions are already sorted by key).
json::Value inferenceReportJson(const Session::InferenceReport &O,
                                const SessionOptions &Opts) {
  json::Value Doc = json::Value::object();
  Doc.set("schema", json::Value::str("stq-inference-v1"));
  Doc.set("engine",
          json::Value::str(checker::engineName(O.Report.Engine)));
  Doc.set("scope", json::Value::str(checker::scopeName(Opts.Infer.Scope)));
  json::Value Suggestions = json::Value::array();
  for (const checker::InferenceSuggestion &Sug : O.Report.Suggestions) {
    json::Value E = json::Value::object();
    E.set("unit", json::Value::integer(Sug.Unit));
    E.set("function", json::Value::str(Sug.Function));
    E.set("var", json::Value::str(Sug.Var));
    E.set("kind", json::Value::str(Sug.Kind));
    E.set("line", json::Value::integer(Sug.Loc.Line));
    E.set("col", json::Value::integer(Sug.Loc.Col));
    json::Value Quals = json::Value::array();
    for (const checker::SuggestedQual &Q : Sug.Quals) {
      json::Value QV = json::Value::object();
      QV.set("qual", json::Value::str(Q.Qual));
      QV.set("provenance", json::Value::str(Q.Provenance));
      QV.set("implied", json::Value::boolean(Q.Implied));
      Quals.push(std::move(QV));
    }
    E.set("quals", std::move(Quals));
    Suggestions.push(std::move(E));
  }
  Doc.set("suggestions", std::move(Suggestions));
  const checker::InferenceStats &St = O.Report.Stats;
  json::Value Stats = json::Value::object();
  Stats.set("units", json::Value::integer(St.Units));
  Stats.set("atoms", json::Value::integer(St.Atoms));
  Stats.set("constraints", json::Value::integer(St.Constraints));
  Stats.set("solve_rounds", json::Value::integer(St.SolveRounds));
  Stats.set("evaluations",
            json::Value::integer(static_cast<int64_t>(St.Evaluations)));
  Stats.set("dropped", json::Value::integer(St.Dropped));
  Stats.set("variables", json::Value::integer(St.Variables));
  Stats.set("suggested", json::Value::integer(St.Suggested));
  Stats.set("implied", json::Value::integer(St.Implied));
  Stats.set("prover_queries", json::Value::integer(St.ProverQueries));
  // Cache-hit counts are deliberately absent: they depend on server
  // warmth, and the document is byte-identical one-shot vs daemon. They
  // ride in the per-session metrics instead.
  Stats.set("truncated", json::Value::integer(St.Truncated));
  Doc.set("stats", std::move(Stats));
  Doc.set("applied", json::Value::boolean(Opts.Infer.Apply));
  if (Opts.Infer.Apply)
    Doc.set("annotated_source", json::Value::str(O.AnnotatedSource));
  return Doc;
}

int execInfer(Session &S, const Invocation &Inv, std::ostream &Out,
              std::ostream &Err) {
  Session::InferenceReport O = S.infer(Inv.Source);
  if (!O.FrontEndOk || S.diags().hasErrors()) {
    reportDiagnostics(S, Inv, Err);
    emitMetrics(S, Inv, Out);
    return 2;
  }
  const SessionOptions &Opts = S.options();
  if (Inv.InferJson) {
    Out << inferenceReportJson(O, Opts).write() << "\n";
  } else if (Opts.Infer.Apply) {
    // Apply-mode text output is the annotated program itself, so the
    // result can be piped straight back into `stqc check`.
    Out << O.AnnotatedSource;
  } else {
    for (const checker::InferenceSuggestion &Sug : O.Report.Suggestions) {
      std::string List, Also;
      for (const checker::SuggestedQual &Q : Sug.Quals) {
        std::string &Dst = Q.Implied ? Also : List;
        Dst += (Dst.empty() ? "" : " ") +
               (Q.Implied ? Q.Qual + " [" + Q.Provenance + "]" : Q.Qual);
      }
      Out << Sug.Loc.str() << ": " << Sug.Kind << " '" << Sug.Var
          << "' may be annotated: " << List;
      if (!Also.empty())
        Out << " (also " << Also << ")";
      Out << "\n";
    }
    const checker::InferenceStats &St = O.Report.Stats;
    Out << "inferred " << O.Report.totalSuggested() << " annotation(s) on "
        << St.Variables << " variable(s) [engine "
        << checker::engineName(O.Report.Engine) << ", " << St.Constraints
        << " constraint(s), " << St.SolveRounds << " round(s), "
        << St.Implied << " implied";
    if (St.Truncated)
      Out << ", " << St.Truncated << " over budget";
    Out << "]\n";
  }
  emitMetrics(S, Inv, Out);
  return 0;
}

bool needsSource(const std::string &Command) {
  return Command == "check" || Command == "recheck" || Command == "run" ||
         Command == "infer";
}

} // namespace

bool stq::server::knownCommand(const std::string &Command) {
  return Command == "prove" || Command == "eval" || needsSource(Command);
}

ExecResult stq::server::executeInvocation(const Invocation &Inv,
                                          const SharedContext &Shared) {
  ExecResult R;
  std::ostringstream Out, Err;

  SessionOptions SOpts = Inv.Session;
  SOpts.SharedPool = Shared.Pool;
  if (Shared.Cache) {
    SOpts.SharedCache = Shared.Cache;
    // The cache owner persists; a per-request load/save would race it.
    SOpts.CacheFile.clear();
  }
  if (Shared.Qualifiers && SOpts.Builtins.empty() &&
      SOpts.QualFiles.empty() && SOpts.QualSources.empty())
    SOpts.SharedQualifiers = Shared.Qualifiers;
  if (Shared.Incremental)
    SOpts.SharedIncremental = Shared.Incremental;

  if (!knownCommand(Inv.Command)) {
    Err << "stqc: unknown command '" << Inv.Command << "'\n";
    R.Err = Err.str();
    return R;
  }
  const bool MultiInput = !Inv.Inputs.empty();
  if (needsSource(Inv.Command) && !Inv.HasSource && !MultiInput) {
    Err << "stqc: no input (pass FILE or -e SRC)\n";
    R.Err = Err.str();
    return R;
  }
  if (MultiInput) {
    if (Inv.Command != "check" && Inv.Command != "recheck" &&
        Inv.Command != "eval") {
      Err << "stqc: multiple input files are only supported by check, "
             "recheck, and eval\n";
      R.Err = Err.str();
      return R;
    }
    // The shipped closure (daemon requests) wins over the filesystem, so
    // the server never touches client paths.
    if (Inv.HasFiles)
      SOpts.ShippedFiles = &Inv.Files;
  }

  // eval owns its Session (evalProgram builds it from the spec plus the
  // shared state carried in SOpts), so it dispatches before the generic
  // per-request Session below.
  if (Inv.Command == "eval") {
    R.ExitCode = execEval(Inv, SOpts, Out, Err);
    R.Out = Out.str();
    R.Err = Err.str();
    return R;
  }

  // The tracer is process-global, so traced invocations serialize: two
  // concurrent requests must not interleave their spans.
  static std::mutex TraceM;
  std::unique_lock<std::mutex> TraceLock;
  if (Inv.Trace) {
    TraceLock = std::unique_lock<std::mutex>(TraceM);
    trace::Tracer::start();
  }

  {
    Session S(SOpts);
    if (Inv.Command == "prove")
      R.ExitCode = execProve(S, Inv, Out, Err);
    else if (Inv.Command == "check")
      R.ExitCode = MultiInput ? execCheckFiles(S, Inv, Out, Err)
                              : execCheck(S, Inv, Out, Err);
    else if (Inv.Command == "recheck")
      R.ExitCode = MultiInput ? execRecheckFiles(S, Inv, Out, Err)
                              : execRecheck(S, Inv, Out, Err);
    else if (Inv.Command == "run")
      R.ExitCode = execRun(S, Inv, Out, Err);
    else
      R.ExitCode = execInfer(S, Inv, Out, Err);
  }

  if (Inv.Trace) {
    std::vector<trace::TraceEvent> Events = trace::Tracer::stop();
    std::ostringstream TS;
    metrics::writeChromeTrace(Events, TS);
    R.TraceJson = TS.str();
  }
  R.Out = Out.str();
  R.Err = Err.str();
  return R;
}
