//===- Session.h - The stq pipeline driver facade ---------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `stq::Session` is the one public entry point over the whole pipeline:
/// qualifier loading (builtins, DSL files, inline DSL sources), the
/// C-minus front end (parse, sema, lower, verify), the extensible
/// typechecker (optionally sharded over a work-stealing pool), the
/// automated soundness checker backed by the memoized prover cache, the
/// instrumented interpreter, and qualifier inference.
///
/// A Session owns the objects every driver used to wire by hand - the
/// DiagnosticEngine, the QualifierSet, the ProverCache - plus a
/// stats::Registry that every stage publishes into (see
/// docs/OBSERVABILITY.md for the counter names). `stqc`, the examples,
/// and the benchmarks are all thin layers over this class.
///
/// Typical use:
///
///   stq::SessionOptions Opts;
///   Opts.Builtins = {"nonnull"};
///   stq::Session S(Opts);
///   auto Out = S.check(Source);
///   if (Out.FrontEndOk && Out.Result.ok()) { ... }
///   S.emitMetrics(std::cout, stq::metrics::Format::Text);
///
//===----------------------------------------------------------------------===//

#ifndef STQ_DRIVER_SESSION_H
#define STQ_DRIVER_SESSION_H

#include "checker/Checker.h"
#include "checker/ConstraintInference.h"
#include "checker/Incremental.h"
#include "checker/Inference.h"
#include "checker/Parallel.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "prover/Prover.h"
#include "prover/ProverCache.h"
#include "qual/QualAST.h"
#include "soundness/Soundness.h"
#include "support/Diagnostics.h"
#include "support/MetricsEmitter.h"
#include "support/Stats.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace stq {

/// Reads \p Path into \p Out; on failure returns false and sets \p Error.
bool readFileToString(const std::string &Path, std::string &Out,
                      std::string &Error);

/// Everything that configures a Session, with the defaults every driver
/// used before the facade existed.
struct SessionOptions {
  /// Builtin qualifiers to load (see qual::builtinQualifierNames()).
  std::vector<std::string> Builtins;
  /// Paths of qualifier-DSL files to load.
  std::vector<std::string> QualFiles;
  /// Inline qualifier-DSL sources to load (after builtins and files).
  std::vector<std::string> QualSources;
  /// When no builtins, files, or sources are requested, load every
  /// builtin (the historical `stqc` default).
  bool ImplicitAllBuiltins = true;

  checker::CheckerOptions Checker;
  interp::InterpOptions Interp;
  prover::ProverOptions Prover;

  /// Which engine run() executes the instrumented program on. Both are
  /// byte-identical in observable behavior (traps, checks, audits,
  /// output, fuel); the VM compiles to register bytecode first and is
  /// several times faster in the run phase, so it is the default. The
  /// tree-walking interpreter remains the differential oracle.
  enum class ExecBackend { Interp, Vm };
  ExecBackend Backend = ExecBackend::Vm;
  /// VM only: run the prover-driven guard-elision pass, discharging
  /// run-time qualifier checks the static context already entails.
  /// Elision never changes observable behavior (only the executed-check
  /// counter drops).
  bool VmElideChecks = true;

  /// Worker threads for check() and prove(); <= 1 is the sequential
  /// baseline (byte-identical diagnostics for any value).
  unsigned Jobs = 1;
  /// prove(): run a silent first pass so the reported pass replays
  /// entirely from the prover cache.
  bool WarmProverCache = false;
  /// When non-empty, prove() and proveQualifier() load the prover cache
  /// from this file before checking (a missing file is the normal cold
  /// start; a corrupt or wrong-version file is ignored with a warning,
  /// never trusted) and save the merged cache back afterwards. Re-checking
  /// an unchanged qualifier set across processes then skips proving
  /// entirely.
  std::string CacheFile;

  /// Multi-input front end (load/checkFiles/recheckFiles): `-I` include
  /// search directories and `-D` predefines ("NAME" or "NAME=VALUE"), in
  /// command-line order.
  std::vector<std::string> IncludeDirs;
  std::vector<std::string> Defines;
  /// When non-null, `#include` resolution for the multi-input entry
  /// points reads this shipped include closure instead of the filesystem
  /// — the daemon path: `stqc --server` collects the closure client-side
  /// (pp::collectIncludeClosure) and ships it in the request. Must
  /// outlive the Session.
  const pp::FileMap *ShippedFiles = nullptr;

  /// Process-sharing hooks (the stqd server). Each pointee must outlive
  /// the Session; all default to the owned, per-session objects.
  ///
  /// When set, prove() memoizes into this cache instead of the session's
  /// own. The owner is responsible for persistence, so CacheFile
  /// load/save should not be combined with a shared cache.
  prover::ProverCache *SharedCache = nullptr;
  /// When set, the qualifier set was loaded (and well-formed-checked)
  /// once by the owner; Builtins/QualFiles/QualSources are ignored and
  /// loadQualifiers() is an immediate success.
  const qual::QualifierSet *SharedQualifiers = nullptr;
  /// When set, check() and prove() fan their units/obligations onto this
  /// pool as task groups instead of spawning a per-call pool, so
  /// concurrent sessions share one set of workers.
  ThreadPool *SharedPool = nullptr;
  /// When set, recheck() probes and fills this long-lived incremental
  /// engine (verdict store + signature snapshots) instead of a per-session
  /// one, so warm edits re-check only what changed across requests.
  checker::incremental::Engine *SharedIncremental = nullptr;

  /// The snapshot name recheck() uses for signature-change invalidation —
  /// the server passes the client's `unit` option so edits to one file
  /// diff against that file's previous version, not another client's.
  std::string IncrementalUnit;

  /// infer() configuration: engine selection, inference scope, suggestion
  /// budget, and apply-mode. Mirrored one-to-one by `stqc infer --engine
  /// --scope --max-suggestions --apply` and the stq-rpc-v1 infer params.
  struct InferenceParams {
    /// The sharded constraint engine by default; the sequential fixpoint
    /// engine is retained as the differential reference.
    checker::InferenceEngine Engine = checker::InferenceEngine::Constraints;
    checker::InferenceScope Scope = checker::InferenceScope::Program;
    /// Report at most this many suggestion entries (0 = unlimited).
    /// Ignored in apply-mode: applying a partial suggestion set is not
    /// guaranteed to re-check clean.
    unsigned MaxSuggestions = 0;
    /// Apply the minimal suggested set to the program and return the
    /// re-printed annotated source.
    bool Apply = false;
  };
  InferenceParams Infer;
};

/// The pipeline driver. Not thread-safe: one Session per thread (the
/// parallelism lives *inside* check() and prove()).
class Session {
public:
  explicit Session(SessionOptions Options = {});
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Loads the configured qualifiers (idempotent; later calls return the
  /// first outcome). All entry points below call this themselves.
  bool loadQualifiers();

  /// Result of check(): the front end's program (when it got that far)
  /// plus the typechecker's verdict and pipeline counters.
  struct CheckOutcome {
    /// False when parse/sema/lower/verify failed; Result is then empty.
    bool FrontEndOk = false;
    checker::CheckResult Result;
    checker::ParallelStats Pipeline;
    std::unique_ptr<cminus::Program> Program;
  };
  /// Front end + extensible typechecker over `Jobs` workers.
  CheckOutcome check(const std::string &Source);

  /// Result of recheck(): same verdict shape as check(), but record lists
  /// are counts (cached verdicts cannot hold AST pointers) and the
  /// pipeline stats say how much of the unit was served from the store.
  struct RecheckOutcome {
    bool FrontEndOk = false;
    checker::incremental::RecheckResult Result;
    checker::incremental::RecheckStats Stats;
    std::unique_ptr<cminus::Program> Program;
  };
  /// Front end + incremental re-check: items whose content hash is in the
  /// verdict store replay their cached diagnostics; the rest re-check over
  /// `Jobs` workers. Diagnostics and verdicts are byte-identical to
  /// check() on the same source at any job count.
  RecheckOutcome recheck(const std::string &Source);

  /// Result of load(): every input compiled as its own translation unit,
  /// plus the cross-TU link step's verdict.
  struct LoadOutcome {
    /// Every TU preprocessed/parsed/sema'd/lowered/verified clean.
    bool FrontEndOk = false;
    /// The cross-TU symbol resolution found no conflicts.
    bool LinkOk = false;
    bool ok() const { return FrontEndOk && LinkOk; }
    std::vector<frontend::TUnit> Units;
  };
  /// The real-C multi-TU front end: each input is preprocessed
  /// (SessionOptions::IncludeDirs/Defines), parsed, sema-checked, and
  /// lowered as an independent TU, fanned over `Jobs` workers; per-TU
  /// diagnostics are remapped to file-attributed user coordinates and
  /// merged in input order (byte-identical at any job count), and
  /// frontend::linkUnits then unifies the per-TU symbol tables.
  LoadOutcome load(const std::vector<frontend::InputFile> &Inputs);

  /// Result of checkFiles(): the multi-TU load plus the typechecker's
  /// verdict merged over every TU in input order.
  struct CheckFilesOutcome {
    LoadOutcome Load;
    checker::CheckResult Result;
    checker::ParallelStats Pipeline;
    bool ok() const { return Load.ok() && Result.ok(); }
  };
  /// Multi-TU front end + extensible typechecker over every unit (TUs in
  /// input order, each sharded over `Jobs` workers).
  CheckFilesOutcome checkFiles(const std::vector<frontend::InputFile> &Inputs);

  /// Result of recheckFiles(): as checkFiles(), but through the
  /// incremental engine (record lists are counts).
  struct RecheckFilesOutcome {
    LoadOutcome Load;
    checker::incremental::RecheckResult Result;
    checker::incremental::RecheckStats Stats;
    bool ok() const { return Load.ok() && Result.ok(); }
  };
  /// Multi-TU front end + incremental re-check. Every work item's content
  /// hash folds in its TU's post-preprocess stream hash, so editing a
  /// header re-checks every translation unit that includes it.
  RecheckFilesOutcome
  recheckFiles(const std::vector<frontend::InputFile> &Inputs);

  /// Result of frontEnd().
  struct FrontEndOutcome {
    bool Ok = false;
    std::unique_ptr<cminus::Program> Program;
  };
  /// Just the front end (parse, sema, lower, verify) — for tools and
  /// benchmarks that drive the checker themselves.
  FrontEndOutcome frontEnd(const std::string &Source);

  /// Soundness-checks every loaded qualifier (obligations fan out over
  /// `Jobs` workers, memoized in the session's prover cache).
  std::vector<soundness::SoundnessReport> prove();
  /// Soundness-checks one qualifier by name.
  soundness::SoundnessReport proveQualifier(const std::string &Name);

  /// Result of run(): the checking stage's outcome plus the execution.
  struct RunOutcome {
    CheckOutcome Check;
    interp::RunResult Run;
  };
  /// Front end + typechecker + instrumented execution. Qualifier warnings
  /// do not block execution (as in the paper); front-end errors yield
  /// RunStatus::SetupError.
  RunOutcome run(const std::string &Source);

  /// Result of infer(): the first-class inference report (suggestions
  /// keyed by (unit, function, variable, location), per-qualifier
  /// provenance, solver stats) behind the engine configured in
  /// SessionOptions::Infer.
  struct InferenceReport {
    bool FrontEndOk = false;
    checker::InferenceReport Report;
    /// Apply-mode only: the program re-printed with the minimal suggested
    /// set applied to its declared types (empty otherwise). Byte-stable
    /// across runs and job counts; re-checks clean by construction of the
    /// greatest fixpoint.
    std::string AnnotatedSource;
    std::unique_ptr<cminus::Program> Program;
  };
  /// Front end + whole-program qualifier inference (section 8 future
  /// work): the sharded constraint engine by default, the sequential
  /// fixpoint reference via SessionOptions::Infer.Engine. Prover-backed
  /// suggestion minimization memoizes into proverCache().
  InferenceReport infer(const std::string &Source);

  /// The loaded qualifier set (empty before loadQualifiers()); the shared
  /// set when SessionOptions::SharedQualifiers is set.
  const qual::QualifierSet &qualifiers() const { return *QualsView; }
  /// Every diagnostic reported so far, across all calls.
  DiagnosticEngine &diags() { return Diags; }
  const DiagnosticEngine &diags() const { return Diags; }
  /// The memoized prover cache: session-lifetime by default, the shared
  /// cache when SessionOptions::SharedCache is set.
  prover::ProverCache &proverCache() { return *CachePtr; }
  /// The metrics registry every stage publishes into.
  stats::Registry &metrics() { return Metrics; }
  const SessionOptions &options() const { return Opts; }

  /// Emits a snapshot of the session's metrics (after publishing derived
  /// gauges such as the prover-cache hit rate).
  void emitMetrics(std::ostream &OS, metrics::Format Format);

private:
  /// parse + sema + lower + verify, recording phase.*_seconds.
  std::unique_ptr<cminus::Program> frontEnd(const std::string &Source,
                                            bool &Ok);
  /// The shared per-TU compile configuration for load().
  frontend::CompileOptions compileOptions() const;
  /// Remaps \p Unit's diagnostics through \p U's line map and re-reports
  /// them into the session engine.
  void reportUnitDiags(DiagnosticEngine &Unit, const frontend::TUnit &U);
  void publishCheckMetrics(bool FrontEndOk, const checker::CheckResult &Result,
                           const checker::ParallelStats &Pipeline);
  void publishRecheckMetrics(bool FrontEndOk,
                             const checker::incremental::RecheckResult &Result,
                             const checker::incremental::RecheckStats &Stats);
  void publishFrontendMetrics(const LoadOutcome &Out, const pp::PpStats &Pp);
  /// The engine recheck() uses: the shared one when wired, else a lazily
  /// created session-owned engine.
  checker::incremental::Engine &incrementalEngine();
  void publishProveMetrics(const std::vector<soundness::SoundnessReport> &);
  void publishRunMetrics(const interp::RunResult &R);
  void publishCacheMetrics();
  void publishDiagMetrics();
  /// Loads Opts.CacheFile into the cache (first call only; no-op when the
  /// option is empty).
  void loadCacheFile();
  /// Saves the cache to Opts.CacheFile (no-op when the option is empty).
  void saveCacheFile();

  SessionOptions Opts;
  DiagnosticEngine Diags;
  /// Owned qualifier set; unused when Opts.SharedQualifiers is set.
  qual::QualifierSet Quals;
  /// Owned prover cache; unused when Opts.SharedCache is set.
  prover::ProverCache Cache;
  /// The set/cache every stage actually uses (owned or shared).
  const qual::QualifierSet *QualsView = &Quals;
  prover::ProverCache *CachePtr = &Cache;
  stats::Registry Metrics;
  /// Owned incremental engine, created on first recheck(); unused when
  /// Opts.SharedIncremental is set.
  std::unique_ptr<checker::incremental::Engine> OwnedIncremental;

  enum class LoadState { NotLoaded, Ok, Failed };
  LoadState Loaded = LoadState::NotLoaded;
  bool CacheFileLoaded = false;
  bool CacheSaveWarned = false;
};

} // namespace stq

#endif // STQ_DRIVER_SESSION_H
