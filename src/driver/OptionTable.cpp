//===- OptionTable.cpp ----------------------------------------------------===//

#include "driver/OptionTable.h"

#include <cerrno>
#include <cstdlib>

using namespace stq::cli;

std::vector<std::string> stq::cli::splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

bool stq::cli::parseUnsigned(const std::string &Value, unsigned &Out) {
  if (Value.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long N = std::strtoul(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0' || errno == ERANGE ||
      Value[0] == '-' || N > 0xfffffffful)
    return false;
  Out = static_cast<unsigned>(N);
  return true;
}

OptionTable &OptionTable::flag(const std::string &Name,
                               const std::string &Alias,
                               const std::string &Help,
                               std::function<void()> Apply) {
  Option O;
  O.Name = Name;
  O.Alias = Alias;
  O.Kind = Option::Arity::Flag;
  O.Help = Help;
  O.Apply = [Fn = std::move(Apply)](const std::string &, std::string &) {
    Fn();
    return true;
  };
  Options.push_back(std::move(O));
  return *this;
}

OptionTable &OptionTable::value(
    const std::string &Name, const std::string &Alias,
    const std::string &ValueName, const std::string &Help,
    std::function<bool(const std::string &, std::string &)> Apply) {
  Option O;
  O.Name = Name;
  O.Alias = Alias;
  O.Kind = Option::Arity::Value;
  O.ValueName = ValueName;
  O.Help = Help;
  O.Apply = std::move(Apply);
  Options.push_back(std::move(O));
  return *this;
}

OptionTable &OptionTable::optionalValue(
    const std::string &Name, const std::string &ValueName,
    const std::string &Help,
    std::function<bool(const std::string &, std::string &)> Apply) {
  Option O;
  O.Name = Name;
  O.Kind = Option::Arity::OptionalValue;
  O.ValueName = ValueName;
  O.Help = Help;
  O.Apply = std::move(Apply);
  Options.push_back(std::move(O));
  return *this;
}

const Option *OptionTable::find(const std::string &Spelling) const {
  for (const Option &O : Options)
    if (O.Name == Spelling || (!O.Alias.empty() && O.Alias == Spelling))
      return &O;
  return nullptr;
}

bool OptionTable::parse(const std::vector<std::string> &Args,
                        std::string &Error) const {
  bool OptionsEnded = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (!OptionsEnded && Arg == "--") {
      // End-of-options separator: everything after is positional, even
      // arguments that look like flags.
      OptionsEnded = true;
      continue;
    }
    if (OptionsEnded || Arg.empty() || Arg[0] != '-') {
      if (!Positional) {
        Error = "unexpected argument '" + Arg + "'";
        return false;
      }
      if (!Positional(Arg, Error))
        return false;
      continue;
    }

    std::string Spelling = Arg;
    std::string Inline;
    bool HasInline = false;
    size_t Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Spelling = Arg.substr(0, Eq);
      Inline = Arg.substr(Eq + 1);
      HasInline = true;
    }

    const Option *O = find(Spelling);
    if (!O) {
      Error = "unknown option '" + Spelling + "'";
      return false;
    }

    std::string Value;
    switch (O->Kind) {
    case Option::Arity::Flag:
      if (HasInline) {
        Error = "option '" + O->Name + "' takes no value";
        return false;
      }
      break;
    case Option::Arity::Value:
      if (HasInline) {
        Value = Inline;
      } else if (I + 1 < Args.size()) {
        Value = Args[++I];
      } else {
        Error = "missing value for '" + O->Name + "'";
        return false;
      }
      break;
    case Option::Arity::OptionalValue:
      if (HasInline)
        Value = Inline;
      break;
    }

    std::string ApplyError;
    if (!O->Apply(Value, ApplyError)) {
      Error = ApplyError.empty()
                  ? "bad value '" + Value + "' for '" + O->Name + "'"
                  : ApplyError;
      return false;
    }
  }
  return true;
}

std::string OptionTable::helpText() const {
  std::string Out;
  for (const Option &O : Options) {
    std::string Left = "  " + O.Name;
    if (!O.Alias.empty())
      Left += ", " + O.Alias;
    switch (O.Kind) {
    case Option::Arity::Flag:
      break;
    case Option::Arity::Value:
      Left += " " + O.ValueName;
      break;
    case Option::Arity::OptionalValue:
      Left += "[=" + O.ValueName + "]";
      break;
    }
    while (Left.size() < 26)
      Left += ' ';
    Out += Left + O.Help + "\n";
  }
  return Out;
}
