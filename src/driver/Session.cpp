//===- Session.cpp --------------------------------------------------------===//

#include "driver/Session.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Printer.h"
#include "cminus/Sema.h"
#include "qual/Builtins.h"
#include "qual/QualParser.h"
#include "support/ThreadPool.h"
#include "vm/VM.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace stq;

bool stq::readFileToString(const std::string &Path, std::string &Out,
                           std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

Session::Session(SessionOptions Options) : Opts(std::move(Options)) {
  if (Opts.SharedQualifiers)
    QualsView = Opts.SharedQualifiers;
  if (Opts.SharedCache)
    CachePtr = Opts.SharedCache;
}

Session::~Session() = default;

bool Session::loadQualifiers() {
  if (Loaded != LoadState::NotLoaded)
    return Loaded == LoadState::Ok;
  if (Opts.SharedQualifiers) {
    // The owner loaded (and well-formed-checked) the set once.
    Loaded = LoadState::Ok;
    Metrics.set("qual.loaded", QualsView->all().size());
    return true;
  }
  Loaded = LoadState::Failed;

  stats::ScopedTimer Timer(&Metrics, "phase.qualload_seconds");
  std::vector<std::string> Builtins = Opts.Builtins;
  if (Builtins.empty() && Opts.QualFiles.empty() && Opts.QualSources.empty() &&
      Opts.ImplicitAllBuiltins)
    Builtins = qual::builtinQualifierNames();

  for (const std::string &Name : Builtins) {
    std::string Source = qual::builtinQualifierSource(Name);
    if (Source.empty()) {
      Diags.error(SourceLoc(), "driver",
                  "unknown builtin qualifier '" + Name + "'");
      return false;
    }
    if (!qual::parseQualifiers(Source, Quals, Diags))
      return false;
  }
  for (const std::string &Path : Opts.QualFiles) {
    std::string Source, Error;
    if (!readFileToString(Path, Source, Error)) {
      Diags.error(SourceLoc(), "driver", Error);
      return false;
    }
    if (!qual::parseQualifiers(Source, Quals, Diags))
      return false;
  }
  for (const std::string &Source : Opts.QualSources)
    if (!qual::parseQualifiers(Source, Quals, Diags))
      return false;
  if (!qual::checkWellFormed(Quals, Diags))
    return false;

  Loaded = LoadState::Ok;
  Metrics.set("qual.loaded", Quals.all().size());
  return true;
}

std::unique_ptr<cminus::Program> Session::frontEnd(const std::string &Source,
                                                   bool &Ok) {
  Ok = false;
  std::unique_ptr<cminus::Program> Prog;
  {
    stats::ScopedTimer Timer(&Metrics, "phase.parse_seconds");
    Prog = cminus::parseProgram(Source, QualsView->names(), Diags);
  }
  if (!Prog || Diags.hasErrors())
    return Prog;
  {
    stats::ScopedTimer Timer(&Metrics, "phase.sema_seconds");
    if (!cminus::runSema(*Prog, QualsView->refNames(), Diags))
      return Prog;
  }
  {
    stats::ScopedTimer Timer(&Metrics, "phase.lower_seconds");
    if (!cminus::lowerProgram(*Prog, Diags) ||
        !cminus::verifyLoweredProgram(*Prog, Diags))
      return Prog;
  }
  Ok = true;
  return Prog;
}

Session::FrontEndOutcome Session::frontEnd(const std::string &Source) {
  FrontEndOutcome Out;
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return Out;
  }
  Out.Program = frontEnd(Source, Out.Ok);
  publishDiagMetrics();
  return Out;
}

Session::CheckOutcome Session::check(const std::string &Source) {
  CheckOutcome Out;
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return Out;
  }
  Out.Program = frontEnd(Source, Out.FrontEndOk);
  if (Out.FrontEndOk) {
    stats::ScopedTimer Timer(&Metrics, "phase.qualcheck_seconds");
    Out.Result =
        checker::checkProgramParallel(*Out.Program, *QualsView, Diags,
                                      Opts.Checker, Opts.Jobs, &Out.Pipeline,
                                      Opts.SharedPool);
  }
  publishCheckMetrics(Out.FrontEndOk, Out.Result, Out.Pipeline);
  publishDiagMetrics();
  return Out;
}

namespace {

/// Adds \p B's counters into \p A (the multi-TU merge; mirrors the
/// parallel checker's own per-shard merge, so a multi-TU verdict sums the
/// way a single flattened TU would count).
void mergeCheckerStats(checker::CheckerStats &A, const checker::CheckerStats &B) {
  A.DerefSites += B.DerefSites;
  A.RestrictChecks += B.RestrictChecks;
  A.RestrictFailures += B.RestrictFailures;
  A.AssignChecks += B.AssignChecks;
  A.AssignFailures += B.AssignFailures;
  A.RefAssignChecks += B.RefAssignChecks;
  A.RefAssignFailures += B.RefAssignFailures;
  A.DisallowFailures += B.DisallowFailures;
  A.CastsToValueQualified += B.CastsToValueQualified;
  A.CastsToRefQualified += B.CastsToRefQualified;
  A.ElidedCastChecks += B.ElidedCastChecks;
  A.HasQualQueries += B.HasQualQueries;
  A.MemoHits += B.MemoHits;
  A.FormatStringChecks += B.FormatStringChecks;
}

void mergePipelineStats(checker::ParallelStats &A,
                        const checker::ParallelStats &B) {
  A.Units += B.Units;
  A.Jobs = std::max(A.Jobs, B.Jobs);
  A.Executed += B.Executed;
  A.Steals += B.Steals;
}

} // namespace

frontend::CompileOptions Session::compileOptions() const {
  frontend::CompileOptions CO;
  CO.Pp.IncludeDirs = Opts.IncludeDirs;
  CO.Pp.Defines = Opts.Defines;
  CO.Files = Opts.ShippedFiles;
  CO.QualNames = QualsView->names();
  CO.RefQualNames = QualsView->refNames();
  return CO;
}

void Session::reportUnitDiags(DiagnosticEngine &Unit,
                              const frontend::TUnit &U) {
  std::vector<Diagnostic> Ds = Unit.diagnostics();
  frontend::remapDiagnostics(Ds, 0, U.Name, U.Pp.Map);
  for (Diagnostic &D : Ds)
    Diags.report(std::move(D));
}

Session::LoadOutcome
Session::load(const std::vector<frontend::InputFile> &Inputs) {
  LoadOutcome Out;
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return Out;
  }
  const frontend::CompileOptions CO = compileOptions();
  const size_t N = Inputs.size();
  Out.Units.resize(N);
  std::vector<DiagnosticEngine> UnitDiags(N);
  {
    // Each TU compiles against its own diagnostic engine on the pool;
    // the ordered merge below restores input-order output, so the fan-out
    // is invisible in the rendered diagnostics at any job count.
    stats::ScopedTimer Timer(&Metrics, "phase.frontend_seconds");
    parallelFor(
        Opts.Jobs, N,
        [&](size_t I) {
          Out.Units[I] = frontend::compileUnit(Inputs[I].Name, Inputs[I].Text,
                                               CO, UnitDiags[I]);
        },
        nullptr, Opts.SharedPool);
  }
  Out.FrontEndOk = N > 0;
  pp::PpStats Pp;
  for (size_t I = 0; I < N; ++I) {
    const frontend::TUnit &U = Out.Units[I];
    reportUnitDiags(UnitDiags[I], U);
    Out.FrontEndOk = Out.FrontEndOk && U.FrontEndOk;
    Pp.Files += U.Pp.Stats.Files;
    Pp.Includes += U.Pp.Stats.Includes;
    Pp.MacrosDefined += U.Pp.Stats.MacrosDefined;
    Pp.Expansions += U.Pp.Stats.Expansions;
    Pp.Conditionals += U.Pp.Stats.Conditionals;
    Pp.LinesIn += U.Pp.Stats.LinesIn;
    Pp.LinesOut += U.Pp.Stats.LinesOut;
  }
  // Link even when a TU failed its front end: linkUnits skips unparsed
  // units, and partial-program link errors are still worth reporting.
  Out.LinkOk = frontend::linkUnits(Out.Units, Diags);
  publishFrontendMetrics(Out, Pp);
  publishDiagMetrics();
  return Out;
}

Session::CheckFilesOutcome
Session::checkFiles(const std::vector<frontend::InputFile> &Inputs) {
  CheckFilesOutcome Out;
  Out.Load = load(Inputs);
  if (!Out.Load.ok())
    return Out;
  {
    stats::ScopedTimer Timer(&Metrics, "phase.qualcheck_seconds");
    for (const frontend::TUnit &U : Out.Load.Units) {
      DiagnosticEngine UnitDiags;
      checker::ParallelStats PS;
      checker::CheckResult R = checker::checkProgramParallel(
          *U.Program, *QualsView, UnitDiags, Opts.Checker, Opts.Jobs, &PS,
          Opts.SharedPool);
      reportUnitDiags(UnitDiags, U);
      Out.Result.QualErrors += R.QualErrors;
      mergeCheckerStats(Out.Result.Stats, R.Stats);
      Out.Result.RuntimeChecks.insert(
          Out.Result.RuntimeChecks.end(),
          std::make_move_iterator(R.RuntimeChecks.begin()),
          std::make_move_iterator(R.RuntimeChecks.end()));
      Out.Result.Failures.insert(Out.Result.Failures.end(),
                                 std::make_move_iterator(R.Failures.begin()),
                                 std::make_move_iterator(R.Failures.end()));
      mergePipelineStats(Out.Pipeline, PS);
    }
  }
  publishCheckMetrics(true, Out.Result, Out.Pipeline);
  publishDiagMetrics();
  return Out;
}

Session::RecheckFilesOutcome
Session::recheckFiles(const std::vector<frontend::InputFile> &Inputs) {
  RecheckFilesOutcome Out;
  Out.Load = load(Inputs);
  if (!Out.Load.ok())
    return Out;
  {
    stats::ScopedTimer Timer(&Metrics, "phase.qualcheck_seconds");
    checker::incremental::Engine &Engine = incrementalEngine();
    for (const frontend::TUnit &U : Out.Load.Units) {
      DiagnosticEngine UnitDiags;
      checker::incremental::RecheckStats RS;
      // The TU's post-preprocess stream hash re-keys every work item in
      // the unit: a header edit dirties every includer.
      checker::incremental::Hash128 Seed;
      Seed.A = U.Pp.StreamHashA;
      Seed.B = U.Pp.StreamHashB;
      // Snapshots are per TU: signature-change invalidation must diff a
      // TU against its own previous version, not a sibling's.
      std::string Unit = Opts.IncrementalUnit.empty()
                             ? U.Name
                             : Opts.IncrementalUnit + "/" + U.Name;
      checker::incremental::RecheckResult R =
          Engine.recheck(Unit, *U.Program, *QualsView, UnitDiags,
                         Opts.Checker, Opts.Jobs, &RS, Opts.SharedPool, &Seed);
      reportUnitDiags(UnitDiags, U);
      Out.Result.QualErrors += R.QualErrors;
      mergeCheckerStats(Out.Result.Stats, R.Stats);
      Out.Result.RuntimeCheckCount += R.RuntimeCheckCount;
      Out.Result.FailureCount += R.FailureCount;
      Out.Stats.Units += RS.Units;
      Out.Stats.Hits += RS.Hits;
      Out.Stats.Rechecked += RS.Rechecked;
      Out.Stats.SignatureDirtied += RS.SignatureDirtied;
      Out.Stats.Evictions += RS.Evictions;
      Out.Stats.Jobs = std::max(Out.Stats.Jobs, RS.Jobs);
      Out.Stats.Executed += RS.Executed;
      Out.Stats.Steals += RS.Steals;
    }
  }
  publishRecheckMetrics(true, Out.Result, Out.Stats);
  publishDiagMetrics();
  return Out;
}

checker::incremental::Engine &Session::incrementalEngine() {
  if (Opts.SharedIncremental)
    return *Opts.SharedIncremental;
  if (!OwnedIncremental)
    OwnedIncremental = std::make_unique<checker::incremental::Engine>();
  return *OwnedIncremental;
}

Session::RecheckOutcome Session::recheck(const std::string &Source) {
  RecheckOutcome Out;
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return Out;
  }
  Out.Program = frontEnd(Source, Out.FrontEndOk);
  if (Out.FrontEndOk) {
    stats::ScopedTimer Timer(&Metrics, "phase.qualcheck_seconds");
    Out.Result = incrementalEngine().recheck(
        Opts.IncrementalUnit, *Out.Program, *QualsView, Diags, Opts.Checker,
        Opts.Jobs, &Out.Stats, Opts.SharedPool);
  }
  publishRecheckMetrics(Out.FrontEndOk, Out.Result, Out.Stats);
  publishDiagMetrics();
  return Out;
}

void Session::loadCacheFile() {
  if (Opts.CacheFile.empty() || CacheFileLoaded)
    return;
  CacheFileLoaded = true;
  // A missing file is the normal cold start; anything else that fails to
  // load (truncated, corrupt, wrong version header) is ignored with a
  // warning — a stale cache must never be trusted.
  std::ifstream Probe(Opts.CacheFile);
  if (!Probe)
    return;
  Probe.close();
  std::string Error;
  if (!CachePtr->load(Opts.CacheFile, &Error))
    Diags.warning(SourceLoc(), "driver", "prover cache file: " + Error);
}

void Session::saveCacheFile() {
  if (Opts.CacheFile.empty())
    return;
  std::string Error;
  if (!CachePtr->save(Opts.CacheFile, &Error) && !CacheSaveWarned) {
    // Warn once: prove() and proveQualifier() save after every call, and a
    // persistently unwritable path would otherwise repeat the warning.
    CacheSaveWarned = true;
    Diags.warning(SourceLoc(), "driver", "prover cache file: " + Error);
  }
}

std::vector<soundness::SoundnessReport> Session::prove() {
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return {};
  }
  loadCacheFile();
  unsigned Jobs = Opts.Jobs;
  if (Opts.WarmProverCache) {
    // A silent first pass: every obligation lands in the cache, so the
    // reported pass below replays entirely from it.
    soundness::SoundnessChecker Warm(*QualsView, Opts.Prover, nullptr,
                                     CachePtr, &Metrics, Opts.SharedPool);
    Warm.checkAll(Jobs);
  }
  std::vector<soundness::SoundnessReport> Reports;
  {
    stats::ScopedTimer Timer(&Metrics, "phase.prove_seconds");
    soundness::SoundnessChecker SC(*QualsView, Opts.Prover, nullptr, CachePtr,
                                   &Metrics, Opts.SharedPool);
    Reports = SC.checkAll(Jobs);
  }
  saveCacheFile();
  publishProveMetrics(Reports);
  publishDiagMetrics();
  return Reports;
}

soundness::SoundnessReport Session::proveQualifier(const std::string &Name) {
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return {};
  }
  loadCacheFile();
  soundness::SoundnessReport Report;
  {
    stats::ScopedTimer Timer(&Metrics, "phase.prove_seconds");
    soundness::SoundnessChecker SC(*QualsView, Opts.Prover, nullptr, CachePtr,
                                   &Metrics, Opts.SharedPool);
    Report = SC.checkQualifier(Name, Opts.Jobs);
  }
  saveCacheFile();
  publishProveMetrics({Report});
  publishDiagMetrics();
  return Report;
}

Session::RunOutcome Session::run(const std::string &Source) {
  RunOutcome Out;
  Out.Check = check(Source);
  if (!Out.Check.FrontEndOk || Diags.hasErrors()) {
    Out.Run.Status = interp::RunStatus::SetupError;
    Out.Run.TrapMessage = "front-end errors";
    return Out;
  }
  {
    stats::ScopedTimer Timer(&Metrics, "phase.execute_seconds");
    if (Opts.Backend == SessionOptions::ExecBackend::Vm) {
      vm::VmOptions VO;
      VO.Interp = Opts.Interp;
      VO.ElideChecks = Opts.VmElideChecks;
      // Elision hypotheses come from static qualifier types, which only
      // mean something on a program the checker accepted (Theorem 5.1).
      VO.ProgramCheckedClean = Out.Check.Result.ok();
      VO.Prover = Opts.Prover;
      VO.Cache = CachePtr;
      VO.Metrics = &Metrics;
      Out.Run = vm::runProgram(*Out.Check.Program, *QualsView,
                               Out.Check.Result.RuntimeChecks, VO);
    } else {
      Out.Run = interp::runProgram(*Out.Check.Program, *QualsView,
                                   Out.Check.Result.RuntimeChecks, Opts.Interp);
    }
  }
  publishRunMetrics(Out.Run);
  return Out;
}

Session::InferenceReport Session::infer(const std::string &Source) {
  InferenceReport Out;
  if (!loadQualifiers()) {
    publishDiagMetrics();
    return Out;
  }
  loadCacheFile();
  Out.Program = frontEnd(Source, Out.FrontEndOk);
  if (Out.FrontEndOk) {
    stats::ScopedTimer Timer(&Metrics, "phase.infer_seconds");
    checker::ConstraintInferenceOptions CI;
    CI.Scope = Opts.Infer.Scope;
    CI.Jobs = Opts.Jobs;
    CI.Pool = Opts.SharedPool;
    CI.Prover = Opts.Prover;
    CI.Cache = CachePtr;
    // Apply-mode always applies (and reports) the complete minimal set:
    // a truncated application is not guaranteed to re-check clean.
    CI.MaxSuggestions = Opts.Infer.Apply ? 0 : Opts.Infer.MaxSuggestions;
    CI.Checker = Opts.Checker;
    Out.Report =
        Opts.Infer.Engine == checker::InferenceEngine::Fixpoint
            ? checker::fixpointReport(*Out.Program, *QualsView, CI)
            : checker::inferWithConstraints(*Out.Program, *QualsView, CI);
    if (Opts.Infer.Apply) {
      checker::applyReport(*Out.Program, Out.Report);
      Out.AnnotatedSource = cminus::printProgram(*Out.Program);
    }
  }
  if (Out.FrontEndOk) {
    const checker::InferenceStats &S = Out.Report.Stats;
    Metrics.set("infer.units", S.Units);
    Metrics.set("infer.atoms", S.Atoms);
    Metrics.set("infer.constraints", S.Constraints);
    Metrics.set("infer.solve_rounds", S.SolveRounds);
    Metrics.set("infer.evaluations", S.Evaluations);
    Metrics.set("infer.dropped", S.Dropped);
    Metrics.set("infer.variables", S.Variables);
    Metrics.set("infer.suggestions", S.Suggested);
    Metrics.set("infer.prover_refinements", S.Implied);
    Metrics.set("infer.prover_queries", S.ProverQueries);
    // Warmth-dependent, so it lives here and not in the byte-stable
    // stq-inference-v1 document.
    Metrics.set("infer.prover_cache_hits", S.ProverCacheHits);
    // Historical names, kept for dashboards that predate the constraint
    // engine: all inferred pairs and the solve's round count.
    Metrics.set("infer.annotations", Out.Report.totalInferred());
    Metrics.set("infer.iterations", S.SolveRounds);
  }
  saveCacheFile();
  publishCacheMetrics();
  publishDiagMetrics();
  return Out;
}

void Session::publishCheckMetrics(bool FrontEndOk,
                                  const checker::CheckResult &Result,
                                  const checker::ParallelStats &Pipeline) {
  if (!FrontEndOk)
    return;
  const checker::CheckerStats &S = Result.Stats;
  Metrics.set("check.units", Pipeline.Units);
  Metrics.set("check.qual_errors", Result.QualErrors);
  Metrics.set("check.deref_sites", S.DerefSites);
  Metrics.set("check.restrict_checks", S.RestrictChecks);
  Metrics.set("check.restrict_failures", S.RestrictFailures);
  Metrics.set("check.assign_checks", S.AssignChecks);
  Metrics.set("check.assign_failures", S.AssignFailures);
  Metrics.set("check.ref_assign_checks", S.RefAssignChecks);
  Metrics.set("check.ref_assign_failures", S.RefAssignFailures);
  Metrics.set("check.disallow_failures", S.DisallowFailures);
  Metrics.set("check.casts_to_value_qualified", S.CastsToValueQualified);
  Metrics.set("check.casts_to_ref_qualified", S.CastsToRefQualified);
  Metrics.set("check.elided_cast_checks", S.ElidedCastChecks);
  Metrics.set("check.format_string_checks", S.FormatStringChecks);
  Metrics.set("check.runtime_checks", Result.RuntimeChecks.size());
  // Scheduling-dependent counters (see docs/OBSERVABILITY.md): the
  // hasQualifier memo is per checker instance, and pool accounting
  // depends on the job count by definition.
  Metrics.set("check.memo.has_qual_queries", S.HasQualQueries);
  Metrics.set("check.memo.hits", S.MemoHits);
  Metrics.set("pool.jobs", Pipeline.Jobs);
  Metrics.set("pool.executed", Pipeline.Executed);
  Metrics.set("pool.steals", Pipeline.Steals);
}

void Session::publishRecheckMetrics(
    bool FrontEndOk, const checker::incremental::RecheckResult &Result,
    const checker::incremental::RecheckStats &Stats) {
  if (!FrontEndOk)
    return;
  // The check.* counters mirror publishCheckMetrics exactly: a recheck is
  // the same verdict, so metrics-invariant counters must agree with a cold
  // check() byte for byte (the edit-replay harness pins this down).
  const checker::CheckerStats &S = Result.Stats;
  Metrics.set("check.units", Stats.Units);
  Metrics.set("check.qual_errors", Result.QualErrors);
  Metrics.set("check.deref_sites", S.DerefSites);
  Metrics.set("check.restrict_checks", S.RestrictChecks);
  Metrics.set("check.restrict_failures", S.RestrictFailures);
  Metrics.set("check.assign_checks", S.AssignChecks);
  Metrics.set("check.assign_failures", S.AssignFailures);
  Metrics.set("check.ref_assign_checks", S.RefAssignChecks);
  Metrics.set("check.ref_assign_failures", S.RefAssignFailures);
  Metrics.set("check.disallow_failures", S.DisallowFailures);
  Metrics.set("check.casts_to_value_qualified", S.CastsToValueQualified);
  Metrics.set("check.casts_to_ref_qualified", S.CastsToRefQualified);
  Metrics.set("check.elided_cast_checks", S.ElidedCastChecks);
  Metrics.set("check.format_string_checks", S.FormatStringChecks);
  Metrics.set("check.runtime_checks", Result.RuntimeCheckCount);
  Metrics.set("check.memo.has_qual_queries", S.HasQualQueries);
  Metrics.set("check.memo.hits", S.MemoHits);
  Metrics.set("pool.jobs", Stats.Jobs);
  Metrics.set("pool.executed", Stats.Executed);
  Metrics.set("pool.steals", Stats.Steals);
  // incremental.*: how much of the unit the store saved us. Scheduling- and
  // history-dependent by design, so they sit behind the same metrics
  // exclusion as pool.* (docs/OBSERVABILITY.md).
  checker::incremental::Engine &E = incrementalEngine();
  Metrics.set("incremental.units", Stats.Units);
  Metrics.set("incremental.hits", Stats.Hits);
  Metrics.set("incremental.rechecked", Stats.Rechecked);
  Metrics.set("incremental.sig_dirtied", Stats.SignatureDirtied);
  Metrics.set("incremental.evictions", Stats.Evictions);
  Metrics.set("incremental.store.entries", E.entries());
  Metrics.set("incremental.store.evictions", E.evictions());
}

void Session::publishFrontendMetrics(const LoadOutcome &Out,
                                     const pp::PpStats &Pp) {
  Metrics.set("pp.files", Pp.Files);
  Metrics.set("pp.includes", Pp.Includes);
  Metrics.set("pp.macros_defined", Pp.MacrosDefined);
  Metrics.set("pp.expansions", Pp.Expansions);
  Metrics.set("pp.conditionals", Pp.Conditionals);
  Metrics.set("pp.lines_in", Pp.LinesIn);
  Metrics.set("pp.lines_out", Pp.LinesOut);
  uint64_t Ok = 0;
  for (const frontend::TUnit &U : Out.Units)
    Ok += U.FrontEndOk;
  Metrics.set("frontend.units", Out.Units.size());
  Metrics.set("frontend.units_ok", Ok);
  Metrics.set("frontend.link_errors", Diags.countInPhase("link"));
}

void Session::publishProveMetrics(
    const std::vector<soundness::SoundnessReport> &Reports) {
  uint64_t Sound = 0, Unsound = 0, Flow = 0;
  for (const soundness::SoundnessReport &R : Reports) {
    if (R.IsFlowQualifier)
      ++Flow;
    else if (R.sound())
      ++Sound;
    else
      ++Unsound;
  }
  Metrics.set("prove.qualifiers", Reports.size());
  Metrics.set("prove.qualifiers_sound", Sound);
  Metrics.set("prove.qualifiers_unsound", Unsound);
  Metrics.set("prove.qualifiers_flow", Flow);
  publishCacheMetrics();
}

void Session::publishRunMetrics(const interp::RunResult &R) {
  Metrics.set("interp.steps", R.Steps);
  Metrics.set("interp.checks_executed", R.ChecksExecuted);
  Metrics.set("interp.check_failures", R.CheckFailures.size());
  Metrics.set("interp.format_violations", R.FormatViolations.size());
}

void Session::publishCacheMetrics() {
  prover::CacheStats CS = CachePtr->stats();
  Metrics.set("prover.cache.lookups", CS.Lookups);
  Metrics.set("prover.cache.hits", CS.Hits);
  Metrics.set("prover.cache.misses", CS.Misses);
  Metrics.set("prover.cache.insertions", CS.Insertions);
  Metrics.set("prover.cache.entries", CS.Entries);
  Metrics.set("prover.cache.contended", CS.Contended);
  Metrics.set("prover.cache.persist_loaded", CS.PersistLoaded);
  Metrics.set("prover.cache.persist_hits", CS.PersistHits);
  Metrics.setGauge("prover.cache.hit_rate", CS.hitRate());
  Metrics.setGauge("prover.cache.seconds_saved", CS.SecondsSaved);
}

void Session::publishDiagMetrics() {
  Metrics.set("diag.errors", Diags.errorCount());
  Metrics.set("diag.warnings", Diags.warningCount());
  Metrics.set("diag.total", Diags.diagnostics().size());
}

void Session::emitMetrics(std::ostream &OS, metrics::Format Format) {
  publishDiagMetrics();
  std::unique_ptr<metrics::MetricsEmitter> Emitter =
      metrics::MetricsEmitter::create(Format);
  Emitter->emit(Metrics.snapshot(), OS);
}
