//===- OptionTable.h - Declarative command-line options ---------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative option parser shared by every `stqc` subcommand,
/// replacing the hand-rolled if/else argument loop. Each subcommand
/// registers the options it accepts (flags, valued options, options with
/// an optional value) with handlers; parse() then accepts both
/// `--name value` and `--name=value` spellings, routes positionals, and
/// turns unknown flags and malformed values into hard errors with a
/// message naming the offending argument. A bare `--` ends option
/// processing: every later argument is positional, even ones starting
/// with '-'. Repeated options re-apply their handler in order (so scalar
/// options are last-wins and list options accumulate).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_DRIVER_OPTIONTABLE_H
#define STQ_DRIVER_OPTIONTABLE_H

#include <functional>
#include <string>
#include <vector>

namespace stq::cli {

/// Splits "a,b,c" into {"a","b","c"}, dropping empty pieces.
std::vector<std::string> splitCommas(const std::string &S);

/// Strict full-string parse of a non-negative integer. Returns false on
/// empty input, trailing garbage, or overflow.
bool parseUnsigned(const std::string &Value, unsigned &Out);

/// One registered option and how to apply it.
struct Option {
  enum class Arity {
    Flag,          ///< --name (a value is an error)
    Value,         ///< --name V or --name=V (missing value is an error)
    OptionalValue, ///< --name or --name=V (the separate-word form is not
                   ///< consumed: `--metrics json` leaves `json` positional)
  };

  std::string Name;  ///< Primary spelling, with dashes ("--jobs").
  std::string Alias; ///< Optional short spelling ("-j"), or empty.
  Arity Kind = Arity::Flag;
  std::string ValueName; ///< Placeholder for usage text ("N").
  std::string Help;
  /// Receives the value ("" for flags / omitted optional values). Returns
  /// false with \p Error set to reject a malformed value.
  std::function<bool(const std::string &Value, std::string &Error)> Apply;
};

/// The option set of one subcommand.
class OptionTable {
public:
  /// Registers `--name` taking no value.
  OptionTable &flag(const std::string &Name, const std::string &Alias,
                    const std::string &Help, std::function<void()> Apply);
  /// Registers `--name V` / `--name=V`.
  OptionTable &
  value(const std::string &Name, const std::string &Alias,
        const std::string &ValueName, const std::string &Help,
        std::function<bool(const std::string &, std::string &)> Apply);
  /// Registers `--name` / `--name=V` (value optional; the two-word form is
  /// not recognized, so a bare `--name` never swallows a file argument).
  OptionTable &
  optionalValue(const std::string &Name, const std::string &ValueName,
                const std::string &Help,
                std::function<bool(const std::string &, std::string &)> Apply);

  /// Routes arguments that are not options (no leading '-'). Without a
  /// handler, any positional is an error.
  void positional(std::function<bool(const std::string &, std::string &)> H) {
    Positional = std::move(H);
  }

  /// Parses \p Args (argv past the subcommand). On failure returns false
  /// with \p Error set; nothing reports to stderr here.
  bool parse(const std::vector<std::string> &Args, std::string &Error) const;

  /// One "  --name N  help" line per option, for usage text.
  std::string helpText() const;

private:
  const Option *find(const std::string &Spelling) const;

  std::vector<Option> Options;
  std::function<bool(const std::string &, std::string &)> Positional;
};

} // namespace stq::cli

#endif // STQ_DRIVER_OPTIONTABLE_H
