//===- stq-eval.cpp - Paper-table replication driver ----------------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
//
// Replays the paper's §6 evaluation: checks each generated corpus program
// (grep-dfa, bftpd, mingetty, identd) through the multi-file front end and
// renders the Table 1/Table 2 columns. The generators in src/workloads are
// the source of truth; the checked-in tree under tests/corpus/c/ is kept
// byte-identical with --verify-sync / --write-corpus.
//
// The rendered document is deterministic, so CI diffs it against a golden
// file (--golden); any drift in counts, verdicts, or diagnostics fails the
// run with a readable line diff. With --server every check runs as an
// stqd `eval` RPC and the parsed rows are rendered client-side, which the
// smoke test holds byte-identical to one-shot output.
//
//===----------------------------------------------------------------------===//

#include "eval/PaperEval.h"
#include "server/Protocol.h"
#include "support/Socket.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace stq;

namespace {

struct CliOptions {
  std::string CorpusDir;
  std::string Format = "text"; ///< "text" | "json".
  std::string GoldenFile;
  bool UpdateGolden = false;
  std::string ServerSocket;
  bool VerifySync = false;
  bool WriteCorpus = false;
  bool Timings = false;
  unsigned Jobs = 1;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: stq-eval [options]\n"
      "  --corpus DIR      checked-in corpus root (tests/corpus/c)\n"
      "  --format FMT      text (default) or json\n"
      "  --jobs N          checker worker threads per program\n"
      "  --golden FILE     diff the rendered document against FILE\n"
      "  --update-golden   rewrite --golden FILE with the current output\n"
      "  --server SOCK     evaluate via a running stqd at SOCK\n"
      "  --verify-sync     check DIR matches the generators byte-for-byte\n"
      "  --write-corpus    (re)write the generated corpora into DIR\n"
      "  --timings         add per-program seconds to --format json\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](std::string &Dst) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "stq-eval: option '%s' needs a value\n",
                     A.c_str());
        return false;
      }
      Dst = Argv[++I];
      return true;
    };
    if (A == "--corpus") {
      if (!Value(O.CorpusDir))
        return false;
    } else if (A == "--format") {
      if (!Value(O.Format))
        return false;
      if (O.Format != "text" && O.Format != "json") {
        std::fprintf(stderr, "stq-eval: bad --format '%s' (text|json)\n",
                     O.Format.c_str());
        return false;
      }
    } else if (A == "--jobs") {
      std::string V;
      if (!Value(V))
        return false;
      try {
        O.Jobs = std::stoul(V);
      } catch (const std::exception &) {
        std::fprintf(stderr, "stq-eval: bad --jobs value '%s'\n", V.c_str());
        return false;
      }
    } else if (A == "--golden") {
      if (!Value(O.GoldenFile))
        return false;
    } else if (A == "--update-golden") {
      O.UpdateGolden = true;
    } else if (A == "--server") {
      if (!Value(O.ServerSocket))
        return false;
    } else if (A == "--verify-sync") {
      O.VerifySync = true;
    } else if (A == "--write-corpus") {
      O.WriteCorpus = true;
    } else if (A == "--timings") {
      O.Timings = true;
    } else {
      std::fprintf(stderr, "stq-eval: unknown option '%s'\n", A.c_str());
      usage();
      return false;
    }
  }
  if ((O.VerifySync || O.WriteCorpus) && O.CorpusDir.empty()) {
    std::fprintf(stderr,
                 "stq-eval: --verify-sync/--write-corpus need --corpus DIR\n");
    return false;
  }
  return true;
}

/// Every on-disk file of one corpus program: the spec's file map plus the
/// qualifier file, keyed by path relative to <corpus>/<name>/.
std::map<std::string, std::string> diskImage(const eval::ProgramSpec &Spec) {
  std::map<std::string, std::string> Image(Spec.Files.begin(),
                                           Spec.Files.end());
  Image["quals.stq"] = Spec.QualFileText;
  return Image;
}

int writeCorpusTree(const std::vector<eval::ProgramSpec> &Specs,
                    const std::string &Root) {
  namespace fs = std::filesystem;
  for (const eval::ProgramSpec &Spec : Specs) {
    for (const auto &[Path, Text] : diskImage(Spec)) {
      fs::path Full = fs::path(Root) / Spec.Name / Path;
      std::error_code EC;
      fs::create_directories(Full.parent_path(), EC);
      std::ofstream OS(Full, std::ios::binary);
      if (!OS) {
        std::fprintf(stderr, "stq-eval: cannot write '%s'\n",
                     Full.string().c_str());
        return 2;
      }
      OS << Text;
    }
    std::printf("wrote %s/%s\n", Root.c_str(), Spec.Name.c_str());
  }
  return 0;
}

int verifyCorpusSync(const std::vector<eval::ProgramSpec> &Specs,
                     const std::string &Root) {
  namespace fs = std::filesystem;
  unsigned Bad = 0;
  for (const eval::ProgramSpec &Spec : Specs) {
    for (const auto &[Path, Text] : diskImage(Spec)) {
      fs::path Full = fs::path(Root) / Spec.Name / Path;
      std::ifstream IS(Full, std::ios::binary);
      if (!IS) {
        std::fprintf(stderr, "stq-eval: missing '%s'\n",
                     Full.string().c_str());
        ++Bad;
        continue;
      }
      std::ostringstream Buf;
      Buf << IS.rdbuf();
      if (Buf.str() != Text) {
        std::fprintf(stderr,
                     "stq-eval: '%s' differs from its generator (run "
                     "--write-corpus to refresh)\n",
                     Full.string().c_str());
        ++Bad;
      }
    }
  }
  if (Bad) {
    std::fprintf(stderr, "stq-eval: %u file(s) out of sync\n", Bad);
    return 1;
  }
  std::printf("corpus in sync with generators (%zu programs)\n",
              Specs.size());
  return 0;
}

/// Runs one program as an stqd `eval` request and parses the returned
/// stq-eval-row-v1 payload. Transport/protocol failures exit code 6,
/// matching stqc's server error convention.
bool evalViaServer(const eval::ProgramSpec &Spec, const CliOptions &O,
                   eval::EvalRow &Row, int &HardExit) {
  server::rpc::Request Req;
  Req.Id = "eval-" + Spec.Name;
  Req.Inv.Command = "eval";
  Req.Inv.EvalName = Spec.Name;
  Req.Inv.EvalKind = Spec.Kind;
  for (const std::string &Unit : Spec.Units) {
    auto It = Spec.Files.find(Unit);
    Req.Inv.Inputs.push_back(
        {Unit, It == Spec.Files.end() ? std::string() : It->second});
  }
  Req.Inv.Files = Spec.Files;
  Req.Inv.HasFiles = true;
  Req.Inv.Session.QualSources = {Spec.QualFileText};
  Req.Inv.Session.IncludeDirs = Spec.IncludeDirs;
  Req.Inv.Session.Jobs = O.Jobs;

  UnixStream Conn;
  std::string Error;
  if (!Conn.connect(O.ServerSocket, Error)) {
    std::fprintf(stderr, "stq-eval: cannot reach server: %s\n",
                 Error.c_str());
    HardExit = 6;
    return false;
  }
  if (!Conn.writeAll(server::rpc::encodeRequest(Req) + "\n", Error)) {
    std::fprintf(stderr, "stq-eval: cannot send request: %s\n",
                 Error.c_str());
    HardExit = 6;
    return false;
  }
  std::string Line;
  if (!Conn.readLine(Line, /*MaxBytes=*/64u << 20, /*TimeoutMs=*/600000,
                     Error)) {
    std::fprintf(stderr, "stq-eval: no response from server%s%s\n",
                 Error.empty() ? "" : ": ", Error.c_str());
    HardExit = 6;
    return false;
  }
  server::rpc::Response Resp;
  if (!server::rpc::parseResponse(Line, Resp, Error)) {
    std::fprintf(stderr, "stq-eval: %s\n", Error.c_str());
    HardExit = 6;
    return false;
  }
  if (Resp.Status != "ok") {
    std::fprintf(stderr, "stq-eval: server %s: %s\n", Resp.Status.c_str(),
                 Resp.Error.c_str());
    HardExit = 6;
    return false;
  }
  if (!eval::parseRow(Resp.Out, Row, Error)) {
    std::fprintf(stderr, "stq-eval: bad eval row from server: %s\n",
                 Error.c_str());
    HardExit = 6;
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  std::vector<workloads::CorpusProgram> Corpora = workloads::makeAllCorpora();
  std::vector<eval::ProgramSpec> Specs;
  for (const workloads::CorpusProgram &C : Corpora)
    Specs.push_back(eval::specFromCorpus(C));

  if (O.WriteCorpus)
    return writeCorpusTree(Specs, O.CorpusDir);
  if (O.VerifySync)
    return verifyCorpusSync(Specs, O.CorpusDir);

  SessionOptions Base;
  Base.Jobs = O.Jobs;

  std::vector<eval::EvalRow> Rows;
  bool CountMismatch = false;
  for (const eval::ProgramSpec &Spec : Specs) {
    eval::EvalRow Row;
    if (!O.ServerSocket.empty()) {
      int HardExit = 6;
      if (!evalViaServer(Spec, O, Row, HardExit))
        return HardExit;
    } else {
      Row = eval::evalProgram(Spec, Base);
    }
    if (!Row.CheckOk) {
      std::fprintf(stderr, "stq-eval: front end failed on '%s'\n",
                   Spec.Name.c_str());
      for (const std::string &D : Row.Diagnostics)
        std::fprintf(stderr, "  %s\n", D.c_str());
      return 2;
    }
    if (Row.Errors != Spec.ExpectedErrors) {
      std::fprintf(stderr,
                   "stq-eval: '%s' reported %u qualifier error(s), expected "
                   "%u\n",
                   Spec.Name.c_str(), Row.Errors, Spec.ExpectedErrors);
      CountMismatch = true;
    }
    Rows.push_back(std::move(Row));
  }

  std::string Doc = O.Format == "json" ? eval::renderJson(Rows, O.Timings)
                                       : eval::renderTables(Rows);
  std::fputs(Doc.c_str(), stdout);

  if (!O.GoldenFile.empty()) {
    if (O.UpdateGolden) {
      std::ofstream OS(O.GoldenFile, std::ios::binary);
      if (!OS) {
        std::fprintf(stderr, "stq-eval: cannot write golden '%s'\n",
                     O.GoldenFile.c_str());
        return 2;
      }
      OS << Doc;
      std::fprintf(stderr, "stq-eval: golden '%s' updated\n",
                   O.GoldenFile.c_str());
    } else {
      std::ifstream IS(O.GoldenFile, std::ios::binary);
      if (!IS) {
        std::fprintf(stderr, "stq-eval: cannot read golden '%s'\n",
                     O.GoldenFile.c_str());
        return 2;
      }
      std::ostringstream Buf;
      Buf << IS.rdbuf();
      std::string Diff = eval::diffGolden(Buf.str(), Doc);
      if (!Diff.empty()) {
        std::fprintf(stderr,
                     "stq-eval: output differs from golden '%s':\n%s",
                     O.GoldenFile.c_str(), Diff.c_str());
        return 1;
      }
    }
  }
  return CountMismatch ? 1 : 0;
}
