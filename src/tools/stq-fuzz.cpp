//===- stq-fuzz.cpp - The soundness fuzzer CLI ----------------------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
//
// Randomized differential and soundness fuzzing over the whole pipeline
// (see docs/FUZZING.md). Replays the persisted corpus first when --corpus
// is given, then executes --runs randomized campaign runs. Exit codes:
// 0 all oracles held, 1 at least one violation, 2 usage error.
//
// `stq-fuzz --seed S` is fully deterministic: two invocations with the
// same flags produce byte-identical output (wall-clock dependence only
// enters through the opt-in --time-budget).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace stq;

namespace {

int usage(std::ostream &OS) {
  OS << "usage:\n"
        "  stq-fuzz [--seed S] [--runs N] [--time-budget SECONDS]\n"
        "           [--corpus DIR] [--scenario NAME] [--jobs N] [--fuel N]\n"
        "           [--minimize|--no-minimize] [--failure-dir DIR] "
        "[--metrics]\n"
        "options:\n"
        "  --seed S            campaign seed (default 1); same seed, same "
        "campaign\n"
        "  --runs N            randomized runs after corpus replay "
        "(default 100)\n"
        "  --time-budget SECS  stop early after this much wall time "
        "(default off)\n"
        "  --corpus DIR        replay every .cmm/.qual/.edits file in DIR "
        "first\n"
        "  --scenario NAME     pin every run to one scenario: soundness, "
        "mixed,\n"
        "                      qualgen, prover, edit-replay, inference, "
        "vm,\n"
        "                      frontend, header-edit, or robustness "
        "(--oracle is an alias)\n"
        "  --jobs N            parallel job count for the metamorphic "
        "oracle (default 4)\n"
        "  --fuel N            interpreter step budget per execution\n"
        "  --minimize          delta-minimize failing inputs (default)\n"
        "  --no-minimize       report failing inputs unminimized\n"
        "  --failure-dir DIR   write failing inputs there (default .)\n"
        "  --metrics           print fuzz.* counters after the campaign\n";
  return 2;
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  fuzz::CampaignOptions Opts;
  std::string CorpusDir;
  std::string FailureDir = ".";
  bool Metrics = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](uint64_t &Out) {
      if (I + 1 >= argc || !parseUnsigned(argv[++I], Out)) {
        std::cerr << "stq-fuzz: bad or missing value for " << Arg << "\n";
        return false;
      }
      return true;
    };
    uint64_t V = 0;
    if (Arg == "--seed") {
      if (!Value(V))
        return usage(std::cerr);
      Opts.Seed = V;
    } else if (Arg == "--runs") {
      if (!Value(V))
        return usage(std::cerr);
      Opts.Runs = static_cast<unsigned>(V);
    } else if (Arg == "--time-budget") {
      if (!Value(V))
        return usage(std::cerr);
      Opts.TimeBudgetSeconds = static_cast<unsigned>(V);
    } else if (Arg == "--jobs") {
      if (!Value(V) || V == 0)
        return usage(std::cerr);
      Opts.Jobs = static_cast<unsigned>(V);
    } else if (Arg == "--fuel") {
      if (!Value(V))
        return usage(std::cerr);
      Opts.Fuel = V;
    } else if (Arg == "--minimize") {
      Opts.Minimize = true;
    } else if (Arg == "--no-minimize") {
      Opts.Minimize = false;
    } else if (Arg == "--corpus") {
      if (I + 1 >= argc)
        return usage(std::cerr);
      CorpusDir = argv[++I];
    } else if (Arg == "--scenario" || Arg == "--oracle") {
      if (I + 1 >= argc)
        return usage(std::cerr);
      Opts.OnlyScenario = argv[++I];
      static const char *Known[] = {"soundness",   "mixed",    "qualgen",
                                    "prover",      "edit-replay",
                                    "inference",   "vm",       "frontend",
                                    "header-edit", "robustness"};
      bool Ok = false;
      for (const char *Name : Known)
        Ok = Ok || Opts.OnlyScenario == Name;
      if (!Ok) {
        std::cerr << "stq-fuzz: unknown scenario '" << Opts.OnlyScenario
                  << "'\n";
        return usage(std::cerr);
      }
    } else if (Arg == "--failure-dir") {
      if (I + 1 >= argc)
        return usage(std::cerr);
      FailureDir = argv[++I];
    } else if (Arg == "--metrics") {
      Metrics = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "stq-fuzz: unknown option '" << Arg << "'\n";
      return usage(std::cerr);
    }
  }

  stats::Registry Stats;
  fuzz::CampaignResult Result;

  // Corpus replay first: persisted regression inputs must keep passing.
  unsigned Replayed = 0;
  if (!CorpusDir.empty()) {
    std::error_code EC;
    std::vector<std::string> Files;
    for (const auto &Entry :
         std::filesystem::directory_iterator(CorpusDir, EC)) {
      if (!Entry.is_regular_file())
        continue;
      std::string Path = Entry.path().string();
      auto HasExt = [&Path](const char *Ext) {
        size_t N = std::strlen(Ext);
        return Path.size() >= N &&
               Path.compare(Path.size() - N, N, Ext) == 0;
      };
      if (HasExt(".cmm") || HasExt(".qual") || HasExt(".edits"))
        Files.push_back(Path);
    }
    if (EC) {
      std::cerr << "stq-fuzz: cannot read corpus directory '" << CorpusDir
                << "': " << EC.message() << "\n";
      return 2;
    }
    std::sort(Files.begin(), Files.end());
    for (const std::string &Path : Files) {
      if (!fuzz::replayCorpusFile(Path, Opts, Stats, Result)) {
        std::cerr << "stq-fuzz: cannot read corpus file '" << Path << "'\n";
        return 2;
      }
      ++Replayed;
    }
    std::cout << "stq-fuzz: replayed " << Replayed << " corpus inputs, "
              << Result.Failures.size() << " failures\n";
  }

  if (Opts.Runs > 0) {
    fuzz::CampaignResult Campaign =
        fuzz::runCampaign(Opts, Stats, &std::cout);
    Result.RunsExecuted += Campaign.RunsExecuted;
    for (fuzz::FuzzFailure &F : Campaign.Failures)
      Result.Failures.push_back(std::move(F));
  }

  for (size_t I = 0; I < Result.Failures.size(); ++I) {
    const fuzz::FuzzFailure &F = Result.Failures[I];
    std::string Path = FailureDir + "/stq-fuzz-failure-" +
                       std::to_string(I) + ".txt";
    std::ofstream Out(Path, std::ios::binary);
    if (Out) {
      Out << "# oracle: " << F.Oracle << "\n# kind: " << F.Kind
          << "\n# run-seed: " << F.RunSeed << "\n# detail: " << F.Detail
          << "\n" << F.Input;
      std::cout << "stq-fuzz: wrote failing input to " << Path << "\n";
    }
    std::cout << "FAILURE[" << I << "] oracle=" << F.Oracle
              << " kind=" << F.Kind << " seed=" << F.RunSeed << "\n  "
              << F.Detail << "\n";
  }

  if (Metrics) {
    stats::Registry::Snapshot Snap = Stats.snapshot();
    for (const auto &[Name, Val] : Snap.Counters)
      std::cout << Name << " = " << Val << "\n";
  }

  std::cout << "stq-fuzz: " << Result.RunsExecuted << " runs, " << Replayed
            << " corpus replays, " << Result.Failures.size()
            << " oracle violations\n";
  return Result.ok() ? 0 : 1;
}
