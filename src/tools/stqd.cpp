//===- stqd.cpp - The persistent qualifier-checking daemon ----------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// A long-lived checking server on a Unix-domain socket (docs/SERVER.md):
//
//   stqd --socket PATH [--builtins a,b,..] [--qualfile F] [--cache-file P]
//        [--workers N] [--jobs N] [--queue-capacity N] [--timeout-ms N]
//        [--max-request-bytes N]
//
// Clients (`stqc --server PATH <cmd> ...`, or anything that speaks
// stq-rpc-v1) get byte-identical output to a one-shot stqc run, but every
// request after the first reuses the warm prover cache, the preloaded
// qualifier set, and one shared worker pool. SIGTERM/SIGINT (or a
// `shutdown` request) drain gracefully: in-flight requests finish and the
// cache is saved atomically to --cache-file.
//
//===----------------------------------------------------------------------===//

#include "driver/OptionTable.h"
#include "server/Server.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

using namespace stq;

namespace {

std::atomic<server::Server *> ActiveServer{nullptr};

void handleSignal(int) {
  // Only an atomic store: async-signal-safe.
  if (server::Server *S = ActiveServer.load(std::memory_order_relaxed))
    S->requestShutdown();
}

struct DaemonOptions {
  server::ServerOptions Server;
  bool ShowHelp = false;
  bool ShowVersion = false;
};

cli::OptionTable buildOptionTable(DaemonOptions &Options) {
  cli::OptionTable Table;
  Table.value("--socket", "", "PATH",
              "Unix-domain socket path to listen on (required)",
              [&](const std::string &V, std::string &) {
                Options.Server.SocketPath = V;
                return true;
              });
  Table.value("--builtins", "", "a,b,..",
              "builtin qualifiers for the shared default set",
              [&](const std::string &V, std::string &) {
                auto More = cli::splitCommas(V);
                Options.Server.Defaults.Builtins.insert(
                    Options.Server.Defaults.Builtins.end(), More.begin(),
                    More.end());
                return true;
              });
  Table.value("--qualfile", "", "F",
              "qualifier-DSL file for the shared default set",
              [&](const std::string &V, std::string &) {
                Options.Server.Defaults.QualFiles.push_back(V);
                return true;
              });
  Table.value("--cache-file", "", "PATH",
              "persistent prover cache: loaded at startup, saved on drain",
              [&](const std::string &V, std::string &) {
                Options.Server.Defaults.CacheFile = V;
                return true;
              });
  Table.value("--workers", "", "N", "concurrent request workers",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N) || N == 0) {
                  Error = "bad --workers value '" + V + "'";
                  return false;
                }
                Options.Server.Workers = N;
                return true;
              });
  Table.value("--jobs", "-j", "N",
              "threads in the shared checking pool (0 = hardware)",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N)) {
                  Error = "bad --jobs value '" + V + "'";
                  return false;
                }
                Options.Server.PoolThreads = N;
                return true;
              });
  Table.value("--queue-capacity", "", "N",
              "pending connections before `busy` backpressure",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N) || N == 0) {
                  Error = "bad --queue-capacity value '" + V + "'";
                  return false;
                }
                Options.Server.QueueCapacity = N;
                return true;
              });
  Table.value("--timeout-ms", "", "N",
              "per-request read inactivity timeout (milliseconds)",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N)) {
                  Error = "bad --timeout-ms value '" + V + "'";
                  return false;
                }
                Options.Server.RequestTimeoutMs = static_cast<int>(N);
                return true;
              });
  Table.value("--max-request-bytes", "", "N",
              "hard ceiling on one request line",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N) || N == 0) {
                  Error = "bad --max-request-bytes value '" + V + "'";
                  return false;
                }
                Options.Server.MaxRequestBytes = N;
                return true;
              });
  Table.flag("--version", "", "print the protocol versions this build speaks",
             [&] { Options.ShowVersion = true; });
  Table.flag("--help", "-h", "show this help",
             [&] { Options.ShowHelp = true; });
  return Table;
}

void usage(const cli::OptionTable &Table) {
  std::printf("usage:\n"
              "  stqd --socket PATH [options]\n"
              "options:\n%s",
              Table.helpText().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Options;
  cli::OptionTable Table = buildOptionTable(Options);
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  std::string Error;
  if (!Table.parse(Args, Error)) {
    std::fprintf(stderr, "stqd: %s\n", Error.c_str());
    usage(Table);
    return 2;
  }
  if (Options.ShowVersion) {
    std::printf("%s", server::rpc::versionText("stqd").c_str());
    return 0;
  }
  if (Options.ShowHelp || Options.Server.SocketPath.empty()) {
    usage(Table);
    return 2;
  }

  server::Server S(Options.Server);
  if (!S.start(Error)) {
    std::fprintf(stderr, "stqd: %s\n", Error.c_str());
    return 2;
  }
  ActiveServer.store(&S, std::memory_order_relaxed);
  std::signal(SIGTERM, handleSignal);
  std::signal(SIGINT, handleSignal);
  std::fprintf(stderr, "stqd: listening on %s\n",
               Options.Server.SocketPath.c_str());
  int Exit = S.serve();
  ActiveServer.store(nullptr, std::memory_order_relaxed);
  std::fprintf(stderr, "stqd: drained, exiting\n");
  return Exit;
}
