//===- stqc.cpp - The semantic-type-qualifier compiler driver -------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// A thin command-line layer over stq::Session (driver/Session.h):
//
//   stqc prove  [--builtins a,b,..] [--qualfile F] [--jobs N] [--warm-cache]
//               [--cache-file PATH]
//       verify every loaded qualifier's type rules against its invariant;
//       obligations fan out over N workers backed by the memoized prover
//       cache (--warm-cache primes it with a silent first pass;
//       --cache-file persists it across runs)
//   stqc check  (FILE | -e SRC) [--builtins ..] [--qualfile F]
//               [--flow-sensitive] [--jobs N]
//       run the extensible typechecker, sharded across N workers; exit
//       nonzero on qualifier errors
//   stqc run    (FILE | -e SRC) [--builtins ..] [--entry NAME]
//       typecheck, instrument casts, and execute
//   stqc infer  (FILE | -e SRC) [--builtins ..]
//       infer value-qualifier annotations (section 8 future work)
//   stqc dump-builtin NAME
//       print a builtin qualifier's definition in the qualifier DSL
//
// Every subcommand also accepts the observability options
// (docs/OBSERVABILITY.md):
//
//   --metrics[=FORMAT]   print pipeline counters to stdout (text or json)
//   --trace FILE         write a Chrome trace-event JSON file of the run
//   --diagnostics FORMAT render diagnostics as text (default) or json
//
//===----------------------------------------------------------------------===//

#include "driver/OptionTable.h"
#include "driver/Session.h"
#include "qual/Builtins.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace stq;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  std::string InlineSource;
  std::string DumpName;
  SessionOptions Session;
  bool Metrics = false;
  metrics::Format MetricsFormat = metrics::Format::Text;
  std::string TraceFile;
  bool JsonDiagnostics = false;
  bool ShowHelp = false;
};

cli::OptionTable buildOptionTable(CliOptions &Options) {
  cli::OptionTable Table;
  Table.value("--builtins", "", "a,b,..",
              "load the named builtin qualifiers",
              [&](const std::string &V, std::string &) {
                auto More = cli::splitCommas(V);
                Options.Session.Builtins.insert(
                    Options.Session.Builtins.end(), More.begin(), More.end());
                return true;
              });
  Table.value("--qualfile", "", "F", "load a qualifier-DSL file",
              [&](const std::string &V, std::string &) {
                Options.Session.QualFiles.push_back(V);
                return true;
              });
  Table.value("--entry", "", "NAME", "entry function for `run`",
              [&](const std::string &V, std::string &) {
                Options.Session.Interp.EntryPoint = V;
                return true;
              });
  Table.value("-e", "", "SRC", "inline C-minus source",
              [&](const std::string &V, std::string &) {
                Options.InlineSource = V;
                return true;
              });
  Table.flag("--flow-sensitive", "",
             "enable flow-sensitive qualifier narrowing", [&] {
               Options.Session.Checker.FlowSensitiveNarrowing = true;
             });
  Table.value("--jobs", "-j", "N",
              "worker threads for check/prove (0 = hardware)",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N)) {
                  Error = "bad --jobs value '" + V + "'";
                  return false;
                }
                Options.Session.Jobs = N == 0 ? ThreadPool::defaultJobs() : N;
                return true;
              });
  Table.flag("--warm-cache", "",
             "prove: prime the prover cache with a silent first pass",
             [&] { Options.Session.WarmProverCache = true; });
  Table.value("--cache-file", "", "PATH",
              "prove: persist the prover cache across runs (load before, "
              "save after; stale or corrupt files are ignored)",
              [&](const std::string &V, std::string &) {
                Options.Session.CacheFile = V;
                return true;
              });
  Table.optionalValue("--metrics", "FORMAT",
                      "print pipeline metrics (text or json)",
                      [&](const std::string &V, std::string &Error) {
                        auto F = metrics::parseFormat(V);
                        if (!F) {
                          Error = "bad --metrics format '" + V +
                                  "' (expected text or json)";
                          return false;
                        }
                        Options.Metrics = true;
                        Options.MetricsFormat = *F;
                        return true;
                      });
  Table.value("--trace", "", "FILE",
              "write a Chrome trace-event JSON file",
              [&](const std::string &V, std::string &) {
                Options.TraceFile = V;
                return true;
              });
  Table.value("--diagnostics", "", "FORMAT",
              "diagnostic rendering (text or json)",
              [&](const std::string &V, std::string &Error) {
                if (V == "json") {
                  Options.JsonDiagnostics = true;
                } else if (V != "text") {
                  Error = "bad --diagnostics format '" + V +
                          "' (expected text or json)";
                  return false;
                }
                return true;
              });
  Table.flag("--help", "-h", "show this help",
             [&] { Options.ShowHelp = true; });
  Table.positional([&](const std::string &Arg, std::string &Error) {
    if (Options.Command == "dump-builtin" && Options.DumpName.empty()) {
      Options.DumpName = Arg;
      return true;
    }
    if (Options.File.empty()) {
      Options.File = Arg;
      return true;
    }
    Error = "unexpected argument '" + Arg + "'";
    return false;
  });
  return Table;
}

void usage(const cli::OptionTable &Table) {
  std::printf(
      "usage:\n"
      "  stqc prove  [--builtins a,b,..] [--qualfile F] [--jobs N]"
      " [--warm-cache] [--cache-file PATH]\n"
      "  stqc check  (FILE | -e SRC) [--builtins ..] [--qualfile F]"
      " [--flow-sensitive] [--jobs N]\n"
      "  stqc run    (FILE | -e SRC) [--builtins ..] [--entry NAME]\n"
      "  stqc infer  (FILE | -e SRC) [--builtins ..] [--qualfile F]\n"
      "  stqc dump-builtin NAME\n"
      "options:\n%s"
      "builtin qualifiers: pos neg nonneg nonzero nonnull tainted"
      " untainted unique unaliased\n",
      Table.helpText().c_str());
}

/// Renders every collected diagnostic to stderr through the configured
/// DiagnosticConsumer (text is byte-for-byte the historical output).
void reportDiagnostics(Session &S, const CliOptions &Options) {
  if (Options.JsonDiagnostics) {
    JsonDiagnosticConsumer C(std::cerr);
    for (const Diagnostic &D : S.diags().diagnostics())
      C.handleDiagnostic(D);
    C.finish();
    return;
  }
  TextDiagnosticConsumer C(std::cerr);
  for (const Diagnostic &D : S.diags().diagnostics())
    C.handleDiagnostic(D);
}

/// Emits --metrics to stdout and --trace to its file, after the
/// subcommand's own output.
void emitObservability(Session &S, const CliOptions &Options) {
  if (Options.Metrics)
    S.emitMetrics(std::cout, Options.MetricsFormat);
  if (!Options.TraceFile.empty()) {
    std::vector<trace::TraceEvent> Events = trace::Tracer::stop();
    std::ofstream OS(Options.TraceFile);
    if (!OS) {
      std::fprintf(stderr, "stqc: cannot write trace file '%s'\n",
                   Options.TraceFile.c_str());
      return;
    }
    metrics::writeChromeTrace(Events, OS);
  }
}

bool getProgramSource(const CliOptions &Options, std::string &Out) {
  if (!Options.InlineSource.empty()) {
    Out = Options.InlineSource;
    return true;
  }
  if (Options.File.empty()) {
    std::fprintf(stderr, "stqc: no input (pass FILE or -e SRC)\n");
    return false;
  }
  std::string Error;
  if (!readFileToString(Options.File, Out, Error)) {
    std::fprintf(stderr, "stqc: %s\n", Error.c_str());
    return false;
  }
  return true;
}

int cmdProve(const CliOptions &Options) {
  Session S(Options.Session);
  if (!S.loadQualifiers()) {
    reportDiagnostics(S, Options);
    emitObservability(S, Options);
    return 2;
  }
  auto Reports = S.prove();
  std::printf("%s", soundness::formatReports(Reports).c_str());
  emitObservability(S, Options);
  for (const auto &R : Reports)
    if (!R.sound())
      return 1;
  return 0;
}

int cmdCheck(const CliOptions &Options) {
  std::string Source;
  if (!getProgramSource(Options, Source))
    return 2;
  Session S(Options.Session);
  Session::CheckOutcome Out = S.check(Source);
  reportDiagnostics(S, Options);
  if (S.diags().hasErrors()) {
    emitObservability(S, Options);
    return 2;
  }
  std::printf("qualifier errors: %u (dereference sites %u, assignment "
              "checks %u, run-time checks %zu)\n",
              Out.Result.QualErrors, Out.Result.Stats.DerefSites,
              Out.Result.Stats.AssignChecks, Out.Result.RuntimeChecks.size());
  emitObservability(S, Options);
  return Out.Result.ok() ? 0 : 1;
}

int cmdRun(const CliOptions &Options) {
  std::string Source;
  if (!getProgramSource(Options, Source))
    return 2;
  Session S(Options.Session);
  Session::RunOutcome Out = S.run(Source);
  reportDiagnostics(S, Options);
  const interp::RunResult &R = Out.Run;
  if (!R.Output.empty())
    std::printf("%s", R.Output.c_str());
  int Code = 2;
  switch (R.Status) {
  case interp::RunStatus::Ok:
    std::printf("[exit %ld]\n", static_cast<long>(*R.ExitValue));
    Code = static_cast<int>(*R.ExitValue & 0xff);
    break;
  case interp::RunStatus::CheckFailure:
    for (const auto &F : R.CheckFailures)
      std::fprintf(stderr,
                   "fatal: run-time qualifier check failed at %s: value %s "
                   "does not satisfy '%s'\n",
                   F.Loc.str().c_str(), F.ValueStr.c_str(), F.Qual.c_str());
    Code = 3;
    break;
  case interp::RunStatus::Trap:
    std::fprintf(stderr, "trap: %s\n", R.TrapMessage.c_str());
    Code = 4;
    break;
  case interp::RunStatus::FuelExhausted:
    std::fprintf(stderr, "error: step budget exhausted\n");
    Code = 5;
    break;
  case interp::RunStatus::SetupError:
    std::fprintf(stderr, "error: %s\n", R.TrapMessage.c_str());
    Code = 2;
    break;
  }
  emitObservability(S, Options);
  return Code;
}

int cmdInfer(const CliOptions &Options) {
  std::string Source;
  if (!getProgramSource(Options, Source))
    return 2;
  Session S(Options.Session);
  Session::InferOutcome Out = S.infer(Source);
  if (!Out.FrontEndOk || S.diags().hasErrors()) {
    reportDiagnostics(S, Options);
    emitObservability(S, Options);
    return 2;
  }
  for (const auto &[Var, Quals] : Out.Result.Inferred) {
    std::string List;
    for (const std::string &Q : Quals)
      List += (List.empty() ? "" : " ") + Q;
    std::printf("%s: %s '%s' may be annotated: %s\n",
                Var->Loc.str().c_str(),
                Var->IsParam ? "parameter" : (Var->IsGlobal ? "global"
                                                            : "local"),
                Var->Name.c_str(), List.c_str());
  }
  std::printf("inferred %u annotation(s) on %zu variable(s) in %u "
              "iteration(s)\n",
              Out.Result.totalInferred(), Out.Result.Inferred.size(),
              Out.Result.Iterations);
  emitObservability(S, Options);
  return 0;
}

int cmdDumpBuiltin(const CliOptions &Options, const cli::OptionTable &Table) {
  if (Options.DumpName.empty()) {
    usage(Table);
    return 2;
  }
  std::string Source = qual::builtinQualifierSource(Options.DumpName);
  if (Source.empty()) {
    std::fprintf(stderr, "stqc: unknown builtin qualifier '%s'\n",
                 Options.DumpName.c_str());
    return 2;
  }
  std::printf("%s", Source.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  cli::OptionTable Table = buildOptionTable(Options);
  if (Argc < 2) {
    usage(Table);
    return 2;
  }
  Options.Command = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  std::string Error;
  if (!Table.parse(Args, Error)) {
    std::fprintf(stderr, "stqc: %s\n", Error.c_str());
    usage(Table);
    return 2;
  }
  if (Options.ShowHelp) {
    usage(Table);
    return 2;
  }
  if (!Options.TraceFile.empty())
    trace::Tracer::start();
  if (Options.Command == "prove")
    return cmdProve(Options);
  if (Options.Command == "check")
    return cmdCheck(Options);
  if (Options.Command == "run")
    return cmdRun(Options);
  if (Options.Command == "infer")
    return cmdInfer(Options);
  if (Options.Command == "dump-builtin")
    return cmdDumpBuiltin(Options, Table);
  usage(Table);
  return 2;
}
