//===- stqc.cpp - The semantic-type-qualifier compiler driver -------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// A command-line driver over the whole pipeline:
//
//   stqc prove  [--builtins a,b,..] [--qualfile F] [--jobs N] [--stats]
//               [--warm-cache]
//       verify every loaded qualifier's type rules against its invariant;
//       obligations fan out over N workers backed by the memoized prover
//       cache (--warm-cache primes it with a silent first pass)
//   stqc check  (FILE | -e SRC) [--builtins ..] [--qualfile F]
//               [--flow-sensitive] [--jobs N] [--stats]
//       run the extensible typechecker, sharded across N workers; exit
//       nonzero on qualifier errors
//   stqc run    (FILE | -e SRC) [--builtins ..] [--entry NAME]
//       typecheck, instrument casts, and execute
//   stqc infer  (FILE | -e SRC) [--builtins ..]
//       infer value-qualifier annotations (section 8 future work)
//   stqc dump-builtin NAME
//       print a builtin qualifier's definition in the qualifier DSL
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Inference.h"
#include "checker/Parallel.h"
#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "interp/Interp.h"
#include "prover/ProverCache.h"
#include "qual/Builtins.h"
#include "qual/QualParser.h"
#include "soundness/Soundness.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace stq;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  std::string InlineSource;
  std::vector<std::string> Builtins;
  std::vector<std::string> QualFiles;
  std::string Entry = "main";
  bool FlowSensitive = false;
  /// Worker threads for check/prove; 0 means "pick for me" (hardware
  /// concurrency).
  unsigned Jobs = 1;
  bool Stats = false;
  bool WarmCache = false;
  std::string DumpName;
};

void usage() {
  std::printf(
      "usage:\n"
      "  stqc prove  [--builtins a,b,..] [--qualfile F] [--jobs N]"
      " [--stats] [--warm-cache]\n"
      "  stqc check  (FILE | -e SRC) [--builtins ..] [--qualfile F]"
      " [--flow-sensitive] [--jobs N] [--stats]\n"
      "  stqc run    (FILE | -e SRC) [--builtins ..] [--entry NAME]\n"
      "  stqc infer  (FILE | -e SRC) [--builtins ..] [--qualfile F]\n"
      "  stqc dump-builtin NAME\n"
      "builtin qualifiers: pos neg nonneg nonzero nonnull tainted"
      " untainted unique unaliased\n");
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  if (Argc < 2)
    return false;
  Options.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "stqc: missing value for %s\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--builtins") {
      const char *V = Next();
      if (!V)
        return false;
      auto More = splitCommas(V);
      Options.Builtins.insert(Options.Builtins.end(), More.begin(),
                              More.end());
    } else if (Arg == "--qualfile") {
      const char *V = Next();
      if (!V)
        return false;
      Options.QualFiles.push_back(V);
    } else if (Arg == "--entry") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Entry = V;
    } else if (Arg == "-e") {
      const char *V = Next();
      if (!V)
        return false;
      Options.InlineSource = V;
    } else if (Arg == "--flow-sensitive") {
      Options.FlowSensitive = true;
    } else if (Arg == "--jobs" || Arg == "-j") {
      const char *V = Next();
      if (!V)
        return false;
      char *End = nullptr;
      long N = std::strtol(V, &End, 10);
      if (N < 0 || End == V || *End != '\0') {
        std::fprintf(stderr, "stqc: bad --jobs value '%s'\n", V);
        return false;
      }
      Options.Jobs = N == 0 ? ThreadPool::defaultJobs()
                            : static_cast<unsigned>(N);
    } else if (Arg == "--stats") {
      Options.Stats = true;
    } else if (Arg == "--warm-cache") {
      Options.WarmCache = true;
    } else if (Arg == "--help" || Arg == "-h") {
      return false;
    } else if (!Arg.empty() && Arg[0] != '-' && Options.Command ==
               "dump-builtin" && Options.DumpName.empty()) {
      Options.DumpName = Arg;
    } else if (!Arg.empty() && Arg[0] != '-' && Options.File.empty()) {
      Options.File = Arg;
    } else {
      std::fprintf(stderr, "stqc: unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "stqc: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void printDiagnostics(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str());
}

/// Loads the requested builtins plus any qualifier-definition files.
bool loadQualifiers(const CliOptions &Options, qual::QualifierSet &Set,
                    DiagnosticEngine &Diags) {
  std::vector<std::string> Builtins = Options.Builtins;
  if (Builtins.empty() && Options.QualFiles.empty())
    Builtins = qual::builtinQualifierNames();
  for (const std::string &Name : Builtins) {
    std::string Source = qual::builtinQualifierSource(Name);
    if (Source.empty()) {
      std::fprintf(stderr, "stqc: unknown builtin qualifier '%s'\n",
                   Name.c_str());
      return false;
    }
    if (!qual::parseQualifiers(Source, Set, Diags))
      return false;
  }
  for (const std::string &Path : Options.QualFiles) {
    std::string Source;
    if (!readFile(Path, Source) ||
        !qual::parseQualifiers(Source, Set, Diags))
      return false;
  }
  return qual::checkWellFormed(Set, Diags);
}

bool getProgramSource(const CliOptions &Options, std::string &Out) {
  if (!Options.InlineSource.empty()) {
    Out = Options.InlineSource;
    return true;
  }
  if (Options.File.empty()) {
    std::fprintf(stderr, "stqc: no input (pass FILE or -e SRC)\n");
    return false;
  }
  return readFile(Options.File, Out);
}

void printCacheStats(const prover::CacheStats &CS) {
  std::printf("prover cache: %llu lookups, %llu hits, %llu misses "
              "(hit rate %.1f%%), %llu entries, %.3fs prover time saved\n",
              static_cast<unsigned long long>(CS.Lookups),
              static_cast<unsigned long long>(CS.Hits),
              static_cast<unsigned long long>(CS.Misses),
              100.0 * CS.hitRate(),
              static_cast<unsigned long long>(CS.Entries), CS.SecondsSaved);
}

int cmdProve(const CliOptions &Options) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  if (!loadQualifiers(Options, Set, Diags)) {
    printDiagnostics(Diags);
    return 2;
  }
  prover::ProverCache Cache;
  if (Options.WarmCache) {
    // A silent first pass: every obligation lands in the cache, so the
    // reported pass below replays entirely from it.
    soundness::SoundnessChecker Warm(Set, {}, nullptr, &Cache);
    Warm.checkAll(Options.Jobs);
  }
  soundness::SoundnessChecker SC(Set, {}, nullptr, &Cache);
  auto Reports = SC.checkAll(Options.Jobs);
  std::printf("%s", soundness::formatReports(Reports).c_str());
  if (Options.Stats)
    printCacheStats(Cache.stats());
  for (const auto &R : Reports)
    if (!R.sound())
      return 1;
  return 0;
}

int cmdCheck(const CliOptions &Options) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  if (!loadQualifiers(Options, Set, Diags)) {
    printDiagnostics(Diags);
    return 2;
  }
  std::string Source;
  if (!getProgramSource(Options, Source))
    return 2;
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckerOptions CheckOptions;
  CheckOptions.FlowSensitiveNarrowing = Options.FlowSensitive;
  checker::ParallelStats PStats;
  checker::CheckResult Result = checker::checkSourceParallel(
      Source, Set, Diags, Prog, CheckOptions, Options.Jobs, &PStats);
  printDiagnostics(Diags);
  if (Diags.hasErrors())
    return 2;
  std::printf("qualifier errors: %u (dereference sites %u, assignment "
              "checks %u, run-time checks %zu)\n",
              Result.QualErrors, Result.Stats.DerefSites,
              Result.Stats.AssignChecks, Result.RuntimeChecks.size());
  if (Options.Stats)
    std::printf("pipeline: %u units over %u jobs, %llu tasks executed, "
                "%llu stolen; %u hasQualifier queries, %u memo hits\n",
                PStats.Units, PStats.Jobs,
                static_cast<unsigned long long>(PStats.Executed),
                static_cast<unsigned long long>(PStats.Steals),
                Result.Stats.HasQualQueries, Result.Stats.MemoHits);
  return Result.ok() ? 0 : 1;
}

int cmdRun(const CliOptions &Options) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  if (!loadQualifiers(Options, Set, Diags)) {
    printDiagnostics(Diags);
    return 2;
  }
  std::string Source;
  if (!getProgramSource(Options, Source))
    return 2;
  interp::InterpOptions RunOptions;
  RunOptions.EntryPoint = Options.Entry;
  interp::RunResult R = interp::runSource(Source, Set, Diags, RunOptions);
  printDiagnostics(Diags);
  if (!R.Output.empty())
    std::printf("%s", R.Output.c_str());
  switch (R.Status) {
  case interp::RunStatus::Ok:
    std::printf("[exit %ld]\n", static_cast<long>(*R.ExitValue));
    return static_cast<int>(*R.ExitValue & 0xff);
  case interp::RunStatus::CheckFailure:
    for (const auto &F : R.CheckFailures)
      std::fprintf(stderr,
                   "fatal: run-time qualifier check failed at %s: value %s "
                   "does not satisfy '%s'\n",
                   F.Loc.str().c_str(), F.ValueStr.c_str(), F.Qual.c_str());
    return 3;
  case interp::RunStatus::Trap:
    std::fprintf(stderr, "trap: %s\n", R.TrapMessage.c_str());
    return 4;
  case interp::RunStatus::FuelExhausted:
    std::fprintf(stderr, "error: step budget exhausted\n");
    return 5;
  case interp::RunStatus::SetupError:
    std::fprintf(stderr, "error: %s\n", R.TrapMessage.c_str());
    return 2;
  }
  return 2;
}

int cmdInfer(const CliOptions &Options) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  if (!loadQualifiers(Options, Set, Diags)) {
    printDiagnostics(Diags);
    return 2;
  }
  std::string Source;
  if (!getProgramSource(Options, Source))
    return 2;
  auto Prog = cminus::parseProgram(Source, Set.names(), Diags);
  if (Diags.hasErrors() || !cminus::runSema(*Prog, Set.refNames(), Diags) ||
      !cminus::lowerProgram(*Prog, Diags)) {
    printDiagnostics(Diags);
    return 2;
  }
  checker::InferenceOutcome Outcome = checker::inferQualifiers(*Prog, Set);
  for (const auto &[Var, Quals] : Outcome.Inferred) {
    std::string List;
    for (const std::string &Q : Quals)
      List += (List.empty() ? "" : " ") + Q;
    std::printf("%s: %s '%s' may be annotated: %s\n",
                Var->Loc.str().c_str(),
                Var->IsParam ? "parameter" : (Var->IsGlobal ? "global"
                                                            : "local"),
                Var->Name.c_str(), List.c_str());
  }
  std::printf("inferred %u annotation(s) on %zu variable(s) in %u "
              "iteration(s)\n",
              Outcome.totalInferred(), Outcome.Inferred.size(),
              Outcome.Iterations);
  return 0;
}

int cmdDumpBuiltin(const CliOptions &Options) {
  if (Options.DumpName.empty()) {
    usage();
    return 2;
  }
  std::string Source = qual::builtinQualifierSource(Options.DumpName);
  if (Source.empty()) {
    std::fprintf(stderr, "stqc: unknown builtin qualifier '%s'\n",
                 Options.DumpName.c_str());
    return 2;
  }
  std::printf("%s", Source.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    usage();
    return 2;
  }
  if (Options.Command == "prove")
    return cmdProve(Options);
  if (Options.Command == "check")
    return cmdCheck(Options);
  if (Options.Command == "run")
    return cmdRun(Options);
  if (Options.Command == "infer")
    return cmdInfer(Options);
  if (Options.Command == "dump-builtin")
    return cmdDumpBuiltin(Options);
  usage();
  return 2;
}
