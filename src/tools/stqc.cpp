//===- stqc.cpp - The semantic-type-qualifier compiler driver -------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// A thin command-line layer over the shared invocation executor
// (server/Exec.h), which itself drives stq::Session:
//
//   stqc prove  [--builtins a,b,..] [--qualfile F] [--jobs N] [--warm-cache]
//               [--cache-file PATH]
//       verify every loaded qualifier's type rules against its invariant;
//       obligations fan out over N workers backed by the memoized prover
//       cache (--warm-cache primes it with a silent first pass;
//       --cache-file persists it across runs)
//   stqc check  (FILE... | -e SRC) [-I DIR] [-D NAME[=V]] [--builtins ..]
//               [--qualfile F] [--flow-sensitive] [--jobs N]
//       run the extensible typechecker, sharded across N workers; exit
//       nonzero on qualifier errors. Several FILEs (or any -I/-D) select
//       the real-C front end: each file is preprocessed (#include,
//       macros, conditionals) and compiled as its own translation unit in
//       parallel, then link-checked across TUs
//   stqc recheck (FILE... | -e SRC) [-I DIR] [-D NAME[=V]] [--builtins ..]
//               [--unit NAME] [--jobs N]
//       like check, but through the incremental engine: functions whose
//       content hash is already in the verdict store replay their cached
//       verdicts. Output is byte-identical to check; against a daemon
//       (--server) the store stays warm across edits
//   stqc run    (FILE | -e SRC) [--builtins ..] [--entry NAME]
//       typecheck, instrument casts, and execute
//   stqc infer  (FILE | -e SRC) [--builtins ..] [--engine E] [--scope S]
//               [--max-suggestions N] [--apply] [--format text|json] [-j N]
//       infer value-qualifier annotations (section 8 future work): the
//       sharded constraint engine by default (--engine fixpoint selects
//       the sequential reference), with prover-minimized suggestions;
//       --apply prints the annotated program, --format json emits the
//       stq-inference-v1 document
//   stqc dump-builtin NAME
//       print a builtin qualifier's definition in the qualifier DSL
//   stqc status|shutdown --server SOCKET
//       query or drain a running stqd daemon
//
// `--server SOCKET` sends prove/check/run/infer to a running stqd instead
// of executing locally; the printed bytes and the exit code are identical
// (both paths run server::executeInvocation), but the daemon's prover
// cache stays warm across requests. Input files and qualifier files are
// read locally and shipped as text — the daemon never sees client paths.
//
// Every subcommand also accepts the observability options
// (docs/OBSERVABILITY.md):
//
//   --metrics[=FORMAT]   print pipeline counters to stdout (text or json)
//   --trace FILE         write a Chrome trace-event JSON file of the run
//   --diagnostics FORMAT render diagnostics as text (default) or json
//
// Exit codes (also documented in README.md): 0 success; 1 qualifier or
// soundness failure; 2 usage or front-end error; 3 run-time check
// failure; 4 trap; 5 fuel exhausted; 6 server unavailable, busy, or
// protocol error.
//
//===----------------------------------------------------------------------===//

#include "driver/OptionTable.h"
#include "qual/Builtins.h"
#include "server/Protocol.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace stq;

namespace {

struct CliOptions {
  std::string Command;
  /// Positional input files, in command-line order. check/recheck accept
  /// several (the multi-TU front end); the other subcommands take one.
  std::vector<std::string> Files;
  std::string InlineSource;
  std::string DumpName;
  std::string ServerSocket;
  SessionOptions Session;
  bool Metrics = false;
  metrics::Format MetricsFormat = metrics::Format::Text;
  std::string TraceFile;
  bool JsonDiagnostics = false;
  bool InferJson = false;
  bool ShowHelp = false;
  bool ShowVersion = false;
};

cli::OptionTable buildOptionTable(CliOptions &Options) {
  cli::OptionTable Table;
  Table.value("--builtins", "", "a,b,..",
              "load the named builtin qualifiers",
              [&](const std::string &V, std::string &) {
                auto More = cli::splitCommas(V);
                Options.Session.Builtins.insert(
                    Options.Session.Builtins.end(), More.begin(), More.end());
                return true;
              });
  Table.value("--qualfile", "", "F", "load a qualifier-DSL file",
              [&](const std::string &V, std::string &) {
                Options.Session.QualFiles.push_back(V);
                return true;
              });
  Table.value("--entry", "", "NAME", "entry function for `run`",
              [&](const std::string &V, std::string &) {
                Options.Session.Interp.EntryPoint = V;
                return true;
              });
  Table.value("--backend", "", "ENGINE",
              "run: execution engine (vm or interp; default vm)",
              [&](const std::string &V, std::string &Error) {
                if (V == "vm") {
                  Options.Session.Backend =
                      SessionOptions::ExecBackend::Vm;
                } else if (V == "interp") {
                  Options.Session.Backend =
                      SessionOptions::ExecBackend::Interp;
                } else {
                  Error = "bad --backend value '" + V +
                          "' (expected vm or interp)";
                  return false;
                }
                return true;
              });
  Table.flag("--no-elide-checks", "",
             "run: keep every run-time qualifier check (vm backend only; "
             "disables prover-driven check elision)",
             [&] { Options.Session.VmElideChecks = false; });
  Table.value("--unit", "", "NAME",
              "recheck: unit name for signature-change invalidation "
              "(defaults to the empty unit)",
              [&](const std::string &V, std::string &) {
                Options.Session.IncrementalUnit = V;
                return true;
              });
  Table.value("-I", "", "DIR",
              "check/recheck: add DIR to the #include search path "
              "(selects the preprocessing front end)",
              [&](const std::string &V, std::string &) {
                Options.Session.IncludeDirs.push_back(V);
                return true;
              });
  Table.value("-D", "", "NAME[=V]",
              "check/recheck: predefine a macro (V defaults to 1; selects "
              "the preprocessing front end)",
              [&](const std::string &V, std::string &) {
                Options.Session.Defines.push_back(V);
                return true;
              });
  Table.value("-e", "", "SRC", "inline C-minus source",
              [&](const std::string &V, std::string &) {
                Options.InlineSource = V;
                return true;
              });
  Table.flag("--flow-sensitive", "",
             "enable flow-sensitive qualifier narrowing", [&] {
               Options.Session.Checker.FlowSensitiveNarrowing = true;
             });
  Table.value("--jobs", "-j", "N",
              "worker threads for check/prove (0 = hardware)",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N)) {
                  Error = "bad --jobs value '" + V + "'";
                  return false;
                }
                Options.Session.Jobs = N == 0 ? ThreadPool::defaultJobs() : N;
                return true;
              });
  Table.value("--engine", "", "NAME",
              "infer: inference engine (constraints or fixpoint)",
              [&](const std::string &V, std::string &Error) {
                if (!checker::parseEngineName(V, Options.Session.Infer.Engine)) {
                  Error = "bad --engine value '" + V +
                          "' (expected fixpoint or constraints)";
                  return false;
                }
                return true;
              });
  Table.value("--scope", "", "NAME",
              "infer: inference scope (program or locals)",
              [&](const std::string &V, std::string &Error) {
                if (!checker::parseScopeName(V, Options.Session.Infer.Scope)) {
                  Error = "bad --scope value '" + V +
                          "' (expected program or locals)";
                  return false;
                }
                return true;
              });
  Table.value("--max-suggestions", "", "N",
              "infer: report at most N suggestion entries (0 = unlimited; "
              "ignored with --apply)",
              [&](const std::string &V, std::string &Error) {
                unsigned N = 0;
                if (!cli::parseUnsigned(V, N)) {
                  Error = "bad --max-suggestions value '" + V + "'";
                  return false;
                }
                Options.Session.Infer.MaxSuggestions = N;
                return true;
              });
  Table.flag("--apply", "",
             "infer: apply the minimal suggested set and print the "
             "annotated program",
             [&] { Options.Session.Infer.Apply = true; });
  Table.value("--format", "", "FORMAT",
              "infer: report rendering (text or json = stq-inference-v1)",
              [&](const std::string &V, std::string &Error) {
                if (V == "json") {
                  Options.InferJson = true;
                } else if (V != "text") {
                  Error = "bad --format value '" + V +
                          "' (expected text or json)";
                  return false;
                }
                return true;
              });
  Table.flag("--warm-cache", "",
             "prove: prime the prover cache with a silent first pass",
             [&] { Options.Session.WarmProverCache = true; });
  Table.value("--cache-file", "", "PATH",
              "prove: persist the prover cache across runs (load before, "
              "save after; stale or corrupt files are ignored)",
              [&](const std::string &V, std::string &) {
                Options.Session.CacheFile = V;
                return true;
              });
  Table.value("--server", "", "SOCKET",
              "send the command to the stqd daemon at this socket",
              [&](const std::string &V, std::string &) {
                Options.ServerSocket = V;
                return true;
              });
  Table.optionalValue("--metrics", "FORMAT",
                      "print pipeline metrics (text or json)",
                      [&](const std::string &V, std::string &Error) {
                        auto F = metrics::parseFormat(V);
                        if (!F) {
                          Error = "bad --metrics format '" + V +
                                  "' (expected text or json)";
                          return false;
                        }
                        Options.Metrics = true;
                        Options.MetricsFormat = *F;
                        return true;
                      });
  Table.value("--trace", "", "FILE",
              "write a Chrome trace-event JSON file",
              [&](const std::string &V, std::string &) {
                Options.TraceFile = V;
                return true;
              });
  Table.value("--diagnostics", "", "FORMAT",
              "diagnostic rendering (text or json)",
              [&](const std::string &V, std::string &Error) {
                if (V == "json") {
                  Options.JsonDiagnostics = true;
                } else if (V != "text") {
                  Error = "bad --diagnostics format '" + V +
                          "' (expected text or json)";
                  return false;
                }
                return true;
              });
  Table.flag("--version", "", "print the protocol versions this build speaks",
             [&] { Options.ShowVersion = true; });
  Table.flag("--help", "-h", "show this help",
             [&] { Options.ShowHelp = true; });
  Table.positional([&](const std::string &Arg, std::string &Error) {
    if (Options.Command == "dump-builtin" && Options.DumpName.empty()) {
      Options.DumpName = Arg;
      return true;
    }
    bool MultiOk =
        Options.Command == "check" || Options.Command == "recheck";
    if (Options.Files.empty() || MultiOk) {
      Options.Files.push_back(Arg);
      return true;
    }
    Error = "unexpected argument '" + Arg + "'";
    return false;
  });
  return Table;
}

void usage(const cli::OptionTable &Table) {
  std::printf(
      "usage:\n"
      "  stqc prove  [--builtins a,b,..] [--qualfile F] [--jobs N]"
      " [--warm-cache] [--cache-file PATH]\n"
      "  stqc check  (FILE... | -e SRC) [-I DIR] [-D NAME[=V]]"
      " [--builtins ..] [--qualfile F]\n"
      "              [--flow-sensitive] [--jobs N]\n"
      "  stqc recheck (FILE... | -e SRC) [-I DIR] [-D NAME[=V]]"
      " [--builtins ..] [--unit NAME]\n"
      "              [--jobs N]\n"
      "  stqc run    (FILE | -e SRC) [--builtins ..] [--entry NAME]\n"
      "  stqc infer  (FILE | -e SRC) [--builtins ..] [--qualfile F]"
      " [--engine E] [--scope S]\n"
      "              [--max-suggestions N] [--apply] [--format text|json]"
      " [--jobs N]\n"
      "  stqc dump-builtin NAME\n"
      "  stqc status|shutdown --server SOCKET\n"
      "options:\n%s"
      "builtin qualifiers: pos neg nonneg nonzero nonnull tainted"
      " untainted unique unaliased\n",
      Table.helpText().c_str());
}

bool getProgramSource(const CliOptions &Options, std::string &Out) {
  if (!Options.InlineSource.empty()) {
    Out = Options.InlineSource;
    return true;
  }
  if (Options.Files.empty()) {
    std::fprintf(stderr, "stqc: no input (pass FILE or -e SRC)\n");
    return false;
  }
  std::string Error;
  if (!readFileToString(Options.Files.front(), Out, Error)) {
    std::fprintf(stderr, "stqc: %s\n", Error.c_str());
    return false;
  }
  return true;
}

void writeTraceFile(const std::string &Path, const std::string &TraceJson) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "stqc: cannot write trace file '%s'\n",
                 Path.c_str());
    return;
  }
  OS << TraceJson;
}

/// Prints an ExecResult the way the historical stqc printed directly to
/// its streams, and materializes the trace file.
int emitResult(const server::ExecResult &R, const CliOptions &Options) {
  std::fwrite(R.Out.data(), 1, R.Out.size(), stdout);
  std::fwrite(R.Err.data(), 1, R.Err.size(), stderr);
  if (!Options.TraceFile.empty())
    writeTraceFile(Options.TraceFile, R.TraceJson);
  return R.ExitCode;
}

/// Sends one request to the daemon and returns its response. Transport
/// and protocol failures exit with code 6.
int runViaServer(const CliOptions &Options, server::rpc::Request Req) {
  UnixStream Conn;
  std::string Error;
  if (!Conn.connect(Options.ServerSocket, Error)) {
    std::fprintf(stderr, "stqc: cannot reach server: %s\n", Error.c_str());
    return 6;
  }
  if (!Conn.writeAll(server::rpc::encodeRequest(Req) + "\n", Error)) {
    std::fprintf(stderr, "stqc: cannot send request: %s\n", Error.c_str());
    return 6;
  }
  std::string Line;
  // Generous response budget: a cold `prove --jobs 1` can take a while.
  if (!Conn.readLine(Line, /*MaxBytes=*/64u << 20, /*TimeoutMs=*/600000,
                     Error)) {
    std::fprintf(stderr, "stqc: no response from server%s%s\n",
                 Error.empty() ? "" : ": ", Error.c_str());
    return 6;
  }
  server::rpc::Response Resp;
  if (!server::rpc::parseResponse(Line, Resp, Error)) {
    std::fprintf(stderr, "stqc: %s\n", Error.c_str());
    return 6;
  }
  if (Resp.Status == "busy") {
    std::fprintf(stderr, "stqc: server busy: %s\n", Resp.Error.c_str());
    return 6;
  }
  if (Resp.Status != "ok") {
    std::fprintf(stderr, "stqc: server error: %s\n", Resp.Error.c_str());
    return 6;
  }
  server::ExecResult R;
  R.Out = std::move(Resp.Out);
  R.Err = std::move(Resp.Err);
  R.TraceJson = std::move(Resp.TraceJson);
  R.ExitCode = Resp.ExitCode;
  return emitResult(R, Options);
}

int cmdDumpBuiltin(const CliOptions &Options, const cli::OptionTable &Table) {
  if (Options.DumpName.empty()) {
    usage(Table);
    return 2;
  }
  std::string Source = qual::builtinQualifierSource(Options.DumpName);
  if (Source.empty()) {
    std::fprintf(stderr, "stqc: unknown builtin qualifier '%s'\n",
                 Options.DumpName.c_str());
    return 2;
  }
  std::printf("%s", Source.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  cli::OptionTable Table = buildOptionTable(Options);
  if (Argc < 2) {
    usage(Table);
    return 2;
  }
  Options.Command = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  if (Options.Command == "--version") {
    std::printf("%s", server::rpc::versionText("stqc").c_str());
    return 0;
  }
  std::string Error;
  if (!Table.parse(Args, Error)) {
    std::fprintf(stderr, "stqc: %s\n", Error.c_str());
    usage(Table);
    return 2;
  }
  if (Options.ShowVersion) {
    std::printf("%s", server::rpc::versionText("stqc").c_str());
    return 0;
  }
  if (Options.ShowHelp) {
    usage(Table);
    return 2;
  }
  if (Options.Command == "dump-builtin")
    return cmdDumpBuiltin(Options, Table);

  bool IsControl = server::rpc::isControlCommand(Options.Command);
  if (!IsControl && !server::knownCommand(Options.Command)) {
    usage(Table);
    return 2;
  }
  if (IsControl && Options.ServerSocket.empty()) {
    std::fprintf(stderr, "stqc: '%s' requires --server SOCKET\n",
                 Options.Command.c_str());
    return 2;
  }

  server::rpc::Request Req;
  server::Invocation &Inv = Req.Inv;
  Inv.Command = Options.Command;
  Inv.Session = Options.Session;
  Inv.Metrics = Options.Metrics;
  Inv.MetricsFormat = Options.MetricsFormat;
  Inv.JsonDiagnostics = Options.JsonDiagnostics;
  Inv.InferJson = Options.InferJson;
  Inv.Trace = !Options.TraceFile.empty();

  bool NeedsSource = Options.Command == "check" ||
                     Options.Command == "recheck" ||
                     Options.Command == "run" || Options.Command == "infer";
  // Several input files, or any -I/-D, select the preprocessing multi-TU
  // front end. A single bare file keeps the classic C-minus pipeline (and
  // its byte-identical diagnostic rendering).
  bool MultiInput =
      (Options.Command == "check" || Options.Command == "recheck") &&
      Options.InlineSource.empty() &&
      (Options.Files.size() > 1 || !Options.Session.IncludeDirs.empty() ||
       !Options.Session.Defines.empty());
  if (MultiInput) {
    for (const std::string &Path : Options.Files) {
      frontend::InputFile In;
      In.Name = Path;
      if (!readFileToString(Path, In.Text, Error)) {
        std::fprintf(stderr, "stqc: %s\n", Error.c_str());
        return 2;
      }
      Inv.Inputs.push_back(std::move(In));
    }
    if (Inv.Inputs.empty()) {
      std::fprintf(stderr, "stqc: no input (pass FILE or -e SRC)\n");
      return 2;
    }
  } else if (NeedsSource &&
             (!Options.InlineSource.empty() || !Options.Files.empty())) {
    if (!getProgramSource(Options, Inv.Source))
      return 2;
    Inv.HasSource = true;
  }

  if (Options.ServerSocket.empty()) {
    // One-shot: the exact code path the daemon's workers run.
    return emitResult(server::executeInvocation(Inv), Options);
  }

  // Client mode: the daemon never touches caller paths, so qualifier
  // files are read here and shipped as inline DSL sources (same load
  // order: builtins, then files-as-sources).
  for (const std::string &Path : Inv.Session.QualFiles) {
    std::string Text;
    if (!readFileToString(Path, Text, Error)) {
      std::fprintf(stderr, "stqc: %s\n", Error.c_str());
      return 2;
    }
    Inv.Session.QualSources.push_back(std::move(Text));
  }
  Inv.Session.QualFiles.clear();
  // Cache persistence belongs to the daemon (its --cache-file).
  Inv.Session.CacheFile.clear();
  if (!Inv.Inputs.empty()) {
    // Ship the include closure collected here, so the daemon resolves the
    // same #include bytes without ever touching client paths.
    std::vector<std::pair<std::string, std::string>> ClosureInputs;
    for (const frontend::InputFile &In : Inv.Inputs)
      ClosureInputs.emplace_back(In.Name, In.Text);
    pp::PpOptions PO;
    PO.IncludeDirs = Inv.Session.IncludeDirs;
    PO.Defines = Inv.Session.Defines;
    Inv.Files = pp::collectIncludeClosure(ClosureInputs, PO);
    Inv.HasFiles = true;
  }
  return runViaServer(Options, std::move(Req));
}
